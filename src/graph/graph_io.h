// Plain-text serialization of typed object graphs.
//
// Format (line-oriented, '#' comments allowed between sections):
//   metaprox-graph v1
//   types <T>
//   <type name>            x T
//   nodes <N>
//   <type id> [name]       x N
//   edges <M>
//   <u> <v>                x M
#ifndef METAPROX_GRAPH_GRAPH_IO_H_
#define METAPROX_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace metaprox {

/// Writes `g` to `os` in the metaprox-graph v1 text format.
util::Status WriteGraph(const Graph& g, std::ostream& os);

/// Writes `g` to `path`, overwriting.
util::Status WriteGraphToFile(const Graph& g, const std::string& path);

/// Parses a metaprox-graph v1 stream.
util::StatusOr<Graph> ReadGraph(std::istream& is);

/// Reads a graph from `path`.
util::StatusOr<Graph> ReadGraphFromFile(const std::string& path);

}  // namespace metaprox

#endif  // METAPROX_GRAPH_GRAPH_IO_H_
