#include "graph/type_registry.h"

#include "util/macros.h"

namespace metaprox {

TypeId TypeRegistry::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  MX_CHECK_MSG(names_.size() < kInvalidType, "too many types");
  TypeId id = static_cast<TypeId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

TypeId TypeRegistry::Find(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidType : it->second;
}

const std::string& TypeRegistry::Name(TypeId id) const {
  MX_CHECK(id < names_.size());
  return names_[id];
}

}  // namespace metaprox
