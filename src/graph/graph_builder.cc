#include "graph/graph_builder.h"

#include <algorithm>

#include "util/macros.h"

namespace metaprox {

TypeId GraphBuilder::InternType(const std::string& name) {
  return registry_.Intern(name);
}

NodeId GraphBuilder::AddNode(TypeId type, std::string name) {
  MX_CHECK(type < registry_.size());
  MX_CHECK_MSG(types_.size() < kInvalidNode, "too many nodes");
  built_ = false;  // starting a new graph re-arms the builder
  NodeId id = static_cast<NodeId>(types_.size());
  types_.push_back(type);
  if (!name.empty()) any_name_ = true;
  names_.push_back(std::move(name));
  return id;
}

NodeId GraphBuilder::AddNode(const std::string& type_name, std::string name) {
  return AddNode(InternType(type_name), std::move(name));
}

util::Status GraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (built_) {
    return util::Status::FailedPrecondition(
        "graph already built; finalized indexes would not reflect this "
        "edge — append through GraphDelta instead");
  }
  if (u >= types_.size() || v >= types_.size()) {
    return util::Status::InvalidArgument(
        "edge endpoint out of range (node " +
        std::to_string(u >= types_.size() ? u : v) + " >= " +
        std::to_string(types_.size()) + ")");
  }
  if (u == v) return util::Status::Ok();  // no self-loops
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  return util::Status::Ok();
}

Graph GraphBuilder::Build() {
  const size_t n = types_.size();
  const size_t t = registry_.size();

  // Deduplicate edges.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.registry_ = std::move(registry_);
  g.types_ = std::move(types_);
  if (any_name_) g.names_ = std::move(names_);

  // CSR construction: count degrees, prefix-sum, fill, sort per node.
  g.offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (size_t i = 0; i < n; ++i) g.offsets_[i + 1] += g.offsets_[i];
  g.adjacency_.resize(edges_.size() * 2);
  {
    std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (const auto& [u, v] : edges_) {
      g.adjacency_[cursor[u]++] = v;
      g.adjacency_[cursor[v]++] = u;
    }
  }
  // Sort each adjacency list by (type, id).
  for (size_t v = 0; v < n; ++v) {
    auto begin = g.adjacency_.begin() + static_cast<int64_t>(g.offsets_[v]);
    auto end = g.adjacency_.begin() + static_cast<int64_t>(g.offsets_[v + 1]);
    std::sort(begin, end, [&](NodeId a, NodeId b) {
      if (g.types_[a] != g.types_[b]) return g.types_[a] < g.types_[b];
      return a < b;
    });
  }

  // Per-type node buckets.
  g.type_offsets_.assign(t + 1, 0);
  for (TypeId type : g.types_) ++g.type_offsets_[type + 1];
  for (size_t i = 0; i < t; ++i) g.type_offsets_[i + 1] += g.type_offsets_[i];
  g.type_buckets_.resize(n);
  {
    std::vector<uint64_t> cursor(g.type_offsets_.begin(),
                                 g.type_offsets_.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      g.type_buckets_[cursor[g.types_[v]]++] = v;
    }
  }

  // Type-pair edge counts (symmetric matrix).
  g.type_pair_edge_counts_.assign(t * t, 0);
  for (const auto& [u, v] : edges_) {
    TypeId a = g.types_[u], b = g.types_[v];
    ++g.type_pair_edge_counts_[static_cast<size_t>(a) * t + b];
    if (a != b) ++g.type_pair_edge_counts_[static_cast<size_t>(b) * t + a];
  }

  edges_.clear();
  names_.clear();
  any_name_ = false;
  built_ = true;
  return g;
}

}  // namespace metaprox
