// Mutable builder producing an immutable Graph. Deduplicates parallel edges
// and drops self-loops (the paper's object graphs are simple undirected
// graphs).
#ifndef METAPROX_GRAPH_GRAPH_BUILDER_H_
#define METAPROX_GRAPH_GRAPH_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace metaprox {

class GraphBuilder {
 public:
  /// Registers (or looks up) a type name.
  TypeId InternType(const std::string& name);

  /// Adds a node of the given type; returns its id. Optionally records a
  /// display name (useful for examples / debugging; not used by algorithms).
  NodeId AddNode(TypeId type, std::string name = "");
  NodeId AddNode(const std::string& type_name, std::string name = "");

  /// Records an undirected edge {u, v}. Parallel edges and self-loops are
  /// silently dropped at Build() time. Errors — out-of-range endpoints, or
  /// an edge added after Build() already ran (a finalized graph no longer
  /// reflects builder state; append via GraphDelta instead) — are
  /// structured, never silent mutations.
  util::Status AddEdge(NodeId u, NodeId v);

  size_t num_nodes() const { return types_.size(); }

  /// Finalizes into an immutable Graph. The builder is left empty;
  /// AddEdge refuses until a new graph is started with AddNode.
  Graph Build();

 private:
  TypeRegistry registry_;
  std::vector<TypeId> types_;
  std::vector<std::string> names_;
  bool any_name_ = false;
  bool built_ = false;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace metaprox

#endif  // METAPROX_GRAPH_GRAPH_BUILDER_H_
