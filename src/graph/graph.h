// Immutable typed object graph G = (V, E) with a type mapping τ: V → T
// (Sect. II). Stored in CSR form with each adjacency list sorted by
// (neighbor type, neighbor id), which gives:
//   - O(log deg) edge-existence tests,
//   - O(log deg) typed-neighbor slices (the hot operation in every
//     subgraph-matching kernel),
//   - cache-friendly sequential scans.
#ifndef METAPROX_GRAPH_GRAPH_H_
#define METAPROX_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/type_registry.h"
#include "graph/types.h"

namespace metaprox {

class GraphBuilder;

/// Immutable heterogeneous graph. Construct via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  size_t num_nodes() const { return types_.size(); }
  size_t num_edges() const { return adjacency_.size() / 2; }
  size_t num_types() const { return registry_.size(); }

  /// τ(v): the type of node v.
  TypeId TypeOf(NodeId v) const { return types_[v]; }

  const TypeRegistry& type_registry() const { return registry_; }

  /// All neighbors of v, sorted by (type, id).
  std::span<const NodeId> Neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  size_t Degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Neighbors of v whose type is `t` (contiguous slice of Neighbors(v)).
  std::span<const NodeId> NeighborsOfType(NodeId v, TypeId t) const;

  /// True iff {u, v} ∈ E. O(log deg(u)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// All nodes of type `t`, ascending.
  std::span<const NodeId> NodesOfType(TypeId t) const {
    return {type_buckets_.data() + type_offsets_[t],
            type_buckets_.data() + type_offsets_[t + 1]};
  }

  size_t CountOfType(TypeId t) const {
    return type_offsets_[t + 1] - type_offsets_[t];
  }

  /// Number of edges whose endpoint types are {a, b} (unordered).
  /// Precomputed at build time; used by matching-order heuristics.
  uint64_t EdgeCountBetweenTypes(TypeId a, TypeId b) const;

  /// Optional display name of a node ("" if none was provided).
  const std::string& NameOf(NodeId v) const;

  /// Human-readable one-line summary: nodes/edges/types.
  std::string Summary() const;

 private:
  friend class GraphBuilder;

  TypeRegistry registry_;
  std::vector<TypeId> types_;          // node -> type
  std::vector<uint64_t> offsets_;      // CSR offsets, size num_nodes + 1
  std::vector<NodeId> adjacency_;      // CSR neighbor array
  std::vector<NodeId> type_buckets_;   // nodes grouped by type
  std::vector<uint64_t> type_offsets_; // size num_types + 1
  std::vector<uint64_t> type_pair_edge_counts_;  // row-major |T| x |T|
  std::vector<std::string> names_;     // optional, may be empty
};

}  // namespace metaprox

#endif  // METAPROX_GRAPH_GRAPH_H_
