#include "graph/graph.h"

#include <algorithm>
#include <cstdio>

#include "util/macros.h"

namespace metaprox {

std::span<const NodeId> Graph::NeighborsOfType(NodeId v, TypeId t) const {
  auto nbrs = Neighbors(v);
  // Adjacency is sorted by (type, id); find the [lo, hi) slice of type t.
  auto lo = std::lower_bound(nbrs.begin(), nbrs.end(), t,
                             [&](NodeId n, TypeId type) {
                               return types_[n] < type;
                             });
  auto hi = std::upper_bound(lo, nbrs.end(), t,
                             [&](TypeId type, NodeId n) {
                               return type < types_[n];
                             });
  return {lo, hi};
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  MX_DCHECK(u < num_nodes() && v < num_nodes());
  auto nbrs = Neighbors(u);
  if (nbrs.size() > Degree(v)) {
    std::swap(u, v);
    nbrs = Neighbors(u);
  }
  const TypeId vt = types_[v];
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v,
                             [&](NodeId n, NodeId target) {
                               if (types_[n] != vt) return types_[n] < vt;
                               return n < target;
                             });
  return it != nbrs.end() && *it == v;
}

uint64_t Graph::EdgeCountBetweenTypes(TypeId a, TypeId b) const {
  MX_DCHECK(a < num_types() && b < num_types());
  return type_pair_edge_counts_[static_cast<size_t>(a) * num_types() + b];
}

const std::string& Graph::NameOf(NodeId v) const {
  static const std::string kEmpty;
  if (v >= names_.size()) return kEmpty;
  return names_[v];
}

std::string Graph::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "graph{nodes=%zu, edges=%zu, types=%zu}",
                num_nodes(), num_edges(), num_types());
  return buf;
}

}  // namespace metaprox
