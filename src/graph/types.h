// Fundamental identifier types for the typed object graph (Sect. II of the
// paper): nodes model objects, and every node carries exactly one type drawn
// from a small heterogeneous type set T.
#ifndef METAPROX_GRAPH_TYPES_H_
#define METAPROX_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace metaprox {

/// Identifier of an object (node) in the object graph.
using NodeId = uint32_t;

/// Identifier of an object type (user, school, hobby, ...).
using TypeId = uint16_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr TypeId kInvalidType = std::numeric_limits<TypeId>::max();

}  // namespace metaprox

#endif  // METAPROX_GRAPH_TYPES_H_
