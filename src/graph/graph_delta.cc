#include "graph/graph_delta.h"

#include <string>

#include "graph/graph_builder.h"

namespace metaprox {

NodeId GraphDelta::AddNode(std::string type, std::string name) {
  NodeId id = static_cast<NodeId>(base_nodes_ + nodes.size());
  nodes.push_back(Node{std::move(type), std::move(name)});
  return id;
}

util::Status GraphDelta::AddEdge(NodeId u, NodeId v) {
  const size_t limit = base_nodes_ + nodes.size();
  if (u >= limit || v >= limit) {
    return util::Status::InvalidArgument(
        "delta edge endpoint out of range (node " +
        std::to_string(u >= limit ? u : v) + " >= " + std::to_string(limit) +
        ")");
  }
  if (u == v) {
    return util::Status::InvalidArgument("delta edge is a self-loop on node " +
                                         std::to_string(u));
  }
  edges.emplace_back(u, v);
  return util::Status::Ok();
}

util::StatusOr<Graph> ApplyDelta(const Graph& g, const GraphDelta& delta) {
  if (delta.base_nodes() != g.num_nodes()) {
    return util::Status::FailedPrecondition(
        "delta primed against " + std::to_string(delta.base_nodes()) +
        " nodes but the graph has " + std::to_string(g.num_nodes()));
  }
  const size_t total = g.num_nodes() + delta.nodes.size();
  for (const auto& [u, v] : delta.edges) {
    if (u >= total || v >= total || u == v) {
      return util::Status::InvalidArgument(
          "delta contains an invalid edge {" + std::to_string(u) + ", " +
          std::to_string(v) + "}");
    }
  }

  // Replay the existing graph in its original construction order (types in
  // registry order, nodes in id order, edges from the CSR), then append.
  // Build() is a pure function of that content, so the result is
  // bit-identical to a from-scratch build of the grown graph.
  GraphBuilder builder;
  for (const std::string& type_name : g.type_registry().names()) {
    builder.InternType(type_name);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    builder.AddNode(g.TypeOf(v), g.NameOf(v));
  }
  for (const GraphDelta::Node& node : delta.nodes) {
    builder.AddNode(node.type, node.name);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : g.Neighbors(v)) {
      if (v < w) MX_RETURN_IF_ERROR(builder.AddEdge(v, w));
    }
  }
  for (const auto& [u, v] : delta.edges) {
    MX_RETURN_IF_ERROR(builder.AddEdge(u, v));
  }
  return builder.Build();
}

}  // namespace metaprox
