// Bidirectional mapping between human-readable type names ("user",
// "school", ...) and dense TypeId values.
#ifndef METAPROX_GRAPH_TYPE_REGISTRY_H_
#define METAPROX_GRAPH_TYPE_REGISTRY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace metaprox {

/// Registers type names and hands out dense TypeIds in registration order.
class TypeRegistry {
 public:
  /// Returns the id for `name`, registering it if unseen.
  TypeId Intern(const std::string& name);

  /// Returns the id for `name` or kInvalidType if not registered.
  TypeId Find(const std::string& name) const;

  /// Returns the name for `id`. Dies on out-of-range ids.
  const std::string& Name(TypeId id) const;

  size_t size() const { return names_.size(); }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TypeId> ids_;
};

}  // namespace metaprox

#endif  // METAPROX_GRAPH_TYPE_REGISTRY_H_
