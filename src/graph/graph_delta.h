// Append-only graph mutations for the incremental-maintenance path.
//
// A GraphDelta records nodes and edges to append to an existing immutable
// Graph. Node ids are assigned up front: a delta built against a graph of N
// nodes names its j-th new node N + j, so edges can reference both existing
// and not-yet-applied nodes. ApplyDelta() rebuilds the graph through
// GraphBuilder, which makes the result a pure function of the combined
// node/edge sets — a graph grown through any sequence of deltas is
// bit-identical to one built from scratch with the same content.
#ifndef METAPROX_GRAPH_GRAPH_DELTA_H_
#define METAPROX_GRAPH_GRAPH_DELTA_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace metaprox {

/// A batch of appends against a graph with `base_nodes()` nodes. Plain
/// data plus validating helpers; apply with ApplyDelta().
struct GraphDelta {
  struct Node {
    std::string type;  // type name; unknown names are interned on apply
    std::string name;  // optional display name
  };

  GraphDelta() = default;
  explicit GraphDelta(size_t base_nodes) : base_nodes_(base_nodes) {}

  /// Appends a node; returns the id it will have once applied.
  NodeId AddNode(std::string type, std::string name = "");

  /// Appends an undirected edge. Endpoints may be existing nodes or nodes
  /// added to this delta. Self-loops and out-of-range endpoints are
  /// structured errors (parallel edges are deduplicated on apply, exactly
  /// as GraphBuilder does).
  util::Status AddEdge(NodeId u, NodeId v);

  size_t base_nodes() const { return base_nodes_; }
  bool empty() const { return nodes.empty() && edges.empty(); }

  std::vector<Node> nodes;
  std::vector<std::pair<NodeId, NodeId>> edges;

 private:
  size_t base_nodes_ = 0;
};

/// Rebuilds `g` with `delta` appended. Fails if the delta was primed
/// against a different node count or references out-of-range endpoints.
/// Deterministic: equals building one GraphBuilder from the union.
util::StatusOr<Graph> ApplyDelta(const Graph& g, const GraphDelta& delta);

}  // namespace metaprox

#endif  // METAPROX_GRAPH_GRAPH_DELTA_H_
