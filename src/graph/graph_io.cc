#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "graph/graph_builder.h"

namespace metaprox {
namespace {

constexpr char kMagic[] = "metaprox-graph v1";

// Reads the next non-empty, non-comment line into `line`.
bool NextLine(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos) continue;
    if (line[i] == '#') continue;
    if (i > 0 || line.back() == '\r') {
      size_t j = line.find_last_not_of(" \t\r");
      line = line.substr(i, j - i + 1);
    }
    return true;
  }
  return false;
}

}  // namespace

util::Status WriteGraph(const Graph& g, std::ostream& os) {
  os << kMagic << '\n';
  os << "types " << g.num_types() << '\n';
  for (size_t t = 0; t < g.num_types(); ++t) {
    os << g.type_registry().Name(static_cast<TypeId>(t)) << '\n';
  }
  os << "nodes " << g.num_nodes() << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << g.TypeOf(v);
    const std::string& name = g.NameOf(v);
    if (!name.empty()) os << ' ' << name;
    os << '\n';
  }
  os << "edges " << g.num_edges() << '\n';
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.Neighbors(v)) {
      if (v < u) os << v << ' ' << u << '\n';
    }
  }
  if (!os.good()) return util::Status::IoError("write failed");
  return util::Status::Ok();
}

util::Status WriteGraphToFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open for write: " + path);
  return WriteGraph(g, out);
}

util::StatusOr<Graph> ReadGraph(std::istream& is) {
  std::string line;
  if (!NextLine(is, line) || line != kMagic) {
    return util::Status::InvalidArgument("missing metaprox-graph v1 header");
  }

  auto expect_section = [&](const char* keyword,
                            size_t& count) -> util::Status {
    if (!NextLine(is, line)) {
      return util::Status::InvalidArgument(std::string("missing section: ") +
                                           keyword);
    }
    std::istringstream ss(line);
    std::string word;
    ss >> word >> count;
    if (word != keyword || ss.fail()) {
      return util::Status::InvalidArgument(
          std::string("malformed section header, expected: ") + keyword);
    }
    return util::Status::Ok();
  };

  GraphBuilder builder;

  size_t num_types = 0;
  MX_RETURN_IF_ERROR(expect_section("types", num_types));
  std::vector<TypeId> type_ids;
  type_ids.reserve(num_types);
  for (size_t i = 0; i < num_types; ++i) {
    if (!NextLine(is, line)) {
      return util::Status::InvalidArgument("truncated types section");
    }
    type_ids.push_back(builder.InternType(line));
  }

  size_t num_nodes = 0;
  MX_RETURN_IF_ERROR(expect_section("nodes", num_nodes));
  for (size_t i = 0; i < num_nodes; ++i) {
    if (!NextLine(is, line)) {
      return util::Status::InvalidArgument("truncated nodes section");
    }
    std::istringstream ss(line);
    size_t type = 0;
    std::string name;
    ss >> type;
    if (ss.fail() || type >= num_types) {
      return util::Status::InvalidArgument("bad node type on line: " + line);
    }
    std::getline(ss, name);
    if (!name.empty() && name.front() == ' ') name.erase(0, 1);
    builder.AddNode(type_ids[type], std::move(name));
  }

  size_t num_edges = 0;
  MX_RETURN_IF_ERROR(expect_section("edges", num_edges));
  for (size_t i = 0; i < num_edges; ++i) {
    if (!NextLine(is, line)) {
      return util::Status::InvalidArgument("truncated edges section");
    }
    std::istringstream ss(line);
    uint64_t u = 0, v = 0;
    ss >> u >> v;
    if (ss.fail() || u >= num_nodes || v >= num_nodes || u == v) {
      return util::Status::InvalidArgument("bad edge on line: " + line);
    }
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }

  return builder.Build();
}

util::StatusOr<Graph> ReadGraphFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for read: " + path);
  return ReadGraph(in);
}

}  // namespace metaprox
