// Supervised Random Walks (Backstrom & Leskovec, WSDM'11) — the strongest
// external baseline in Sect. V-B.
//
// Edge strengths are a function of edge features: here, as in the paper's
// setup, the features of an edge are derived from its endpoint *types*
// (one-hot over unordered type pairs), so a_uv = exp(theta[f(u,v)]). The
// transition matrix of a personalized-PageRank walk is biased by these
// strengths, and theta is learned from the same pairwise preferences
// (q, x, y) by gradient ascent on a sigmoid pairwise loss; the gradient of
// the stationary probabilities w.r.t. theta is computed by differentiated
// power iteration.
#ifndef METAPROX_BASELINES_SRW_H_
#define METAPROX_BASELINES_SRW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "learning/trainer.h"  // Example

namespace metaprox {

struct SrwOptions {
  double restart = 0.15;        // PPR restart probability
  int power_iterations = 12;    // per PPR / gradient evaluation
  double learning_rate = 0.5;
  int train_iterations = 20;
  double mu = 5.0;              // pairwise sigmoid scale
  uint64_t seed = 11;
};

class SupervisedRandomWalk {
 public:
  SupervisedRandomWalk(const Graph& g, SrwOptions options);

  /// Learns the edge-feature weights theta from ranking triplets.
  void Train(std::span<const Example> examples);

  /// Personalized PageRank scores of all nodes w.r.t. q under the current
  /// theta.
  std::vector<double> Ppr(NodeId q) const;

  /// Top-k nodes of `candidate_type` by PPR score (query excluded).
  std::vector<std::pair<NodeId, double>> Rank(NodeId q, TypeId candidate_type,
                                              size_t k) const;

  const std::vector<double>& theta() const { return theta_; }
  size_t num_features() const { return theta_.size(); }

 private:
  // Feature id of the unordered type pair of edge (u, v).
  uint32_t FeatureOf(NodeId u, NodeId v) const;

  // Recomputes per-edge transition weights from theta_.
  void RebuildTransitions();

  const Graph& g_;
  SrwOptions options_;
  std::vector<double> theta_;
  std::vector<int32_t> feature_of_pair_;  // |T|^2 -> feature id or -1

  // CSR-aligned transition data: for each directed arc (v -> neighbor),
  // its probability and feature id.
  std::vector<double> arc_prob_;
  std::vector<uint32_t> arc_feature_;
  std::vector<uint64_t> arc_offsets_;  // == graph CSR offsets
};

}  // namespace metaprox

#endif  // METAPROX_BASELINES_SRW_H_
