// PathSim (Sun et al., PVLDB'11 [4]) — the unsupervised metapath-based
// similarity that metagraph proximity generalizes:
//
//   s(x, y) = 2 |P_{x~>y}| / (|P_{x~>x}| + |P_{y~>y}|)
//
// over the instances of one *symmetric* metapath P. The original system
// relies on manually selecting the metapath; this implementation scores
// with one user-chosen (or every mined) metapath and is used as an
// additional unsupervised reference point in the ablation benches.
//
// Path counts are computed by sparse matrix products of the typed
// biadjacency matrices along the metapath, which is exactly PathSim's
// "PathSim-baseline" computation strategy.
#ifndef METAPROX_BASELINES_PATHSIM_H_
#define METAPROX_BASELINES_PATHSIM_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace metaprox {

/// PathSim over one metapath, specified as the type sequence
/// t_0 - t_1 - ... - t_k (t_0 == t_k for a symmetric metapath).
class PathSim {
 public:
  /// Builds the commuting-matrix row structure for `type_path` on `g`.
  /// Dies unless the path is symmetric (t_0 == t_k) with k >= 1.
  PathSim(const Graph& g, std::vector<TypeId> type_path);

  /// Number of t_0-to-t_0 path instances from x to y (x, y of type t_0).
  uint64_t PathCount(NodeId x, NodeId y) const;

  /// s(x, y) per the formula above; 0 when both self-counts are 0.
  double Similarity(NodeId x, NodeId y) const;

  /// Top-k nodes of the anchor type by similarity to q (q excluded).
  std::vector<std::pair<NodeId, double>> Rank(NodeId q, size_t k) const;

  const std::vector<TypeId>& type_path() const { return type_path_; }

 private:
  // Sparse row of the commuting matrix for one anchor node.
  struct Row {
    std::vector<std::pair<NodeId, uint64_t>> entries;  // sorted by node
    uint64_t self_count = 0;
  };
  const Row& RowOf(NodeId x) const;

  const Graph& g_;
  std::vector<TypeId> type_path_;
  std::vector<Row> rows_;                  // indexed by anchor position
  std::vector<int64_t> anchor_position_;   // NodeId -> index into rows_
};

}  // namespace metaprox

#endif  // METAPROX_BASELINES_PATHSIM_H_
