#include "baselines/pathsim.h"

#include <algorithm>
#include <unordered_map>

#include "util/macros.h"

namespace metaprox {

PathSim::PathSim(const Graph& g, std::vector<TypeId> type_path)
    : g_(g), type_path_(std::move(type_path)) {
  MX_CHECK_MSG(type_path_.size() >= 2, "metapath needs >= 2 types");
  MX_CHECK_MSG(type_path_.front() == type_path_.back(),
               "PathSim requires a symmetric (round-trip) metapath");
  const TypeId anchor = type_path_.front();
  auto anchors = g_.NodesOfType(anchor);

  anchor_position_.assign(g_.num_nodes(), -1);
  for (size_t i = 0; i < anchors.size(); ++i) {
    anchor_position_[anchors[i]] = static_cast<int64_t>(i);
  }
  rows_.resize(anchors.size());

  // For each anchor, walk the metapath with a sparse frontier of
  // (node, path count) pairs.
  std::unordered_map<NodeId, uint64_t> frontier, next;
  for (size_t i = 0; i < anchors.size(); ++i) {
    frontier.clear();
    frontier.emplace(anchors[i], 1);
    for (size_t step = 1; step < type_path_.size(); ++step) {
      next.clear();
      for (const auto& [v, count] : frontier) {
        for (NodeId w : g_.NeighborsOfType(v, type_path_[step])) {
          next[w] += count;
        }
      }
      std::swap(frontier, next);
    }
    Row& row = rows_[i];
    row.entries.reserve(frontier.size());
    for (const auto& [v, count] : frontier) {
      if (v == anchors[i]) {
        row.self_count = count;
      } else {
        row.entries.emplace_back(v, count);
      }
    }
    std::sort(row.entries.begin(), row.entries.end());
  }
}

const PathSim::Row& PathSim::RowOf(NodeId x) const {
  MX_CHECK_MSG(x < anchor_position_.size() && anchor_position_[x] >= 0,
               "node is not of the metapath's anchor type");
  return rows_[static_cast<size_t>(anchor_position_[x])];
}

uint64_t PathSim::PathCount(NodeId x, NodeId y) const {
  const Row& row = RowOf(x);
  if (x == y) return row.self_count;
  auto it = std::lower_bound(
      row.entries.begin(), row.entries.end(), y,
      [](const auto& entry, NodeId node) { return entry.first < node; });
  if (it == row.entries.end() || it->first != y) return 0;
  return it->second;
}

double PathSim::Similarity(NodeId x, NodeId y) const {
  const uint64_t xy = PathCount(x, y);
  if (xy == 0) return x == y ? 1.0 : 0.0;
  const uint64_t xx = RowOf(x).self_count;
  const uint64_t yy = RowOf(y).self_count;
  const double denom = static_cast<double>(xx) + static_cast<double>(yy);
  if (denom == 0.0) return 0.0;
  return 2.0 * static_cast<double>(xy) / denom;
}

std::vector<std::pair<NodeId, double>> PathSim::Rank(NodeId q,
                                                     size_t k) const {
  const Row& row = RowOf(q);
  std::vector<std::pair<NodeId, double>> scored;
  scored.reserve(row.entries.size());
  for (const auto& [y, count] : row.entries) {
    if (y == q) continue;
    scored.emplace_back(y, Similarity(q, y));
  }
  const size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<int64_t>(take), scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  scored.resize(take);
  return scored;
}

}  // namespace metaprox
