#include "baselines/simple.h"

#include <algorithm>

#include "eval/metrics.h"

namespace metaprox {

std::vector<double> UniformWeights(const MetagraphVectorIndex& index) {
  std::vector<double> w(index.num_metagraphs(), 0.0);
  for (uint32_t i = 0; i < w.size(); ++i) {
    if (index.IsCommitted(i)) w[i] = 1.0;
  }
  return w;
}

std::vector<double> BestSingleMetagraphWeights(
    const MetagraphVectorIndex& index, const GroundTruth& gt,
    std::span<const NodeId> train_queries, size_t k) {
  const size_t m = index.num_metagraphs();
  std::vector<double> ndcg_sum(m, 0.0);

  // Dense scratch for node vectors with a touched-list reset.
  std::vector<double> scratch(m, 0.0);
  std::vector<uint32_t> touched;
  std::vector<std::pair<uint32_t, double>> sparse;

  // Per metagraph: (score, candidate) lists for the current query.
  std::vector<std::vector<std::pair<double, NodeId>>> per_mg(m);

  for (NodeId q : train_queries) {
    const auto& relevant = gt.RelevantTo(q);
    if (relevant.empty()) continue;
    for (auto& v : per_mg) v.clear();

    sparse.clear();
    index.SparseNodeVector(q, &sparse);
    std::vector<std::pair<uint32_t, double>> q_vec = sparse;

    for (NodeId y : index.Candidates(q)) {
      if (y == q) continue;
      // Load y's node vector into the scratch.
      sparse.clear();
      index.SparseNodeVector(y, &sparse);
      for (const auto& [i, c] : sparse) {
        scratch[i] = c;
        touched.push_back(i);
      }
      // Score each metagraph that the pair shares.
      sparse.clear();
      index.SparsePairVector(q, y, &sparse);
      for (const auto& [i, c] : sparse) {
        double mq_i = 0.0;
        for (const auto& [j, cq] : q_vec) {
          if (j == i) {
            mq_i = cq;
            break;
          }
        }
        const double denom = mq_i + scratch[i];
        if (denom > 0.0) per_mg[i].emplace_back(2.0 * c / denom, y);
      }
      for (uint32_t i : touched) scratch[i] = 0.0;
      touched.clear();
    }

    for (uint32_t i = 0; i < m; ++i) {
      if (per_mg[i].empty()) continue;
      auto& scored = per_mg[i];
      const size_t take = std::min(k, scored.size());
      std::partial_sort(scored.begin(),
                        scored.begin() + static_cast<int64_t>(take),
                        scored.end(), [](const auto& a, const auto& b) {
                          if (a.first != b.first) return a.first > b.first;
                          return a.second < b.second;
                        });
      std::vector<NodeId> ranked;
      ranked.reserve(take);
      for (size_t j = 0; j < take; ++j) ranked.push_back(scored[j].second);
      ndcg_sum[i] += NdcgAtK(ranked, relevant, relevant.size(), k);
    }
  }

  uint32_t best = 0;
  double best_score = -1.0;
  for (uint32_t i = 0; i < m; ++i) {
    if (index.IsCommitted(i) && ndcg_sum[i] > best_score) {
      best_score = ndcg_sum[i];
      best = i;
    }
  }
  std::vector<double> w(m, 0.0);
  if (best_score >= 0.0) w[best] = 1.0;
  return w;
}

}  // namespace metaprox
