#include "baselines/srw.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/macros.h"
#include "util/rng.h"

namespace metaprox {

SupervisedRandomWalk::SupervisedRandomWalk(const Graph& g, SrwOptions options)
    : g_(g), options_(options) {
  const size_t t = g.num_types();
  // Enumerate unordered type pairs that actually occur as edges.
  feature_of_pair_.assign(t * t, -1);
  uint32_t next_feature = 0;
  for (TypeId a = 0; a < t; ++a) {
    for (TypeId b = a; b < t; ++b) {
      if (g.EdgeCountBetweenTypes(a, b) > 0) {
        feature_of_pair_[a * t + b] = static_cast<int32_t>(next_feature);
        feature_of_pair_[b * t + a] = static_cast<int32_t>(next_feature);
        ++next_feature;
      }
    }
  }
  theta_.assign(next_feature, 0.0);

  // Arc layout mirrors the graph's adjacency.
  arc_offsets_.assign(g.num_nodes() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    arc_offsets_[v + 1] = arc_offsets_[v] + g.Degree(v);
  }
  arc_prob_.assign(arc_offsets_.back(), 0.0);
  arc_feature_.assign(arc_offsets_.back(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    uint64_t base = arc_offsets_[v];
    auto nbrs = g.Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      arc_feature_[base + i] = FeatureOf(v, nbrs[i]);
    }
  }
  RebuildTransitions();
}

uint32_t SupervisedRandomWalk::FeatureOf(NodeId u, NodeId v) const {
  int32_t f = feature_of_pair_[static_cast<size_t>(g_.TypeOf(u)) *
                                   g_.num_types() +
                               g_.TypeOf(v)];
  MX_DCHECK(f >= 0);
  return static_cast<uint32_t>(f);
}

void SupervisedRandomWalk::RebuildTransitions() {
  for (NodeId v = 0; v < g_.num_nodes(); ++v) {
    const uint64_t begin = arc_offsets_[v], end = arc_offsets_[v + 1];
    double sum = 0.0;
    for (uint64_t a = begin; a < end; ++a) {
      arc_prob_[a] = std::exp(theta_[arc_feature_[a]]);
      sum += arc_prob_[a];
    }
    if (sum > 0.0) {
      for (uint64_t a = begin; a < end; ++a) arc_prob_[a] /= sum;
    }
  }
}

std::vector<double> SupervisedRandomWalk::Ppr(NodeId q) const {
  const size_t n = g_.num_nodes();
  const double alpha = options_.restart;
  std::vector<double> p(n, 0.0), next(n, 0.0);
  p[q] = 1.0;
  for (int iter = 0; iter < options_.power_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    next[q] += alpha;
    for (NodeId v = 0; v < n; ++v) {
      const double pv = p[v];
      if (pv == 0.0) continue;
      const uint64_t begin = arc_offsets_[v], end = arc_offsets_[v + 1];
      if (begin == end) {
        next[q] += (1.0 - alpha) * pv;  // dangling mass restarts
        continue;
      }
      const double mass = (1.0 - alpha) * pv;
      auto nbrs = g_.Neighbors(v);
      for (uint64_t a = begin; a < end; ++a) {
        next[nbrs[a - begin]] += mass * arc_prob_[a];
      }
    }
    std::swap(p, next);
  }
  // Scale so pairwise differences are O(1) for the sigmoid loss.
  const double scale = static_cast<double>(n);
  for (double& v : p) v *= scale;
  return p;
}

void SupervisedRandomWalk::Train(std::span<const Example> examples) {
  if (examples.empty() || theta_.empty()) return;
  const size_t n = g_.num_nodes();
  const size_t k = theta_.size();
  const double alpha = options_.restart;

  // Group examples by query.
  std::unordered_map<NodeId, std::vector<const Example*>> by_query;
  for (const Example& e : examples) by_query[e.q].push_back(&e);

  std::vector<double> grad(k);
  // Per-node feature expectation s_u[f] = sum over arcs of P_uv [f_uv = f].
  std::vector<double> s(n * k);

  for (int iter = 0; iter < options_.train_iterations; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);

    std::fill(s.begin(), s.end(), 0.0);
    for (NodeId v = 0; v < n; ++v) {
      for (uint64_t a = arc_offsets_[v]; a < arc_offsets_[v + 1]; ++a) {
        s[v * k + arc_feature_[a]] += arc_prob_[a];
      }
    }

    for (const auto& [q, exs] : by_query) {
      // Differentiated power iteration: p (n) and dp (n x k).
      std::vector<double> p(n, 0.0), pnext(n, 0.0);
      std::vector<double> dp(n * k, 0.0), dpnext(n * k, 0.0);
      p[q] = 1.0;
      for (int it = 0; it < options_.power_iterations; ++it) {
        std::fill(pnext.begin(), pnext.end(), 0.0);
        std::fill(dpnext.begin(), dpnext.end(), 0.0);
        pnext[q] += alpha;
        for (NodeId v = 0; v < n; ++v) {
          const double pv = p[v];
          const double* dpv = &dp[v * k];
          bool dp_zero = true;
          for (size_t f = 0; f < k; ++f) {
            if (dpv[f] != 0.0) {
              dp_zero = false;
              break;
            }
          }
          if (pv == 0.0 && dp_zero) continue;
          const uint64_t begin = arc_offsets_[v], end = arc_offsets_[v + 1];
          if (begin == end) {
            pnext[q] += (1.0 - alpha) * pv;
            double* dq = &dpnext[static_cast<size_t>(q) * k];
            for (size_t f = 0; f < k; ++f) dq[f] += (1.0 - alpha) * dpv[f];
            continue;
          }
          auto nbrs = g_.Neighbors(v);
          const double* sv = &s[v * k];
          for (uint64_t a = begin; a < end; ++a) {
            const NodeId w = nbrs[a - begin];
            const double puv = arc_prob_[a];
            const uint32_t f_uv = arc_feature_[a];
            pnext[w] += (1.0 - alpha) * pv * puv;
            double* dw = &dpnext[static_cast<size_t>(w) * k];
            // d(P_uv)/dtheta_f = P_uv ([f == f_uv] - s_v[f])
            for (size_t f = 0; f < k; ++f) {
              double dP = puv * ((f == f_uv ? 1.0 : 0.0) - sv[f]);
              dw[f] += (1.0 - alpha) * (dpv[f] * puv + pv * dP);
            }
          }
        }
        std::swap(p, pnext);
        std::swap(dp, dpnext);
      }
      const double scale = static_cast<double>(n);
      for (const Example* e : exs) {
        const double px = p[e->x] * scale;
        const double py = p[e->y] * scale;
        const double prob =
            1.0 / (1.0 + std::exp(-options_.mu * (px - py)));
        const double c = options_.mu * (1.0 - prob) /
                         static_cast<double>(examples.size());
        const double* dx = &dp[static_cast<size_t>(e->x) * k];
        const double* dy = &dp[static_cast<size_t>(e->y) * k];
        for (size_t f = 0; f < k; ++f) {
          grad[f] += c * scale * (dx[f] - dy[f]);
        }
      }
    }

    for (size_t f = 0; f < k; ++f) {
      theta_[f] += options_.learning_rate * grad[f];
      theta_[f] = std::clamp(theta_[f], -6.0, 6.0);
    }
    RebuildTransitions();
  }
}

std::vector<std::pair<NodeId, double>> SupervisedRandomWalk::Rank(
    NodeId q, TypeId candidate_type, size_t k) const {
  std::vector<double> p = Ppr(q);
  std::vector<std::pair<NodeId, double>> scored;
  for (NodeId v : g_.NodesOfType(candidate_type)) {
    if (v == q) continue;
    scored.emplace_back(v, p[v]);
  }
  const size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<int64_t>(take), scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  scored.resize(take);
  return scored;
}

}  // namespace metaprox
