// The two degenerate MGP baselines of Sect. V-B:
//   MGP-U — uniform weights (no learning),
//   MGP-B — the single best metagraph picked on the training queries.
#ifndef METAPROX_BASELINES_SIMPLE_H_
#define METAPROX_BASELINES_SIMPLE_H_

#include <span>
#include <vector>

#include "eval/ground_truth.h"
#include "index/metagraph_vectors.h"

namespace metaprox {

/// MGP-U: weight 1 for every committed metagraph.
std::vector<double> UniformWeights(const MetagraphVectorIndex& index);

/// MGP-B: one-hot weights on the metagraph whose one-hot ranking maximizes
/// mean NDCG@k over `train_queries`. Requires index.Finalize().
std::vector<double> BestSingleMetagraphWeights(
    const MetagraphVectorIndex& index, const GroundTruth& gt,
    std::span<const NodeId> train_queries, size_t k);

}  // namespace metaprox

#endif  // METAPROX_BASELINES_SIMPLE_H_
