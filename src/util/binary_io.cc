#include "util/binary_io.h"

namespace metaprox::util {

void AppendVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool ReadVarint(std::span<const uint8_t> bytes, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  for (size_t i = 0; i < 10; ++i) {
    if (*pos >= bytes.size()) return false;
    const uint8_t byte = bytes[*pos];
    ++(*pos);
    // The 10th byte holds bits 63..69; only bit 63 exists in a uint64_t,
    // so any higher payload bit (or a continuation bit) overflows.
    if (i == 9 && (byte & 0xfe) != 0) return false;
    result |= static_cast<uint64_t>(byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

namespace {

// Table for the reflected IEEE 802.3 polynomial 0xEDB88320, built once.
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32(std::span<const uint8_t> bytes) {
  static const Crc32Table table;
  uint32_t crc = 0xffffffffu;
  for (uint8_t byte : bytes) {
    crc = (crc >> 8) ^ table.entries[(crc ^ byte) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

}  // namespace metaprox::util
