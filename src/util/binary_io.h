// Primitives of the binary artifact formats (util/container.h): LEB128
// varints, little-endian fixed-width scalar append/read, and CRC-32 for
// section checksums.
//
// Everything here is deterministic byte-in/byte-out and bounds-checked:
// the decoders take spans and return false / error instead of reading past
// the end, because they are fed artifact bytes that may be truncated or
// corrupt (the corruption battery in tests/binary_format_test.cc flips and
// truncates artifacts at every offset and expects structured failures).
#ifndef METAPROX_UTIL_BINARY_IO_H_
#define METAPROX_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>

namespace metaprox::util {

// ---- varints ---------------------------------------------------------------

/// Appends `value` as an LEB128 varint (7 bits per byte, low first; 1-10
/// bytes).
void AppendVarint(std::string* out, uint64_t value);

/// Reads one varint from `bytes` at `*pos`, advancing `*pos` past it.
/// Returns false (leaving `*pos` unspecified) on truncation, on a varint
/// longer than 10 bytes, and on a 10th byte carrying bits beyond 2^64 —
/// every encoding AppendVarint cannot produce is rejected rather than
/// wrapped.
bool ReadVarint(std::span<const uint8_t> bytes, size_t* pos, uint64_t* value);

// ---- fixed-width little-endian scalars -------------------------------------

/// Appends sizeof(T) little-endian bytes. T must be trivially copyable
/// (uint32_t/uint64_t/float/double in practice).
template <typename T>
void AppendScalar(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

/// Reads sizeof(T) little-endian bytes at `*pos`, advancing it. Returns
/// false on truncation.
template <typename T>
bool ReadScalar(std::span<const uint8_t> bytes, size_t* pos, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes.size() - *pos < sizeof(T) || *pos > bytes.size()) return false;
  std::memcpy(value, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

// ---- CRC-32 ----------------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG crc32). Software
/// table-driven; plenty for artifact checksums, which are read once per
/// process start.
uint32_t Crc32(std::span<const uint8_t> bytes);
inline uint32_t Crc32(const std::string& bytes) {
  return Crc32(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()));
}

}  // namespace metaprox::util

#endif  // METAPROX_UTIL_BINARY_IO_H_
