#include "util/rng.h"

#include <cmath>
#include <vector>

namespace metaprox::util {

uint64_t Rng::Zipf(uint64_t n, double alpha) {
  MX_CHECK(n > 0);
  // Inverse-CDF sampling over the truncated zeta distribution. This is O(n)
  // per draw in the worst case; acceptable for datagen-sized n.
  double norm = 0.0;
  for (uint64_t k = 0; k < n; ++k) norm += std::pow(k + 1.0, -alpha);
  double u = UniformDouble() * norm;
  double acc = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += std::pow(k + 1.0, -alpha);
    if (u <= acc) return k;
  }
  return n - 1;
}

}  // namespace metaprox::util
