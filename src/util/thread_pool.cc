#include "util/thread_pool.h"

#include <algorithm>

namespace metaprox::util {

size_t ResolveNumThreads(size_t requested) {
  if (requested == 0) {
    requested = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  return std::min(requested, kMaxThreads);
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = ResolveNumThreads(num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    mx::MutexLock lock(mu_);
    stopping_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      mx::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) wake_.Wait(lock);
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into its future
  }
}

}  // namespace metaprox::util
