// Tiny leveled logger for harness/CLI output. Thread-safe: the offline
// matching phase fans out over util::ThreadPool workers, so concurrent
// MX_LOG emissions are serialized by an mx::Mutex in logging.cc (each
// statement's message is built in a statement-local stream and emitted
// as one atomic line; the level filter is a relaxed atomic). The mutex
// is function-local static state, not a member — there is no guarded
// field to annotate, so the contract lives here and in the .cc.
#ifndef METAPROX_UTIL_LOGGING_H_
#define METAPROX_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace metaprox::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually emitted. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void Emit(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Emit(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

#define MX_LOG(level)                                                 \
  ::metaprox::util::internal::LogMessage(::metaprox::util::LogLevel:: \
                                             k##level)                \
      .stream()

}  // namespace metaprox::util

#endif  // METAPROX_UTIL_LOGGING_H_
