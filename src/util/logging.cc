#include "util/logging.h"

#include <cstdio>

namespace metaprox::util {
namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {
void Emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), message.c_str());
}
}  // namespace internal

}  // namespace metaprox::util
