#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/thread_annotations.h"

namespace metaprox::util {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Serializes Emit() so lines from concurrent worker threads never
// interleave mid-line.
mx::Mutex& EmitMutex() {
  static mx::Mutex mu;
  return mu;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {
void Emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  mx::MutexLock lock(EmitMutex());
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), message.c_str());
}
}  // namespace internal

}  // namespace metaprox::util
