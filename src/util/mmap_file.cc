#include "util/mmap_file.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#define METAPROX_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace metaprox::util {

StatusOr<std::shared_ptr<MmapFile>> MmapFile::OpenReadOnly(
    const std::string& path) {
  auto file = std::shared_ptr<MmapFile>(new MmapFile());
  file->path_ = path;
#if METAPROX_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IoError("cannot stat " + path);
  }
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ > 0) {
    void* addr =
        ::mmap(nullptr, file->size_, PROT_READ, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return Status::IoError("cannot mmap " + path);
    }
    file->data_ = addr;
    file->mapped_ = true;
  }
  // The mapping survives the descriptor.
  ::close(fd);
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return Status::IoError("cannot stat " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  file->fallback_.resize(static_cast<size_t>(end));
  if (end > 0 && std::fread(file->fallback_.data(), 1, file->fallback_.size(),
                            f) != file->fallback_.size()) {
    std::fclose(f);
    return Status::IoError("cannot read " + path);
  }
  std::fclose(f);
  file->data_ = file->fallback_.data();
  file->size_ = file->fallback_.size();
#endif
  return file;
}

MmapFile::~MmapFile() {
#if METAPROX_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<void*>(data_), size_);
  }
#endif
}

}  // namespace metaprox::util
