// Fixed-size worker pool for the offline phase's parallel stages: one
// match-and-commit task per metagraph (core/engine.cc) and the per-level
// frequency/support evaluations of the miner (mining/miner.cc).
//
// Semantics:
//   * Submit() is thread-safe and returns a std::future of the callable's
//     result; exceptions thrown by the task are captured and rethrown from
//     future::get().
//   * Tasks run in submission order (single FIFO queue), but complete in
//     whatever order the scheduler allows — callers that need a
//     deterministic result order must sequence on the futures themselves
//     (ParallelMap in miner.cc) or restore a canonical order afterwards
//     (MetagraphVectorIndex::Seal/Finalize).
//   * The destructor drains the queue: every task submitted before
//     destruction runs to completion, then the workers are joined.
#ifndef METAPROX_UTIL_THREAD_POOL_H_
#define METAPROX_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/macros.h"
#include "util/thread_annotations.h"

namespace metaprox::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  MX_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `f` and returns a future of its result.
  template <typename F>
  auto Submit(F f) -> std::future<std::invoke_result_t<F>> MX_EXCLUDES(mu_) {
    using R = std::invoke_result_t<F>;
    // packaged_task is move-only but std::function requires copyable
    // callables, so the task is held behind a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> future = task->get_future();
    {
      mx::MutexLock lock(mu_);
      MX_CHECK_MSG(!stopping_, "Submit() on a stopping ThreadPool");
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.NotifyOne();
    return future;
  }

 private:
  void WorkerLoop() MX_EXCLUDES(mu_);

  mx::Mutex mu_;
  mx::CondVar wake_;
  std::deque<std::function<void()>> queue_ MX_GUARDED_BY(mu_);
  bool stopping_ MX_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Upper bound on worker threads, applied by ResolveNumThreads. Guards
/// against nonsense requests (e.g. -1 wrapped through an unsigned option)
/// spawning threads until the process dies; real machines top out far
/// below this.
inline constexpr size_t kMaxThreads = 512;

/// Resolves a user-facing thread-count option: 0 = hardware concurrency,
/// clamped to [1, kMaxThreads]. (Strict parsing of the raw flag/env text
/// lives in util/parse.h.)
size_t ResolveNumThreads(size_t requested);

}  // namespace metaprox::util

#endif  // METAPROX_UTIL_THREAD_POOL_H_
