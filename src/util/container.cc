#include "util/container.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <ostream>

#include "util/binary_io.h"
#include "util/lzw.h"
#include "util/macros.h"

namespace metaprox::util {

// The wire layout IS the little-endian in-memory layout of the scalar
// fields; big-endian hosts would need byte swaps in Append/ReadScalar.
static_assert(std::endian::native == std::endian::little,
              "binary artifact containers assume a little-endian host");

namespace {

constexpr size_t kHeaderSize = 32;
constexpr size_t kTableEntrySize = 40;
// More sections than any artifact defines; a count beyond this in a
// header is corruption, not a real file.
constexpr uint32_t kMaxSections = 64;

size_t AlignUp(size_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

}  // namespace

bool StartsWithContainerMagic(std::span<const uint8_t> bytes) {
  return bytes.size() >= sizeof(kContainerMagic) &&
         std::memcmp(bytes.data(), kContainerMagic,
                     sizeof(kContainerMagic)) == 0;
}

bool StartsWithContainerMagic(const std::string& bytes) {
  return StartsWithContainerMagic(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()));
}

StatusOr<bool> PathIsContainer(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  char head[sizeof(kContainerMagic)] = {};
  in.read(head, sizeof(head));
  if (in.gcount() < static_cast<std::streamsize>(sizeof(head))) return false;
  return std::memcmp(head, kContainerMagic, sizeof(head)) == 0;
}

void ContainerWriter::AddSection(uint32_t id, std::string bytes,
                                 uint32_t flags, bool try_compress) {
  for (const Section& s : sections_) {
    MX_CHECK_MSG(s.id != id, "duplicate container section id");
  }
  Section section;
  section.id = id;
  section.flags = flags & ~kSectionLzw;
  section.raw_size = bytes.size();
  if (try_compress && !bytes.empty()) {
    std::string compressed = LzwCompress(bytes);
    if (compressed.size() < bytes.size()) {
      section.flags |= kSectionLzw;
      section.stored = std::move(compressed);
    } else {
      section.stored = std::move(bytes);
    }
  } else {
    section.stored = std::move(bytes);
  }
  sections_.push_back(std::move(section));
}

Status ContainerWriter::WriteTo(std::ostream& os) const {
  // Lay the payloads out first so the table carries final offsets.
  const size_t table_end =
      kHeaderSize + sections_.size() * kTableEntrySize;
  std::vector<uint64_t> offsets(sections_.size());
  size_t cursor = table_end;
  for (size_t i = 0; i < sections_.size(); ++i) {
    cursor = AlignUp(cursor);
    offsets[i] = cursor;
    cursor += sections_[i].stored.size();
  }
  const uint64_t total_size = cursor;

  std::string table;
  table.reserve(sections_.size() * kTableEntrySize);
  for (size_t i = 0; i < sections_.size(); ++i) {
    const Section& s = sections_[i];
    AppendScalar<uint32_t>(&table, s.id);
    AppendScalar<uint32_t>(&table, s.flags);
    AppendScalar<uint64_t>(&table, offsets[i]);
    AppendScalar<uint64_t>(&table, s.stored.size());
    AppendScalar<uint64_t>(&table, s.raw_size);
    AppendScalar<uint32_t>(&table, Crc32(s.stored));
    AppendScalar<uint32_t>(&table, 0);
  }

  std::string header;
  header.reserve(kHeaderSize);
  header.append(kContainerMagic, sizeof(kContainerMagic));
  AppendScalar<uint32_t>(&header, kind_);
  AppendScalar<uint32_t>(&header, kContainerVersion);
  AppendScalar<uint32_t>(&header, static_cast<uint32_t>(sections_.size()));
  AppendScalar<uint32_t>(&header, Crc32(table));
  AppendScalar<uint64_t>(&header, total_size);
  MX_DCHECK(header.size() == kHeaderSize);

  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  os.write(table.data(), static_cast<std::streamsize>(table.size()));
  size_t written = table_end;
  static const char kZeros[kSectionAlignment] = {};
  for (size_t i = 0; i < sections_.size(); ++i) {
    const size_t padding = offsets[i] - written;
    os.write(kZeros, static_cast<std::streamsize>(padding));
    os.write(sections_[i].stored.data(),
             static_cast<std::streamsize>(sections_[i].stored.size()));
    written = offsets[i] + sections_[i].stored.size();
  }
  if (!os.good()) return Status::IoError("container write failed");
  return Status::Ok();
}

StatusOr<ContainerReader> ContainerReader::Parse(
    std::span<const uint8_t> bytes, uint32_t expected_kind,
    bool verify_checksums) {
  if (!StartsWithContainerMagic(bytes)) {
    return Status::InvalidArgument("not a metaprox binary container");
  }
  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument("container header truncated");
  }
  size_t pos = sizeof(kContainerMagic);
  uint32_t kind = 0, version = 0, section_count = 0, table_crc = 0;
  uint64_t total_size = 0;
  ReadScalar(bytes, &pos, &kind);
  ReadScalar(bytes, &pos, &version);
  ReadScalar(bytes, &pos, &section_count);
  ReadScalar(bytes, &pos, &table_crc);
  ReadScalar(bytes, &pos, &total_size);
  if (version != kContainerVersion) {
    return Status::InvalidArgument("unsupported container version " +
                                   std::to_string(version));
  }
  if (kind != expected_kind) {
    return Status::InvalidArgument("container holds a different artifact "
                                   "kind (index/model mixup?)");
  }
  if (total_size != bytes.size()) {
    return Status::InvalidArgument("container size mismatch (truncated or "
                                   "trailing data)");
  }
  if (section_count > kMaxSections) {
    return Status::InvalidArgument("implausible container section count");
  }
  const size_t table_bytes = size_t{section_count} * kTableEntrySize;
  if (bytes.size() - kHeaderSize < table_bytes) {
    return Status::InvalidArgument("container section table truncated");
  }
  const std::span<const uint8_t> table =
      bytes.subspan(kHeaderSize, table_bytes);
  if (Crc32(table) != table_crc) {
    return Status::InvalidArgument("container section table checksum "
                                   "mismatch");
  }

  ContainerReader reader;
  reader.bytes_ = bytes;
  reader.entries_.reserve(section_count);
  pos = kHeaderSize;
  for (uint32_t i = 0; i < section_count; ++i) {
    Entry e;
    uint32_t reserved = 0;
    ReadScalar(bytes, &pos, &e.id);
    ReadScalar(bytes, &pos, &e.flags);
    ReadScalar(bytes, &pos, &e.offset);
    ReadScalar(bytes, &pos, &e.stored_size);
    ReadScalar(bytes, &pos, &e.raw_size);
    ReadScalar(bytes, &pos, &e.crc);
    ReadScalar(bytes, &pos, &reserved);
    if (e.offset % kSectionAlignment != 0 ||
        e.offset < kHeaderSize + table_bytes || e.offset > bytes.size() ||
        e.stored_size > bytes.size() - e.offset) {
      return Status::InvalidArgument("container section out of bounds");
    }
    if ((e.flags & kSectionLzw) == 0 && e.raw_size != e.stored_size) {
      return Status::InvalidArgument(
          "container section size fields disagree");
    }
    for (const Entry& prior : reader.entries_) {
      if (prior.id == e.id) {
        return Status::InvalidArgument("duplicate container section id");
      }
    }
    if (verify_checksums &&
        Crc32(bytes.subspan(e.offset, e.stored_size)) != e.crc) {
      return Status::InvalidArgument("container section " +
                                     std::to_string(e.id) +
                                     " checksum mismatch");
    }
    reader.entries_.push_back(e);
  }
  return reader;
}

const ContainerReader::Entry* ContainerReader::Find(uint32_t id) const {
  for (const Entry& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

uint32_t ContainerReader::Flags(uint32_t id) const {
  const Entry* e = Find(id);
  return e == nullptr ? 0 : e->flags;
}

StatusOr<SectionData> ContainerReader::Section(uint32_t id) const {
  const Entry* e = Find(id);
  if (e == nullptr) {
    return Status::InvalidArgument("container section " + std::to_string(id) +
                                   " missing");
  }
  const std::span<const uint8_t> stored =
      bytes_.subspan(e->offset, e->stored_size);
  SectionData data;
  if ((e->flags & kSectionLzw) != 0) {
    auto decoded = LzwDecompress(
        std::string(reinterpret_cast<const char*>(stored.data()),
                    stored.size()),
        e->raw_size);
    if (!decoded.ok()) {
      return Status::InvalidArgument("container section " +
                                     std::to_string(id) + ": " +
                                     decoded.status().message());
    }
    data.owned = std::make_unique<std::string>(std::move(*decoded));
    data.bytes = std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(data.owned->data()),
        data.owned->size());
  } else {
    data.bytes = stored;
  }
  return data;
}

}  // namespace metaprox::util
