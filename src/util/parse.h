// Strict parsing helpers for user-facing CLI flags and environment
// variables (mgps_cli --threads/--shards, METAPROX_BENCH_* env vars).
#ifndef METAPROX_UTIL_PARSE_H_
#define METAPROX_UTIL_PARSE_H_

namespace metaprox::util {

/// Strict non-negative integer parse for user-facing count options.
/// Rejects empty strings, signs, trailing garbage and out-of-range
/// values — atoi/strtoul alone would silently turn "-1" or "max" into a
/// live configuration.
bool ParseCount(const char* text, unsigned* out);

}  // namespace metaprox::util

#endif  // METAPROX_UTIL_PARSE_H_
