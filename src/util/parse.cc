#include "util/parse.h"

#include <cerrno>
#include <climits>
#include <cstdlib>

namespace metaprox::util {

bool ParseCount(const char* text, unsigned* out) {
  if (text[0] == '\0' || text[0] == '-' || text[0] == '+') return false;
  char* end = nullptr;
  errno = 0;
  unsigned long value = std::strtoul(text, &end, 10);
  if (*end != '\0' || errno == ERANGE || value > UINT_MAX) return false;
  *out = static_cast<unsigned>(value);
  return true;
}

}  // namespace metaprox::util
