// Core assertion and utility macros used across metaprox.
//
// Invariant violations abort the process (Google-style CHECK); recoverable
// errors flow through util::Status instead. Library code never throws across
// the public API boundary.
#ifndef METAPROX_UTIL_MACROS_H_
#define METAPROX_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a message when `cond` does not hold. Always on (also in
// release builds): the cost is negligible in this codebase's hot loops and
// silent corruption in a research artifact is worse than an abort.
#define MX_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MX_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define MX_CHECK_MSG(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MX_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Debug-only check for hot paths.
#ifdef NDEBUG
#define MX_DCHECK(cond) ((void)0)
#else
#define MX_DCHECK(cond) MX_CHECK(cond)
#endif

#define MX_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;         \
  TypeName& operator=(const TypeName&) = delete

#endif  // METAPROX_UTIL_MACROS_H_
