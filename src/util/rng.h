// Deterministic pseudo-random number generation.
//
// Every stochastic component in metaprox takes an explicit 64-bit seed so
// experiments are reproducible bit-for-bit. We use xoshiro256** seeded via
// SplitMix64, the conventional pairing recommended by the xoshiro authors.
#ifndef METAPROX_UTIL_RNG_H_
#define METAPROX_UTIL_RNG_H_

#include <cstdint>
#include <limits>
#include <utility>

#include "util/macros.h"

namespace metaprox::util {

/// SplitMix64: used to expand a single seed into xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection.
  uint64_t UniformInt(uint64_t bound) {
    MX_DCHECK(bound > 0);
    // Debiased via rejection on the low word.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t threshold = -bound % bound;
      while (l < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void Shuffle(Container& c) {
    for (size_t i = c.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Draws from a Zipf-like distribution over [0, n): P(k) ~ 1/(k+1)^alpha.
  /// Computed by inversion on the cached CDF is overkill here; we use
  /// rejection-free discrete sampling via partial sums only for small n, so
  /// callers with large n should precompute their own tables. For datagen
  /// purposes n is at most a few thousand.
  uint64_t Zipf(uint64_t n, double alpha);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace metaprox::util

#endif  // METAPROX_UTIL_RNG_H_
