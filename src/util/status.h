// Minimal Status / StatusOr error-handling vocabulary.
//
// Fallible operations (file I/O, config validation, user-supplied inputs)
// return Status or StatusOr<T>; programmer errors use MX_CHECK.
#ifndef METAPROX_UTIL_STATUS_H_
#define METAPROX_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/macros.h"

namespace metaprox::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kIoError,
};

/// Lightweight error-or-success result carrying a code and a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of T or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status)                         // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    MX_CHECK_MSG(!std::get<Status>(repr_).ok(),
                 "StatusOr must not hold an OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  const T& value() const& {
    MX_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(repr_);
  }
  T& value() & {
    MX_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(repr_);
  }
  T&& value() && {
    MX_CHECK_MSG(ok(), status().message().c_str());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

#define MX_RETURN_IF_ERROR(expr)               \
  do {                                         \
    ::metaprox::util::Status _st = (expr);     \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace metaprox::util

#endif  // METAPROX_UTIL_STATUS_H_
