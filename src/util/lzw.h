// Bounded-window LZW codec for the cold sections of the binary artifact
// container (util/container.h).
//
// Classic byte-oriented LZW with fixed-width 16-bit codes: the dictionary
// starts at the 256 single-byte strings plus two reserved codes and grows
// one entry per emitted code until it reaches 2^16 entries, at which point
// it RESETS — the "bounded window" that keeps both encoder and decoder
// memory flat no matter how long the stream is, the same shape as the
// streaming LZW filters this design borrows from (dictionary cleared on a
// clear-code, decode always bounded by the declared output size).
//
// This is deliberately not a general-purpose compressor: it exists so cold
// artifact sections (committed bitmaps, delta-varint key streams, packed
// sparse rows with highly repetitive float patterns) shrink without any
// external dependency, while staying byte-deterministic — the golden-file
// test pins the exact encoded bytes. The container keeps a section
// compressed only when LzwCompress actually shrank it, so incompressible
// sections ride raw and the codec can never lose.
//
// Decode is hardened for hostile input (the corruption battery feeds it
// flipped/truncated/random bytes): every code is validated against the
// current dictionary, output is capped by the caller's declared size, and
// failure is a Status — never a crash or an unbounded allocation.
#ifndef METAPROX_UTIL_LZW_H_
#define METAPROX_UTIL_LZW_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace metaprox::util {

/// Compresses `input` (returns the encoded bytes; "" for empty input).
std::string LzwCompress(const std::string& input);

/// Decompresses LzwCompress output. `expected_size` is the exact decoded
/// size recorded out of band (the container's raw_size field); any
/// mismatch — short stream, overlong stream, invalid code, truncated
/// 16-bit unit — is an InvalidArgument error.
StatusOr<std::string> LzwDecompress(const std::string& input,
                                    size_t expected_size);

}  // namespace metaprox::util

#endif  // METAPROX_UTIL_LZW_H_
