// Minimal RAII TCP helpers for the query server layer (src/server): an fd
// wrapper, loopback listen/connect/accept, full-buffer send, a buffered
// line reader, and the nonblocking primitives the epoll reactor
// (src/server/reactor.h) is built on. POSIX sockets only — the server is
// dependency-free by design; nothing here knows about the wire protocol
// (src/server/wire.h).
//
// All helpers report recoverable failures (refused connection, peer reset,
// out of fds) through util::Status; programmer errors abort via MX_CHECK.
#ifndef METAPROX_UTIL_SOCKET_H_
#define METAPROX_UTIL_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/macros.h"
#include "util/status.h"

namespace metaprox::util {

/// Move-only owner of one socket fd; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.Release()) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.Release();
    }
    return *this;
  }
  MX_DISALLOW_COPY_AND_ASSIGN(Socket);

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Gives up ownership of the fd without closing it.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void Close();

  /// Half-closes both directions without closing the fd. Any thread blocked
  /// reading this socket — or, on Linux, blocked in accept() on a listening
  /// socket — returns immediately, which is how the server interrupts its
  /// accept and reader threads on Stop(). Safe to call from another thread
  /// while the fd is in use (Close() is not: the fd number could be reused
  /// under the blocked thread).
  void Shutdown() const;

 private:
  int fd_ = -1;
};

/// Binds and listens on 127.0.0.1:`port` (port 0 = OS-assigned; read it
/// back with LocalTcpPort). Loopback-only on purpose: the query server is a
/// single-host building block — anything internet-facing belongs behind a
/// real front end.
StatusOr<Socket> ListenTcpLoopback(uint16_t port, int backlog = 128);

/// The local port a socket is bound to (after ListenTcpLoopback with
/// port 0).
StatusOr<uint16_t> LocalTcpPort(const Socket& socket);

/// Blocks until one connection is accepted. An error after Shutdown() on
/// the listener is the normal shutdown path, not a fault.
StatusOr<Socket> AcceptConnection(const Socket& listener);

/// Connects to `host`:`port`. `host` must be a numeric IPv4 address
/// (e.g. "127.0.0.1"); no resolver, by design.
StatusOr<Socket> ConnectTcp(const std::string& host, uint16_t port);

/// Writes all of `data`, looping over partial sends. SIGPIPE is suppressed
/// (a peer hanging up must surface as a Status, not kill the server).
Status SendAll(const Socket& socket, std::string_view data);

// ---- nonblocking primitives (the reactor's substrate) ---------------------

/// Puts the fd into O_NONBLOCK mode: recv/send/accept return immediately
/// with EAGAIN (surfaced as IoChunk::would_block below) instead of
/// sleeping.
Status SetNonBlocking(const Socket& socket);

/// Disables Nagle's algorithm. A pipelined query protocol writes many
/// small lines; without TCP_NODELAY the kernel may hold a response back
/// ~40ms waiting to coalesce, which dominates p99 at low load.
Status SetTcpNoDelay(const Socket& socket);

/// One accept attempt on a NONBLOCKING listener. Returns an invalid
/// Socket (valid() == false) when no connection is pending (EAGAIN) —
/// that is the "drained the accept backlog" signal, not an error.
StatusOr<Socket> AcceptNonBlocking(const Socket& listener);

/// Result of one nonblocking read/write attempt.
struct IoChunk {
  size_t bytes = 0;        // bytes actually transferred (may be 0)
  bool would_block = false;  // EAGAIN: retry when epoll signals readiness
  bool eof = false;        // RecvSome only: orderly peer shutdown
};

/// One recv() into `buf` (at most `capacity` bytes). Fatal socket errors
/// (reset, bad fd) surface as a non-OK Status; EAGAIN and EOF are normal
/// outcomes reported in the chunk.
StatusOr<IoChunk> RecvSome(const Socket& socket, char* buf, size_t capacity);

/// One send() of as much of `data` as the socket buffer takes right now.
/// SIGPIPE suppressed, like SendAll.
StatusOr<IoChunk> SendSome(const Socket& socket, std::string_view data);

// ---- line buffering -------------------------------------------------------

/// Splits an incrementally appended byte stream into '\n'-terminated
/// lines; the socket-free core shared by the blocking LineReader and the
/// reactor's per-connection input buffers. Terminators (and a trailing
/// '\r', so telnet-style peers work) are stripped from returned lines.
class LineBuffer {
 public:
  /// Once the unconsumed bytes exceed `max_line_bytes` without a newline,
  /// the buffer is poisoned (overflowed() == true, TakeLine always false)
  /// — a guard against a broken or hostile peer streaming an endless line
  /// into server memory.
  explicit LineBuffer(size_t max_line_bytes = 1 << 20)
      : max_line_bytes_(max_line_bytes) {}

  void Append(std::string_view data);

  /// Extracts the next complete line into `*line`. Returns false when no
  /// full line is buffered yet (check overflowed() to tell "need more
  /// bytes" from "line too long").
  bool TakeLine(std::string* line);

  bool overflowed() const { return overflowed_; }
  /// Bytes appended but not yet returned through TakeLine.
  size_t pending_bytes() const { return buffer_.size() - pos_; }

 private:
  size_t max_line_bytes_;
  std::string buffer_;
  size_t pos_ = 0;  // start of unconsumed bytes in buffer_
  bool overflowed_ = false;
};

/// Buffered reader of '\n'-terminated lines from a BLOCKING socket (a
/// LineBuffer fed by blocking recv). Non-owning: the socket must outlive
/// the reader and not move while it is in use.
class LineReader {
 public:
  /// Lines longer than `max_line_bytes` are treated as a protocol error
  /// (ReadLine fails) — see LineBuffer.
  explicit LineReader(const Socket& socket,
                      size_t max_line_bytes = 1 << 20)
      : socket_(&socket), buffer_(max_line_bytes) {}
  MX_DISALLOW_COPY_AND_ASSIGN(LineReader);

  /// Reads the next line into `*line` (terminators stripped). Returns
  /// false on clean EOF, read error, or an over-long line — for a server
  /// all three mean "drop the connection".
  bool ReadLine(std::string* line);

 private:
  const Socket* socket_;
  LineBuffer buffer_;
};

}  // namespace metaprox::util

#endif  // METAPROX_UTIL_SOCKET_H_
