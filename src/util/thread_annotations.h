// Clang Thread Safety Analysis wrappers: compile-time lock contracts.
//
// Every mutex-holding class in the project uses mx::Mutex + mx::MutexLock
// instead of std::mutex + std::lock_guard, and annotates shared state
// with the MX_* macros below. Under clang (the warnings-clang CI job,
// which builds with -Wthread-safety -Werror), a read of a MX_GUARDED_BY
// field without its lock — or a call to a MX_REQUIRES method without
// holding the named capability — is a BUILD BREAK, not a TSan repro that
// depends on a test schedule. Under GCC the attributes expand to nothing
// and mx::Mutex compiles down to the std::mutex it wraps.
//
// Discipline (docs/STATIC_ANALYSIS.md has the full policy):
//   - Patterns the analysis cannot express get refactored into RAII
//     shapes it can, not suppressed. MX_NO_THREAD_SAFETY_ANALYSIS is
//     budgeted at <= 3 sites repo-wide, each with a written
//     justification comment at the site.
//   - CondVar deliberately has NO predicate-taking Wait overload: the
//     analysis checks a `cv.wait(lock, pred)` lambda without the lock's
//     capability, so every wait site is an explicit
//     `while (!cond) cv.Wait(lock);` loop, which it checks correctly.
#ifndef METAPROX_UTIL_THREAD_ANNOTATIONS_H_
#define METAPROX_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/macros.h"

#if defined(__clang__)
#define MX_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define MX_THREAD_ANNOTATION_ATTRIBUTE__(x)
#endif

/// Declares a class to be a capability (lockable) type.
#define MX_CAPABILITY(x) MX_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define MX_SCOPED_CAPABILITY MX_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member is protected by the given capability: reads require it
/// held (shared or exclusive), writes require it held exclusively.
#define MX_GUARDED_BY(x) MX_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// The data POINTED TO by this member is protected by the capability.
#define MX_PT_GUARDED_BY(x) MX_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function requires the caller to already hold the capability/ies.
#define MX_REQUIRES(...) \
  MX_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function must be called WITHOUT the capability/ies held (it acquires
/// them itself — calling it while holding one would self-deadlock).
#define MX_EXCLUDES(...) \
  MX_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it past the return.
#define MX_ACQUIRE(...) \
  MX_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller held.
#define MX_RELEASE(...) \
  MX_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function attempts to acquire; holds it iff the return equals `b`.
#define MX_TRY_ACQUIRE(...) \
  MX_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define MX_RETURN_CAPABILITY(x) \
  MX_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: the function's body is not analyzed. Budgeted at <= 3
/// sites repo-wide; every use carries a justification comment.
#define MX_NO_THREAD_SAFETY_ANALYSIS \
  MX_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace metaprox::mx {

/// std::mutex with the capability attribute, so MX_GUARDED_BY /
/// MX_REQUIRES can name it. Same size and cost as the std::mutex it
/// wraps; lock with MutexLock, not by hand.
class MX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  MX_DISALLOW_COPY_AND_ASSIGN(Mutex);

  void Lock() MX_ACQUIRE() { mu_.lock(); }
  void Unlock() MX_RELEASE() { mu_.unlock(); }
  bool TryLock() MX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for CondVar. Does not transfer the capability.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over mx::Mutex — the std::lock_guard / std::unique_lock of
/// this codebase. Scoped: the analysis tracks the capability from
/// construction to the end of the enclosing block.
class MX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MX_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() MX_RELEASE() {}
  MX_DISALLOW_COPY_AND_ASSIGN(MutexLock);

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable that waits on a MutexLock. No predicate overloads
/// on purpose — see the file comment. Wait sites look like:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(lock);   // ready_ is MX_GUARDED_BY(mu_)
class CondVar {
 public:
  CondVar() = default;
  MX_DISALLOW_COPY_AND_ASSIGN(CondVar);

  /// Atomically releases the lock, sleeps, reacquires before returning.
  /// The capability is held across the call as far as the analysis is
  /// concerned, which matches what the caller may rely on.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <class Clock, class Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace metaprox::mx

#endif  // METAPROX_UTIL_THREAD_ANNOTATIONS_H_
