// Chunked parallel-for over an index range, shared by every stage that
// fans pure per-element work out to a ThreadPool (the miner's per-level
// map, the batched online query passes).
#ifndef METAPROX_UTIL_PARALLEL_FOR_H_
#define METAPROX_UTIL_PARALLEL_FOR_H_

#include <algorithm>
#include <future>
#include <vector>

#include "util/thread_pool.h"

namespace metaprox::util {

/// Runs fn(begin, end) over [0, n) in contiguous chunks, on the pool when
/// one is given (nullptr or a 1-thread pool runs inline as one chunk).
/// fn must be safe to run concurrently on disjoint ranges and must not
/// depend on the chunking for its results — callers compute pure
/// per-element values, so the chunk count never shows in the output.
/// Exceptions thrown by fn are rethrown here after every chunk finished.
template <typename Fn>
void ParallelChunks(ThreadPool* pool, size_t n, const Fn& fn) {
  if (n == 0) return;
  const size_t workers = pool == nullptr ? 1 : pool->num_threads();
  if (workers <= 1 || n <= 1) {
    fn(size_t{0}, n);
    return;
  }
  // ~4x oversubscription: chunks big enough that per-task queue/future
  // overhead stays negligible, small enough that one heavy chunk (a hub
  // query's candidate set, one hard pattern) doesn't bound the pass.
  const size_t chunks = std::min(n, 4 * workers);
  const size_t step = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t begin = 0; begin < n; begin += step) {
    const size_t end = std::min(n, begin + step);
    futures.push_back(pool->Submit([&fn, begin, end] { fn(begin, end); }));
  }
  // Wait for every chunk before get() can rethrow: the chunks reference
  // fn and caller-owned buffers, so none may still run once this frame
  // unwinds.
  for (auto& f : futures) f.wait();
  for (auto& f : futures) f.get();
}

}  // namespace metaprox::util

#endif  // METAPROX_UTIL_PARALLEL_FOR_H_
