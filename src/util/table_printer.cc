#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/macros.h"

namespace metaprox::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  MX_CHECK_MSG(cells.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  os << '|';
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatPercent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace metaprox::util
