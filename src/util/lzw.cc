#include "util/lzw.h"

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "util/binary_io.h"

namespace metaprox::util {
namespace {

// Fixed 16-bit code space. Codes 0-255 are the single-byte strings; the
// first dictionary entry is 256. When next_code reaches kMaxCodes the
// window resets: the encoder skips the add, clears its dictionary and
// starts the next phrase from a bare literal, and the decoder mirrors the
// same skip/clear at the same code count — both sides stay in lockstep
// with no explicit clear code on the wire.
constexpr uint32_t kFirstCode = 256;
constexpr uint32_t kMaxCodes = 1u << 16;

}  // namespace

std::string LzwCompress(const std::string& input) {
  std::string out;
  if (input.empty()) return out;
  out.reserve(input.size() / 2);
  // (current code << 8 | next byte) -> extended code.
  std::unordered_map<uint32_t, uint16_t> dict;
  uint32_t next_code = kFirstCode;
  uint32_t w = static_cast<uint8_t>(input[0]);
  for (size_t i = 1; i < input.size(); ++i) {
    const uint8_t c = static_cast<uint8_t>(input[i]);
    const uint32_t probe = (w << 8) | c;
    auto it = dict.find(probe);
    if (it != dict.end()) {
      w = it->second;
      continue;
    }
    AppendScalar<uint16_t>(&out, static_cast<uint16_t>(w));
    if (next_code == kMaxCodes) {
      dict.clear();
      next_code = kFirstCode;
    } else {
      dict.emplace(probe, static_cast<uint16_t>(next_code++));
    }
    w = c;
  }
  AppendScalar<uint16_t>(&out, static_cast<uint16_t>(w));
  return out;
}

StatusOr<std::string> LzwDecompress(const std::string& input,
                                    size_t expected_size) {
  if (input.empty()) {
    if (expected_size != 0) {
      return Status::InvalidArgument("lzw: empty stream for non-empty data");
    }
    return std::string();
  }
  if (input.size() % 2 != 0) {
    return Status::InvalidArgument("lzw: truncated 16-bit code unit");
  }
  const std::span<const uint8_t> bytes(
      reinterpret_cast<const uint8_t*>(input.data()), input.size());

  // Dictionary as (prefix code, appended byte) chains; phrases are emitted
  // by walking the chain backwards, so adversarial inputs cannot force the
  // quadratic memory of a string-per-entry table.
  struct Entry {
    uint32_t prefix;
    uint8_t byte;
    uint32_t length;
  };
  std::vector<Entry> entries;
  entries.reserve(4096);

  std::string out;
  // Cap the up-front reservation: `expected_size` comes from an artifact
  // and a crafted value must not drive a giant allocation before a single
  // byte decodes (the append loop below grows organically and fails fast).
  out.reserve(std::min<size_t>(expected_size, size_t{1} << 20));
  std::vector<uint8_t> phrase;  // scratch, reversed chain walk

  auto phrase_length = [&](uint32_t code) -> uint32_t {
    return code < kFirstCode ? 1 : entries[code - kFirstCode].length;
  };
  auto first_byte = [&](uint32_t code) -> uint8_t {
    while (code >= kFirstCode) code = entries[code - kFirstCode].prefix;
    return static_cast<uint8_t>(code);
  };
  auto emit = [&](uint32_t code) -> bool {
    const uint32_t length = phrase_length(code);
    if (out.size() + length > expected_size) return false;
    phrase.clear();
    while (code >= kFirstCode) {
      const Entry& e = entries[code - kFirstCode];
      phrase.push_back(e.byte);
      code = e.prefix;
    }
    phrase.push_back(static_cast<uint8_t>(code));
    out.append(phrase.rbegin(), phrase.rend());
    return true;
  };

  size_t pos = 0;
  uint16_t code = 0;
  ReadScalar<uint16_t>(bytes, &pos, &code);
  if (code >= kFirstCode) {
    return Status::InvalidArgument("lzw: first code is not a literal");
  }
  if (!emit(code)) return Status::InvalidArgument("lzw: output overruns size");
  uint32_t prev = code;

  while (pos < bytes.size()) {
    ReadScalar<uint16_t>(bytes, &pos, &code);
    const uint32_t next_code = kFirstCode + static_cast<uint32_t>(
                                                entries.size());
    if (next_code == kMaxCodes) {
      // Window reset: mirrors the encoder's skipped add. The code that
      // follows a reset is always the bare literal the encoder restarted
      // from.
      entries.clear();
      if (code >= kFirstCode) {
        return Status::InvalidArgument("lzw: non-literal code after reset");
      }
      if (!emit(code)) {
        return Status::InvalidArgument("lzw: output overruns size");
      }
      prev = code;
      continue;
    }
    if (code > next_code) {
      return Status::InvalidArgument("lzw: code beyond dictionary");
    }
    // Add the deferred entry for the previous phrase. In the KwKwK case
    // (code == next_code) the entry being added is the one decoded.
    entries.push_back(Entry{prev, first_byte(code == next_code ? prev : code),
                            phrase_length(prev) + 1});
    if (!emit(code)) return Status::InvalidArgument("lzw: output overruns size");
    prev = code;
  }
  if (out.size() != expected_size) {
    return Status::InvalidArgument("lzw: decoded size mismatch");
  }
  return out;
}

}  // namespace metaprox::util
