#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace metaprox::util {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::Shutdown() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

StatusOr<Socket> ListenTcpLoopback(uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");

  // Without SO_REUSEADDR a restart within TIME_WAIT of the old server
  // fails to bind; harmless on loopback.
  int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(sock.fd(), backlog) < 0) return Errno("listen");
  return sock;
}

StatusOr<uint16_t> LocalTcpPort(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

StatusOr<Socket> AcceptConnection(const Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

StatusOr<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Errno("socket");
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) == 0) {
    return sock;
  }
  if (errno != EINTR) return Errno("connect");
  // An EINTR'd connect keeps completing asynchronously — re-calling
  // connect() would yield EALREADY/EISCONN, not a clean status. Wait for
  // writability, then read the real outcome from SO_ERROR.
  pollfd pfd{};
  pfd.fd = sock.fd();
  pfd.events = POLLOUT;
  while (::poll(&pfd, 1, /*timeout=*/-1) < 0) {
    if (errno != EINTR) return Errno("poll");
  }
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
    return Errno("getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    errno = err;
    return Errno("connect");
  }
  return sock;
}

Status SendAll(const Socket& socket, std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a hung-up peer yields EPIPE instead of SIGPIPE killing
    // the process.
    const ssize_t sent =
        ::send(socket.fd(), data.data(), data.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    data.remove_prefix(static_cast<size_t>(sent));
  }
  return Status::Ok();
}

Status SetNonBlocking(const Socket& socket) {
  const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(socket.fd(), F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

Status SetTcpNoDelay(const Socket& socket) {
  int one = 1;
  if (::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one)) < 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::Ok();
}

StatusOr<Socket> AcceptNonBlocking(const Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Socket();
    // Per-connection accept failures (ECONNABORTED, out of fds, ...) are
    // transient from the listener's point of view: report, don't abort.
    return Errno("accept");
  }
}

StatusOr<IoChunk> RecvSome(const Socket& socket, char* buf, size_t capacity) {
  while (true) {
    const ssize_t got = ::recv(socket.fd(), buf, capacity, 0);
    if (got > 0) return IoChunk{static_cast<size_t>(got), false, false};
    if (got == 0) return IoChunk{0, false, true};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoChunk{0, true, false};
    }
    return Errno("recv");
  }
}

StatusOr<IoChunk> SendSome(const Socket& socket, std::string_view data) {
  while (true) {
    const ssize_t sent =
        ::send(socket.fd(), data.data(), data.size(), MSG_NOSIGNAL);
    if (sent >= 0) return IoChunk{static_cast<size_t>(sent), false, false};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoChunk{0, true, false};
    }
    return Errno("send");
  }
}

void LineBuffer::Append(std::string_view data) {
  buffer_.append(data);
}

bool LineBuffer::TakeLine(std::string* line) {
  if (overflowed_) return false;
  const size_t newline = buffer_.find('\n', pos_);
  if (newline == std::string::npos) {
    if (buffer_.size() - pos_ > max_line_bytes_) overflowed_ = true;
    return false;
  }
  size_t end = newline;
  if (end > pos_ && buffer_[end - 1] == '\r') --end;
  line->assign(buffer_, pos_, end - pos_);
  pos_ = newline + 1;
  // Compact once the consumed prefix dominates, so the buffer does not
  // grow with connection lifetime.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

bool LineReader::ReadLine(std::string* line) {
  while (true) {
    if (buffer_.TakeLine(line)) return true;
    if (buffer_.overflowed()) return false;

    char chunk[4096];
    ssize_t got;
    do {
      got = ::recv(socket_->fd(), chunk, sizeof(chunk), 0);
    } while (got < 0 && errno == EINTR);
    if (got <= 0) return false;  // EOF, error, or Shutdown() from Stop()
    buffer_.Append({chunk, static_cast<size_t>(got)});
  }
}

}  // namespace metaprox::util
