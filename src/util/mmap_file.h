// Read-only memory-mapped files for zero-copy artifact loading.
//
// MmapFile maps a whole file read-only (MAP_SHARED) and exposes it as a
// byte span. A server that maps its index this way starts serving without
// parsing or copying the hot sections, and every server process on the
// machine shares one set of physical pages through the page cache.
//
// Holders keep the mapping alive through a shared_ptr: an index loaded in
// mapped mode (MetagraphVectorIndex::MapFromFile) pins its MmapFile for as
// long as any row span may be dereferenced. On platforms without mmap the
// open falls back to reading the file into an owned buffer — same
// interface, no zero-copy.
#ifndef METAPROX_UTIL_MMAP_FILE_H_
#define METAPROX_UTIL_MMAP_FILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace metaprox::util {

class MmapFile {
 public:
  /// Maps `path` read-only. NotFound for a missing/unopenable file,
  /// IoError for map failures. An empty file maps to an empty span.
  static StatusOr<std::shared_ptr<MmapFile>> OpenReadOnly(
      const std::string& path);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  std::span<const uint8_t> bytes() const {
    return {static_cast<const uint8_t*>(data_), size_};
  }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }
  /// True when the bytes are a real mapping (false: owned fallback copy).
  bool mapped() const { return mapped_; }

 private:
  MmapFile() = default;

  std::string path_;
  const void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<uint8_t> fallback_;  // owns the bytes when !mapped_
};

}  // namespace metaprox::util

#endif  // METAPROX_UTIL_MMAP_FILE_H_
