// Console table / CSV emitters used by the benchmark harnesses to print the
// paper's tables and figure series in a uniform, diff-friendly format.
#ifndef METAPROX_UTIL_TABLE_PRINTER_H_
#define METAPROX_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace metaprox::util {

/// Collects rows of string cells and renders them as an aligned ASCII table
/// (and optionally CSV). Numeric formatting is the caller's responsibility;
/// helpers below cover the common cases.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders an aligned table with a header rule.
  void Print(std::ostream& os) const;

  /// Renders comma-separated values, header first.
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` places after the decimal point.
std::string FormatDouble(double v, int digits = 4);

/// Formats a fraction as a percentage string, e.g. 0.834 -> "83.4%".
std::string FormatPercent(double fraction, int digits = 1);

}  // namespace metaprox::util

#endif  // METAPROX_UTIL_TABLE_PRINTER_H_
