// The `metaprox binary container`: the versioned envelope every v2 binary
// artifact (index and model) is wrapped in.
//
// Byte layout (all integers little-endian; the full byte-level spec lives
// in docs/ARCHITECTURE.md "Persistence formats"):
//
//   header (32 bytes)
//     0   magic            8 bytes  "MXPXBC2\n"
//     8   kind             u32      kIndexArtifact / kModelArtifact
//     12  version          u32      2 (the format bump over v1 text)
//     16  section_count    u32
//     20  table_crc        u32      CRC-32 of the section table bytes
//     24  total_size       u64      exact file size (truncation guard)
//   section table (40 bytes per section)
//     +0  id               u32
//     +4  flags            u32      bit0 kSectionLzw, bit1 kSectionPacked
//     +8  offset           u64      from file start; 64-byte aligned
//     +16 stored_size      u64      bytes on disk
//     +24 raw_size         u64      bytes after decompression
//     +32 crc              u32      CRC-32 of the stored bytes
//     +36 reserved         u32      0
//   payloads, each at a 64-byte-aligned offset, zero-padded between
//
// The alignment means a raw ("hot") section mapped via util::MmapFile can
// be reinterpreted in place — zero-copy — while cold sections ride
// delta/varint-packed and optionally LZW-compressed (util/lzw.h; a
// section stays compressed only when that actually shrank it).
//
// ContainerWriter output is a pure function of the added sections, so
// artifacts are byte-deterministic — what the golden-file test pins.
// ContainerReader validates structure unconditionally (magic, version,
// kind, size, table checksum, every offset/length in bounds) and section
// payloads against their CRCs when `verify_checksums` is set; any
// violation is a structured Status, never a crash — the contract the
// corruption battery enforces byte by byte.
#ifndef METAPROX_UTIL_CONTAINER_H_
#define METAPROX_UTIL_CONTAINER_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace metaprox::util {

/// Serialization format of an artifact on disk. Text (v1) stays the
/// debug/interop path; readers autodetect by magic, so callers only choose
/// a format when writing.
enum class ArtifactFormat { kText, kBinary };

inline constexpr char kContainerMagic[8] = {'M', 'X', 'P', 'X',
                                            'B', 'C', '2', '\n'};
inline constexpr uint32_t kContainerVersion = 2;
inline constexpr uint32_t kIndexArtifact = 1;
inline constexpr uint32_t kModelArtifact = 2;

/// Section payloads start at multiples of this (mmap-friendly: any scalar
/// or SIMD-width access into a raw section is aligned).
inline constexpr size_t kSectionAlignment = 64;

/// Section flags.
inline constexpr uint32_t kSectionLzw = 1u << 0;     // LZW-compressed
inline constexpr uint32_t kSectionPacked = 1u << 1;  // delta/varint-packed
                                                     // (vs raw mmap layout)

/// True when `bytes` begins with the container magic (format autodetect).
bool StartsWithContainerMagic(std::span<const uint8_t> bytes);
bool StartsWithContainerMagic(const std::string& bytes);

/// Reads just enough of `path` to tell binary container from text.
/// NotFound when the file cannot be opened.
StatusOr<bool> PathIsContainer(const std::string& path);

/// Accumulates sections and serializes the container deterministically.
class ContainerWriter {
 public:
  explicit ContainerWriter(uint32_t kind) : kind_(kind) {}

  /// Adds a section. `flags` may carry kSectionPacked; with
  /// `try_compress` the payload is LZW-compressed and the compressed form
  /// kept only if strictly smaller (kSectionLzw is set accordingly).
  /// Section ids must be unique; order of addition is the file order.
  void AddSection(uint32_t id, std::string bytes, uint32_t flags = 0,
                  bool try_compress = false);

  /// Writes header + table + aligned payloads. Deterministic.
  Status WriteTo(std::ostream& os) const;

 private:
  struct Section {
    uint32_t id;
    uint32_t flags;
    uint64_t raw_size;
    std::string stored;
  };
  uint32_t kind_;
  std::vector<Section> sections_;
};

/// One parsed section. `bytes` views into the container buffer for raw
/// sections (zero-copy) and into `owned` for decompressed ones; the
/// indirection keeps the span valid across moves.
struct SectionData {
  std::span<const uint8_t> bytes;
  std::unique_ptr<std::string> owned;
};

/// Parses and validates a container over caller-owned bytes (the caller —
/// e.g. a MmapFile holder — must keep them alive).
class ContainerReader {
 public:
  /// Structural validation always; payload CRCs only with
  /// `verify_checksums` (skipping them avoids touching every page of a
  /// large mapped artifact — a documented trusted-file fast path).
  static StatusOr<ContainerReader> Parse(std::span<const uint8_t> bytes,
                                         uint32_t expected_kind,
                                         bool verify_checksums);

  bool Has(uint32_t id) const { return Find(id) != nullptr; }
  /// Flags of section `id` (0 when absent).
  uint32_t Flags(uint32_t id) const;

  /// Returns section `id`'s payload, decompressing if stored LZW. A
  /// missing section or a decode failure is a structured error.
  StatusOr<SectionData> Section(uint32_t id) const;

 private:
  struct Entry {
    uint32_t id;
    uint32_t flags;
    uint64_t offset;
    uint64_t stored_size;
    uint64_t raw_size;
    uint32_t crc;
  };
  const Entry* Find(uint32_t id) const;

  std::span<const uint8_t> bytes_;
  std::vector<Entry> entries_;
};

}  // namespace metaprox::util

#endif  // METAPROX_UTIL_CONTAINER_H_
