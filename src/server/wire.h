// Wire protocol of the metaprox query server: a line-oriented text
// protocol, one message per '\n'-terminated line, chosen over HTTP so the
// server stays dependency-free and a smoke test can drive it with a few
// lines of shell.
//
// Requests (client -> server):
//   Q <node> [k]     rank node's candidates, top-k (k defaults server-side)
//   PING             liveness probe
//   STATS            server counters
//
// Responses (server -> client):
//   R <node> <n> <cand_1> <score_1> ... <cand_n> <score_n>
//   PONG
//   STATS <connections> <queries> <batches> <largest_batch> <errors>
//   E <message>      protocol error (malformed line, node out of range);
//                    the connection stays open
//
// Ordering: 'R' responses on one connection arrive in the order their 'Q'
// requests were sent (the batcher preserves per-connection FIFO), so
// clients may pipeline queries freely. PING/STATS/E are answered out of
// band by the reader thread and may overtake pending 'R' responses — don't
// interleave them with outstanding queries if ordering matters.
//
// Connection lifetime: EOF on the request direction is a full disconnect.
// A peer that half-closes its sending side (shutdown(SHUT_WR)) while
// responses are still pending forfeits them — keep the connection open
// until the last response has been read.
//
// Determinism: scores are serialized with FormatScore (%.17g), which
// round-trips an IEEE double exactly. The server's scores are bitwise
// identical to offline BatchQuery/Query scores (see the batched
// determinism contract in docs/ARCHITECTURE.md), so client output can be
// byte-diffed against offline `mgps_cli --tsv` output — that diff is the
// CI end-to-end smoke check.
#ifndef METAPROX_SERVER_WIRE_H_
#define METAPROX_SERVER_WIRE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/query_batch.h"
#include "graph/types.h"

namespace metaprox::server {

/// Serializes a score so that parsing it back yields the same double bits
/// (17 significant digits round-trip IEEE binary64). Shared by the server,
/// the client's TSV output and mgps_cli --tsv, which is what makes their
/// outputs byte-comparable.
std::string FormatScore(double score);

/// THE --tsv result-row format ("query<TAB>rank<TAB>node<TAB>score\n",
/// rank 1-based), shared by mgps_cli --tsv (which passes
/// FormatScore(score)) and mgps_client --tsv (which echoes the wire's
/// score text). One definition, so the byte-diff the CI smoke performs
/// can only break for real determinism reasons, never formatting drift.
std::string FormatTsvRow(NodeId query, size_t rank, NodeId node,
                         std::string_view score_text);

// ---- requests -------------------------------------------------------------

struct Request {
  enum class Kind { kQuery, kPing, kStats };
  Kind kind = Kind::kQuery;
  NodeId node = kInvalidNode;  // kQuery only
  size_t k = 0;                // kQuery only; 0 = use the server default
};

std::string BuildQueryRequest(NodeId node, size_t k);
inline std::string BuildPingRequest() { return "PING\n"; }
inline std::string BuildStatsRequest() { return "STATS\n"; }

/// Parses one request line (no terminator). Strict: single spaces, no
/// trailing garbage, counts must parse. Returns false on malformed input.
bool ParseRequest(std::string_view line, Request* out);

// ---- responses ------------------------------------------------------------

std::string BuildQueryResponse(NodeId node, const QueryResult& result);
std::string BuildErrorResponse(std::string_view message);

struct ResponseEntry {
  NodeId node = kInvalidNode;
  double score = 0.0;
  /// The score exactly as it appeared on the wire; echoing this (rather
  /// than re-serializing the parsed double) keeps client output bytes
  /// equal to server bytes even if a client is built with different
  /// printf behavior.
  std::string score_text;
};

struct RankResponse {
  NodeId query = kInvalidNode;
  std::vector<ResponseEntry> entries;
};

/// Parses an 'R' line (no terminator). Returns false on anything else —
/// including 'E' lines, which callers should surface verbatim.
bool ParseQueryResponse(std::string_view line, RankResponse* out);

}  // namespace metaprox::server

#endif  // METAPROX_SERVER_WIRE_H_
