// Wire protocol of the metaprox query server: a line-oriented text
// protocol, one message per '\n'-terminated line, chosen over HTTP so the
// server stays dependency-free and a smoke test can drive it with a few
// lines of shell.
//
// Protocol v2 (versioned; v1 lines keep working — see below):
//
// Requests (client -> server):
//   HELLO <version>        handshake: ask for protocol <version> (1 or 2)
//   Q <node> [k]           v1 query: rank node's candidates under the
//                          server's DEFAULT model
//   Q <model> <node> [k]   v2 query: rank under the named registry model;
//                          k defaults server-side and is bounded by the
//                          server's max_k (exceeding it is an error reply,
//                          not a silent clamp)
//   PING                   liveness probe
//   STATS                  server counters
// Admin requests (answered only when the server runs with admin enabled):
//   LOAD <model> <path>    publish a NEW model slot from a saved model file
//   RELOAD <model> <path>  hot-swap an EXISTING slot (in-flight batches
//                          finish on the old snapshot)
//   UNLOAD <model>         remove a slot (the default model is refused)
//   LIST                   one line describing every slot
//   STAT <model>           one slot's version/weights/serve counter
//
// Responses (server -> client):
//   R <node> <n> <cand_1> <score_1> ... <cand_n> <score_n>
//   HELLO <version> <max_k> <default_model>
//   PONG
//   STATS <connections> <queries> <batches> <largest_batch> <errors>
//         <windows> <rows_gathered> <rows_saved_vs_per_model>
//         <window_model_groups>
//                          (one line; the last four are the shared-window
//                          batcher's gather-amortization counters — see
//                          ServerStats. Parse STATS left to right and
//                          ignore trailing fields you don't know.)
//   OK LOAD <model> <version>      (and OK RELOAD / OK UNLOAD <model>)
//   MODELS <n> {<name> <version> <weights> <serves>}...
//   STAT <model> <version> <weights> <serves>
//   E <code> <message>     protocol error; the connection stays open.
//                          Codes are stable (enum ErrorCode); v1 clients
//                          that only check the "E " prefix keep working.
//
// v1 compatibility: a v1 client never sends HELLO and uses `Q <node> [k]`,
// which the server answers from its default model — every v1 line parses
// and behaves exactly as before. The grammar is unambiguous because model
// names must start with a letter (IsValidModelName) while node ids are
// all digits.
//
// Ordering: 'R' responses on one connection arrive in the order their 'Q'
// requests were sent (the batcher preserves per-connection FIFO), so
// clients may pipeline queries freely — including queries naming
// different models. HELLO/PING/STATS/E and the admin replies are answered
// out of band by the reader thread and may overtake pending 'R'
// responses — don't interleave them with outstanding queries if ordering
// matters.
//
// Connection lifetime: EOF on the request direction is a full disconnect.
// A peer that half-closes its sending side (shutdown(SHUT_WR)) while
// responses are still pending forfeits them — keep the connection open
// until the last response has been read.
//
// Determinism: scores are serialized with FormatScore (%.17g), which
// round-trips an IEEE double exactly. The server's scores are bitwise
// identical to offline BatchQuery/Query scores under the same model (see
// the batched determinism contract in docs/ARCHITECTURE.md), so client
// output can be byte-diffed against offline `mgps_cli --tsv` output per
// model — that diff is the CI end-to-end smoke check.
#ifndef METAPROX_SERVER_WIRE_H_
#define METAPROX_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/query_batch.h"
#include "graph/types.h"

namespace metaprox::server {

/// The protocol version this server/client implementation speaks.
inline constexpr uint64_t kWireVersion = 2;

/// Serializes a score so that parsing it back yields the same double bits
/// (17 significant digits round-trip IEEE binary64). Shared by the server,
/// the client's TSV output and mgps_cli --tsv, which is what makes their
/// outputs byte-comparable.
std::string FormatScore(double score);

/// THE --tsv result-row format ("query<TAB>rank<TAB>node<TAB>score\n",
/// rank 1-based), shared by mgps_cli --tsv (which passes
/// FormatScore(score)) and mgps_client --tsv (which echoes the wire's
/// score text). One definition, so the byte-diff the CI smoke performs
/// can only break for real determinism reasons, never formatting drift.
std::string FormatTsvRow(NodeId query, size_t rank, NodeId node,
                         std::string_view score_text);

/// Wire-legal model names: leading letter, then letters/digits/[_.-], at
/// most 64 chars. Never all digits, which keeps `Q <model> <node>` and
/// the v1 `Q <node>` unambiguous. ModelRegistry enforces the same rule.
bool IsValidModelName(std::string_view name);

// ---- error codes ----------------------------------------------------------

/// Stable numeric codes carried on 'E' lines, so scripted clients can
/// branch on failures without parsing prose.
enum class ErrorCode : int {
  kMalformed = 10,           // unparseable request line
  kUnknownModel = 11,        // query/STAT named a model not in the registry
  kNodeOutOfRange = 12,      // node id beyond the graph
  kKTooLarge = 13,           // per-request k exceeds the server's max_k
  kUnsupportedVersion = 14,  // HELLO asked for a version we don't speak
  kAdminDisabled = 15,       // admin verb on a server without --admin
  kServerFull = 16,          // connection limit reached
  kModelError = 17,          // admin LOAD/RELOAD/UNLOAD failed (bad file,
                             // duplicate name, unloading the default, ...)
};

// ---- requests -------------------------------------------------------------

struct Request {
  enum class Kind {
    kQuery,
    kPing,
    kStats,
    kHello,
    kLoad,
    kReload,
    kUnload,
    kList,
    kStat,
  };
  Kind kind = Kind::kQuery;
  NodeId node = kInvalidNode;  // kQuery only
  size_t k = 0;                // kQuery only; 0 = use the server default
  /// kQuery: the named model (empty = server default, i.e. a v1 line).
  /// kLoad/kReload/kUnload/kStat: the slot being administered.
  std::string model;
  std::string path;     // kLoad/kReload only (single token, no spaces)
  uint64_t version = 0;  // kHello only

  bool operator==(const Request&) const = default;
};

std::string BuildQueryRequest(NodeId node, size_t k);  // v1 line
std::string BuildQueryRequest(std::string_view model, NodeId node, size_t k);
std::string BuildHelloRequest(uint64_t version);
std::string BuildLoadRequest(std::string_view model, std::string_view path);
std::string BuildReloadRequest(std::string_view model, std::string_view path);
std::string BuildUnloadRequest(std::string_view model);
std::string BuildStatRequest(std::string_view model);
inline std::string BuildPingRequest() { return "PING\n"; }
inline std::string BuildStatsRequest() { return "STATS\n"; }
inline std::string BuildListRequest() { return "LIST\n"; }

/// Parses one request line (no terminator). Strict: single spaces, no
/// trailing garbage, counts must parse, model names must be wire-legal.
/// Returns false on malformed input.
bool ParseRequest(std::string_view line, Request* out);

// ---- responses ------------------------------------------------------------

std::string BuildQueryResponse(NodeId node, const QueryResult& result);
std::string BuildErrorResponse(ErrorCode code, std::string_view message);

struct ResponseEntry {
  NodeId node = kInvalidNode;
  double score = 0.0;
  /// The score exactly as it appeared on the wire; echoing this (rather
  /// than re-serializing the parsed double) keeps client output bytes
  /// equal to server bytes even if a client is built with different
  /// printf behavior.
  std::string score_text;
};

struct RankResponse {
  NodeId query = kInvalidNode;
  std::vector<ResponseEntry> entries;
};

/// Parses an 'R' line (no terminator). Returns false on anything else —
/// including 'E' lines, which callers should surface via
/// ParseErrorResponse.
bool ParseQueryResponse(std::string_view line, RankResponse* out);

/// Parses an 'E' line. Lenient about the code so a client also survives a
/// pre-v2 server's `E <message>` form: a missing/unparseable code yields
/// code 0 with the whole remainder as the message.
bool ParseErrorResponse(std::string_view line, int* code,
                        std::string* message);

struct HelloInfo {
  uint64_t version = 0;
  size_t max_k = 0;
  std::string default_model;

  bool operator==(const HelloInfo&) const = default;
};

std::string BuildHelloResponse(uint64_t version, size_t max_k,
                               std::string_view default_model);
bool ParseHelloResponse(std::string_view line, HelloInfo* out);

}  // namespace metaprox::server

#endif  // METAPROX_SERVER_WIRE_H_
