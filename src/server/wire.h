// Wire protocol of the metaprox query server: a line-oriented text
// protocol, one message per '\n'-terminated line, chosen over HTTP so the
// server stays dependency-free and a smoke test can drive it with a few
// lines of shell.
//
// THE SPEC LIVES IN docs/WIRE_PROTOCOL.md — the versioned grammar (v1 and
// v2 request/response lines), the HELLO negotiation rules, the full
// error-code table, the STATS left-to-right compatibility rule, ordering
// and connection-lifetime semantics, and the determinism contract that
// makes server responses byte-diffable against offline output. This
// header only declares the builders/parsers and the stable ErrorCode
// numbers; when the doc and an implementation disagree, the doc is the
// contract and the code has a bug.
//
// Quick orientation (see the doc for the normative text):
//   Q <node> [k] / Q <model> <node> [k]  ->  R <node> <n> {<cand> <score>}...
//   HELLO, PING, STATS; LOAD/RELOAD/UNLOAD/LIST/STAT and the index
//   maintenance verbs APPEND/REFRESH/SWAPINDEX behind --admin
//   E <code> <message> on any refusal; the connection stays open except
//   after E 18 SLOW_CONSUMER, which is an eviction notice.
#ifndef METAPROX_SERVER_WIRE_H_
#define METAPROX_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/query_batch.h"
#include "graph/types.h"

namespace metaprox::server {

/// The protocol version this server/client implementation speaks.
inline constexpr uint64_t kWireVersion = 2;

/// Serializes a score so that parsing it back yields the same double bits
/// (17 significant digits round-trip IEEE binary64). Shared by the server,
/// the client's TSV output and mgps_cli --tsv, which is what makes their
/// outputs byte-comparable.
std::string FormatScore(double score);

/// THE --tsv result-row format ("query<TAB>rank<TAB>node<TAB>score\n",
/// rank 1-based), shared by mgps_cli --tsv (which passes
/// FormatScore(score)) and mgps_client --tsv (which echoes the wire's
/// score text). One definition, so the byte-diff the CI smoke performs
/// can only break for real determinism reasons, never formatting drift.
std::string FormatTsvRow(NodeId query, size_t rank, NodeId node,
                         std::string_view score_text);

/// Wire-legal model names: leading letter, then letters/digits/[_.-], at
/// most 64 chars. Never all digits, which keeps `Q <model> <node>` and
/// the v1 `Q <node>` unambiguous. ModelRegistry enforces the same rule.
bool IsValidModelName(std::string_view name);

// ---- error codes ----------------------------------------------------------

/// Stable numeric codes carried on 'E' lines, so scripted clients can
/// branch on failures without parsing prose. The normative description of
/// each code (and which ones precede a disconnect) is the error table in
/// docs/WIRE_PROTOCOL.md; docs/SERVING.md maps each to the ServerOptions
/// limit that triggers it.
enum class ErrorCode : int {
  kMalformed = 10,           // unparseable request line
  kUnknownModel = 11,        // query/STAT named a model not in the registry
  kNodeOutOfRange = 12,      // node id beyond the graph
  kKTooLarge = 13,           // per-request k exceeds the server's max_k
  kUnsupportedVersion = 14,  // HELLO asked for a version we don't speak
  kAdminDisabled = 15,       // admin verb on a server without --admin
  kServerFull = 16,          // connection limit reached
  kModelError = 17,          // admin LOAD/RELOAD/UNLOAD failed (bad file,
                             // duplicate name, unloading the default, ...)
  kSlowConsumer = 18,        // response backlog exceeded
                             // max_response_queue_bytes: eviction notice,
                             // the server closes the connection after a
                             // best-effort flush
  kPipelineLimit = 19,       // more than max_pipeline unanswered queries
                             // in flight on this connection
  kRateLimited = 20,         // connection exceeded max_queries_per_second
  kDeadlineExceeded = 21,    // query waited longer than
                             // request_deadline_micros before ranking; the
                             // E holds the query's FIFO response position
  kIndexAdminError = 22,     // APPEND/REFRESH/SWAPINDEX failed (server has
                             // no maintainer, artifact mismatch, ...)
  kBadDelta = 23,            // APPEND carried an invalid node type or edge
                             // (endpoint out of range, self-loop, builder
                             // already finalized)
};

// ---- requests -------------------------------------------------------------

struct Request {
  enum class Kind {
    kQuery,
    kPing,
    kStats,
    kHello,
    kLoad,
    kReload,
    kUnload,
    kList,
    kStat,
    kAppendNode,
    kAppendEdge,
    kRefresh,
    kSwapIndex,
  };
  Kind kind = Kind::kQuery;
  NodeId node = kInvalidNode;   // kQuery; kAppendEdge's first endpoint
  NodeId node2 = kInvalidNode;  // kAppendEdge's second endpoint
  size_t k = 0;                 // kQuery only; 0 = use the server default
  /// kQuery: the named model (empty = server default, i.e. a v1 line).
  /// kLoad/kReload/kUnload/kStat: the slot being administered.
  /// kAppendNode: the node's type name (same token grammar as model names).
  std::string model;
  std::string path;     // kLoad/kReload/kSwapIndex only (single token)
  uint64_t version = 0;  // kHello only

  bool operator==(const Request&) const = default;
};

std::string BuildQueryRequest(NodeId node, size_t k);  // v1 line
std::string BuildQueryRequest(std::string_view model, NodeId node, size_t k);
std::string BuildHelloRequest(uint64_t version);
std::string BuildLoadRequest(std::string_view model, std::string_view path);
std::string BuildReloadRequest(std::string_view model, std::string_view path);
std::string BuildUnloadRequest(std::string_view model);
std::string BuildStatRequest(std::string_view model);
std::string BuildAppendNodeRequest(std::string_view type_name);
std::string BuildAppendEdgeRequest(NodeId u, NodeId v);
std::string BuildSwapIndexRequest(std::string_view path_prefix);
inline std::string BuildPingRequest() { return "PING\n"; }
inline std::string BuildStatsRequest() { return "STATS\n"; }
inline std::string BuildListRequest() { return "LIST\n"; }
inline std::string BuildRefreshRequest() { return "REFRESH\n"; }

/// Parses one request line (no terminator). Strict: single spaces, no
/// trailing garbage, counts must parse, model names must be wire-legal.
/// Returns false on malformed input.
bool ParseRequest(std::string_view line, Request* out);

// ---- responses ------------------------------------------------------------

std::string BuildQueryResponse(NodeId node, const QueryResult& result);
std::string BuildErrorResponse(ErrorCode code, std::string_view message);

struct ResponseEntry {
  NodeId node = kInvalidNode;
  double score = 0.0;
  /// The score exactly as it appeared on the wire; echoing this (rather
  /// than re-serializing the parsed double) keeps client output bytes
  /// equal to server bytes even if a client is built with different
  /// printf behavior.
  std::string score_text;
};

struct RankResponse {
  NodeId query = kInvalidNode;
  std::vector<ResponseEntry> entries;
};

/// Parses an 'R' line (no terminator). Returns false on anything else —
/// including 'E' lines, which callers should surface via
/// ParseErrorResponse.
bool ParseQueryResponse(std::string_view line, RankResponse* out);

/// Parses an 'E' line. Lenient about the code so a client also survives a
/// pre-v2 server's `E <message>` form: a missing/unparseable code yields
/// code 0 with the whole remainder as the message.
bool ParseErrorResponse(std::string_view line, int* code,
                        std::string* message);

struct HelloInfo {
  uint64_t version = 0;
  size_t max_k = 0;
  std::string default_model;

  bool operator==(const HelloInfo&) const = default;
};

std::string BuildHelloResponse(uint64_t version, size_t max_k,
                               std::string_view default_model);
bool ParseHelloResponse(std::string_view line, HelloInfo* out);

}  // namespace metaprox::server

#endif  // METAPROX_SERVER_WIRE_H_
