#include "server/wire.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace metaprox::server {

namespace {

// Splits the leading token of `*rest` at a single space. Strict on
// purpose: empty tokens (doubled spaces, leading/trailing space) fail, so
// a malformed request can't silently alias a well-formed one.
bool NextToken(std::string_view* rest, std::string_view* token) {
  if (rest->empty()) return false;
  const size_t space = rest->find(' ');
  if (space == 0) return false;  // leading/doubled space
  if (space == std::string_view::npos) {
    *token = *rest;
    rest->remove_prefix(rest->size());
  } else {
    *token = rest->substr(0, space);
    rest->remove_prefix(space + 1);
    if (rest->empty()) return false;  // trailing space
  }
  return !token->empty();
}

// Strict decimal parse of an unsigned 64-bit token (digits only, no signs,
// no overflow). The wire carries node ids and counts; anything else is a
// protocol error.
bool ParseU64(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 20) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseNode(std::string_view token, NodeId* out) {
  uint64_t value = 0;
  if (!ParseU64(token, &value) || value > UINT32_MAX) return false;
  *out = static_cast<NodeId>(value);
  return true;
}

bool ParseScore(std::string_view token, double* out) {
  // strtod needs a terminated buffer; scores are short.
  char buf[64];
  if (token.empty() || token.size() >= sizeof(buf)) return false;
  std::memcpy(buf, token.data(), token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  *out = std::strtod(buf, &end);
  return end == buf + token.size();
}

}  // namespace

std::string FormatScore(double score) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", score);
  return buf;
}

std::string FormatTsvRow(NodeId query, size_t rank, NodeId node,
                         std::string_view score_text) {
  std::string row = std::to_string(query);
  row += '\t';
  row += std::to_string(rank);
  row += '\t';
  row += std::to_string(node);
  row += '\t';
  row += score_text;
  row += '\n';
  return row;
}

std::string BuildQueryRequest(NodeId node, size_t k) {
  std::string line = "Q ";
  line += std::to_string(node);
  if (k != 0) {
    line += ' ';
    line += std::to_string(k);
  }
  line += '\n';
  return line;
}

bool ParseRequest(std::string_view line, Request* out) {
  if (line == "PING") {
    out->kind = Request::Kind::kPing;
    return true;
  }
  if (line == "STATS") {
    out->kind = Request::Kind::kStats;
    return true;
  }
  std::string_view rest = line;
  std::string_view token;
  if (!NextToken(&rest, &token) || token != "Q") return false;
  out->kind = Request::Kind::kQuery;
  if (!NextToken(&rest, &token) || !ParseNode(token, &out->node)) return false;
  out->k = 0;
  if (!rest.empty()) {
    uint64_t k = 0;
    if (!NextToken(&rest, &token) || !ParseU64(token, &k) || k == 0) {
      return false;
    }
    out->k = static_cast<size_t>(k);
  }
  return rest.empty();
}

std::string BuildQueryResponse(NodeId node, const QueryResult& result) {
  std::string line = "R ";
  line += std::to_string(node);
  line += ' ';
  line += std::to_string(result.size());
  for (const auto& [candidate, score] : result) {
    line += ' ';
    line += std::to_string(candidate);
    line += ' ';
    line += FormatScore(score);
  }
  line += '\n';
  return line;
}

std::string BuildErrorResponse(std::string_view message) {
  std::string line = "E ";
  line += message;
  line += '\n';
  return line;
}

bool ParseQueryResponse(std::string_view line, RankResponse* out) {
  std::string_view rest = line;
  std::string_view token;
  if (!NextToken(&rest, &token) || token != "R") return false;
  if (!NextToken(&rest, &token) || !ParseNode(token, &out->query)) {
    return false;
  }
  uint64_t n = 0;
  if (!NextToken(&rest, &token) || !ParseU64(token, &n)) return false;
  out->entries.clear();
  out->entries.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    ResponseEntry entry;
    if (!NextToken(&rest, &token) || !ParseNode(token, &entry.node)) {
      return false;
    }
    if (!NextToken(&rest, &token) || !ParseScore(token, &entry.score)) {
      return false;
    }
    entry.score_text.assign(token);
    out->entries.push_back(std::move(entry));
  }
  return rest.empty();
}

}  // namespace metaprox::server
