#include "server/wire.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace metaprox::server {

namespace {

// Splits the leading token of `*rest` at a single space. Strict on
// purpose: empty tokens (doubled spaces, leading/trailing space) fail, so
// a malformed request can't silently alias a well-formed one.
bool NextToken(std::string_view* rest, std::string_view* token) {
  if (rest->empty()) return false;
  const size_t space = rest->find(' ');
  if (space == 0) return false;  // leading/doubled space
  if (space == std::string_view::npos) {
    *token = *rest;
    rest->remove_prefix(rest->size());
  } else {
    *token = rest->substr(0, space);
    rest->remove_prefix(space + 1);
    if (rest->empty()) return false;  // trailing space
  }
  return !token->empty();
}

bool AllDigits(std::string_view token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

// Strict decimal parse of an unsigned 64-bit token (digits only, no signs,
// no overflow). The wire carries node ids and counts; anything else is a
// protocol error.
bool ParseU64(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 20) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseNode(std::string_view token, NodeId* out) {
  uint64_t value = 0;
  if (!ParseU64(token, &value) || value > UINT32_MAX) return false;
  *out = static_cast<NodeId>(value);
  return true;
}

bool ParseScore(std::string_view token, double* out) {
  // strtod needs a terminated buffer; scores are short.
  char buf[64];
  if (token.empty() || token.size() >= sizeof(buf)) return false;
  std::memcpy(buf, token.data(), token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  *out = std::strtod(buf, &end);
  return end == buf + token.size();
}

// Parses the tail of a query line after an optional model token was
// consumed: `<node> [k]`.
bool ParseQueryTail(std::string_view token, std::string_view rest,
                    Request* out) {
  if (!ParseNode(token, &out->node)) return false;
  if (!rest.empty()) {
    uint64_t k = 0;
    if (!NextToken(&rest, &token) || !ParseU64(token, &k) || k == 0) {
      return false;
    }
    out->k = static_cast<size_t>(k);
  }
  return rest.empty();
}

}  // namespace

std::string FormatScore(double score) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", score);
  return buf;
}

std::string FormatTsvRow(NodeId query, size_t rank, NodeId node,
                         std::string_view score_text) {
  std::string row = std::to_string(query);
  row += '\t';
  row += std::to_string(rank);
  row += '\t';
  row += std::to_string(node);
  row += '\t';
  row += score_text;
  row += '\n';
  return row;
}

bool IsValidModelName(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  const char first = name.front();
  if (!((first >= 'a' && first <= 'z') || (first >= 'A' && first <= 'Z'))) {
    return false;
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

std::string BuildQueryRequest(NodeId node, size_t k) {
  std::string line = "Q ";
  line += std::to_string(node);
  if (k != 0) {
    line += ' ';
    line += std::to_string(k);
  }
  line += '\n';
  return line;
}

std::string BuildQueryRequest(std::string_view model, NodeId node, size_t k) {
  std::string line = "Q ";
  line += model;
  line += ' ';
  line += std::to_string(node);
  if (k != 0) {
    line += ' ';
    line += std::to_string(k);
  }
  line += '\n';
  return line;
}

std::string BuildHelloRequest(uint64_t version) {
  return "HELLO " + std::to_string(version) + "\n";
}

std::string BuildLoadRequest(std::string_view model, std::string_view path) {
  std::string line = "LOAD ";
  line += model;
  line += ' ';
  line += path;
  line += '\n';
  return line;
}

std::string BuildReloadRequest(std::string_view model, std::string_view path) {
  std::string line = "RELOAD ";
  line += model;
  line += ' ';
  line += path;
  line += '\n';
  return line;
}

std::string BuildUnloadRequest(std::string_view model) {
  std::string line = "UNLOAD ";
  line += model;
  line += '\n';
  return line;
}

std::string BuildStatRequest(std::string_view model) {
  std::string line = "STAT ";
  line += model;
  line += '\n';
  return line;
}

std::string BuildAppendNodeRequest(std::string_view type_name) {
  std::string line = "APPEND N ";
  line += type_name;
  line += '\n';
  return line;
}

std::string BuildAppendEdgeRequest(NodeId u, NodeId v) {
  std::string line = "APPEND E ";
  line += std::to_string(u);
  line += ' ';
  line += std::to_string(v);
  line += '\n';
  return line;
}

std::string BuildSwapIndexRequest(std::string_view path_prefix) {
  std::string line = "SWAPINDEX ";
  line += path_prefix;
  line += '\n';
  return line;
}

bool ParseRequest(std::string_view line, Request* out) {
  *out = Request{};
  if (line == "PING") {
    out->kind = Request::Kind::kPing;
    return true;
  }
  if (line == "STATS") {
    out->kind = Request::Kind::kStats;
    return true;
  }
  if (line == "LIST") {
    out->kind = Request::Kind::kList;
    return true;
  }
  if (line == "REFRESH") {
    out->kind = Request::Kind::kRefresh;
    return true;
  }
  std::string_view rest = line;
  std::string_view token;
  if (!NextToken(&rest, &token)) return false;

  if (token == "Q") {
    out->kind = Request::Kind::kQuery;
    if (!NextToken(&rest, &token)) return false;
    if (!AllDigits(token)) {
      // v2 form: the first token names the model; digits would be a v1
      // node id, and model names can never be all digits.
      if (!IsValidModelName(token)) return false;
      out->model.assign(token);
      if (!NextToken(&rest, &token)) return false;
    }
    return ParseQueryTail(token, rest, out);
  }
  if (token == "HELLO") {
    out->kind = Request::Kind::kHello;
    if (!NextToken(&rest, &token) || !ParseU64(token, &out->version) ||
        out->version == 0) {
      return false;
    }
    return rest.empty();
  }
  if (token == "LOAD" || token == "RELOAD") {
    out->kind =
        token == "LOAD" ? Request::Kind::kLoad : Request::Kind::kReload;
    if (!NextToken(&rest, &token) || !IsValidModelName(token)) return false;
    out->model.assign(token);
    // The path is one token: the wire carries no quoting, so paths with
    // spaces are not expressible (documented; keeps parsing strict).
    if (!NextToken(&rest, &token)) return false;
    out->path.assign(token);
    return rest.empty();
  }
  if (token == "UNLOAD" || token == "STAT") {
    out->kind =
        token == "UNLOAD" ? Request::Kind::kUnload : Request::Kind::kStat;
    if (!NextToken(&rest, &token) || !IsValidModelName(token)) return false;
    out->model.assign(token);
    return rest.empty();
  }
  if (token == "APPEND") {
    if (!NextToken(&rest, &token)) return false;
    if (token == "N") {
      out->kind = Request::Kind::kAppendNode;
      // Type names follow the model-name grammar: wire-safe and never all
      // digits, so N/E sublines stay visually unambiguous.
      if (!NextToken(&rest, &token) || !IsValidModelName(token)) return false;
      out->model.assign(token);
      return rest.empty();
    }
    if (token == "E") {
      out->kind = Request::Kind::kAppendEdge;
      if (!NextToken(&rest, &token) || !ParseNode(token, &out->node)) {
        return false;
      }
      if (!NextToken(&rest, &token) || !ParseNode(token, &out->node2)) {
        return false;
      }
      return rest.empty();
    }
    return false;
  }
  if (token == "SWAPINDEX") {
    out->kind = Request::Kind::kSwapIndex;
    // One token, like LOAD paths: no quoting on the wire.
    if (!NextToken(&rest, &token)) return false;
    out->path.assign(token);
    return rest.empty();
  }
  return false;
}

std::string BuildQueryResponse(NodeId node, const QueryResult& result) {
  std::string line = "R ";
  line += std::to_string(node);
  line += ' ';
  line += std::to_string(result.size());
  for (const auto& [candidate, score] : result) {
    line += ' ';
    line += std::to_string(candidate);
    line += ' ';
    line += FormatScore(score);
  }
  line += '\n';
  return line;
}

std::string BuildErrorResponse(ErrorCode code, std::string_view message) {
  std::string line = "E ";
  line += std::to_string(static_cast<int>(code));
  line += ' ';
  line += message;
  line += '\n';
  return line;
}

bool ParseQueryResponse(std::string_view line, RankResponse* out) {
  std::string_view rest = line;
  std::string_view token;
  if (!NextToken(&rest, &token) || token != "R") return false;
  if (!NextToken(&rest, &token) || !ParseNode(token, &out->query)) {
    return false;
  }
  uint64_t n = 0;
  if (!NextToken(&rest, &token) || !ParseU64(token, &n)) return false;
  out->entries.clear();
  out->entries.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    ResponseEntry entry;
    if (!NextToken(&rest, &token) || !ParseNode(token, &entry.node)) {
      return false;
    }
    if (!NextToken(&rest, &token) || !ParseScore(token, &entry.score)) {
      return false;
    }
    entry.score_text.assign(token);
    out->entries.push_back(std::move(entry));
  }
  return rest.empty();
}

bool ParseErrorResponse(std::string_view line, int* code,
                        std::string* message) {
  if (line.substr(0, 2) != "E ") return false;
  std::string_view rest = line.substr(2);
  const size_t space = rest.find(' ');
  uint64_t value = 0;
  if (space != std::string_view::npos &&
      ParseU64(rest.substr(0, space), &value)) {
    *code = static_cast<int>(value);
    message->assign(rest.substr(space + 1));
  } else {
    // Pre-v2 `E <message>` form (or a one-word message): no code.
    *code = 0;
    message->assign(rest);
  }
  return true;
}

std::string BuildHelloResponse(uint64_t version, size_t max_k,
                               std::string_view default_model) {
  std::string line = "HELLO ";
  line += std::to_string(version);
  line += ' ';
  line += std::to_string(max_k);
  line += ' ';
  line += default_model;
  line += '\n';
  return line;
}

bool ParseHelloResponse(std::string_view line, HelloInfo* out) {
  std::string_view rest = line;
  std::string_view token;
  if (!NextToken(&rest, &token) || token != "HELLO") return false;
  if (!NextToken(&rest, &token) || !ParseU64(token, &out->version)) {
    return false;
  }
  uint64_t max_k = 0;
  if (!NextToken(&rest, &token) || !ParseU64(token, &max_k)) return false;
  out->max_k = static_cast<size_t>(max_k);
  if (!NextToken(&rest, &token) || !IsValidModelName(token)) return false;
  out->default_model.assign(token);
  return rest.empty();
}

}  // namespace metaprox::server
