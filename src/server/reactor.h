// EpollLoop: the nonblocking event-notification core of the query server
// (and of the C10K bench driver). A thin RAII wrapper over one epoll
// instance plus an eventfd wake channel, so a single thread can multiplex
// a listener and thousands of connections:
//
//   * Add/Mod/Del register an fd under a caller-chosen 64-bit tag and
//     declare read/write interest (level-triggered: an fd stays ready
//     until drained, so a partially consumed event re-arms itself).
//   * Wait blocks until at least one fd is ready (or the timeout), and
//     reports each as an Event{tag, readable, writable, error}.
//   * Wake, callable from ANY thread, makes the current (or next) Wait
//     return with an Event tagged kWakeTag — how producer threads (the
//     batcher, an admin worker) tell the loop thread "outboxes changed".
//
// Threading: everything except Wake must be called from one thread — the
// loop thread. Wake is the only cross-thread door, by design: confining
// epoll_ctl to one thread makes "is this fd still registered?" a plain
// single-threaded question instead of a race. There is deliberately no
// mutex in this class, so there is nothing for the thread-safety
// annotations (util/thread_annotations.h) to guard: Wake's cross-thread
// safety comes from eventfd writes being atomic at the kernel boundary,
// and the one-thread rule for everything else is a caller contract the
// annotation language cannot express (thread confinement, not mutual
// exclusion) — it is enforced by QueryServer's structure: only
// ReactorLoop calls Add/Mod/Del/Wait.
//
// Linux-only (epoll + eventfd), like the rest of the server layer.
#ifndef METAPROX_SERVER_REACTOR_H_
#define METAPROX_SERVER_REACTOR_H_

#include <cstdint>
#include <vector>

#include "util/macros.h"
#include "util/socket.h"
#include "util/status.h"

namespace metaprox::server {

class EpollLoop {
 public:
  /// The tag Wait() reports for a Wake() — never use it for your own fds.
  static constexpr uint64_t kWakeTag = ~uint64_t{0};

  struct Event {
    uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    /// EPOLLERR/EPOLLHUP: the fd is dead or half-dead; reading it will
    /// return the specific error/EOF. Reported regardless of interest.
    bool error = false;
  };

  static util::StatusOr<EpollLoop> Create();

  EpollLoop(EpollLoop&&) = default;
  EpollLoop& operator=(EpollLoop&&) = default;
  MX_DISALLOW_COPY_AND_ASSIGN(EpollLoop);

  /// Registers `fd` under `tag`. Interest may be empty (error events are
  /// still delivered).
  util::Status Add(int fd, uint64_t tag, bool want_read, bool want_write);

  /// Replaces an fd's tag/interest.
  util::Status Mod(int fd, uint64_t tag, bool want_read, bool want_write);

  util::Status Del(int fd);

  /// Blocks up to `timeout_millis` (-1 = forever) for readiness; appends
  /// the ready events to `*out` (cleared first) and returns their count.
  /// 0 events = timeout. A pending Wake() is delivered as an Event with
  /// tag kWakeTag (its eventfd is drained internally, so one Wake wakes
  /// one Wait).
  util::StatusOr<size_t> Wait(int timeout_millis, std::vector<Event>* out);

  /// Thread-safe: makes the current/next Wait return a kWakeTag event.
  /// Multiple Wakes before a Wait coalesce into one event.
  void Wake();

 private:
  EpollLoop(util::Socket epoll_fd, util::Socket wake_fd)
      : epoll_(std::move(epoll_fd)), wake_(std::move(wake_fd)) {}

  util::Status Ctl(int op, int fd, uint64_t tag, bool want_read,
                   bool want_write);

  // util::Socket is just a close-on-destroy fd owner; it works as well
  // for epoll/eventfd descriptors as for sockets.
  util::Socket epoll_;
  util::Socket wake_;
};

}  // namespace metaprox::server

#endif  // METAPROX_SERVER_REACTOR_H_
