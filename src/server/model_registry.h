// ModelRegistry: named, versioned, hot-swappable model slots for the
// query server — the "one shared index, many cheap per-class readers"
// shape of multi-class serving (ROADMAP). The expensive artifact (the
// finalized vector index) is built once and shared; what varies per
// semantic class is only a weight vector, so serving another class is one
// registry slot, and pushing retrained weights is one Reload().
//
// Concurrency (RCU-style snapshots): every published model is an
// immutable ServableModel behind a shared_ptr<const>. Readers (the
// server's reader threads resolving a request, the batcher scoring a
// window) take a snapshot with Get() and hold it for as long as they
// need; Load/Reload/Unload atomically swap what *future* Get() calls see
// and never touch a snapshot already handed out. A Reload racing an
// in-flight batch is therefore benign by construction: the batch finishes
// on the weights it started with, the next window picks up the new ones.
//
// Validation: the registry is pinned to one index cardinality
// (expected_weights); a model whose weight count differs — trained
// against some other offline phase — is rejected at Load/Reload, so a
// mismatched artifact can never reach scoring.
#ifndef METAPROX_SERVER_MODEL_REGISTRY_H_
#define METAPROX_SERVER_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "learning/proximity.h"
#include "util/macros.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace metaprox::server {

/// One published snapshot of a named model. Immutable after publication
/// except for the serve counter, which is cumulative per *name* (the
/// atomic is shared across a name's snapshot generations, so Reload does
/// not reset it).
struct ServableModel {
  std::string name;
  uint64_t version = 0;  // 1 on Load, +1 per Reload of the same name
  MgpModel model;
  std::shared_ptr<std::atomic<uint64_t>> serves;  // queries answered

  uint64_t serves_count() const {
    return serves->load(std::memory_order_relaxed);
  }
  void CountServed(uint64_t n) const {
    serves->fetch_add(n, std::memory_order_relaxed);
  }
};

/// One row of List(): the registry's external view of a slot.
struct ModelInfo {
  std::string name;
  uint64_t version = 0;
  size_t num_weights = 0;
  uint64_t serves = 0;
};

class ModelRegistry {
 public:
  /// `expected_weights` is the metagraph count of the index every
  /// registered model scores against (index.num_metagraphs()).
  explicit ModelRegistry(size_t expected_weights)
      : expected_weights_(expected_weights) {}
  MX_DISALLOW_COPY_AND_ASSIGN(ModelRegistry);

  /// Wire-safe model names: leading letter, then letters/digits/[_.-],
  /// at most 64 chars. A name can never parse as a node id, which is what
  /// keeps v2 `Q <model> <node>` and v1 `Q <node>` lines unambiguous.
  static bool IsValidName(std::string_view name);

  /// Publishes a NEW slot. Errors: invalid name, weight-count mismatch,
  /// name already present (use Reload to swap a live slot — the caller
  /// must say which it means; a typo'd LOAD silently swapping a serving
  /// model would be an operational footgun). Returns the version (1).
  util::StatusOr<uint64_t> Load(const std::string& name, MgpModel model)
      MX_EXCLUDES(mu_);

  /// Atomically replaces the snapshot of an EXISTING slot; in-flight
  /// holders of the old snapshot are unaffected. Errors: unknown name,
  /// weight-count mismatch. Returns the new version.
  util::StatusOr<uint64_t> Reload(const std::string& name, MgpModel model)
      MX_EXCLUDES(mu_);

  /// Removes a slot. Snapshots already handed out stay valid; future
  /// Get() calls return null. Error: unknown name.
  util::Status Unload(const std::string& name) MX_EXCLUDES(mu_);

  /// Current snapshot of `name`, or null if absent. The caller may hold
  /// the snapshot across any number of Reload/Unload calls.
  std::shared_ptr<const ServableModel> Get(const std::string& name) const
      MX_EXCLUDES(mu_);

  /// All slots, sorted by name.
  std::vector<ModelInfo> List() const MX_EXCLUDES(mu_);

  size_t size() const MX_EXCLUDES(mu_);
  size_t expected_weights() const { return expected_weights_; }

 private:
  util::Status Validate(const std::string& name, const MgpModel& model) const;

  const size_t expected_weights_;
  mutable mx::Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const ServableModel>>
      models_ MX_GUARDED_BY(mu_);
};

}  // namespace metaprox::server

#endif  // METAPROX_SERVER_MODEL_REGISTRY_H_
