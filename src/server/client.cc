#include "server/client.h"

#include <utility>

namespace metaprox::server {

QueryClient::QueryClient(util::Socket socket)
    : socket_(std::make_unique<util::Socket>(std::move(socket))),
      // Far above the server's request-line cap: an 'R' line grows with k
      // and the candidate-set size (~36 bytes per entry), and a response
      // the server was willing to build must be one the client can read.
      reader_(std::make_unique<util::LineReader>(*socket_,
                                                 /*max_line_bytes=*/
                                                 size_t{256} << 20)) {}

util::StatusOr<QueryClient> QueryClient::Connect(const std::string& host,
                                                 uint16_t port) {
  auto socket = util::ConnectTcp(host, port);
  if (!socket.ok()) return socket.status();
  return QueryClient(std::move(*socket));
}

util::Status QueryClient::SendQuery(NodeId node, size_t k) {
  return util::SendAll(*socket_, BuildQueryRequest(node, k));
}

util::StatusOr<RankResponse> QueryClient::ReceiveResponse() {
  std::string line;
  if (!reader_->ReadLine(&line)) {
    return util::Status::IoError("connection closed by server");
  }
  RankResponse response;
  if (!ParseQueryResponse(line, &response)) {
    return util::Status::Internal("unexpected server response: " + line);
  }
  return response;
}

util::StatusOr<RankResponse> QueryClient::Rank(NodeId node, size_t k) {
  MX_RETURN_IF_ERROR(SendQuery(node, k));
  return ReceiveResponse();
}

util::Status QueryClient::Ping() {
  MX_RETURN_IF_ERROR(util::SendAll(*socket_, BuildPingRequest()));
  std::string line;
  if (!reader_->ReadLine(&line)) {
    return util::Status::IoError("connection closed by server");
  }
  if (line != "PONG") {
    return util::Status::Internal("unexpected PING response: " + line);
  }
  return util::Status::Ok();
}

}  // namespace metaprox::server
