#include "server/client.h"

#include <utility>

namespace metaprox::server {

namespace {

// Shared "a reply line that may be an 'E' line" handling: wire errors
// become non-OK Statuses carrying the structured code.
util::Status StatusFromErrorLine(const std::string& line) {
  int code = 0;
  std::string message;
  if (ParseErrorResponse(line, &code, &message)) {
    return util::Status::Internal("server error " + std::to_string(code) +
                                  ": " + message);
  }
  return util::Status::Internal("unexpected server response: " + line);
}

}  // namespace

QueryClient::QueryClient(util::Socket socket)
    : socket_(std::make_unique<util::Socket>(std::move(socket))),
      // Far above the server's request-line cap: an 'R' line grows with k
      // and the candidate-set size (~36 bytes per entry), and a response
      // the server was willing to build must be one the client can read.
      reader_(std::make_unique<util::LineReader>(*socket_,
                                                 /*max_line_bytes=*/
                                                 size_t{256} << 20)) {}

util::StatusOr<QueryClient> QueryClient::Connect(const std::string& host,
                                                 uint16_t port) {
  auto socket = util::ConnectTcp(host, port);
  if (!socket.ok()) return socket.status();
  return QueryClient(std::move(*socket));
}

util::StatusOr<HelloInfo> QueryClient::Hello(uint64_t version) {
  MX_RETURN_IF_ERROR(util::SendAll(*socket_, BuildHelloRequest(version)));
  std::string line;
  if (!reader_->ReadLine(&line)) {
    return util::Status::IoError("connection closed by server");
  }
  HelloInfo info;
  if (!ParseHelloResponse(line, &info)) return StatusFromErrorLine(line);
  return info;
}

util::Status QueryClient::SendQuery(NodeId node, size_t k) {
  return util::SendAll(*socket_, BuildQueryRequest(node, k));
}

util::Status QueryClient::SendQuery(const std::string& model, NodeId node,
                                    size_t k) {
  return util::SendAll(*socket_, BuildQueryRequest(model, node, k));
}

util::StatusOr<RankResponse> QueryClient::ReceiveResponse() {
  std::string line;
  if (!reader_->ReadLine(&line)) {
    return util::Status::IoError("connection closed by server");
  }
  RankResponse response;
  if (!ParseQueryResponse(line, &response)) return StatusFromErrorLine(line);
  return response;
}

util::StatusOr<RankResponse> QueryClient::Rank(NodeId node, size_t k) {
  MX_RETURN_IF_ERROR(SendQuery(node, k));
  return ReceiveResponse();
}

util::StatusOr<RankResponse> QueryClient::Rank(const std::string& model,
                                               NodeId node, size_t k) {
  MX_RETURN_IF_ERROR(SendQuery(model, node, k));
  return ReceiveResponse();
}

util::Status QueryClient::Ping() {
  MX_RETURN_IF_ERROR(util::SendAll(*socket_, BuildPingRequest()));
  std::string line;
  if (!reader_->ReadLine(&line)) {
    return util::Status::IoError("connection closed by server");
  }
  if (line != "PONG") {
    return util::Status::Internal("unexpected PING response: " + line);
  }
  return util::Status::Ok();
}

util::StatusOr<std::string> QueryClient::Roundtrip(
    const std::string& request_line) {
  std::string request = request_line;
  if (request.empty() || request.back() != '\n') request += '\n';
  MX_RETURN_IF_ERROR(util::SendAll(*socket_, request));
  std::string line;
  if (!reader_->ReadLine(&line)) {
    return util::Status::IoError("connection closed by server");
  }
  if (line.rfind("E ", 0) == 0) return StatusFromErrorLine(line);
  return line;
}

util::StatusOr<AdminResult> QueryClient::Admin(
    const std::string& request_line) {
  std::string request = request_line;
  if (request.empty() || request.back() != '\n') request += '\n';
  MX_RETURN_IF_ERROR(util::SendAll(*socket_, request));
  std::string line;
  if (!reader_->ReadLine(&line)) {
    return util::Status::IoError("connection closed by server");
  }

  AdminResult result;
  result.raw = line;
  if (ParseErrorResponse(line, &result.error_code, &result.message)) {
    // A pre-v2 `E <message>` form parses to code 0, which would read as
    // success; report it as an unclassified error instead.
    if (result.error_code == 0) result.error_code = -1;
    return result;
  }

  // Tokenize the reply: "OK <verb> <fields>..." or "<verb> <fields>..."
  // (MODELS/STAT/STATS/HELLO answer without the OK prefix).
  std::string_view rest = line;
  auto take = [&rest]() {
    const size_t space = rest.find(' ');
    std::string_view token = rest.substr(0, space);
    rest.remove_prefix(space == std::string_view::npos ? rest.size()
                                                       : space + 1);
    return token;
  };
  std::string_view token = take();
  if (token == "OK") token = take();
  result.verb.assign(token);
  while (!rest.empty()) result.fields.emplace_back(take());
  return result;
}

}  // namespace metaprox::server
