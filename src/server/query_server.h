// QueryServer: a long-lived, dependency-free TCP front end over the
// batched online phase — multi-model serving over one shared index, on a
// nonblocking epoll reactor (the ROADMAP's "async server core" milestone).
//
// Request flow (see also docs/ARCHITECTURE.md, "The server layer", and
// docs/SERVING.md for the operator view):
//
//   reactor thread ──► ONE epoll event loop owns the listener and every
//       │              connection socket: accepts, reads, splits lines
//       │              (util::LineBuffer), parses (server/wire.h),
//       │              validates node/k/model and enforces the per-client
//       │              limits (pipeline depth, rate, with structured `E`
//       │              refusals); answers HELLO/PING/STATS inline and
//       │              hands admin verbs to the admin worker
//       ▼
//   pending queue  (FIFO across all connections; each entry pins its
//       │           model snapshot and its deadline)
//       ▼
//   batcher thread: waits up to `window_micros` for up to `max_batch`
//       │           queries (micro-batching), expires queries past their
//       │           deadline (E in FIFO position), groups the rest by k
//       ▼
//   IndexSnapshot::BatchQueryMulti(models, nodes, model_of, k): one
//       │           shared-window call per (index snapshot, k) group,
//       │           however many models the window mixes — row union
//       │           gathered once, scored under every model through the
//       │           multi-weight kernels, on the server's ThreadPool and
//       │           BatchScratch
//       ▼
//   per-connection OUTBOXES (bounded): the batcher appends response
//       lines in pop order (per-connection FIFO preserved) and wakes the
//       reactor, which flushes each outbox with nonblocking sends as the
//       socket accepts bytes
//
// Because BatchQuery results are identical to per-query Query() (the
// batched determinism contract), the accumulation window and batch cap are
// pure throughput/latency knobs: no setting changes any response byte.
//
// Backpressure, not head-of-line blocking: a client that stops reading
// only fills its OWN outbox. At half of `max_response_queue_bytes` the
// reactor stops reading that connection (TCP pushes back on the sender);
// at the full bound — and only after one more nonblocking flush attempt
// proves the socket itself won't take the bytes, so reactor lag alone
// never evicts — the connection is evicted with `E 18 SLOW_CONSUMER`
// (best-effort flush, then close). Other connections never wait on it —
// the batcher never blocks on a socket.
//
// Models: the server owns no model — it serves whatever the external
// ModelRegistry publishes. A request pins its snapshot when the reactor
// enqueues it, so a RELOAD hot-swap never affects a query already
// accepted (it is ranked under the weights that were current when it
// arrived) and never stalls serving: the next accepted query simply picks
// up the new snapshot. v1 `Q <node>` lines are served from
// `options.default_model`, which must exist at Start() and cannot be
// UNLOADed through this server's admin interface.
//
// Indexes: the server owns no index either — it serves whatever
// IndexSnapshot the external IndexRegistry publishes, under the same
// RCU discipline as models. Each accepted query pins the current
// snapshot; a REFRESH or SWAPINDEX that lands mid-window only affects
// queries accepted after it (in-flight batches finish on the generation
// they pinned). With an IndexMaintainer attached, the admin verbs
// APPEND (buffer graph deltas), REFRESH (incremental re-match of the
// affected metagraphs, then publish) and SWAPINDEX (publish a
// precomputed index artifact) mutate the served index under live
// traffic; without one they answer E kIndexAdminError.
//
// Threading: three threads at most. The reactor thread does all socket
// I/O and all epoll bookkeeping; the batcher is the only thread that
// touches the server's ThreadPool/BatchScratch; an admin worker (spawned
// only with options.admin) runs model/index disk I/O and index refreshes
// so a LOAD or REFRESH never stalls the event loop. Both registries are
// safe to mutate from anywhere at any time. Producer threads hand
// response bytes to the reactor through the per-connection outboxes plus
// an eventfd wake — they never touch a socket or epoll.
//
// Shutdown is a graceful drain (see Stop()).
#ifndef METAPROX_SERVER_QUERY_SERVER_H_
#define METAPROX_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/index_snapshot.h"
#include "core/query_batch.h"
#include "server/index_registry.h"
#include "server/model_registry.h"
#include "server/reactor.h"
#include "server/wire.h"
#include "util/socket.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace metaprox {
class IndexMaintainer;
}  // namespace metaprox

namespace metaprox::server {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 = OS-assigned (read back with port()).
  uint16_t port = 0;
  /// Upper bound on queries ranked by one BatchQuery call.
  size_t max_batch = 64;
  /// How long the batcher waits for a window to fill once it holds at
  /// least one query. 0 = rank whatever is queued immediately (lowest
  /// latency, least batching).
  uint64_t window_micros = 1000;
  /// k used by requests that do not name one.
  size_t default_k = 10;
  /// Ceiling on per-request k. A request naming a larger k is answered
  /// with E kKTooLarge — an explicit refusal, never a silent clamp, so a
  /// client can't mistake a truncated ranking for the full one.
  size_t max_k = 1 << 20;
  /// Registry model that answers v1 `Q <node>` lines and v2 queries that
  /// name no model. Must exist in the registry at Start().
  std::string default_model = "default";
  /// Enables the admin verbs (LOAD/RELOAD/UNLOAD/LIST/STAT, plus
  /// APPEND/REFRESH/SWAPINDEX when an IndexMaintainer is attached). Off
  /// by default: a serving port shouldn't accept model or index mutations
  /// unless the operator asked for it.
  bool admin = false;
  /// Worker threads for the batcher's ranking calls (the server owns its
  /// ThreadPool and BatchScratch; snapshots are stateless). 0 = hardware
  /// concurrency; 1 = serial, no pool. Responses are byte-identical for
  /// any value (the batched determinism contract).
  unsigned num_threads = 1;
  /// Connections beyond this are refused with an 'E' response.
  size_t max_connections = 256;
  /// Global bound on queued-but-unranked queries. When the queue is full
  /// the reactor stops READING the offending connections (their parsed-
  /// but-unqueued query waits; TCP pushes back on the client) until the
  /// batcher makes room — server memory stays bounded, nobody is evicted.
  size_t max_pending = 1 << 20;
  /// Rank each window with one shared BatchQueryMulti call per k group
  /// (gather the window's row union once, score under every model). When
  /// false, the batcher falls back to the pre-shared-window behavior — one
  /// BatchQuery per (model snapshot, k) group. Responses are byte-identical
  /// either way (the multi path's bitwise contract); the flag exists so
  /// benches can A/B the two schedules on live traffic.
  bool shared_window_scoring = true;

  // ---- per-client limits (docs/SERVING.md documents each in depth) ----

  /// Max unanswered queries one connection may have in flight. The
  /// excess is refused with E kPipelineLimit (the refusal is immediate
  /// and may overtake pending 'R' responses, like every out-of-band
  /// reply). Generous by default: a well-behaved pipelining client never
  /// sees it.
  size_t max_pipeline = 1 << 14;
  /// Bound on one connection's unsent response bytes. At HALF this bound
  /// the reactor stops reading the connection (backpressure through
  /// TCP); once the unsent backlog exceeds the full bound AND a direct
  /// nonblocking flush can't bring it back under (the kernel socket
  /// buffer is full because the client is not reading), the connection
  /// is evicted: E kSlowConsumer is appended, the outbox is flushed
  /// best-effort, and the socket is closed. Clamped to >= 4096.
  size_t max_response_queue_bytes = size_t{32} << 20;
  /// Per-connection rate limit in queries/second (token bucket with one
  /// second of burst). Queries beyond it are refused with E kRateLimited.
  /// 0 = unlimited (the default).
  double max_queries_per_second = 0.0;
  /// Deadline for a query to REACH ranking. A query still queued after
  /// this long is answered with E kDeadlineExceeded in its FIFO response
  /// position instead of being ranked — bounded staleness under
  /// overload. 0 = no deadline (the default).
  uint64_t request_deadline_micros = 0;
  /// How long Stop() keeps flushing outboxes after the batcher finishes
  /// before force-closing what remains unsent.
  uint64_t drain_timeout_millis = 5000;
};

// Counters advance before their event becomes externally observable (a
// ranked query is counted before its 'R' line is written), so a client
// that just read a response is guaranteed to see it reflected here.
// Per-model serve counters live in the registry (ServableModel::serves),
// not here: they belong to the model's lifetime, not the server's.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t queries = 0;          // 'Q' requests ranked
  uint64_t batches = 0;          // engine batch calls issued (one per k
                                 // group of a window when shared-window
                                 // scoring is on; one per (model, k)
                                 // group on the legacy path)
  uint64_t largest_batch = 0;    // max queries ranked by one call
  uint64_t protocol_errors = 0;  // 'E' responses sent (all codes)
  uint64_t admin_commands = 0;   // admin verbs accepted (admin enabled)

  // Gather-amortization counters of the shared-window batcher (zero when
  // shared_window_scoring is off, except windows/window_model_groups,
  // which both paths maintain). models_per_window, the mean number of
  // distinct model snapshots a window mixes, is window_model_groups /
  // windows.
  uint64_t windows = 0;               // batcher windows popped and ranked
  uint64_t window_model_groups = 0;   // sum of distinct snapshots per window
  uint64_t rows_gathered = 0;         // node rows gathered (dotted), total
  uint64_t rows_saved_vs_per_model = 0;  // rows per-(model,k) grouping would
                                         // have gathered on the same
                                         // windows, minus rows_gathered

  // Per-client limit counters (each also counts into protocol_errors).
  uint64_t slow_consumer_evictions = 0;  // connections closed with E 18
  uint64_t pipeline_refused = 0;         // queries refused with E 19
  uint64_t rate_limited = 0;             // queries refused with E 20
  uint64_t deadline_expired = 0;         // queries answered with E 21

  // Index maintenance counters (all zero without a maintainer, except
  // index_swaps, which SWAPINDEX advances regardless).
  uint64_t append_nodes = 0;      // nodes buffered via APPEND N
  uint64_t append_edges = 0;      // edges buffered via APPEND E
  uint64_t index_refreshes = 0;   // REFRESH verbs that published
  uint64_t index_swaps = 0;       // SWAPINDEX verbs that published
};

/// One server instance: Start() once, Stop() once (or let the destructor).
/// Not restartable — make a new instance.
class QueryServer {
 public:
  /// `indexes` and `models` must outlive the server; both may be shared
  /// (and mutated) by other parties concurrently — e.g. an offline
  /// retrainer pushing new weights, or a maintenance job publishing a
  /// refreshed index, while this server serves. `maintainer` (optional)
  /// enables the APPEND/REFRESH index-maintenance verbs; it must outlive
  /// the server, and this server's admin worker must be its only writer.
  QueryServer(IndexRegistry* indexes, ModelRegistry* models,
              ServerOptions options,
              IndexMaintainer* maintainer = nullptr);
  ~QueryServer();
  MX_DISALLOW_COPY_AND_ASSIGN(QueryServer);

  /// Binds 127.0.0.1 and spawns the reactor/batcher threads. On return
  /// the socket is listening: a subsequent connect cannot be refused.
  /// Fails if the index is not finalized or the default model is absent.
  util::Status Start();

  /// Graceful drain: stops accepting and reading, lets the batcher rank
  /// every query already accepted into the queue (skipping window
  /// waits), flushes the resulting responses to their connections, then
  /// closes every socket and joins all threads. A connection that won't
  /// take its bytes within `drain_timeout_millis` is force-closed.
  /// Idempotent from one thread.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  ServerStats stats() const MX_EXCLUDES(stats_mu_);

 private:
  struct Connection {
    uint64_t id = 0;
    util::Socket socket;

    // ---- reactor-thread-only state ----
    util::LineBuffer input;
    bool paused_backpressure = false;  // EPOLLIN off: outbox too deep
    bool paused_queue_full = false;    // EPOLLIN off: global queue full
    bool reg_read = true;              // EPOLLIN currently registered
    bool reg_write = false;            // EPOLLOUT currently registered
    bool has_stashed = false;          // a parsed query waiting for queue
    Request stashed;                   //   space (paused_queue_full)
    double tokens = 0.0;               // rate-limit token bucket
    std::chrono::steady_clock::time_point tokens_refilled{};

    // ---- cross-thread state (producers append, reactor flushes) ----
    mx::Mutex out_mu;
    std::string outbox MX_GUARDED_BY(out_mu);  // response bytes
    size_t out_off MX_GUARDED_BY(out_mu) = 0;  // sent prefix of outbox
    // Slow consumer: flush best-effort, then close.
    bool evict MX_GUARDED_BY(out_mu) = false;
    // Torn down; late responses are dropped. Written under out_mu (so a
    // producer holding out_mu sees a consistent (closed, outbox) pair);
    // atomic so the reactor's hot early-exit check in FlushOutbox can
    // read it without taking the lock.
    std::atomic<bool> closed{false};

    std::atomic<size_t> in_flight{0};  // enqueued, not yet answered
    std::atomic<bool> dirty{false};    // on the reactor's flush list
  };

  struct PendingQuery {
    std::shared_ptr<Connection> conn;
    /// The model snapshot pinned at accept time (RCU-style: hot-swaps
    /// don't reach queries already in the queue).
    std::shared_ptr<const ServableModel> model;
    /// The index snapshot pinned at accept time, same discipline: a
    /// REFRESH/SWAPINDEX never reaches a query already in the queue.
    std::shared_ptr<const IndexSnapshot> index;
    NodeId node = kInvalidNode;
    size_t k = 0;
    /// Ranking deadline (request_deadline_micros after acceptance);
    /// time_point::max() when deadlines are off.
    std::chrono::steady_clock::time_point deadline{};
  };

  struct AdminTask {
    std::shared_ptr<Connection> conn;
    Request request;
  };

  // ---- reactor thread ----
  void ReactorLoop();
  void AcceptNew();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void ProcessInput(const std::shared_ptr<Connection>& conn);
  /// Handles one parsed request. Returns false when input processing for
  /// this connection must pause (global queue full; the request is
  /// stashed).
  bool HandleRequest(const std::shared_ptr<Connection>& conn,
                     const Request& request);
  /// Validated query -> pending queue. False = queue full (caller
  /// stashes and pauses).
  bool EnqueuePending(const std::shared_ptr<Connection>& conn,
                      const Request& request);
  /// Flushes as much of the outbox as the socket takes now; manages
  /// EPOLLOUT interest, backpressure pause/resume, and eviction close.
  void FlushOutbox(const std::shared_ptr<Connection>& conn)
      MX_EXCLUDES(conn->out_mu);
  /// The one nonblocking send loop (shared by the reactor's FlushOutbox
  /// and a producer's over-bound flush attempt in EnqueueResponse):
  /// pushes outbox bytes from out_off until the socket won't take more,
  /// compacting the sent prefix. Returns false when the socket errored
  /// (the connection is dead). Caller holds conn->out_mu.
  static bool TrySendLocked(Connection& conn) MX_REQUIRES(conn.out_mu);
  void ResumeQueueBlocked();
  void SweepDirty();
  void UpdateReadInterest(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void SendError(const std::shared_ptr<Connection>& conn, ErrorCode code,
                 std::string_view message);

  // ---- any thread ----
  /// Appends a response line to the connection's outbox (dropping it if
  /// the connection is closed or evicted; evicting it if the line would
  /// exceed max_response_queue_bytes) and puts the connection on the
  /// reactor's dirty list. The caller wakes the reactor (batched: one
  /// Wake may cover many enqueues).
  void EnqueueResponse(const std::shared_ptr<Connection>& conn,
                       std::string line) MX_EXCLUDES(conn->out_mu);
  void MarkDirty(const std::shared_ptr<Connection>& conn)
      MX_EXCLUDES(dirty_mu_);
  std::string BuildStatsResponse() MX_EXCLUDES(stats_mu_);

  // ---- batcher thread ----
  void BatcherLoop();
  /// Ranks one popped window (expired queries answered in place) and
  /// enqueues the responses in pop order, preserving per-connection FIFO.
  void RankAndRespond(std::vector<PendingQuery> batch);

  // ---- admin worker thread ----
  void AdminLoop();
  void RunAdminTask(const AdminTask& task);

  IndexRegistry* indexes_;
  ModelRegistry* registry_;
  IndexMaintainer* maintainer_;  // null: index admin verbs answer E 22
  ServerOptions options_;
  uint16_t port_ = 0;
  util::Socket listener_;
  bool started_ = false;
  std::unique_ptr<EpollLoop> loop_;
  /// The batcher's ranking resources (snapshots are stateless; the
  /// batcher is their only user, so one scratch suffices).
  std::unique_ptr<util::ThreadPool> pool_;
  BatchScratch batch_scratch_;

  std::thread reactor_thread_;
  std::thread batcher_thread_;
  std::thread admin_thread_;

  mx::Mutex queue_mu_;
  mx::CondVar queue_cv_;  // batcher waits: work or drain
  std::deque<PendingQuery> queue_ MX_GUARDED_BY(queue_mu_);
  // Set under queue_mu_ (so the cv waits are race-free); atomic so other
  // threads may read it without the lock. draining_ starts the graceful
  // drain; producers_done_ tells the reactor no thread will enqueue
  // responses anymore, so "all outboxes empty" is final.
  std::atomic<bool> draining_{false};
  std::atomic<bool> producers_done_{false};
  // Connections paused because the queue was full; the batcher wakes the
  // reactor after popping when this is nonzero.
  std::atomic<size_t> queue_blocked_count_{0};

  mx::Mutex admin_mu_;
  mx::CondVar admin_cv_;
  std::deque<AdminTask> admin_tasks_ MX_GUARDED_BY(admin_mu_);

  mx::Mutex dirty_mu_;
  std::vector<std::shared_ptr<Connection>> dirty_ MX_GUARDED_BY(dirty_mu_);

  // Reactor-thread-only: tag -> connection (epoll tags are conn ids).
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
  std::vector<uint64_t> queue_blocked_;  // conn ids paused on queue space
  bool drain_started_ = false;  // the reactor has observed draining_

  mutable mx::Mutex stats_mu_;
  ServerStats stats_ MX_GUARDED_BY(stats_mu_);
};

}  // namespace metaprox::server

#endif  // METAPROX_SERVER_QUERY_SERVER_H_
