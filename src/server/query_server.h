// QueryServer: a long-lived, dependency-free TCP front end over the
// batched online phase — multi-model serving over one shared index (the
// ROADMAP's "multi-class serving" milestone).
//
// Request flow (see also docs/ARCHITECTURE.md, "The server layer"):
//
//   accept thread ──► one reader thread per connection
//                         │  parse line (server/wire.h), validate node/k,
//                         │  resolve the model name to a registry snapshot
//                         │  (admin verbs answered here, out of band)
//                         ▼
//                     pending queue  (FIFO across all connections; each
//                         │           entry pins its model snapshot)
//                         ▼
//                     batcher thread: waits up to `window_micros` for up to
//                         │           `max_batch` queries (micro-batching),
//                         │           groups the window by k ONLY
//                         ▼
//                     SearchEngine::BatchQueryMulti(models, nodes,
//                         │           model_of, k): one shared-window call
//                         │           per k group, however many models the
//                         │           window mixes — the union of touched
//                         │           rows is gathered once and scored
//                         │           under every model through the
//                         │           multi-weight kernels, on the engine's
//                         │           shared ThreadPool and epoch-marked
//                         │           BatchScratch
//                         ▼
//                     responses written back per connection, in each
//                     connection's request order
//
// Because BatchQuery results are identical to per-query Query() (the
// batched determinism contract), the accumulation window and batch cap are
// pure throughput/latency knobs: no setting changes any response byte.
//
// Models: the server owns no model — it serves whatever the external
// ModelRegistry publishes. A request pins its snapshot when the reader
// enqueues it, so a RELOAD hot-swap never affects a query already
// accepted (it is ranked under the weights that were current when it
// arrived) and never stalls serving: the next accepted query simply picks
// up the new snapshot. v1 `Q <node>` lines are served from
// `options.default_model`, which must exist at Start() and cannot be
// UNLOADed through this server's admin interface.
//
// Threading: the batcher is the only thread that touches the engine's
// non-const API, so one QueryServer may share an engine with concurrent
// const readers (Query()), but not with another running QueryServer or any
// offline mutation. The registry is safe to mutate from anywhere at any
// time (reader threads do, on admin verbs). Reader threads never block on
// response writes of other connections; requests keep draining while the
// batcher writes, so a client that pipelines queries before reading only
// grows the pending queue (bounded by `max_pending`).
//
// Known limitation (single-host building block, not an internet-facing
// server — see the ROADMAP hardening follow-on): the batcher writes
// responses with blocking sends, so a client that stops reading
// head-of-line-blocks responses for every connection once its TCP buffers
// fill, and a client with more than `max_pending` unread queries in
// flight can wedge the server until it is stopped or the client is
// killed. Trusted well-behaved clients (ours drain their pipelines) never
// hit either bound.
#ifndef METAPROX_SERVER_QUERY_SERVER_H_
#define METAPROX_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "server/model_registry.h"
#include "server/wire.h"
#include "util/socket.h"
#include "util/status.h"

namespace metaprox::server {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 = OS-assigned (read back with port()).
  uint16_t port = 0;
  /// Upper bound on queries ranked by one BatchQuery call.
  size_t max_batch = 64;
  /// How long the batcher waits for a window to fill once it holds at
  /// least one query. 0 = rank whatever is queued immediately (lowest
  /// latency, least batching).
  uint64_t window_micros = 1000;
  /// k used by requests that do not name one.
  size_t default_k = 10;
  /// Ceiling on per-request k. A request naming a larger k is answered
  /// with E kKTooLarge — an explicit refusal, never a silent clamp, so a
  /// client can't mistake a truncated ranking for the full one.
  size_t max_k = 1 << 20;
  /// Registry model that answers v1 `Q <node>` lines and v2 queries that
  /// name no model. Must exist in the registry at Start().
  std::string default_model = "default";
  /// Enables the admin verbs (LOAD/RELOAD/UNLOAD/LIST/STAT). Off by
  /// default: a serving port shouldn't accept model mutations unless the
  /// operator asked for it.
  bool admin = false;
  /// Connections beyond this are refused with an 'E' response.
  size_t max_connections = 256;
  /// Backpressure bound on queued-but-unranked queries: a reader whose
  /// enqueue would exceed it waits, which in turn stalls that client's TCP
  /// stream. Far above anything the tests or benches queue; exists so an
  /// unbounded pipelining client cannot grow server memory without limit.
  size_t max_pending = 1 << 20;
  /// Rank each window with one shared BatchQueryMulti call per k group
  /// (gather the window's row union once, score under every model). When
  /// false, the batcher falls back to the pre-shared-window behavior — one
  /// BatchQuery per (model snapshot, k) group. Responses are byte-identical
  /// either way (the multi path's bitwise contract); the flag exists so
  /// benches can A/B the two schedules on live traffic.
  bool shared_window_scoring = true;
};

// Counters advance before their event becomes externally observable (a
// ranked query is counted before its 'R' line is written), so a client
// that just read a response is guaranteed to see it reflected here.
// Per-model serve counters live in the registry (ServableModel::serves),
// not here: they belong to the model's lifetime, not the server's.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t queries = 0;          // 'Q' requests ranked
  uint64_t batches = 0;          // engine batch calls issued (one per k
                                 // group of a window when shared-window
                                 // scoring is on; one per (model, k)
                                 // group on the legacy path)
  uint64_t largest_batch = 0;    // max queries ranked by one call
  uint64_t protocol_errors = 0;  // 'E' responses sent
  uint64_t admin_commands = 0;   // admin verbs accepted (admin enabled)

  // Gather-amortization counters of the shared-window batcher (zero when
  // shared_window_scoring is off, except windows/window_model_groups,
  // which both paths maintain). models_per_window, the mean number of
  // distinct model snapshots a window mixes, is window_model_groups /
  // windows.
  uint64_t windows = 0;               // batcher windows popped and ranked
  uint64_t window_model_groups = 0;   // sum of distinct snapshots per window
  uint64_t rows_gathered = 0;         // node rows gathered (dotted), total
  uint64_t rows_saved_vs_per_model = 0;  // rows per-(model,k) grouping would
                                         // have gathered on the same
                                         // windows, minus rows_gathered
};

/// One server instance: Start() once, Stop() once (or let the destructor).
/// Not restartable — make a new instance.
class QueryServer {
 public:
  /// `engine` must have a finalized index and outlive the server.
  /// `registry` must outlive the server; it may be shared (and mutated)
  /// by other parties concurrently — e.g. an offline retrainer pushing
  /// new weights while this server serves.
  QueryServer(SearchEngine* engine, ModelRegistry* registry,
              ServerOptions options);
  ~QueryServer();
  MX_DISALLOW_COPY_AND_ASSIGN(QueryServer);

  /// Binds 127.0.0.1 and spawns the accept/batcher threads. On return the
  /// socket is listening: a subsequent connect cannot be refused.
  /// Fails if the index is not finalized or the default model is absent.
  util::Status Start();

  /// Stops accepting, disconnects every client, joins all threads.
  /// Queries still pending in the queue are dropped (their connections are
  /// closing anyway). Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  ServerStats stats() const;

 private:
  struct Connection {
    uint64_t id = 0;
    util::Socket socket;
    std::mutex write_mu;  // serializes response lines on this socket
  };

  struct PendingQuery {
    std::shared_ptr<Connection> conn;
    /// The model snapshot pinned at accept time (RCU-style: hot-swaps
    /// don't reach queries already in the queue).
    std::shared_ptr<const ServableModel> model;
    NodeId node = kInvalidNode;
    size_t k = 0;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  /// Handles one parsed request on the reader thread. Returns false when
  /// the reader should stop (server stopping).
  bool HandleRequest(const std::shared_ptr<Connection>& conn,
                     const Request& request);
  /// Admin verbs (LOAD/RELOAD/UNLOAD/LIST/STAT), reader-thread, out of
  /// band. Replies directly on the connection.
  void HandleAdmin(Connection& conn, const Request& request);
  void SendError(Connection& conn, ErrorCode code, std::string_view message);
  void BatcherLoop();
  /// Ranks one popped window (grouped by (model, k)) and writes the
  /// responses in pop order, preserving per-connection FIFO.
  void RankAndRespond(std::vector<PendingQuery> batch);
  void SendToConnection(Connection& conn, const std::string& line);
  void JoinFinishedReaders();

  SearchEngine* engine_;
  ModelRegistry* registry_;
  ServerOptions options_;
  uint16_t port_ = 0;
  util::Socket listener_;
  bool started_ = false;

  std::thread accept_thread_;
  std::thread batcher_thread_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;     // batcher waits: work or stop
  std::condition_variable backpressure_cv_;  // readers wait: queue space
  std::deque<PendingQuery> queue_;       // guarded by queue_mu_
  // Written under queue_mu_ (so the cv waits are race-free); atomic so the
  // accept/reader threads may read it without the lock.
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  uint64_t next_conn_id_ = 1;                       // guarded by conns_mu_
  std::unordered_map<uint64_t, std::shared_ptr<Connection>>
      connections_;                                 // guarded by conns_mu_
  std::unordered_map<uint64_t, std::thread> readers_;  // guarded by conns_mu_
  std::vector<uint64_t> finished_readers_;          // guarded by conns_mu_

  mutable std::mutex stats_mu_;
  ServerStats stats_;  // guarded by stats_mu_
};

}  // namespace metaprox::server

#endif  // METAPROX_SERVER_QUERY_SERVER_H_
