// IndexRegistry: the serving-side publication point for IndexSnapshot
// generations — ModelRegistry's RCU pattern applied to the index.
//
// The reactor/batcher pin the current snapshot per query (shared_ptr), so
// Publish() swaps generations under live traffic without locks on the read
// path beyond one mutex-guarded shared_ptr copy; in-flight batches keep
// ranking on the generation they pinned and simply finish there. One
// registry serves one index lineage (unlike models there is nothing to
// name: the server serves exactly one index at a time).
#ifndef METAPROX_SERVER_INDEX_REGISTRY_H_
#define METAPROX_SERVER_INDEX_REGISTRY_H_

#include <cstdint>
#include <memory>

#include "core/index_snapshot.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace metaprox::server {

/// Point-in-time public info of the registry, for STATS/diagnostics.
struct IndexInfo {
  uint64_t generation = 0;   // the published snapshot's generation
  uint64_t publishes = 0;    // Publish() calls that succeeded (swap count)
  size_t num_nodes = 0;      // the published snapshot's graph size
  size_t num_metagraphs = 0;
};

class IndexRegistry {
 public:
  /// Starts with `initial` published. The snapshot fixes the expected
  /// metagraph count: every later Publish() must match it (models are
  /// validated against that same count by ModelRegistry).
  explicit IndexRegistry(std::shared_ptr<const IndexSnapshot> initial);

  /// The current generation. Callers pin the returned snapshot for the
  /// duration of any read through it. Never null.
  std::shared_ptr<const IndexSnapshot> Get() const MX_EXCLUDES(mu_);

  /// Atomically replaces the served snapshot. Refuses snapshots of a
  /// different metagraph count (loaded models would stop matching the
  /// index) or with a smaller graph than currently served (node ids
  /// already validated against the live graph must stay valid).
  util::Status Publish(std::shared_ptr<const IndexSnapshot> snapshot)
      MX_EXCLUDES(mu_);

  IndexInfo Info() const MX_EXCLUDES(mu_);

 private:
  const size_t num_metagraphs_;
  mutable mx::Mutex mu_;
  std::shared_ptr<const IndexSnapshot> current_ MX_GUARDED_BY(mu_);
  uint64_t publishes_ MX_GUARDED_BY(mu_) = 0;
};

}  // namespace metaprox::server

#endif  // METAPROX_SERVER_INDEX_REGISTRY_H_
