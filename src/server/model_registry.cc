#include "server/model_registry.h"

#include <algorithm>
#include <utility>

#include "server/wire.h"

namespace metaprox::server {

bool ModelRegistry::IsValidName(std::string_view name) {
  // One grammar for names: the wire parser and the registry must agree,
  // or a loadable model could be unaddressable (or vice versa).
  return IsValidModelName(name);
}

util::Status ModelRegistry::Validate(const std::string& name,
                                     const MgpModel& model) const {
  if (!IsValidName(name)) {
    return util::Status::InvalidArgument("invalid model name: '" + name +
                                         "' (leading letter, then "
                                         "[A-Za-z0-9_.-], max 64 chars)");
  }
  if (model.weights.size() != expected_weights_) {
    return util::Status::InvalidArgument(
        "model '" + name + "' has " + std::to_string(model.weights.size()) +
        " weights but the index has " + std::to_string(expected_weights_) +
        " metagraphs");
  }
  return util::Status::Ok();
}

util::StatusOr<uint64_t> ModelRegistry::Load(const std::string& name,
                                             MgpModel model) {
  MX_RETURN_IF_ERROR(Validate(name, model));
  auto snapshot = std::make_shared<ServableModel>();
  snapshot->name = name;
  snapshot->version = 1;
  snapshot->model = std::move(model);
  snapshot->serves = std::make_shared<std::atomic<uint64_t>>(0);
  mx::MutexLock lock(mu_);
  auto [it, inserted] = models_.emplace(name, std::move(snapshot));
  if (!inserted) {
    return util::Status::FailedPrecondition(
        "model '" + name + "' is already loaded (RELOAD swaps a live slot)");
  }
  return it->second->version;
}

util::StatusOr<uint64_t> ModelRegistry::Reload(const std::string& name,
                                               MgpModel model) {
  MX_RETURN_IF_ERROR(Validate(name, model));
  auto snapshot = std::make_shared<ServableModel>();
  snapshot->name = name;
  snapshot->model = std::move(model);
  mx::MutexLock lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return util::Status::NotFound("no model '" + name +
                                  "' to reload (LOAD publishes a new slot)");
  }
  // Same name, next version, SAME cumulative serve counter: the swap is
  // invisible to everything but Get().
  snapshot->version = it->second->version + 1;
  snapshot->serves = it->second->serves;
  const uint64_t version = snapshot->version;
  it->second = std::move(snapshot);
  return version;
}

util::Status ModelRegistry::Unload(const std::string& name) {
  mx::MutexLock lock(mu_);
  if (models_.erase(name) == 0) {
    return util::Status::NotFound("no model '" + name + "' to unload");
  }
  return util::Status::Ok();
}

std::shared_ptr<const ServableModel> ModelRegistry::Get(
    const std::string& name) const {
  mx::MutexLock lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

std::vector<ModelInfo> ModelRegistry::List() const {
  std::vector<ModelInfo> infos;
  {
    mx::MutexLock lock(mu_);
    infos.reserve(models_.size());
    for (const auto& [name, snapshot] : models_) {
      infos.push_back(ModelInfo{name, snapshot->version,
                                snapshot->model.weights.size(),
                                snapshot->serves_count()});
    }
  }
  std::sort(infos.begin(), infos.end(),
            [](const ModelInfo& a, const ModelInfo& b) {
              return a.name < b.name;
            });
  return infos;
}

size_t ModelRegistry::size() const {
  mx::MutexLock lock(mu_);
  return models_.size();
}

}  // namespace metaprox::server
