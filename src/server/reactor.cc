#include "server/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace metaprox::server {

namespace {

util::Status Errno(const char* what) {
  return util::Status::IoError(std::string(what) + ": " +
                               std::strerror(errno));
}

}  // namespace

util::StatusOr<EpollLoop> EpollLoop::Create() {
  util::Socket epoll_fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd.valid()) return Errno("epoll_create1");
  // Nonblocking so draining a burst of coalesced Wakes never sleeps;
  // counter semantics (not EFD_SEMAPHORE) so N Wakes collapse to one
  // event.
  util::Socket wake_fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wake_fd.valid()) return Errno("eventfd");

  EpollLoop loop(std::move(epoll_fd), std::move(wake_fd));
  auto status =
      loop.Add(loop.wake_.fd(), kWakeTag, /*want_read=*/true,
               /*want_write=*/false);
  if (!status.ok()) return status;
  return loop;
}

util::Status EpollLoop::Ctl(int op, int fd, uint64_t tag, bool want_read,
                            bool want_write) {
  epoll_event ev{};
  ev.events = 0;
  if (want_read) ev.events |= EPOLLIN;
  if (want_write) ev.events |= EPOLLOUT;
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_.fd(), op, fd, &ev) < 0) return Errno("epoll_ctl");
  return util::Status::Ok();
}

util::Status EpollLoop::Add(int fd, uint64_t tag, bool want_read,
                            bool want_write) {
  return Ctl(EPOLL_CTL_ADD, fd, tag, want_read, want_write);
}

util::Status EpollLoop::Mod(int fd, uint64_t tag, bool want_read,
                            bool want_write) {
  return Ctl(EPOLL_CTL_MOD, fd, tag, want_read, want_write);
}

util::Status EpollLoop::Del(int fd) {
  epoll_event ev{};  // ignored for DEL, but pre-2.6.9 kernels want non-null
  if (::epoll_ctl(epoll_.fd(), EPOLL_CTL_DEL, fd, &ev) < 0) {
    return Errno("epoll_ctl(DEL)");
  }
  return util::Status::Ok();
}

util::StatusOr<size_t> EpollLoop::Wait(int timeout_millis,
                                       std::vector<Event>* out) {
  out->clear();
  epoll_event events[256];
  int n;
  do {
    n = ::epoll_wait(epoll_.fd(), events, 256, timeout_millis);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Errno("epoll_wait");

  out->reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Event event;
    event.tag = events[i].data.u64;
    event.readable = (events[i].events & EPOLLIN) != 0;
    event.writable = (events[i].events & EPOLLOUT) != 0;
    event.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    if (event.tag == kWakeTag) {
      // Drain the counter so level-triggered epoll re-arms only on the
      // next Wake.
      uint64_t count = 0;
      ssize_t got;
      do {
        got = ::read(wake_.fd(), &count, sizeof(count));
      } while (got < 0 && errno == EINTR);
    }
    out->push_back(event);
  }
  return out->size();
}

void EpollLoop::Wake() {
  const uint64_t one = 1;
  ssize_t sent;
  do {
    sent = ::write(wake_.fd(), &one, sizeof(one));
  } while (sent < 0 && errno == EINTR);
  // EAGAIN means the counter is saturated — a wake is already pending,
  // which is all Wake promises.
}

}  // namespace metaprox::server
