#include "server/index_registry.h"

#include <string>
#include <utility>

#include "util/macros.h"

namespace metaprox::server {

IndexRegistry::IndexRegistry(std::shared_ptr<const IndexSnapshot> initial)
    : num_metagraphs_(initial != nullptr ? initial->index().num_metagraphs()
                                         : 0),
      current_(std::move(initial)) {
  MX_CHECK_MSG(current_ != nullptr,
               "IndexRegistry needs an initial snapshot to serve");
}

std::shared_ptr<const IndexSnapshot> IndexRegistry::Get() const {
  mx::MutexLock lock(mu_);
  return current_;
}

util::Status IndexRegistry::Publish(
    std::shared_ptr<const IndexSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return util::Status::InvalidArgument("cannot publish a null snapshot");
  }
  if (snapshot->index().num_metagraphs() != num_metagraphs_) {
    return util::Status::InvalidArgument(
        "snapshot has " + std::to_string(snapshot->index().num_metagraphs()) +
        " metagraphs; this registry serves " +
        std::to_string(num_metagraphs_));
  }
  mx::MutexLock lock(mu_);
  if (snapshot->graph().num_nodes() < current_->graph().num_nodes()) {
    return util::Status::FailedPrecondition(
        "snapshot graph has " + std::to_string(snapshot->graph().num_nodes()) +
        " nodes, fewer than the " +
        std::to_string(current_->graph().num_nodes()) + " being served");
  }
  current_ = std::move(snapshot);
  ++publishes_;
  return util::Status::Ok();
}

IndexInfo IndexRegistry::Info() const {
  mx::MutexLock lock(mu_);
  IndexInfo info;
  info.generation = current_->generation();
  info.publishes = publishes_;
  info.num_nodes = current_->graph().num_nodes();
  info.num_metagraphs = current_->index().num_metagraphs();
  return info;
}

}  // namespace metaprox::server
