// Blocking client for the metaprox query server (docs/WIRE_PROTOCOL.md).
// One QueryClient owns one connection. A client belongs to one thread; for
// concurrent load, open one client per thread (examples/mgps_client.cpp,
// bench_server_throughput).
//
// Pipelining guarantees (what you may rely on):
//   * Any number of SendQuery() calls may be outstanding at once; the
//     matching responses arrive via ReceiveResponse() in exactly the send
//     order — the server preserves per-connection FIFO for query
//     responses, including `E` refusals and deadline expiries, which hold
//     the refused query's position... with ONE exception: limit refusals
//     (k/node/model validation, pipeline, rate) are answered immediately
//     at parse time and may OVERTAKE 'R' responses still pending for
//     earlier queries. A client that never trips a limit sees pure FIFO.
//   * Queries naming different models may be interleaved freely on one
//     connection; ordering is still per-connection, not per-model.
//   * Pipeline depth is bounded by the server's max_pipeline (beyond it,
//     E kPipelineLimit), and a client that sends without reading long
//     enough will first be throttled (the server stops reading) and
//     eventually evicted (E kSlowConsumer) — drain as you send.
//   * HELLO/PING/STATS/admin replies are out of band and may overtake
//     pending 'R' responses, which is why Hello()/Ping()/Roundtrip()
//     require no queries in flight.
//
// The server may drop a connection mid-pipeline (slow-consumer eviction,
// drain timeout, malformed line): every outstanding ReceiveResponse()
// then fails with a non-OK Status — treat it as "resend on a fresh
// connection", not as an answer.
//
// Protocol v2 is optional: a client that never calls Hello() and sends
// only model-less queries behaves exactly like a v1 client and works
// against any server generation.
#ifndef METAPROX_SERVER_CLIENT_H_
#define METAPROX_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "server/wire.h"
#include "util/socket.h"
#include "util/status.h"

namespace metaprox::server {

/// Structured outcome of one admin round-trip (Admin()). A wire 'E'
/// reply is a RESULT here, not a transport failure: scripted operators
/// branch on error_code (the stable wire codes) instead of grepping
/// status prose. Transport problems (connection dropped) still surface
/// as a non-OK Status from Admin().
struct AdminResult {
  /// First token of a success reply after "OK " (e.g. "REFRESH"), or the
  /// reply's own leading token for verbs that answer without "OK"
  /// (MODELS, STAT, STATS, HELLO). Empty on an 'E' reply.
  std::string verb;
  /// 0 on success; the wire ErrorCode on an 'E' reply.
  int error_code = 0;
  /// The 'E' reply's message. Empty on success.
  std::string message;
  /// The reply's remaining space-separated tokens after `verb` (e.g. for
  /// "OK REFRESH 2 5 0 1": {"2", "5", "0", "1"}).
  std::vector<std::string> fields;
  /// The full reply line, terminator stripped — what --admin scripts
  /// print, byte-identical to the server's reply.
  std::string raw;

  bool ok() const { return error_code == 0; }
};

class QueryClient {
 public:
  /// Connects to a running server. `host` must be a numeric IPv4 address.
  static util::StatusOr<QueryClient> Connect(const std::string& host,
                                             uint16_t port);

  QueryClient(QueryClient&&) = default;
  QueryClient& operator=(QueryClient&&) = default;
  MX_DISALLOW_COPY_AND_ASSIGN(QueryClient);

  /// Protocol handshake: asks the server to speak `version` and returns
  /// its limits (max_k, default model). Only valid with no queries in
  /// flight (the reply is answered out of band). Optional — see above.
  util::StatusOr<HelloInfo> Hello(uint64_t version = kWireVersion);

  /// Sends one query against the server's default model without waiting
  /// for its response (pipelining). k = 0 asks for the server's default k.
  util::Status SendQuery(NodeId node, size_t k);

  /// Sends one query against the named registry model (protocol v2).
  util::Status SendQuery(const std::string& model, NodeId node, size_t k);

  /// Blocks for the next 'R' response, which answers the oldest
  /// still-unanswered SendQuery() on this connection. An 'E' response
  /// (carrying its wire error code in the message) or a dropped
  /// connection surfaces as a non-OK Status.
  util::StatusOr<RankResponse> ReceiveResponse();

  /// SendQuery + ReceiveResponse. Only valid with no other queries in
  /// flight on this connection.
  util::StatusOr<RankResponse> Rank(NodeId node, size_t k);
  util::StatusOr<RankResponse> Rank(const std::string& model, NodeId node,
                                    size_t k);

  /// Round-trips a PING (liveness / readiness probe). Only valid with no
  /// queries in flight (PONG is answered out of band).
  util::Status Ping();

  /// Sends one raw request line (terminator appended if missing) and
  /// returns the single reply line — the admin path (LOAD/RELOAD/UNLOAD/
  /// LIST/STAT, also STATS). An 'E' reply surfaces as a non-OK Status.
  /// Only valid with no queries in flight.
  util::StatusOr<std::string> Roundtrip(const std::string& request_line);

  /// Roundtrip with a structured result: the admin path for callers that
  /// branch on outcomes (mgps_client --admin, the refresh tests). Unlike
  /// Roundtrip(), a wire 'E' reply returns OK with the code/message in
  /// the AdminResult; only transport failures are a non-OK Status. Only
  /// valid with no queries in flight.
  util::StatusOr<AdminResult> Admin(const std::string& request_line);

 private:
  explicit QueryClient(util::Socket socket);

  // Both heap-held so the reader's pointer to the socket stays valid when
  // the client moves (LineReader is non-owning and non-copyable).
  std::unique_ptr<util::Socket> socket_;
  std::unique_ptr<util::LineReader> reader_;
};

}  // namespace metaprox::server

#endif  // METAPROX_SERVER_CLIENT_H_
