#include "server/query_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/index_maintainer.h"
#include "learning/model_io.h"
#include "util/logging.h"

namespace metaprox::server {

namespace {

/// The listener's epoll tag; connection ids start at 1 and EpollLoop
/// reserves ~0 for Wake.
constexpr uint64_t kListenerTag = 0;

}  // namespace

QueryServer::QueryServer(IndexRegistry* indexes, ModelRegistry* models,
                         ServerOptions options, IndexMaintainer* maintainer)
    : indexes_(indexes),
      registry_(models),
      maintainer_(maintainer),
      options_(std::move(options)) {
  MX_CHECK_MSG(indexes_ != nullptr, "QueryServer needs an index registry");
  MX_CHECK_MSG(registry_ != nullptr, "QueryServer needs a model registry");
  options_.max_batch = std::max<size_t>(1, options_.max_batch);
  options_.default_k = std::max<size_t>(1, options_.default_k);
  options_.max_k = std::max(options_.max_k, options_.default_k);
  options_.max_pending = std::max(options_.max_pending, options_.max_batch);
  options_.max_pipeline = std::max<size_t>(1, options_.max_pipeline);
  options_.max_response_queue_bytes =
      std::max<size_t>(4096, options_.max_response_queue_bytes);
}

QueryServer::~QueryServer() { Stop(); }

util::Status QueryServer::Start() {
  MX_CHECK_MSG(!started_, "QueryServer::Start() called twice");
  // The registries must be paired: every registered model scores against
  // the served index's metagraph axis. A mismatch here means the caller
  // wired a registry built for some other offline phase.
  if (registry_->expected_weights() !=
      indexes_->Get()->index().num_metagraphs()) {
    return util::Status::FailedPrecondition(
        "model registry expects " +
        std::to_string(registry_->expected_weights()) +
        " weights but the served index has " +
        std::to_string(indexes_->Get()->index().num_metagraphs()) +
        " metagraphs");
  }
  if (!IsValidModelName(options_.default_model)) {
    return util::Status::InvalidArgument("invalid default model name: '" +
                                         options_.default_model + "'");
  }
  // v1 lines are answered from the default model, so a server without it
  // would refuse every legacy client — fail loudly now, not per request.
  if (registry_->Get(options_.default_model) == nullptr) {
    return util::Status::FailedPrecondition(
        "default model '" + options_.default_model +
        "' is not in the registry");
  }
  // A C10K connect burst overflows the default backlog of 128 and the
  // kernel silently drops the SYNs; listen deep enough for the connection
  // limit we intend to serve.
  const int backlog = static_cast<int>(std::clamp<size_t>(
      options_.max_connections, 128, 4096));
  auto listener = util::ListenTcpLoopback(options_.port, backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  auto nonblock = util::SetNonBlocking(listener_);
  if (!nonblock.ok()) return nonblock;
  auto port = util::LocalTcpPort(listener_);
  if (!port.ok()) return port.status();
  port_ = *port;

  auto loop = EpollLoop::Create();
  if (!loop.ok()) return loop.status();
  loop_ = std::make_unique<EpollLoop>(std::move(*loop));
  auto added = loop_->Add(listener_.fd(), kListenerTag, /*want_read=*/true,
                          /*want_write=*/false);
  if (!added.ok()) return added;

  const size_t workers = util::ResolveNumThreads(options_.num_threads);
  if (workers > 1) pool_ = std::make_unique<util::ThreadPool>(workers);

  started_ = true;
  reactor_thread_ = std::thread(&QueryServer::ReactorLoop, this);
  batcher_thread_ = std::thread(&QueryServer::BatcherLoop, this);
  if (options_.admin) {
    admin_thread_ = std::thread(&QueryServer::AdminLoop, this);
  }
  return util::Status::Ok();
}

void QueryServer::Stop() {
  if (!started_) return;
  {
    mx::MutexLock lock(queue_mu_);
    draining_.store(true);
  }
  queue_cv_.NotifyAll();
  admin_cv_.NotifyAll();
  loop_->Wake();
  // Join the producers first: once they are gone, every response that
  // will ever exist is in an outbox, and the reactor's "all outboxes
  // empty" check is a final answer.
  if (batcher_thread_.joinable()) batcher_thread_.join();
  if (admin_thread_.joinable()) admin_thread_.join();
  producers_done_.store(true);
  loop_->Wake();
  if (reactor_thread_.joinable()) reactor_thread_.join();
}

ServerStats QueryServer::stats() const {
  mx::MutexLock lock(stats_mu_);
  return stats_;
}

// ---- reactor thread -------------------------------------------------------

void QueryServer::ReactorLoop() {
  using Clock = std::chrono::steady_clock;
  std::vector<EpollLoop::Event> events;
  Clock::time_point drain_deadline{};
  bool drain_deadline_set = false;

  while (true) {
    // While draining the loop polls: producers may still be filling
    // outboxes, and the exit condition below needs re-checking.
    const int timeout_millis = drain_started_ ? 10 : -1;
    auto waited = loop_->Wait(timeout_millis, &events);
    if (!waited.ok()) {
      MX_LOG(Warning) << "reactor wait failed: "
                      << waited.status().ToString();
      break;
    }

    if (draining_.load() && !drain_started_) {
      // Drain, phase 1: stop accepting and stop reading. Everything
      // already accepted into the queue will still be ranked and its
      // responses flushed.
      drain_started_ = true;
      (void)loop_->Del(listener_.fd());
      for (auto& [id, conn] : conns_) UpdateReadInterest(conn);
    }

    for (const EpollLoop::Event& event : events) {
      if (event.tag == EpollLoop::kWakeTag) continue;
      if (event.tag == kListenerTag) {
        if (!drain_started_) AcceptNew();
        continue;
      }
      auto it = conns_.find(event.tag);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      std::shared_ptr<Connection> conn = it->second;
      if (event.error) {
        CloseConnection(conn);
        continue;
      }
      if (event.writable) FlushOutbox(conn);
      if (event.readable && !drain_started_ && conns_.count(conn->id)) {
        HandleReadable(conn);
      }
    }

    SweepDirty();
    if (!drain_started_) ResumeQueueBlocked();

    if (drain_started_ && producers_done_.load()) {
      // Drain, phase 2: the batcher and admin worker have exited, so the
      // outboxes are complete. Leave once they are flushed — or the
      // timeout says the stragglers aren't taking their bytes.
      if (!drain_deadline_set) {
        drain_deadline_set = true;
        drain_deadline = Clock::now() + std::chrono::milliseconds(
                                            options_.drain_timeout_millis);
      }
      bool all_flushed = true;
      for (auto& [id, conn] : conns_) {
        mx::MutexLock lock(conn->out_mu);
        if (conn->outbox.size() > conn->out_off) {
          all_flushed = false;
          break;
        }
      }
      if (all_flushed || Clock::now() >= drain_deadline) break;
    }
  }

  // Teardown: close every socket. EOF is the client's signal that the
  // server is gone; anything unflushed past the drain timeout is lost.
  for (auto& [id, conn] : conns_) {
    {
      mx::MutexLock lock(conn->out_mu);
      conn->closed = true;
    }
    (void)loop_->Del(conn->socket.fd());
    conn->socket.Close();
  }
  conns_.clear();
}

void QueryServer::AcceptNew() {
  while (true) {
    auto accepted = util::AcceptNonBlocking(listener_);
    if (!accepted.ok()) {
      MX_LOG(Warning) << "accept failed: " << accepted.status().ToString();
      return;
    }
    if (!accepted->valid()) return;  // backlog drained

    if (conns_.size() >= options_.max_connections) {
      // Refused on the still-blocking fresh socket: the buffer is empty,
      // one short line cannot block.
      (void)util::SendAll(
          *accepted,
          BuildErrorResponse(ErrorCode::kServerFull, "server full"));
      mx::MutexLock lock(stats_mu_);
      ++stats_.protocol_errors;
      continue;  // socket closes as `accepted` goes out of scope
    }

    // Count BEFORE the connection can be served: a client must never
    // observe its own responses while the counters still miss it.
    {
      mx::MutexLock lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    auto conn = std::make_shared<Connection>();
    conn->id = next_conn_id_++;
    conn->socket = std::move(*accepted);
    (void)util::SetNonBlocking(conn->socket);
    (void)util::SetTcpNoDelay(conn->socket);
    conn->tokens = std::max(1.0, options_.max_queries_per_second);
    conn->tokens_refilled = std::chrono::steady_clock::now();
    auto added = loop_->Add(conn->socket.fd(), conn->id, /*want_read=*/true,
                            /*want_write=*/false);
    if (!added.ok()) {
      MX_LOG(Warning) << "epoll add failed: " << added.ToString();
      continue;
    }
    conns_[conn->id] = conn;
  }
}

void QueryServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[16384];
  while (true) {
    auto chunk = util::RecvSome(conn->socket, buf, sizeof(buf));
    if (!chunk.ok() || chunk->eof) {
      // EOF on the request direction is a full disconnect: responses
      // still pending are forfeited (see docs/WIRE_PROTOCOL.md).
      CloseConnection(conn);
      return;
    }
    if (chunk->would_block) return;
    conn->input.Append({buf, chunk->bytes});
    ProcessInput(conn);
    if (conn->closed) return;
    // Paused (outbox backpressure or queue full): stop pulling bytes off
    // the socket too — TCP pushes back on the client from here.
    if (conn->paused_backpressure || conn->paused_queue_full) return;
  }
}

void QueryServer::ProcessInput(const std::shared_ptr<Connection>& conn) {
  if (drain_started_) return;
  std::string line;
  while (!conn->closed && !conn->paused_backpressure &&
         !conn->paused_queue_full) {
    if (conn->has_stashed) {
      // A query parsed earlier, still waiting for global queue space.
      if (!EnqueuePending(conn, conn->stashed)) {
        conn->paused_queue_full = true;
        queue_blocked_.push_back(conn->id);
        queue_blocked_count_.fetch_add(1);
        UpdateReadInterest(conn);
        return;
      }
      conn->has_stashed = false;
      continue;
    }
    if (!conn->input.TakeLine(&line)) {
      if (conn->input.overflowed()) CloseConnection(conn);
      return;
    }
    Request request;
    if (!ParseRequest(line, &request)) {
      SendError(conn, ErrorCode::kMalformed, "malformed request");
      continue;
    }
    if (!HandleRequest(conn, request)) return;  // stashed + paused
  }
}

bool QueryServer::HandleRequest(const std::shared_ptr<Connection>& conn,
                                const Request& request) {
  switch (request.kind) {
    case Request::Kind::kPing:
      EnqueueResponse(conn, "PONG\n");
      return true;
    case Request::Kind::kStats:
      EnqueueResponse(conn, BuildStatsResponse());
      return true;
    case Request::Kind::kHello:
      // Both wire versions are spoken by this server; a client asking for
      // a NEWER protocol than ours must be refused, not half-served.
      if (request.version > kWireVersion) {
        SendError(conn, ErrorCode::kUnsupportedVersion,
                  "server speaks protocol <= " +
                      std::to_string(kWireVersion));
        return true;
      }
      EnqueueResponse(conn,
                      BuildHelloResponse(request.version, options_.max_k,
                                         options_.default_model));
      return true;
    case Request::Kind::kLoad:
    case Request::Kind::kReload:
    case Request::Kind::kUnload:
    case Request::Kind::kList:
    case Request::Kind::kStat:
    case Request::Kind::kAppendNode:
    case Request::Kind::kAppendEdge:
    case Request::Kind::kRefresh:
    case Request::Kind::kSwapIndex: {
      if (!options_.admin) {
        SendError(conn, ErrorCode::kAdminDisabled,
                  "admin verbs are disabled on this server");
        return true;
      }
      {
        mx::MutexLock lock(stats_mu_);
        ++stats_.admin_commands;
      }
      // Model disk I/O must not stall the event loop: the admin worker
      // runs the verb and posts the reply through the outbox like any
      // other producer.
      {
        mx::MutexLock lock(admin_mu_);
        admin_tasks_.push_back(AdminTask{conn, request});
      }
      admin_cv_.NotifyOne();
      return true;
    }
    case Request::Kind::kQuery:
      break;
  }

  // ---- a query: validate, enforce the per-client limits, enqueue ----
  if (request.k > options_.max_k) {
    // Explicit refusal, never a silent clamp (see ServerOptions::max_k).
    SendError(conn, ErrorCode::kKTooLarge,
              "k " + std::to_string(request.k) + " exceeds server max " +
                  std::to_string(options_.max_k));
    return true;
  }
  // Validate here, not in the batcher: BatchQuery MX_CHECKs its node
  // ids, and a bad remote request must be an 'E' response, not a crash.
  // The registry only ever publishes graphs that grow (Publish refuses
  // shrinks), so a node valid now stays valid for the snapshot the query
  // pins in EnqueuePending.
  if (request.node >= indexes_->Get()->graph().num_nodes()) {
    SendError(conn, ErrorCode::kNodeOutOfRange, "node out of range");
    return true;
  }
  if (conn->in_flight.load(std::memory_order_relaxed) >=
      options_.max_pipeline) {
    {
      mx::MutexLock lock(stats_mu_);
      ++stats_.pipeline_refused;
    }
    SendError(conn, ErrorCode::kPipelineLimit,
              "more than " + std::to_string(options_.max_pipeline) +
                  " queries in flight on this connection");
    return true;
  }
  const bool rate_limited = options_.max_queries_per_second > 0.0;
  if (rate_limited) {
    const auto now = std::chrono::steady_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - conn->tokens_refilled).count();
    const double capacity = std::max(1.0, options_.max_queries_per_second);
    conn->tokens = std::min(
        capacity,
        conn->tokens + elapsed * options_.max_queries_per_second);
    conn->tokens_refilled = now;
    if (conn->tokens < 1.0) {
      {
        mx::MutexLock lock(stats_mu_);
        ++stats_.rate_limited;
      }
      SendError(conn, ErrorCode::kRateLimited,
                "connection exceeded " +
                    std::to_string(options_.max_queries_per_second) +
                    " queries/second");
      return true;
    }
    conn->tokens -= 1.0;
  }

  if (!EnqueuePending(conn, request)) {
    // Global queue full: stash the query and stop reading until the
    // batcher makes room. The token was consumed for a query that hasn't
    // been accepted yet — give it back.
    if (rate_limited) conn->tokens += 1.0;
    conn->stashed = request;
    conn->has_stashed = true;
    conn->paused_queue_full = true;
    queue_blocked_.push_back(conn->id);
    queue_blocked_count_.fetch_add(1);
    UpdateReadInterest(conn);
    return false;
  }
  return true;
}

bool QueryServer::EnqueuePending(const std::shared_ptr<Connection>& conn,
                                 const Request& request) {
  const std::string& name =
      request.model.empty() ? options_.default_model : request.model;
  // The snapshot is pinned NOW: a RELOAD that lands while this query waits
  // in the queue does not change its weights (hot-swaps affect only
  // queries accepted after them).
  std::shared_ptr<const ServableModel> snapshot = registry_->Get(name);
  if (snapshot == nullptr) {
    SendError(conn, ErrorCode::kUnknownModel, "unknown model " + name);
    return true;
  }

  PendingQuery pending;
  pending.conn = conn;
  pending.model = std::move(snapshot);
  // Pinned together with the model: this query ranks on the index
  // generation current NOW, even if a REFRESH publishes while it queues.
  pending.index = indexes_->Get();
  pending.node = request.node;
  pending.k = request.k == 0 ? options_.default_k : request.k;
  pending.deadline =
      options_.request_deadline_micros == 0
          ? std::chrono::steady_clock::time_point::max()
          : std::chrono::steady_clock::now() +
                std::chrono::microseconds(options_.request_deadline_micros);
  {
    mx::MutexLock lock(queue_mu_);
    if (draining_.load()) return true;  // dropped; the drain closes us
    if (queue_.size() >= options_.max_pending) return false;
    queue_.push_back(std::move(pending));
    conn->in_flight.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.NotifyOne();
  return true;
}

bool QueryServer::TrySendLocked(Connection& conn) {
  while (conn.out_off < conn.outbox.size()) {
    auto chunk = util::SendSome(
        conn.socket, std::string_view(conn.outbox).substr(conn.out_off));
    if (!chunk.ok()) return false;
    if (chunk->would_block) break;
    conn.out_off += chunk->bytes;
  }
  if (conn.out_off == conn.outbox.size()) {
    conn.outbox.clear();
    conn.out_off = 0;
  }
  return true;
}

void QueryServer::FlushOutbox(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  bool dead = false;
  bool evict = false;
  size_t backlog = 0;
  {
    mx::MutexLock lock(conn->out_mu);
    dead = !TrySendLocked(*conn);
    if (conn->out_off > (size_t{1} << 16) &&
        conn->out_off * 2 > conn->outbox.size()) {
      conn->outbox.erase(0, conn->out_off);
      conn->out_off = 0;
    }
    backlog = conn->outbox.size() - conn->out_off;
    evict = conn->evict;
  }
  if (dead || evict) {
    // evict: the E kSlowConsumer line got its one best-effort flush
    // above; whatever the socket didn't take is forfeit.
    CloseConnection(conn);
    return;
  }

  bool interest_changed = false;
  const bool want_write = backlog > 0;
  if (want_write != conn->reg_write) {
    conn->reg_write = want_write;
    interest_changed = true;
  }
  const size_t half = options_.max_response_queue_bytes / 2;
  bool resumed = false;
  if (!conn->paused_backpressure && backlog > half) {
    conn->paused_backpressure = true;
    interest_changed = true;
  } else if (conn->paused_backpressure && backlog <= half) {
    conn->paused_backpressure = false;
    interest_changed = true;
    resumed = true;
  }
  if (interest_changed) UpdateReadInterest(conn);
  // Lines buffered while reads were paused won't re-trigger epoll;
  // process them now.
  if (resumed) ProcessInput(conn);
}

void QueryServer::ResumeQueueBlocked() {
  if (queue_blocked_.empty()) return;
  {
    mx::MutexLock lock(queue_mu_);
    if (queue_.size() >= options_.max_pending) return;
  }
  std::vector<uint64_t> blocked;
  blocked.swap(queue_blocked_);
  queue_blocked_count_.store(0);
  for (uint64_t id : blocked) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    std::shared_ptr<Connection> conn = it->second;
    conn->paused_queue_full = false;
    UpdateReadInterest(conn);
    ProcessInput(conn);  // may re-pause, re-adding itself to the list
  }
}

void QueryServer::SweepDirty() {
  // Loop to a fixed point: flushing can resume reads, which can produce
  // new immediate replies (PONG, E) that dirty more connections.
  while (true) {
    std::vector<std::shared_ptr<Connection>> dirty;
    {
      mx::MutexLock lock(dirty_mu_);
      dirty.swap(dirty_);
    }
    if (dirty.empty()) return;
    for (const auto& conn : dirty) {
      conn->dirty.store(false);
      if (conn->closed) continue;
      FlushOutbox(conn);
    }
  }
}

void QueryServer::UpdateReadInterest(
    const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  conn->reg_read = !drain_started_ && !conn->paused_backpressure &&
                   !conn->paused_queue_full;
  (void)loop_->Mod(conn->socket.fd(), conn->id, conn->reg_read,
                   conn->reg_write);
}

void QueryServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conns_.find(conn->id) == conns_.end()) return;  // already closed
  {
    mx::MutexLock lock(conn->out_mu);
    conn->closed = true;
  }
  if (conn->paused_queue_full) {
    auto it = std::find(queue_blocked_.begin(), queue_blocked_.end(),
                        conn->id);
    if (it != queue_blocked_.end()) {
      queue_blocked_.erase(it);
      queue_blocked_count_.fetch_sub(1);
    }
  }
  (void)loop_->Del(conn->socket.fd());
  conn->socket.Close();
  conns_.erase(conn->id);
}

void QueryServer::SendError(const std::shared_ptr<Connection>& conn,
                            ErrorCode code, std::string_view message) {
  {
    mx::MutexLock lock(stats_mu_);
    ++stats_.protocol_errors;
  }
  EnqueueResponse(conn, BuildErrorResponse(code, message));
}

// ---- any thread -----------------------------------------------------------

void QueryServer::EnqueueResponse(const std::shared_ptr<Connection>& conn,
                                  std::string line) {
  bool evicted_now = false;
  {
    mx::MutexLock lock(conn->out_mu);
    if (conn->closed || conn->evict) return;  // response dropped
    size_t backlog = conn->outbox.size() - conn->out_off;
    if (backlog > options_.max_response_queue_bytes) {
      // The backlog crossing the bound may be nothing worse than reactor
      // lag — the batcher can append a burst faster than the event loop
      // gets a turn. Before judging the consumer slow, push bytes into
      // the socket right here: only a socket that won't take them
      // (kernel buffer full because the client is not reading) evicts.
      if (!TrySendLocked(*conn)) {
        conn->evict = true;  // peer reset: the reactor closes us
      }
      backlog = conn->outbox.size() - conn->out_off;
    }
    if (conn->evict) {
      // Send failed above: nothing to append, the sweep reaps the fd.
    } else if (backlog > options_.max_response_queue_bytes) {
      // Slow consumer: the client is not reading fast enough for the
      // traffic it generates. The eviction notice is appended best-effort
      // (the reactor flushes what the socket takes, then closes); the
      // response that crossed the bound is dropped with everything after.
      conn->evict = true;
      conn->outbox += BuildErrorResponse(
          ErrorCode::kSlowConsumer,
          "response backlog exceeded " +
              std::to_string(options_.max_response_queue_bytes) +
              " bytes; closing");
      evicted_now = true;
    } else {
      conn->outbox += line;
    }
  }
  if (evicted_now) {
    mx::MutexLock lock(stats_mu_);
    ++stats_.slow_consumer_evictions;
    ++stats_.protocol_errors;
  }
  MarkDirty(conn);
}

void QueryServer::MarkDirty(const std::shared_ptr<Connection>& conn) {
  if (conn->dirty.exchange(true)) return;  // already on the list
  mx::MutexLock lock(dirty_mu_);
  dirty_.push_back(conn);
}

std::string QueryServer::BuildStatsResponse() {
  const ServerStats s = stats();
  // Left-to-right compatible: fields only ever append (see
  // docs/WIRE_PROTOCOL.md).
  return "STATS " + std::to_string(s.connections_accepted) + ' ' +
         std::to_string(s.queries) + ' ' + std::to_string(s.batches) + ' ' +
         std::to_string(s.largest_batch) + ' ' +
         std::to_string(s.protocol_errors) + ' ' +
         std::to_string(s.windows) + ' ' + std::to_string(s.rows_gathered) +
         ' ' + std::to_string(s.rows_saved_vs_per_model) + ' ' +
         std::to_string(s.window_model_groups) + ' ' +
         std::to_string(s.slow_consumer_evictions) + ' ' +
         std::to_string(s.pipeline_refused) + ' ' +
         std::to_string(s.rate_limited) + ' ' +
         std::to_string(s.deadline_expired) + ' ' +
         std::to_string(s.append_nodes) + ' ' +
         std::to_string(s.append_edges) + ' ' +
         std::to_string(s.index_refreshes) + ' ' +
         std::to_string(s.index_swaps) + '\n';
}

// ---- batcher thread -------------------------------------------------------

void QueryServer::BatcherLoop() {
  // One scoped lock per iteration (RAII, so the thread-safety analysis
  // tracks it): hold queue_mu_ to wait and pop, release it to rank — the
  // engine call must never run under the queue lock.
  while (true) {
    std::vector<PendingQuery> batch;
    {
      mx::MutexLock lock(queue_mu_);
      while (!draining_.load() && queue_.empty()) queue_cv_.Wait(lock);
      if (queue_.empty()) return;  // drained: every accepted query ranked
      // Micro-batching: once at least one query is pending, wait up to
      // the window for the batch to fill. Responses never change with the
      // window (the batched determinism contract) — only throughput does.
      // A drain skips the wait: latency no longer matters, finishing
      // does.
      if (!draining_.load() && options_.window_micros > 0 &&
          queue_.size() < options_.max_batch) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(options_.window_micros);
        while (!draining_.load() && queue_.size() < options_.max_batch) {
          if (queue_cv_.WaitUntil(lock, deadline) ==
              std::cv_status::timeout) {
            break;
          }
        }
      }
      const size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // Connections paused on queue space can move again — tell the
    // reactor before the (possibly long) ranking call.
    if (queue_blocked_count_.load() > 0) loop_->Wake();
    RankAndRespond(std::move(batch));
  }
}

void QueryServer::RankAndRespond(std::vector<PendingQuery> batch) {
  // Deadline pass: a query that waited past its deadline is answered with
  // E kDeadlineExceeded IN ITS FIFO POSITION (the response loop below
  // walks pop order), so per-connection ordering survives overload.
  std::vector<char> expired(batch.size(), 0);
  size_t n_expired = 0;
  if (options_.request_deadline_micros > 0) {
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < batch.size(); ++i) {
      if (now > batch[i].deadline) {
        expired[i] = 1;
        ++n_expired;
      }
    }
  }

  // Shared-window scoring: one BatchQueryMulti per distinct (index
  // snapshot, k) in the window, carrying EVERY model the group mixes —
  // the snapshot gathers the union of the group's touched rows once and
  // scores each row under all its models. Identity keys on the snapshot
  // POINTERS: two queries sharing a model slot provably score under
  // identical weights, and a query that pinned a pre-RELOAD model (or a
  // pre-REFRESH index generation) simply rides along as its own column
  // (or its own group) — determinism per request, whatever the
  // interleaving. With shared_window_scoring off, the legacy schedule
  // (one BatchQuery per (index, model, k) group) ranks the same window
  // to the same bytes, one model at a time.
  struct Group {
    size_t k = 0;
    const IndexSnapshot* index = nullptr;  // kept alive by batch entries
    // Distinct snapshots of this group, first-appearance order; model_of
    // indexes into it, aligned with nodes.
    std::vector<const ServableModel*> models;
    std::vector<NodeId> nodes;
    std::vector<uint32_t> model_of;
    std::vector<QueryResult> results;
  };
  const bool shared = options_.shared_window_scoring;
  std::vector<Group> groups;
  std::vector<std::pair<size_t, size_t>> member_of(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (expired[i]) continue;
    const ServableModel* model = batch[i].model.get();
    const IndexSnapshot* index = batch[i].index.get();
    size_t g = 0;
    while (g < groups.size() &&
           (groups[g].k != batch[i].k || groups[g].index != index ||
            (!shared && groups[g].models[0] != model))) {
      ++g;
    }
    if (g == groups.size()) {
      groups.emplace_back();
      groups.back().k = batch[i].k;
      groups.back().index = index;
      if (!shared) groups.back().models.push_back(model);
    }
    Group& group = groups[g];
    uint32_t m = 0;
    while (m < group.models.size() && group.models[m] != model) ++m;
    if (m == group.models.size()) group.models.push_back(model);
    member_of[i] = {g, group.nodes.size()};
    group.nodes.push_back(batch[i].node);
    group.model_of.push_back(m);
  }

  // Distinct snapshots across the whole window, for the models_per_window
  // counter (same value either schedule).
  size_t window_models = 0;
  for (const Group& group : groups) window_models += group.models.size();
  if (!shared) {
    // Legacy groups split one snapshot across k values; count distinct
    // snapshots window-wide instead so the two schedules report the same
    // mix.
    std::vector<const ServableModel*> distinct;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (expired[i]) continue;
      const ServableModel* model = batch[i].model.get();
      if (std::find(distinct.begin(), distinct.end(), model) ==
          distinct.end()) {
        distinct.push_back(model);
      }
    }
    window_models = distinct.size();
  }

  for (Group& group : groups) {
    // The batcher is the pool/scratch's only user; each call ranks on the
    // group's pinned snapshot (stateless, so sharing one scratch across
    // generations is fine — it is epoch-marked per call).
    BatchMultiStats mstats;
    if (shared) {
      std::vector<std::span<const double>> weights;
      weights.reserve(group.models.size());
      for (const ServableModel* model : group.models) {
        weights.push_back(model->model.weights);
      }
      group.results = group.index->BatchQueryMulti(
          weights, group.nodes, group.model_of, group.k, pool_.get(),
          &batch_scratch_, &mstats);
      std::vector<uint64_t> served(group.models.size(), 0);
      for (uint32_t m : group.model_of) ++served[m];
      for (size_t m = 0; m < group.models.size(); ++m) {
        group.models[m]->CountServed(served[m]);
      }
    } else {
      group.results =
          group.index->BatchQuery(group.models[0]->model, group.nodes,
                                  group.k, pool_.get(), &batch_scratch_);
      group.models[0]->CountServed(group.nodes.size());
    }
    mx::MutexLock lock(stats_mu_);
    ++stats_.batches;
    stats_.largest_batch =
        std::max<uint64_t>(stats_.largest_batch, group.nodes.size());
    stats_.rows_gathered += mstats.rows_gathered;
    stats_.rows_saved_vs_per_model +=
        mstats.rows_per_model - mstats.rows_gathered;
  }

  {
    mx::MutexLock lock(stats_mu_);
    ++stats_.windows;
    stats_.window_model_groups += window_models;
  }

  // Count the batch as served BEFORE the responses go out: a client that
  // reads its last response and immediately asks for stats must see it.
  {
    mx::MutexLock lock(stats_mu_);
    stats_.queries += batch.size() - n_expired;
    stats_.deadline_expired += n_expired;
    stats_.protocol_errors += n_expired;
  }

  // Respond in pop order: the queue is FIFO and this loop is sequential,
  // so each connection sees its responses in the order it sent requests.
  // One Wake covers the whole window.
  for (size_t i = 0; i < batch.size(); ++i) {
    std::string line;
    if (expired[i]) {
      line = BuildErrorResponse(ErrorCode::kDeadlineExceeded,
                                "query waited past the server deadline");
    } else {
      const auto [g, pos] = member_of[i];
      line = BuildQueryResponse(batch[i].node, groups[g].results[pos]);
    }
    EnqueueResponse(batch[i].conn, std::move(line));
    batch[i].conn->in_flight.fetch_sub(1, std::memory_order_relaxed);
  }
  loop_->Wake();
}

// ---- admin worker thread --------------------------------------------------

void QueryServer::AdminLoop() {
  // Same RAII shape as BatcherLoop: hold admin_mu_ to wait and pop,
  // release it for the (possibly disk-bound) verb itself.
  while (true) {
    AdminTask task;
    {
      mx::MutexLock lock(admin_mu_);
      while (!draining_.load() && admin_tasks_.empty()) {
        admin_cv_.Wait(lock);
      }
      // Drained: every accepted admin verb got its reply.
      if (admin_tasks_.empty()) return;
      task = std::move(admin_tasks_.front());
      admin_tasks_.pop_front();
    }
    RunAdminTask(task);
  }
}

void QueryServer::RunAdminTask(const AdminTask& task) {
  const Request& request = task.request;
  auto reply = [&](std::string line) {
    EnqueueResponse(task.conn, std::move(line));
    loop_->Wake();
  };
  auto fail = [&](ErrorCode code, std::string_view message) {
    {
      mx::MutexLock lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    reply(BuildErrorResponse(code, message));
  };

  switch (request.kind) {
    case Request::Kind::kLoad:
    case Request::Kind::kReload: {
      // Disk read + parse happen on this worker, out of band — neither
      // the reactor nor the batcher ever waits on model I/O.
      auto model = LoadModel(request.path, registry_->expected_weights());
      if (!model.ok()) {
        fail(ErrorCode::kModelError, model.status().ToString());
        return;
      }
      auto version = request.kind == Request::Kind::kLoad
                         ? registry_->Load(request.model, std::move(*model))
                         : registry_->Reload(request.model,
                                             std::move(*model));
      if (!version.ok()) {
        fail(ErrorCode::kModelError, version.status().ToString());
        return;
      }
      const char* verb =
          request.kind == Request::Kind::kLoad ? "LOAD" : "RELOAD";
      reply("OK " + std::string(verb) + ' ' + request.model + ' ' +
            std::to_string(*version) + '\n');
      return;
    }
    case Request::Kind::kUnload: {
      if (request.model == options_.default_model) {
        // v1 clients depend on the default slot; removing it would turn
        // every legacy query into an error mid-flight.
        fail(ErrorCode::kModelError, "cannot unload the default model");
        return;
      }
      auto status = registry_->Unload(request.model);
      if (!status.ok()) {
        fail(ErrorCode::kModelError, status.ToString());
        return;
      }
      reply("OK UNLOAD " + request.model + '\n');
      return;
    }
    case Request::Kind::kList: {
      const std::vector<ModelInfo> infos = registry_->List();
      std::string line = "MODELS " + std::to_string(infos.size());
      for (const ModelInfo& info : infos) {
        line += ' ';
        line += info.name;
        line += ' ';
        line += std::to_string(info.version);
        line += ' ';
        line += std::to_string(info.num_weights);
        line += ' ';
        line += std::to_string(info.serves);
      }
      line += '\n';
      reply(std::move(line));
      return;
    }
    case Request::Kind::kStat: {
      auto snapshot = registry_->Get(request.model);
      if (snapshot == nullptr) {
        fail(ErrorCode::kUnknownModel, "unknown model " + request.model);
        return;
      }
      reply("STAT " + snapshot->name + ' ' +
            std::to_string(snapshot->version) + ' ' +
            std::to_string(snapshot->model.weights.size()) + ' ' +
            std::to_string(snapshot->serves_count()) + '\n');
      return;
    }
    case Request::Kind::kAppendNode:
    case Request::Kind::kAppendEdge:
    case Request::Kind::kRefresh: {
      if (maintainer_ == nullptr) {
        fail(ErrorCode::kIndexAdminError,
             "this server has no index maintainer");
        return;
      }
      if (request.kind == Request::Kind::kAppendNode) {
        const NodeId id = maintainer_->AppendNode(request.model);
        {
          mx::MutexLock lock(stats_mu_);
          ++stats_.append_nodes;
        }
        reply("OK APPEND N " + std::to_string(id) + '\n');
        return;
      }
      if (request.kind == Request::Kind::kAppendEdge) {
        auto status = maintainer_->AppendEdge(request.node, request.node2);
        if (!status.ok()) {
          fail(ErrorCode::kBadDelta, status.ToString());
          return;
        }
        {
          mx::MutexLock lock(stats_mu_);
          ++stats_.append_edges;
        }
        reply("OK APPEND E " + std::to_string(request.node) + ' ' +
              std::to_string(request.node2) + '\n');
        return;
      }
      // REFRESH: the incremental re-match runs here on the admin worker —
      // serving never stalls, and the registry flips generations only
      // once the refreshed snapshot is complete.
      RefreshStats rstats;
      auto refreshed = maintainer_->Refresh(&rstats);
      if (!refreshed.ok()) {
        fail(ErrorCode::kIndexAdminError, refreshed.status().ToString());
        return;
      }
      auto published = indexes_->Publish(*refreshed);
      if (!published.ok()) {
        fail(ErrorCode::kIndexAdminError, published.ToString());
        return;
      }
      {
        mx::MutexLock lock(stats_mu_);
        ++stats_.index_refreshes;
      }
      reply("OK REFRESH " + std::to_string((*refreshed)->generation()) +
            ' ' + std::to_string(rstats.affected_metagraphs) + ' ' +
            std::to_string(rstats.appended_nodes) + ' ' +
            std::to_string(rstats.appended_edges) + '\n');
      return;
    }
    case Request::Kind::kSwapIndex: {
      // Hot index swap: publish a precomputed index artifact (e.g. a full
      // offline rebuild) over the live graph and metagraph set. The new
      // generation aliases both — only the vectors change.
      const auto current = indexes_->Get();
      auto index = MetagraphVectorIndex::LoadFromFile(
          request.path + ".index", IndexLoadOptions{});
      if (!index.ok()) {
        fail(ErrorCode::kIndexAdminError, index.status().ToString());
        return;
      }
      if (index->num_metagraphs() != current->index().num_metagraphs()) {
        fail(ErrorCode::kIndexAdminError,
             "artifact has " + std::to_string(index->num_metagraphs()) +
                 " metagraphs; the served index has " +
                 std::to_string(current->index().num_metagraphs()));
        return;
      }
      if (index->num_graph_nodes() != current->graph().num_nodes()) {
        fail(ErrorCode::kIndexAdminError,
             "artifact built over " +
                 std::to_string(index->num_graph_nodes()) +
                 " nodes; the served graph has " +
                 std::to_string(current->graph().num_nodes()));
        return;
      }
      auto snapshot = std::make_shared<const IndexSnapshot>(
          current->shared_graph(), current->shared_metagraphs(),
          std::make_shared<const MetagraphVectorIndex>(std::move(*index)),
          current->generation() + 1);
      auto published = indexes_->Publish(std::move(snapshot));
      if (!published.ok()) {
        fail(ErrorCode::kIndexAdminError, published.ToString());
        return;
      }
      {
        mx::MutexLock lock(stats_mu_);
        ++stats_.index_swaps;
      }
      reply("OK SWAPINDEX " + std::to_string(indexes_->Info().generation) +
            '\n');
      return;
    }
    default:
      MX_CHECK_MSG(false, "non-admin request routed to RunAdminTask");
  }
}

}  // namespace metaprox::server
