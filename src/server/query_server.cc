#include "server/query_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "learning/model_io.h"
#include "util/logging.h"

namespace metaprox::server {

QueryServer::QueryServer(SearchEngine* engine, ModelRegistry* registry,
                         ServerOptions options)
    : engine_(engine), registry_(registry), options_(std::move(options)) {
  MX_CHECK_MSG(engine_ != nullptr, "QueryServer needs an engine");
  MX_CHECK_MSG(registry_ != nullptr, "QueryServer needs a model registry");
  options_.max_batch = std::max<size_t>(1, options_.max_batch);
  options_.default_k = std::max<size_t>(1, options_.default_k);
  options_.max_k = std::max(options_.max_k, options_.default_k);
  options_.max_pending = std::max(options_.max_pending, options_.max_batch);
}

QueryServer::~QueryServer() { Stop(); }

util::Status QueryServer::Start() {
  MX_CHECK_MSG(!started_, "QueryServer::Start() called twice");
  if (!engine_->index().finalized()) {
    return util::Status::FailedPrecondition(
        "QueryServer needs a finalized index (run MatchAll/FinalizeIndex "
        "or LoadOffline first)");
  }
  if (!IsValidModelName(options_.default_model)) {
    return util::Status::InvalidArgument("invalid default model name: '" +
                                         options_.default_model + "'");
  }
  // v1 lines are answered from the default model, so a server without it
  // would refuse every legacy client — fail loudly now, not per request.
  if (registry_->Get(options_.default_model) == nullptr) {
    return util::Status::FailedPrecondition(
        "default model '" + options_.default_model +
        "' is not in the registry");
  }
  auto listener = util::ListenTcpLoopback(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  auto port = util::LocalTcpPort(listener_);
  if (!port.ok()) return port.status();
  port_ = *port;
  started_ = true;
  accept_thread_ = std::thread(&QueryServer::AcceptLoop, this);
  batcher_thread_ = std::thread(&QueryServer::BatcherLoop, this);
  return util::Status::Ok();
}

void QueryServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_.store(true);
  }
  queue_cv_.notify_all();
  backpressure_cv_.notify_all();
  // Shutdown (not Close): unblocks accept()/recv() while the fds stay
  // owned, so no thread can observe a recycled fd number.
  listener_.Shutdown();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : connections_) conn->socket.Shutdown();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (batcher_thread_.joinable()) batcher_thread_.join();
  // The accept thread may have registered one more connection after the
  // first shutdown pass; now that it is joined, no further connections can
  // appear, so this pass is complete.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : connections_) conn->socket.Shutdown();
  }
  std::unordered_map<uint64_t, std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers.swap(readers_);
    finished_readers_.clear();
    connections_.clear();
  }
  for (auto& [id, thread] : readers) {
    if (thread.joinable()) thread.join();
  }
}

ServerStats QueryServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load()) {
    auto accepted = util::AcceptConnection(listener_);
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      MX_LOG(Warning) << "accept failed: " << accepted.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    JoinFinishedReaders();
    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(*accepted);

    bool full = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (connections_.size() >= options_.max_connections) {
        full = true;
      } else {
        // Count BEFORE the reader starts serving: a client must never
        // observe its own responses while the counters still miss it.
        {
          std::lock_guard<std::mutex> stats_lock(stats_mu_);
          ++stats_.connections_accepted;
        }
        conn->id = next_conn_id_++;
        connections_[conn->id] = conn;
        readers_[conn->id] =
            std::thread(&QueryServer::ReaderLoop, this, conn);
      }
    }
    if (full) {
      (void)util::SendAll(
          conn->socket,
          BuildErrorResponse(ErrorCode::kServerFull, "server full"));
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
      // conn closes as it goes out of scope
    }
  }
}

void QueryServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  util::LineReader reader(conn->socket);
  std::string line;
  while (reader.ReadLine(&line)) {
    Request request;
    if (!ParseRequest(line, &request)) {
      SendError(*conn, ErrorCode::kMalformed, "malformed request");
      continue;
    }
    if (!HandleRequest(conn, request)) break;
  }
  // Treat EOF/error as a full disconnect: shut the socket down BEFORE
  // deregistering, so a batcher send blocked (or about to block) on this
  // connection fails fast instead of wedging — once the connection leaves
  // connections_, Stop()'s shutdown passes can no longer reach it. (A
  // peer that half-closes only its sending direction therefore forfeits
  // any responses still queued; see wire.h.)
  conn->socket.Shutdown();
  std::lock_guard<std::mutex> lock(conns_mu_);
  connections_.erase(conn->id);
  finished_readers_.push_back(conn->id);
}

bool QueryServer::HandleRequest(const std::shared_ptr<Connection>& conn,
                                const Request& request) {
  switch (request.kind) {
    case Request::Kind::kPing:
      SendToConnection(*conn, "PONG\n");
      return true;
    case Request::Kind::kStats: {
      const ServerStats s = stats();
      SendToConnection(
          *conn, "STATS " + std::to_string(s.connections_accepted) + ' ' +
                     std::to_string(s.queries) + ' ' +
                     std::to_string(s.batches) + ' ' +
                     std::to_string(s.largest_batch) + ' ' +
                     std::to_string(s.protocol_errors) + ' ' +
                     std::to_string(s.windows) + ' ' +
                     std::to_string(s.rows_gathered) + ' ' +
                     std::to_string(s.rows_saved_vs_per_model) + ' ' +
                     std::to_string(s.window_model_groups) + '\n');
      return true;
    }
    case Request::Kind::kHello:
      // Both wire versions are spoken by this server; a client asking for
      // a NEWER protocol than ours must be refused, not half-served.
      if (request.version > kWireVersion) {
        SendError(*conn, ErrorCode::kUnsupportedVersion,
                  "server speaks protocol <= " +
                      std::to_string(kWireVersion));
        return true;
      }
      SendToConnection(*conn,
                       BuildHelloResponse(request.version, options_.max_k,
                                          options_.default_model));
      return true;
    case Request::Kind::kLoad:
    case Request::Kind::kReload:
    case Request::Kind::kUnload:
    case Request::Kind::kList:
    case Request::Kind::kStat:
      HandleAdmin(*conn, request);
      return true;
    case Request::Kind::kQuery:
      break;
  }

  // ---- a query: validate, resolve the model, enqueue --------------------
  if (request.k > options_.max_k) {
    // Explicit refusal, never a silent clamp (see ServerOptions::max_k).
    SendError(*conn, ErrorCode::kKTooLarge,
              "k " + std::to_string(request.k) + " exceeds server max " +
                  std::to_string(options_.max_k));
    return true;
  }
  // Validate here, not in the batcher: BatchQuery MX_CHECKs its node
  // ids, and a bad remote request must be an 'E' response, not a crash.
  if (request.node >= engine_->graph().num_nodes()) {
    SendError(*conn, ErrorCode::kNodeOutOfRange, "node out of range");
    return true;
  }
  const std::string& name =
      request.model.empty() ? options_.default_model : request.model;
  // The snapshot is pinned NOW: a RELOAD that lands while this query waits
  // in the queue does not change its weights (hot-swaps affect only
  // queries accepted after them).
  std::shared_ptr<const ServableModel> snapshot = registry_->Get(name);
  if (snapshot == nullptr) {
    SendError(*conn, ErrorCode::kUnknownModel, "unknown model " + name);
    return true;
  }

  PendingQuery pending;
  pending.conn = conn;
  pending.model = std::move(snapshot);
  pending.node = request.node;
  pending.k = request.k == 0 ? options_.default_k : request.k;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    backpressure_cv_.wait(lock, [&] {
      return stopping_.load() || queue_.size() < options_.max_pending;
    });
    if (stopping_.load()) return false;
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return true;
}

void QueryServer::HandleAdmin(Connection& conn, const Request& request) {
  if (!options_.admin) {
    SendError(conn, ErrorCode::kAdminDisabled,
              "admin verbs are disabled on this server");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.admin_commands;
  }
  switch (request.kind) {
    case Request::Kind::kLoad:
    case Request::Kind::kReload: {
      // Disk read + parse happen on this reader thread, out of band —
      // serving (the batcher) never waits on model I/O.
      auto model =
          LoadModel(request.path, engine_->index().num_metagraphs());
      if (!model.ok()) {
        SendError(conn, ErrorCode::kModelError, model.status().ToString());
        return;
      }
      auto version = request.kind == Request::Kind::kLoad
                         ? registry_->Load(request.model, std::move(*model))
                         : registry_->Reload(request.model, std::move(*model));
      if (!version.ok()) {
        SendError(conn, ErrorCode::kModelError, version.status().ToString());
        return;
      }
      const char* verb =
          request.kind == Request::Kind::kLoad ? "LOAD" : "RELOAD";
      SendToConnection(conn, "OK " + std::string(verb) + ' ' + request.model +
                                 ' ' + std::to_string(*version) + '\n');
      return;
    }
    case Request::Kind::kUnload: {
      if (request.model == options_.default_model) {
        // v1 clients depend on the default slot; removing it would turn
        // every legacy query into an error mid-flight.
        SendError(conn, ErrorCode::kModelError,
                  "cannot unload the default model");
        return;
      }
      auto status = registry_->Unload(request.model);
      if (!status.ok()) {
        SendError(conn, ErrorCode::kModelError, status.ToString());
        return;
      }
      SendToConnection(conn, "OK UNLOAD " + request.model + '\n');
      return;
    }
    case Request::Kind::kList: {
      const std::vector<ModelInfo> infos = registry_->List();
      std::string line = "MODELS " + std::to_string(infos.size());
      for (const ModelInfo& info : infos) {
        line += ' ';
        line += info.name;
        line += ' ';
        line += std::to_string(info.version);
        line += ' ';
        line += std::to_string(info.num_weights);
        line += ' ';
        line += std::to_string(info.serves);
      }
      line += '\n';
      SendToConnection(conn, line);
      return;
    }
    case Request::Kind::kStat: {
      auto snapshot = registry_->Get(request.model);
      if (snapshot == nullptr) {
        SendError(conn, ErrorCode::kUnknownModel,
                  "unknown model " + request.model);
        return;
      }
      SendToConnection(
          conn, "STAT " + snapshot->name + ' ' +
                    std::to_string(snapshot->version) + ' ' +
                    std::to_string(snapshot->model.weights.size()) + ' ' +
                    std::to_string(snapshot->serves_count()) + '\n');
      return;
    }
    default:
      MX_CHECK_MSG(false, "non-admin request routed to HandleAdmin");
  }
}

void QueryServer::SendError(Connection& conn, ErrorCode code,
                            std::string_view message) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
  }
  SendToConnection(conn, BuildErrorResponse(code, message));
}

void QueryServer::BatcherLoop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  while (true) {
    queue_cv_.wait(lock,
                   [&] { return stopping_.load() || !queue_.empty(); });
    if (stopping_.load()) return;  // pending queries are dropped on Stop()
    // Micro-batching: once at least one query is pending, wait up to the
    // window for the batch to fill. Responses never change with the
    // window (the batched determinism contract) — only throughput does.
    if (options_.window_micros > 0 && queue_.size() < options_.max_batch) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.window_micros);
      queue_cv_.wait_until(lock, deadline, [&] {
        return stopping_.load() || queue_.size() >= options_.max_batch;
      });
      if (stopping_.load()) return;
    }
    const size_t take = std::min(queue_.size(), options_.max_batch);
    std::vector<PendingQuery> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    backpressure_cv_.notify_all();
    RankAndRespond(std::move(batch));
    lock.lock();
  }
}

void QueryServer::RankAndRespond(std::vector<PendingQuery> batch) {
  // Shared-window scoring: one BatchQueryMulti per distinct k in the
  // window, carrying EVERY model the window mixes — the engine gathers
  // the union of the group's touched rows once and scores each row under
  // all its models. Model identity keys on the snapshot POINTER: two
  // queries sharing a model slot provably score under identical weights,
  // and a query that pinned a pre-RELOAD snapshot simply rides along as
  // its own model column — determinism per request, whatever the
  // interleaving. With shared_window_scoring off, the legacy schedule
  // (one BatchQuery per (snapshot, k) group) ranks the same window to the
  // same bytes, one model at a time.
  struct Group {
    size_t k = 0;
    // Distinct snapshots of this group, first-appearance order; model_of
    // indexes into it, aligned with nodes.
    std::vector<const ServableModel*> models;
    std::vector<NodeId> nodes;
    std::vector<uint32_t> model_of;
    std::vector<QueryResult> results;
  };
  const bool shared = options_.shared_window_scoring;
  std::vector<Group> groups;
  std::vector<std::pair<size_t, size_t>> member_of(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const ServableModel* model = batch[i].model.get();
    size_t g = 0;
    while (g < groups.size() &&
           (groups[g].k != batch[i].k ||
            (!shared && groups[g].models[0] != model))) {
      ++g;
    }
    if (g == groups.size()) {
      groups.emplace_back();
      groups.back().k = batch[i].k;
      if (!shared) groups.back().models.push_back(model);
    }
    Group& group = groups[g];
    uint32_t m = 0;
    while (m < group.models.size() && group.models[m] != model) ++m;
    if (m == group.models.size()) group.models.push_back(model);
    member_of[i] = {g, group.nodes.size()};
    group.nodes.push_back(batch[i].node);
    group.model_of.push_back(m);
  }

  // Distinct snapshots across the whole window, for the models_per_window
  // counter (same value either schedule).
  size_t window_models = 0;
  for (const Group& group : groups) window_models += group.models.size();
  if (!shared) {
    // Legacy groups split one snapshot across k values; count distinct
    // snapshots window-wide instead so the two schedules report the same
    // mix.
    std::vector<const ServableModel*> distinct;
    for (const PendingQuery& pending : batch) {
      const ServableModel* model = pending.model.get();
      if (std::find(distinct.begin(), distinct.end(), model) ==
          distinct.end()) {
        distinct.push_back(model);
      }
    }
    window_models = distinct.size();
  }

  for (Group& group : groups) {
    // The batcher is the engine's only non-const user while the server
    // runs, so these calls reuse the engine's ThreadPool and BatchScratch.
    BatchMultiStats mstats;
    if (shared) {
      std::vector<std::span<const double>> weights;
      weights.reserve(group.models.size());
      for (const ServableModel* model : group.models) {
        weights.push_back(model->model.weights);
      }
      group.results = engine_->BatchQueryMulti(weights, group.nodes,
                                               group.model_of, group.k,
                                               &mstats);
      std::vector<uint64_t> served(group.models.size(), 0);
      for (uint32_t m : group.model_of) ++served[m];
      for (size_t m = 0; m < group.models.size(); ++m) {
        group.models[m]->CountServed(served[m]);
      }
    } else {
      group.results =
          engine_->BatchQuery(group.models[0]->model, group.nodes, group.k);
      group.models[0]->CountServed(group.nodes.size());
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches;
    stats_.largest_batch =
        std::max<uint64_t>(stats_.largest_batch, group.nodes.size());
    stats_.rows_gathered += mstats.rows_gathered;
    stats_.rows_saved_vs_per_model +=
        mstats.rows_per_model - mstats.rows_gathered;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.windows;
    stats_.window_model_groups += window_models;
  }

  // Count the batch as served BEFORE the responses go out: a client that
  // reads its last response and immediately asks for stats must see it.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.queries += batch.size();
  }

  // Respond in pop order: the queue is FIFO and this loop is sequential,
  // so each connection sees its responses in the order it sent requests.
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto [g, pos] = member_of[i];
    SendToConnection(*batch[i].conn, BuildQueryResponse(
                                         batch[i].node, groups[g].results[pos]));
  }
}

void QueryServer::SendToConnection(Connection& conn, const std::string& line) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  // A failed send means the client hung up; its reader thread is already
  // tearing the connection down, so there is nothing to do here.
  (void)util::SendAll(conn.socket, line);
}

void QueryServer::JoinFinishedReaders() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (uint64_t id : finished_readers_) {
      auto it = readers_.find(id);
      if (it != readers_.end()) {
        done.push_back(std::move(it->second));
        readers_.erase(it);
      }
    }
    finished_readers_.clear();
  }
  for (std::thread& thread : done) {
    if (thread.joinable()) thread.join();
  }
}

}  // namespace metaprox::server
