#include "index/metagraph_vectors.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "util/macros.h"

namespace metaprox {

SymPairCountingSink::SymPairCountingSink(const SymmetryInfo& sym,
                                         uint64_t embedding_cap)
    : sym_(sym), cap_(embedding_cap) {
  uint8_t seen = 0;
  for (auto [a, b] : sym_.symmetric_pairs) {
    if (!((seen >> a) & 1u)) sym_nodes_.push_back(a);
    if (!((seen >> b) & 1u)) sym_nodes_.push_back(b);
    seen |= static_cast<uint8_t>((1u << a) | (1u << b));
  }
}

bool SymPairCountingSink::OnEmbedding(std::span<const NodeId> embedding) {
  ++num_embeddings_;
  for (auto [a, b] : sym_.symmetric_pairs) {
    ++pair_counts_[PairKey(embedding[a], embedding[b])];
  }
  // Injectivity of embeddings means each graph node occupies exactly one
  // position, so no within-embedding dedup is needed for Eq. 2.
  for (MetaNodeId u : sym_nodes_) ++node_counts_[embedding[u]];
  return num_embeddings_ < cap_;
}

MetagraphVectorIndex::MetagraphVectorIndex(size_t num_metagraphs,
                                           size_t num_graph_nodes,
                                           CountTransform transform)
    : num_metagraphs_(num_metagraphs),
      transform_(transform),
      committed_(num_metagraphs, false),
      node_vectors_(num_graph_nodes) {}

void MetagraphVectorIndex::Commit(uint32_t metagraph_index,
                                  const SymPairCountingSink& sink,
                                  size_t aut_size) {
  MX_CHECK(metagraph_index < num_metagraphs_);
  MX_CHECK_MSG(!committed_[metagraph_index], "metagraph committed twice");
  MX_CHECK(aut_size > 0);
  MX_CHECK(!finalized_);
  committed_[metagraph_index] = true;

  const double inv_aut = 1.0 / static_cast<double>(aut_size);
  for (const auto& [key, count] : sink.pair_counts()) {
    auto [it, inserted] =
        pair_slots_.try_emplace(key, static_cast<uint32_t>(
                                         pair_vectors_.size()));
    if (inserted) pair_vectors_.emplace_back();
    pair_vectors_[it->second].emplace_back(
        metagraph_index, static_cast<float>(count * inv_aut));
  }
  for (const auto& [node, count] : sink.node_counts()) {
    MX_CHECK(node < node_vectors_.size());
    node_vectors_[node].emplace_back(metagraph_index,
                                     static_cast<float>(count * inv_aut));
  }
}

void MetagraphVectorIndex::Finalize() {
  MX_CHECK(!finalized_);
  const size_t n = node_vectors_.size();
  std::vector<uint32_t> degree(n, 0);
  for (const auto& [key, slot] : pair_slots_) {
    ++degree[static_cast<NodeId>(key >> 32)];
    ++degree[static_cast<NodeId>(key & 0xffffffffu)];
  }
  cand_offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) cand_offsets_[i + 1] = cand_offsets_[i] + degree[i];
  candidates_.resize(cand_offsets_[n]);
  std::vector<uint64_t> cursor(cand_offsets_.begin(), cand_offsets_.end() - 1);
  for (const auto& [key, slot] : pair_slots_) {
    NodeId x = static_cast<NodeId>(key >> 32);
    NodeId y = static_cast<NodeId>(key & 0xffffffffu);
    candidates_[cursor[x]++] = y;
    candidates_[cursor[y]++] = x;
  }
  finalized_ = true;
}

double MetagraphVectorIndex::Transform(double raw) const {
  switch (transform_) {
    case CountTransform::kRaw:
      return raw;
    case CountTransform::kLog1p:
      return std::log1p(raw);
  }
  return raw;
}

const MetagraphVectorIndex::SparseVec* MetagraphVectorIndex::FindPairVec(
    NodeId x, NodeId y) const {
  auto it = pair_slots_.find(PairKey(x, y));
  if (it == pair_slots_.end()) return nullptr;
  return &pair_vectors_[it->second];
}

double MetagraphVectorIndex::NodeDot(NodeId x,
                                     std::span<const double> w) const {
  MX_DCHECK(w.size() == num_metagraphs_);
  double dot = 0.0;
  for (const auto& [i, c] : node_vectors_[x]) dot += w[i] * Transform(c);
  return dot;
}

double MetagraphVectorIndex::PairDot(NodeId x, NodeId y,
                                     std::span<const double> w) const {
  const SparseVec* vec = FindPairVec(x, y);
  if (vec == nullptr) return 0.0;
  double dot = 0.0;
  for (const auto& [i, c] : *vec) dot += w[i] * Transform(c);
  return dot;
}

void MetagraphVectorIndex::DenseNodeVector(NodeId x,
                                           std::vector<double>* out) const {
  out->assign(num_metagraphs_, 0.0);
  for (const auto& [i, c] : node_vectors_[x]) (*out)[i] = Transform(c);
}

void MetagraphVectorIndex::DensePairVector(NodeId x, NodeId y,
                                           std::vector<double>* out) const {
  out->assign(num_metagraphs_, 0.0);
  const SparseVec* vec = FindPairVec(x, y);
  if (vec == nullptr) return;
  for (const auto& [i, c] : *vec) (*out)[i] = Transform(c);
}

void MetagraphVectorIndex::SparseNodeVector(
    NodeId x, std::vector<std::pair<uint32_t, double>>* out) const {
  for (const auto& [i, c] : node_vectors_[x]) {
    out->emplace_back(i, Transform(c));
  }
}

void MetagraphVectorIndex::SparsePairVector(
    NodeId x, NodeId y,
    std::vector<std::pair<uint32_t, double>>* out) const {
  const SparseVec* vec = FindPairVec(x, y);
  if (vec == nullptr) return;
  for (const auto& [i, c] : *vec) out->emplace_back(i, Transform(c));
}

std::span<const NodeId> MetagraphVectorIndex::Candidates(NodeId x) const {
  MX_CHECK_MSG(finalized_, "Finalize() must be called before Candidates()");
  return {candidates_.data() + cand_offsets_[x],
          candidates_.data() + cand_offsets_[x + 1]};
}

namespace {
constexpr char kIndexMagic[] = "metaprox-index v1";
}  // namespace

util::Status MetagraphVectorIndex::WriteTo(std::ostream& os) const {
  os << kIndexMagic << '\n';
  os << num_metagraphs_ << ' ' << node_vectors_.size() << ' '
     << static_cast<int>(transform_) << '\n';
  os << "committed";
  for (size_t i = 0; i < num_metagraphs_; ++i) {
    os << ' ' << (committed_[i] ? 1 : 0);
  }
  os << '\n';
  size_t nonempty_nodes = 0;
  for (const auto& vec : node_vectors_) nonempty_nodes += !vec.empty();
  os << "nodes " << nonempty_nodes << '\n';
  for (NodeId v = 0; v < node_vectors_.size(); ++v) {
    const SparseVec& vec = node_vectors_[v];
    if (vec.empty()) continue;
    os << v << ' ' << vec.size();
    for (const auto& [i, c] : vec) os << ' ' << i << ' ' << c;
    os << '\n';
  }
  os << "pairs " << pair_slots_.size() << '\n';
  for (const auto& [key, slot] : pair_slots_) {
    const SparseVec& vec = pair_vectors_[slot];
    os << key << ' ' << vec.size();
    for (const auto& [i, c] : vec) os << ' ' << i << ' ' << c;
    os << '\n';
  }
  if (!os.good()) return util::Status::IoError("index write failed");
  return util::Status::Ok();
}

util::StatusOr<MetagraphVectorIndex> MetagraphVectorIndex::ReadFrom(
    std::istream& is) {
  std::string magic;
  std::getline(is, magic);
  if (magic != kIndexMagic) {
    return util::Status::InvalidArgument("missing metaprox-index v1 header");
  }
  size_t num_metagraphs = 0, num_nodes = 0;
  int transform = 0;
  is >> num_metagraphs >> num_nodes >> transform;
  if (!is || transform < 0 || transform > 1) {
    return util::Status::InvalidArgument("bad index dimensions");
  }
  MetagraphVectorIndex index(num_metagraphs, num_nodes,
                             static_cast<CountTransform>(transform));
  std::string word;
  is >> word;
  if (word != "committed") {
    return util::Status::InvalidArgument("missing committed section");
  }
  for (size_t i = 0; i < num_metagraphs; ++i) {
    int flag = 0;
    is >> flag;
    index.committed_[i] = flag != 0;
  }
  size_t count = 0;
  is >> word >> count;
  if (!is || word != "nodes") {
    return util::Status::InvalidArgument("missing nodes section");
  }
  for (size_t n = 0; n < count; ++n) {
    uint64_t v = 0;
    size_t entries = 0;
    is >> v >> entries;
    if (!is || v >= num_nodes) {
      return util::Status::InvalidArgument("bad node vector row");
    }
    SparseVec vec;
    vec.reserve(entries);
    for (size_t e = 0; e < entries; ++e) {
      uint32_t i = 0;
      float c = 0;
      is >> i >> c;
      if (!is || i >= num_metagraphs) {
        return util::Status::InvalidArgument("bad node vector entry");
      }
      vec.emplace_back(i, c);
    }
    index.node_vectors_[v] = std::move(vec);
  }
  is >> word >> count;
  if (!is || word != "pairs") {
    return util::Status::InvalidArgument("missing pairs section");
  }
  for (size_t n = 0; n < count; ++n) {
    uint64_t key = 0;
    size_t entries = 0;
    is >> key >> entries;
    if (!is) return util::Status::InvalidArgument("bad pair vector row");
    NodeId x = static_cast<NodeId>(key >> 32);
    NodeId y = static_cast<NodeId>(key & 0xffffffffu);
    if (x >= num_nodes || y >= num_nodes) {
      return util::Status::InvalidArgument("pair key out of range");
    }
    SparseVec vec;
    vec.reserve(entries);
    for (size_t e = 0; e < entries; ++e) {
      uint32_t i = 0;
      float c = 0;
      is >> i >> c;
      if (!is || i >= num_metagraphs) {
        return util::Status::InvalidArgument("bad pair vector entry");
      }
      vec.emplace_back(i, c);
    }
    index.pair_slots_.emplace(key,
                              static_cast<uint32_t>(index.pair_vectors_.size()));
    index.pair_vectors_.push_back(std::move(vec));
  }
  index.Finalize();
  return index;
}

}  // namespace metaprox
