#include "index/metagraph_vectors.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <string>

#include "core/score_kernels.h"
#include "util/macros.h"

namespace metaprox {

// row_transform() maps CountTransform onto the kernels enum by value.
static_assert(static_cast<int>(CountTransform::kRaw) ==
                      static_cast<int>(kernels::RowTransform::kRaw) &&
                  static_cast<int>(CountTransform::kLog1p) ==
                      static_cast<int>(kernels::RowTransform::kLog1p),
              "CountTransform and kernels::RowTransform must correspond");

SymPairCountingSink::SymPairCountingSink(const SymmetryInfo& sym,
                                         uint64_t embedding_cap)
    : sym_(sym), cap_(embedding_cap) {
  uint8_t seen = 0;
  for (auto [a, b] : sym_.symmetric_pairs) {
    if (!((seen >> a) & 1u)) sym_nodes_.push_back(a);
    if (!((seen >> b) & 1u)) sym_nodes_.push_back(b);
    seen |= static_cast<uint8_t>((1u << a) | (1u << b));
  }
}

bool SymPairCountingSink::OnEmbedding(std::span<const NodeId> embedding) {
  ++num_embeddings_;
  for (auto [a, b] : sym_.symmetric_pairs) {
    ++pair_counts_[PairKey(embedding[a], embedding[b])];
  }
  // Injectivity of embeddings means each graph node occupies exactly one
  // position, so no within-embedding dedup is needed for Eq. 2.
  for (MetaNodeId u : sym_nodes_) ++node_counts_[embedding[u]];
  return num_embeddings_ < cap_;
}

namespace {

// The one canonical row order: by metagraph index, which is unique within
// a row, so this is a total order. Seal()/SortRow and WriteRow must agree
// on it — it is the order the byte-identical-serialization contract
// compares.
constexpr auto kRowOrder = [](const std::pair<uint32_t, float>& a,
                              const std::pair<uint32_t, float>& b) {
  return a.first < b.first;
};

void SortRow(std::vector<std::pair<uint32_t, float>>& row) {
  if (!std::is_sorted(row.begin(), row.end(), kRowOrder)) {
    std::sort(row.begin(), row.end(), kRowOrder);
  }
}

}  // namespace

MetagraphVectorIndex::MetagraphVectorIndex(size_t num_metagraphs,
                                           size_t num_graph_nodes,
                                           CountTransform transform,
                                           size_t num_shards)
    : num_metagraphs_(num_metagraphs),
      transform_(transform),
      num_shards_(std::clamp<size_t>(num_shards, 1, kMaxShards)),
      committed_(num_metagraphs, 0),
      node_vectors_(num_graph_nodes) {
  shards_.reserve(num_shards_);
  node_stripes_.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    node_stripes_.push_back(std::make_unique<NodeStripe>());
  }
}

void MetagraphVectorIndex::Commit(uint32_t metagraph_index,
                                  const SymPairCountingSink& sink,
                                  size_t aut_size) {
  Commit(metagraph_index, sink.pair_counts(), sink.node_counts(), aut_size);
}

void MetagraphVectorIndex::Commit(
    uint32_t metagraph_index,
    const std::unordered_map<uint64_t, uint64_t>& pair_counts,
    const std::unordered_map<NodeId, uint64_t>& node_counts, size_t aut_size) {
  MX_CHECK(metagraph_index < num_metagraphs_);
  MX_CHECK_MSG(committed_[metagraph_index] == 0, "metagraph committed twice");
  MX_CHECK(aut_size > 0);
  MX_CHECK_MSG(!finalized_, "Commit() after Finalize()");
  committed_[metagraph_index] = 1;

  const double inv_aut = 1.0 / static_cast<double>(aut_size);

  // Bucket the sink's counts by destination shard/stripe first, so each
  // shard mutex is taken once per commit instead of once per entry.
  std::vector<std::vector<std::pair<uint64_t, float>>> pair_buckets(
      num_shards_);
  // lint:allow-unordered-iter — each key appears once per commit, so row
  // contents are order-independent; entry order is erased at Seal/Finalize.
  for (const auto& [key, count] : pair_counts) {
    pair_buckets[ShardOf(key)].emplace_back(
        key, static_cast<float>(count * inv_aut));
  }
  for (size_t s = 0; s < num_shards_; ++s) {
    if (pair_buckets[s].empty()) continue;
    Shard& shard = *shards_[s];
    mx::MutexLock lock(shard.mu);
    for (const auto& [key, value] : pair_buckets[s]) {
      shard.pairs[key].emplace_back(metagraph_index, value);
      shard.dirty.push_back(key);
    }
  }

  std::vector<std::vector<std::pair<NodeId, float>>> node_buckets(num_shards_);
  // lint:allow-unordered-iter — same argument as the pair loop above.
  for (const auto& [node, count] : node_counts) {
    MX_CHECK(node < node_vectors_.size());
    node_buckets[node % num_shards_].emplace_back(
        node, static_cast<float>(count * inv_aut));
  }
  for (size_t s = 0; s < num_shards_; ++s) {
    if (node_buckets[s].empty()) continue;
    NodeStripe& stripe = *node_stripes_[s];
    mx::MutexLock lock(stripe.mu);
    for (const auto& [node, value] : node_buckets[s]) {
      node_vectors_[node].emplace_back(metagraph_index, value);
      stripe.dirty.push_back(node);
    }
  }
}

void MetagraphVectorIndex::Seal() {
  if (finalized_) return;  // finalized rows are already sorted
  // Only rows touched since the last Seal(). The dirty lists carry one
  // entry per (row, metagraph) append, so dedupe first — a hub row
  // touched by m metagraphs would otherwise be re-scanned m times. Seal
  // runs with no concurrent Commits (see the class comment), so each
  // shard/stripe lock is uncontended — taken once per shard on this cold
  // path purely to keep the guarded accesses inside the contract the
  // annotations state.
  auto dedupe = [](auto& dirty) {
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  };
  for (const auto& shard : shards_) {
    mx::MutexLock lock(shard->mu);
    dedupe(shard->dirty);
    for (uint64_t key : shard->dirty) SortRow(shard->pairs[key]);
    shard->dirty.clear();
  }
  for (const auto& stripe : node_stripes_) {
    mx::MutexLock lock(stripe->mu);
    dedupe(stripe->dirty);
    for (NodeId node : stripe->dirty) SortRow(node_vectors_[node]);
    stripe->dirty.clear();
  }
}

void MetagraphVectorIndex::Finalize() {
  MX_CHECK_MSG(!finalized_, "Finalize() called twice");
  // Full sweep, not Seal(): one-time O(index) cost that also covers rows
  // that never went through Commit (ReadFrom's direct row loads). Each
  // shard is drained under its (uncontended — Finalize runs with no
  // concurrent Commits) lock into one flat list, which is then merged in
  // globally sorted key order. The order is a pure function of the
  // committed keys, so the finalized layout is independent of the shard
  // count and of commit interleaving.
  for (SparseVec& row : node_vectors_) SortRow(row);

  std::vector<std::pair<uint64_t, SparseVec>> drained;
  {
    size_t total = 0;
    for (const auto& shard : shards_) {
      mx::MutexLock lock(shard->mu);
      total += shard->pairs.size();
    }
    drained.reserve(total);
  }
  for (const auto& shard : shards_) {
    mx::MutexLock lock(shard->mu);
    // lint:allow-unordered-iter — drain order is erased by the sort below.
    for (auto& [key, row] : shard->pairs) {
      SortRow(row);
      drained.emplace_back(key, std::move(row));
    }
    shard->pairs.clear();
    shard->dirty.clear();
  }
  std::sort(drained.begin(), drained.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  pair_keys_.reserve(drained.size());
  pair_vectors_.reserve(drained.size());
  pair_slots_.reserve(drained.size());
  for (auto& [key, row] : drained) {
    pair_slots_.emplace(key, static_cast<uint32_t>(pair_vectors_.size()));
    pair_keys_.push_back(key);
    pair_vectors_.push_back(std::move(row));
  }
  shards_.clear();
  node_stripes_.clear();

  BuildPostings();
  finalized_ = true;
}

void MetagraphVectorIndex::BuildPostings() {
  // CSR candidate postings, walked in sorted key order (deterministic).
  const size_t n = num_graph_nodes();
  std::vector<uint32_t> degree(n, 0);
  for (uint64_t key : pair_keys_) {
    ++degree[static_cast<NodeId>(key >> 32)];
    ++degree[static_cast<NodeId>(key & 0xffffffffu)];
  }
  cand_offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    cand_offsets_[i + 1] = cand_offsets_[i] + degree[i];
  }
  candidates_.resize(cand_offsets_[n]);
  cand_slots_.resize(cand_offsets_[n]);
  std::vector<uint64_t> cursor(cand_offsets_.begin(), cand_offsets_.end() - 1);
  for (size_t slot = 0; slot < pair_keys_.size(); ++slot) {
    const uint64_t key = pair_keys_[slot];
    NodeId x = static_cast<NodeId>(key >> 32);
    NodeId y = static_cast<NodeId>(key & 0xffffffffu);
    cand_slots_[cursor[x]] = static_cast<uint32_t>(slot);
    candidates_[cursor[x]++] = y;
    cand_slots_[cursor[y]] = static_cast<uint32_t>(slot);
    candidates_[cursor[y]++] = x;
  }
}

MetagraphVectorIndex MetagraphVectorIndex::CloneForRefresh(
    size_t new_num_graph_nodes, std::span<const uint32_t> rematch,
    size_t num_shards) const {
  MX_CHECK_MSG(finalized_, "CloneForRefresh() requires a finalized index");
  MX_CHECK_MSG(new_num_graph_nodes >= num_graph_nodes(),
               "the refresh path only grows graphs");

  std::vector<uint8_t> drop(num_metagraphs_, 0);
  for (uint32_t i : rematch) {
    MX_CHECK(i < num_metagraphs_);
    drop[i] = 1;
  }

  MetagraphVectorIndex out(num_metagraphs_, new_num_graph_nodes, transform_,
                           num_shards);
  out.committed_ = committed_;
  for (uint32_t i : rematch) out.committed_[i] = 0;

  // Seed the surviving entries. Rows (and pair slots) left empty by the
  // filter are dropped — a from-scratch rebuild would never create them.
  // NodeRow/PairRow serve owned and mapped indexes alike, and the source
  // rows are already in canonical (ascending metagraph) order, so the
  // seeded rows need no Seal of their own.
  SparseVec filtered;
  const size_t old_nodes = num_graph_nodes();
  for (NodeId x = 0; x < old_nodes; ++x) {
    filtered.clear();
    for (const auto& entry : NodeRow(x)) {
      if (!drop[entry.first]) filtered.push_back(entry);
    }
    if (!filtered.empty()) out.node_vectors_[x] = filtered;
  }
  for (uint32_t slot = 0; slot < pair_keys_.size(); ++slot) {
    filtered.clear();
    for (const auto& entry : PairRow(slot)) {
      if (!drop[entry.first]) filtered.push_back(entry);
    }
    if (!filtered.empty()) out.AppendPairRow(pair_keys_[slot], filtered);
  }
  return out;
}

size_t MetagraphVectorIndex::num_pairs() const {
  if (finalized_) return pair_keys_.size();
  size_t total = 0;
  for (const auto& shard : shards_) {
    mx::MutexLock lock(shard->mu);
    total += shard->pairs.size();
  }
  return total;
}

double MetagraphVectorIndex::Transform(double raw) const {
  switch (transform_) {
    case CountTransform::kRaw:
      return raw;
    case CountTransform::kLog1p:
      return std::log1p(raw);
  }
  return raw;
}

std::span<const std::pair<uint32_t, float>> MetagraphVectorIndex::FindPairRow(
    NodeId x, NodeId y) const {
  const uint64_t key = PairKey(x, y);
  if (mapped_ != nullptr) {
    // No hash table in mapped mode: binary search the sorted keys.
    auto it = std::lower_bound(pair_keys_.begin(), pair_keys_.end(), key);
    if (it == pair_keys_.end() || *it != key) return {};
    return PairRow(static_cast<uint32_t>(it - pair_keys_.begin()));
  }
  if (finalized_) {
    auto it = pair_slots_.find(key);
    if (it == pair_slots_.end()) return {};
    return pair_vectors_[it->second];
  }
  return ProbeShardRowUnlocked(key);
}

// Unlocked by design — the justification lives on the declaration.
std::span<const std::pair<uint32_t, float>>
MetagraphVectorIndex::ProbeShardRowUnlocked(uint64_t key) const {
  // Pre-Finalize read: consult the owning shard. Callers must not race
  // this with a commit batch (see the class comment).
  const Shard& shard = *shards_[ShardOf(key)];
  auto it = shard.pairs.find(key);
  if (it == shard.pairs.end()) return {};
  return it->second;
}

void MetagraphVectorIndex::AppendPairRow(uint64_t key, SparseVec vec) {
  Shard& shard = *shards_[ShardOf(key)];
  mx::MutexLock lock(shard.mu);
  shard.pairs.emplace(key, std::move(vec));
}

kernels::RowTransform MetagraphVectorIndex::row_transform() const {
  return static_cast<kernels::RowTransform>(transform_);
}

double MetagraphVectorIndex::NodeDot(NodeId x,
                                     std::span<const double> w) const {
  MX_DCHECK(w.size() == num_metagraphs_);
  return kernels::RowDot(NodeRow(x), w, row_transform());
}

double MetagraphVectorIndex::PairDot(NodeId x, NodeId y,
                                     std::span<const double> w) const {
  return kernels::RowDot(FindPairRow(x, y), w, row_transform());
}

void MetagraphVectorIndex::DenseNodeVector(NodeId x,
                                           std::vector<double>* out) const {
  out->assign(num_metagraphs_, 0.0);
  for (const auto& [i, c] : NodeRow(x)) (*out)[i] = Transform(c);
}

void MetagraphVectorIndex::DensePairVector(NodeId x, NodeId y,
                                           std::vector<double>* out) const {
  out->assign(num_metagraphs_, 0.0);
  for (const auto& [i, c] : FindPairRow(x, y)) (*out)[i] = Transform(c);
}

void MetagraphVectorIndex::SparseNodeVector(
    NodeId x, std::vector<std::pair<uint32_t, double>>* out) const {
  for (const auto& [i, c] : NodeRow(x)) {
    out->emplace_back(i, Transform(c));
  }
}

void MetagraphVectorIndex::SparsePairVector(
    NodeId x, NodeId y,
    std::vector<std::pair<uint32_t, double>>* out) const {
  for (const auto& [i, c] : FindPairRow(x, y)) {
    out->emplace_back(i, Transform(c));
  }
}

std::span<const NodeId> MetagraphVectorIndex::Candidates(NodeId x) const {
  MX_CHECK_MSG(finalized_, "Finalize() must be called before Candidates()");
  return {candidates_.data() + cand_offsets_[x],
          candidates_.data() + cand_offsets_[x + 1]};
}

std::span<const uint32_t> MetagraphVectorIndex::CandidateSlots(NodeId x) const {
  MX_CHECK_MSG(finalized_,
               "Finalize() must be called before CandidateSlots()");
  return {cand_slots_.data() + cand_offsets_[x],
          cand_slots_.data() + cand_offsets_[x + 1]};
}

double MetagraphVectorIndex::SlotDot(uint32_t slot,
                                     std::span<const double> w) const {
  return kernels::RowDot(PairRow(slot), w, row_transform());
}

namespace {
constexpr char kIndexMagic[] = "metaprox-index v1";

// 9 significant digits (FLT_DECIMAL_DIG) round-trip every finite float32
// exactly through the stream extraction on read, so the text and binary
// formats of one index load to bitwise-identical counts — and therefore
// bitwise-identical query results.
void WriteCount(std::ostream& os, float c) {
  char buf[32];
  // lint:allow-float-format — pinned v1 text format, round-trip exact.
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(c));
  os << buf;
}

// Writes one sparse row in the canonical kRowOrder; sorts a copy first if
// the caller skipped Seal(), so the serialization is deterministic no
// matter what.
void WriteRow(std::ostream& os,
              std::span<const std::pair<uint32_t, float>> row) {
  if (std::is_sorted(row.begin(), row.end(), kRowOrder)) {
    for (const auto& [i, c] : row) {
      os << ' ' << i << ' ';
      WriteCount(os, c);
    }
    return;
  }
  std::vector<std::pair<uint32_t, float>> sorted(row.begin(), row.end());
  std::sort(sorted.begin(), sorted.end(), kRowOrder);
  for (const auto& [i, c] : sorted) {
    os << ' ' << i << ' ';
    WriteCount(os, c);
  }
}
}  // namespace

util::Status MetagraphVectorIndex::WriteTo(std::ostream& os) const {
  const size_t num_nodes = num_graph_nodes();
  os << kIndexMagic << '\n';
  os << num_metagraphs_ << ' ' << num_nodes << ' '
     << static_cast<int>(transform_) << '\n';
  os << "committed";
  for (size_t i = 0; i < num_metagraphs_; ++i) {
    os << ' ' << (committed_[i] != 0 ? 1 : 0);
  }
  os << '\n';
  size_t nonempty_nodes = 0;
  for (NodeId v = 0; v < num_nodes; ++v) nonempty_nodes += !NodeRow(v).empty();
  os << "nodes " << nonempty_nodes << '\n';
  for (NodeId v = 0; v < num_nodes; ++v) {
    const auto vec = NodeRow(v);
    if (vec.empty()) continue;
    os << v << ' ' << vec.size();
    WriteRow(os, vec);
    os << '\n';
  }
  // Pairs in sorted key order: byte-identical for any thread/shard count.
  std::vector<uint64_t> keys;
  if (finalized_) {
    keys = pair_keys_;
  } else {
    keys.reserve(num_pairs());
    for (const auto& shard : shards_) {
      mx::MutexLock lock(shard->mu);
      // lint:allow-unordered-iter — collection order is erased by the sort.
      for (const auto& [key, row] : shard->pairs) keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
  }
  os << "pairs " << keys.size() << '\n';
  for (uint64_t key : keys) {
    NodeId x = static_cast<NodeId>(key >> 32);
    NodeId y = static_cast<NodeId>(key & 0xffffffffu);
    const auto vec = FindPairRow(x, y);
    os << key << ' ' << vec.size();
    WriteRow(os, vec);
    os << '\n';
  }
  if (!os.good()) return util::Status::IoError("index write failed");
  return util::Status::Ok();
}

util::StatusOr<MetagraphVectorIndex> MetagraphVectorIndex::ReadFrom(
    std::istream& is) {
  // The dimension checks in ReadTextFrom bound every allocation a
  // well-formed-looking file can request, but a hostile one can still
  // claim in-range dimensions vastly larger than memory (text has no
  // section sizes to cross-check against, unlike the binary container);
  // that must surface as a structured error, not an unhandled bad_alloc.
  try {
    return ReadTextFrom(is);
  } catch (const std::bad_alloc&) {
    return util::Status::InvalidArgument(
        "index text artifact dimensions do not fit in memory");
  }
}

util::StatusOr<MetagraphVectorIndex> MetagraphVectorIndex::ReadTextFrom(
    std::istream& is) {
  std::string magic;
  std::getline(is, magic);
  if (magic != kIndexMagic) {
    return util::Status::InvalidArgument("missing metaprox-index v1 header");
  }
  size_t num_metagraphs = 0, num_nodes = 0;
  int transform = 0;
  is >> num_metagraphs >> num_nodes >> transform;
  if (!is || transform < 0 || transform > 1) {
    return util::Status::InvalidArgument("bad index dimensions");
  }
  // Same ceilings as the binary reader: metagraph indices and node ids
  // are 32-bit in memory.
  if (num_metagraphs > 0xffffffffull || num_nodes > 0xffffffffull) {
    return util::Status::InvalidArgument(
        "index text artifact declares out-of-range dimensions");
  }
  MetagraphVectorIndex index(num_metagraphs, num_nodes,
                             static_cast<CountTransform>(transform));
  std::string word;
  is >> word;
  if (word != "committed") {
    return util::Status::InvalidArgument("missing committed section");
  }
  for (size_t i = 0; i < num_metagraphs; ++i) {
    int flag = 0;
    is >> flag;
    index.committed_[i] = flag != 0 ? 1 : 0;
  }
  size_t count = 0;
  is >> word >> count;
  if (!is || word != "nodes") {
    return util::Status::InvalidArgument("missing nodes section");
  }
  for (size_t n = 0; n < count; ++n) {
    uint64_t v = 0;
    size_t entries = 0;
    is >> v >> entries;
    if (!is || v >= num_nodes || entries > num_metagraphs) {
      return util::Status::InvalidArgument("bad node vector row");
    }
    SparseVec vec;
    vec.reserve(entries);
    for (size_t e = 0; e < entries; ++e) {
      uint32_t i = 0;
      float c = 0;
      is >> i >> c;
      if (!is || i >= num_metagraphs) {
        return util::Status::InvalidArgument("bad node vector entry");
      }
      vec.emplace_back(i, c);
    }
    index.node_vectors_[v] = std::move(vec);
  }
  is >> word >> count;
  if (!is || word != "pairs") {
    return util::Status::InvalidArgument("missing pairs section");
  }
  for (size_t n = 0; n < count; ++n) {
    uint64_t key = 0;
    size_t entries = 0;
    is >> key >> entries;
    if (!is || entries > num_metagraphs) {
      return util::Status::InvalidArgument("bad pair vector row");
    }
    NodeId x = static_cast<NodeId>(key >> 32);
    NodeId y = static_cast<NodeId>(key & 0xffffffffu);
    if (x >= num_nodes || y >= num_nodes) {
      return util::Status::InvalidArgument("pair key out of range");
    }
    SparseVec vec;
    vec.reserve(entries);
    for (size_t e = 0; e < entries; ++e) {
      uint32_t i = 0;
      float c = 0;
      is >> i >> c;
      if (!is || i >= num_metagraphs) {
        return util::Status::InvalidArgument("bad pair vector entry");
      }
      vec.emplace_back(i, c);
    }
    index.AppendPairRow(key, std::move(vec));
  }
  index.Finalize();
  return index;
}

}  // namespace metaprox
