// Metagraph vectors (Sect. II, Eq. 1-2) and their sparse index.
//
// For a set of metagraphs M = {M_1, ..., M_|M|}:
//   m_xy[i] = #instances of M_i containing x and y at symmetric positions,
//   m_x[i]  = #instances of M_i containing x at a symmetric position.
//
// Matchers enumerate embeddings; each instance of M_i is hit by exactly
// |Aut(M_i)| embeddings and the "symmetric position" predicates are
// invariant under automorphisms, so we accumulate per-embedding counts and
// divide by |Aut(M_i)| on commit.
//
// Storage is sparse: a pair slot table keyed by (min(x,y), max(x,y)) plus
// per-node postings, which is what makes the online phase (Fig. 3) a pure
// lookup: the candidates for query q are exactly the nodes sharing a pair
// slot with q.
#ifndef METAPROX_INDEX_METAGRAPH_VECTORS_H_
#define METAPROX_INDEX_METAGRAPH_VECTORS_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "matching/instance_sink.h"
#include "metagraph/automorphism.h"
#include "util/macros.h"
#include "util/status.h"

namespace metaprox {

/// Packs an unordered node pair into a 64-bit key, 32 bits per endpoint.
/// The whole sparse pair-slot table (and the serialized index format) rides
/// on this packing; widening NodeId beyond 32 bits for graph-scale work
/// requires moving to a 128-bit or struct key first.
static_assert(std::is_unsigned_v<NodeId> && sizeof(NodeId) * 8 <= 32,
              "PairKey packs two NodeIds into 64 bits; widen the key before "
              "widening NodeId");

inline uint64_t PairKey(NodeId x, NodeId y) {
  if (x > y) std::swap(x, y);
  MX_DCHECK(static_cast<uint64_t>(y) <= 0xffffffffull);
  return (static_cast<uint64_t>(x) << 32) | y;
}

/// Count transform applied when vectors are read (the paper suggests e.g.
/// logarithmic transforms of the raw counts).
enum class CountTransform { kRaw, kLog1p };

/// Accumulates the per-embedding contributions of one metagraph's matching
/// run (to be committed into MetagraphVectorIndex afterwards).
class SymPairCountingSink : public InstanceSink {
 public:
  /// `sym` must outlive the sink. `embedding_cap` bounds the number of
  /// embeddings processed; the run aborts (saturated) beyond it.
  SymPairCountingSink(const SymmetryInfo& sym, uint64_t embedding_cap);

  bool OnEmbedding(std::span<const NodeId> embedding) override;

  const std::unordered_map<uint64_t, uint64_t>& pair_counts() const {
    return pair_counts_;
  }
  const std::unordered_map<NodeId, uint64_t>& node_counts() const {
    return node_counts_;
  }
  uint64_t num_embeddings() const { return num_embeddings_; }
  bool saturated() const { return num_embeddings_ >= cap_; }

 private:
  const SymmetryInfo& sym_;
  uint64_t cap_;
  uint64_t num_embeddings_ = 0;
  std::vector<MetaNodeId> sym_nodes_;  // nodes in >= 1 symmetric pair
  std::unordered_map<uint64_t, uint64_t> pair_counts_;
  std::unordered_map<NodeId, uint64_t> node_counts_;
};

/// The committed, queryable index of metagraph vectors.
class MetagraphVectorIndex {
 public:
  MetagraphVectorIndex(size_t num_metagraphs, size_t num_graph_nodes,
                       CountTransform transform = CountTransform::kLog1p);

  /// Commits one metagraph's accumulated counts, dividing by aut_size.
  void Commit(uint32_t metagraph_index, const SymPairCountingSink& sink,
              size_t aut_size);

  /// Builds per-node postings. Call once after all Commits.
  void Finalize();

  size_t num_metagraphs() const { return num_metagraphs_; }
  size_t num_pairs() const { return pair_vectors_.size(); }
  bool IsCommitted(uint32_t metagraph_index) const {
    return committed_[metagraph_index];
  }

  /// m_x . w (transformed counts).
  double NodeDot(NodeId x, std::span<const double> w) const;

  /// m_xy . w (transformed counts).
  double PairDot(NodeId x, NodeId y, std::span<const double> w) const;

  /// Writes the transformed dense m_x into `out` (resized to |M|, zeroed).
  void DenseNodeVector(NodeId x, std::vector<double>* out) const;

  /// Writes the transformed dense m_xy into `out`.
  void DensePairVector(NodeId x, NodeId y, std::vector<double>* out) const;

  /// Appends (metagraph index, transformed count) entries of m_x to `out`.
  /// Sparse accessor used by the trainer's hot loop.
  void SparseNodeVector(NodeId x,
                        std::vector<std::pair<uint32_t, double>>* out) const;

  /// Appends (metagraph index, transformed count) entries of m_xy to `out`.
  void SparsePairVector(NodeId x, NodeId y,
                        std::vector<std::pair<uint32_t, double>>* out) const;

  /// Nodes that co-occur with x in at least one instance at symmetric
  /// positions — the online candidate set for query x.
  std::span<const NodeId> Candidates(NodeId x) const;

  double Transform(double raw) const;

  /// Serializes the committed vectors (finalized or not) to a text stream.
  /// The postings are rebuilt on load, so only the raw stores are written.
  util::Status WriteTo(std::ostream& os) const;

  /// Reads an index written by WriteTo. The result is finalized.
  static util::StatusOr<MetagraphVectorIndex> ReadFrom(std::istream& is);

 private:
  using SparseVec = std::vector<std::pair<uint32_t, float>>;

  const SparseVec* FindPairVec(NodeId x, NodeId y) const;

  size_t num_metagraphs_;
  CountTransform transform_;
  std::vector<bool> committed_;

  std::unordered_map<uint64_t, uint32_t> pair_slots_;
  std::vector<SparseVec> pair_vectors_;
  std::vector<SparseVec> node_vectors_;  // indexed by NodeId

  // CSR postings: candidates_[cand_offsets_[x] .. cand_offsets_[x+1])
  std::vector<uint64_t> cand_offsets_;
  std::vector<NodeId> candidates_;
  bool finalized_ = false;
};

}  // namespace metaprox

#endif  // METAPROX_INDEX_METAGRAPH_VECTORS_H_
