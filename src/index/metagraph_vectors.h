// Metagraph vectors (Sect. II, Eq. 1-2) and their sparse index.
//
// For a set of metagraphs M = {M_1, ..., M_|M|}:
//   m_xy[i] = #instances of M_i containing x and y at symmetric positions,
//   m_x[i]  = #instances of M_i containing x at a symmetric position.
//
// Matchers enumerate embeddings; each instance of M_i is hit by exactly
// |Aut(M_i)| embeddings and the "symmetric position" predicates are
// invariant under automorphisms, so we accumulate per-embedding counts and
// divide by |Aut(M_i)| on commit.
//
// Storage is sparse: a pair slot table keyed by (min(x,y), max(x,y)) plus
// per-node postings, which is what makes the online phase (Fig. 3) a pure
// lookup: the candidates for query q are exactly the nodes sharing a pair
// slot with q.
//
// Build lifecycle and thread-safety (see also docs/ARCHITECTURE.md):
//
//   MetagraphVectorIndex index(|M|, |V|, transform, num_shards);
//   index.Commit(i, sink_i, aut_i);   // any thread, any order, once per i
//   index.Seal();                     // one thread, after a commit batch
//   ... read accessors (NodeDot, PairDot, Sparse*/Dense*, WriteTo) ...
//   index.Commit(j, ...); index.Seal();   // more batches are fine
//   index.Finalize();                 // exactly once; enables Candidates()
//
// While the index is building, the pair-slot table is split into
// `num_shards` shards by `PairKey % num_shards` and the per-node rows are
// guarded by striped locks, so Commit() is safe to call concurrently from
// many threads — each commit only locks the shards/stripes it touches.
// Seal() then sorts every touched row by metagraph index, which makes the
// observable state deterministic: after Seal(), the index contents depend
// only on WHICH (metagraph, sink) pairs were committed, not on the order or
// interleaving of the Commit() calls, nor on the shard count.
//
// Finalize() merges the shards into one table in globally sorted PairKey
// order and builds the candidate postings. Because the merge order is a
// pure function of the keys, the finalized index — including its WriteTo()
// serialization — is byte-identical for ANY number of committing threads
// and ANY num_shards. Finalize() must be called exactly once; committing
// after Finalize() or finalizing twice aborts (MX_CHECK).
//
// Read accessors are safe from multiple threads as long as no Commit /
// Seal / Finalize runs concurrently; they must not race a commit batch.
#ifndef METAPROX_INDEX_METAGRAPH_VECTORS_H_
#define METAPROX_INDEX_METAGRAPH_VECTORS_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "matching/instance_sink.h"
#include "metagraph/automorphism.h"
#include "util/macros.h"
#include "util/status.h"

namespace metaprox::kernels {
// From core/score_kernels.h (a dependency-free leaf this layer's .cc
// routes its dot products through; forward-declared here to keep the
// header include graph pointing downward).
enum class RowTransform;
}  // namespace metaprox::kernels

namespace metaprox {

/// Packs an unordered node pair into a 64-bit key, 32 bits per endpoint.
/// The whole sparse pair-slot table (and the serialized index format) rides
/// on this packing; widening NodeId beyond 32 bits for graph-scale work
/// requires moving to a 128-bit or struct key first.
static_assert(std::is_unsigned_v<NodeId> && sizeof(NodeId) * 8 <= 32,
              "PairKey packs two NodeIds into 64 bits; widen the key before "
              "widening NodeId");

inline uint64_t PairKey(NodeId x, NodeId y) {
  if (x > y) std::swap(x, y);
  MX_DCHECK(static_cast<uint64_t>(y) <= 0xffffffffull);
  return (static_cast<uint64_t>(x) << 32) | y;
}

/// Count transform applied when vectors are read (the paper suggests e.g.
/// logarithmic transforms of the raw counts).
enum class CountTransform { kRaw, kLog1p };

/// Upper bound on build-time pair-table shards, applied by the index
/// constructor. Guards against nonsense requests (e.g. a huge --shards
/// value) allocating one mutex + hash map per shard until the process
/// dies; contention is flat long before this (cf. util::kMaxThreads).
inline constexpr size_t kMaxShards = 4096;

/// Accumulates the per-embedding contributions of one metagraph's matching
/// run (to be committed into MetagraphVectorIndex afterwards). One sink is
/// private to one matching task; it is not shared across threads.
class SymPairCountingSink : public InstanceSink {
 public:
  /// `sym` must outlive the sink. `embedding_cap` bounds the number of
  /// embeddings processed; the run aborts (saturated) beyond it.
  SymPairCountingSink(const SymmetryInfo& sym, uint64_t embedding_cap);

  bool OnEmbedding(std::span<const NodeId> embedding) override;

  const std::unordered_map<uint64_t, uint64_t>& pair_counts() const {
    return pair_counts_;
  }
  const std::unordered_map<NodeId, uint64_t>& node_counts() const {
    return node_counts_;
  }
  uint64_t num_embeddings() const { return num_embeddings_; }
  bool saturated() const { return num_embeddings_ >= cap_; }

 private:
  const SymmetryInfo& sym_;
  uint64_t cap_;
  uint64_t num_embeddings_ = 0;
  std::vector<MetaNodeId> sym_nodes_;  // nodes in >= 1 symmetric pair
  std::unordered_map<uint64_t, uint64_t> pair_counts_;
  std::unordered_map<NodeId, uint64_t> node_counts_;
};

/// The committed, queryable index of metagraph vectors. See the file
/// comment for the Commit -> Seal -> Finalize lifecycle and the
/// thread-safety / determinism contract.
class MetagraphVectorIndex {
 public:
  /// `num_shards` splits the build-time pair-slot table; it bounds commit
  /// contention but never changes the finalized index (clamped to
  /// [1, kMaxShards]).
  MetagraphVectorIndex(size_t num_metagraphs, size_t num_graph_nodes,
                       CountTransform transform = CountTransform::kLog1p,
                       size_t num_shards = 1);

  /// Commits one metagraph's accumulated counts, dividing by aut_size.
  /// Thread-safe: concurrent Commits of DIFFERENT metagraphs only contend
  /// on the pair shards / node stripes they touch. Each metagraph must be
  /// committed at most once, and never after Finalize() (aborts).
  void Commit(uint32_t metagraph_index, const SymPairCountingSink& sink,
              size_t aut_size);

  /// Sorts every pair/node row touched since the last Seal() by metagraph
  /// index. Call from ONE thread after a batch of (possibly concurrent)
  /// Commits has completed, before reading the index; it erases any trace
  /// of commit-arrival order. Cost is proportional to the batch's rows,
  /// not the whole index, so frequent small batches (dual-stage rounds)
  /// stay cheap.
  void Seal();

  /// Merges the shards in globally sorted PairKey order and builds the
  /// per-node candidate postings. Call exactly once, after all Commits;
  /// a second Finalize() — or any later Commit() — aborts.
  void Finalize();

  size_t num_metagraphs() const { return num_metagraphs_; }
  size_t num_graph_nodes() const { return node_vectors_.size(); }
  size_t num_shards() const { return num_shards_; }
  bool finalized() const { return finalized_; }
  /// Number of distinct (x, y) pair slots committed so far.
  size_t num_pairs() const;
  bool IsCommitted(uint32_t metagraph_index) const {
    return committed_[metagraph_index] != 0;
  }

  /// m_x . w (transformed counts). The batched online path
  /// (core/query_batch.cc) calls this once per node row touched by a
  /// batch, caching the results across queries.
  ///
  /// NodeDot/PairDot/SlotDot all evaluate through the shared score
  /// kernels (core/score_kernels.h) — one canonical accumulation, scalar
  /// or SIMD per runtime dispatch, bitwise-identical either way — so the
  /// per-query, batched and shared-window multi-model paths agree bit for
  /// bit by construction.
  double NodeDot(NodeId x, std::span<const double> w) const;

  /// m_xy . w (transformed counts).
  double PairDot(NodeId x, NodeId y, std::span<const double> w) const;

  /// Writes the transformed dense m_x into `out` (resized to |M|, zeroed).
  void DenseNodeVector(NodeId x, std::vector<double>* out) const;

  /// Writes the transformed dense m_xy into `out`.
  void DensePairVector(NodeId x, NodeId y, std::vector<double>* out) const;

  /// Appends (metagraph index, transformed count) entries of m_x to `out`.
  /// Sparse accessor used by the trainer's hot loop.
  void SparseNodeVector(NodeId x,
                        std::vector<std::pair<uint32_t, double>>* out) const;

  /// Appends (metagraph index, transformed count) entries of m_xy to `out`.
  void SparsePairVector(NodeId x, NodeId y,
                        std::vector<std::pair<uint32_t, double>>* out) const;

  /// Nodes that co-occur with x in at least one instance at symmetric
  /// positions — the online candidate set for query x. Requires Finalize().
  std::span<const NodeId> Candidates(NodeId x) const;

  /// Pair-row slots aligned with Candidates(x): CandidateSlots(x)[i] is the
  /// finalized pair-table slot of the (x, Candidates(x)[i]) row, usable with
  /// SlotDot(). Lets the online path walk a query's pair rows directly with
  /// no per-pair hash probe. Requires Finalize().
  std::span<const uint32_t> CandidateSlots(NodeId x) const;

  /// m_xy . w for the pair row in finalized slot `slot` (as returned by
  /// CandidateSlots). Accumulates in the same row order as PairDot(), so the
  /// result is bitwise-equal to PairDot(x, y, w) of the slot's pair.
  /// Requires Finalize().
  double SlotDot(uint32_t slot, std::span<const double> w) const;

  /// Raw sparse rows — (metagraph index, raw count) entries in canonical
  /// order — for callers that evaluate several weight vectors per row
  /// through the multi-weight score kernels (kernels::RowDotMulti with
  /// transform_kind()). NodeRow(x) is m_x; PairRow(slot) is the finalized
  /// pair row of `slot` (requires Finalize()). Spans are invalidated by
  /// Commit/Seal/Finalize, like every other read.
  std::span<const std::pair<uint32_t, float>> NodeRow(NodeId x) const {
    return node_vectors_[x];
  }
  std::span<const std::pair<uint32_t, float>> PairRow(uint32_t slot) const {
    MX_DCHECK(finalized_ && slot < pair_vectors_.size());
    return pair_vectors_[slot];
  }
  /// This index's transform as the score kernels' enum, for passing index
  /// rows to kernels::RowDot/RowDotMulti directly.
  kernels::RowTransform row_transform() const;

  double Transform(double raw) const;

  /// Serializes the committed vectors (finalized or not) to a text stream.
  /// Pairs are written in sorted PairKey order and rows in metagraph-index
  /// order, so the output is byte-identical for any thread/shard count.
  /// The postings are rebuilt on load, so only the raw stores are written.
  util::Status WriteTo(std::ostream& os) const;

  /// Reads an index written by WriteTo. The result is finalized.
  static util::StatusOr<MetagraphVectorIndex> ReadFrom(std::istream& is);

 private:
  using SparseVec = std::vector<std::pair<uint32_t, float>>;

  /// One build-time shard of the pair-slot table: the pairs whose PairKey
  /// satisfies `key % num_shards_ == shard index`. `dirty` records the
  /// keys appended to since the last Seal() (duplicates allowed).
  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, SparseVec> pairs;  // guarded by mu
    std::vector<uint64_t> dirty;                    // guarded by mu
  };

  /// One stripe of the per-node rows: nodes with `node % num_shards_ ==
  /// stripe index`. Guards node_vectors_ writes and the dirty list.
  struct NodeStripe {
    std::mutex mu;
    std::vector<NodeId> dirty;  // guarded by mu
  };

  size_t ShardOf(uint64_t key) const { return key % num_shards_; }
  const SparseVec* FindPairVec(NodeId x, NodeId y) const;
  void AppendPairRow(uint64_t key, SparseVec vec);  // ReadFrom backdoor

  size_t num_metagraphs_;
  CountTransform transform_;
  size_t num_shards_ = 1;
  // One byte per metagraph (not vector<bool>: concurrent Commits write
  // distinct elements, which is only race-free for distinct objects).
  std::vector<uint8_t> committed_;

  // ---- build-time state (until Finalize) --------------------------------
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<NodeStripe>> node_stripes_;

  // node_vectors_[x] is m_x; rows live here in both phases.
  std::vector<SparseVec> node_vectors_;  // indexed by NodeId

  // ---- finalized state --------------------------------------------------
  std::vector<uint64_t> pair_keys_;  // sorted ascending
  std::unordered_map<uint64_t, uint32_t> pair_slots_;
  std::vector<SparseVec> pair_vectors_;  // indexed in pair_keys_ order

  // CSR postings: candidates_[cand_offsets_[x] .. cand_offsets_[x+1]).
  // cand_slots_ is parallel to candidates_: the pair-table slot of the
  // (x, candidate) row, so the online path can score without hash probes.
  std::vector<uint64_t> cand_offsets_;
  std::vector<NodeId> candidates_;
  std::vector<uint32_t> cand_slots_;
  bool finalized_ = false;
};

}  // namespace metaprox

#endif  // METAPROX_INDEX_METAGRAPH_VECTORS_H_
