// Metagraph vectors (Sect. II, Eq. 1-2) and their sparse index.
//
// For a set of metagraphs M = {M_1, ..., M_|M|}:
//   m_xy[i] = #instances of M_i containing x and y at symmetric positions,
//   m_x[i]  = #instances of M_i containing x at a symmetric position.
//
// Matchers enumerate embeddings; each instance of M_i is hit by exactly
// |Aut(M_i)| embeddings and the "symmetric position" predicates are
// invariant under automorphisms, so we accumulate per-embedding counts and
// divide by |Aut(M_i)| on commit.
//
// Storage is sparse: a pair slot table keyed by (min(x,y), max(x,y)) plus
// per-node postings, which is what makes the online phase (Fig. 3) a pure
// lookup: the candidates for query q are exactly the nodes sharing a pair
// slot with q.
//
// Build lifecycle and thread-safety (see also docs/ARCHITECTURE.md):
//
//   MetagraphVectorIndex index(|M|, |V|, transform, num_shards);
//   index.Commit(i, sink_i, aut_i);   // any thread, any order, once per i
//   index.Seal();                     // one thread, after a commit batch
//   ... read accessors (NodeDot, PairDot, Sparse*/Dense*, WriteTo) ...
//   index.Commit(j, ...); index.Seal();   // more batches are fine
//   index.Finalize();                 // exactly once; enables Candidates()
//
// While the index is building, the pair-slot table is split into
// `num_shards` shards by `PairKey % num_shards` and the per-node rows are
// guarded by striped locks, so Commit() is safe to call concurrently from
// many threads — each commit only locks the shards/stripes it touches.
// Seal() then sorts every touched row by metagraph index, which makes the
// observable state deterministic: after Seal(), the index contents depend
// only on WHICH (metagraph, sink) pairs were committed, not on the order or
// interleaving of the Commit() calls, nor on the shard count.
//
// Finalize() merges the shards into one table in globally sorted PairKey
// order and builds the candidate postings. Because the merge order is a
// pure function of the keys, the finalized index — including its WriteTo()
// serialization — is byte-identical for ANY number of committing threads
// and ANY num_shards. Finalize() must be called exactly once; committing
// after Finalize() or finalizing twice aborts (MX_CHECK).
//
// Read accessors are safe from multiple threads as long as no Commit /
// Seal / Finalize runs concurrently; they must not race a commit batch.
//
// Persistence: the index serializes to the v1 text format (WriteTo /
// ReadFrom, debug/interop path) and to the v2 binary container
// (WriteBinaryTo / ReadBinaryFrom / MapFromFile; byte-level spec in
// docs/ARCHITECTURE.md "Persistence formats"). A binary artifact written
// with the aligned layout can be memory-MAPPED instead of parsed: the
// index then serves its hot row arrays zero-copy out of the page cache.
// A mapped index is finalized and read-only — Commit/Finalize abort on
// it, exactly as they do on a finalized owned index.
#ifndef METAPROX_INDEX_METAGRAPH_VECTORS_H_
#define METAPROX_INDEX_METAGRAPH_VECTORS_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "matching/instance_sink.h"
#include "metagraph/automorphism.h"
#include "util/container.h"
#include "util/macros.h"
#include "util/mmap_file.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace metaprox::kernels {
// From core/score_kernels.h (a dependency-free leaf this layer's .cc
// routes its dot products through; forward-declared here to keep the
// header include graph pointing downward).
enum class RowTransform;
}  // namespace metaprox::kernels

namespace metaprox {

/// Packs an unordered node pair into a 64-bit key, 32 bits per endpoint.
/// The in-memory pair-slot table rides on this packing. Since the v2
/// binary format the packing is a PROCESS-LOCAL detail: artifacts carry
/// each endpoint as its own varint (up to 64 bits), so widening NodeId is
/// an in-memory key change only — existing artifacts stay readable. (The
/// v1 text format wrote the packed key verbatim and so baked the 32-bit
/// limit into files; that coupling is retired with the format bump.)
static_assert(std::is_unsigned_v<NodeId> && sizeof(NodeId) * 8 <= 32,
              "the in-memory PairKey packs two NodeIds into 64 bits; widen "
              "the key before widening NodeId (artifacts are unaffected)");

inline uint64_t PairKey(NodeId x, NodeId y) {
  if (x > y) std::swap(x, y);
  MX_DCHECK(static_cast<uint64_t>(y) <= 0xffffffffull);
  return (static_cast<uint64_t>(x) << 32) | y;
}

/// Count transform applied when vectors are read (the paper suggests e.g.
/// logarithmic transforms of the raw counts).
enum class CountTransform { kRaw, kLog1p };

/// Physical layout of a v2 binary index artifact (both parse back
/// identically; they trade file size against mappability):
///   kCompact — row entries delta/varint-packed and LZW-compressed: the
///     smallest files, for artifact distribution and cold storage. Must be
///     loaded eagerly (ReadBinaryFrom).
///   kAligned — row entries as raw 64-byte-aligned {u32 index, f32 count}
///     arrays: larger, but MapFromFile serves them zero-copy straight out
///     of the page cache (instant start, pages shared across processes).
/// Cold sections (lengths, pair keys, committed bitmap) are packed and
/// compressed in both layouts.
enum class BinaryLayout { kCompact, kAligned };

/// How LoadFromFile materializes a binary artifact.
struct IndexLoadOptions {
  /// Map the file instead of parsing it (aligned-layout artifacts only;
  /// text and compact artifacts fall back to an eager load).
  bool use_mmap = false;
  /// Verify section CRCs — and, for mapped loads, deep-validate the row
  /// entries. Turning this off is the documented trusted-file fast path:
  /// a mapped open then touches no payload pages at all.
  bool verify_checksums = true;
};

/// One bag of knobs for saving and loading offline artifacts, shared by
/// SearchEngine::SaveOffline/LoadOffline, mgps_cli and metaprox_server
/// (replaces the loose ArtifactFormat / BinaryLayout / IndexLoadOptions
/// parameter lists those paths used to take). Save paths read `format` and
/// `layout`; load paths read `use_mmap` and `verify_checksums`.
struct ArtifactOptions {
  util::ArtifactFormat format = util::ArtifactFormat::kText;
  BinaryLayout layout = BinaryLayout::kCompact;
  bool use_mmap = false;
  bool verify_checksums = true;

  IndexLoadOptions load_options() const {
    return IndexLoadOptions{use_mmap, verify_checksums};
  }
};

/// Upper bound on build-time pair-table shards, applied by the index
/// constructor. Guards against nonsense requests (e.g. a huge --shards
/// value) allocating one mutex + hash map per shard until the process
/// dies; contention is flat long before this (cf. util::kMaxThreads).
inline constexpr size_t kMaxShards = 4096;

/// Accumulates the per-embedding contributions of one metagraph's matching
/// run (to be committed into MetagraphVectorIndex afterwards). One sink is
/// private to one matching task; it is not shared across threads.
class SymPairCountingSink : public InstanceSink {
 public:
  /// `sym` must outlive the sink. `embedding_cap` bounds the number of
  /// embeddings processed; the run aborts (saturated) beyond it.
  SymPairCountingSink(const SymmetryInfo& sym, uint64_t embedding_cap);

  bool OnEmbedding(std::span<const NodeId> embedding) override;

  const std::unordered_map<uint64_t, uint64_t>& pair_counts() const {
    return pair_counts_;
  }
  const std::unordered_map<NodeId, uint64_t>& node_counts() const {
    return node_counts_;
  }
  uint64_t num_embeddings() const { return num_embeddings_; }
  bool saturated() const { return num_embeddings_ >= cap_; }

 private:
  const SymmetryInfo& sym_;
  uint64_t cap_;
  uint64_t num_embeddings_ = 0;
  std::vector<MetaNodeId> sym_nodes_;  // nodes in >= 1 symmetric pair
  std::unordered_map<uint64_t, uint64_t> pair_counts_;
  std::unordered_map<NodeId, uint64_t> node_counts_;
};

/// The committed, queryable index of metagraph vectors. See the file
/// comment for the Commit -> Seal -> Finalize lifecycle and the
/// thread-safety / determinism contract.
class MetagraphVectorIndex {
 public:
  /// `num_shards` splits the build-time pair-slot table; it bounds commit
  /// contention but never changes the finalized index (clamped to
  /// [1, kMaxShards]).
  MetagraphVectorIndex(size_t num_metagraphs, size_t num_graph_nodes,
                       CountTransform transform = CountTransform::kLog1p,
                       size_t num_shards = 1);

  /// Commits one metagraph's accumulated counts, dividing by aut_size.
  /// Thread-safe: concurrent Commits of DIFFERENT metagraphs only contend
  /// on the pair shards / node stripes they touch. Each metagraph must be
  /// committed at most once, and never after Finalize() (aborts).
  void Commit(uint32_t metagraph_index, const SymPairCountingSink& sink,
              size_t aut_size);

  /// Raw-count overload of Commit(): same contract, but the counts arrive
  /// as the maps a sink would hold rather than as a sink. This is the
  /// incremental-refresh entry point — the maintainer merges a ledger of
  /// old raw counts with a delta run's counts (plain uint64 addition) and
  /// commits the sum, which makes the committed float rows bitwise-equal
  /// to a from-scratch re-match delivering the same totals.
  void Commit(uint32_t metagraph_index,
              const std::unordered_map<uint64_t, uint64_t>& pair_counts,
              const std::unordered_map<NodeId, uint64_t>& node_counts,
              size_t aut_size);

  /// Sorts every pair/node row touched since the last Seal() by metagraph
  /// index. Call from ONE thread after a batch of (possibly concurrent)
  /// Commits has completed, before reading the index; it erases any trace
  /// of commit-arrival order. Cost is proportional to the batch's rows,
  /// not the whole index, so frequent small batches (dual-stage rounds)
  /// stay cheap.
  void Seal();

  /// Merges the shards in globally sorted PairKey order and builds the
  /// per-node candidate postings. Call exactly once, after all Commits;
  /// a second Finalize() — or any later Commit() — aborts.
  void Finalize();

  /// The incremental-refresh seed: a fresh BUILD-state index over
  /// `new_num_graph_nodes` (>= the current node count) carrying every row
  /// entry of this finalized (owned or mapped) index EXCEPT those of the
  /// metagraphs in `rematch`, which return to uncommitted so they can be
  /// Commit()ed again against the grown graph. Rows left empty by the
  /// filter are dropped entirely, so after the re-matched metagraphs are
  /// committed and the clone is Sealed + Finalized its contents — and its
  /// serialization — are byte-identical to a from-scratch rebuild that
  /// committed every metagraph against the new graph (unaffected
  /// metagraphs gain no instances from appended nodes/edges, so their old
  /// rows are exactly what a rebuild recomputes). This is the one place
  /// the one-commit-per-metagraph contract relaxes: a metagraph may be
  /// re-committed, but only through a clone that first dropped its rows.
  MetagraphVectorIndex CloneForRefresh(size_t new_num_graph_nodes,
                                       std::span<const uint32_t> rematch,
                                       size_t num_shards) const;

  size_t num_metagraphs() const { return num_metagraphs_; }
  size_t num_graph_nodes() const {
    return mapped_ != nullptr ? mapped_->num_nodes : node_vectors_.size();
  }
  size_t num_shards() const { return num_shards_; }
  CountTransform transform() const { return transform_; }
  bool finalized() const { return finalized_; }
  /// True when the row arrays are served zero-copy from a mapped artifact
  /// (MapFromFile). A mapped index is always finalized.
  bool is_mapped() const { return mapped_ != nullptr; }
  /// Number of distinct (x, y) pair slots committed so far.
  size_t num_pairs() const;
  bool IsCommitted(uint32_t metagraph_index) const {
    return committed_[metagraph_index] != 0;
  }

  /// m_x . w (transformed counts). The batched online path
  /// (core/query_batch.cc) calls this once per node row touched by a
  /// batch, caching the results across queries.
  ///
  /// NodeDot/PairDot/SlotDot all evaluate through the shared score
  /// kernels (core/score_kernels.h) — one canonical accumulation, scalar
  /// or SIMD per runtime dispatch, bitwise-identical either way — so the
  /// per-query, batched and shared-window multi-model paths agree bit for
  /// bit by construction.
  double NodeDot(NodeId x, std::span<const double> w) const;

  /// m_xy . w (transformed counts).
  double PairDot(NodeId x, NodeId y, std::span<const double> w) const;

  /// Writes the transformed dense m_x into `out` (resized to |M|, zeroed).
  void DenseNodeVector(NodeId x, std::vector<double>* out) const;

  /// Writes the transformed dense m_xy into `out`.
  void DensePairVector(NodeId x, NodeId y, std::vector<double>* out) const;

  /// Appends (metagraph index, transformed count) entries of m_x to `out`.
  /// Sparse accessor used by the trainer's hot loop.
  void SparseNodeVector(NodeId x,
                        std::vector<std::pair<uint32_t, double>>* out) const;

  /// Appends (metagraph index, transformed count) entries of m_xy to `out`.
  void SparsePairVector(NodeId x, NodeId y,
                        std::vector<std::pair<uint32_t, double>>* out) const;

  /// Nodes that co-occur with x in at least one instance at symmetric
  /// positions — the online candidate set for query x. Requires Finalize().
  std::span<const NodeId> Candidates(NodeId x) const;

  /// Pair-row slots aligned with Candidates(x): CandidateSlots(x)[i] is the
  /// finalized pair-table slot of the (x, Candidates(x)[i]) row, usable with
  /// SlotDot(). Lets the online path walk a query's pair rows directly with
  /// no per-pair hash probe. Requires Finalize().
  std::span<const uint32_t> CandidateSlots(NodeId x) const;

  /// m_xy . w for the pair row in finalized slot `slot` (as returned by
  /// CandidateSlots). Accumulates in the same row order as PairDot(), so the
  /// result is bitwise-equal to PairDot(x, y, w) of the slot's pair.
  /// Requires Finalize().
  double SlotDot(uint32_t slot, std::span<const double> w) const;

  /// Raw sparse rows — (metagraph index, raw count) entries in canonical
  /// order — for callers that evaluate several weight vectors per row
  /// through the multi-weight score kernels (kernels::RowDotMulti with
  /// transform_kind()). NodeRow(x) is m_x; PairRow(slot) is the finalized
  /// pair row of `slot` (requires Finalize()). Spans are invalidated by
  /// Commit/Seal/Finalize, like every other read.
  std::span<const std::pair<uint32_t, float>> NodeRow(NodeId x) const {
    if (mapped_ != nullptr) {
      const std::vector<uint64_t>& off = mapped_->node_offsets;
      return mapped_->node_entries.subspan(off[x], off[x + 1] - off[x]);
    }
    return node_vectors_[x];
  }
  std::span<const std::pair<uint32_t, float>> PairRow(uint32_t slot) const {
    MX_DCHECK(finalized_ && slot < pair_keys_.size());
    if (mapped_ != nullptr) {
      const std::vector<uint64_t>& off = mapped_->pair_offsets;
      return mapped_->pair_entries.subspan(off[slot], off[slot + 1] - off[slot]);
    }
    return pair_vectors_[slot];
  }
  /// This index's transform as the score kernels' enum, for passing index
  /// rows to kernels::RowDot/RowDotMulti directly.
  kernels::RowTransform row_transform() const;

  double Transform(double raw) const;

  /// Serializes the committed vectors (finalized or not) to a text stream.
  /// Pairs are written in sorted PairKey order and rows in metagraph-index
  /// order, so the output is byte-identical for any thread/shard count.
  /// Counts are printed with 9 significant digits, which round-trips every
  /// finite float32 exactly — text and binary loads of the same index give
  /// bitwise-identical query results. The postings are rebuilt on load, so
  /// only the raw stores are written.
  util::Status WriteTo(std::ostream& os) const;

  /// Reads an index written by WriteTo. The result is finalized.
  static util::StatusOr<MetagraphVectorIndex> ReadFrom(std::istream& is);

  /// Serializes to the v2 binary container (open `os` in binary mode).
  /// Like WriteTo, works finalized or not and is byte-deterministic: the
  /// same committed contents produce the same bytes for any thread/shard
  /// count — the property the golden-file test pins.
  util::Status WriteBinaryTo(
      std::ostream& os, BinaryLayout layout = BinaryLayout::kCompact) const;

  /// Parses a v2 binary artifact (either layout) into a fully owned,
  /// finalized index. Every structural invariant is checked and every
  /// section CRC verified; any corruption or truncation is a structured
  /// error, never a crash.
  static util::StatusOr<MetagraphVectorIndex> ReadBinaryFrom(
      std::span<const uint8_t> bytes);

  /// Maps an aligned-layout v2 artifact read-only and serves its row
  /// arrays zero-copy (cold sections — lengths, keys, bitmap — are still
  /// decoded eagerly; the candidate postings are rebuilt). Compact-layout
  /// artifacts are refused with a pointer at ReadBinaryFrom.
  static util::StatusOr<MetagraphVectorIndex> MapFromFile(
      const std::string& path, const IndexLoadOptions& options = {});

  /// Loads `path` whatever its format: binary containers are detected by
  /// magic and read via ReadBinaryFrom / MapFromFile per `options`; other
  /// files take the v1 text path.
  static util::StatusOr<MetagraphVectorIndex> LoadFromFile(
      const std::string& path, const IndexLoadOptions& options = {});

 private:
  using SparseVec = std::vector<std::pair<uint32_t, float>>;

  /// One build-time shard of the pair-slot table: the pairs whose PairKey
  /// satisfies `key % num_shards_ == shard index`. `dirty` records the
  /// keys appended to since the last Seal() (duplicates allowed).
  struct Shard {
    mutable mx::Mutex mu;
    std::unordered_map<uint64_t, SparseVec> pairs MX_GUARDED_BY(mu);
    std::vector<uint64_t> dirty MX_GUARDED_BY(mu);
  };

  /// One stripe of the per-node rows: nodes with `node % num_shards_ ==
  /// stripe index`. Guards node_vectors_ writes and the dirty list.
  /// (node_vectors_ itself cannot carry a MX_GUARDED_BY: its guard is a
  /// striped SET of mutexes, one per `node % num_shards_` class, which
  /// the annotation language cannot express — the write-side contract is
  /// enforced by construction in Commit() and documented in
  /// docs/STATIC_ANALYSIS.md.)
  struct NodeStripe {
    mutable mx::Mutex mu;
    std::vector<NodeId> dirty MX_GUARDED_BY(mu);
  };

  /// Zero-copy backing of a mapped artifact: the container file plus spans
  /// into its raw entries sections, and the (small, decoded) row-offset
  /// tables that delimit rows within them. The shared_ptr pins the mapping
  /// for as long as any returned row span may be dereferenced.
  struct MappedStore {
    std::shared_ptr<util::MmapFile> file;
    std::span<const std::pair<uint32_t, float>> node_entries;
    std::span<const std::pair<uint32_t, float>> pair_entries;
    std::vector<uint64_t> node_offsets;  // num_nodes + 1 prefix sums
    std::vector<uint64_t> pair_offsets;  // num_pairs + 1 prefix sums
    size_t num_nodes = 0;
  };

  /// The v1 text parser behind ReadFrom, which wraps it in the
  /// allocation-failure guard (a text file can claim dimensions no
  /// section size bounds, unlike the binary container).
  static util::StatusOr<MetagraphVectorIndex> ReadTextFrom(std::istream& is);

  size_t ShardOf(uint64_t key) const { return key % num_shards_; }
  /// The (x, y) pair row, or an empty span when the pair has no slot. In
  /// mapped mode the lookup is a binary search over the sorted pair keys
  /// (no hash table is materialized for a mapped artifact).
  std::span<const std::pair<uint32_t, float>> FindPairRow(NodeId x,
                                                          NodeId y) const;
  /// The pre-Finalize branch of FindPairRow: probes the owning shard's
  /// table WITHOUT its lock. Escape hatch 1 of <=3 (see
  /// docs/STATIC_ANALYSIS.md): this probe is the dual-stage trainer's hot
  /// loop — SparsePairVector/PairDot against a Sealed-but-not-Finalized
  /// index, one call per scored pair — and the class contract already
  /// phase-separates reads from commit batches ("read accessors must not
  /// race a commit batch"), so a per-call shard lock would add cost to
  /// the training inner loop without excluding any legal schedule.
  std::span<const std::pair<uint32_t, float>> ProbeShardRowUnlocked(
      uint64_t key) const MX_NO_THREAD_SAFETY_ANALYSIS;
  void AppendPairRow(uint64_t key, SparseVec vec);  // binary/text read backdoor
  /// Builds the CSR candidate postings from the (already sorted) pair
  /// keys. The tail of Finalize(), shared with the mapped-load path.
  void BuildPostings();

  size_t num_metagraphs_;
  CountTransform transform_;
  size_t num_shards_ = 1;
  // One byte per metagraph (not vector<bool>: concurrent Commits write
  // distinct elements, which is only race-free for distinct objects).
  std::vector<uint8_t> committed_;

  // ---- build-time state (until Finalize) --------------------------------
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<NodeStripe>> node_stripes_;

  // node_vectors_[x] is m_x; rows live here in both phases.
  std::vector<SparseVec> node_vectors_;  // indexed by NodeId

  // ---- finalized state --------------------------------------------------
  std::vector<uint64_t> pair_keys_;  // sorted ascending
  std::unordered_map<uint64_t, uint32_t> pair_slots_;
  std::vector<SparseVec> pair_vectors_;  // indexed in pair_keys_ order

  // CSR postings: candidates_[cand_offsets_[x] .. cand_offsets_[x+1]).
  // cand_slots_ is parallel to candidates_: the pair-table slot of the
  // (x, candidate) row, so the online path can score without hash probes.
  std::vector<uint64_t> cand_offsets_;
  std::vector<NodeId> candidates_;
  std::vector<uint32_t> cand_slots_;
  bool finalized_ = false;

  // Set only by MapFromFile; see MappedStore. When set, node_vectors_,
  // pair_vectors_ and pair_slots_ stay empty and the row accessors serve
  // spans into the mapping instead.
  std::unique_ptr<MappedStore> mapped_;
};

}  // namespace metaprox

#endif  // METAPROX_INDEX_METAGRAPH_VECTORS_H_
