// The v2 binary persistence of MetagraphVectorIndex: writer for both
// layouts (compact / aligned), the eager reader, and the zero-copy mapped
// loader. Byte-level spec in docs/ARCHITECTURE.md "Persistence formats".
//
// Wire contract highlights:
//   * Deterministic: the same committed contents serialize to the same
//     bytes for any thread/shard count (rows in canonical order, pairs in
//     sorted key order, LZW is a pure function of its input).
//   * Key-width clean: pair endpoints travel as individual varints, so
//     the format does not inherit the in-memory 64-bit PairKey packing.
//   * Candidate postings are NOT stored — they are a pure function of the
//     pair keys and are rebuilt on load (BuildPostings), keeping files
//     small without costing determinism.
//   * Hostile-input safe: every decode is bounds-checked and every
//     structural invariant (strictly increasing row indices, strictly
//     increasing pair keys, section sizes consistent with the declared
//     dimensions) is validated, returning a structured Status — the
//     corruption battery in tests/binary_format_test.cc holds this file
//     to "never crash, never silently mis-answer".
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "index/metagraph_vectors.h"
#include "util/binary_io.h"
#include "util/container.h"
#include "util/macros.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace metaprox {
namespace {

// Section ids of a kIndexArtifact container, in file order.
constexpr uint32_t kSecMeta = 1;         // dims + transform
constexpr uint32_t kSecCommitted = 2;    // metagraph bitmap
constexpr uint32_t kSecNodeLens = 3;     // per-node row lengths, varint
constexpr uint32_t kSecNodeEntries = 4;  // concatenated node rows (hot)
constexpr uint32_t kSecPairKeys = 5;     // sorted pair keys, delta/varint
constexpr uint32_t kSecPairLens = 6;     // per-pair row lengths, varint
constexpr uint32_t kSecPairEntries = 7;  // concatenated pair rows (hot)

constexpr size_t kMetaSize = 24;

using Entry = std::pair<uint32_t, float>;
using Row = std::span<const Entry>;
// Raw (aligned-layout) entry sections are reinterpreted in place when
// mapped; the wire layout IS the in-memory layout (same precondition the
// SIMD kernels assert in core/score_kernels.h).
static_assert(sizeof(Entry) == 8 && alignof(Entry) == 4 &&
                  std::is_trivially_destructible_v<Entry>,
              "raw entry sections memcpy/map {u32 index, f32 count} pairs");

constexpr auto kRowOrder = [](const Entry& a, const Entry& b) {
  return a.first < b.first;
};

// Rows serialize in canonical metagraph-index order even if the caller
// skipped Seal() — mirrors the text writer's sort-a-copy fallback.
Row Canonical(Row row, std::vector<Entry>* scratch) {
  if (std::is_sorted(row.begin(), row.end(), kRowOrder)) return row;
  scratch->assign(row.begin(), row.end());
  std::sort(scratch->begin(), scratch->end(), kRowOrder);
  return *scratch;
}

// One row onto the wire. Packed: per entry a varint index delta (first
// entry: the index itself; later: index - prev - 1, exploiting the strict
// increase) followed by the raw float32 bits. Raw: the entries verbatim.
void AppendRow(std::string* out, Row row, bool packed) {
  if (!packed) {
    out->append(reinterpret_cast<const char*>(row.data()),
                row.size() * sizeof(Entry));
    return;
  }
  uint32_t prev = 0;
  bool first = true;
  for (const auto& [i, c] : row) {
    util::AppendVarint(out, first ? uint64_t{i} : uint64_t{i} - prev - 1);
    util::AppendScalar<float>(out, c);
    prev = i;
    first = false;
  }
}

// Decodes one concatenated entries section (either encoding), validating
// the strict index increase and index < num_metagraphs per row, and that
// the section holds exactly the bytes the row lengths imply. Emits each
// row as `emit(row_number, row)` — including empty rows.
template <typename Emit>
util::Status DecodeEntrySection(std::span<const uint8_t> bytes, bool packed,
                                const std::vector<uint64_t>& lens,
                                uint64_t num_metagraphs, const char* what,
                                Emit&& emit) {
  size_t pos = 0;
  std::vector<Entry> row;
  for (size_t r = 0; r < lens.size(); ++r) {
    row.clear();
    row.reserve(lens[r]);
    uint64_t prev = 0;
    for (uint64_t e = 0; e < lens[r]; ++e) {
      uint64_t idx = 0;
      float c = 0;
      if (packed) {
        uint64_t delta = 0;
        if (!util::ReadVarint(bytes, &pos, &delta) ||
            !util::ReadScalar<float>(bytes, &pos, &c)) {
          return util::Status::InvalidArgument(std::string(what) +
                                               " section truncated");
        }
        // delta < num_metagraphs for any valid row, so prev + delta + 1
        // cannot wrap (both < 2^32).
        if (delta >= num_metagraphs) {
          return util::Status::InvalidArgument(std::string(what) +
                                               " entry index out of range");
        }
        idx = e == 0 ? delta : prev + delta + 1;
      } else {
        uint32_t i32 = 0;
        if (!util::ReadScalar<uint32_t>(bytes, &pos, &i32) ||
            !util::ReadScalar<float>(bytes, &pos, &c)) {
          return util::Status::InvalidArgument(std::string(what) +
                                               " section truncated");
        }
        idx = i32;
        if (e > 0 && idx <= prev) {
          return util::Status::InvalidArgument(
              std::string(what) + " row not strictly increasing");
        }
      }
      if (idx >= num_metagraphs) {
        return util::Status::InvalidArgument(std::string(what) +
                                             " entry index out of range");
      }
      prev = idx;
      row.emplace_back(static_cast<uint32_t>(idx), c);
    }
    emit(r, row);
  }
  if (pos != bytes.size()) {
    return util::Status::InvalidArgument(std::string(what) +
                                         " section has trailing bytes");
  }
  return util::Status::Ok();
}

// Everything a loader decodes eagerly regardless of mode: dimensions, the
// committed bitmap, both row-length tables and the sorted pair keys. All
// dimension-sized allocations are bounded by the (validated) section
// sizes first, so a corrupt META cannot drive a huge allocation.
struct ColdSections {
  uint64_t num_metagraphs = 0;
  uint64_t num_nodes = 0;
  CountTransform transform = CountTransform::kRaw;
  std::vector<uint8_t> committed;    // one 0/1 byte per metagraph
  std::vector<uint64_t> node_lens;   // num_nodes values
  std::vector<uint64_t> pair_keys;   // sorted, packed (x << 32 | y)
  std::vector<uint64_t> pair_lens;   // pair_keys.size() values
};

util::StatusOr<std::vector<uint64_t>> DecodeLens(
    std::span<const uint8_t> bytes, uint64_t count, uint64_t max_len,
    const char* what) {
  // Each length takes >= 1 byte, so a count beyond the section size is
  // structurally impossible — checked before the allocation it would size.
  if (count > bytes.size()) {
    return util::Status::InvalidArgument(std::string(what) +
                                         " section too small for its count");
  }
  std::vector<uint64_t> lens(count);
  size_t pos = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (!util::ReadVarint(bytes, &pos, &lens[i])) {
      return util::Status::InvalidArgument(std::string(what) +
                                           " section truncated");
    }
    if (lens[i] > max_len) {
      return util::Status::InvalidArgument(std::string(what) +
                                           " row length exceeds |M|");
    }
  }
  if (pos != bytes.size()) {
    return util::Status::InvalidArgument(std::string(what) +
                                         " section has trailing bytes");
  }
  return lens;
}

util::StatusOr<std::vector<uint64_t>> DecodePairKeys(
    std::span<const uint8_t> bytes, uint64_t num_nodes) {
  size_t pos = 0;
  uint64_t count = 0;
  if (!util::ReadVarint(bytes, &pos, &count)) {
    return util::Status::InvalidArgument("pair key section truncated");
  }
  // Each pair takes >= 2 bytes (two varints).
  if (count > bytes.size()) {
    return util::Status::InvalidArgument(
        "pair key section too small for its count");
  }
  std::vector<uint64_t> keys;
  keys.reserve(count);
  uint64_t px = 0, py = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t a = 0, b = 0;
    if (!util::ReadVarint(bytes, &pos, &a) ||
        !util::ReadVarint(bytes, &pos, &b)) {
      return util::Status::InvalidArgument("pair key section truncated");
    }
    // Endpoints ride as (delta-x, y) when x advances, (0, delta-y) within
    // one x. Deltas of a valid file are < num_nodes, which also rules out
    // wraparound in the adds below.
    if (a >= num_nodes || b > num_nodes) {
      return util::Status::InvalidArgument("pair key delta out of range");
    }
    uint64_t x = 0, y = 0;
    if (i == 0) {
      x = a;
      y = b;
    } else if (a != 0) {
      x = px + a;
      y = b;
    } else {
      if (b == 0) {
        return util::Status::InvalidArgument(
            "pair keys not strictly increasing");
      }
      x = px;
      y = py + b;
    }
    if (x > y || y >= num_nodes) {
      return util::Status::InvalidArgument("pair key node out of range");
    }
    keys.push_back((x << 32) | y);
    px = x;
    py = y;
  }
  if (pos != bytes.size()) {
    return util::Status::InvalidArgument(
        "pair key section has trailing bytes");
  }
  return keys;
}

util::StatusOr<ColdSections> DecodeColdSections(
    const util::ContainerReader& reader) {
  ColdSections cold;

  auto meta = reader.Section(kSecMeta);
  if (!meta.ok()) return meta.status();
  if (meta->bytes.size() != kMetaSize) {
    return util::Status::InvalidArgument("index meta section malformed");
  }
  size_t pos = 0;
  uint32_t transform = 0, reserved = 0;
  util::ReadScalar(meta->bytes, &pos, &cold.num_metagraphs);
  util::ReadScalar(meta->bytes, &pos, &cold.num_nodes);
  util::ReadScalar(meta->bytes, &pos, &transform);
  util::ReadScalar(meta->bytes, &pos, &reserved);
  if (transform > 1) {
    return util::Status::InvalidArgument("unknown index count transform");
  }
  cold.transform = static_cast<CountTransform>(transform);
  // Entry indices are u32 on the wire and NodeId is 32-bit in this build;
  // wider artifacts are rejected, not wrapped. (The FORMAT allows wider —
  // endpoints are varints — so a future wide-NodeId build reads today's
  // files unchanged.)
  if (cold.num_metagraphs > 0xffffffffull) {
    return util::Status::InvalidArgument(
        "metagraph count exceeds the 32-bit entry index");
  }
  if (cold.num_nodes > 0xffffffffull) {
    return util::Status::InvalidArgument(
        "node count exceeds this build's 32-bit NodeId");
  }

  auto committed = reader.Section(kSecCommitted);
  if (!committed.ok()) return committed.status();
  if (committed->bytes.size() != (cold.num_metagraphs + 7) / 8) {
    return util::Status::InvalidArgument(
        "committed bitmap disagrees with metagraph count");
  }
  cold.committed.assign(cold.num_metagraphs, 0);
  for (uint64_t i = 0; i < cold.num_metagraphs; ++i) {
    cold.committed[i] = (committed->bytes[i / 8] >> (i % 8)) & 1u;
  }

  auto node_lens = reader.Section(kSecNodeLens);
  if (!node_lens.ok()) return node_lens.status();
  auto decoded_node_lens = DecodeLens(node_lens->bytes, cold.num_nodes,
                                      cold.num_metagraphs, "node length");
  if (!decoded_node_lens.ok()) return decoded_node_lens.status();
  cold.node_lens = std::move(*decoded_node_lens);

  auto pair_keys = reader.Section(kSecPairKeys);
  if (!pair_keys.ok()) return pair_keys.status();
  auto decoded_keys = DecodePairKeys(pair_keys->bytes, cold.num_nodes);
  if (!decoded_keys.ok()) return decoded_keys.status();
  cold.pair_keys = std::move(*decoded_keys);

  auto pair_lens = reader.Section(kSecPairLens);
  if (!pair_lens.ok()) return pair_lens.status();
  auto decoded_pair_lens = DecodeLens(pair_lens->bytes, cold.pair_keys.size(),
                                      cold.num_metagraphs, "pair length");
  if (!decoded_pair_lens.ok()) return decoded_pair_lens.status();
  cold.pair_lens = std::move(*decoded_pair_lens);

  return cold;
}

// Row offsets (in entries) from the length table: lens.size() + 1 prefix
// sums. Total bounded by sum <= lens.size() * max_len <= 2^64-safe since
// both factors were validated <= 2^32.
std::vector<uint64_t> PrefixSums(const std::vector<uint64_t>& lens) {
  std::vector<uint64_t> offsets(lens.size() + 1, 0);
  for (size_t i = 0; i < lens.size(); ++i) {
    offsets[i + 1] = offsets[i] + lens[i];
  }
  return offsets;
}

}  // namespace

util::Status MetagraphVectorIndex::WriteBinaryTo(std::ostream& os,
                                                 BinaryLayout layout) const {
  const bool packed = layout == BinaryLayout::kCompact;
  const uint32_t entry_flags = packed ? util::kSectionPacked : 0;
  const size_t num_nodes = num_graph_nodes();

  util::ContainerWriter writer(util::kIndexArtifact);

  std::string meta;
  util::AppendScalar<uint64_t>(&meta, num_metagraphs_);
  util::AppendScalar<uint64_t>(&meta, num_nodes);
  util::AppendScalar<uint32_t>(&meta, static_cast<uint32_t>(transform_));
  util::AppendScalar<uint32_t>(&meta, 0);
  MX_DCHECK(meta.size() == kMetaSize);
  writer.AddSection(kSecMeta, std::move(meta));

  std::string bits((num_metagraphs_ + 7) / 8, '\0');
  for (size_t i = 0; i < num_metagraphs_; ++i) {
    if (committed_[i] != 0) {
      bits[i / 8] = static_cast<char>(
          static_cast<uint8_t>(bits[i / 8]) | (1u << (i % 8)));
    }
  }
  writer.AddSection(kSecCommitted, std::move(bits), 0, /*try_compress=*/true);

  std::vector<Entry> scratch;
  std::string node_lens, node_entries;
  for (NodeId v = 0; v < num_nodes; ++v) {
    const Row row = Canonical(NodeRow(v), &scratch);
    util::AppendVarint(&node_lens, row.size());
    AppendRow(&node_entries, row, packed);
  }
  writer.AddSection(kSecNodeLens, std::move(node_lens), 0, true);
  writer.AddSection(kSecNodeEntries, std::move(node_entries), entry_flags,
                    packed);

  // Pairs in sorted key order, like the text writer: byte-identical for
  // any thread/shard count, finalized or not.
  std::vector<uint64_t> keys;
  if (finalized_) {
    keys = pair_keys_;
  } else {
    keys.reserve(num_pairs());
    for (const auto& shard : shards_) {
      mx::MutexLock lock(shard->mu);
      // lint:allow-unordered-iter — collection order is erased by the sort.
      for (const auto& [key, row] : shard->pairs) keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
  }
  std::string pk;
  util::AppendVarint(&pk, keys.size());
  uint64_t px = 0, py = 0;
  bool first = true;
  for (uint64_t key : keys) {
    const uint64_t x = key >> 32;
    const uint64_t y = key & 0xffffffffu;
    if (first) {
      util::AppendVarint(&pk, x);
      util::AppendVarint(&pk, y);
      first = false;
    } else if (x != px) {
      util::AppendVarint(&pk, x - px);
      util::AppendVarint(&pk, y);
    } else {
      util::AppendVarint(&pk, 0);
      util::AppendVarint(&pk, y - py);
    }
    px = x;
    py = y;
  }
  writer.AddSection(kSecPairKeys, std::move(pk), 0, true);

  std::string pair_lens, pair_entries;
  for (uint64_t key : keys) {
    const NodeId x = static_cast<NodeId>(key >> 32);
    const NodeId y = static_cast<NodeId>(key & 0xffffffffu);
    const Row row = Canonical(FindPairRow(x, y), &scratch);
    util::AppendVarint(&pair_lens, row.size());
    AppendRow(&pair_entries, row, packed);
  }
  writer.AddSection(kSecPairLens, std::move(pair_lens), 0, true);
  writer.AddSection(kSecPairEntries, std::move(pair_entries), entry_flags,
                    packed);

  return writer.WriteTo(os);
}

util::StatusOr<MetagraphVectorIndex> MetagraphVectorIndex::ReadBinaryFrom(
    std::span<const uint8_t> bytes) {
  // The eager path reads every byte anyway, so checksums are always on.
  auto reader = util::ContainerReader::Parse(bytes, util::kIndexArtifact,
                                             /*verify_checksums=*/true);
  if (!reader.ok()) return reader.status();
  auto cold = DecodeColdSections(*reader);
  if (!cold.ok()) return cold.status();

  MetagraphVectorIndex index(cold->num_metagraphs, cold->num_nodes,
                             cold->transform, /*num_shards=*/1);
  index.committed_ = std::move(cold->committed);

  auto node_entries = reader->Section(kSecNodeEntries);
  if (!node_entries.ok()) return node_entries.status();
  util::Status status = DecodeEntrySection(
      node_entries->bytes,
      (reader->Flags(kSecNodeEntries) & util::kSectionPacked) != 0,
      cold->node_lens, cold->num_metagraphs, "node entries",
      [&](size_t r, Row row) {
        index.node_vectors_[r].assign(row.begin(), row.end());
      });
  if (!status.ok()) return status;

  auto pair_entries = reader->Section(kSecPairEntries);
  if (!pair_entries.ok()) return pair_entries.status();
  status = DecodeEntrySection(
      pair_entries->bytes,
      (reader->Flags(kSecPairEntries) & util::kSectionPacked) != 0,
      cold->pair_lens, cold->num_metagraphs, "pair entries",
      [&](size_t r, Row row) {
        index.AppendPairRow(cold->pair_keys[r],
                            SparseVec(row.begin(), row.end()));
      });
  if (!status.ok()) return status;

  index.Finalize();
  return index;
}

util::StatusOr<MetagraphVectorIndex> MetagraphVectorIndex::MapFromFile(
    const std::string& path, const IndexLoadOptions& options) {
  auto file = util::MmapFile::OpenReadOnly(path);
  if (!file.ok()) return file.status();
  auto reader = util::ContainerReader::Parse(
      (*file)->bytes(), util::kIndexArtifact, options.verify_checksums);
  if (!reader.ok()) return reader.status();
  auto cold = DecodeColdSections(*reader);
  if (!cold.ok()) return cold.status();

  auto store = std::make_unique<MappedStore>();
  store->file = *file;
  store->num_nodes = cold->num_nodes;
  store->node_offsets = PrefixSums(cold->node_lens);
  store->pair_offsets = PrefixSums(cold->pair_lens);

  struct Hot {
    uint32_t id;
    const std::vector<uint64_t>* offsets;
    std::span<const Entry>* out;
    const char* what;
  };
  const Hot hot[2] = {
      {kSecNodeEntries, &store->node_offsets, &store->node_entries,
       "node entries"},
      {kSecPairEntries, &store->pair_offsets, &store->pair_entries,
       "pair entries"},
  };
  for (const Hot& h : hot) {
    if ((reader->Flags(h.id) &
         (util::kSectionPacked | util::kSectionLzw)) != 0) {
      return util::Status::FailedPrecondition(
          "compact-layout artifact cannot be mapped: its entry sections "
          "are packed/compressed; load it eagerly (ReadBinaryFrom) or "
          "re-encode with BinaryLayout::kAligned");
    }
    auto section = reader->Section(h.id);
    if (!section.ok()) return section.status();
    const std::span<const uint8_t> raw = section->bytes;
    if (raw.size() != h.offsets->back() * sizeof(Entry)) {
      return util::Status::InvalidArgument(
          std::string(h.what) + " section disagrees with row lengths");
    }
    *h.out = std::span<const Entry>(
        reinterpret_cast<const Entry*>(raw.data()), raw.size() / sizeof(Entry));
    if (options.verify_checksums) {
      // Deep entry validation; the CRC pass above already paid the page
      // touches, so this is the same-order cost.
      const std::vector<uint64_t>& off = *h.offsets;
      for (size_t r = 0; r + 1 < off.size(); ++r) {
        uint64_t prev = 0;
        for (uint64_t e = off[r]; e < off[r + 1]; ++e) {
          const uint32_t idx = (*h.out)[e].first;
          if (idx >= cold->num_metagraphs ||
              (e > off[r] && idx <= prev)) {
            return util::Status::InvalidArgument(
                std::string(h.what) + " row entries invalid");
          }
          prev = idx;
        }
      }
    }
  }

  MetagraphVectorIndex index(cold->num_metagraphs, /*num_graph_nodes=*/0,
                             cold->transform, /*num_shards=*/1);
  index.committed_ = std::move(cold->committed);
  index.pair_keys_ = std::move(cold->pair_keys);
  index.shards_.clear();
  index.node_stripes_.clear();
  index.mapped_ = std::move(store);
  index.BuildPostings();
  index.finalized_ = true;
  return index;
}

util::StatusOr<MetagraphVectorIndex> MetagraphVectorIndex::LoadFromFile(
    const std::string& path, const IndexLoadOptions& options) {
  auto is_container = util::PathIsContainer(path);
  if (!is_container.ok()) return is_container.status();
  if (*is_container) {
    if (options.use_mmap) {
      auto mapped = MapFromFile(path, options);
      // kFailedPrecondition = "not an aligned-layout artifact": mmap is
      // advisory in LoadFromFile, so compact artifacts fall back to the
      // eager parse below. Any other failure (corruption, IO) surfaces.
      if (mapped.ok() ||
          mapped.status().code() != util::StatusCode::kFailedPrecondition) {
        return mapped;
      }
    }
    auto file = util::MmapFile::OpenReadOnly(path);
    if (!file.ok()) return file.status();
    return ReadBinaryFrom((*file)->bytes());
  }
  // Text artifact: the v1 debug/interop path (use_mmap is advisory and
  // does not apply).
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open " + path);
  return ReadFrom(in);
}

}  // namespace metaprox
