// SearchEngine: the public facade implementing the paper's overall
// framework (Fig. 3).
//
// Offline phase:   Mine() -> MatchAll()/MatchSubset() -> (Finalize)
// Learning:        Train() (Sect. III-B) or TrainDualStage() (Sect. III-C)
// Online phase:    Query(): evaluates pi(q, .) against the precomputed
//                  metagraph vectors and ranks candidates.
#ifndef METAPROX_CORE_ENGINE_H_
#define METAPROX_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/index_snapshot.h"
#include "core/query_batch.h"
#include "graph/graph.h"
#include "index/metagraph_vectors.h"
#include "learning/dual_stage.h"
#include "learning/proximity.h"
#include "learning/trainer.h"
#include "matching/matcher.h"
#include "mining/miner.h"
#include "util/container.h"
#include "util/thread_pool.h"

namespace metaprox {

struct EngineOptions {
  MinerOptions miner;
  MatcherKind matcher = MatcherKind::kSymISO;
  CountTransform transform = CountTransform::kLog1p;
  /// Embedding cap per metagraph while indexing; instances beyond it are
  /// dropped (counts of a saturated metagraph are a lower bound).
  uint64_t embedding_cap = 3'000'000;
  /// Worker threads for the whole offline phase: mining (Mine()) and
  /// matching (MatchAll/MatchSubset, including dual-stage training's
  /// on-demand matching). 0 = hardware concurrency; 1 = serial, no pool.
  /// The mined set and the built index are bit-identical for any value:
  /// mining is level-synchronous with deterministic deduplication, and
  /// matching commits into a sharded index whose canonical ordering is
  /// restored at Seal()/Finalize() (see index/metagraph_vectors.h).
  unsigned num_threads = 1;
  /// Shards of the vector index's build-time pair-slot table. Concurrent
  /// Commits only contend per shard, so more shards = less lock contention
  /// during parallel matching. 0 = auto (scales with num_threads). Never
  /// affects the finalized index bytes.
  size_t num_shards = 0;
};

/// Per-metagraph record of the matching task that committed it.
struct MetagraphMatchStats {
  bool matched = false;       // a matching task has run for this metagraph
  uint64_t embeddings = 0;    // embeddings delivered to the counting sink
  uint64_t search_nodes = 0;  // candidate extensions attempted
  bool saturated = false;     // embedding cap hit; counts are a lower bound
  double seconds = 0.0;       // wall-clock of this metagraph's task alone
};

/// End-to-end semantic proximity search over one graph.
class SearchEngine {
 public:
  SearchEngine(const Graph& graph, EngineOptions options);

  /// Offline subproblem 1: mines the metagraph set M. With
  /// options().num_threads != 1 the per-level frequency/support checks run
  /// on the engine's ThreadPool; the mined set is identical regardless.
  void Mine();

  /// Offline subproblem 2: matches every mined metagraph and builds the
  /// vector index. Finalizes the index (ready for queries).
  void MatchAll();

  /// Matches only the given metagraphs (dual-stage workflows). Does not
  /// finalize; call FinalizeIndex() before querying.
  ///
  /// Idempotent: already-committed metagraphs (and duplicates within
  /// `indices`) are skipped. With options().num_threads != 1 the matching
  /// tasks run on a reusable ThreadPool and each task commits its counts
  /// straight into the sharded index from its worker thread — no serial
  /// commit funnel. The batch ends with MetagraphVectorIndex::Seal(),
  /// which restores canonical (metagraph-index) row order, so the index
  /// state after every MatchSubset — and the finalized, serialized index —
  /// is byte-identical for any thread count and any shard count.
  void MatchSubset(std::span<const uint32_t> indices);

  /// Finalizes the index (exactly once; see MetagraphVectorIndex).
  void FinalizeIndex();

  /// Offline subproblem 3 (Sect. III-B): learns w* from examples.
  MgpModel Train(std::span<const Example> examples,
                 const TrainOptions& options) const;

  /// Dual-stage training (Sect. III-C, Alg. 1). Matches seeds/candidates on
  /// demand through this engine.
  DualStageResult TrainDualStage(std::span<const Example> examples,
                                 const DualStageOptions& options,
                                 StructuralSimilarityCache* ss_cache = nullptr);

  /// Online phase: top-k nodes by pi(q, .; w). Requires a finalized index.
  /// Like every engine read path, this routes through the engine's
  /// current IndexSnapshot (see Snapshot()).
  std::vector<std::pair<NodeId, double>> Query(const MgpModel& model, NodeId q,
                                               size_t k) const;

  /// Batched online phase: one top-k result per entry of `queries` (aligned,
  /// duplicates included). Groups the index walks across the batch — every
  /// touched node row is gathered once, pair rows are read through the
  /// candidate-slot postings — and scores queries in parallel on the
  /// engine's ThreadPool (options().num_threads; lazily created, hence
  /// non-const). Result i is identical — same nodes, same scores, same
  /// tie-break order — to Query(model, queries[i], k), for any batch
  /// composition and any thread count. Requires a finalized index.
  /// Reuses one engine-owned BatchScratch across calls (epoch-marked, so a
  /// call costs O(rows touched), not O(|V|)); like every non-const engine
  /// method it must not run concurrently with itself. Query() stays const
  /// and safe to call from other threads meanwhile.
  ///
  std::vector<std::vector<std::pair<NodeId, double>>> BatchQuery(
      const MgpModel& model, std::span<const NodeId> queries, size_t k);

  /// Shared-window, multi-model batch: ranks queries[i] under
  /// models[model_of[i]], gathering the union of the window's touched node
  /// rows ONCE and scoring each gathered row under every model in a single
  /// walk through the multi-weight score kernels (see
  /// BatchRankByProximityMulti). Result i is bitwise identical to
  /// Query(model_of[i]'s model, queries[i], k) — same contract as
  /// BatchQuery, extended over the model axis — for any window
  /// composition, model mix, thread count and kernel. Same pool/scratch
  /// behavior as BatchQuery (engine-owned scratch; not self-concurrent).
  /// With a non-null `stats`, fills the gather-amortization counters.
  ///
  /// Multi-model serving sits entirely above these calls: weights are
  /// per-call arguments, so one engine (one finalized index) serves any
  /// number of per-class models — server::QueryServer's batcher issues one
  /// BatchQueryMulti per k-group of each accumulation window (however many
  /// models the window mixes), with model snapshots published/hot-swapped
  /// by server::ModelRegistry and persisted via learning/model_io.h.
  std::vector<std::vector<std::pair<NodeId, double>>> BatchQueryMulti(
      std::span<const std::span<const double>> models,
      std::span<const NodeId> queries, std::span<const uint32_t> model_of,
      size_t k, BatchMultiStats* stats = nullptr);

  /// Proximity between two specific nodes.
  double Proximity(const MgpModel& model, NodeId x, NodeId y) const;

  /// The engine's current immutable snapshot — the unit every read path
  /// above pins, and what serving infrastructure shares (IndexMaintainer,
  /// server::IndexRegistry). Created by FinalizeIndex()/LoadOffline();
  /// null before the index is finalized. The snapshot aliases the
  /// caller-owned graph without owning it: the graph must outlive any
  /// snapshot obtained here (IndexMaintainer copies the graph into owned
  /// state for exactly this reason).
  std::shared_ptr<const IndexSnapshot> Snapshot() const { return snapshot_; }

  /// Shared handle to the built index (finalized or not), for maintenance
  /// infrastructure that outlives this engine's build phase.
  std::shared_ptr<const MetagraphVectorIndex> shared_index() const {
    MX_CHECK(index_ != nullptr);
    return index_;
  }

  // ---- introspection ----------------------------------------------------
  const Graph& graph() const { return graph_; }
  const EngineOptions& options() const { return options_; }
  const std::vector<MinedMetagraph>& metagraphs() const { return metagraphs_; }
  const MetagraphVectorIndex& index() const { return *index_; }
  const MiningStats& mining_stats() const { return mining_stats_; }

  /// Per-metagraph matching stats, indexed like metagraphs(). Entries are
  /// default (matched == false) for metagraphs not yet matched by this
  /// engine instance (e.g. after LoadOffline()).
  const std::vector<MetagraphMatchStats>& match_stats() const {
    return match_stats_;
  }

  struct Timings {
    double mine_seconds = 0.0;
    double match_seconds = 0.0;      // includes the workers' Commit() time
    double finalize_seconds = 0.0;   // shard merge + candidate postings
  };
  const Timings& timings() const { return timings_; }

  /// Persists the offline phase (mined metagraphs + vector index) to
  /// `<path_prefix>.metagraphs` and `<path_prefix>.index`. The metagraph
  /// set is always text (it is small and diff-friendly); `options.format`
  /// picks the index artifact's format, and `options.layout` its physical
  /// layout when binary (kAligned makes it mmap-able, kCompact the
  /// smallest). One ArtifactOptions bag covers save and load, shared with
  /// mgps_cli and metaprox_server.
  util::Status SaveOffline(const std::string& path_prefix,
                           const ArtifactOptions& options = {}) const;

  /// Restores a persisted offline phase; replaces any mined/matched state.
  /// The graph must be the same one the artifacts were built from. The
  /// index format is autodetected by magic; `options.use_mmap` /
  /// `options.verify_checksums` select mmap vs eager materialization for
  /// binary artifacts.
  util::Status LoadOffline(const std::string& path_prefix,
                           const ArtifactOptions& options = {});

  [[deprecated("pass one ArtifactOptions instead of loose format/layout")]]
  util::Status SaveOffline(const std::string& path_prefix,
                           util::ArtifactFormat format,
                           BinaryLayout layout = BinaryLayout::kCompact) const;

  [[deprecated("pass ArtifactOptions instead of IndexLoadOptions")]]
  util::Status LoadOffline(const std::string& path_prefix,
                           const IndexLoadOptions& options);

 private:
  struct MatchTaskResult;

  MatchTaskResult RunMatchTask(uint32_t metagraph_index) const;
  // Thread-safe for distinct metagraph indices: Commit() locks per shard
  // and each task writes its own match_stats_ element.
  void CommitMatchTask(uint32_t metagraph_index, MatchTaskResult result);
  util::ThreadPool& Pool(size_t num_threads);

  /// (Re)publishes snapshot_ from the current graph/metagraphs/index.
  /// Called whenever the index reaches a finalized state.
  void PublishSnapshot();

  const Graph& graph_;
  EngineOptions options_;
  std::unique_ptr<Matcher> matcher_;
  std::vector<MinedMetagraph> metagraphs_;
  /// Shared (not unique) so snapshots and maintainers can pin it past
  /// this engine's next rebuild.
  std::shared_ptr<MetagraphVectorIndex> index_;
  /// The published generation all read paths pin; see Snapshot().
  std::shared_ptr<const IndexSnapshot> snapshot_;
  MiningStats mining_stats_;
  std::vector<MetagraphMatchStats> match_stats_;
  Timings timings_;
  /// Lazily created by the first parallel stage (usually Mine(), else the
  /// first parallel MatchSubset), then reused across mining, MatchAll and
  /// dual-stage rounds.
  std::unique_ptr<util::ThreadPool> pool_;
  /// Reused by every BatchQuery call (a serving loop's batches touch the
  /// same tables over and over; see BatchScratch).
  BatchScratch batch_scratch_;
};

}  // namespace metaprox

#endif  // METAPROX_CORE_ENGINE_H_
