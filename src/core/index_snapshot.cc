#include "core/index_snapshot.h"

#include <utility>

#include "util/macros.h"

namespace metaprox {

IndexSnapshot::IndexSnapshot(
    std::shared_ptr<const Graph> graph,
    std::shared_ptr<const std::vector<MinedMetagraph>> metagraphs,
    std::shared_ptr<const MetagraphVectorIndex> index, uint64_t generation)
    : graph_(std::move(graph)),
      metagraphs_(std::move(metagraphs)),
      index_(std::move(index)),
      generation_(generation) {
  MX_CHECK(graph_ != nullptr && metagraphs_ != nullptr && index_ != nullptr);
  MX_CHECK_MSG(index_->finalized(), "snapshots serve finalized indexes only");
  MX_CHECK(index_->num_metagraphs() == metagraphs_->size());
  MX_CHECK(index_->num_graph_nodes() == graph_->num_nodes());
}

QueryResult IndexSnapshot::Query(const MgpModel& model, NodeId q,
                                 size_t k) const {
  return RankByProximity(*index_, model.weights, q, index_->Candidates(q), k);
}

std::vector<QueryResult> IndexSnapshot::BatchQuery(
    const MgpModel& model, std::span<const NodeId> queries, size_t k,
    util::ThreadPool* pool, BatchScratch* scratch) const {
  return BatchRankByProximity(*index_, model.weights, queries, k, pool,
                              scratch);
}

std::vector<QueryResult> IndexSnapshot::BatchQueryMulti(
    std::span<const std::span<const double>> models,
    std::span<const NodeId> queries, std::span<const uint32_t> model_of,
    size_t k, util::ThreadPool* pool, BatchScratch* scratch,
    BatchMultiStats* stats) const {
  return BatchRankByProximityMulti(*index_, models, queries, model_of, k, pool,
                                   scratch, stats);
}

double IndexSnapshot::Proximity(const MgpModel& model, NodeId x,
                                NodeId y) const {
  return MgpProximity(*index_, model.weights, x, y);
}

}  // namespace metaprox
