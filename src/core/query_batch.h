// Batched online phase: ranks many queries against the finalized metagraph
// vector index in one pass, amortizing the index walks a per-query
// SearchEngine::Query() repays on every call.
//
// What a batch amortizes:
//   * duplicate query nodes are scored once and their result copied;
//   * every node row touched by the batch (queries plus all their
//     candidates) has m_x . w computed exactly once, instead of once per
//     query that reaches it — candidate sets of related queries overlap
//     heavily, so this is the dominant saving;
//   * pair rows are read through the index's candidate-slot postings
//     (MetagraphVectorIndex::CandidateSlots/SlotDot), a direct array walk
//     with no per-pair hash probe;
//   * distinct queries score independently, so the scoring pass fans out
//     over a util::ThreadPool.
//
// Determinism contract (the batched counterpart of the offline pipeline's
// contract in docs/ARCHITECTURE.md): for any batch composition and any
// thread count, result i is IDENTICAL — same nodes, same (bitwise) scores,
// same tie-break order — to RankByProximity(index, weights, queries[i],
// Candidates(queries[i]), k), i.e. to what SearchEngine::Query(model,
// queries[i], k) returns. Every cached dot product accumulates in the same
// order as its per-query counterpart, and the shared ProximityRankBefore
// order is total, so parallelism has nothing to reorder.
#ifndef METAPROX_CORE_QUERY_BATCH_H_
#define METAPROX_CORE_QUERY_BATCH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "index/metagraph_vectors.h"
#include "util/macros.h"
#include "util/thread_pool.h"

namespace metaprox {

/// Top-k results for one query of a batch: (node, proximity) entries in
/// ProximityRankBefore order, proximity > 0 only.
using QueryResult = std::vector<std::pair<NodeId, double>>;

/// Reusable epoch-marked scratch for BatchRankByProximity: the batch-wide
/// node dedup mark and node-dot cache, dense over the graph's nodes but
/// allocated once and never cleared between batches. BeginBatch() bumps an
/// epoch instead of zeroing, so a long-lived caller (the query server's
/// batch loop, SearchEngine::BatchQuery) pays O(rows touched) per batch —
/// not O(|V|) — which is what makes tiny batches on multi-million-node
/// graphs cheap. A scratch belongs to ONE caller at a time: concurrent
/// BatchRankByProximity calls must use distinct scratches. (The gather
/// pass's workers may write dots of distinct nodes concurrently; marking
/// stays on the coordinating thread.)
class BatchScratch {
 public:
  BatchScratch() = default;
  // Movable (so owners like SearchEngine stay movable) but not copyable —
  // a copy would silently double the O(|V|) tables.
  BatchScratch(BatchScratch&&) = default;
  BatchScratch& operator=(BatchScratch&&) = default;
  MX_DISALLOW_COPY_AND_ASSIGN(BatchScratch);

  /// Starts a new batch over a graph of `num_nodes` nodes. Previous marks
  /// and cached dots expire in O(1) (epoch bump, no per-node clear);
  /// tables are (re)allocated only when `num_nodes` changes.
  void BeginBatch(size_t num_nodes);

  /// Marks x as touched by the current batch; returns true on x's first
  /// touch since BeginBatch(). Stale marks from earlier batches are
  /// invisible (their epoch differs), so no state leaks across calls.
  bool MarkTouched(NodeId x) {
    if (epoch_of_[x] == epoch_) return false;
    epoch_of_[x] = epoch_;
    touched_.push_back(x);
    return true;
  }

  /// Rows marked since BeginBatch(), in first-touch order.
  std::span<const NodeId> touched() const { return touched_; }

  /// Caches / reads m_x . w for a row marked in the current batch. Reading
  /// an unmarked row is a bug (the slot may hold a stale dot from an
  /// earlier batch); debug builds check.
  void SetNodeDot(NodeId x, double dot) { node_dots_[x] = dot; }
  double NodeDot(NodeId x) const {
    MX_DCHECK(epoch_of_[x] == epoch_);
    return node_dots_[x];
  }

 private:
  uint64_t epoch_ = 0;  // 0 = no batch yet; epoch_of_ entries start at 0
  std::vector<uint64_t> epoch_of_;  // epoch_of_[x] == epoch_ <=> x touched
  std::vector<double> node_dots_;   // valid only where touched
  std::vector<NodeId> touched_;
};

/// Ranks every query of `queries` by descending pi(q, .; weights) over its
/// candidate set, returning one QueryResult per query (aligned with
/// `queries`, duplicates included). Requires a finalized index. With a
/// non-null `pool` the per-query scoring runs on its workers; the results
/// are identical for any pool size, including none. With a non-null
/// `scratch` the batch reuses that scratch's tables instead of allocating
/// O(|V|) fresh ones — results are identical either way, whatever earlier
/// batches the scratch served.
std::vector<QueryResult> BatchRankByProximity(
    const MetagraphVectorIndex& index, std::span<const double> weights,
    std::span<const NodeId> queries, size_t k, util::ThreadPool* pool = nullptr,
    BatchScratch* scratch = nullptr);

}  // namespace metaprox

#endif  // METAPROX_CORE_QUERY_BATCH_H_
