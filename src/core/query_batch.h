// Batched online phase: ranks many queries against the finalized metagraph
// vector index in one pass, amortizing the index walks a per-query
// SearchEngine::Query() repays on every call.
//
// What a batch amortizes:
//   * duplicate query nodes are scored once and their result copied;
//   * every node row touched by the batch (queries plus all their
//     candidates) has m_x . w computed exactly once, instead of once per
//     query that reaches it — candidate sets of related queries overlap
//     heavily, so this is the dominant saving;
//   * pair rows are read through the index's candidate-slot postings
//     (MetagraphVectorIndex::CandidateSlots/SlotDot), a direct array walk
//     with no per-pair hash probe;
//   * distinct queries score independently, so the scoring pass fans out
//     over a util::ThreadPool.
//
// The MULTI entry point (BatchRankByProximityMulti) extends the batch
// across weight vectors — gather once, score many: a window mixing N
// models runs ONE node-dedup + row-gather pass over the union of every
// query's touched rows, and each gathered row is scored under all N
// weight vectors in one walk through the multi-weight score kernels
// (core/score_kernels.h, interleaved weights, one transform per entry),
// driving the marginal cost of an extra model toward one fma per row
// entry. Pair rows shared between two queries of the window (q1, q2
// mutual candidates) are likewise walked once for all models.
//
// Determinism contract (the batched counterpart of the offline pipeline's
// contract in docs/ARCHITECTURE.md): for any batch composition and any
// thread count, result i is IDENTICAL — same nodes, same (bitwise) scores,
// same tie-break order — to RankByProximity(index, weights, queries[i],
// Candidates(queries[i]), k), i.e. to what SearchEngine::Query(model,
// queries[i], k) returns; for the multi path, under queries[i]'s OWN model
// (weights = models[model_of[i]]). Every dot product — per-query, batched,
// multi, scalar or SIMD — evaluates through the same score kernel with the
// same canonical accumulation, and the shared ProximityRankBefore order is
// total, so neither parallelism nor kernel dispatch has anything to
// reorder.
#ifndef METAPROX_CORE_QUERY_BATCH_H_
#define METAPROX_CORE_QUERY_BATCH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "index/metagraph_vectors.h"
#include "util/macros.h"
#include "util/thread_pool.h"

namespace metaprox {

/// Top-k results for one query of a batch: (node, proximity) entries in
/// ProximityRankBefore order, proximity > 0 only.
using QueryResult = std::vector<std::pair<NodeId, double>>;

/// Reusable epoch-marked scratch for the batched online path: the
/// batch-wide node dedup mark and node-dot cache, dense over the graph's
/// nodes but allocated once and never cleared between batches.
/// BeginBatch() bumps an epoch instead of zeroing, so a long-lived caller
/// (the query server's batch loop, SearchEngine::BatchQuery) pays O(rows
/// touched) per batch — not O(|V|) — which is what makes tiny batches on
/// multi-million-node graphs cheap.
///
/// Multi-model batches widen the dot cache: BeginBatch(n, m) lays the
/// cache out as node_dots_[x * m + model], still epoch-marked per NODE
/// (one gather fills a row's m dots together). The cache grows
/// monotonically to the largest (nodes x models) seen and the epoch
/// expires stale layouts, so alternating single- and multi-model batches
/// never reallocates back and forth.
///
/// A scratch belongs to ONE caller at a time: concurrent batch calls must
/// use distinct scratches. (The gather pass's workers may write dots of
/// distinct nodes concurrently; marking stays on the coordinating
/// thread.)
class BatchScratch {
 public:
  BatchScratch() = default;
  // Movable (so owners like SearchEngine stay movable) but not copyable —
  // a copy would silently double the O(|V|) tables.
  BatchScratch(BatchScratch&&) = default;
  BatchScratch& operator=(BatchScratch&&) = default;
  MX_DISALLOW_COPY_AND_ASSIGN(BatchScratch);

  /// Starts a new batch over a graph of `num_nodes` nodes, caching
  /// `num_models` dots per touched node. Previous marks and cached dots
  /// expire in O(1) (epoch bump, no per-node clear); tables are
  /// (re)allocated only when `num_nodes` changes or the dot cache must
  /// grow. The touched list's capacity is pre-reserved to the high-water
  /// mark of earlier batches, so a long-lived serving scratch stops
  /// paying re-growth churn after warm-up.
  void BeginBatch(size_t num_nodes, size_t num_models = 1);

  /// Marks x as touched by the current batch; returns true on x's first
  /// touch since BeginBatch(). Stale marks from earlier batches are
  /// invisible (their epoch differs), so no state leaks across calls.
  bool MarkTouched(NodeId x) {
    if (epoch_of_[x] == epoch_) return false;
    epoch_of_[x] = epoch_;
    touched_.push_back(x);
    return true;
  }

  /// Rows marked since BeginBatch(), in first-touch order.
  std::span<const NodeId> touched() const { return touched_; }
  /// Current capacity of the touched list (>= the high-water mark of past
  /// batches; exposed so tests can pin the no-regrowth behavior).
  size_t touched_capacity() const { return touched_.capacity(); }

  /// Models per node this batch caches (BeginBatch's num_models).
  size_t num_models() const { return num_models_; }

  /// Caches / reads m_x . w for a row marked in the current batch (model
  /// 0 when the batch is multi-model). Reading an unmarked row is a bug
  /// (the slot may hold a stale dot from an earlier batch); debug builds
  /// check (MX_DCHECK).
  void SetNodeDot(NodeId x, double dot) {
    node_dots_[static_cast<size_t>(x) * num_models_] = dot;
  }
  double NodeDot(NodeId x) const {
    MX_DCHECK(epoch_of_[x] == epoch_);
    return node_dots_[static_cast<size_t>(x) * num_models_];
  }

  /// The num_models()-wide dot row of a marked node: NodeDots(x)[m] is
  /// m_x . w_m. MutableNodeDots is the gather pass's write target (rows of
  /// distinct nodes may be written concurrently).
  double* MutableNodeDots(NodeId x) {
    return node_dots_.data() + static_cast<size_t>(x) * num_models_;
  }
  const double* NodeDots(NodeId x) const {
    MX_DCHECK(epoch_of_[x] == epoch_);
    return node_dots_.data() + static_cast<size_t>(x) * num_models_;
  }

 private:
  uint64_t epoch_ = 0;  // 0 = no batch yet; epoch_of_ entries start at 0
  std::vector<uint64_t> epoch_of_;  // epoch_of_[x] == epoch_ <=> x touched
  std::vector<double> node_dots_;   // [x * num_models_ + m], valid if marked
  std::vector<NodeId> touched_;
  size_t num_models_ = 1;
  size_t touched_high_water_ = 0;  // max touched_.size() across batches
};

/// Ranks every query of `queries` by descending pi(q, .; weights) over its
/// candidate set, returning one QueryResult per query (aligned with
/// `queries`, duplicates included). Requires a finalized index. With a
/// non-null `pool` the per-query scoring runs on its workers; the results
/// are identical for any pool size, including none. With a non-null
/// `scratch` the batch reuses that scratch's tables instead of allocating
/// O(|V|) fresh ones — results are identical either way, whatever earlier
/// batches the scratch served.
std::vector<QueryResult> BatchRankByProximity(
    const MetagraphVectorIndex& index, std::span<const double> weights,
    std::span<const NodeId> queries, size_t k, util::ThreadPool* pool = nullptr,
    BatchScratch* scratch = nullptr);

/// Gather-amortization accounting of one BatchRankByProximityMulti call,
/// for callers (the query server, benches) that surface the shared-window
/// saving. Filled only when requested (the what-if pass costs extra
/// candidate walks).
struct BatchMultiStats {
  /// Node rows the shared window gathered (dotted once, all models).
  uint64_t rows_gathered = 0;
  /// Node rows N per-model BatchRankByProximity calls would have gathered
  /// for the same window (the sum over models of each model's own union).
  /// rows_per_model - rows_gathered is the saving; equal when one model.
  uint64_t rows_per_model = 0;
  /// Pair rows between two query nodes of the window, precomputed once
  /// for all models instead of once per endpoint per model.
  uint64_t shared_pair_rows = 0;
};

/// The shared-window, multi-model batch: ranks queries[i] under
/// models[model_of[i]] (N weight vectors, each of the index's weight
/// count), gathering the union of touched node rows ONCE and scoring every
/// gathered row under all N models through the multi-weight score
/// kernels. Result i is identical — same nodes, same bitwise scores, same
/// tie-break order — to the per-query path under model_of[i]'s weights,
/// and therefore to per-model BatchRankByProximity, for any window
/// composition, model mix, thread count and kernel. `model_of` is aligned
/// with `queries`; duplicates of a (query, model) pair share one scored
/// result. Pool/scratch semantics as above.
std::vector<QueryResult> BatchRankByProximityMulti(
    const MetagraphVectorIndex& index,
    std::span<const std::span<const double>> models,
    std::span<const NodeId> queries, std::span<const uint32_t> model_of,
    size_t k, util::ThreadPool* pool = nullptr, BatchScratch* scratch = nullptr,
    BatchMultiStats* stats = nullptr);

}  // namespace metaprox

#endif  // METAPROX_CORE_QUERY_BATCH_H_
