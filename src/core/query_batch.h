// Batched online phase: ranks many queries against the finalized metagraph
// vector index in one pass, amortizing the index walks a per-query
// SearchEngine::Query() repays on every call.
//
// What a batch amortizes:
//   * duplicate query nodes are scored once and their result copied;
//   * every node row touched by the batch (queries plus all their
//     candidates) has m_x . w computed exactly once, instead of once per
//     query that reaches it — candidate sets of related queries overlap
//     heavily, so this is the dominant saving;
//   * pair rows are read through the index's candidate-slot postings
//     (MetagraphVectorIndex::CandidateSlots/SlotDot), a direct array walk
//     with no per-pair hash probe;
//   * distinct queries score independently, so the scoring pass fans out
//     over a util::ThreadPool.
//
// Determinism contract (the batched counterpart of the offline pipeline's
// contract in docs/ARCHITECTURE.md): for any batch composition and any
// thread count, result i is IDENTICAL — same nodes, same (bitwise) scores,
// same tie-break order — to RankByProximity(index, weights, queries[i],
// Candidates(queries[i]), k), i.e. to what SearchEngine::Query(model,
// queries[i], k) returns. Every cached dot product accumulates in the same
// order as its per-query counterpart, and the shared ProximityRankBefore
// order is total, so parallelism has nothing to reorder.
#ifndef METAPROX_CORE_QUERY_BATCH_H_
#define METAPROX_CORE_QUERY_BATCH_H_

#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "index/metagraph_vectors.h"
#include "util/thread_pool.h"

namespace metaprox {

/// Top-k results for one query of a batch: (node, proximity) entries in
/// ProximityRankBefore order, proximity > 0 only.
using QueryResult = std::vector<std::pair<NodeId, double>>;

/// Ranks every query of `queries` by descending pi(q, .; weights) over its
/// candidate set, returning one QueryResult per query (aligned with
/// `queries`, duplicates included). Requires a finalized index. With a
/// non-null `pool` the per-query scoring runs on its workers; the results
/// are identical for any pool size, including none.
std::vector<QueryResult> BatchRankByProximity(
    const MetagraphVectorIndex& index, std::span<const double> weights,
    std::span<const NodeId> queries, size_t k,
    util::ThreadPool* pool = nullptr);

}  // namespace metaprox

#endif  // METAPROX_CORE_QUERY_BATCH_H_
