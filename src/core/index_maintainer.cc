#include "core/index_maintainer.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <unordered_set>
#include <utility>

#include "core/engine.h"
#include "matching/delta_match.h"
#include "util/macros.h"
#include "util/stopwatch.h"

namespace metaprox {

namespace {

/// Unordered type pair -> one canonical 32-bit key.
uint32_t TypePairKey(TypeId a, TypeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint32_t>(a) << 16) | b;
}

}  // namespace

IndexMaintainer::IndexMaintainer(const SearchEngine& engine,
                                 MaintainerOptions options)
    : IndexMaintainer(std::make_shared<Graph>(engine.graph()),
                      std::make_shared<std::vector<MinedMetagraph>>(
                          engine.metagraphs()),
                      engine.shared_index(), options) {}

IndexMaintainer::IndexMaintainer(
    std::shared_ptr<const Graph> graph,
    std::shared_ptr<const std::vector<MinedMetagraph>> metagraphs,
    std::shared_ptr<const MetagraphVectorIndex> index,
    MaintainerOptions options)
    : options_(options),
      matcher_(CreateMatcher(options.matcher)),
      graph_(std::move(graph)),
      metagraphs_(std::move(metagraphs)),
      index_(std::move(index)),
      pending_(graph_->num_nodes()),
      ledger_(metagraphs_ == nullptr ? 0 : metagraphs_->size()) {
  MX_CHECK(graph_ != nullptr && metagraphs_ != nullptr && index_ != nullptr);
  MX_CHECK_MSG(index_->finalized(),
               "IndexMaintainer maintains finalized indexes");
  snapshot_ = std::make_shared<IndexSnapshot>(graph_, metagraphs_, index_,
                                              generation_);
}

std::shared_ptr<const IndexSnapshot> IndexMaintainer::snapshot() const {
  mx::MutexLock lock(mu_);
  return snapshot_;
}

NodeId IndexMaintainer::AppendNode(const std::string& type_name,
                                   std::string name) {
  return pending_.AddNode(type_name, std::move(name));
}

util::Status IndexMaintainer::AppendEdge(NodeId u, NodeId v) {
  return pending_.AddEdge(u, v);
}

util::Status IndexMaintainer::Append(const GraphDelta& delta) {
  if (delta.base_nodes() != num_nodes()) {
    return util::Status::FailedPrecondition(
        "delta primed against " + std::to_string(delta.base_nodes()) +
        " nodes; the maintainer is at " + std::to_string(num_nodes()));
  }
  // Stage edges through the validating path before mutating pending_ for
  // the nodes, so a bad delta leaves the buffer untouched.
  const size_t limit = num_nodes() + delta.nodes.size();
  for (const auto& [u, v] : delta.edges) {
    if (u >= limit || v >= limit || u == v) {
      return util::Status::InvalidArgument(
          "delta contains an invalid edge {" + std::to_string(u) + ", " +
          std::to_string(v) + "}");
    }
  }
  for (const GraphDelta::Node& node : delta.nodes) {
    pending_.AddNode(node.type, node.name);
  }
  for (const auto& [u, v] : delta.edges) {
    MX_RETURN_IF_ERROR(pending_.AddEdge(u, v));
  }
  return util::Status::Ok();
}

std::vector<uint32_t> IndexMaintainer::AffectedMetagraphs(
    const Graph& graph, const std::vector<MinedMetagraph>& metagraphs,
    const GraphDelta& delta) {
  // Resolve each delta edge's unordered endpoint-type pair. Endpoints can
  // be existing nodes, delta nodes of existing types, or delta nodes of
  // brand-new types (which no mined metagraph can reference — skip).
  const TypeRegistry& registry = graph.type_registry();
  auto type_of = [&](NodeId v) -> TypeId {
    if (v < graph.num_nodes()) return graph.TypeOf(v);
    return registry.Find(delta.nodes[v - graph.num_nodes()].type);
  };
  std::unordered_set<uint32_t> touched;
  for (const auto& [u, v] : delta.edges) {
    TypeId a = type_of(u);
    TypeId b = type_of(v);
    if (a == kInvalidType || b == kInvalidType) continue;
    touched.insert(TypePairKey(a, b));
  }

  std::vector<uint32_t> affected;
  if (touched.empty()) return affected;
  for (uint32_t i = 0; i < metagraphs.size(); ++i) {
    const Metagraph& m = metagraphs[i].graph;
    for (const auto& [a, b] : m.Edges()) {
      if (touched.count(TypePairKey(m.TypeOf(a), m.TypeOf(b))) != 0) {
        affected.push_back(i);
        break;
      }
    }
  }
  return affected;
}

util::ThreadPool* IndexMaintainer::Pool() {
  const size_t workers = util::ResolveNumThreads(options_.num_threads);
  if (workers <= 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<util::ThreadPool>(workers);
  return pool_.get();
}

util::StatusOr<std::shared_ptr<const IndexSnapshot>> IndexMaintainer::Refresh(
    RefreshStats* stats) {
  util::Stopwatch total;
  RefreshStats local;
  local.appended_nodes = pending_.nodes.size();
  local.appended_edges = pending_.edges.size();

  std::vector<uint32_t> affected =
      AffectedMetagraphs(*graph_, *metagraphs_, pending_);
  affected.erase(std::remove_if(affected.begin(), affected.end(),
                                [&](uint32_t i) {
                                  return !index_->IsCommitted(i);
                                }),
                 affected.end());
  local.affected_metagraphs = affected.size();

  // Canonical (min, max) list of the edges that are NEW in the grown
  // graph — the roots of delta enumeration. Buffered duplicates of
  // existing edges (legal no-ops) and of each other are dropped, so the
  // list is exactly the grown graph's edge set minus the old one.
  const NodeId old_num_nodes = static_cast<NodeId>(graph_->num_nodes());
  std::vector<std::pair<NodeId, NodeId>> new_edges;
  {
    std::unordered_set<uint64_t> seen;
    seen.reserve(pending_.edges.size());
    for (const auto& [u, v] : pending_.edges) {
      const NodeId a = std::min(u, v);
      const NodeId b = std::max(u, v);
      if (b < old_num_nodes && graph_->HasEdge(a, b)) continue;
      const uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
      if (!seen.insert(key).second) continue;
      new_edges.emplace_back(a, b);
    }
  }

  auto new_graph_or = ApplyDelta(*graph_, pending_);
  if (!new_graph_or.ok()) return new_graph_or.status();
  auto new_graph =
      std::make_shared<const Graph>(std::move(*new_graph_or));

  const size_t workers = util::ResolveNumThreads(options_.num_threads);
  const size_t shards =
      options_.num_shards != 0
          ? options_.num_shards
          : (workers > 1 ? std::min<size_t>(4 * workers, 64) : 1);
  MetagraphVectorIndex work =
      index_->CloneForRefresh(new_graph->num_nodes(), affected, shards);

  util::Stopwatch rematch_timer;
  std::atomic<size_t> delta_refreshed{0};

  // Full re-match: the byte-identity oracle itself. Also (re)captures the
  // metagraph's raw-count ledger so the NEXT refresh can go delta-only —
  // unless the counts are cap-truncated (then they depend on enumeration
  // order and cannot be merged onto) or the metagraph is outside
  // DeltaMatch's connectivity precondition.
  auto full_rematch = [&](uint32_t i) {
    const MinedMetagraph& mined = (*metagraphs_)[i];
    SymPairCountingSink sink(mined.symmetry, options_.embedding_cap);
    matcher_->Match(*new_graph, mined.graph, &sink);
    work.Commit(i, sink, mined.symmetry.aut_size());
    RawCounts& led = ledger_[i];
    const Metagraph& m = mined.graph;
    if (!sink.saturated() && m.num_nodes() >= 2 && m.IsConnected()) {
      led.pair_counts = sink.pair_counts();
      led.node_counts = sink.node_counts();
      led.num_embeddings = sink.num_embeddings();
      led.valid = true;
    } else {
      led = RawCounts{};
    }
  };

  auto rematch_one = [&](uint32_t i) {
    const MinedMetagraph& mined = (*metagraphs_)[i];
    RawCounts& led = ledger_[i];
    if (options_.incremental && led.valid) {
      // Enumerate only the embeddings using >= 1 new edge. The delta sink
      // gets the cap headroom the ledger left; if it saturates, the grown
      // total would reach the cap, where full-match counts turn
      // order-dependent — fall back to the oracle (which also rebuilds
      // the ledger or marks it invalid).
      SymPairCountingSink sink(mined.symmetry,
                               options_.embedding_cap - led.num_embeddings);
      DeltaMatch(*new_graph, mined.graph, new_edges, &sink);
      if (!sink.saturated()) {
        // lint:allow-unordered-iter — += merges are commutative, so the
        // ledger ends identical whatever order the sink is walked in.
        for (const auto& [key, count] : sink.pair_counts()) {
          led.pair_counts[key] += count;
        }
        // lint:allow-unordered-iter — same commutative merge.
        for (const auto& [node, count] : sink.node_counts()) {
          led.node_counts[node] += count;
        }
        led.num_embeddings += sink.num_embeddings();
        work.Commit(i, led.pair_counts, led.node_counts,
                    mined.symmetry.aut_size());
        delta_refreshed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      led.valid = false;
    }
    full_rematch(i);
  };
  util::ThreadPool* pool = affected.size() > 1 ? Pool() : nullptr;
  if (pool == nullptr) {
    for (uint32_t i : affected) rematch_one(i);
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(affected.size());
    for (uint32_t i : affected) {
      futures.push_back(pool->Submit([&rematch_one, i] { rematch_one(i); }));
    }
    for (auto& f : futures) f.wait();
    for (auto& f : futures) f.get();
  }
  work.Seal();
  work.Finalize();
  local.rematch_seconds = rematch_timer.ElapsedSeconds();
  local.delta_metagraphs = delta_refreshed.load(std::memory_order_relaxed);

  auto new_index =
      std::make_shared<const MetagraphVectorIndex>(std::move(work));
  ++generation_;
  auto snapshot = std::make_shared<const IndexSnapshot>(
      new_graph, metagraphs_, new_index, generation_);

  graph_ = std::move(new_graph);
  index_ = std::move(new_index);
  pending_ = GraphDelta(graph_->num_nodes());
  {
    mx::MutexLock lock(mu_);
    snapshot_ = snapshot;
  }

  local.total_seconds = total.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return snapshot;
}

}  // namespace metaprox
