#include "core/engine.h"

#include <fstream>
#include <numeric>

#include "mining/mined_set_io.h"
#include "util/macros.h"
#include "util/stopwatch.h"

namespace metaprox {

SearchEngine::SearchEngine(const Graph& graph, EngineOptions options)
    : graph_(graph),
      options_(options),
      matcher_(CreateMatcher(options.matcher)) {}

void SearchEngine::Mine() {
  util::Stopwatch timer;
  metagraphs_ = MineMetagraphs(graph_, options_.miner, &mining_stats_);
  timings_.mine_seconds = timer.ElapsedSeconds();
  index_ = std::make_unique<MetagraphVectorIndex>(
      metagraphs_.size(), graph_.num_nodes(), options_.transform);
}

void SearchEngine::MatchAll() {
  MX_CHECK_MSG(index_ != nullptr, "Mine() must run before MatchAll()");
  std::vector<uint32_t> all(metagraphs_.size());
  std::iota(all.begin(), all.end(), 0);
  MatchSubset(all);
  FinalizeIndex();
}

void SearchEngine::MatchSubset(std::span<const uint32_t> indices) {
  MX_CHECK_MSG(index_ != nullptr, "Mine() must run before MatchSubset()");
  util::Stopwatch timer;
  for (uint32_t i : indices) {
    MX_CHECK(i < metagraphs_.size());
    if (index_->IsCommitted(i)) continue;
    const MinedMetagraph& mined = metagraphs_[i];
    SymPairCountingSink sink(mined.symmetry, options_.embedding_cap);
    matcher_->Match(graph_, mined.graph, &sink);
    index_->Commit(i, sink, mined.symmetry.aut_size());
  }
  last_subset_seconds_ = timer.ElapsedSeconds();
  timings_.match_seconds += last_subset_seconds_;
}

void SearchEngine::FinalizeIndex() {
  MX_CHECK(index_ != nullptr);
  index_->Finalize();
}

MgpModel SearchEngine::Train(std::span<const Example> examples,
                             const TrainOptions& options) const {
  MX_CHECK(index_ != nullptr);
  TrainResult result = TrainMgp(*index_, examples, options);
  return MgpModel{std::move(result.weights)};
}

DualStageResult SearchEngine::TrainDualStage(
    std::span<const Example> examples, const DualStageOptions& options,
    StructuralSimilarityCache* ss_cache) {
  MX_CHECK(index_ != nullptr);
  return metaprox::TrainDualStage(
      metagraphs_, *index_, examples, options,
      [this](std::span<const uint32_t> indices) { MatchSubset(indices); },
      ss_cache);
}

std::vector<std::pair<NodeId, double>> SearchEngine::Query(
    const MgpModel& model, NodeId q, size_t k) const {
  MX_CHECK(index_ != nullptr);
  return RankByProximity(*index_, model.weights, q, index_->Candidates(q), k);
}

double SearchEngine::Proximity(const MgpModel& model, NodeId x,
                               NodeId y) const {
  MX_CHECK(index_ != nullptr);
  return MgpProximity(*index_, model.weights, x, y);
}

util::Status SearchEngine::SaveOffline(const std::string& path_prefix) const {
  MX_CHECK_MSG(index_ != nullptr, "nothing to save before Mine()");
  {
    std::ofstream out(path_prefix + ".metagraphs");
    if (!out) return util::Status::IoError("cannot write metagraph set");
    MX_RETURN_IF_ERROR(WriteMinedMetagraphs(metagraphs_, out));
  }
  {
    std::ofstream out(path_prefix + ".index");
    if (!out) return util::Status::IoError("cannot write index");
    MX_RETURN_IF_ERROR(index_->WriteTo(out));
  }
  return util::Status::Ok();
}

util::Status SearchEngine::LoadOffline(const std::string& path_prefix) {
  std::ifstream mg_in(path_prefix + ".metagraphs");
  if (!mg_in) return util::Status::IoError("cannot read metagraph set");
  auto mined = ReadMinedMetagraphs(mg_in);
  if (!mined.ok()) return mined.status();

  std::ifstream idx_in(path_prefix + ".index");
  if (!idx_in) return util::Status::IoError("cannot read index");
  auto index = MetagraphVectorIndex::ReadFrom(idx_in);
  if (!index.ok()) return index.status();
  if (index->num_metagraphs() != mined->size()) {
    return util::Status::InvalidArgument(
        "index/metagraph-set cardinality mismatch");
  }

  metagraphs_ = std::move(*mined);
  index_ = std::make_unique<MetagraphVectorIndex>(std::move(*index));
  return util::Status::Ok();
}

}  // namespace metaprox
