#include "core/engine.h"

#include <algorithm>
#include <fstream>
#include <future>
#include <numeric>
#include <utility>

#include "mining/mined_set_io.h"
#include "util/macros.h"
#include "util/stopwatch.h"

namespace metaprox {

SearchEngine::SearchEngine(const Graph& graph, EngineOptions options)
    : graph_(graph),
      options_(options),
      matcher_(CreateMatcher(options.matcher)) {}

void SearchEngine::Mine() {
  util::Stopwatch timer;
  const size_t workers = util::ResolveNumThreads(options_.num_threads);
  metagraphs_ = MineMetagraphs(graph_, options_.miner, &mining_stats_,
                               workers > 1 ? &Pool(workers) : nullptr);
  timings_.mine_seconds = timer.ElapsedSeconds();
  // Auto shard count: a few shards per worker keeps commit contention
  // low; a serial build gets 1 (no locks worth splitting). The value
  // never changes the finalized index bytes.
  const size_t shards =
      options_.num_shards != 0
          ? options_.num_shards
          : (workers > 1 ? std::min<size_t>(4 * workers, 64) : 1);
  index_ = std::make_shared<MetagraphVectorIndex>(
      metagraphs_.size(), graph_.num_nodes(), options_.transform, shards);
  snapshot_ = nullptr;  // a new build starts a new snapshot lineage
  match_stats_.assign(metagraphs_.size(), MetagraphMatchStats{});
}

void SearchEngine::MatchAll() {
  MX_CHECK_MSG(index_ != nullptr, "Mine() must run before MatchAll()");
  std::vector<uint32_t> all(metagraphs_.size());
  std::iota(all.begin(), all.end(), 0);
  MatchSubset(all);
  FinalizeIndex();
}

// Everything one matching task produces; built and committed on the same
// worker thread (the sink dies as soon as its counts are in the index).
struct SearchEngine::MatchTaskResult {
  std::unique_ptr<SymPairCountingSink> sink;
  MatchStats stats;
  double seconds = 0.0;
};

SearchEngine::MatchTaskResult SearchEngine::RunMatchTask(
    uint32_t metagraph_index) const {
  // Reads only immutable state (graph_, metagraphs_, options_) and the
  // stateless matcher, so concurrent tasks need no synchronization.
  util::Stopwatch timer;
  MatchTaskResult result;
  const MinedMetagraph& mined = metagraphs_[metagraph_index];
  result.sink = std::make_unique<SymPairCountingSink>(mined.symmetry,
                                                      options_.embedding_cap);
  result.stats = matcher_->Match(graph_, mined.graph, result.sink.get());
  result.seconds = timer.ElapsedSeconds();
  return result;
}

void SearchEngine::CommitMatchTask(uint32_t metagraph_index,
                                   MatchTaskResult result) {
  index_->Commit(metagraph_index, *result.sink,
                 metagraphs_[metagraph_index].symmetry.aut_size());
  MetagraphMatchStats& record = match_stats_[metagraph_index];
  record.matched = true;
  record.embeddings = result.sink->num_embeddings();
  record.search_nodes = result.stats.search_nodes;
  record.saturated = result.sink->saturated();
  record.seconds = result.seconds;
}

util::ThreadPool& SearchEngine::Pool(size_t num_threads) {
  if (pool_ == nullptr) pool_ = std::make_unique<util::ThreadPool>(num_threads);
  return *pool_;
}

void SearchEngine::MatchSubset(std::span<const uint32_t> indices) {
  MX_CHECK_MSG(index_ != nullptr, "Mine() must run before MatchSubset()");
  util::Stopwatch timer;

  // Drop already-committed metagraphs and duplicates; order ascending so
  // the serial path commits in metagraph-index (= canonical row) order.
  std::vector<uint32_t> todo;
  todo.reserve(indices.size());
  for (uint32_t i : indices) {
    MX_CHECK(i < metagraphs_.size());
    if (!index_->IsCommitted(i)) todo.push_back(i);
  }
  std::sort(todo.begin(), todo.end());
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
  if (todo.empty()) {  // nothing committed: skip the Seal() scan
    timings_.match_seconds += timer.ElapsedSeconds();
    return;
  }

  const size_t workers = util::ResolveNumThreads(options_.num_threads);
  if (workers <= 1 || todo.size() <= 1) {
    for (uint32_t i : todo) CommitMatchTask(i, RunMatchTask(i));
  } else {
    // Each task matches AND commits on its worker: the sharded index takes
    // concurrent Commits (per-shard locking), so there is no serial commit
    // funnel and no backlog of completed-but-uncommitted sinks. Seal()
    // below erases the (nondeterministic) commit-arrival order.
    util::ThreadPool& pool = Pool(workers);
    std::vector<std::future<void>> futures;
    futures.reserve(todo.size());
    for (uint32_t i : todo) {
      futures.push_back(
          pool.Submit([this, i] { CommitMatchTask(i, RunMatchTask(i)); }));
    }
    // Wait for every task before get() can rethrow: tasks mutate the
    // index, so none may still be running once MatchSubset unwinds.
    for (auto& f : futures) f.wait();
    for (auto& f : futures) f.get();
  }
  index_->Seal();

  timings_.match_seconds += timer.ElapsedSeconds();
}

void SearchEngine::FinalizeIndex() {
  MX_CHECK(index_ != nullptr);
  util::Stopwatch timer;
  index_->Finalize();
  timings_.finalize_seconds += timer.ElapsedSeconds();
  PublishSnapshot();
}

void SearchEngine::PublishSnapshot() {
  // The engine's graph is a caller-owned reference, so the snapshot holds
  // a non-owning alias; see Snapshot()'s lifetime note. The mined set is
  // copied: it is small, and the snapshot must not see later re-mines.
  snapshot_ = std::make_shared<IndexSnapshot>(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &graph_),
      std::make_shared<std::vector<MinedMetagraph>>(metagraphs_), index_,
      /*generation=*/1);
}

MgpModel SearchEngine::Train(std::span<const Example> examples,
                             const TrainOptions& options) const {
  MX_CHECK(index_ != nullptr);
  TrainResult result = TrainMgp(*index_, examples, options);
  return MgpModel{std::move(result.weights)};
}

DualStageResult SearchEngine::TrainDualStage(
    std::span<const Example> examples, const DualStageOptions& options,
    StructuralSimilarityCache* ss_cache) {
  MX_CHECK(index_ != nullptr);
  return metaprox::TrainDualStage(
      metagraphs_, *index_, examples, options,
      [this](std::span<const uint32_t> indices) { MatchSubset(indices); },
      ss_cache);
}

std::vector<std::pair<NodeId, double>> SearchEngine::Query(
    const MgpModel& model, NodeId q, size_t k) const {
  MX_CHECK_MSG(snapshot_ != nullptr, "Query() needs a finalized index");
  return snapshot_->Query(model, q, k);
}

std::vector<std::vector<std::pair<NodeId, double>>> SearchEngine::BatchQuery(
    const MgpModel& model, std::span<const NodeId> queries, size_t k) {
  MX_CHECK_MSG(snapshot_ != nullptr, "BatchQuery() needs a finalized index");
  const size_t workers = util::ResolveNumThreads(options_.num_threads);
  util::ThreadPool* pool =
      (workers > 1 && queries.size() > 1) ? &Pool(workers) : nullptr;
  return snapshot_->BatchQuery(model, queries, k, pool, &batch_scratch_);
}

std::vector<std::vector<std::pair<NodeId, double>>>
SearchEngine::BatchQueryMulti(std::span<const std::span<const double>> models,
                              std::span<const NodeId> queries,
                              std::span<const uint32_t> model_of, size_t k,
                              BatchMultiStats* stats) {
  MX_CHECK_MSG(snapshot_ != nullptr,
               "BatchQueryMulti() needs a finalized index");
  const size_t workers = util::ResolveNumThreads(options_.num_threads);
  util::ThreadPool* pool =
      (workers > 1 && queries.size() > 1) ? &Pool(workers) : nullptr;
  return snapshot_->BatchQueryMulti(models, queries, model_of, k, pool,
                                    &batch_scratch_, stats);
}

double SearchEngine::Proximity(const MgpModel& model, NodeId x,
                               NodeId y) const {
  MX_CHECK(index_ != nullptr);
  return MgpProximity(*index_, model.weights, x, y);
}

util::Status SearchEngine::SaveOffline(const std::string& path_prefix,
                                       const ArtifactOptions& options) const {
  MX_CHECK_MSG(index_ != nullptr, "nothing to save before Mine()");
  {
    std::ofstream out(path_prefix + ".metagraphs");
    if (!out) return util::Status::IoError("cannot write metagraph set");
    MX_RETURN_IF_ERROR(WriteMinedMetagraphs(metagraphs_, out));
  }
  {
    std::ofstream out(path_prefix + ".index", std::ios::binary);
    if (!out) return util::Status::IoError("cannot write index");
    MX_RETURN_IF_ERROR(options.format == util::ArtifactFormat::kBinary
                           ? index_->WriteBinaryTo(out, options.layout)
                           : index_->WriteTo(out));
  }
  return util::Status::Ok();
}

util::Status SearchEngine::LoadOffline(const std::string& path_prefix,
                                       const ArtifactOptions& options) {
  std::ifstream mg_in(path_prefix + ".metagraphs");
  if (!mg_in) return util::Status::IoError("cannot read metagraph set");
  auto mined = ReadMinedMetagraphs(mg_in);
  if (!mined.ok()) return mined.status();

  auto index = MetagraphVectorIndex::LoadFromFile(path_prefix + ".index",
                                                  options.load_options());
  if (!index.ok()) return index.status();
  if (index->num_metagraphs() != mined->size()) {
    return util::Status::InvalidArgument(
        "index/metagraph-set cardinality mismatch");
  }
  if (index->num_graph_nodes() != graph_.num_nodes()) {
    return util::Status::InvalidArgument(
        "index built over " + std::to_string(index->num_graph_nodes()) +
        " nodes but the engine's graph has " +
        std::to_string(graph_.num_nodes()));
  }

  metagraphs_ = std::move(*mined);
  index_ = std::make_shared<MetagraphVectorIndex>(std::move(*index));
  // The artifacts carry no per-task stats; anything matched later (e.g. an
  // uncommitted remainder) records fresh entries.
  match_stats_.assign(metagraphs_.size(), MetagraphMatchStats{});
  PublishSnapshot();
  return util::Status::Ok();
}

util::Status SearchEngine::SaveOffline(const std::string& path_prefix,
                                       util::ArtifactFormat format,
                                       BinaryLayout layout) const {
  ArtifactOptions options;
  options.format = format;
  options.layout = layout;
  return SaveOffline(path_prefix, options);
}

util::Status SearchEngine::LoadOffline(const std::string& path_prefix,
                                       const IndexLoadOptions& options) {
  ArtifactOptions artifact_options;
  artifact_options.use_mmap = options.use_mmap;
  artifact_options.verify_checksums = options.verify_checksums;
  return LoadOffline(path_prefix, artifact_options);
}

}  // namespace metaprox
