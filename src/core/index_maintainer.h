// IndexMaintainer: the write side of the incremental-maintenance split.
//
// SearchEngine builds the offline state; IndexSnapshot is the immutable
// generation the online phase pins; IndexMaintainer sits between them. It
// buffers graph appends (GraphDelta), and on Refresh():
//
//   1. applies the delta (ApplyDelta — the grown graph is bit-identical
//      to a from-scratch build of the same content),
//   2. computes the AFFECTED metagraphs: appends only ever create new
//      instances through a new edge, and an instance of M_i can use a new
//      edge only if some edge of M_i has the same unordered endpoint-type
//      pair — every other metagraph's counts are provably unchanged,
//   3. seeds a fresh build-state index with the unaffected rows
//      (MetagraphVectorIndex::CloneForRefresh), refreshes ONLY the
//      affected metagraphs against the grown graph, and commits them into
//      the sharded index concurrently (the one place the
//      one-commit-per-metagraph contract relaxes),
//   4. publishes the result as a new IndexSnapshot generation.
//
// Step 3 is incremental by default: the maintainer keeps a per-metagraph
// LEDGER of raw (pre-|Aut|-division) counts, and an affected metagraph
// with a valid ledger is refreshed by delta-rooted enumeration
// (matching/delta_match.h) — only the embeddings using at least one
// appended edge are enumerated, and the merged raw counts
// (old + delta, plain uint64 addition) are committed. Cost scales with
// the delta, not the graph. A metagraph without a valid ledger (first
// refresh after construction, a disconnected/trivial metagraph, or one
// whose embedding count reached the cap) takes a full re-match, which
// also captures its ledger for the next refresh.
//
// The refreshed index — and its serialization — is byte-identical to a
// from-scratch rebuild that re-matched EVERY committed metagraph against
// the grown graph (bench_incremental gates on this at every refresh
// point). The mined metagraph set is fixed across refreshes: re-mining is
// a rebuild, not a refresh.
//
// Thread-safety: snapshot() is safe from any thread at any time (it is
// how the query server pins a generation). The mutating methods
// (AppendNode/AppendEdge/Append/Refresh) are single-writer: one thread —
// e.g. the server's admin worker — at a time.
#ifndef METAPROX_CORE_INDEX_MAINTAINER_H_
#define METAPROX_CORE_INDEX_MAINTAINER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/index_snapshot.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "index/metagraph_vectors.h"
#include "matching/matcher.h"
#include "mining/miner.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace metaprox {

class SearchEngine;

struct MaintainerOptions {
  /// Matching kernel for refresh re-matches. Use the kernel the base index
  /// was built with, or refreshed counts may differ from the base ones for
  /// saturated metagraphs.
  MatcherKind matcher = MatcherKind::kSymISO;
  /// Embedding cap per re-matched metagraph (see EngineOptions).
  uint64_t embedding_cap = 3'000'000;
  /// Worker threads for re-matching. 0 = hardware concurrency; 1 = serial.
  unsigned num_threads = 1;
  /// Build-time shards of the refreshed index. 0 = auto (scales with
  /// num_threads). Never affects the published index bytes.
  size_t num_shards = 0;
  /// Refresh affected metagraphs by delta-rooted enumeration against the
  /// raw-count ledgers instead of full re-matching wherever that is
  /// provably byte-identical (see the file comment). Off = every affected
  /// metagraph is fully re-matched each refresh (debug / A-B baseline;
  /// bench_incremental's "rebuild" arm measures the same work).
  bool incremental = true;
};

/// Counters of one Refresh() call.
struct RefreshStats {
  size_t appended_nodes = 0;
  size_t appended_edges = 0;
  /// Committed metagraphs whose candidate regions the delta touched (the
  /// re-matched set).
  size_t affected_metagraphs = 0;
  /// Of the affected ones, how many were refreshed via the delta-rooted
  /// ledger path (the rest took a full re-match).
  size_t delta_metagraphs = 0;
  double rematch_seconds = 0.0;
  double total_seconds = 0.0;
};

class IndexMaintainer {
 public:
  /// Takes over a built engine's offline state: copies the graph and
  /// mined set into owned shared state and shares the finalized index.
  /// The engine remains usable (its reads keep serving its own snapshot).
  explicit IndexMaintainer(const SearchEngine& engine,
                           MaintainerOptions options = {});

  /// Assembles a maintainer from parts (e.g. artifacts loaded off disk).
  IndexMaintainer(std::shared_ptr<const Graph> graph,
                  std::shared_ptr<const std::vector<MinedMetagraph>> metagraphs,
                  std::shared_ptr<const MetagraphVectorIndex> index,
                  MaintainerOptions options = {});

  /// The current published generation. Thread-safe; callers pin it for as
  /// long as they read through it.
  std::shared_ptr<const IndexSnapshot> snapshot() const MX_EXCLUDES(mu_);

  /// Nodes in the current graph plus buffered appends — the id the next
  /// AppendNode() returns.
  size_t num_nodes() const { return graph_->num_nodes() + pending_.nodes.size(); }
  size_t pending_nodes() const { return pending_.nodes.size(); }
  size_t pending_edges() const { return pending_.edges.size(); }

  /// Buffers one appended node; returns the id it will have once a
  /// Refresh() publishes it. Unknown type names are interned on refresh.
  NodeId AppendNode(const std::string& type_name, std::string name = "");

  /// Buffers one appended undirected edge. Endpoints may be existing or
  /// buffered nodes; self-loops and out-of-range ids are structured
  /// errors. Duplicates of existing edges are legal no-ops (deduplicated
  /// on refresh, like GraphBuilder).
  util::Status AppendEdge(NodeId u, NodeId v);

  /// Buffers a whole delta. It must be primed at num_nodes() — i.e. built
  /// against the current graph plus anything already buffered.
  util::Status Append(const GraphDelta& delta);

  /// Applies the buffered appends and publishes a new snapshot generation
  /// (also returned). With no buffered appends this still republishes —
  /// the result is an identical index one generation later. On error the
  /// buffered appends are kept and the published snapshot is unchanged.
  util::StatusOr<std::shared_ptr<const IndexSnapshot>> Refresh(
      RefreshStats* stats = nullptr) MX_EXCLUDES(mu_);

  /// The metagraphs of `metagraphs` whose instance sets can grow under
  /// `delta` against `graph`: those with an edge whose unordered
  /// endpoint-type pair matches some delta edge's. Sorted ascending.
  /// Exposed for tests and bench_incremental; Refresh() further drops the
  /// uncommitted ones.
  static std::vector<uint32_t> AffectedMetagraphs(
      const Graph& graph, const std::vector<MinedMetagraph>& metagraphs,
      const GraphDelta& delta);

  const MaintainerOptions& options() const { return options_; }

 private:
  /// Raw (pre-|Aut|-division) counts of one metagraph's full embedding
  /// set against the CURRENT graph — the base the delta path adds onto.
  /// `valid` only when the counts are complete (not cap-truncated) and
  /// the metagraph is delta-enumerable (connected, >= 2 nodes).
  struct RawCounts {
    std::unordered_map<uint64_t, uint64_t> pair_counts;
    std::unordered_map<NodeId, uint64_t> node_counts;
    uint64_t num_embeddings = 0;
    bool valid = false;
  };

  util::ThreadPool* Pool();

  MaintainerOptions options_;
  std::unique_ptr<Matcher> matcher_;
  std::unique_ptr<util::ThreadPool> pool_;  // lazy; refresh re-matching

  // Writer-side state (single mutator thread).
  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const std::vector<MinedMetagraph>> metagraphs_;
  std::shared_ptr<const MetagraphVectorIndex> index_;
  GraphDelta pending_;
  // Indexed like metagraphs_. Refresh workers touch disjoint entries, so
  // no lock; stays in lockstep with index_ (SWAPINDEX publishes around
  // the maintainer and never disturbs this lineage).
  std::vector<RawCounts> ledger_;
  uint64_t generation_ = 1;

  // The ONLY cross-thread state: everything above is single-writer (see
  // the file comment); snapshot_ is read by any thread via snapshot().
  mutable mx::Mutex mu_;
  std::shared_ptr<const IndexSnapshot> snapshot_ MX_GUARDED_BY(mu_);
};

}  // namespace metaprox

#endif  // METAPROX_CORE_INDEX_MAINTAINER_H_
