// IndexSnapshot: one immutable, shareable generation of the servable
// state — graph + mined metagraph set + finalized vector index.
//
// The snapshot is the unit the online phase pins: every read path (Query /
// BatchQuery / BatchQueryMulti, whether called through SearchEngine, the
// query server's batcher, or a bench) holds a shared_ptr<const
// IndexSnapshot> for the duration of the call, so an IndexMaintainer can
// publish a refreshed generation at any moment without invalidating
// in-flight work — the same RCU discipline server::ModelRegistry applies
// to models. A snapshot is deeply immutable after construction; all
// methods are const and safe from any number of threads.
#ifndef METAPROX_CORE_INDEX_SNAPSHOT_H_
#define METAPROX_CORE_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/query_batch.h"
#include "graph/graph.h"
#include "index/metagraph_vectors.h"
#include "learning/proximity.h"
#include "mining/miner.h"
#include "util/thread_pool.h"

namespace metaprox {

class IndexSnapshot {
 public:
  /// All three components are shared: a snapshot may alias its
  /// predecessor's metagraph set (the mined set is fixed across refreshes)
  /// or a caller-owned graph. The index must be finalized.
  IndexSnapshot(std::shared_ptr<const Graph> graph,
                std::shared_ptr<const std::vector<MinedMetagraph>> metagraphs,
                std::shared_ptr<const MetagraphVectorIndex> index,
                uint64_t generation);

  const Graph& graph() const { return *graph_; }
  const std::vector<MinedMetagraph>& metagraphs() const { return *metagraphs_; }
  const MetagraphVectorIndex& index() const { return *index_; }
  /// Monotonically increasing per maintainer lineage; the base build is 1.
  uint64_t generation() const { return generation_; }

  /// The shared handles, for building a successor snapshot that aliases
  /// unchanged components (e.g. SWAPINDEX reuses the live graph).
  const std::shared_ptr<const Graph>& shared_graph() const { return graph_; }
  const std::shared_ptr<const std::vector<MinedMetagraph>>& shared_metagraphs()
      const {
    return metagraphs_;
  }
  const std::shared_ptr<const MetagraphVectorIndex>& shared_index() const {
    return index_;
  }

  /// Online phase: top-k nodes by pi(q, .; w). Same contract as
  /// SearchEngine::Query (which now routes through its snapshot).
  QueryResult Query(const MgpModel& model, NodeId q, size_t k) const;

  /// Batched online phase. Unlike the engine methods, pool and scratch are
  /// caller-owned arguments — the snapshot itself holds no mutable state,
  /// which is what makes it shareable. Results are bitwise identical to
  /// per-query Query() for any pool/scratch (see BatchRankByProximity).
  std::vector<QueryResult> BatchQuery(const MgpModel& model,
                                      std::span<const NodeId> queries, size_t k,
                                      util::ThreadPool* pool = nullptr,
                                      BatchScratch* scratch = nullptr) const;

  /// Shared-window, multi-model batch (see BatchRankByProximityMulti).
  std::vector<QueryResult> BatchQueryMulti(
      std::span<const std::span<const double>> models,
      std::span<const NodeId> queries, std::span<const uint32_t> model_of,
      size_t k, util::ThreadPool* pool = nullptr,
      BatchScratch* scratch = nullptr, BatchMultiStats* stats = nullptr) const;

  /// Proximity between two specific nodes.
  double Proximity(const MgpModel& model, NodeId x, NodeId y) const;

 private:
  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const std::vector<MinedMetagraph>> metagraphs_;
  std::shared_ptr<const MetagraphVectorIndex> index_;
  uint64_t generation_;
};

}  // namespace metaprox

#endif  // METAPROX_CORE_INDEX_SNAPSHOT_H_
