// Score kernels: the dot-product inner loops of the online phase.
//
// Everything the online phase computes — pi(x, y; w) = 2 (m_xy . w) /
// (m_x . w + m_y . w) — bottoms out in "sparse count row . dense weight
// vector" dots over (metagraph index, raw count) entries, with the index's
// count transform (raw or log1p) applied per entry. This header is the ONE
// implementation of that dot: per-query Query(), the batched path
// (core/query_batch), and the shared-window multi-model path all route
// through RowDot/RowDotMulti, so "batched == per-query, bitwise" reduces
// to a property of a single function per build.
//
// Canonical accumulation semantics (every kernel, scalar or SIMD, single
// or multi-weight, implements exactly this):
//
//   entry e of the row accumulates into lane (e & 3):
//       lane[e & 3] = fma(w[index_e], transform(count_e), lane[e & 3])
//   and the four lanes reduce as (lane0 + lane1) + (lane2 + lane3).
//
// Why this exact shape:
//   * fma (std::fma and the AVX2 vfmadd instruction alike) is correctly
//     rounded, so a scalar lane and a SIMD lane produce the SAME bits —
//     the scalar fallback and the AVX2 kernels are bitwise-interchangeable
//     on every input, which is what lets runtime dispatch (and the
//     METAPROX_FORCE_SCALAR_KERNELS override) never change a result;
//   * four independent chains give SIMD a full 256-bit register of
//     doubles and give scalar code instruction-level parallelism, instead
//     of one serial dependency chain;
//   * explicit fma sidesteps -ffp-contract: there is no mul+add the
//     compiler could (or could fail to) contract differently per target.
//
// The multi-weight kernel scores ONE row under N weight vectors in one
// walk, reading an interleaved weight matrix W[i * N + m]: the row's
// entries — and each entry's transform, the log1p that dominates the
// single-weight cost — are touched once, so the marginal cost of an extra
// model is one fma per entry. Per model, the accumulation order is
// identical to the single-weight kernel: RowDotMulti(row, W)[m] ==
// RowDot(row, w_m) bitwise.
//
// This file is a leaf: it depends only on util/ and the standard library
// (the index layer includes it from its .cc, below-core layering
// notwithstanding — see docs/ARCHITECTURE.md).
#ifndef METAPROX_CORE_SCORE_KERNELS_H_
#define METAPROX_CORE_SCORE_KERNELS_H_

#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/macros.h"

namespace metaprox::kernels {

/// One sparse row entry: (metagraph index, raw count). Layout-identical to
/// the index's row storage, so index rows are passed as spans with no
/// copy; the SIMD kernels load entries directly from memory.
using RowEntry = std::pair<uint32_t, float>;
static_assert(sizeof(RowEntry) == 8 && alignof(RowEntry) == 4 &&
                  std::is_trivially_destructible_v<RowEntry>,
              "SIMD kernels load RowEntry pairs straight from memory: "
              "(index, count) must be two packed 32-bit members");

/// Per-entry count transform, mirroring the index's CountTransform (the
/// index maps its enum onto this one; kernels stays a leaf).
enum class RowTransform { kRaw, kLog1p };

/// Which kernel family serves RowDot/RowDotMulti in this process.
/// Resolved once, at first use: AVX2+FMA when the CPU has both and
/// METAPROX_FORCE_SCALAR_KERNELS is unset/empty/"0", scalar otherwise.
/// (Read once per process: flipping the env var after the first dot has
/// no effect — kernel choice is a process-lifetime property.)
enum class KernelKind { kScalar, kAvx2Fma };
KernelKind ActiveKernel();
const char* KernelName(KernelKind kind);

/// row . weights under the canonical semantics, via the dispatched kernel.
/// `weights` must cover every index the row mentions.
double RowDot(std::span<const RowEntry> row, std::span<const double> weights,
              RowTransform transform);

/// The scalar reference implementation — the single source of truth the
/// SIMD kernels are held bitwise-equal to (kernel tests and bench_micro
/// compare against it explicitly).
double RowDotScalar(std::span<const RowEntry> row,
                    std::span<const double> weights, RowTransform transform);

/// N weight vectors interleaved by metagraph index for the multi-weight
/// kernels: data[i * num_models + m] is metagraph i's weight under model
/// m, so one row entry reads its N weights from one contiguous run.
class MultiWeightSet {
 public:
  /// Rebuilds the matrix from `models` (all spans must have equal length).
  /// Reusable: a long-lived caller may Assign per batch without
  /// reallocating when the shape repeats.
  void Assign(std::span<const std::span<const double>> models) {
    MX_CHECK(!models.empty());
    num_models_ = models.size();
    num_weights_ = models[0].size();
    data_.resize(num_models_ * num_weights_);
    for (size_t m = 0; m < num_models_; ++m) {
      MX_CHECK(models[m].size() == num_weights_);
      for (size_t i = 0; i < num_weights_; ++i) {
        data_[i * num_models_ + m] = models[m][i];
      }
    }
  }

  size_t num_models() const { return num_models_; }
  size_t num_weights() const { return num_weights_; }
  const double* row(uint32_t index) const {
    return data_.data() + static_cast<size_t>(index) * num_models_;
  }
  /// Doubles of caller-provided lane scratch RowDotMulti needs: one
  /// accumulator per (lane, model).
  size_t lane_scratch_size() const { return 4 * num_models_; }

 private:
  std::vector<double> data_;
  size_t num_models_ = 0;
  size_t num_weights_ = 0;
};

/// Writes row . w_m into out[m] for every model of `weights`, walking the
/// row (and computing each entry's transform) once. `out` holds
/// weights.num_models() doubles; `lanes` is caller scratch of at least
/// weights.lane_scratch_size() doubles (scratch so the hot path never
/// allocates; one per worker thread, reused across rows). Bitwise
/// contract: out[m] == RowDot(row, w_m, transform) for every m, under
/// either kernel.
void RowDotMulti(std::span<const RowEntry> row, const MultiWeightSet& weights,
                 RowTransform transform, double* out, double* lanes);

/// Scalar reference for RowDotMulti (same contract, forced scalar).
void RowDotMultiScalar(std::span<const RowEntry> row,
                       const MultiWeightSet& weights, RowTransform transform,
                       double* out, double* lanes);

}  // namespace metaprox::kernels

#endif  // METAPROX_CORE_SCORE_KERNELS_H_
