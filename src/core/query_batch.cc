#include "core/query_batch.h"

#include <algorithm>
#include <cstdint>

#include "core/score_kernels.h"
#include "learning/proximity.h"
#include "util/macros.h"
#include "util/parallel_for.h"

namespace metaprox {
namespace {

// Scores one query against its candidate postings, reading every m_x . w
// from the batch-wide cache and every pair row through its finalized slot.
// The arithmetic mirrors RankByProximity term for term (same accumulation
// order inside each dot, same guards, same ranking order), which is what
// makes the batched results bitwise-identical to the sequential path.
QueryResult ScoreOne(const MetagraphVectorIndex& index,
                     std::span<const double> weights, NodeId q, size_t k,
                     const BatchScratch& scratch) {
  const std::span<const NodeId> candidates = index.Candidates(q);
  const std::span<const uint32_t> slots = index.CandidateSlots(q);
  QueryResult scored;
  scored.reserve(candidates.size());
  const double q_dot = scratch.NodeDot(q);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const NodeId y = candidates[i];
    if (y == q) continue;
    const double numer = 2.0 * index.SlotDot(slots[i], weights);
    if (numer <= 0.0) continue;
    const double denom = q_dot + scratch.NodeDot(y);
    if (denom <= 0.0) continue;
    scored.emplace_back(y, numer / denom);
  }
  const size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<int64_t>(take),
                    scored.end(), ProximityRankBefore);
  scored.resize(take);
  return scored;
}

}  // namespace

void BatchScratch::BeginBatch(size_t num_nodes, size_t num_models) {
  MX_CHECK(num_models >= 1);
  if (epoch_of_.size() != num_nodes) {
    // Different graph (or first use): full (re)allocation. Epoch restarts
    // at 1 with every mark at 0, so nothing from the old graph survives.
    epoch_of_.assign(num_nodes, 0);
    epoch_ = 0;
  }
  num_models_ = num_models;
  // The dot cache only ever grows (to the largest nodes x models layout
  // seen); stale contents need no zeroing — the epoch gates every read.
  if (node_dots_.size() < num_nodes * num_models_) {
    node_dots_.resize(num_nodes * num_models_);
  }
  ++epoch_;
  touched_high_water_ = std::max(touched_high_water_, touched_.size());
  touched_.clear();
  touched_.reserve(touched_high_water_);
}

std::vector<QueryResult> BatchRankByProximity(
    const MetagraphVectorIndex& index, std::span<const double> weights,
    std::span<const NodeId> queries, size_t k, util::ThreadPool* pool,
    BatchScratch* scratch) {
  std::vector<QueryResult> results(queries.size());
  if (queries.empty()) return results;

  const size_t num_nodes = index.num_graph_nodes();
  for (NodeId q : queries) MX_CHECK(q < num_nodes);

  // One-shot callers pay a fresh allocation here, exactly like the old
  // dense scratch; callers in a serving loop pass a long-lived scratch and
  // pay only for the rows this batch actually touches.
  BatchScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  scratch->BeginBatch(num_nodes);

  // Duplicate query nodes are scored once: collapse to a sorted unique set
  // (sorted so the scatter below can binary-search its way back).
  std::vector<NodeId> uniq(queries.begin(), queries.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

  // Every node row the batch will read — the queries plus all their
  // candidates — is marked once in the scratch, however many candidate
  // sets share it. Marking is epoch-based: a batch touching T rows costs
  // O(T), not O(|V|), no matter how large the graph.
  for (NodeId q : uniq) {
    scratch->MarkTouched(q);
    for (NodeId y : index.Candidates(q)) scratch->MarkTouched(y);
  }

  // Gather pass: each touched row's m_x . w exactly once, cached in the
  // scratch for O(1) reads while scoring. Chunks write disjoint entries
  // (the touched list is duplicate-free), so no synchronization.
  const std::span<const NodeId> nodes = scratch->touched();
  util::ParallelChunks(pool, nodes.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      scratch->SetNodeDot(nodes[i], index.NodeDot(nodes[i], weights));
    }
  });

  // Scoring pass: one independent top-k per unique query.
  std::vector<QueryResult> uniq_results(uniq.size());
  util::ParallelChunks(pool, uniq.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      uniq_results[i] = ScoreOne(index, weights, uniq[i], k, *scratch);
    }
  });

  // Scatter back into batch order; duplicates copy the shared result.
  for (size_t i = 0; i < queries.size(); ++i) {
    const size_t pos = static_cast<size_t>(
        std::lower_bound(uniq.begin(), uniq.end(), queries[i]) - uniq.begin());
    results[i] = uniq_results[pos];
  }
  return results;
}

std::vector<QueryResult> BatchRankByProximityMulti(
    const MetagraphVectorIndex& index,
    std::span<const std::span<const double>> models,
    std::span<const NodeId> queries, std::span<const uint32_t> model_of,
    size_t k, util::ThreadPool* pool, BatchScratch* scratch,
    BatchMultiStats* stats) {
  MX_CHECK(model_of.size() == queries.size());
  MX_CHECK(!models.empty());
  const size_t n_models = models.size();
  for (std::span<const double> w : models) {
    MX_CHECK(w.size() == index.num_metagraphs());
  }

  std::vector<QueryResult> results(queries.size());
  if (queries.empty()) {
    if (stats != nullptr) *stats = BatchMultiStats{};
    return results;
  }

  const size_t num_nodes = index.num_graph_nodes();
  for (size_t i = 0; i < queries.size(); ++i) {
    MX_CHECK(queries[i] < num_nodes);
    MX_CHECK(model_of[i] < n_models);
  }

  BatchScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;

  // Duplicates of a (query, model) pair share one scored result: collapse
  // to sorted unique pairs. Sorting by (node, model) also groups a node's
  // model memberships contiguously for the scoring pass, and keeps the
  // scatter a binary search.
  std::vector<std::pair<NodeId, uint32_t>> uniq;
  uniq.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    uniq.emplace_back(queries[i], model_of[i]);
  }
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

  // Unique query NODES (a node queried under several models still gathers
  // once); uniq is sorted by node first, so this falls out in order.
  std::vector<NodeId> qnodes;
  qnodes.reserve(uniq.size());
  for (const auto& [q, m] : uniq) {
    if (qnodes.empty() || qnodes.back() != q) qnodes.push_back(q);
  }

  // Optional what-if accounting: how many rows N independent per-model
  // BatchRankByProximity calls would have gathered for this same window.
  // Costs one extra marking walk per model, no dots — only taken when the
  // caller wants the counters.
  if (stats != nullptr) {
    *stats = BatchMultiStats{};
    for (uint32_t m = 0; m < n_models; ++m) {
      scratch->BeginBatch(num_nodes);
      for (const auto& [q, qm] : uniq) {
        if (qm != m) continue;
        scratch->MarkTouched(q);
        for (NodeId y : index.Candidates(q)) scratch->MarkTouched(y);
      }
      stats->rows_per_model += scratch->touched().size();
    }
  }

  // The shared window: mark the UNION of every query's touched rows, once.
  scratch->BeginBatch(num_nodes, n_models);
  for (NodeId q : qnodes) {
    scratch->MarkTouched(q);
    for (NodeId y : index.Candidates(q)) scratch->MarkTouched(y);
  }

  kernels::MultiWeightSet wset;
  wset.Assign(models);

  // Gather pass, all models at once: each touched row is walked (and its
  // count transform computed) exactly once, filling the row's n_models
  // cached dots through the multi-weight kernel.
  const std::span<const NodeId> nodes = scratch->touched();
  if (stats != nullptr) stats->rows_gathered = nodes.size();
  const kernels::RowTransform transform = index.row_transform();
  util::ParallelChunks(pool, nodes.size(), [&](size_t begin, size_t end) {
    std::vector<double> lanes(wset.lane_scratch_size());
    for (size_t i = begin; i < end; ++i) {
      kernels::RowDotMulti(index.NodeRow(nodes[i]), wset, transform,
                           scratch->MutableNodeDots(nodes[i]), lanes.data());
    }
  });

  // Pair rows between two query nodes of the window are read by both
  // endpoints' scorings: precompute those once for all models. Collected
  // from both directions and de-duplicated by slot, so a symmetric slot is
  // dotted exactly once however the index numbered it.
  std::vector<uint32_t> shared_slots;
  for (NodeId q : qnodes) {
    const std::span<const NodeId> candidates = index.Candidates(q);
    const std::span<const uint32_t> slots = index.CandidateSlots(q);
    for (size_t i = 0; i < candidates.size(); ++i) {
      const NodeId y = candidates[i];
      if (y == q) continue;
      if (std::binary_search(qnodes.begin(), qnodes.end(), y)) {
        shared_slots.push_back(slots[i]);
      }
    }
  }
  std::sort(shared_slots.begin(), shared_slots.end());
  shared_slots.erase(std::unique(shared_slots.begin(), shared_slots.end()),
                     shared_slots.end());
  if (stats != nullptr) stats->shared_pair_rows = shared_slots.size();

  std::vector<double> shared_dots(shared_slots.size() * n_models);
  util::ParallelChunks(pool, shared_slots.size(), [&](size_t begin,
                                                      size_t end) {
    std::vector<double> lanes(wset.lane_scratch_size());
    for (size_t i = begin; i < end; ++i) {
      kernels::RowDotMulti(index.PairRow(shared_slots[i]), wset, transform,
                           shared_dots.data() + i * n_models, lanes.data());
    }
  });

  // Offsets of each node's run of (node, model) members in uniq, with a
  // sentinel: group g (aligned with qnodes) spans
  // uniq[group_begin[g] .. group_begin[g + 1]).
  std::vector<size_t> group_begin;
  group_begin.reserve(qnodes.size() + 1);
  for (size_t i = 0; i < uniq.size(); ++i) {
    if (i == 0 || uniq[i].first != uniq[i - 1].first) group_begin.push_back(i);
  }
  group_begin.push_back(uniq.size());

  // Scoring pass: one group per query node, walking its candidate postings
  // ONCE for all member models. Each candidate's pair row yields its
  // n_models dots in one kernel call (or a precomputed shared-slot read),
  // then every member applies ScoreOne's exact guards and arithmetic under
  // its own model — so member (q, m)'s result is bitwise ScoreOne(q)
  // under weights m.
  std::vector<QueryResult> uniq_results(uniq.size());
  util::ParallelChunks(pool, qnodes.size(), [&](size_t begin, size_t end) {
    std::vector<double> lanes(wset.lane_scratch_size());
    std::vector<double> local_dots(n_models);
    for (size_t g = begin; g < end; ++g) {
      const NodeId q = qnodes[g];
      const size_t members_begin = group_begin[g];
      const size_t members_end = group_begin[g + 1];
      const size_t members = members_end - members_begin;
      const std::span<const NodeId> candidates = index.Candidates(q);
      const std::span<const uint32_t> slots = index.CandidateSlots(q);
      const double* q_dots = scratch->NodeDots(q);

      std::vector<QueryResult> scored(members);
      for (QueryResult& s : scored) s.reserve(candidates.size());

      for (size_t i = 0; i < candidates.size(); ++i) {
        const NodeId y = candidates[i];
        if (y == q) continue;
        const double* pair_dots;
        const auto it = std::lower_bound(shared_slots.begin(),
                                         shared_slots.end(), slots[i]);
        if (it != shared_slots.end() && *it == slots[i]) {
          pair_dots = shared_dots.data() +
                      static_cast<size_t>(it - shared_slots.begin()) * n_models;
        } else {
          kernels::RowDotMulti(index.PairRow(slots[i]), wset, transform,
                               local_dots.data(), lanes.data());
          pair_dots = local_dots.data();
        }
        const double* y_dots = scratch->NodeDots(y);
        for (size_t j = 0; j < members; ++j) {
          const uint32_t m = uniq[members_begin + j].second;
          const double numer = 2.0 * pair_dots[m];
          if (numer <= 0.0) continue;
          const double denom = q_dots[m] + y_dots[m];
          if (denom <= 0.0) continue;
          scored[j].emplace_back(y, numer / denom);
        }
      }

      for (size_t j = 0; j < members; ++j) {
        QueryResult& s = scored[j];
        const size_t take = std::min(k, s.size());
        std::partial_sort(s.begin(), s.begin() + static_cast<int64_t>(take),
                          s.end(), ProximityRankBefore);
        s.resize(take);
        uniq_results[members_begin + j] = std::move(s);
      }
    }
  });

  // Scatter back into batch order; duplicates copy the shared result.
  for (size_t i = 0; i < queries.size(); ++i) {
    const std::pair<NodeId, uint32_t> key(queries[i], model_of[i]);
    const size_t pos = static_cast<size_t>(
        std::lower_bound(uniq.begin(), uniq.end(), key) - uniq.begin());
    results[i] = uniq_results[pos];
  }
  return results;
}

}  // namespace metaprox
