#include "core/query_batch.h"

#include <algorithm>
#include <cstdint>

#include "learning/proximity.h"
#include "util/macros.h"
#include "util/parallel_for.h"

namespace metaprox {
namespace {

// Scores one query against its candidate postings, reading every m_x . w
// from the batch-wide cache and every pair row through its finalized slot.
// The arithmetic mirrors RankByProximity term for term (same accumulation
// order inside each dot, same guards, same ranking order), which is what
// makes the batched results bitwise-identical to the sequential path.
QueryResult ScoreOne(const MetagraphVectorIndex& index,
                     std::span<const double> weights, NodeId q, size_t k,
                     std::span<const double> node_dots) {
  const std::span<const NodeId> candidates = index.Candidates(q);
  const std::span<const uint32_t> slots = index.CandidateSlots(q);
  QueryResult scored;
  scored.reserve(candidates.size());
  const double q_dot = node_dots[q];
  for (size_t i = 0; i < candidates.size(); ++i) {
    const NodeId y = candidates[i];
    if (y == q) continue;
    const double numer = 2.0 * index.SlotDot(slots[i], weights);
    if (numer <= 0.0) continue;
    const double denom = q_dot + node_dots[y];
    if (denom <= 0.0) continue;
    scored.emplace_back(y, numer / denom);
  }
  const size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<int64_t>(take),
                    scored.end(), ProximityRankBefore);
  scored.resize(take);
  return scored;
}

}  // namespace

std::vector<QueryResult> BatchRankByProximity(
    const MetagraphVectorIndex& index, std::span<const double> weights,
    std::span<const NodeId> queries, size_t k, util::ThreadPool* pool) {
  std::vector<QueryResult> results(queries.size());
  if (queries.empty()) return results;

  const size_t num_nodes = index.num_graph_nodes();
  for (NodeId q : queries) MX_CHECK(q < num_nodes);

  // Duplicate query nodes are scored once: collapse to a sorted unique set
  // (sorted so the scatter below can binary-search its way back).
  std::vector<NodeId> uniq(queries.begin(), queries.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

  // Every node row the batch will read — the queries plus all their
  // candidates — listed once, however many candidate sets share it. The
  // dedup mask and the dot table below are dense O(|V|) scratch: the right
  // trade for graphs whose candidate sets cover a sizable node fraction;
  // a multi-million-node graph serving tiny batches would want a sparse
  // (hash or epoch-marked) scratch instead — see the ROADMAP follow-on.
  std::vector<uint8_t> touched(num_nodes, 0);
  std::vector<NodeId> nodes;
  for (NodeId q : uniq) {
    if (!touched[q]) {
      touched[q] = 1;
      nodes.push_back(q);
    }
    for (NodeId y : index.Candidates(q)) {
      if (!touched[y]) {
        touched[y] = 1;
        nodes.push_back(y);
      }
    }
  }

  // Gather pass: each touched row's m_x . w exactly once, written into a
  // dense per-node table for O(1) reads while scoring. Chunks write
  // disjoint entries (the list is duplicate-free), so no synchronization.
  std::vector<double> node_dots(num_nodes, 0.0);
  util::ParallelChunks(pool, nodes.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      node_dots[nodes[i]] = index.NodeDot(nodes[i], weights);
    }
  });

  // Scoring pass: one independent top-k per unique query.
  std::vector<QueryResult> uniq_results(uniq.size());
  util::ParallelChunks(pool, uniq.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      uniq_results[i] = ScoreOne(index, weights, uniq[i], k, node_dots);
    }
  });

  // Scatter back into batch order; duplicates copy the shared result.
  for (size_t i = 0; i < queries.size(); ++i) {
    const size_t pos = static_cast<size_t>(
        std::lower_bound(uniq.begin(), uniq.end(), queries[i]) - uniq.begin());
    results[i] = uniq_results[pos];
  }
  return results;
}

}  // namespace metaprox
