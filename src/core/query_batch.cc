#include "core/query_batch.h"

#include <algorithm>
#include <cstdint>

#include "learning/proximity.h"
#include "util/macros.h"
#include "util/parallel_for.h"

namespace metaprox {
namespace {

// Scores one query against its candidate postings, reading every m_x . w
// from the batch-wide cache and every pair row through its finalized slot.
// The arithmetic mirrors RankByProximity term for term (same accumulation
// order inside each dot, same guards, same ranking order), which is what
// makes the batched results bitwise-identical to the sequential path.
QueryResult ScoreOne(const MetagraphVectorIndex& index,
                     std::span<const double> weights, NodeId q, size_t k,
                     const BatchScratch& scratch) {
  const std::span<const NodeId> candidates = index.Candidates(q);
  const std::span<const uint32_t> slots = index.CandidateSlots(q);
  QueryResult scored;
  scored.reserve(candidates.size());
  const double q_dot = scratch.NodeDot(q);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const NodeId y = candidates[i];
    if (y == q) continue;
    const double numer = 2.0 * index.SlotDot(slots[i], weights);
    if (numer <= 0.0) continue;
    const double denom = q_dot + scratch.NodeDot(y);
    if (denom <= 0.0) continue;
    scored.emplace_back(y, numer / denom);
  }
  const size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<int64_t>(take),
                    scored.end(), ProximityRankBefore);
  scored.resize(take);
  return scored;
}

}  // namespace

void BatchScratch::BeginBatch(size_t num_nodes) {
  if (epoch_of_.size() != num_nodes) {
    // Different graph (or first use): full (re)allocation. Epoch restarts
    // at 1 with every mark at 0, so nothing from the old graph survives.
    epoch_of_.assign(num_nodes, 0);
    node_dots_.assign(num_nodes, 0.0);
    epoch_ = 0;
  }
  ++epoch_;
  touched_.clear();
}

std::vector<QueryResult> BatchRankByProximity(
    const MetagraphVectorIndex& index, std::span<const double> weights,
    std::span<const NodeId> queries, size_t k, util::ThreadPool* pool,
    BatchScratch* scratch) {
  std::vector<QueryResult> results(queries.size());
  if (queries.empty()) return results;

  const size_t num_nodes = index.num_graph_nodes();
  for (NodeId q : queries) MX_CHECK(q < num_nodes);

  // One-shot callers pay a fresh allocation here, exactly like the old
  // dense scratch; callers in a serving loop pass a long-lived scratch and
  // pay only for the rows this batch actually touches.
  BatchScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  scratch->BeginBatch(num_nodes);

  // Duplicate query nodes are scored once: collapse to a sorted unique set
  // (sorted so the scatter below can binary-search its way back).
  std::vector<NodeId> uniq(queries.begin(), queries.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

  // Every node row the batch will read — the queries plus all their
  // candidates — is marked once in the scratch, however many candidate
  // sets share it. Marking is epoch-based: a batch touching T rows costs
  // O(T), not O(|V|), no matter how large the graph.
  for (NodeId q : uniq) {
    scratch->MarkTouched(q);
    for (NodeId y : index.Candidates(q)) scratch->MarkTouched(y);
  }

  // Gather pass: each touched row's m_x . w exactly once, cached in the
  // scratch for O(1) reads while scoring. Chunks write disjoint entries
  // (the touched list is duplicate-free), so no synchronization.
  const std::span<const NodeId> nodes = scratch->touched();
  util::ParallelChunks(pool, nodes.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      scratch->SetNodeDot(nodes[i], index.NodeDot(nodes[i], weights));
    }
  });

  // Scoring pass: one independent top-k per unique query.
  std::vector<QueryResult> uniq_results(uniq.size());
  util::ParallelChunks(pool, uniq.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      uniq_results[i] = ScoreOne(index, weights, uniq[i], k, *scratch);
    }
  });

  // Scatter back into batch order; duplicates copy the shared result.
  for (size_t i = 0; i < queries.size(); ++i) {
    const size_t pos = static_cast<size_t>(
        std::lower_bound(uniq.begin(), uniq.end(), queries[i]) - uniq.begin());
    results[i] = uniq_results[pos];
  }
  return results;
}

}  // namespace metaprox
