#include "core/score_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define METAPROX_KERNELS_X86 1
#endif

namespace metaprox::kernels {
namespace {

inline double TransformValue(float count, RowTransform transform) {
  // float -> double is exact, so both transforms see the same operand the
  // sequential reference always saw.
  const double raw = static_cast<double>(count);
  return transform == RowTransform::kLog1p ? std::log1p(raw) : raw;
}

}  // namespace

double RowDotScalar(std::span<const RowEntry> row,
                    std::span<const double> weights, RowTransform transform) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t e = 0; e < row.size(); ++e) {
    const double t = TransformValue(row[e].second, transform);
    lanes[e & 3] = std::fma(weights[row[e].first], t, lanes[e & 3]);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void RowDotMultiScalar(std::span<const RowEntry> row,
                       const MultiWeightSet& weights, RowTransform transform,
                       double* out, double* lanes) {
  const size_t m = weights.num_models();
  std::fill(lanes, lanes + 4 * m, 0.0);
  for (size_t e = 0; e < row.size(); ++e) {
    const double t = TransformValue(row[e].second, transform);
    const double* wrow = weights.row(row[e].first);
    double* lane = lanes + (e & 3) * m;
    for (size_t j = 0; j < m; ++j) lane[j] = std::fma(wrow[j], t, lane[j]);
  }
  for (size_t j = 0; j < m; ++j) {
    out[j] = (lanes[j] + lanes[m + j]) + (lanes[2 * m + j] + lanes[3 * m + j]);
  }
}

#ifdef METAPROX_KERNELS_X86

#if defined(__GNUC__) && !defined(__clang__)
// GCC 12's avx2intrin.h implements _mm256_i32gather_pd via
// _mm256_undefined_pd (`__m256d __Y = __Y;`), which trips
// -Wmaybe-uninitialized when inlined here. The gather's passthrough
// operand is fully masked, so the read is harmless.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

// AVX2 single-weight kernel: four entries per iteration. The AoS
// (index, count) pairs are split with one lane permute — indices land in
// the low 128 bits, counts in the high — then the four weights arrive via
// a gather. Lane j of the accumulator is exactly the scalar kernel's lane
// (e + j) & 3 == j chain (the vector loop only runs at multiples of 4),
// and vfmadd is correctly rounded like std::fma, so the bits match the
// scalar kernel lane for lane. Entries past the last full group continue
// scalar into the spilled lanes.
__attribute__((target("avx2,fma"))) double RowDotAvx2(
    std::span<const RowEntry> row, std::span<const double> weights,
    RowTransform transform) {
  const RowEntry* entries = row.data();
  const size_t n = row.size();
  __m256d acc = _mm256_setzero_pd();
  const __m256i split = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  size_t e = 0;
  if (transform == RowTransform::kRaw) {
    for (; e + 4 <= n; e += 4) {
      const __m256i pairs = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(entries + e));
      const __m256i packed = _mm256_permutevar8x32_epi32(pairs, split);
      const __m128i idx4 = _mm256_castsi256_si128(packed);
      const __m128 cnt4 = _mm_castsi128_ps(_mm256_extracti128_si256(packed, 1));
      const __m256d w4 = _mm256_i32gather_pd(weights.data(), idx4, 8);
      acc = _mm256_fmadd_pd(w4, _mm256_cvtps_pd(cnt4), acc);
    }
  } else {
    // log1p stays the scalar libm call in the SIMD kernel too: a vector
    // approximation would be faster and WRONG (different bits than the
    // scalar fallback). The fma/gather arithmetic around it still pays.
    for (; e + 4 <= n; e += 4) {
      const __m256i pairs = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(entries + e));
      const __m256i packed = _mm256_permutevar8x32_epi32(pairs, split);
      const __m128i idx4 = _mm256_castsi256_si128(packed);
      const __m256d w4 = _mm256_i32gather_pd(weights.data(), idx4, 8);
      const __m256d t4 = _mm256_setr_pd(
          std::log1p(static_cast<double>(entries[e].second)),
          std::log1p(static_cast<double>(entries[e + 1].second)),
          std::log1p(static_cast<double>(entries[e + 2].second)),
          std::log1p(static_cast<double>(entries[e + 3].second)));
      acc = _mm256_fmadd_pd(w4, t4, acc);
    }
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; e < n; ++e) {
    const double t = TransformValue(entries[e].second, transform);
    lanes[e & 3] = std::fma(weights[entries[e].first], t, lanes[e & 3]);
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

// AVX2 multi-weight kernel: vector lanes run across MODELS (the weight
// matrix interleaves models contiguously per index), four models per
// fmadd, with the entry's transformed count broadcast. Each (lane, model)
// accumulator receives the row's entries in the same order with the same
// correctly-rounded fma as the scalar kernel, so the per-model results
// are bitwise those of RowDotMultiScalar — and of the single-weight
// kernels.
__attribute__((target("avx2,fma"))) void RowDotMultiAvx2(
    std::span<const RowEntry> row, const MultiWeightSet& weights,
    RowTransform transform, double* out, double* lanes) {
  const size_t m = weights.num_models();
  std::fill(lanes, lanes + 4 * m, 0.0);
  for (size_t e = 0; e < row.size(); ++e) {
    const double t = TransformValue(row[e].second, transform);
    const __m256d tb = _mm256_set1_pd(t);
    const double* wrow = weights.row(row[e].first);
    double* lane = lanes + (e & 3) * m;
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const __m256d acc = _mm256_loadu_pd(lane + j);
      _mm256_storeu_pd(lane + j,
                       _mm256_fmadd_pd(_mm256_loadu_pd(wrow + j), tb, acc));
    }
    for (; j < m; ++j) lane[j] = std::fma(wrow[j], t, lane[j]);
  }
  for (size_t j = 0; j < m; ++j) {
    out[j] = (lanes[j] + lanes[m + j]) + (lanes[2 * m + j] + lanes[3 * m + j]);
  }
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // METAPROX_KERNELS_X86

namespace {

struct Dispatch {
  KernelKind kind;
  double (*row_dot)(std::span<const RowEntry>, std::span<const double>,
                    RowTransform);
  void (*row_dot_multi)(std::span<const RowEntry>, const MultiWeightSet&,
                        RowTransform, double*, double*);
};

bool ForceScalar() {
  const char* env = std::getenv("METAPROX_FORCE_SCALAR_KERNELS");
  if (env == nullptr || env[0] == '\0') return false;
  return !(env[0] == '0' && env[1] == '\0');
}

const Dispatch& GetDispatch() {
  // Magic-static: resolved exactly once, thread-safely, at the first dot.
  static const Dispatch dispatch = [] {
#ifdef METAPROX_KERNELS_X86
    if (!ForceScalar() && __builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma")) {
      return Dispatch{KernelKind::kAvx2Fma, &RowDotAvx2, &RowDotMultiAvx2};
    }
#endif
    return Dispatch{KernelKind::kScalar, &RowDotScalar, &RowDotMultiScalar};
  }();
  return dispatch;
}

}  // namespace

KernelKind ActiveKernel() { return GetDispatch().kind; }

const char* KernelName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kAvx2Fma:
      return "avx2+fma";
  }
  return "unknown";
}

double RowDot(std::span<const RowEntry> row, std::span<const double> weights,
              RowTransform transform) {
  return GetDispatch().row_dot(row, weights, transform);
}

void RowDotMulti(std::span<const RowEntry> row, const MultiWeightSet& weights,
                 RowTransform transform, double* out, double* lanes) {
  GetDispatch().row_dot_multi(row, weights, transform, out, lanes);
}

}  // namespace metaprox::kernels
