#include "metagraph/canonical.h"

#include <algorithm>
#include <numeric>

namespace metaprox {
namespace {

// Packs the adjacency of `m` under node ordering `perm` (perm[i] = original
// node placed at canonical position i) into upper-triangle bits.
uint32_t PackAdjacency(const Metagraph& m,
                       const std::array<uint8_t, Metagraph::kMaxNodes>& perm) {
  uint32_t bits = 0;
  int bit = 0;
  const int n = m.num_nodes();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j, ++bit) {
      if (m.HasEdge(perm[i], perm[j])) bits |= 1u << bit;
    }
  }
  return bits;
}

// Enumerates permutations of positions that keep the sorted type sequence
// fixed (i.e., permute only within same-type runs), invoking `fn` with each
// full permutation (as position -> original node).
template <typename Fn>
void ForEachTypeStablePermutation(
    const Metagraph& m, const std::array<uint8_t, Metagraph::kMaxNodes>& base,
    Fn&& fn) {
  const int n = m.num_nodes();
  // Identify same-type runs in `base` (which is sorted by type).
  std::array<uint8_t, Metagraph::kMaxNodes> perm = base;
  // Recursive permutation of each run.
  std::function<void(int)> rec = [&](int run_start) {
    if (run_start >= n) {
      fn(perm);
      return;
    }
    int run_end = run_start + 1;
    while (run_end < n &&
           m.TypeOf(base[run_end]) == m.TypeOf(base[run_start])) {
      ++run_end;
    }
    // Permute positions [run_start, run_end).
    std::array<uint8_t, Metagraph::kMaxNodes> run{};
    int len = run_end - run_start;
    for (int i = 0; i < len; ++i) run[i] = base[run_start + i];
    std::sort(run.begin(), run.begin() + len);
    do {
      for (int i = 0; i < len; ++i) perm[run_start + i] = run[i];
      rec(run_end);
    } while (std::next_permutation(run.begin(), run.begin() + len));
  };
  rec(0);
}

}  // namespace

CanonicalCode Canonicalize(const Metagraph& m) {
  const int n = m.num_nodes();
  CanonicalCode code;
  code.n = static_cast<uint8_t>(n);
  if (n == 0) return code;

  // Base ordering: nodes sorted by type (stable by original id).
  std::array<uint8_t, Metagraph::kMaxNodes> base{};
  std::iota(base.begin(), base.begin() + n, 0);
  std::stable_sort(base.begin(), base.begin() + n,
                   [&](uint8_t a, uint8_t b) {
                     return m.TypeOf(a) < m.TypeOf(b);
                   });
  for (int i = 0; i < n; ++i) code.types[i] = m.TypeOf(base[i]);

  uint32_t best = ~0u;
  ForEachTypeStablePermutation(
      m, base, [&](const std::array<uint8_t, Metagraph::kMaxNodes>& perm) {
        best = std::min(best, PackAdjacency(m, perm));
      });
  code.adj_bits = best;
  return code;
}

bool AreIsomorphic(const Metagraph& a, const Metagraph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  return Canonicalize(a) == Canonicalize(b);
}

Metagraph FromCanonicalCode(const CanonicalCode& code) {
  Metagraph m;
  for (int i = 0; i < code.n; ++i) m.AddNode(code.types[i]);
  int bit = 0;
  for (int i = 0; i < code.n; ++i) {
    for (int j = i + 1; j < code.n; ++j, ++bit) {
      if ((code.adj_bits >> bit) & 1u) {
        m.AddEdge(static_cast<MetaNodeId>(i), static_cast<MetaNodeId>(j));
      }
    }
  }
  return m;
}

}  // namespace metaprox
