#include "metagraph/metagraph.h"

#include <sstream>

namespace metaprox {

int Metagraph::num_edges() const {
  int total = 0;
  for (int i = 0; i < n_; ++i) total += __builtin_popcount(adj_[i]);
  return total / 2;
}

std::vector<std::pair<MetaNodeId, MetaNodeId>> Metagraph::Edges() const {
  std::vector<std::pair<MetaNodeId, MetaNodeId>> out;
  for (MetaNodeId a = 0; a < n_; ++a) {
    for (MetaNodeId b = a + 1; b < n_; ++b) {
      if (HasEdge(a, b)) out.emplace_back(a, b);
    }
  }
  return out;
}

bool Metagraph::IsConnected() const {
  if (n_ == 0) return false;
  uint8_t visited = 1;  // start from node 0
  for (;;) {
    uint8_t frontier = 0;
    for (int v = 0; v < n_; ++v) {
      if ((visited >> v) & 1u) frontier |= adj_[v];
    }
    uint8_t next = visited | frontier;
    if (next == visited) break;
    visited = next;
  }
  return visited == static_cast<uint8_t>((1u << n_) - 1);
}

bool Metagraph::IsPath() const {
  if (n_ == 0) return false;
  if (n_ == 1) return true;
  int deg1 = 0;
  for (int v = 0; v < n_; ++v) {
    int d = Degree(v);
    if (d == 1) {
      ++deg1;
    } else if (d != 2) {
      return false;
    }
  }
  return deg1 == 2 && IsConnected();
}

int Metagraph::CountType(TypeId t) const {
  int c = 0;
  for (int i = 0; i < n_; ++i) c += (types_[i] == t);
  return c;
}

std::string Metagraph::ToString(const TypeRegistry& reg) const {
  std::ostringstream os;
  if (IsPath() && n_ >= 2) {
    // Walk the path from one endpoint.
    MetaNodeId cur = 0;
    for (MetaNodeId v = 0; v < n_; ++v) {
      if (Degree(v) == 1) {
        cur = v;
        break;
      }
    }
    uint8_t seen = 0;
    for (int step = 0; step < n_; ++step) {
      if (step) os << "-";
      os << reg.Name(types_[cur]);
      seen |= static_cast<uint8_t>(1u << cur);
      uint8_t next = adj_[cur] & static_cast<uint8_t>(~seen);
      if (!next) break;
      cur = static_cast<MetaNodeId>(__builtin_ctz(next));
    }
    return os.str();
  }
  os << "{";
  for (int v = 0; v < n_; ++v) {
    if (v) os << ",";
    os << v << ":" << reg.Name(types_[v]);
  }
  os << " |";
  for (auto [a, b] : Edges()) {
    os << " " << static_cast<int>(a) << "-" << static_cast<int>(b);
  }
  os << "}";
  return os.str();
}

Metagraph MakePath(const std::vector<TypeId>& types) {
  Metagraph m;
  for (TypeId t : types) m.AddNode(t);
  for (size_t i = 0; i + 1 < types.size(); ++i) {
    m.AddEdge(static_cast<MetaNodeId>(i), static_cast<MetaNodeId>(i + 1));
  }
  return m;
}

}  // namespace metaprox
