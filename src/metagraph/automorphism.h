// Automorphism-group analysis of metagraphs, used for:
//   * Def. 1 (metagraph symmetry): a metagraph is symmetric iff some
//     non-identity *involution* automorphism exists; the pairs it exchanges
//     are the "symmetric pairs".
//   * Eq. 1-2: instance counting restricted to symmetric node pairs.
//   * Sect. IV-C: symmetric-component decomposition for SymISO.
//   * Deduplicating instance counts: every instance of M is discovered by
//     exactly |Aut(M)| embeddings.
#ifndef METAPROX_METAGRAPH_AUTOMORPHISM_H_
#define METAPROX_METAGRAPH_AUTOMORPHISM_H_

#include <array>
#include <cstdint>
#include <vector>

#include "metagraph/metagraph.h"

namespace metaprox {

/// A permutation of metagraph nodes: perm[v] = image of v.
using MetaPermutation = std::array<uint8_t, Metagraph::kMaxNodes>;

/// Precomputed symmetry facts about one metagraph.
struct SymmetryInfo {
  /// The full automorphism group (type-preserving, edge-preserving
  /// permutations), identity included.
  std::vector<MetaPermutation> automorphisms;

  /// Unordered pairs (u, u') with u < u' that are exchanged by some
  /// involution automorphism — the symmetric pairs of Def. 1.
  std::vector<std::pair<MetaNodeId, MetaNodeId>> symmetric_pairs;

  /// orbit[v]: index of v's orbit under the full automorphism group.
  std::array<uint8_t, Metagraph::kMaxNodes> orbit{};
  int num_orbits = 0;

  /// True iff symmetric_pairs is non-empty (Def. 1).
  bool is_symmetric = false;

  size_t aut_size() const { return automorphisms.size(); }

  /// True iff (u, u') or (u', u) is a symmetric pair.
  bool IsSymmetricPair(MetaNodeId u, MetaNodeId v) const;

  /// True iff u participates in at least one symmetric pair.
  bool IsSymmetricNode(MetaNodeId u) const;
};

/// Computes the automorphism group and symmetry facts of `m` by enumerating
/// type-stable permutations (metagraphs have at most 8 nodes).
SymmetryInfo AnalyzeSymmetry(const Metagraph& m);

/// True iff `perm` (over the first `n` entries) is an automorphism of `m`.
bool IsAutomorphism(const Metagraph& m, const MetaPermutation& perm);

}  // namespace metaprox

#endif  // METAPROX_METAGRAPH_AUTOMORPHISM_H_
