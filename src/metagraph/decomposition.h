// Symmetric-component decomposition of a metagraph (Sect. IV-C).
//
// The node set V_M is partitioned into connected components such that every
// component is either:
//   * a plain component (no exploitable symmetry), or
//   * the representative of a *mirror pair*: a component S together with a
//     disjoint component S' = σ(S) for some involution automorphism σ that
//     fixes every node outside S ∪ S' pointwise.
//
// The pointwise-fixing requirement is what makes SymISO's candidate re-use
// sound: when the matcher reaches the pair, every already-matched node is
// fixed by σ, so the constraint set of S' given the partial embedding D is
// *identical* to that of S, and C(S'|D) = C(S|D) can be re-used verbatim
// (Alg. 3 in the paper).
#ifndef METAPROX_METAGRAPH_DECOMPOSITION_H_
#define METAPROX_METAGRAPH_DECOMPOSITION_H_

#include <vector>

#include "metagraph/automorphism.h"
#include "metagraph/metagraph.h"

namespace metaprox {

/// One unit of SymISO's component-at-a-time matching.
struct ComponentGroup {
  /// Nodes of the representative component, in matching order.
  std::vector<MetaNodeId> rep;

  /// Nodes of the mirror component, aligned index-wise with `rep`
  /// (mirror[i] = σ(rep[i])). Empty for plain components.
  std::vector<MetaNodeId> mirror;

  bool has_mirror() const { return !mirror.empty(); }
  size_t size() const { return rep.size() + mirror.size(); }
};

/// The decomposition of a metagraph into component groups. Groups cover V_M
/// exactly once; group order is unspecified (matching-order selection is a
/// separate concern, see matching/order.h).
struct ComponentDecomposition {
  std::vector<ComponentGroup> groups;

  size_t num_covered_nodes() const {
    size_t n = 0;
    for (const auto& g : groups) n += g.size();
    return n;
  }
};

/// Decomposes `m` using its symmetry facts. Mirror pairs are selected
/// greedily by descending component size among all involutions whose moved
/// set splits into exactly two connected components; remaining nodes become
/// plain connected components.
ComponentDecomposition DecomposeSymmetricComponents(const Metagraph& m,
                                                    const SymmetryInfo& sym);

}  // namespace metaprox

#endif  // METAPROX_METAGRAPH_DECOMPOSITION_H_
