#include "metagraph/decomposition.h"

#include <algorithm>

#include "util/macros.h"

namespace metaprox {
namespace {

// Connected components of the subgraph of `m` induced on `mask`.
std::vector<uint8_t> ConnectedComponentMasks(const Metagraph& m,
                                             uint8_t mask) {
  std::vector<uint8_t> comps;
  uint8_t remaining = mask;
  while (remaining) {
    uint8_t seed = remaining & static_cast<uint8_t>(-remaining);
    uint8_t comp = seed;
    for (;;) {
      uint8_t frontier = 0;
      for (int v = 0; v < m.num_nodes(); ++v) {
        if ((comp >> v) & 1u) {
          frontier |= static_cast<uint8_t>(m.NeighborMask(
                          static_cast<MetaNodeId>(v)) & mask);
        }
      }
      uint8_t next = comp | frontier;
      if (next == comp) break;
      comp = next;
    }
    comps.push_back(comp);
    remaining = static_cast<uint8_t>(remaining & ~comp);
  }
  return comps;
}

std::vector<MetaNodeId> MaskToNodes(uint8_t mask) {
  std::vector<MetaNodeId> nodes;
  for (int v = 0; v < 8; ++v) {
    if ((mask >> v) & 1u) nodes.push_back(static_cast<MetaNodeId>(v));
  }
  return nodes;
}

bool IsInvolution(const MetaPermutation& perm, int n) {
  for (int v = 0; v < n; ++v) {
    if (perm[perm[v]] != v) return false;
  }
  return true;
}

struct MirrorCandidate {
  uint8_t rep_mask;
  uint8_t mirror_mask;
  MetaPermutation sigma;
};

}  // namespace

ComponentDecomposition DecomposeSymmetricComponents(const Metagraph& m,
                                                    const SymmetryInfo& sym) {
  const int n = m.num_nodes();
  ComponentDecomposition out;
  if (n == 0) return out;

  // Collect usable mirror candidates from involution automorphisms whose
  // moved set splits into exactly two connected components mapped onto each
  // other. (Such an involution necessarily fixes everything else pointwise.)
  std::vector<MirrorCandidate> candidates;
  for (const auto& sigma : sym.automorphisms) {
    if (!IsInvolution(sigma, n)) continue;
    uint8_t moved = 0;
    for (int v = 0; v < n; ++v) {
      if (sigma[v] != v) moved |= static_cast<uint8_t>(1u << v);
    }
    if (!moved) continue;  // identity
    auto comps = ConnectedComponentMasks(m, moved);
    if (comps.size() == 2) {
      // sigma must map one component onto the other.
      uint8_t image0 = 0;
      for (int v = 0; v < n; ++v) {
        if ((comps[0] >> v) & 1u) {
          image0 |= static_cast<uint8_t>(1u << sigma[v]);
        }
      }
      if (image0 != comps[1]) continue;
      candidates.push_back({comps[0], comps[1], sigma});
    } else if (comps.size() == 1) {
      // The two mirror halves are adjacent (e.g. a user-user edge between
      // swapped users) and fuse into one connected moved set. Split by the
      // canonical half {v : v < sigma(v)}; the cross edges between the
      // halves are verified per candidate pair at match time.
      uint8_t rep = 0;
      for (int v = 0; v < n; ++v) {
        if (sigma[v] != v && v < sigma[v]) {
          rep |= static_cast<uint8_t>(1u << v);
        }
      }
      candidates.push_back(
          {rep, static_cast<uint8_t>(moved & ~rep), sigma});
    }
    // Moved sets splitting into >2 components (several independent mirror
    // pairs swapped by one involution) are skipped; tighter per-pair
    // involutions almost always exist and are preferred.
  }

  // Prefer larger mirror pairs (more re-used work), then stable order.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const MirrorCandidate& a, const MirrorCandidate& b) {
                     return __builtin_popcount(a.rep_mask) >
                            __builtin_popcount(b.rep_mask);
                   });

  uint8_t used = 0;
  for (const auto& cand : candidates) {
    uint8_t both = static_cast<uint8_t>(cand.rep_mask | cand.mirror_mask);
    if (used & both) continue;
    used |= both;
    ComponentGroup group;
    group.rep = MaskToNodes(cand.rep_mask);
    group.mirror.reserve(group.rep.size());
    for (MetaNodeId v : group.rep) group.mirror.push_back(cand.sigma[v]);
    out.groups.push_back(std::move(group));
  }

  // Remaining nodes: singleton components (as in the paper — every node not
  // in a mirror pair is its own component, so the matching order can
  // interleave them freely around the mirror groups).
  uint8_t rest = static_cast<uint8_t>(((1u << n) - 1) & ~used);
  for (int v = 0; v < n; ++v) {
    if ((rest >> v) & 1u) {
      ComponentGroup group;
      group.rep.push_back(static_cast<MetaNodeId>(v));
      out.groups.push_back(std::move(group));
    }
  }

  MX_CHECK(out.num_covered_nodes() == static_cast<size_t>(n));
  return out;
}

}  // namespace metaprox
