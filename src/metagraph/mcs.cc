#include "metagraph/mcs.h"

#include <algorithm>
#include <vector>

#include "util/macros.h"

namespace metaprox {
namespace {

// Backtracking monomorphism test: maps pattern node `next` onward into
// `host`, given partial map `map` and used-host mask.
bool MonoSearch(const Metagraph& pattern, const Metagraph& host, int next,
                std::array<int8_t, Metagraph::kMaxNodes>& map,
                uint8_t used_host) {
  if (next == pattern.num_nodes()) return true;
  const MetaNodeId p = static_cast<MetaNodeId>(next);
  for (int h = 0; h < host.num_nodes(); ++h) {
    if ((used_host >> h) & 1u) continue;
    if (host.TypeOf(static_cast<MetaNodeId>(h)) != pattern.TypeOf(p)) continue;
    bool ok = true;
    for (int q = 0; q < next; ++q) {
      if (pattern.HasEdge(p, static_cast<MetaNodeId>(q)) &&
          !host.HasEdge(static_cast<MetaNodeId>(h),
                        static_cast<MetaNodeId>(map[q]))) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    map[next] = static_cast<int8_t>(h);
    if (MonoSearch(pattern, host, next + 1, map,
                   static_cast<uint8_t>(used_host | (1u << h)))) {
      return true;
    }
  }
  return false;
}

// Builds the subgraph of `m` on node set `node_mask` with edge subset
// `edge_subset` (bit i = i-th edge within the node set, in Edges() order
// restricted to the mask).
Metagraph BuildSubgraph(
    const Metagraph& m, uint8_t node_mask,
    const std::vector<std::pair<MetaNodeId, MetaNodeId>>& inner_edges,
    uint32_t edge_subset) {
  Metagraph sub;
  std::array<int8_t, Metagraph::kMaxNodes> remap{};
  remap.fill(-1);
  for (int v = 0; v < m.num_nodes(); ++v) {
    if ((node_mask >> v) & 1u) {
      remap[v] =
          static_cast<int8_t>(sub.AddNode(m.TypeOf(static_cast<MetaNodeId>(v))));
    }
  }
  for (size_t i = 0; i < inner_edges.size(); ++i) {
    if ((edge_subset >> i) & 1u) {
      sub.AddEdge(static_cast<MetaNodeId>(remap[inner_edges[i].first]),
                  static_cast<MetaNodeId>(remap[inner_edges[i].second]));
    }
  }
  return sub;
}

}  // namespace

bool IsSubgraphIsomorphic(const Metagraph& pattern, const Metagraph& host) {
  if (pattern.num_nodes() > host.num_nodes()) return false;
  if (pattern.num_edges() > host.num_edges()) return false;
  std::array<int8_t, Metagraph::kMaxNodes> map{};
  map.fill(-1);
  return MonoSearch(pattern, host, 0, map, 0);
}

int MaxCommonSubgraphSize(const Metagraph& a, const Metagraph& b) {
  const Metagraph& small = a.num_nodes() <= b.num_nodes() ? a : b;
  const Metagraph& large = a.num_nodes() <= b.num_nodes() ? b : a;
  const int n = small.num_nodes();
  int best = 0;

  for (uint32_t node_mask = 1; node_mask < (1u << n); ++node_mask) {
    const int nodes = __builtin_popcount(node_mask);
    // Upper bound check: even with all edges, can this beat `best`?
    std::vector<std::pair<MetaNodeId, MetaNodeId>> inner;
    for (MetaNodeId x = 0; x < n; ++x) {
      if (!((node_mask >> x) & 1u)) continue;
      for (MetaNodeId y = x + 1; y < n; ++y) {
        if (((node_mask >> y) & 1u) && small.HasEdge(x, y)) {
          inner.emplace_back(x, y);
        }
      }
    }
    if (nodes + static_cast<int>(inner.size()) <= best) continue;

    // Enumerate edge subsets, largest first is not easy; iterate all and
    // skip those that cannot beat `best`.
    const uint32_t edge_count = static_cast<uint32_t>(inner.size());
    for (uint32_t es = 0; es < (1u << edge_count); ++es) {
      const int score = nodes + __builtin_popcount(es);
      if (score <= best) continue;
      Metagraph sub = BuildSubgraph(small, static_cast<uint8_t>(node_mask),
                                    inner, es);
      if (!sub.IsConnected()) continue;
      if (IsSubgraphIsomorphic(sub, large)) best = score;
    }
  }
  return best;
}

double StructuralSimilarity(const Metagraph& a, const Metagraph& b) {
  const int mcs = MaxCommonSubgraphSize(a, b);
  if (mcs == 0) return 0.0;
  const double sa = a.num_nodes() + a.num_edges();
  const double sb = b.num_nodes() + b.num_edges();
  return (static_cast<double>(mcs) * mcs) / (sa * sb);
}

}  // namespace metaprox
