// Canonical forms and isomorphism tests for metagraphs.
//
// Because metagraphs are capped at kMaxNodes = 8 nodes, we canonicalize by
// direct enumeration: the canonical code is the lexicographically smallest
// (type sequence, adjacency bitstring) over all node orderings. Orderings
// that do not sort types ascending can never be minimal, so we only permute
// within same-type groups — at most 8! permutations, in practice a handful.
#ifndef METAPROX_METAGRAPH_CANONICAL_H_
#define METAPROX_METAGRAPH_CANONICAL_H_

#include <array>
#include <cstdint>
#include <functional>

#include "metagraph/metagraph.h"

namespace metaprox {

/// A total, relabeling-invariant key for a metagraph. Two metagraphs have
/// equal codes iff they are isomorphic (respecting node types).
struct CanonicalCode {
  uint8_t n = 0;
  std::array<TypeId, Metagraph::kMaxNodes> types{};  // sorted ascending
  uint32_t adj_bits = 0;  // upper-triangle bits, row-major, canonical order

  bool operator==(const CanonicalCode& o) const {
    return n == o.n && adj_bits == o.adj_bits && types == o.types;
  }
  bool operator<(const CanonicalCode& o) const {
    if (n != o.n) return n < o.n;
    if (types != o.types) return types < o.types;
    return adj_bits < o.adj_bits;
  }
};

struct CanonicalCodeHash {
  size_t operator()(const CanonicalCode& c) const {
    uint64_t h = c.n;
    for (int i = 0; i < c.n; ++i) h = h * 1000003u + c.types[i];
    h = h * 1000003u + c.adj_bits;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }
};

/// Computes the canonical code of `m`.
CanonicalCode Canonicalize(const Metagraph& m);

/// True iff `a` and `b` are isomorphic as typed graphs.
bool AreIsomorphic(const Metagraph& a, const Metagraph& b);

/// Rebuilds a concrete metagraph from a canonical code (nodes in canonical
/// order). Useful for deduplicated storage.
Metagraph FromCanonicalCode(const CanonicalCode& code);

}  // namespace metaprox

#endif  // METAPROX_METAGRAPH_CANONICAL_H_
