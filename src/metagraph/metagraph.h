// Metagraph M = (V_M, E_M): a small graph whose nodes denote object *types*
// (Sect. II, Def. of metagraph). Metagraphs in this system are tiny (the
// paper caps them at 5 nodes; we support up to 8), so adjacency is stored as
// one bitmask byte per node and all whole-graph algorithms (canonicalization,
// automorphisms, MCS) enumerate permutations directly.
#ifndef METAPROX_METAGRAPH_METAGRAPH_H_
#define METAPROX_METAGRAPH_METAGRAPH_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/type_registry.h"
#include "graph/types.h"
#include "util/macros.h"

namespace metaprox {

/// Index of a node within a metagraph.
using MetaNodeId = uint8_t;

/// Small typed graph over object types. Value-semantic and cheap to copy.
class Metagraph {
 public:
  static constexpr int kMaxNodes = 8;

  Metagraph() = default;

  /// Adds a node of type `t`; returns its index.
  MetaNodeId AddNode(TypeId t) {
    MX_CHECK_MSG(n_ < kMaxNodes, "metagraph node limit exceeded");
    types_[n_] = t;
    adj_[n_] = 0;
    return n_++;
  }

  /// Adds the undirected edge {a, b}. Idempotent; self-loops forbidden.
  void AddEdge(MetaNodeId a, MetaNodeId b) {
    MX_CHECK(a < n_ && b < n_ && a != b);
    adj_[a] |= static_cast<uint8_t>(1u << b);
    adj_[b] |= static_cast<uint8_t>(1u << a);
  }

  void RemoveEdge(MetaNodeId a, MetaNodeId b) {
    MX_CHECK(a < n_ && b < n_);
    adj_[a] &= static_cast<uint8_t>(~(1u << b));
    adj_[b] &= static_cast<uint8_t>(~(1u << a));
  }

  int num_nodes() const { return n_; }
  int num_edges() const;

  TypeId TypeOf(MetaNodeId v) const {
    MX_DCHECK(v < n_);
    return types_[v];
  }

  bool HasEdge(MetaNodeId a, MetaNodeId b) const {
    MX_DCHECK(a < n_ && b < n_);
    return (adj_[a] >> b) & 1u;
  }

  /// Bitmask of neighbors of v.
  uint8_t NeighborMask(MetaNodeId v) const {
    MX_DCHECK(v < n_);
    return adj_[v];
  }

  int Degree(MetaNodeId v) const { return __builtin_popcount(adj_[v]); }

  /// All edges as (a, b) pairs with a < b.
  std::vector<std::pair<MetaNodeId, MetaNodeId>> Edges() const;

  /// True iff the metagraph is connected (the empty metagraph is not).
  bool IsConnected() const;

  /// True iff the metagraph is a simple path (the "metapath" special case
  /// from Sun et al. [4]; used as dual-stage seeds, Sect. III-C).
  bool IsPath() const;

  /// Number of nodes whose type equals `t`.
  int CountType(TypeId t) const;

  /// Renders e.g. "user-school-user" style description using `reg` for type
  /// names; non-path structures are listed as V/E sets.
  std::string ToString(const TypeRegistry& reg) const;

  bool operator==(const Metagraph& other) const {
    if (n_ != other.n_) return false;
    for (int i = 0; i < n_; ++i) {
      if (types_[i] != other.types_[i] || adj_[i] != other.adj_[i]) {
        return false;
      }
    }
    return true;
  }

 private:
  uint8_t n_ = 0;
  std::array<uint8_t, kMaxNodes> adj_{};
  std::array<TypeId, kMaxNodes> types_{};
};

/// Convenience: builds a metapath t0 - t1 - ... - tk.
Metagraph MakePath(const std::vector<TypeId>& types);

}  // namespace metaprox

#endif  // METAPROX_METAGRAPH_METAGRAPH_H_
