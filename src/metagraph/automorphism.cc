#include "metagraph/automorphism.h"

#include <algorithm>
#include <functional>
#include <numeric>

namespace metaprox {
namespace {

// True iff perm o perm = identity.
bool IsInvolution(const MetaPermutation& perm, int n) {
  for (int v = 0; v < n; ++v) {
    if (perm[perm[v]] != v) return false;
  }
  return true;
}

}  // namespace

bool SymmetryInfo::IsSymmetricPair(MetaNodeId u, MetaNodeId v) const {
  if (u > v) std::swap(u, v);
  for (auto [a, b] : symmetric_pairs) {
    if (a == u && b == v) return true;
  }
  return false;
}

bool SymmetryInfo::IsSymmetricNode(MetaNodeId u) const {
  for (auto [a, b] : symmetric_pairs) {
    if (a == u || b == u) return true;
  }
  return false;
}

bool IsAutomorphism(const Metagraph& m, const MetaPermutation& perm) {
  const int n = m.num_nodes();
  for (int v = 0; v < n; ++v) {
    if (m.TypeOf(perm[v]) != m.TypeOf(static_cast<MetaNodeId>(v))) {
      return false;
    }
    for (int u = v + 1; u < n; ++u) {
      if (m.HasEdge(static_cast<MetaNodeId>(v), static_cast<MetaNodeId>(u)) !=
          m.HasEdge(perm[v], perm[u])) {
        return false;
      }
    }
  }
  return true;
}

SymmetryInfo AnalyzeSymmetry(const Metagraph& m) {
  SymmetryInfo info;
  const int n = m.num_nodes();
  if (n == 0) {
    info.num_orbits = 0;
    return info;
  }

  // Enumerate candidate permutations: only type-preserving ones can be
  // automorphisms, so permute within same-type groups. We generate all
  // permutations of [0, n) and filter by type first (n <= 8; fine), with a
  // quick reject on the type check before the O(n^2) edge check.
  MetaPermutation perm{};
  std::iota(perm.begin(), perm.begin() + n, 0);
  // Pre-sort so next_permutation enumerates everything from the identity's
  // sorted order.
  do {
    bool types_ok = true;
    for (int v = 0; v < n; ++v) {
      if (m.TypeOf(perm[v]) != m.TypeOf(static_cast<MetaNodeId>(v))) {
        types_ok = false;
        break;
      }
    }
    if (!types_ok) continue;
    if (!IsAutomorphism(m, perm)) continue;
    info.automorphisms.push_back(perm);
    if (IsInvolution(perm, n)) {
      for (int v = 0; v < n; ++v) {
        if (perm[v] > v) {
          auto pair = std::make_pair(static_cast<MetaNodeId>(v),
                                     static_cast<MetaNodeId>(perm[v]));
          if (std::find(info.symmetric_pairs.begin(),
                        info.symmetric_pairs.end(),
                        pair) == info.symmetric_pairs.end()) {
            info.symmetric_pairs.push_back(pair);
          }
        }
      }
    }
  } while (std::next_permutation(perm.begin(), perm.begin() + n));

  std::sort(info.symmetric_pairs.begin(), info.symmetric_pairs.end());
  info.is_symmetric = !info.symmetric_pairs.empty();

  // Orbits: union nodes connected by any automorphism image.
  std::array<uint8_t, Metagraph::kMaxNodes> parent{};
  std::iota(parent.begin(), parent.begin() + n, 0);
  std::function<uint8_t(uint8_t)> find = [&](uint8_t x) -> uint8_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& aut : info.automorphisms) {
    for (int v = 0; v < n; ++v) {
      uint8_t a = find(static_cast<uint8_t>(v));
      uint8_t b = find(aut[v]);
      if (a != b) parent[a] = b;
    }
  }
  std::array<int8_t, Metagraph::kMaxNodes> label{};
  label.fill(-1);
  int next = 0;
  for (int v = 0; v < n; ++v) {
    uint8_t root = find(static_cast<uint8_t>(v));
    if (label[root] < 0) label[root] = static_cast<int8_t>(next++);
    info.orbit[v] = static_cast<uint8_t>(label[root]);
  }
  info.num_orbits = next;
  return info;
}

}  // namespace metaprox
