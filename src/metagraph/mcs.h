// Maximum common subgraph (MCS) and the structural-similarity score
// SS(Mi, Mj) used by the dual-stage candidate heuristic (Sect. III-C):
//
//   SS(Mi, Mj) = (|V_M| + |E_M|)^2 / ((|V_Mi| + |E_Mi|) * (|V_Mj| + |E_Mj|))
//
// where M is the MCS of Mi and Mj. We take the MCS to be the largest
// *connected* common subgraph by |V| + |E| (the connected variant is the
// standard choice for similarity in van Berlo et al. [18], and disconnected
// fragments carry no shared semantics in a metagraph).
//
// Metagraphs are at most 5 nodes in mining, so MCS is computed exactly by
// enumerating connected subgraphs of the smaller side and testing
// monomorphism into the other.
#ifndef METAPROX_METAGRAPH_MCS_H_
#define METAPROX_METAGRAPH_MCS_H_

#include "metagraph/metagraph.h"

namespace metaprox {

/// Size (|V| + |E|) of the maximum connected common subgraph of a and b.
/// Returns 0 when they share no common node type.
int MaxCommonSubgraphSize(const Metagraph& a, const Metagraph& b);

/// SS(a, b) in [0, 1]; 1 iff a and b are isomorphic.
double StructuralSimilarity(const Metagraph& a, const Metagraph& b);

/// True iff there is a monomorphism from `pattern` into `host`: an injective
/// type-preserving node map carrying every pattern edge to a host edge.
bool IsSubgraphIsomorphic(const Metagraph& pattern, const Metagraph& host);

}  // namespace metaprox

#endif  // METAPROX_METAGRAPH_MCS_H_
