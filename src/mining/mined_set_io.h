// Serialization of a mined metagraph set, so the offline mining phase can
// be persisted together with the vector index (index/metagraph_vectors.h)
// and reused across processes — mining and matching only ever need to run
// once per graph (Sect. II-B).
#ifndef METAPROX_MINING_MINED_SET_IO_H_
#define METAPROX_MINING_MINED_SET_IO_H_

#include <iosfwd>
#include <vector>

#include "mining/miner.h"
#include "util/status.h"

namespace metaprox {

/// Writes the structural part of each mined metagraph (nodes, edges,
/// support, path flag). Symmetry facts are recomputed on load.
util::Status WriteMinedMetagraphs(const std::vector<MinedMetagraph>& mined,
                                  std::ostream& os);

/// Reads a set written by WriteMinedMetagraphs.
util::StatusOr<std::vector<MinedMetagraph>> ReadMinedMetagraphs(
    std::istream& is);

}  // namespace metaprox

#endif  // METAPROX_MINING_MINED_SET_IO_H_
