// GRAMI-style metagraph mining on a single large graph (the paper's offline
// subproblem 1, delegated to Elseidy et al. [9]).
//
// Pattern-growth enumeration over the graph's type schema with
// canonical-form deduplication and MNI (minimum-node-image) frequency
// pruning. MNI — the measure GRAMI uses — is anti-monotone on a single
// graph, so infrequent patterns prune their entire extension subtree.
// Support is computed by subgraph matching with two accelerations:
//   * early termination once every pattern node has >= min_support distinct
//     images (the pattern is then provably frequent), and
//   * an embedding cap for pathological patterns (treated as frequent).
//
// Parallelism: the search runs level-synchronously. Each BFS level's
// frequency checks, symmetry analyses and support counts — the expensive,
// matcher-bound work — are fanned out over a util::ThreadPool, while
// extension generation and canonical-form deduplication stay on the
// calling thread in a fixed order. The mined set, its order, and every
// stat except `seconds` are therefore byte-for-byte identical for any
// thread count (and identical to a fully serial run).
//
// Output filters reproduce the paper's setup (Sect. V-A): symmetric
// metagraphs only, at least two anchor-type (user) nodes, at least one node
// of another type, at most `max_nodes` nodes.
#ifndef METAPROX_MINING_MINER_H_
#define METAPROX_MINING_MINER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "metagraph/automorphism.h"
#include "metagraph/metagraph.h"
#include "util/thread_pool.h"

namespace metaprox {

struct MinerOptions {
  int max_nodes = 5;
  uint64_t min_support = 3;      // MNI threshold
  TypeId anchor_type = 0;        // typically "user"
  int min_anchor_nodes = 2;      // >= 2 users (proximity is between users)
  int min_non_anchor_nodes = 1;  // >= 1 node of another type
  bool require_symmetric = true;
  // The anchor pair whose proximity we measure must itself be symmetric:
  // at least one symmetric pair of anchor-type nodes.
  bool require_symmetric_anchor_pair = true;
  uint64_t support_embedding_cap = 300'000;
  size_t max_patterns = 200'000;  // enumeration safety valve
  /// Worker threads for the per-level frequency/support evaluation.
  /// 0 = hardware concurrency, 1 = serial (default). Ignored when an
  /// external pool is passed to MineMetagraphs. The mined set is identical
  /// for any value.
  size_t num_threads = 1;
};

struct MinedMetagraph {
  Metagraph graph;
  SymmetryInfo symmetry;
  uint64_t support = 0;  // MNI lower bound (exact when small)
  bool is_path = false;
};

struct MiningStats {
  size_t patterns_enumerated = 0;
  size_t patterns_frequent = 0;
  size_t patterns_output = 0;
  double seconds = 0.0;
};

/// Mines the metagraph set M of `g`. Deterministic for a given graph:
/// the output (content and order) does not depend on the thread count.
/// When `pool` is non-null it is used for the per-level parallel work and
/// `options.num_threads` is ignored; otherwise a private pool is created
/// when `options.num_threads` resolves to more than one worker.
std::vector<MinedMetagraph> MineMetagraphs(const Graph& g,
                                           const MinerOptions& options,
                                           MiningStats* stats = nullptr,
                                           util::ThreadPool* pool = nullptr);

}  // namespace metaprox

#endif  // METAPROX_MINING_MINER_H_
