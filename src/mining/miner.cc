#include "mining/miner.h"

#include <algorithm>
#include <future>
#include <memory>
#include <unordered_set>
#include <utility>

#include "matching/backtracking.h"
#include "matching/candidate_filter.h"
#include "matching/order.h"
#include "metagraph/canonical.h"
#include "util/macros.h"
#include "util/parallel_for.h"
#include "util/stopwatch.h"

namespace metaprox {
namespace {

// Tracks distinct images per pattern node; stops the matcher as soon as
// every node has >= threshold images (pattern provably frequent) or the
// embedding cap is hit.
class MniSink : public InstanceSink {
 public:
  MniSink(int num_nodes, uint64_t threshold, uint64_t cap)
      : images_(num_nodes), threshold_(threshold), cap_(cap) {}

  bool OnEmbedding(std::span<const NodeId> embedding) override {
    ++embeddings_;
    bool all_frequent = true;
    for (size_t u = 0; u < images_.size(); ++u) {
      images_[u].insert(embedding[u]);
      all_frequent &= images_[u].size() >= threshold_;
    }
    if (all_frequent) {
      proven_frequent_ = true;
      return false;
    }
    return embeddings_ < cap_;
  }

  /// MNI lower bound (exact when neither early-stop fired).
  uint64_t Mni() const {
    uint64_t mni = UINT64_MAX;
    for (const auto& s : images_) {
      mni = std::min(mni, static_cast<uint64_t>(s.size()));
    }
    return mni == UINT64_MAX ? 0 : mni;
  }

  bool proven_frequent() const { return proven_frequent_; }
  bool capped() const { return embeddings_ >= cap_; }

 private:
  std::vector<std::unordered_set<NodeId>> images_;
  uint64_t threshold_;
  uint64_t cap_;
  uint64_t embeddings_ = 0;
  bool proven_frequent_ = false;
};

// Computes whether `m` is frequent in `g` (MNI >= min_support). Uses the
// BoostISO-style filter so infrequent patterns fail fast. Pure function of
// (g, m, options): safe to run concurrently for different patterns.
bool IsFrequent(const Graph& g, const Metagraph& m,
                const MinerOptions& options) {
  CandidateFilter filter = BuildTypeDegreeFilter(g, m);
  RefineFilter(g, m, filter, /*rounds=*/-1);
  // Cheap necessary condition: every pattern node needs enough candidates.
  for (MetaNodeId u = 0; u < m.num_nodes(); ++u) {
    if (filter.CountAllowed(u) < options.min_support) return false;
  }
  MniSink sink(m.num_nodes(), options.min_support,
               options.support_embedding_cap);
  auto order = GreedyNodeOrder(g, m);
  BacktrackMatch(g, m, order, &sink, &filter);
  if (sink.proven_frequent() || sink.capped()) return true;
  return sink.Mni() >= options.min_support;
}

// Returns the (best-effort) support value for reporting: exact MNI when the
// enumeration finished, else min_support (a certified lower bound).
uint64_t ReportedSupport(const Graph& g, const Metagraph& m,
                         const MinerOptions& options) {
  CandidateFilter filter = BuildTypeDegreeFilter(g, m);
  RefineFilter(g, m, filter, /*rounds=*/-1);
  MniSink sink(m.num_nodes(), UINT64_MAX, options.support_embedding_cap);
  auto order = GreedyNodeOrder(g, m);
  BacktrackMatch(g, m, order, &sink, &filter);
  return sink.Mni();
}

// Everything the parallel per-pattern evaluation produces for one level
// member; assembled back on the coordinating thread in level order.
struct PatternEval {
  bool frequent = false;
  bool emit = false;
  SymmetryInfo symmetry;
  uint64_t support = 0;
};

// Runs the matcher-bound checks for one pattern: frequency first (the
// anti-monotone prune), then the paper's output filters, then the reported
// support for emitted patterns.
PatternEval EvaluatePattern(const Graph& g, const Metagraph& m,
                            const MinerOptions& options) {
  PatternEval ev;
  ev.frequent = IsFrequent(g, m, options);
  if (!ev.frequent) return ev;

  const int anchors = m.CountType(options.anchor_type);
  const int non_anchors = m.num_nodes() - anchors;
  bool emit = anchors >= options.min_anchor_nodes &&
              non_anchors >= options.min_non_anchor_nodes;
  if (emit) {
    ev.symmetry = AnalyzeSymmetry(m);
    if (options.require_symmetric && !ev.symmetry.is_symmetric) emit = false;
    if (emit && options.require_symmetric_anchor_pair) {
      bool anchor_pair = false;
      for (auto [a, b] : ev.symmetry.symmetric_pairs) {
        if (m.TypeOf(a) == options.anchor_type) {
          anchor_pair = true;
          break;
        }
      }
      emit = anchor_pair;
    }
  }
  ev.emit = emit;
  if (emit) ev.support = ReportedSupport(g, m, options);
  return ev;
}

// Maps `fn` over `items`, preserving input order in the result. The
// chunked fan-out (several chunks per worker, far fewer tasks than items
// — cheap per-item work like Canonicalize is not swamped by per-task
// queue/future overhead) lives in util::ParallelChunks, shared with the
// batched online phase. `fn` must be safe to call concurrently; results
// must be default-constructible.
template <typename T, typename F>
auto ParallelMap(util::ThreadPool* pool, const std::vector<T>& items, F fn)
    -> std::vector<decltype(fn(items[0]))> {
  using R = decltype(fn(items[0]));
  std::vector<R> out(items.size());
  util::ParallelChunks(pool, items.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = fn(items[i]);
  });
  return out;
}

}  // namespace

std::vector<MinedMetagraph> MineMetagraphs(const Graph& g,
                                           const MinerOptions& options,
                                           MiningStats* stats,
                                           util::ThreadPool* pool) {
  util::Stopwatch timer;

  std::unique_ptr<util::ThreadPool> local_pool;
  if (pool == nullptr) {
    const size_t workers = util::ResolveNumThreads(options.num_threads);
    if (workers > 1) {
      local_pool = std::make_unique<util::ThreadPool>(workers);
      pool = local_pool.get();
    }
  }

  const size_t t = g.num_types();
  auto edge_feasible = [&](TypeId a, TypeId b) {
    return g.EdgeCountBetweenTypes(a, b) > 0;
  };

  std::unordered_set<CanonicalCode, CanonicalCodeHash> seen;
  std::vector<MinedMetagraph> output;
  MiningStats local_stats;

  // Canonical-form deduplication, run on the coordinating thread only: the
  // codes arrive in generation order (computed in parallel, order
  // preserved by ParallelMap), so the surviving set AND its order — and
  // hence which patterns the max_patterns valve drops — are independent of
  // the thread count.
  auto dedup = [&](std::vector<Metagraph> raw) {
    std::vector<CanonicalCode> codes = ParallelMap(
        pool, raw, [](const Metagraph& m) { return Canonicalize(m); });
    std::vector<Metagraph> unique;
    unique.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (!seen.insert(codes[i]).second) continue;
      ++local_stats.patterns_enumerated;
      if (local_stats.patterns_enumerated > options.max_patterns) continue;
      unique.push_back(std::move(raw[i]));
    }
    return unique;
  };

  // Seeds: all feasible single-edge patterns.
  std::vector<Metagraph> raw_seeds;
  for (TypeId a = 0; a < t; ++a) {
    for (TypeId b = a; b < t; ++b) {
      if (!edge_feasible(a, b)) continue;
      Metagraph m;
      MetaNodeId x = m.AddNode(a);
      MetaNodeId y = m.AddNode(b);
      m.AddEdge(x, y);
      raw_seeds.push_back(std::move(m));
    }
  }
  std::vector<Metagraph> level = dedup(std::move(raw_seeds));

  // Level-synchronous BFS pattern growth: evaluate the whole level in
  // parallel, then emit / extend serially in level order.
  while (!level.empty()) {
    std::vector<PatternEval> evals =
        ParallelMap(pool, level, [&](const Metagraph& m) {
          return EvaluatePattern(g, m, options);
        });

    std::vector<Metagraph> frontier;  // this level's frequent survivors
    frontier.reserve(level.size());
    for (size_t i = 0; i < level.size(); ++i) {
      if (!evals[i].frequent) continue;
      ++local_stats.patterns_frequent;
      if (evals[i].emit) {
        MinedMetagraph mined;
        mined.graph = level[i];
        mined.symmetry = std::move(evals[i].symmetry);
        mined.support = evals[i].support;
        mined.is_path = level[i].IsPath();
        output.push_back(std::move(mined));
        ++local_stats.patterns_output;
      }
      frontier.push_back(std::move(level[i]));
    }

    std::vector<Metagraph> raw;
    for (const Metagraph& m : frontier) {
      // Extensions: (a) close an edge between existing non-adjacent nodes.
      for (MetaNodeId x = 0; x < m.num_nodes(); ++x) {
        for (MetaNodeId y = x + 1; y < m.num_nodes(); ++y) {
          if (m.HasEdge(x, y)) continue;
          if (!edge_feasible(m.TypeOf(x), m.TypeOf(y))) continue;
          Metagraph ext = m;
          ext.AddEdge(x, y);
          raw.push_back(std::move(ext));
        }
      }
      // (b) grow a new node attached to one existing node.
      if (m.num_nodes() < options.max_nodes) {
        for (MetaNodeId x = 0; x < m.num_nodes(); ++x) {
          for (TypeId nt = 0; nt < t; ++nt) {
            if (!edge_feasible(m.TypeOf(x), nt)) continue;
            Metagraph ext = m;
            MetaNodeId y = ext.AddNode(nt);
            ext.AddEdge(x, y);
            raw.push_back(std::move(ext));
          }
        }
      }
    }
    level = dedup(std::move(raw));
  }

  local_stats.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;
  return output;
}

}  // namespace metaprox
