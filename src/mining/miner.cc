#include "mining/miner.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "matching/backtracking.h"
#include "matching/candidate_filter.h"
#include "matching/order.h"
#include "metagraph/canonical.h"
#include "util/macros.h"
#include "util/stopwatch.h"

namespace metaprox {
namespace {

// Tracks distinct images per pattern node; stops the matcher as soon as
// every node has >= threshold images (pattern provably frequent) or the
// embedding cap is hit.
class MniSink : public InstanceSink {
 public:
  MniSink(int num_nodes, uint64_t threshold, uint64_t cap)
      : images_(num_nodes), threshold_(threshold), cap_(cap) {}

  bool OnEmbedding(std::span<const NodeId> embedding) override {
    ++embeddings_;
    bool all_frequent = true;
    for (size_t u = 0; u < images_.size(); ++u) {
      images_[u].insert(embedding[u]);
      all_frequent &= images_[u].size() >= threshold_;
    }
    if (all_frequent) {
      proven_frequent_ = true;
      return false;
    }
    return embeddings_ < cap_;
  }

  /// MNI lower bound (exact when neither early-stop fired).
  uint64_t Mni() const {
    uint64_t mni = UINT64_MAX;
    for (const auto& s : images_) {
      mni = std::min(mni, static_cast<uint64_t>(s.size()));
    }
    return mni == UINT64_MAX ? 0 : mni;
  }

  bool proven_frequent() const { return proven_frequent_; }
  bool capped() const { return embeddings_ >= cap_; }

 private:
  std::vector<std::unordered_set<NodeId>> images_;
  uint64_t threshold_;
  uint64_t cap_;
  uint64_t embeddings_ = 0;
  bool proven_frequent_ = false;
};

// Computes whether `m` is frequent in `g` (MNI >= min_support). Uses the
// BoostISO-style filter so infrequent patterns fail fast.
bool IsFrequent(const Graph& g, const Metagraph& m,
                const MinerOptions& options) {
  CandidateFilter filter = BuildTypeDegreeFilter(g, m);
  RefineFilter(g, m, filter, /*rounds=*/-1);
  // Cheap necessary condition: every pattern node needs enough candidates.
  for (MetaNodeId u = 0; u < m.num_nodes(); ++u) {
    if (filter.CountAllowed(u) < options.min_support) return false;
  }
  MniSink sink(m.num_nodes(), options.min_support,
               options.support_embedding_cap);
  auto order = GreedyNodeOrder(g, m);
  BacktrackMatch(g, m, order, &sink, &filter);
  if (sink.proven_frequent() || sink.capped()) return true;
  return sink.Mni() >= options.min_support;
}

// Returns the (best-effort) support value for reporting: exact MNI when the
// enumeration finished, else min_support (a certified lower bound).
uint64_t ReportedSupport(const Graph& g, const Metagraph& m,
                         const MinerOptions& options) {
  CandidateFilter filter = BuildTypeDegreeFilter(g, m);
  RefineFilter(g, m, filter, /*rounds=*/-1);
  MniSink sink(m.num_nodes(), UINT64_MAX, options.support_embedding_cap);
  auto order = GreedyNodeOrder(g, m);
  BacktrackMatch(g, m, order, &sink, &filter);
  return sink.Mni();
}

}  // namespace

std::vector<MinedMetagraph> MineMetagraphs(const Graph& g,
                                           const MinerOptions& options,
                                           MiningStats* stats) {
  util::Stopwatch timer;
  const size_t t = g.num_types();

  // Feasible unordered type pairs: those with at least one graph edge.
  std::vector<std::pair<TypeId, TypeId>> feasible;
  for (TypeId a = 0; a < t; ++a) {
    for (TypeId b = a; b < t; ++b) {
      if (g.EdgeCountBetweenTypes(a, b) > 0) feasible.emplace_back(a, b);
    }
  }
  auto edge_feasible = [&](TypeId a, TypeId b) {
    return g.EdgeCountBetweenTypes(a, b) > 0;
  };

  std::unordered_set<CanonicalCode, CanonicalCodeHash> seen;
  std::deque<Metagraph> frontier;
  std::vector<MinedMetagraph> output;
  MiningStats local_stats;

  auto consider = [&](const Metagraph& candidate) {
    CanonicalCode code = Canonicalize(candidate);
    if (!seen.insert(code).second) return;
    ++local_stats.patterns_enumerated;
    if (local_stats.patterns_enumerated > options.max_patterns) return;
    if (!IsFrequent(g, candidate, options)) return;
    ++local_stats.patterns_frequent;
    frontier.push_back(candidate);
  };

  // Seeds: all feasible single-edge patterns.
  for (auto [a, b] : feasible) {
    Metagraph m;
    MetaNodeId x = m.AddNode(a);
    MetaNodeId y = m.AddNode(b);
    m.AddEdge(x, y);
    consider(m);
  }

  // BFS pattern growth.
  while (!frontier.empty()) {
    Metagraph m = frontier.front();
    frontier.pop_front();

    // Output check.
    const int anchors = m.CountType(options.anchor_type);
    const int non_anchors = m.num_nodes() - anchors;
    bool emit = anchors >= options.min_anchor_nodes &&
                non_anchors >= options.min_non_anchor_nodes;
    SymmetryInfo sym;
    if (emit) {
      sym = AnalyzeSymmetry(m);
      if (options.require_symmetric && !sym.is_symmetric) emit = false;
      if (emit && options.require_symmetric_anchor_pair) {
        bool anchor_pair = false;
        for (auto [a, b] : sym.symmetric_pairs) {
          if (m.TypeOf(a) == options.anchor_type) {
            anchor_pair = true;
            break;
          }
        }
        emit = anchor_pair;
      }
    }
    if (emit) {
      MinedMetagraph mined;
      mined.graph = m;
      mined.symmetry = std::move(sym);
      mined.support = ReportedSupport(g, m, options);
      mined.is_path = m.IsPath();
      output.push_back(std::move(mined));
      ++local_stats.patterns_output;
    }

    // Extensions: (a) close an edge between existing non-adjacent nodes.
    for (MetaNodeId x = 0; x < m.num_nodes(); ++x) {
      for (MetaNodeId y = x + 1; y < m.num_nodes(); ++y) {
        if (m.HasEdge(x, y)) continue;
        if (!edge_feasible(m.TypeOf(x), m.TypeOf(y))) continue;
        Metagraph ext = m;
        ext.AddEdge(x, y);
        consider(ext);
      }
    }
    // (b) grow a new node attached to one existing node.
    if (m.num_nodes() < options.max_nodes) {
      for (MetaNodeId x = 0; x < m.num_nodes(); ++x) {
        for (TypeId nt = 0; nt < t; ++nt) {
          if (!edge_feasible(m.TypeOf(x), nt)) continue;
          Metagraph ext = m;
          MetaNodeId y = ext.AddNode(nt);
          ext.AddEdge(x, y);
          consider(ext);
        }
      }
    }
  }

  local_stats.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;
  return output;
}

}  // namespace metaprox
