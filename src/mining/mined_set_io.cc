#include "mining/mined_set_io.h"

#include <istream>
#include <ostream>
#include <string>

namespace metaprox {
namespace {
constexpr char kMagic[] = "metaprox-metagraphs v1";
}  // namespace

util::Status WriteMinedMetagraphs(const std::vector<MinedMetagraph>& mined,
                                  std::ostream& os) {
  os << kMagic << '\n' << mined.size() << '\n';
  for (const MinedMetagraph& m : mined) {
    os << static_cast<int>(m.graph.num_nodes());
    for (int v = 0; v < m.graph.num_nodes(); ++v) {
      os << ' ' << m.graph.TypeOf(static_cast<MetaNodeId>(v));
    }
    auto edges = m.graph.Edges();
    os << ' ' << edges.size();
    for (auto [a, b] : edges) {
      os << ' ' << static_cast<int>(a) << ' ' << static_cast<int>(b);
    }
    os << ' ' << m.support << '\n';
  }
  if (!os.good()) return util::Status::IoError("metagraph set write failed");
  return util::Status::Ok();
}

util::StatusOr<std::vector<MinedMetagraph>> ReadMinedMetagraphs(
    std::istream& is) {
  std::string magic;
  std::getline(is, magic);
  if (magic != kMagic) {
    return util::Status::InvalidArgument(
        "missing metaprox-metagraphs v1 header");
  }
  size_t count = 0;
  is >> count;
  if (!is) return util::Status::InvalidArgument("bad metagraph count");
  std::vector<MinedMetagraph> mined;
  mined.reserve(count);
  for (size_t n = 0; n < count; ++n) {
    int nodes = 0;
    is >> nodes;
    if (!is || nodes < 1 || nodes > Metagraph::kMaxNodes) {
      return util::Status::InvalidArgument("bad metagraph node count");
    }
    MinedMetagraph m;
    for (int v = 0; v < nodes; ++v) {
      uint32_t type = 0;
      is >> type;
      if (!is || type > kInvalidType) {
        return util::Status::InvalidArgument("bad metagraph node type");
      }
      m.graph.AddNode(static_cast<TypeId>(type));
    }
    size_t edges = 0;
    is >> edges;
    for (size_t e = 0; e < edges; ++e) {
      int a = 0, b = 0;
      is >> a >> b;
      if (!is || a < 0 || b < 0 || a >= nodes || b >= nodes || a == b) {
        return util::Status::InvalidArgument("bad metagraph edge");
      }
      m.graph.AddEdge(static_cast<MetaNodeId>(a), static_cast<MetaNodeId>(b));
    }
    is >> m.support;
    if (!is) return util::Status::InvalidArgument("bad metagraph support");
    m.is_path = m.graph.IsPath();
    m.symmetry = AnalyzeSymmetry(m.graph);
    mined.push_back(std::move(m));
  }
  return mined;
}

}  // namespace metaprox
