#include "datagen/arrival.h"

#include <algorithm>
#include <cstdint>

#include "graph/graph_builder.h"
#include "util/macros.h"

namespace metaprox::datagen {

ArrivalTimeline SliceByArrival(const Graph& full, TypeId anchor_type,
                               const ArrivalConfig& config) {
  const size_t n = full.num_nodes();
  const size_t num_slices = config.num_slices;
  const auto anchors = full.NodesOfType(anchor_type);
  MX_CHECK_MSG(!anchors.empty(), "the anchor type has no nodes to slice");

  // How many anchors arrive with the base. Clamped so both sides of the
  // split are nonempty whenever slices were asked for.
  size_t base_anchors = static_cast<size_t>(
      config.base_fraction * static_cast<double>(anchors.size()));
  base_anchors = std::max<size_t>(1, base_anchors);
  if (num_slices > 0 && base_anchors >= anchors.size()) {
    base_anchors = anchors.size() - 1;
  }

  // slice_of[v]: 0 = base; s >= 1 = arrives with slice s. Anchors past
  // the base split are spread over the slices in equal contiguous runs
  // (the last takes the remainder), all in original-id order.
  std::vector<uint32_t> slice_of(n, 0);
  const size_t late = anchors.size() - base_anchors;
  if (num_slices > 0 && late > 0) {
    const size_t per_slice = std::max<size_t>(1, late / num_slices);
    for (size_t i = base_anchors; i < anchors.size(); ++i) {
      const size_t rank = (i - base_anchors) / per_slice;
      slice_of[anchors[i]] = static_cast<uint32_t>(
          1 + std::min(rank, num_slices - 1));
    }
  }

  // Renumber by (slice, original id): counting sort over the slices.
  const size_t num_buckets = num_slices + 1;
  std::vector<size_t> slice_count(num_buckets, 0);
  for (NodeId v = 0; v < n; ++v) ++slice_count[slice_of[v]];
  std::vector<size_t> slice_begin(num_buckets + 1, 0);
  for (size_t s = 0; s < num_buckets; ++s) {
    slice_begin[s + 1] = slice_begin[s] + slice_count[s];
  }
  std::vector<NodeId> new_id(n, kInvalidNode);
  {
    std::vector<size_t> next = slice_begin;
    for (NodeId v = 0; v < n; ++v) {
      new_id[v] = static_cast<NodeId>(next[slice_of[v]]++);
    }
  }

  ArrivalTimeline timeline;

  // Base graph: same type registry (all names interned in registration
  // order, whether or not the base uses them yet — delta nodes of those
  // types then resolve to the same ids), slice-0 nodes, and every edge
  // both of whose endpoints are in the base.
  GraphBuilder builder;
  for (const std::string& type_name : full.type_registry().names()) {
    builder.InternType(type_name);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (slice_of[v] == 0) builder.AddNode(full.TypeOf(v), full.NameOf(v));
  }
  for (NodeId v = 0; v < n; ++v) {
    if (slice_of[v] != 0) continue;
    for (NodeId w : full.Neighbors(v)) {
      if (v < w && slice_of[w] == 0) {
        MX_CHECK(builder.AddEdge(new_id[v], new_id[w]).ok());
      }
    }
  }
  timeline.base = builder.Build();

  // Each slice: its nodes in original-id order, then every edge whose
  // LATER endpoint arrives with it (the other endpoint already exists, so
  // the delta validates against the grown node count).
  timeline.slices.reserve(num_slices);
  for (uint32_t s = 1; s <= num_slices; ++s) {
    GraphDelta delta(slice_begin[s]);
    const TypeRegistry& registry = full.type_registry();
    for (NodeId v = 0; v < n; ++v) {
      if (slice_of[v] == s) {
        delta.AddNode(registry.Name(full.TypeOf(v)), full.NameOf(v));
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (slice_of[v] > s) continue;
      for (NodeId w : full.Neighbors(v)) {
        if (v < w && slice_of[w] <= s &&
            std::max(slice_of[v], slice_of[w]) == s) {
          MX_CHECK(delta.AddEdge(new_id[v], new_id[w]).ok());
        }
      }
    }
    timeline.slices.push_back(std::move(delta));
  }
  return timeline;
}

}  // namespace metaprox::datagen
