#include "datagen/linkedin.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "graph/graph_builder.h"
#include "util/rng.h"

namespace metaprox::datagen {
namespace {

struct Stint {
  uint32_t employer;
  uint32_t start;  // latent years
  uint32_t end;
};

struct UserProfile {
  std::vector<uint32_t> colleges;
  std::vector<uint32_t> eras;  // aligned with colleges
  std::vector<Stint> stints;
  uint32_t location;
};

}  // namespace

Dataset GenerateLinkedIn(const LinkedInConfig& cfg, uint64_t seed) {
  util::Rng rng(seed);
  const uint32_t n = cfg.num_users;

  // Employers cluster in locations (company towns) — this creates the
  // confusable shared-location signal for coworkers.
  std::vector<uint32_t> employer_location(cfg.num_employers);
  for (auto& loc : employer_location) {
    loc = static_cast<uint32_t>(rng.UniformInt(cfg.num_locations));
  }

  std::vector<UserProfile> users(n);
  for (auto& u : users) {
    uint32_t num_colleges =
        1 + static_cast<uint32_t>(rng.UniformInt(cfg.max_colleges_per_user));
    for (uint32_t c = 0; c < num_colleges; ++c) {
      uint32_t college =
          static_cast<uint32_t>(rng.Zipf(cfg.num_colleges, 0.9));
      if (std::find(u.colleges.begin(), u.colleges.end(), college) !=
          u.colleges.end()) {
        continue;
      }
      u.colleges.push_back(college);
      u.eras.push_back(static_cast<uint32_t>(rng.UniformInt(cfg.num_eras)));
    }
    uint32_t num_stints =
        1 + static_cast<uint32_t>(rng.UniformInt(cfg.max_employers_per_user));
    uint32_t year = static_cast<uint32_t>(rng.UniformInt(10));
    for (uint32_t s = 0; s < num_stints; ++s) {
      uint32_t employer =
          static_cast<uint32_t>(rng.Zipf(cfg.num_employers, 0.8));
      uint32_t len = 1 + static_cast<uint32_t>(rng.UniformInt(6));
      u.stints.push_back({employer, year, year + len});
      year += len;
    }
    // Users usually live where their latest employer is.
    u.location = rng.Bernoulli(0.7)
                     ? employer_location[u.stints.back().employer]
                     : static_cast<uint32_t>(
                           rng.UniformInt(cfg.num_locations));
  }

  GraphBuilder builder;
  TypeId user_t = builder.InternType("user");
  TypeId employer_t = builder.InternType("employer");
  TypeId location_t = builder.InternType("location");
  TypeId college_t = builder.InternType("college");

  std::vector<NodeId> user_ids(n);
  for (uint32_t i = 0; i < n; ++i) user_ids[i] = builder.AddNode(user_t);
  std::vector<NodeId> employer_ids(cfg.num_employers);
  for (auto& id : employer_ids) id = builder.AddNode(employer_t);
  std::vector<NodeId> location_ids(cfg.num_locations);
  for (auto& id : location_ids) id = builder.AddNode(location_t);
  std::vector<NodeId> college_ids(cfg.num_colleges);
  for (auto& id : college_ids) id = builder.AddNode(college_t);

  std::vector<std::vector<uint32_t>> by_college(cfg.num_colleges);
  std::vector<std::vector<uint32_t>> by_employer(cfg.num_employers);
  for (uint32_t i = 0; i < n; ++i) {
    const UserProfile& u = users[i];
    for (uint32_t c : u.colleges) {
      builder.AddEdge(user_ids[i], college_ids[c]);
      by_college[c].push_back(i);
    }
    for (const Stint& s : u.stints) {
      builder.AddEdge(user_ids[i], employer_ids[s.employer]);
      by_employer[s.employer].push_back(i);
    }
    builder.AddEdge(user_ids[i], location_ids[u.location]);
  }

  // Professional connections.
  auto sprinkle = [&](const std::vector<std::vector<uint32_t>>& groups,
                      double p) {
    for (const auto& members : groups) {
      if (members.size() < 2) continue;
      double expected = p * 0.5 * static_cast<double>(members.size()) *
                        static_cast<double>(members.size() - 1);
      uint64_t count = static_cast<uint64_t>(expected + 0.5);
      count = std::min<uint64_t>(count, 15ull * members.size());
      for (uint64_t e = 0; e < count; ++e) {
        uint32_t a = members[rng.UniformInt(members.size())];
        uint32_t b = members[rng.UniformInt(members.size())];
        if (a != b) builder.AddEdge(user_ids[a], user_ids[b]);
      }
    }
  };
  sprinkle(by_college, cfg.connect_same_college / 10.0);
  sprinkle(by_employer, cfg.connect_same_employer / 10.0);
  uint64_t random_edges =
      static_cast<uint64_t>(cfg.random_connections_per_user * n);
  for (uint64_t e = 0; e < random_edges; ++e) {
    uint32_t a = static_cast<uint32_t>(rng.UniformInt(n));
    uint32_t b = static_cast<uint32_t>(rng.UniformInt(n));
    if (a != b) builder.AddEdge(user_ids[a], user_ids[b]);
  }

  Dataset ds;
  ds.name = "linkedin-synthetic";
  ds.graph = builder.Build();
  ds.user_type = user_t;

  // ---- ground truth with latent gates ----------------------------------
  GroundTruth college_gt("college");
  GroundTruth coworker_gt("coworker");

  // Iterate shared-college pairs via the college buckets (cheaper than all
  // pairs and exactly the support of the label rules).
  auto label_college = [&](uint32_t i, uint32_t j) {
    const UserProfile& a = users[i];
    const UserProfile& b = users[j];
    for (size_t ca = 0; ca < a.colleges.size(); ++ca) {
      for (size_t cb = 0; cb < b.colleges.size(); ++cb) {
        if (a.colleges[ca] != b.colleges[cb]) continue;
        // Conjunctive rule: shared college AND shared location.
        double p = a.location == b.location
                       ? cfg.college_label_with_location
                       : cfg.college_label_alone;
        // Latent era gate: large enrollment gaps attenuate the label.
        int era_gap = std::abs(static_cast<int>(a.eras[ca]) -
                               static_cast<int>(b.eras[cb]));
        if (era_gap > 2) p *= cfg.era_gate_attenuation;
        if (rng.Bernoulli(p)) return true;
      }
    }
    return false;
  };
  auto label_coworker = [&](uint32_t i, uint32_t j) {
    const UserProfile& a = users[i];
    const UserProfile& b = users[j];
    int shared_employers = 0;
    for (const Stint& sa : a.stints) {
      for (const Stint& sb : b.stints) {
        if (sa.employer == sb.employer) {
          ++shared_employers;
          break;
        }
      }
    }
    if (shared_employers == 0) return false;
    double p;
    if (shared_employers >= 2) {
      p = cfg.coworker_label_two_employers;  // careers moved together
    } else if (a.location == b.location) {
      p = cfg.coworker_label_with_location;  // same site
    } else {
      p = cfg.coworker_label_alone;
    }
    return rng.Bernoulli(p);
  };

  auto label_groups = [&](const std::vector<std::vector<uint32_t>>& groups,
                          GroundTruth& gt, auto&& label_fn) {
    std::unordered_set<uint64_t> considered;
    for (const auto& members : groups) {
      for (size_t x = 0; x < members.size(); ++x) {
        for (size_t y = x + 1; y < members.size(); ++y) {
          uint32_t i = members[x], j = members[y];
          if (i == j) continue;
          if (!considered.insert(PairKey(user_ids[i], user_ids[j])).second) {
            continue;
          }
          if (label_fn(i, j)) {
            gt.AddPositivePair(user_ids[i], user_ids[j]);
          }
        }
      }
    }
  };
  label_groups(by_college, college_gt, label_college);
  label_groups(by_employer, coworker_gt, label_coworker);

  college_gt.Finalize();
  coworker_gt.Finalize();
  ds.classes.push_back(std::move(college_gt));
  ds.classes.push_back(std::move(coworker_gt));
  return ds;
}

}  // namespace metaprox::datagen
