#include "datagen/citation.h"

#include <algorithm>
#include <vector>

#include "graph/graph_builder.h"
#include "util/rng.h"

namespace metaprox::datagen {
namespace {

struct PaperProfile {
  uint32_t topic;
  uint32_t community;  // latent: authors/venue cluster
  uint32_t venue;
  std::vector<uint32_t> keywords;
  std::vector<uint32_t> authors;
};

}  // namespace

Dataset GenerateCitation(const CitationConfig& cfg, uint64_t seed) {
  util::Rng rng(seed);
  const uint32_t n = cfg.num_papers;
  const uint32_t num_communities = cfg.num_venues;  // one community per venue

  std::vector<PaperProfile> papers(n);
  for (auto& p : papers) {
    p.topic = static_cast<uint32_t>(rng.Zipf(cfg.num_topics, 0.8));
    p.community = static_cast<uint32_t>(rng.UniformInt(num_communities));
    // Venue mostly determined by the community.
    p.venue = rng.Bernoulli(0.8)
                  ? p.community % cfg.num_venues
                  : static_cast<uint32_t>(rng.UniformInt(cfg.num_venues));
    // Keywords cluster by topic.
    for (uint32_t kw = 0; kw < cfg.keywords_per_paper; ++kw) {
      uint32_t keyword =
          rng.Bernoulli(0.7)
              ? (p.topic * 5 + static_cast<uint32_t>(rng.UniformInt(5))) %
                    cfg.num_keywords
              : static_cast<uint32_t>(rng.UniformInt(cfg.num_keywords));
      if (std::find(p.keywords.begin(), p.keywords.end(), keyword) ==
          p.keywords.end()) {
        p.keywords.push_back(keyword);
      }
    }
    // Authors cluster by community.
    for (uint32_t a = 0; a < cfg.authors_per_paper; ++a) {
      uint32_t author =
          rng.Bernoulli(0.8)
              ? (p.community * 23 +
                 static_cast<uint32_t>(rng.UniformInt(20))) %
                    cfg.num_authors
              : static_cast<uint32_t>(rng.UniformInt(cfg.num_authors));
      if (std::find(p.authors.begin(), p.authors.end(), author) ==
          p.authors.end()) {
        p.authors.push_back(author);
      }
    }
  }

  GraphBuilder builder;
  TypeId paper_t = builder.InternType("paper");
  TypeId author_t = builder.InternType("author");
  TypeId venue_t = builder.InternType("venue");
  TypeId keyword_t = builder.InternType("keyword");

  std::vector<NodeId> paper_ids(n);
  for (uint32_t i = 0; i < n; ++i) paper_ids[i] = builder.AddNode(paper_t);
  std::vector<NodeId> author_ids(cfg.num_authors);
  for (auto& id : author_ids) id = builder.AddNode(author_t);
  std::vector<NodeId> venue_ids(cfg.num_venues);
  for (auto& id : venue_ids) id = builder.AddNode(venue_t);
  std::vector<NodeId> keyword_ids(cfg.num_keywords);
  for (auto& id : keyword_ids) id = builder.AddNode(keyword_t);

  std::vector<std::vector<uint32_t>> by_topic(cfg.num_topics);
  std::vector<std::vector<uint32_t>> by_community(num_communities);
  for (uint32_t i = 0; i < n; ++i) {
    const PaperProfile& p = papers[i];
    builder.AddEdge(paper_ids[i], venue_ids[p.venue]);
    for (uint32_t kw : p.keywords) {
      builder.AddEdge(paper_ids[i], keyword_ids[kw]);
    }
    for (uint32_t a : p.authors) {
      builder.AddEdge(paper_ids[i], author_ids[a]);
    }
    by_topic[p.topic].push_back(i);
    by_community[p.community].push_back(i);
  }
  // Citation edges: papers cite within their topic and community.
  for (uint32_t i = 0; i < n; ++i) {
    const auto& topic_peers = by_topic[papers[i].topic];
    for (int c = 0; c < 3 && topic_peers.size() > 1; ++c) {
      uint32_t j = topic_peers[rng.UniformInt(topic_peers.size())];
      if (j != i) builder.AddEdge(paper_ids[i], paper_ids[j]);
    }
    const auto& community_peers = by_community[papers[i].community];
    for (int c = 0; c < 2 && community_peers.size() > 1; ++c) {
      uint32_t j = community_peers[rng.UniformInt(community_peers.size())];
      if (j != i) builder.AddEdge(paper_ids[i], paper_ids[j]);
    }
  }

  Dataset ds;
  ds.name = "citation-synthetic";
  ds.graph = builder.Build();
  ds.user_type = paper_t;

  GroundTruth same_problem("same-problem");
  GroundTruth same_community("same-community");
  auto label_groups = [&](const std::vector<std::vector<uint32_t>>& groups,
                          GroundTruth& gt, double p) {
    for (const auto& members : groups) {
      for (size_t x = 0; x < members.size(); ++x) {
        for (size_t y = x + 1; y < members.size(); ++y) {
          if (members[x] != members[y] && rng.Bernoulli(p)) {
            gt.AddPositivePair(paper_ids[members[x]], paper_ids[members[y]]);
          }
        }
      }
    }
  };
  label_groups(by_topic, same_problem, cfg.same_topic_label);
  label_groups(by_community, same_community, cfg.same_community_label);
  same_problem.Finalize();
  same_community.Finalize();
  ds.classes.push_back(std::move(same_problem));
  ds.classes.push_back(std::move(same_community));
  return ds;
}

}  // namespace metaprox::datagen
