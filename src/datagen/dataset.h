// A generated benchmark dataset: the typed object graph plus labeled ground
// truth for each semantic class of proximity.
#ifndef METAPROX_DATAGEN_DATASET_H_
#define METAPROX_DATAGEN_DATASET_H_

#include <string>
#include <vector>

#include "eval/ground_truth.h"
#include "graph/graph.h"

namespace metaprox::datagen {

struct Dataset {
  std::string name;
  Graph graph;
  TypeId user_type = 0;  // the anchor type whose proximity is measured
  std::vector<GroundTruth> classes;

  const GroundTruth* FindClass(const std::string& class_name) const {
    for (const auto& gt : classes) {
      if (gt.class_name() == class_name) return &gt;
    }
    return nullptr;
  }
};

}  // namespace metaprox::datagen

#endif  // METAPROX_DATAGEN_DATASET_H_
