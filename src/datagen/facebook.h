// Synthetic Facebook-like ego-network graph (substitute for the McAuley &
// Leskovec dataset used in Sect. V-A, which is not redistributable here).
//
// Ten node types: user plus nine attribute types. Users are organized into
// families (shared surname, usually shared location/hometown), school
// cohorts (school, degree, majors) and workplaces (employer, work-location,
// work-projects); friendship edges are denser inside those groups.
//
// Ground truth follows the paper's own published rules verbatim:
//   family    — two users share the same surname AND the same location or
//               hometown;
//   classmate — two users share the same school AND the same degree or
//               major;
// with a 5% chance of random label noise.
#ifndef METAPROX_DATAGEN_FACEBOOK_H_
#define METAPROX_DATAGEN_FACEBOOK_H_

#include <cstdint>

#include "datagen/dataset.h"

namespace metaprox::datagen {

struct FacebookConfig {
  uint32_t num_users = 1200;
  uint32_t num_surnames = 220;
  uint32_t num_locations = 60;
  uint32_t num_hometowns = 80;
  uint32_t num_schools = 40;
  uint32_t num_degrees = 5;
  uint32_t num_majors = 30;
  uint32_t num_employers = 120;
  uint32_t num_work_locations = 50;
  uint32_t num_work_projects = 150;

  double family_share_location = 0.75;
  double family_share_hometown = 0.75;
  double friend_same_family = 0.6;
  double friend_same_school = 0.08;
  double friend_same_employer = 0.10;
  double random_friends_per_user = 1.5;
  double label_noise = 0.05;  // the paper's 5% random-label chance
};

Dataset GenerateFacebook(const FacebookConfig& config, uint64_t seed);

}  // namespace metaprox::datagen

#endif  // METAPROX_DATAGEN_FACEBOOK_H_
