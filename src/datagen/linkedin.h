// Synthetic LinkedIn-like professional graph (substitute for the Li et al.
// dataset used in Sect. V-A). Four node types: user, employer, location,
// college — the paper's exact type set.
//
// Relationship labels emulate the original's human-annotated classes, and
// are *conjunctive* in the observable attributes (as human-labeled
// relationships are in practice — the paper's key premise that single
// metapaths cannot characterize a class):
//   college  — share a college AND (usually) a location: classmates who
//              stayed in the same place remain friends (p high); sharing
//              only the college rarely earns the label (p low);
//   coworker — share two or more employers (careers moved together,
//              p very high), or one employer plus the location of its site
//              (p medium); one employer alone rarely suffices (p low).
// A latent enrollment-era gate adds further label noise so no structure is
// perfectly predictive.
#ifndef METAPROX_DATAGEN_LINKEDIN_H_
#define METAPROX_DATAGEN_LINKEDIN_H_

#include <cstdint>

#include "datagen/dataset.h"

namespace metaprox::datagen {

struct LinkedInConfig {
  uint32_t num_users = 2500;
  uint32_t num_employers = 300;
  uint32_t num_locations = 150;
  uint32_t num_colleges = 120;

  uint32_t max_colleges_per_user = 2;
  uint32_t max_employers_per_user = 3;

  // Label rules (conjunctions of observables, plus a latent era gate).
  uint32_t num_eras = 12;  // latent enrollment eras
  double college_label_with_location = 0.85;
  double college_label_alone = 0.10;
  double era_gate_attenuation = 0.3;   // multiplier when eras differ a lot
  double coworker_label_two_employers = 0.90;
  double coworker_label_with_location = 0.60;
  double coworker_label_alone = 0.10;

  // Connection densities are deliberately similar across group kinds so
  // that raw friendship structure is not a class-specific signal (classes
  // are defined by attributes, as in the paper).
  double connect_same_college = 0.05;
  double connect_same_employer = 0.05;
  double random_connections_per_user = 2.5;
};

Dataset GenerateLinkedIn(const LinkedInConfig& config, uint64_t seed);

}  // namespace metaprox::datagen

#endif  // METAPROX_DATAGEN_LINKEDIN_H_
