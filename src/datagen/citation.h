// Synthetic citation graph for the "context-aware citation search" scenario
// motivated in the paper's introduction: papers, authors, venues and
// keywords, with two semantic classes of paper-paper proximity:
//   same-problem — papers attacking the same core problem (same topic
//                  cluster: heavily overlapping keywords);
//   same-community — papers from the same research community (shared
//                  authors / venue), which may be mere background citations.
#ifndef METAPROX_DATAGEN_CITATION_H_
#define METAPROX_DATAGEN_CITATION_H_

#include <cstdint>

#include "datagen/dataset.h"

namespace metaprox::datagen {

struct CitationConfig {
  uint32_t num_papers = 1500;
  uint32_t num_authors = 600;
  uint32_t num_venues = 25;
  uint32_t num_keywords = 300;
  uint32_t num_topics = 60;  // latent topic clusters

  uint32_t keywords_per_paper = 4;
  uint32_t authors_per_paper = 2;
  double same_topic_label = 0.9;
  double same_community_label = 0.75;
};

Dataset GenerateCitation(const CitationConfig& config, uint64_t seed);

}  // namespace metaprox::datagen

#endif  // METAPROX_DATAGEN_CITATION_H_
