// Time-sliced "arrival" view of a generated dataset: a base graph plus a
// sequence of GraphDeltas that replay the rest of the dataset as
// streaming updates — the workload behind bench_incremental and the
// server's APPEND/REFRESH smoke phase.
//
// The split is deterministic: a fraction of the anchor-type nodes (users,
// authors, members) "arrive" with the base, the rest arrive in
// `num_slices` equal batches in node-id order; every other node type is
// infrastructure (schools, venues, employers) and is present from the
// start. An edge arrives with its later endpoint, so each delta only
// references nodes that already exist — exactly what GraphDelta and
// IndexMaintainer::Append accept.
//
// Replaying base + slices[0..i] through ApplyDelta yields exactly the
// full dataset's nodes and edges restricted to what has arrived (under a
// deterministic renumbering), so at every refresh point the
// delta-refreshed index can be byte-diffed against a full rebuild over
// the same grown graph — the incremental-refresh correctness gate.
#ifndef METAPROX_DATAGEN_ARRIVAL_H_
#define METAPROX_DATAGEN_ARRIVAL_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_delta.h"

namespace metaprox::datagen {

struct ArrivalConfig {
  /// Update batches after the base. Each holds an equal share of the
  /// late-arriving anchor nodes (the last batch takes the remainder).
  size_t num_slices = 4;
  /// Fraction of anchor-type nodes present in the base graph. Clamped so
  /// the base holds at least one anchor and the slices at least one in
  /// total when the config asks for any slices.
  double base_fraction = 0.5;
};

struct ArrivalTimeline {
  /// The graph at time zero: all non-anchor nodes, the first
  /// base_fraction of anchors, and every edge between them.
  Graph base;
  /// slices[i] is primed against base + slices[0..i-1] (its base_nodes()
  /// counts them), so the timeline replays through repeated
  /// ApplyDelta/Append without renumbering.
  std::vector<GraphDelta> slices;
};

/// Splits `full` into an arrival timeline. `anchor_type` is the type whose
/// nodes arrive over time (Dataset::user_type for the bundled generators);
/// nodes of every other type are in the base. Node ids are renumbered by
/// (arrival slice, original id); the mapping is internal — callers treat
/// the timeline as its own dataset.
ArrivalTimeline SliceByArrival(const Graph& full, TypeId anchor_type,
                               const ArrivalConfig& config);

}  // namespace metaprox::datagen

#endif  // METAPROX_DATAGEN_ARRIVAL_H_
