#include "datagen/facebook.h"

#include <algorithm>
#include <vector>

#include "graph/graph_builder.h"
#include "util/macros.h"
#include "util/rng.h"

namespace metaprox::datagen {
namespace {

struct UserProfile {
  uint32_t family;
  uint32_t surname;
  int32_t location = -1;
  int32_t hometown = -1;
  uint32_t school;
  uint32_t degree;
  std::vector<uint32_t> majors;
  uint32_t employer;
  uint32_t work_location;
  std::vector<uint32_t> work_projects;
};

}  // namespace

Dataset GenerateFacebook(const FacebookConfig& cfg, uint64_t seed) {
  util::Rng rng(seed);
  const uint32_t n = cfg.num_users;

  // ---- latent profiles -------------------------------------------------
  std::vector<UserProfile> users(n);

  // Families: contiguous blocks of size 1-5.
  uint32_t num_families = 0;
  {
    uint32_t i = 0;
    while (i < n) {
      uint32_t size = 1 + static_cast<uint32_t>(rng.UniformInt(5));
      size = std::min(size, n - i);
      uint32_t surname = static_cast<uint32_t>(
          rng.UniformInt(cfg.num_surnames));
      int32_t fam_location = static_cast<int32_t>(
          rng.UniformInt(cfg.num_locations));
      int32_t fam_hometown = static_cast<int32_t>(
          rng.UniformInt(cfg.num_hometowns));
      for (uint32_t j = 0; j < size; ++j) {
        UserProfile& u = users[i + j];
        u.family = num_families;
        u.surname = surname;
        u.location = rng.Bernoulli(cfg.family_share_location)
                         ? fam_location
                         : static_cast<int32_t>(
                               rng.UniformInt(cfg.num_locations));
        u.hometown = rng.Bernoulli(cfg.family_share_hometown)
                         ? fam_hometown
                         : static_cast<int32_t>(
                               rng.UniformInt(cfg.num_hometowns));
      }
      i += size;
      ++num_families;
    }
  }

  // Education: Zipf-ish school popularity; degree/major correlate weakly
  // with the school.
  for (auto& u : users) {
    u.school = static_cast<uint32_t>(rng.Zipf(cfg.num_schools, 0.8));
    u.degree = static_cast<uint32_t>(rng.UniformInt(cfg.num_degrees));
    uint32_t num_majors = 1 + static_cast<uint32_t>(rng.UniformInt(2));
    for (uint32_t j = 0; j < num_majors; ++j) {
      // Schools have "popular" majors: bias toward school-dependent offset.
      uint32_t major = rng.Bernoulli(0.6)
                           ? (u.school * 7 + static_cast<uint32_t>(
                                                 rng.UniformInt(4))) %
                                 cfg.num_majors
                           : static_cast<uint32_t>(
                                 rng.UniformInt(cfg.num_majors));
      if (std::find(u.majors.begin(), u.majors.end(), major) ==
          u.majors.end()) {
        u.majors.push_back(major);
      }
    }
  }

  // Work: employers with 1-2 locations and a project pool.
  std::vector<std::array<uint32_t, 2>> employer_locations(cfg.num_employers);
  for (auto& locs : employer_locations) {
    locs[0] = static_cast<uint32_t>(rng.UniformInt(cfg.num_work_locations));
    locs[1] = static_cast<uint32_t>(rng.UniformInt(cfg.num_work_locations));
  }
  for (auto& u : users) {
    u.employer = static_cast<uint32_t>(rng.Zipf(cfg.num_employers, 0.7));
    u.work_location = employer_locations[u.employer][rng.UniformInt(2)];
    uint32_t num_projects = 1 + static_cast<uint32_t>(rng.UniformInt(3));
    for (uint32_t j = 0; j < num_projects; ++j) {
      uint32_t project = (u.employer * 11 + static_cast<uint32_t>(
                                                rng.UniformInt(6))) %
                         cfg.num_work_projects;
      if (std::find(u.work_projects.begin(), u.work_projects.end(),
                    project) == u.work_projects.end()) {
        u.work_projects.push_back(project);
      }
    }
  }

  // ---- build the typed object graph ------------------------------------
  GraphBuilder builder;
  TypeId user_t = builder.InternType("user");
  TypeId surname_t = builder.InternType("surname");
  TypeId location_t = builder.InternType("location");
  TypeId hometown_t = builder.InternType("hometown");
  TypeId school_t = builder.InternType("school");
  TypeId degree_t = builder.InternType("degree");
  TypeId major_t = builder.InternType("major");
  TypeId employer_t = builder.InternType("employer");
  TypeId work_location_t = builder.InternType("work-location");
  TypeId work_project_t = builder.InternType("work-project");

  std::vector<NodeId> user_ids(n);
  for (uint32_t i = 0; i < n; ++i) user_ids[i] = builder.AddNode(user_t);

  auto add_values = [&](TypeId type, uint32_t count) {
    std::vector<NodeId> ids(count);
    for (uint32_t i = 0; i < count; ++i) ids[i] = builder.AddNode(type);
    return ids;
  };
  auto surname_ids = add_values(surname_t, cfg.num_surnames);
  auto location_ids = add_values(location_t, cfg.num_locations);
  auto hometown_ids = add_values(hometown_t, cfg.num_hometowns);
  auto school_ids = add_values(school_t, cfg.num_schools);
  auto degree_ids = add_values(degree_t, cfg.num_degrees);
  auto major_ids = add_values(major_t, cfg.num_majors);
  auto employer_ids = add_values(employer_t, cfg.num_employers);
  auto work_location_ids = add_values(work_location_t, cfg.num_work_locations);
  auto work_project_ids = add_values(work_project_t, cfg.num_work_projects);

  for (uint32_t i = 0; i < n; ++i) {
    const UserProfile& u = users[i];
    builder.AddEdge(user_ids[i], surname_ids[u.surname]);
    builder.AddEdge(user_ids[i], location_ids[u.location]);
    builder.AddEdge(user_ids[i], hometown_ids[u.hometown]);
    builder.AddEdge(user_ids[i], school_ids[u.school]);
    builder.AddEdge(user_ids[i], degree_ids[u.degree]);
    for (uint32_t m : u.majors) builder.AddEdge(user_ids[i], major_ids[m]);
    builder.AddEdge(user_ids[i], employer_ids[u.employer]);
    builder.AddEdge(user_ids[i], work_location_ids[u.work_location]);
    for (uint32_t p : u.work_projects) {
      builder.AddEdge(user_ids[i], work_project_ids[p]);
    }
  }

  // Friendship edges: dense within families, sparser within schools and
  // workplaces, plus random noise.
  std::vector<std::vector<uint32_t>> by_school(cfg.num_schools);
  std::vector<std::vector<uint32_t>> by_employer(cfg.num_employers);
  for (uint32_t i = 0; i < n; ++i) {
    by_school[users[i].school].push_back(i);
    by_employer[users[i].employer].push_back(i);
  }
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n && users[j].family == users[i].family;
         ++j) {
      if (rng.Bernoulli(cfg.friend_same_family)) {
        builder.AddEdge(user_ids[i], user_ids[j]);
      }
    }
  }
  auto sprinkle = [&](const std::vector<std::vector<uint32_t>>& groups,
                      double p) {
    for (const auto& members : groups) {
      if (members.size() < 2) continue;
      // Expected p * |pairs| edges, sampled without enumerating all pairs.
      double expected = p * 0.5 * static_cast<double>(members.size()) *
                        static_cast<double>(members.size() - 1);
      uint64_t count = static_cast<uint64_t>(expected + 0.5);
      count = std::min<uint64_t>(count, 20ull * members.size());
      for (uint64_t e = 0; e < count; ++e) {
        uint32_t a = members[rng.UniformInt(members.size())];
        uint32_t b = members[rng.UniformInt(members.size())];
        if (a != b) builder.AddEdge(user_ids[a], user_ids[b]);
      }
    }
  };
  sprinkle(by_school, cfg.friend_same_school / 10.0);
  sprinkle(by_employer, cfg.friend_same_employer / 10.0);
  uint64_t random_edges =
      static_cast<uint64_t>(cfg.random_friends_per_user * n);
  for (uint64_t e = 0; e < random_edges; ++e) {
    uint32_t a = static_cast<uint32_t>(rng.UniformInt(n));
    uint32_t b = static_cast<uint32_t>(rng.UniformInt(n));
    if (a != b) builder.AddEdge(user_ids[a], user_ids[b]);
  }

  Dataset ds;
  ds.name = "facebook-synthetic";
  ds.graph = builder.Build();
  ds.user_type = user_t;

  // ---- ground truth: the paper's rules with 5% noise --------------------
  GroundTruth family("family");
  GroundTruth classmate("classmate");
  auto shares_major = [&](const UserProfile& a, const UserProfile& b) {
    for (uint32_t m : a.majors) {
      if (std::find(b.majors.begin(), b.majors.end(), m) != b.majors.end()) {
        return true;
      }
    }
    return false;
  };
  uint64_t family_positives = 0, classmate_positives = 0;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      const UserProfile& a = users[i];
      const UserProfile& b = users[j];
      if (a.surname == b.surname &&
          (a.location == b.location || a.hometown == b.hometown)) {
        if (!rng.Bernoulli(cfg.label_noise)) {
          family.AddPositivePair(user_ids[i], user_ids[j]);
          ++family_positives;
        }
      }
      if (a.school == b.school &&
          (a.degree == b.degree || shares_major(a, b))) {
        if (!rng.Bernoulli(cfg.label_noise)) {
          classmate.AddPositivePair(user_ids[i], user_ids[j]);
          ++classmate_positives;
        }
      }
    }
  }
  // The noisy 5%: random pairs labeled positive.
  auto add_noise = [&](GroundTruth& gt, uint64_t positives) {
    uint64_t noise = static_cast<uint64_t>(
        cfg.label_noise * static_cast<double>(positives));
    for (uint64_t e = 0; e < noise; ++e) {
      uint32_t a = static_cast<uint32_t>(rng.UniformInt(n));
      uint32_t b = static_cast<uint32_t>(rng.UniformInt(n));
      if (a != b) gt.AddPositivePair(user_ids[a], user_ids[b]);
    }
  };
  add_noise(family, family_positives);
  add_noise(classmate, classmate_positives);
  family.Finalize();
  classmate.Finalize();
  ds.classes.push_back(std::move(family));
  ds.classes.push_back(std::move(classmate));
  return ds;
}

}  // namespace metaprox::datagen
