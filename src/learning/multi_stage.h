// Multi-stage training — the progressive generalization of dual-stage
// training the paper sketches at the end of Sect. III-C:
//
//   "we can extend this approach to a multi-stage process, such that the
//    candidates K are identified not all in one stage, but progressively in
//    multiple stages. In each stage, we identify a small batch of
//    candidates K_i, treating K0 and previously identified candidates
//    K_1 ... K_{i-1} as the new seeds. Essentially, we gradually add more
//    candidates, and stop once the training accuracy becomes acceptable."
//
// The stop criterion here is the trained model's pairwise accuracy on a
// held-out validation slice of the training triplets; each stage re-scores
// the not-yet-matched metagraphs against the enlarged seed set.
#ifndef METAPROX_LEARNING_MULTI_STAGE_H_
#define METAPROX_LEARNING_MULTI_STAGE_H_

#include <functional>
#include <span>
#include <vector>

#include "learning/dual_stage.h"
#include "learning/trainer.h"
#include "mining/miner.h"

namespace metaprox {

struct MultiStageOptions {
  size_t batch_size = 15;        // |K_i| per stage
  size_t max_stages = 8;         // excluding the seed stage
  /// Stop once validation pairwise accuracy reaches this level.
  double target_accuracy = 0.95;
  /// Stop when a stage improves validation accuracy by less than this.
  double min_improvement = 0.002;
  /// Fraction of the examples held out for the stop criterion.
  double validation_fraction = 0.25;
  TrainOptions train;
};

struct MultiStageResult {
  std::vector<uint32_t> seeds;
  /// Candidate batches, one per executed stage.
  std::vector<std::vector<uint32_t>> batches;
  TrainResult final_stage;
  /// Validation pairwise accuracy after the seed stage and each batch.
  std::vector<double> accuracy_trace;
  size_t total_matched() const {
    size_t n = seeds.size();
    for (const auto& b : batches) n += b.size();
    return n;
  }
};

/// Pairwise accuracy of a full weight vector on examples: the fraction with
/// pi(q,x;w) > pi(q,y;w) (ties count 1/2).
double PairwiseAccuracy(const MetagraphVectorIndex& index,
                        std::span<const Example> examples,
                        std::span<const double> weights);

/// Runs the multi-stage process. `match_and_commit` matches the given
/// metagraphs into `index` (same contract as TrainDualStage).
MultiStageResult TrainMultiStage(
    const std::vector<MinedMetagraph>& metagraphs, MetagraphVectorIndex& index,
    std::span<const Example> examples, const MultiStageOptions& options,
    const std::function<void(std::span<const uint32_t>)>& match_and_commit,
    StructuralSimilarityCache* ss_cache = nullptr);

}  // namespace metaprox

#endif  // METAPROX_LEARNING_MULTI_STAGE_H_
