#include "learning/model_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "util/binary_io.h"
#include "util/macros.h"
#include "util/mmap_file.h"

namespace metaprox {
namespace {

constexpr char kMagic[] = "metaprox-model v1";

// Section ids of a kModelArtifact container.
constexpr uint32_t kSecModelMeta = 1;     // weight count
constexpr uint32_t kSecModelWeights = 2;  // raw LE binary64, aligned

// %.17g round-trips an IEEE binary64 exactly through strtod — the same
// rule server::FormatScore follows, restated here so learning/ does not
// depend on server/.
std::string FormatWeight(double w) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", w);
  return buf;
}

}  // namespace

util::Status WriteMgpModel(const MgpModel& model, std::ostream& os) {
  os << kMagic << '\n' << model.weights.size() << '\n';
  for (double w : model.weights) os << FormatWeight(w) << '\n';
  if (!os.good()) return util::Status::IoError("model write failed");
  return util::Status::Ok();
}

util::StatusOr<MgpModel> ReadMgpModel(std::istream& is,
                                      size_t expected_weights) {
  std::string magic;
  std::getline(is, magic);
  if (magic != kMagic) {
    return util::Status::InvalidArgument("missing " + std::string(kMagic) +
                                         " header");
  }
  // Strict digits-only count parse: `is >> size_t` would accept a signed
  // token by wrapping it, and a hostile count must fail here, not at an
  // allocation.
  std::string count_token;
  is >> count_token;
  uint64_t count = 0;
  if (count_token.empty() || count_token.size() > 20) {
    return util::Status::InvalidArgument("bad model weight count");
  }
  for (char c : count_token) {
    if (c < '0' || c > '9') {
      return util::Status::InvalidArgument("bad model weight count");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (count > (UINT64_MAX - digit) / 10) {
      return util::Status::InvalidArgument("bad model weight count");
    }
    count = count * 10 + digit;
  }
  if (expected_weights != 0 && count != expected_weights) {
    return util::Status::InvalidArgument(
        "model has " + std::to_string(count) + " weights but the index has " +
        std::to_string(expected_weights) +
        " metagraphs (trained on a different offline phase?)");
  }
  MgpModel model;
  // Don't trust a large count with memory before a single weight parsed:
  // an absurd-but-well-formed count fails at the first missing weight
  // below instead of attempting a giant allocation here.
  model.weights.reserve(
      static_cast<size_t>(std::min<uint64_t>(count, 1 << 20)));
  for (uint64_t i = 0; i < count; ++i) {
    double w = 0.0;
    is >> w;
    if (!is) {
      return util::Status::InvalidArgument("bad model weight at index " +
                                           std::to_string(i));
    }
    model.weights.push_back(w);
  }
  // Trailing garbage means the artifact is not what this reader thinks it
  // is; loading a prefix of it silently would serve wrong scores.
  std::string rest;
  is >> rest;
  if (!rest.empty()) {
    return util::Status::InvalidArgument("trailing data after " +
                                         std::to_string(count) + " weights");
  }
  return model;
}

util::Status WriteMgpModelBinary(const MgpModel& model, std::ostream& os) {
  util::ContainerWriter writer(util::kModelArtifact);
  std::string meta;
  util::AppendScalar<uint64_t>(&meta, model.weights.size());
  writer.AddSection(kSecModelMeta, std::move(meta));
  // Raw binary64 bits, uncompressed: trained weights have near-random
  // mantissas LZW cannot shrink, and leaving them raw keeps the section
  // aligned for direct in-place reads.
  std::string weights;
  weights.resize(model.weights.size() * sizeof(double));
  if (!model.weights.empty()) {
    std::memcpy(weights.data(), model.weights.data(), weights.size());
  }
  writer.AddSection(kSecModelWeights, std::move(weights));
  return writer.WriteTo(os);
}

util::StatusOr<MgpModel> ReadMgpModelBinary(std::span<const uint8_t> bytes,
                                            size_t expected_weights) {
  auto reader = util::ContainerReader::Parse(bytes, util::kModelArtifact,
                                             /*verify_checksums=*/true);
  if (!reader.ok()) return reader.status();
  auto meta = reader->Section(kSecModelMeta);
  if (!meta.ok()) return meta.status();
  if (meta->bytes.size() != sizeof(uint64_t)) {
    return util::Status::InvalidArgument("model meta section malformed");
  }
  size_t pos = 0;
  uint64_t count = 0;
  util::ReadScalar(meta->bytes, &pos, &count);
  if (expected_weights != 0 && count != expected_weights) {
    return util::Status::InvalidArgument(
        "model has " + std::to_string(count) + " weights but the index has " +
        std::to_string(expected_weights) +
        " metagraphs (trained on a different offline phase?)");
  }
  auto weights = reader->Section(kSecModelWeights);
  if (!weights.ok()) return weights.status();
  // The size cross-check also bounds the allocation below: a corrupt
  // count cannot exceed the (already size-validated) section itself.
  if (weights->bytes.size() != count * sizeof(double)) {
    return util::Status::InvalidArgument(
        "model weights section disagrees with weight count");
  }
  MgpModel model;
  model.weights.resize(static_cast<size_t>(count));
  if (count > 0) {
    std::memcpy(model.weights.data(), weights->bytes.data(),
                weights->bytes.size());
  }
  return model;
}

util::Status SaveModel(const MgpModel& model, const std::string& path,
                       util::ArtifactFormat format) {
  // Write-then-rename so a concurrent LoadModel — e.g. a server admin
  // RELOAD racing a trainer's refresh of the same artifact — never reads
  // a half-written file (same pattern as the server's port file).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) return util::Status::IoError("cannot write model to " + tmp);
    MX_RETURN_IF_ERROR(format == util::ArtifactFormat::kBinary
                           ? WriteMgpModelBinary(model, out)
                           : WriteMgpModel(model, out));
    out.close();
    if (!out) return util::Status::IoError("cannot finish writing " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::IoError("cannot move model into place at " + path);
  }
  return util::Status::Ok();
}

util::StatusOr<MgpModel> LoadModel(const std::string& path,
                                   size_t expected_weights) {
  auto is_container = util::PathIsContainer(path);
  if (!is_container.ok()) {
    return util::Status::NotFound("cannot open model file " + path);
  }
  auto annotate =
      [&](util::StatusOr<MgpModel> model) -> util::StatusOr<MgpModel> {
    if (!model.ok()) {
      return util::Status(model.status().code(),
                          path + ": " + model.status().message());
    }
    return model;
  };
  if (*is_container) {
    auto file = util::MmapFile::OpenReadOnly(path);
    if (!file.ok()) return file.status();
    return annotate(ReadMgpModelBinary((*file)->bytes(), expected_weights));
  }
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open model file " + path);
  return annotate(ReadMgpModel(in, expected_weights));
}

}  // namespace metaprox
