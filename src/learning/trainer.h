// Supervised learning of the characteristic weights w* (Sect. III-B).
//
// Training examples are ranking triplets (q, x, y): x should rank above y
// w.r.t. query q. The example probability (Eq. 4) is
//   P(q, x, y; w) = sigmoid(mu * (pi(q,x;w) - pi(q,y;w)))
// and the trainer maximizes the log-likelihood (Eq. 5) by projected gradient
// ascent (Eq. 6) with the closed-form MGP partials, a decaying learning
// rate, random restarts, and weights constrained to [0, 1] (legitimate by
// scale-invariance, Theorem 1).
#ifndef METAPROX_LEARNING_TRAINER_H_
#define METAPROX_LEARNING_TRAINER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "index/metagraph_vectors.h"

namespace metaprox {

/// One pairwise training example: x ranks above y w.r.t. query q.
struct Example {
  NodeId q;
  NodeId x;
  NodeId y;
};

struct TrainOptions {
  double mu = 5.0;               // sigmoid scale (paper Sect. V-B)
  double learning_rate = 2.0;    // initial gradient-ascent step
  double lr_decay = 0.95;        // multiplied in every `decay_every` iters
  int decay_every = 100;
  double tolerance = 1e-6;       // relative log-likelihood change
  int max_iterations = 400;
  int restarts = 3;              // random re-initializations (paper uses 5)
  uint64_t seed = 7;

  /// Metagraph indices allowed a non-zero weight. Empty = all committed
  /// metagraphs. Used by MPP (paths only) and dual-stage training.
  std::vector<uint32_t> active;
};

struct TrainResult {
  std::vector<double> weights;  // full length |M|; zero outside `active`
  double log_likelihood = 0.0;
  int iterations = 0;  // of the best restart
};

/// Learns w* from `examples` against the committed metagraph vectors.
TrainResult TrainMgp(const MetagraphVectorIndex& index,
                     std::span<const Example> examples,
                     const TrainOptions& options);

/// Averages the weights of `runs` independent TrainMgp solutions (differing
/// RNG seeds). Gradient ascent on correlated metagraphs is winner-take-all
/// — any one of several interchangeable structures may end up with the
/// weight — so the *averaged* weights are a better estimate of how
/// characteristic each metagraph is. Used for the dual-stage candidate
/// heuristic (Eq. 7), where H scores must reflect expected usefulness
/// rather than one arbitrary optimum.
TrainResult TrainMgpAveraged(const MetagraphVectorIndex& index,
                             std::span<const Example> examples,
                             const TrainOptions& options, int runs);

}  // namespace metaprox

#endif  // METAPROX_LEARNING_TRAINER_H_
