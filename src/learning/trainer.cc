#include "learning/trainer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/macros.h"
#include "util/rng.h"

namespace metaprox {
namespace {

// Sparse vector over *local* (active-set) dimensions.
using Sparse = std::vector<std::pair<uint32_t, double>>;

// Training working set: deduplicated sparse pair/node vectors plus the
// examples expressed as indices into them.
struct Prepared {
  std::vector<Sparse> pair_vecs;
  std::vector<Sparse> node_vecs;
  struct Ex {
    uint32_t qx;      // pair vec index of (q, x)
    uint32_t qy;      // pair vec index of (q, y)
    uint32_t q, x, y; // node vec indices
  };
  std::vector<Ex> examples;
};

double Dot(const Sparse& v, const std::vector<double>& w) {
  double dot = 0.0;
  for (const auto& [i, c] : v) dot += w[i] * c;
  return dot;
}

Prepared PrepareExamples(const MetagraphVectorIndex& index,
                         std::span<const Example> examples,
                         const std::vector<int32_t>& local_of) {
  Prepared prep;
  std::unordered_map<uint64_t, uint32_t> pair_ids;
  std::unordered_map<NodeId, uint32_t> node_ids;
  std::vector<std::pair<uint32_t, double>> scratch;

  auto remap = [&](Sparse& out) {
    out.clear();
    for (const auto& [gi, c] : scratch) {
      int32_t li = local_of[gi];
      if (li >= 0) out.emplace_back(static_cast<uint32_t>(li), c);
    }
  };
  auto intern_pair = [&](NodeId a, NodeId b) -> uint32_t {
    uint64_t key = PairKey(a, b);
    auto [it, inserted] =
        pair_ids.try_emplace(key, static_cast<uint32_t>(prep.pair_vecs.size()));
    if (inserted) {
      scratch.clear();
      index.SparsePairVector(a, b, &scratch);
      prep.pair_vecs.emplace_back();
      remap(prep.pair_vecs.back());
    }
    return it->second;
  };
  auto intern_node = [&](NodeId v) -> uint32_t {
    auto [it, inserted] =
        node_ids.try_emplace(v, static_cast<uint32_t>(prep.node_vecs.size()));
    if (inserted) {
      scratch.clear();
      index.SparseNodeVector(v, &scratch);
      prep.node_vecs.emplace_back();
      remap(prep.node_vecs.back());
    }
    return it->second;
  };

  prep.examples.reserve(examples.size());
  for (const Example& e : examples) {
    Prepared::Ex ex;
    ex.qx = intern_pair(e.q, e.x);
    ex.qy = intern_pair(e.q, e.y);
    ex.q = intern_node(e.q);
    ex.x = intern_node(e.x);
    ex.y = intern_node(e.y);
    prep.examples.push_back(ex);
  }
  return prep;
}

// One ascent run from `w0`; returns final (w, L, iters).
struct RunResult {
  std::vector<double> w;
  double ll = -1e300;
  int iters = 0;
};

RunResult RunAscent(const Prepared& prep, std::vector<double> w,
                    const TrainOptions& opt) {
  const size_t d = w.size();
  const double inv_n =
      prep.examples.empty() ? 0.0 : 1.0 / static_cast<double>(
                                              prep.examples.size());

  std::vector<double> pair_dots(prep.pair_vecs.size());
  std::vector<double> node_dots(prep.node_vecs.size());
  std::vector<double> pair_coef(prep.pair_vecs.size());
  std::vector<double> node_coef(prep.node_vecs.size());
  std::vector<double> grad(d);

  double lr = opt.learning_rate;
  double prev_ll = -1e300;
  RunResult result;
  result.w = w;

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    for (size_t i = 0; i < prep.pair_vecs.size(); ++i) {
      pair_dots[i] = Dot(prep.pair_vecs[i], w);
    }
    for (size_t i = 0; i < prep.node_vecs.size(); ++i) {
      node_dots[i] = Dot(prep.node_vecs[i], w);
    }
    std::fill(pair_coef.begin(), pair_coef.end(), 0.0);
    std::fill(node_coef.begin(), node_coef.end(), 0.0);

    double ll = 0.0;
    for (const auto& ex : prep.examples) {
      const double a1 = pair_dots[ex.qx];
      const double b1 = node_dots[ex.q] + node_dots[ex.x];
      const double a2 = pair_dots[ex.qy];
      const double b2 = node_dots[ex.q] + node_dots[ex.y];
      const double pi1 = b1 > 0.0 ? 2.0 * a1 / b1 : 0.0;
      const double pi2 = b2 > 0.0 ? 2.0 * a2 / b2 : 0.0;
      const double p =
          1.0 / (1.0 + std::exp(-opt.mu * (pi1 - pi2)));
      ll += std::log(std::max(p, 1e-300));

      // dL/dw = mu (1 - P) (dpi1/dw - dpi2/dw); accumulate scalar
      // coefficients on the shared sparse vectors.
      const double c = opt.mu * (1.0 - p) * inv_n;
      if (b1 > 0.0) {
        pair_coef[ex.qx] += c * 2.0 / b1;
        const double nc = -c * 2.0 * a1 / (b1 * b1);
        node_coef[ex.q] += nc;
        node_coef[ex.x] += nc;
      }
      if (b2 > 0.0) {
        pair_coef[ex.qy] -= c * 2.0 / b2;
        const double nc = c * 2.0 * a2 / (b2 * b2);
        node_coef[ex.q] += nc;
        node_coef[ex.y] += nc;
      }
    }

    if (ll > result.ll) {
      result.ll = ll;
      result.w = w;
      result.iters = iter;
    }
    if (std::abs(ll - prev_ll) <=
        opt.tolerance * (std::abs(prev_ll) + 1e-12)) {
      break;
    }
    prev_ll = ll;

    std::fill(grad.begin(), grad.end(), 0.0);
    for (size_t i = 0; i < prep.pair_vecs.size(); ++i) {
      if (pair_coef[i] == 0.0) continue;
      for (const auto& [j, c] : prep.pair_vecs[i]) grad[j] += pair_coef[i] * c;
    }
    for (size_t i = 0; i < prep.node_vecs.size(); ++i) {
      if (node_coef[i] == 0.0) continue;
      for (const auto& [j, c] : prep.node_vecs[i]) grad[j] += node_coef[i] * c;
    }

    for (size_t j = 0; j < d; ++j) {
      w[j] = std::clamp(w[j] + lr * grad[j], 0.0, 1.0);
    }
    if ((iter + 1) % opt.decay_every == 0) lr *= opt.lr_decay;
  }
  return result;
}

}  // namespace

TrainResult TrainMgp(const MetagraphVectorIndex& index,
                     std::span<const Example> examples,
                     const TrainOptions& options) {
  const size_t total = index.num_metagraphs();

  // Resolve the active set: requested indices that are actually committed,
  // or all committed metagraphs.
  std::vector<uint32_t> active;
  if (options.active.empty()) {
    for (uint32_t i = 0; i < total; ++i) {
      if (index.IsCommitted(i)) active.push_back(i);
    }
  } else {
    for (uint32_t i : options.active) {
      MX_CHECK(i < total);
      if (index.IsCommitted(i)) active.push_back(i);
    }
  }

  TrainResult out;
  out.weights.assign(total, 0.0);
  if (active.empty() || examples.empty()) return out;

  std::vector<int32_t> local_of(total, -1);
  for (size_t li = 0; li < active.size(); ++li) {
    local_of[active[li]] = static_cast<int32_t>(li);
  }

  Prepared prep = PrepareExamples(index, examples, local_of);

  util::Rng rng(options.seed);
  RunResult best;
  for (int r = 0; r < std::max(1, options.restarts); ++r) {
    // Low-biased initialization: weights rise toward 1 only on positive
    // evidence and sink to 0 on negative evidence, while metagraphs that
    // never appear in the training examples keep their (small-ish) initial
    // value. This reproduces the paper's Fig. 4 profile: a short head of
    // large weights decaying into a long low tail.
    std::vector<double> w0(active.size());
    for (double& v : w0) v = rng.UniformDouble(0.0, 0.5);
    RunResult run = RunAscent(prep, std::move(w0), options);
    if (run.ll > best.ll) best = std::move(run);
  }

  for (size_t li = 0; li < active.size(); ++li) {
    out.weights[active[li]] = best.w[li];
  }
  out.log_likelihood = best.ll;
  out.iterations = best.iters;
  return out;
}

TrainResult TrainMgpAveraged(const MetagraphVectorIndex& index,
                             std::span<const Example> examples,
                             const TrainOptions& options, int runs) {
  MX_CHECK(runs >= 1);
  TrainResult mean;
  for (int run = 0; run < runs; ++run) {
    TrainOptions run_options = options;
    run_options.seed = options.seed + 0x9e3779b9u * static_cast<uint64_t>(run);
    TrainResult r = TrainMgp(index, examples, run_options);
    if (run == 0) {
      mean = std::move(r);
      continue;
    }
    for (size_t i = 0; i < mean.weights.size(); ++i) {
      mean.weights[i] += r.weights[i];
    }
    mean.log_likelihood += r.log_likelihood;
  }
  if (runs > 1) {
    for (double& w : mean.weights) w /= runs;
    mean.log_likelihood /= runs;
  }
  return mean;
}

}  // namespace metaprox
