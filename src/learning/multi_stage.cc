#include "learning/multi_stage.h"

#include <algorithm>

#include "learning/proximity.h"
#include "util/macros.h"

namespace metaprox {

double PairwiseAccuracy(const MetagraphVectorIndex& index,
                        std::span<const Example> examples,
                        std::span<const double> weights) {
  if (examples.empty()) return 0.0;
  double correct = 0.0;
  for (const Example& e : examples) {
    double px = MgpProximity(index, weights, e.q, e.x);
    double py = MgpProximity(index, weights, e.q, e.y);
    if (px > py) {
      correct += 1.0;
    } else if (px == py) {
      correct += 0.5;
    }
  }
  return correct / static_cast<double>(examples.size());
}

MultiStageResult TrainMultiStage(
    const std::vector<MinedMetagraph>& metagraphs, MetagraphVectorIndex& index,
    std::span<const Example> examples, const MultiStageOptions& options,
    const std::function<void(std::span<const uint32_t>)>& match_and_commit,
    StructuralSimilarityCache* ss_cache) {
  MX_CHECK(metagraphs.size() == index.num_metagraphs());
  MultiStageResult result;

  // Train/validation split of the examples (deterministic: trailing slice).
  const size_t n_val = std::min(
      examples.size(),
      std::max<size_t>(1, static_cast<size_t>(options.validation_fraction *
                                              static_cast<double>(
                                                  examples.size()))));
  auto train_ex = examples.subspan(0, examples.size() - n_val);
  auto val_ex = examples.subspan(examples.size() - n_val);
  if (train_ex.empty()) train_ex = examples;

  // Seed stage: metapaths, exactly as in dual-stage.
  for (uint32_t i = 0; i < metagraphs.size(); ++i) {
    if (metagraphs[i].is_path) result.seeds.push_back(i);
  }
  std::vector<uint32_t> to_match;
  for (uint32_t i : result.seeds) {
    if (!index.IsCommitted(i)) to_match.push_back(i);
  }
  if (!to_match.empty()) match_and_commit(to_match);

  std::vector<uint32_t> active = result.seeds;
  TrainOptions train = options.train;
  train.active = active;
  TrainResult model = TrainMgp(index, train_ex, train);
  double accuracy = PairwiseAccuracy(index, val_ex, model.weights);
  result.accuracy_trace.push_back(accuracy);

  StructuralSimilarityCache local_cache;
  StructuralSimilarityCache* cache =
      ss_cache != nullptr ? ss_cache : &local_cache;

  std::vector<bool> taken(metagraphs.size(), false);
  for (uint32_t s : result.seeds) taken[s] = true;

  for (size_t stage = 0; stage < options.max_stages; ++stage) {
    if (accuracy >= options.target_accuracy) break;

    // Re-score the remaining metagraphs against the enlarged seed set: the
    // per-metagraph usefulness of everything matched so far drives H.
    std::vector<double> scores =
        PerMetagraphPairwiseAccuracy(index, train_ex, active);
    std::vector<double> h = ComputeCandidateHeuristic(
        metagraphs, active, scores, cache);

    std::vector<uint32_t> ranked;
    for (uint32_t j = 0; j < metagraphs.size(); ++j) {
      if (!taken[j] && h[j] >= 0.0) ranked.push_back(j);
    }
    if (ranked.empty()) break;
    std::stable_sort(ranked.begin(), ranked.end(),
                     [&](uint32_t a, uint32_t b) { return h[a] > h[b]; });

    std::vector<uint32_t> batch(
        ranked.begin(),
        ranked.begin() +
            static_cast<int64_t>(std::min(options.batch_size, ranked.size())));
    to_match.clear();
    for (uint32_t i : batch) {
      taken[i] = true;
      if (!index.IsCommitted(i)) to_match.push_back(i);
    }
    if (!to_match.empty()) match_and_commit(to_match);

    active.insert(active.end(), batch.begin(), batch.end());
    result.batches.push_back(std::move(batch));

    train.active = active;
    model = TrainMgp(index, train_ex, train);
    double new_accuracy = PairwiseAccuracy(index, val_ex, model.weights);
    result.accuracy_trace.push_back(new_accuracy);
    const double improvement = new_accuracy - accuracy;
    accuracy = std::max(accuracy, new_accuracy);
    if (improvement < options.min_improvement && stage > 0) break;
  }

  // Final model over everything matched.
  train.active = active;
  result.final_stage = TrainMgp(index, examples, train);
  return result;
}

}  // namespace metaprox
