// Dual-stage training (Sect. III-C, Alg. 1).
//
// Stage 1 (seed stage): the seeds K0 are all metapaths — they are cheap to
// recognize, fast to match, and few. Their weights w0 are trained first.
// Stage 2 (candidate stage): the remaining metagraphs are ranked by the
// candidate heuristic (Eq. 7)
//
//   H(Mj) = max over seeds Mi of { w0[i] * SS(Mi, Mj) }
//
// (structurally similar metagraphs tend to be functionally similar, Fig. 9);
// only the top-|K| candidates are matched, and the final model is trained
// on K0 ∪ K. Everything else is never matched — this is where the paper's
// 83% matching-cost reduction comes from.
#ifndef METAPROX_LEARNING_DUAL_STAGE_H_
#define METAPROX_LEARNING_DUAL_STAGE_H_

#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "learning/trainer.h"
#include "mining/miner.h"

namespace metaprox {

/// Memoizes SS(Mi, Mj) across dual-stage invocations (Fig. 8/10 sweep many
/// candidate-set sizes over the same metagraph set).
class StructuralSimilarityCache {
 public:
  double Get(const std::vector<MinedMetagraph>& metagraphs, uint32_t i,
             uint32_t j);

 private:
  std::unordered_map<uint64_t, double> cache_;
};

struct DualStageOptions {
  size_t num_candidates = 50;      // |K|
  bool reverse_heuristic = false;  // RCH ablation (Fig. 10)
  TrainOptions train;
};

struct DualStageResult {
  std::vector<uint32_t> seeds;       // K0 (metapath indices)
  std::vector<uint32_t> candidates;  // K (selected by H)
  TrainResult seed_stage;            // w0
  TrainResult final_stage;           // w* over K0 ∪ K
  /// H score per metagraph (global index); -1 for seeds.
  std::vector<double> heuristic_scores;
};

/// Functional similarity FS(Mi, Mj) = 1 - |w[i] - w[j]| (Sect. III-C).
double FunctionalSimilarity(std::span<const double> weights, uint32_t i,
                            uint32_t j);

/// Per-metagraph usefulness scores in [0, 1] from the training triplets:
/// the one-hot pairwise accuracy of each metagraph alone (fraction of
/// examples where pi_i(q,x) > pi_i(q,y)), rescaled so that chance level
/// (0.5) maps to 0. This is the seed "function" estimate that drives the
/// candidate heuristic: joint gradient training of correlated seeds is
/// winner-take-all (one of several interchangeable seeds absorbs all the
/// weight), whereas H needs every useful seed direction to score high.
/// Entries not in `indices` are 0.
std::vector<double> PerMetagraphPairwiseAccuracy(
    const MetagraphVectorIndex& index, std::span<const Example> examples,
    std::span<const uint32_t> indices);

/// Computes H(Mj) for every non-seed metagraph given seed weights w0
/// (full-length weight vector). Seeds get -1.
std::vector<double> ComputeCandidateHeuristic(
    const std::vector<MinedMetagraph>& metagraphs,
    std::span<const uint32_t> seeds, std::span<const double> seed_weights,
    StructuralSimilarityCache* cache);

/// Runs Alg. 1. `match_and_commit` must match the given metagraphs (global
/// indices) into `index`; it is called once for the not-yet-committed seeds
/// and once for the selected candidates.
DualStageResult TrainDualStage(
    const std::vector<MinedMetagraph>& metagraphs, MetagraphVectorIndex& index,
    std::span<const Example> examples, const DualStageOptions& options,
    const std::function<void(std::span<const uint32_t>)>& match_and_commit,
    StructuralSimilarityCache* ss_cache = nullptr);

}  // namespace metaprox

#endif  // METAPROX_LEARNING_DUAL_STAGE_H_
