#include "learning/dual_stage.h"

#include <algorithm>

#include "metagraph/mcs.h"
#include "util/macros.h"

namespace metaprox {

double StructuralSimilarityCache::Get(
    const std::vector<MinedMetagraph>& metagraphs, uint32_t i, uint32_t j) {
  if (i > j) std::swap(i, j);
  uint64_t key = (static_cast<uint64_t>(i) << 32) | j;
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  double ss = StructuralSimilarity(metagraphs[i].graph, metagraphs[j].graph);
  cache_.emplace(key, ss);
  return ss;
}

double FunctionalSimilarity(std::span<const double> weights, uint32_t i,
                            uint32_t j) {
  return 1.0 - std::abs(weights[i] - weights[j]);
}

std::vector<double> PerMetagraphPairwiseAccuracy(
    const MetagraphVectorIndex& index, std::span<const Example> examples,
    std::span<const uint32_t> indices) {
  const size_t m = index.num_metagraphs();
  std::vector<double> correct(m, 0.0);
  std::vector<double> scores(m, 0.0);
  if (examples.empty() || indices.empty()) return scores;

  // Dense scratch vectors with reuse across examples.
  std::vector<double> qx(m), qy(m), nq(m), nx(m), ny(m);
  std::vector<std::pair<uint32_t, double>> sparse;
  auto load = [&](std::vector<double>& dst, auto&& fetch) {
    std::fill(dst.begin(), dst.end(), 0.0);
    sparse.clear();
    fetch();
    for (const auto& [i, c] : sparse) dst[i] = c;
  };

  for (const Example& e : examples) {
    load(qx, [&] { index.SparsePairVector(e.q, e.x, &sparse); });
    load(qy, [&] { index.SparsePairVector(e.q, e.y, &sparse); });
    load(nq, [&] { index.SparseNodeVector(e.q, &sparse); });
    load(nx, [&] { index.SparseNodeVector(e.x, &sparse); });
    load(ny, [&] { index.SparseNodeVector(e.y, &sparse); });
    for (uint32_t i : indices) {
      const double bx = nq[i] + nx[i];
      const double by = nq[i] + ny[i];
      const double pix = bx > 0.0 ? 2.0 * qx[i] / bx : 0.0;
      const double piy = by > 0.0 ? 2.0 * qy[i] / by : 0.0;
      if (pix > piy) {
        correct[i] += 1.0;
      } else if (pix == piy) {
        correct[i] += 0.5;
      }
    }
  }
  const double n = static_cast<double>(examples.size());
  for (uint32_t i : indices) {
    const double acc = correct[i] / n;
    scores[i] = std::clamp(2.0 * (acc - 0.5), 0.0, 1.0);
  }
  return scores;
}

std::vector<double> ComputeCandidateHeuristic(
    const std::vector<MinedMetagraph>& metagraphs,
    std::span<const uint32_t> seeds, std::span<const double> seed_weights,
    StructuralSimilarityCache* cache) {
  std::vector<bool> is_seed(metagraphs.size(), false);
  for (uint32_t s : seeds) is_seed[s] = true;

  std::vector<double> scores(metagraphs.size(), -1.0);
  for (uint32_t j = 0; j < metagraphs.size(); ++j) {
    if (is_seed[j]) continue;
    double h = 0.0;
    for (uint32_t i : seeds) {
      const double w0 = seed_weights[i];
      if (w0 <= 0.0) continue;
      h = std::max(h, w0 * cache->Get(metagraphs, i, j));
    }
    scores[j] = h;
  }
  return scores;
}

DualStageResult TrainDualStage(
    const std::vector<MinedMetagraph>& metagraphs, MetagraphVectorIndex& index,
    std::span<const Example> examples, const DualStageOptions& options,
    const std::function<void(std::span<const uint32_t>)>& match_and_commit,
    StructuralSimilarityCache* ss_cache) {
  MX_CHECK(metagraphs.size() == index.num_metagraphs());
  DualStageResult result;

  // Seed stage: K0 = all metapaths (Alg. 1, line 1).
  for (uint32_t i = 0; i < metagraphs.size(); ++i) {
    if (metagraphs[i].is_path) result.seeds.push_back(i);
  }
  std::vector<uint32_t> to_match;
  for (uint32_t i : result.seeds) {
    if (!index.IsCommitted(i)) to_match.push_back(i);
  }
  if (!to_match.empty()) match_and_commit(to_match);

  // Seed model (reported; jointly trained as in Alg. 1 line 3).
  TrainOptions seed_train = options.train;
  seed_train.active = result.seeds;
  result.seed_stage = TrainMgp(index, examples, seed_train);

  // Candidate stage: rank M \ K0 by H (Alg. 1, lines 4-5). The per-seed
  // usefulness driving H comes from one-hot pairwise accuracy (see header):
  // it preserves every useful seed direction where joint training would
  // keep only one arbitrary winner among correlated seeds.
  std::vector<double> seed_scores =
      PerMetagraphPairwiseAccuracy(index, examples, result.seeds);
  StructuralSimilarityCache local_cache;
  StructuralSimilarityCache* cache =
      ss_cache != nullptr ? ss_cache : &local_cache;
  result.heuristic_scores =
      ComputeCandidateHeuristic(metagraphs, result.seeds, seed_scores, cache);

  std::vector<uint32_t> ranked;
  for (uint32_t j = 0; j < metagraphs.size(); ++j) {
    if (result.heuristic_scores[j] >= 0.0) ranked.push_back(j);
  }
  std::stable_sort(ranked.begin(), ranked.end(), [&](uint32_t a, uint32_t b) {
    return result.heuristic_scores[a] > result.heuristic_scores[b];
  });
  if (options.reverse_heuristic) {
    std::reverse(ranked.begin(), ranked.end());
  }
  const size_t take = std::min(options.num_candidates, ranked.size());
  result.candidates.assign(ranked.begin(),
                           ranked.begin() + static_cast<int64_t>(take));

  to_match.clear();
  for (uint32_t i : result.candidates) {
    if (!index.IsCommitted(i)) to_match.push_back(i);
  }
  if (!to_match.empty()) match_and_commit(to_match);

  // Final stage: train over K0 ∪ K (Alg. 1, line 7).
  TrainOptions final_train = options.train;
  final_train.active = result.seeds;
  final_train.active.insert(final_train.active.end(),
                            result.candidates.begin(),
                            result.candidates.end());
  result.final_stage = TrainMgp(index, examples, final_train);
  return result;
}

}  // namespace metaprox
