// Persistence of trained MgpModels, so a model becomes a first-class
// offline artifact next to the mined set and the vector index: train once
// with mgps_cli, then serve (and hot-swap) the saved weights from any
// number of server processes without retraining.
//
// Two formats, autodetected on load by magic:
//   * v1 text (WriteMgpModel/ReadMgpModel): a versioned text header, the
//     weight count, then one weight per line serialized with %.17g — the
//     same exact-double-round-trip rule the wire protocol uses
//     (server/wire.h), so a saved-then-loaded model scores bitwise
//     identically to the freshly trained one. Debug/interop path.
//   * v2 binary (WriteMgpModelBinary/ReadMgpModelBinary): the same
//     util/container.h envelope the index uses — checksummed sections,
//     weights as raw little-endian binary64 at a 64-byte-aligned offset.
//     Exact by construction (no decimal round trip at all).
// The weight count is checked against the index on load (a model only
// makes sense over the metagraph set it was trained on).
//
// Thread-safety: every function here is stateless (no shared mutable
// state, no mutexes — nothing for util/thread_annotations.h to guard).
// Concurrent LoadModel/SaveModel calls on DIFFERENT paths are safe from
// any thread — the server's admin worker relies on this, loading models
// while the batcher serves. Two concurrent SaveModel calls on the SAME
// path are serialized by the atomic write-then-rename: the artifact is
// always one writer's complete bytes, never an interleaving.
#ifndef METAPROX_LEARNING_MODEL_IO_H_
#define METAPROX_LEARNING_MODEL_IO_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

#include "learning/proximity.h"
#include "util/container.h"
#include "util/status.h"

namespace metaprox {

/// Serializes `model` (versioned header + %.17g weights).
util::Status WriteMgpModel(const MgpModel& model, std::ostream& os);

/// Reads a model written by WriteMgpModel. `expected_weights` is the
/// metagraph count of the index the model will score against
/// (index.num_metagraphs()); a mismatch is an InvalidArgument error.
/// 0 skips the check (callers that have no index at hand).
util::StatusOr<MgpModel> ReadMgpModel(std::istream& is,
                                      size_t expected_weights = 0);

/// Serializes `model` as a v2 binary container (open `os` in binary
/// mode). Byte-deterministic for the same weights.
util::Status WriteMgpModelBinary(const MgpModel& model, std::ostream& os);

/// Parses a v2 binary model artifact. Checksums are always verified;
/// corruption and truncation are structured errors, never crashes.
util::StatusOr<MgpModel> ReadMgpModelBinary(std::span<const uint8_t> bytes,
                                            size_t expected_weights = 0);

/// Writes `model` to `path` in `format`. Overwrites (atomically:
/// write-then-rename).
util::Status SaveModel(
    const MgpModel& model, const std::string& path,
    util::ArtifactFormat format = util::ArtifactFormat::kText);

/// Loads `path` whatever its format (binary containers detected by
/// magic). A missing/unopenable file is NotFound — distinct from a
/// corrupt one (InvalidArgument) so "load or train and save" flows
/// retrain only when the artifact genuinely is not there.
util::StatusOr<MgpModel> LoadModel(const std::string& path,
                                   size_t expected_weights = 0);

}  // namespace metaprox

#endif  // METAPROX_LEARNING_MODEL_IO_H_
