// Metagraph-based proximity MGP (Def. 3, Eq. 3):
//
//   pi(x, y; w) = 2 (m_xy . w) / (m_x . w + m_y . w)
//
// with non-negative characteristic weights w over the metagraph set. The
// measure is symmetric, self-maximal (pi in [0,1], pi(x,x)=1), and
// scale-invariant in w (Theorem 1).
#ifndef METAPROX_LEARNING_PROXIMITY_H_
#define METAPROX_LEARNING_PROXIMITY_H_

#include <span>
#include <vector>

#include "graph/types.h"
#include "index/metagraph_vectors.h"

namespace metaprox {

/// A trained proximity model for one semantic class: one weight per
/// metagraph in the mined set (zero for metagraphs never matched).
struct MgpModel {
  std::vector<double> weights;
};

/// Computes pi(x, y; w). Returns 1 when x == y and 0 when the denominator
/// vanishes (the nodes share no matched metagraph occurrences).
double MgpProximity(const MetagraphVectorIndex& index,
                    std::span<const double> weights, NodeId x, NodeId y);

/// The one ranking order of the online phase: descending proximity, ties
/// broken by ascending node id. Shared by the sequential (RankByProximity)
/// and batched (BatchRankByProximity) paths — it is a strict total order
/// over (node, score) entries with distinct nodes, which is what makes
/// their top-k outputs comparable entry-for-entry.
inline bool ProximityRankBefore(const std::pair<NodeId, double>& a,
                                const std::pair<NodeId, double>& b) {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
}

/// Ranks `candidates` by descending pi(q, .; w), ties broken by node id.
/// Returns up to `k` (node, proximity) entries with proximity > 0.
std::vector<std::pair<NodeId, double>> RankByProximity(
    const MetagraphVectorIndex& index, std::span<const double> weights,
    NodeId q, std::span<const NodeId> candidates, size_t k);

}  // namespace metaprox

#endif  // METAPROX_LEARNING_PROXIMITY_H_
