#include "learning/proximity.h"

#include <algorithm>

namespace metaprox {

double MgpProximity(const MetagraphVectorIndex& index,
                    std::span<const double> weights, NodeId x, NodeId y) {
  if (x == y) return 1.0;
  const double numer = 2.0 * index.PairDot(x, y, weights);
  if (numer <= 0.0) return 0.0;
  const double denom = index.NodeDot(x, weights) + index.NodeDot(y, weights);
  if (denom <= 0.0) return 0.0;
  return numer / denom;
}

std::vector<std::pair<NodeId, double>> RankByProximity(
    const MetagraphVectorIndex& index, std::span<const double> weights,
    NodeId q, std::span<const NodeId> candidates, size_t k) {
  std::vector<std::pair<NodeId, double>> scored;
  scored.reserve(candidates.size());
  const double q_dot = index.NodeDot(q, weights);
  for (NodeId y : candidates) {
    if (y == q) continue;
    const double numer = 2.0 * index.PairDot(q, y, weights);
    if (numer <= 0.0) continue;
    const double denom = q_dot + index.NodeDot(y, weights);
    if (denom <= 0.0) continue;
    scored.emplace_back(y, numer / denom);
  }
  const size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<int64_t>(take),
                    scored.end(), ProximityRankBefore);
  scored.resize(take);
  return scored;
}

}  // namespace metaprox
