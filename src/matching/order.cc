#include "matching/order.h"

#include <algorithm>
#include <limits>

#include "util/macros.h"

namespace metaprox {
namespace {

double EdgeSelectivity(const Graph& g, const Metagraph& m, MetaNodeId a,
                       MetaNodeId b) {
  return static_cast<double>(
      g.EdgeCountBetweenTypes(m.TypeOf(a), m.TypeOf(b)));
}

double NodeFrequency(const Graph& g, const Metagraph& m, MetaNodeId v) {
  return static_cast<double>(std::max<size_t>(1, g.CountOfType(m.TypeOf(v))));
}

}  // namespace

std::vector<MetaNodeId> GreedyNodeOrder(const Graph& g, const Metagraph& m) {
  const int n = m.num_nodes();
  std::vector<MetaNodeId> order;
  order.reserve(n);
  if (n == 0) return order;
  if (n == 1) {
    order.push_back(0);
    return order;
  }

  uint8_t in_order = 0;
  auto push = [&](MetaNodeId v) {
    order.push_back(v);
    in_order |= static_cast<uint8_t>(1u << v);
  };

  // Start with the most selective edge; break ties toward the rarer
  // endpoint type first.
  double best = std::numeric_limits<double>::infinity();
  MetaNodeId ba = 0, bb = 1;
  for (auto [a, b] : m.Edges()) {
    double s = EdgeSelectivity(g, m, a, b);
    if (s < best) {
      best = s;
      ba = a;
      bb = b;
    }
  }
  if (NodeFrequency(g, m, bb) < NodeFrequency(g, m, ba)) std::swap(ba, bb);
  push(ba);
  push(bb);

  // Greedily extend: among nodes adjacent to the ordered prefix, pick the
  // one minimizing the estimated growth factor min over matched neighbors
  // of |I(<u,next>)| / |I(u)|.
  while (static_cast<int>(order.size()) < n) {
    double best_factor = std::numeric_limits<double>::infinity();
    int best_node = -1;
    for (int v = 0; v < n; ++v) {
      if ((in_order >> v) & 1u) continue;
      uint8_t matched_nbrs = static_cast<uint8_t>(
          m.NeighborMask(static_cast<MetaNodeId>(v)) & in_order);
      if (!matched_nbrs) continue;
      double factor = std::numeric_limits<double>::infinity();
      for (int u = 0; u < n; ++u) {
        if (!((matched_nbrs >> u) & 1u)) continue;
        double f = EdgeSelectivity(g, m, static_cast<MetaNodeId>(u),
                                   static_cast<MetaNodeId>(v)) /
                   NodeFrequency(g, m, static_cast<MetaNodeId>(u));
        factor = std::min(factor, f);
      }
      if (factor < best_factor) {
        best_factor = factor;
        best_node = v;
      }
    }
    if (best_node < 0) {
      // Disconnected metagraph: fall back to the rarest remaining node.
      double best_freq = std::numeric_limits<double>::infinity();
      for (int v = 0; v < n; ++v) {
        if ((in_order >> v) & 1u) continue;
        double f = NodeFrequency(g, m, static_cast<MetaNodeId>(v));
        if (f < best_freq) {
          best_freq = f;
          best_node = v;
        }
      }
    }
    MX_CHECK(best_node >= 0);
    push(static_cast<MetaNodeId>(best_node));
  }
  return order;
}

std::vector<MetaNodeId> RandomNodeOrder(const Metagraph& m, util::Rng& rng) {
  const int n = m.num_nodes();
  std::vector<MetaNodeId> order;
  order.reserve(n);
  if (n == 0) return order;

  uint8_t in_order = 0;
  std::vector<MetaNodeId> frontier;
  MetaNodeId start = static_cast<MetaNodeId>(rng.UniformInt(n));
  frontier.push_back(start);
  while (!frontier.empty()) {
    size_t pick = static_cast<size_t>(rng.UniformInt(frontier.size()));
    MetaNodeId v = frontier[pick];
    frontier.erase(frontier.begin() + static_cast<int64_t>(pick));
    if ((in_order >> v) & 1u) continue;
    order.push_back(v);
    in_order |= static_cast<uint8_t>(1u << v);
    uint8_t nbrs = static_cast<uint8_t>(m.NeighborMask(v) & ~in_order);
    for (int u = 0; u < n; ++u) {
      if ((nbrs >> u) & 1u) frontier.push_back(static_cast<MetaNodeId>(u));
    }
  }
  // Disconnected leftovers (shouldn't happen for mined metagraphs).
  for (int v = 0; v < n; ++v) {
    if (!((in_order >> v) & 1u)) order.push_back(static_cast<MetaNodeId>(v));
  }
  return order;
}

std::vector<ComponentGroup> CostOrderGroups(
    const Graph& g, const Metagraph& m,
    const ComponentDecomposition& decomposition) {
  const int n = m.num_nodes();
  // Independence-model edge probability per type pair.
  auto edge_prob = [&](TypeId a, TypeId b) {
    double ca = static_cast<double>(std::max<size_t>(1, g.CountOfType(a)));
    double cb = static_cast<double>(std::max<size_t>(1, g.CountOfType(b)));
    double e = static_cast<double>(g.EdgeCountBetweenTypes(a, b));
    return std::min(1.0, e / (ca * cb));
  };

  // Expected candidates for `u` given the node-level matched mask.
  auto node_cost = [&](MetaNodeId u, uint8_t matched) {
    double cands = static_cast<double>(
        std::max<size_t>(1, g.CountOfType(m.TypeOf(u))));
    uint8_t nbrs = static_cast<uint8_t>(m.NeighborMask(u) & matched);
    for (int v = 0; v < n; ++v) {
      if ((nbrs >> v) & 1u) {
        cands *= edge_prob(m.TypeOf(u), m.TypeOf(static_cast<MetaNodeId>(v)));
      }
    }
    return std::max(cands, 1e-6);
  };

  // Growth estimate of matching a whole group given `matched`; also returns
  // the rep-node sequence ordered most-constrained-first.
  auto group_cost = [&](const ComponentGroup& group, uint8_t matched,
                        std::vector<MetaNodeId>* rep_order) {
    std::vector<MetaNodeId> remaining = group.rep;
    std::vector<MetaNodeId> order;
    uint8_t local = matched;
    double growth = 1.0;
    while (!remaining.empty()) {
      double best = std::numeric_limits<double>::infinity();
      size_t best_i = 0;
      for (size_t i = 0; i < remaining.size(); ++i) {
        double c = node_cost(remaining[i], local);
        if (c < best) {
          best = c;
          best_i = i;
        }
      }
      growth *= best;
      local |= static_cast<uint8_t>(1u << remaining[best_i]);
      order.push_back(remaining[best_i]);
      remaining.erase(remaining.begin() + static_cast<int64_t>(best_i));
    }
    if (group.has_mirror()) {
      // The mirror half re-uses the rep candidates: the result multiplies
      // by roughly the same factor again (ordered pairs), though each pair
      // costs only a disjointness test.
      growth *= std::max(growth, 1.0);
    }
    if (rep_order != nullptr) *rep_order = std::move(order);
    return growth;
  };

  std::vector<ComponentGroup> pending = decomposition.groups;
  std::vector<ComponentGroup> ordered;
  uint8_t matched = 0;
  while (!pending.empty()) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_i = 0;
    std::vector<MetaNodeId> best_rep_order;
    for (size_t i = 0; i < pending.size(); ++i) {
      std::vector<MetaNodeId> rep_order;
      double c = group_cost(pending[i], matched, &rep_order);
      if (c < best) {
        best = c;
        best_i = i;
        best_rep_order = std::move(rep_order);
      }
    }
    ComponentGroup group = std::move(pending[best_i]);
    pending.erase(pending.begin() + static_cast<int64_t>(best_i));
    // Reorder rep (and aligned mirror) nodes most-constrained-first.
    if (group.has_mirror()) {
      std::vector<MetaNodeId> mirror;
      mirror.reserve(group.mirror.size());
      for (MetaNodeId r : best_rep_order) {
        for (size_t i = 0; i < group.rep.size(); ++i) {
          if (group.rep[i] == r) {
            mirror.push_back(group.mirror[i]);
            break;
          }
        }
      }
      group.mirror = std::move(mirror);
    }
    group.rep = std::move(best_rep_order);
    for (MetaNodeId v : group.rep) {
      matched |= static_cast<uint8_t>(1u << v);
    }
    for (MetaNodeId v : group.mirror) {
      matched |= static_cast<uint8_t>(1u << v);
    }
    ordered.push_back(std::move(group));
  }
  return ordered;
}

std::vector<ComponentGroup> OrderGroups(
    const ComponentDecomposition& decomposition,
    const std::vector<MetaNodeId>& node_order) {
  std::array<int, Metagraph::kMaxNodes> pos{};
  pos.fill(Metagraph::kMaxNodes);
  for (size_t i = 0; i < node_order.size(); ++i) {
    pos[node_order[i]] = static_cast<int>(i);
  }

  std::vector<ComponentGroup> groups = decomposition.groups;
  for (auto& g : groups) {
    // Order rep nodes (and their aligned mirrors) by node_order position.
    std::vector<size_t> idx(g.rep.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return pos[g.rep[a]] < pos[g.rep[b]];
    });
    ComponentGroup reordered;
    reordered.rep.reserve(g.rep.size());
    reordered.mirror.reserve(g.mirror.size());
    for (size_t i : idx) {
      reordered.rep.push_back(g.rep[i]);
      if (g.has_mirror()) reordered.mirror.push_back(g.mirror[i]);
    }
    g = std::move(reordered);
  }
  std::stable_sort(groups.begin(), groups.end(),
                   [&](const ComponentGroup& a, const ComponentGroup& b) {
                     int pa = Metagraph::kMaxNodes, pb = Metagraph::kMaxNodes;
                     for (MetaNodeId v : a.rep) pa = std::min(pa, pos[v]);
                     for (MetaNodeId v : a.mirror) pa = std::min(pa, pos[v]);
                     for (MetaNodeId v : b.rep) pb = std::min(pb, pos[v]);
                     for (MetaNodeId v : b.mirror) pb = std::min(pb, pos[v]);
                     return pa < pb;
                   });
  return groups;
}

}  // namespace metaprox
