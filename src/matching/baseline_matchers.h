// Re-implementations of the three published backtracking matchers the paper
// benchmarks against (Fig. 11). Each kernel keeps the distinguishing idea of
// its source on our shared framework:
//   * QuickSIMatcher  — Shang et al. [19]: selectivity-driven static node
//     ordering, no candidate precomputation.
//   * TurboISOMatcher — Han et al. [21]: candidate-region precomputation
//     (type + typed-degree filter, bounded neighborhood refinement) before
//     the backtracking phase.
//   * BoostISOMatcher — Ren & Wang [22]: TurboISO-style candidates refined
//     to a fixpoint, exploiting inter-vertex relationships to shrink the
//     search space further.
#ifndef METAPROX_MATCHING_BASELINE_MATCHERS_H_
#define METAPROX_MATCHING_BASELINE_MATCHERS_H_

#include "matching/matcher.h"

namespace metaprox {

class QuickSIMatcher : public Matcher {
 public:
  MatchStats Match(const Graph& g, const Metagraph& m,
                   InstanceSink* sink) const override;
  const char* name() const override { return "QuickSI"; }
};

class TurboISOMatcher : public Matcher {
 public:
  MatchStats Match(const Graph& g, const Metagraph& m,
                   InstanceSink* sink) const override;
  const char* name() const override { return "TurboISO"; }
};

class BoostISOMatcher : public Matcher {
 public:
  MatchStats Match(const Graph& g, const Metagraph& m,
                   InstanceSink* sink) const override;
  const char* name() const override { return "BoostISO"; }
};

}  // namespace metaprox

#endif  // METAPROX_MATCHING_BASELINE_MATCHERS_H_
