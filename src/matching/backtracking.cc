#include "matching/backtracking.h"

#include <array>

#include "util/macros.h"

namespace metaprox {
namespace {

class BacktrackState {
 public:
  BacktrackState(const Graph& g, const Metagraph& m,
                 const std::vector<MetaNodeId>& order, InstanceSink* sink,
                 const CandidateFilter* filter)
      : g_(g), m_(m), order_(order), sink_(sink), filter_(filter) {
    embedding_.fill(kInvalidNode);
  }

  // Returns false if the sink aborted.
  bool Search(size_t pos) {
    if (pos == order_.size()) {
      ++stats_.embeddings;
      return sink_->OnEmbedding(
          {embedding_.data(), static_cast<size_t>(m_.num_nodes())});
    }
    const MetaNodeId u = order_[pos];
    const TypeId ut = m_.TypeOf(u);
    const uint8_t matched_nbrs =
        static_cast<uint8_t>(m_.NeighborMask(u) & matched_mask_);

    // Candidate source: the typed adjacency slice of the matched neighbor
    // with the fewest type-ut neighbors, else all nodes of the type.
    std::span<const NodeId> candidates;
    int pivot = -1;
    if (matched_nbrs) {
      size_t best = SIZE_MAX;
      for (int w = 0; w < m_.num_nodes(); ++w) {
        if (!((matched_nbrs >> w) & 1u)) continue;
        auto slice = g_.NeighborsOfType(embedding_[w], ut);
        if (slice.size() < best) {
          best = slice.size();
          candidates = slice;
          pivot = w;
        }
      }
    } else {
      candidates = g_.NodesOfType(ut);
    }

    for (NodeId c : candidates) {
      ++stats_.search_nodes;
      if (filter_ && !filter_->Allows(c, u)) continue;
      if (IsUsed(c, pos)) continue;
      // Verify edges to all matched metagraph neighbors except the pivot.
      bool ok = true;
      for (int w = 0; w < m_.num_nodes() && ok; ++w) {
        if (w == pivot || !((matched_nbrs >> w) & 1u)) continue;
        ok = g_.HasEdge(c, embedding_[w]);
      }
      if (!ok) continue;
      embedding_[u] = c;
      matched_mask_ |= static_cast<uint8_t>(1u << u);
      bool keep_going = Search(pos + 1);
      matched_mask_ &= static_cast<uint8_t>(~(1u << u));
      embedding_[u] = kInvalidNode;
      if (!keep_going) {
        stats_.aborted = true;
        return false;
      }
    }
    return true;
  }

  MatchStats stats() const { return stats_; }

 private:
  bool IsUsed(NodeId c, size_t pos) const {
    for (size_t i = 0; i < pos; ++i) {
      if (embedding_[order_[i]] == c) return true;
    }
    return false;
  }

  const Graph& g_;
  const Metagraph& m_;
  const std::vector<MetaNodeId>& order_;
  InstanceSink* sink_;
  const CandidateFilter* filter_;
  std::array<NodeId, Metagraph::kMaxNodes> embedding_{};
  uint8_t matched_mask_ = 0;
  MatchStats stats_;
};

}  // namespace

MatchStats BacktrackMatch(const Graph& g, const Metagraph& m,
                          const std::vector<MetaNodeId>& order,
                          InstanceSink* sink, const CandidateFilter* filter) {
  MX_CHECK(static_cast<int>(order.size()) == m.num_nodes());
  if (m.num_nodes() == 0) return {};
  BacktrackState state(g, m, order, sink, filter);
  state.Search(0);
  return state.stats();
}

}  // namespace metaprox
