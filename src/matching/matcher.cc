#include "matching/matcher.h"

#include "matching/baseline_matchers.h"
#include "matching/symiso.h"
#include "util/macros.h"

namespace metaprox {

const char* MatcherKindName(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kQuickSI:
      return "QuickSI";
    case MatcherKind::kTurboISO:
      return "TurboISO";
    case MatcherKind::kBoostISO:
      return "BoostISO";
    case MatcherKind::kSymISO:
      return "SymISO";
    case MatcherKind::kSymISORandom:
      return "SymISO-R";
  }
  return "unknown";
}

std::unique_ptr<Matcher> CreateMatcher(MatcherKind kind, uint64_t seed) {
  switch (kind) {
    case MatcherKind::kQuickSI:
      return std::make_unique<QuickSIMatcher>();
    case MatcherKind::kTurboISO:
      return std::make_unique<TurboISOMatcher>();
    case MatcherKind::kBoostISO:
      return std::make_unique<BoostISOMatcher>();
    case MatcherKind::kSymISO:
      return std::make_unique<SymISOMatcher>(/*random_order=*/false, seed);
    case MatcherKind::kSymISORandom:
      return std::make_unique<SymISOMatcher>(/*random_order=*/true, seed);
  }
  MX_CHECK_MSG(false, "unreachable matcher kind");
  return nullptr;
}

}  // namespace metaprox
