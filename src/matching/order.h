// Matching-order heuristics (Sect. IV-C "Matching order").
//
// Following the paper (and QuickSI / Lin et al. [23]), the next node to
// match is chosen to minimize the estimated number of intermediate
// instances: extending a partial pattern M(i) along metagraph edge <u, u'>
// (u already ordered) multiplies the estimate by |I(<u,u'>)| / |I(u)|, where
// |I(<u,u'>)| is the number of graph edges between the endpoint types and
// |I(u)| the number of graph nodes of u's type.
#ifndef METAPROX_MATCHING_ORDER_H_
#define METAPROX_MATCHING_ORDER_H_

#include <vector>

#include "graph/graph.h"
#include "metagraph/decomposition.h"
#include "metagraph/metagraph.h"
#include "util/rng.h"

namespace metaprox {

/// Greedy connectivity-preserving node order minimizing the estimated
/// intermediate-instance count. The first two nodes are the endpoints of
/// the most selective edge.
std::vector<MetaNodeId> GreedyNodeOrder(const Graph& g, const Metagraph& m);

/// Connectivity-preserving but otherwise uniformly random order (ablation
/// baseline for SymISO-R).
std::vector<MetaNodeId> RandomNodeOrder(const Metagraph& m, util::Rng& rng);

/// Orders the component groups of a decomposition by the position of their
/// earliest node in `node_order`, and orders each group's rep nodes the same
/// way. Used by SymISO-R and as a fallback.
std::vector<ComponentGroup> OrderGroups(
    const ComponentDecomposition& decomposition,
    const std::vector<MetaNodeId>& node_order);

/// Selectivity-driven group ordering for SymISO (Alg. 2, step 3): greedily
/// picks the next group with the smallest estimated growth of the
/// intermediate result, where a node's expected candidate count is
/// |V_t| * prod over already-matched neighbors of p(edge) under an
/// independence model (p = #edges(t_u,t_v) / (|V_tu| * |V_tv|)). Mirror
/// groups are estimated over both halves, so they are naturally delayed
/// until their attachment context is matched — which is exactly when the
/// candidate-reuse pair loop is cheapest.
std::vector<ComponentGroup> CostOrderGroups(
    const Graph& g, const Metagraph& m,
    const ComponentDecomposition& decomposition);

}  // namespace metaprox

#endif  // METAPROX_MATCHING_ORDER_H_
