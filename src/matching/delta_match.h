// Delta-rooted embedding enumeration for incremental index refresh.
//
// Appends never remove embeddings, so the grown graph's embedding set is
// the old set plus exactly the embeddings that map at least one metagraph
// edge onto a NEW graph edge (an edge of the grown graph absent before —
// this includes every edge incident to an appended node, which did not
// exist either). DeltaMatch enumerates precisely that difference,
// delivering each new embedding to the sink exactly once, so raw counts
// refresh additively: counts(grown) = counts(old) + counts(DeltaMatch).
//
// Rooting: for each new edge e_r (in `new_edges` order) and each metagraph
// edge (p, q) whose endpoint types match — both orientations — the shared
// backtracking search of Sect. IV-A runs with f(p), f(q) pre-assigned to
// e_r's endpoints. A branch is pruned the moment any metagraph edge maps
// onto a new edge ranked below r, so an embedding is enumerated only from
// its minimal new edge — and there exactly once, because an injective
// mapping sends at most one metagraph edge onto e_r.
//
// Cost scales with the number of new edges times the embeddings around
// them, not with graph size — the property bench_incremental's refresh-vs-
// rebuild gate rests on.
#ifndef METAPROX_MATCHING_DELTA_MATCH_H_
#define METAPROX_MATCHING_DELTA_MATCH_H_

#include <span>
#include <utility>

#include "graph/graph.h"
#include "matching/instance_sink.h"
#include "matching/matcher.h"
#include "metagraph/metagraph.h"

namespace metaprox {

/// Enumerates the embeddings of `m` in `g` that use at least one edge of
/// `new_edges` into `sink`, each exactly once. `new_edges` must be edges
/// of `g`, self-loop-free and pairwise distinct as unordered pairs; the
/// counts delivered are independent of their order.
MatchStats DeltaMatch(const Graph& g, const Metagraph& m,
                      std::span<const std::pair<NodeId, NodeId>> new_edges,
                      InstanceSink* sink);

}  // namespace metaprox

#endif  // METAPROX_MATCHING_DELTA_MATCH_H_
