// Consumers of subgraph-matching results.
//
// Matchers enumerate *embeddings* (injective maps V_M → V carrying every
// metagraph edge to a graph edge). Each instance of M (Def. 2) is discovered
// by exactly |Aut(M)| embeddings, so counting sinks divide by the
// automorphism count at the end (see index/metagraph_vectors.h).
#ifndef METAPROX_MATCHING_INSTANCE_SINK_H_
#define METAPROX_MATCHING_INSTANCE_SINK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace metaprox {

/// Receives embeddings as they are produced. `embedding[u]` is the graph
/// node matched to metagraph node u. Return false to abort the search
/// (e.g., an instance cap was reached).
class InstanceSink {
 public:
  virtual ~InstanceSink() = default;
  virtual bool OnEmbedding(std::span<const NodeId> embedding) = 0;
};

/// Counts embeddings, optionally aborting after `cap`.
class CountingSink : public InstanceSink {
 public:
  explicit CountingSink(uint64_t cap = UINT64_MAX) : cap_(cap) {}

  bool OnEmbedding(std::span<const NodeId>) override {
    ++count_;
    return count_ < cap_;
  }

  uint64_t count() const { return count_; }
  bool saturated() const { return count_ >= cap_; }

 private:
  uint64_t count_ = 0;
  uint64_t cap_;
};

/// Materializes embeddings (tests and small workloads only).
class CollectingSink : public InstanceSink {
 public:
  explicit CollectingSink(uint64_t cap = UINT64_MAX) : cap_(cap) {}

  bool OnEmbedding(std::span<const NodeId> embedding) override {
    embeddings_.emplace_back(embedding.begin(), embedding.end());
    return embeddings_.size() < cap_;
  }

  const std::vector<std::vector<NodeId>>& embeddings() const {
    return embeddings_;
  }

 private:
  std::vector<std::vector<NodeId>> embeddings_;
  uint64_t cap_;
};

}  // namespace metaprox

#endif  // METAPROX_MATCHING_INSTANCE_SINK_H_
