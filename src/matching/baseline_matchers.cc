#include "matching/baseline_matchers.h"

#include "matching/backtracking.h"
#include "matching/candidate_filter.h"
#include "matching/order.h"

namespace metaprox {

MatchStats QuickSIMatcher::Match(const Graph& g, const Metagraph& m,
                                 InstanceSink* sink) const {
  auto order = GreedyNodeOrder(g, m);
  return BacktrackMatch(g, m, order, sink, /*filter=*/nullptr);
}

MatchStats TurboISOMatcher::Match(const Graph& g, const Metagraph& m,
                                  InstanceSink* sink) const {
  auto order = GreedyNodeOrder(g, m);
  CandidateFilter filter = BuildTypeDegreeFilter(g, m);
  RefineFilter(g, m, filter, /*rounds=*/2);
  return BacktrackMatch(g, m, order, sink, &filter);
}

MatchStats BoostISOMatcher::Match(const Graph& g, const Metagraph& m,
                                  InstanceSink* sink) const {
  auto order = GreedyNodeOrder(g, m);
  CandidateFilter filter = BuildTypeDegreeFilter(g, m);
  RefineFilter(g, m, filter, /*rounds=*/-1);  // fixpoint
  return BacktrackMatch(g, m, order, sink, &filter);
}

}  // namespace metaprox
