#include "matching/symiso.h"

#include <array>
#include <unordered_map>
#include <vector>

#include "matching/backtracking.h"
#include "matching/candidate_filter.h"
#include "matching/order.h"
#include "metagraph/automorphism.h"
#include "metagraph/decomposition.h"
#include "util/macros.h"
#include "util/rng.h"

namespace metaprox {
namespace {

// First and second moments of the typed-degree distribution: over nodes v
// of type s, the mean and mean-square of |N_t(v)|. The second moment drives
// the cost estimate of the mirror pair loop (E[|C|^2], which under hub skew
// is much larger than E[|C|]^2).
class DegreeMoments {
 public:
  explicit DegreeMoments(const Graph& g) : g_(g) {}

  std::pair<double, double> Get(TypeId s, TypeId t) {
    uint32_t key = (static_cast<uint32_t>(s) << 16) | t;
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    double sum = 0.0, sum_sq = 0.0;
    auto nodes = g_.NodesOfType(s);
    for (NodeId v : nodes) {
      double d = static_cast<double>(g_.NeighborsOfType(v, t).size());
      sum += d;
      sum_sq += d * d;
    }
    double n = std::max<double>(1.0, static_cast<double>(nodes.size()));
    auto moments = std::make_pair(sum / n, sum_sq / n);
    cache_.emplace(key, moments);
    return moments;
  }

 private:
  const Graph& g_;
  std::unordered_map<uint32_t, std::pair<double, double>> cache_;
};

// Independence-model estimates shared by the two plan costers.
// cands(u): expected candidates *tried* for u (tightest pivot slice; the
//           whole type when blind).
// survive(u): expected candidates that satisfy *all* matched-neighbor
//           edges: |V_tu| * prod p(edge), p = E(s,t) / (|V_s| |V_t|).
struct NodeEstimates {
  double cands;
  double survive;
};

NodeEstimates EstimateNode(const Graph& g, const Metagraph& m, MetaNodeId u,
                           uint8_t matched, DegreeMoments& moments) {
  const uint8_t nbrs = static_cast<uint8_t>(m.NeighborMask(u) & matched);
  const double cu = static_cast<double>(
      std::max<size_t>(1, g.CountOfType(m.TypeOf(u))));
  if (!nbrs) return {cu, cu};
  double cands = std::numeric_limits<double>::infinity();
  double survive = cu;
  for (int v = 0; v < m.num_nodes(); ++v) {
    if (!((nbrs >> v) & 1u)) continue;
    TypeId tv = m.TypeOf(static_cast<MetaNodeId>(v));
    cands = std::min(cands, moments.Get(tv, m.TypeOf(u)).first);
    double cv = static_cast<double>(std::max<size_t>(1, g.CountOfType(tv)));
    double e = static_cast<double>(g.EdgeCountBetweenTypes(tv, m.TypeOf(u)));
    survive *= std::min(1.0, e / (cu * cv));
  }
  return {std::max(1.0, cands), std::max(1e-9, survive)};
}

// Estimated total work of the interleaved (plain backtracking) plan over
// `order`: sum over steps of (intermediate embeddings x candidates tried).
double EstimatePlainCost(const Graph& g, const Metagraph& m,
                         const std::vector<MetaNodeId>& order,
                         DegreeMoments& moments) {
  double intermediates = 1.0;
  double work = 0.0;
  uint8_t matched = 0;
  for (MetaNodeId u : order) {
    NodeEstimates est = EstimateNode(g, m, u, matched, moments);
    work += intermediates * est.cands;
    intermediates *= est.survive;
    matched |= static_cast<uint8_t>(1u << u);
  }
  return work;
}

// Estimated total work of the component plan: like the plain estimate, but
// a mirror group's pair loop costs E[|C|^2] ~= E[|C|]^2 * skew iterations,
// where skew is the second-moment correction of the rep's first node — hub
// skew is exactly what makes the pair loop explode.
double EstimateGroupCost(const Graph& g, const Metagraph& m,
                         const std::vector<ComponentGroup>& groups,
                         DegreeMoments& moments) {
  double intermediates = 1.0;
  double work = 0.0;
  uint8_t matched = 0;

  auto skew_of = [&](MetaNodeId u, uint8_t mask) {
    uint8_t nbrs = static_cast<uint8_t>(m.NeighborMask(u) & mask);
    if (!nbrs) return 1.0;
    // Use the pivot (tightest-mean) constraint's m2 / mean^2.
    double best_mean = std::numeric_limits<double>::infinity();
    double best_m2 = 1.0;
    for (int v = 0; v < m.num_nodes(); ++v) {
      if (!((nbrs >> v) & 1u)) continue;
      auto [mean, m2] =
          moments.Get(m.TypeOf(static_cast<MetaNodeId>(v)), m.TypeOf(u));
      if (mean < best_mean) {
        best_mean = mean;
        best_m2 = m2;
      }
    }
    if (best_mean <= 0.0) return 1.0;
    return std::max(1.0, best_m2 / (best_mean * best_mean));
  };

  for (const ComponentGroup& group : groups) {
    double c_survive = 1.0;
    uint8_t local = matched;
    for (MetaNodeId u : group.rep) {
      NodeEstimates est = EstimateNode(g, m, u, local, moments);
      work += intermediates * est.cands;
      c_survive *= est.survive;
      local |= static_cast<uint8_t>(1u << u);
    }
    if (group.has_mirror()) {
      const double skew =
          group.rep.empty() ? 1.0 : skew_of(group.rep[0], matched);
      const double pairs = c_survive * c_survive * skew;
      work += intermediates * pairs;  // pair-loop iterations (cheap each)
      intermediates *= std::max(1e-9, pairs);
      for (MetaNodeId u : group.mirror) {
        local |= static_cast<uint8_t>(1u << u);
      }
    } else {
      intermediates *= std::max(1e-9, c_survive);
    }
    matched = local;
  }
  return work;
}

// A matching of one component: graph nodes aligned with the component's
// rep-node list. Components are small (<= kMaxNodes), inline storage.
struct ComponentMatch {
  std::array<NodeId, Metagraph::kMaxNodes> nodes;
};

class SymISOState {
 public:
  SymISOState(const Graph& g, const Metagraph& m,
              const std::vector<ComponentGroup>& groups, InstanceSink* sink,
              const CandidateFilter* filter)
      : g_(g), m_(m), groups_(groups), sink_(sink), filter_(filter) {
    embedding_.fill(kInvalidNode);
  }

  bool SearchGroup(size_t gi) {
    if (gi == groups_.size()) {
      ++stats_.embeddings;
      return sink_->OnEmbedding(
          {embedding_.data(), static_cast<size_t>(m_.num_nodes())});
    }
    const ComponentGroup& group = groups_[gi];
    if (!group.has_mirror()) {
      return MatchComponentNodes(group.rep, 0, [&]() {
        return SearchGroup(gi + 1);
      });
    }
    return MatchMirrorPair(group, gi);
  }

  MatchStats stats() const { return stats_; }

 private:
  // Backtracks over the nodes of one component (Alg. 3's C(S|D) expansion),
  // invoking `on_complete` for every full component matching. Returns false
  // if the sink aborted.
  template <typename Fn>
  bool MatchComponentNodes(const std::vector<MetaNodeId>& nodes, size_t idx,
                           Fn&& on_complete) {
    if (idx == nodes.size()) return on_complete();
    const MetaNodeId u = nodes[idx];
    const TypeId ut = m_.TypeOf(u);
    const uint8_t matched_nbrs =
        static_cast<uint8_t>(m_.NeighborMask(u) & matched_mask_);

    std::span<const NodeId> candidates;
    int pivot = -1;
    if (matched_nbrs) {
      size_t best = SIZE_MAX;
      for (int w = 0; w < m_.num_nodes(); ++w) {
        if (!((matched_nbrs >> w) & 1u)) continue;
        auto slice = g_.NeighborsOfType(embedding_[w], ut);
        if (slice.size() < best) {
          best = slice.size();
          candidates = slice;
          pivot = w;
        }
      }
    } else {
      candidates = g_.NodesOfType(ut);
    }

    for (NodeId c : candidates) {
      ++stats_.search_nodes;
      if (filter_ && !filter_->Allows(c, u)) continue;
      if (IsUsed(c)) continue;
      bool ok = true;
      for (int w = 0; w < m_.num_nodes() && ok; ++w) {
        if (w == pivot || !((matched_nbrs >> w) & 1u)) continue;
        ok = g_.HasEdge(c, embedding_[w]);
      }
      if (!ok) continue;
      Assign(u, c);
      bool keep_going = MatchComponentNodes(nodes, idx + 1,
                                            std::forward<Fn>(on_complete));
      Unassign(u);
      if (!keep_going) return false;
    }
    return true;
  }

  // Matches a mirror pair: enumerate C(S|D) once, then instantiate (S, S')
  // from all ordered node-disjoint pairs, verifying cross edges.
  bool MatchMirrorPair(const ComponentGroup& group, size_t gi) {
    const size_t k = group.rep.size();

    // Collect C(S|D).
    std::vector<ComponentMatch> cands;
    bool sink_ok = MatchComponentNodes(group.rep, 0, [&]() {
      ComponentMatch cm;
      for (size_t i = 0; i < k; ++i) cm.nodes[i] = embedding_[group.rep[i]];
      cands.push_back(cm);
      return true;
    });
    MX_CHECK(sink_ok);  // collection never aborts

    // Cross edges (rep[i], mirror[j]) that need per-pair verification.
    std::array<std::pair<uint8_t, uint8_t>, 16> cross{};
    size_t num_cross = 0;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        if (m_.HasEdge(group.rep[i], group.mirror[j])) {
          MX_CHECK(num_cross < cross.size());
          cross[num_cross++] = {static_cast<uint8_t>(i),
                                static_cast<uint8_t>(j)};
        }
      }
    }

    // Instantiating the mirror from re-used candidates performs no fresh
    // candidate generation, so the pair loop does not add search_nodes —
    // that is precisely the work symmetry saves (Sect. IV-C).
    auto try_pair = [&](size_t a, size_t b) -> bool {
      // Node-disjointness of the two component matchings.
      for (size_t i = 0; i < k; ++i) {
        for (size_t j = 0; j < k; ++j) {
          if (cands[a].nodes[i] == cands[b].nodes[j]) return true;
        }
      }
      // Cross-edge verification.
      for (size_t e = 0; e < num_cross; ++e) {
        if (!g_.HasEdge(cands[a].nodes[cross[e].first],
                        cands[b].nodes[cross[e].second])) {
          return true;
        }
      }
      for (size_t i = 0; i < k; ++i) {
        Assign(group.rep[i], cands[a].nodes[i]);
        Assign(group.mirror[i], cands[b].nodes[i]);
      }
      bool keep_going = SearchGroup(gi + 1);
      for (size_t i = 0; i < k; ++i) {
        Unassign(group.rep[i]);
        Unassign(group.mirror[i]);
      }
      return keep_going;
    };

    if (num_cross > 0 && cands.size() > 16) {
      // Hash join on the first cross edge: for candidate a, the mirror
      // candidate's node at position cross[0].second must be a graph
      // neighbor of a's node at cross[0].first — enumerate only those.
      const uint8_t ci = cross[0].first, cj = cross[0].second;
      const TypeId join_type = m_.TypeOf(group.rep[cj]);
      std::unordered_multimap<NodeId, size_t> by_join_node;
      by_join_node.reserve(cands.size());
      for (size_t b = 0; b < cands.size(); ++b) {
        by_join_node.emplace(cands[b].nodes[cj], b);
      }
      for (size_t a = 0; a < cands.size(); ++a) {
        for (NodeId w : g_.NeighborsOfType(cands[a].nodes[ci], join_type)) {
          auto [lo, hi] = by_join_node.equal_range(w);
          for (auto it = lo; it != hi; ++it) {
            if (it->second == a) continue;
            if (!try_pair(a, it->second)) return false;
          }
        }
      }
      return true;
    }

    for (size_t a = 0; a < cands.size(); ++a) {
      for (size_t b = 0; b < cands.size(); ++b) {
        if (a == b) continue;
        if (!try_pair(a, b)) return false;
      }
    }
    return true;
  }

  void Assign(MetaNodeId u, NodeId c) {
    embedding_[u] = c;
    matched_mask_ |= static_cast<uint8_t>(1u << u);
  }
  void Unassign(MetaNodeId u) {
    embedding_[u] = kInvalidNode;
    matched_mask_ &= static_cast<uint8_t>(~(1u << u));
  }

  bool IsUsed(NodeId c) const {
    for (int v = 0; v < m_.num_nodes(); ++v) {
      if (((matched_mask_ >> v) & 1u) && embedding_[v] == c) return true;
    }
    return false;
  }

  const Graph& g_;
  const Metagraph& m_;
  const std::vector<ComponentGroup>& groups_;
  InstanceSink* sink_;
  const CandidateFilter* filter_;
  std::array<NodeId, Metagraph::kMaxNodes> embedding_{};
  uint8_t matched_mask_ = 0;
  MatchStats stats_;
};

}  // namespace

MatchStats SymISOMatcher::Match(const Graph& g, const Metagraph& m,
                                InstanceSink* sink) const {
  if (m.num_nodes() == 0) return {};

  SymmetryInfo sym = AnalyzeSymmetry(m);
  ComponentDecomposition decomp = DecomposeSymmetricComponents(m, sym);

  std::vector<ComponentGroup> groups;
  if (random_order_) {
    util::Rng rng(seed_);
    groups = OrderGroups(decomp, RandomNodeOrder(m, rng));
  } else {
    groups = CostOrderGroups(g, m, decomp);
  }

  // Cost-based fallback (the paper notes SymISO can "fall back to existing
  // matching algorithms whenever needed"): when the component plan's
  // estimated work exceeds the interleaved plan's — e.g. a skew-heavy pair
  // loop that node-at-a-time ordering would prune between the two halves —
  // run the plain backtracking kernel instead of component matching.
  if (!random_order_) {
    DegreeMoments moments(g);
    auto node_order = GreedyNodeOrder(g, m);
    const double plain = EstimatePlainCost(g, m, node_order, moments);
    const double grouped = EstimateGroupCost(g, m, groups, moments);
    if (grouped > 1.5 * plain) {
      return BacktrackMatch(g, m, node_order, sink, /*filter=*/nullptr);
    }
  }

  SymISOState state(g, m, groups, sink, /*filter=*/nullptr);
  bool completed = state.SearchGroup(0);
  MatchStats stats = state.stats();
  stats.aborted = !completed;
  return stats;
}

}  // namespace metaprox
