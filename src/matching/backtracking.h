// The shared backtracking framework of Sect. IV-A: matches one metagraph
// node at a time along a given order, generating candidates from the typed
// adjacency slice of an already-matched pivot neighbor.
#ifndef METAPROX_MATCHING_BACKTRACKING_H_
#define METAPROX_MATCHING_BACKTRACKING_H_

#include <vector>

#include "graph/graph.h"
#include "matching/candidate_filter.h"
#include "matching/instance_sink.h"
#include "matching/matcher.h"
#include "metagraph/metagraph.h"

namespace metaprox {

/// Enumerates all embeddings of `m` in `g`, matching nodes in `order`.
/// `filter` may be null (no pruning beyond type/edge checks).
MatchStats BacktrackMatch(const Graph& g, const Metagraph& m,
                          const std::vector<MetaNodeId>& order,
                          InstanceSink* sink, const CandidateFilter* filter);

}  // namespace metaprox

#endif  // METAPROX_MATCHING_BACKTRACKING_H_
