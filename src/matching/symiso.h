// SymISO: symmetry-based metagraph matching (Sect. IV-C, Alg. 2 and 3).
//
// The metagraph is decomposed into component groups (see
// metagraph/decomposition.h). Plain components are matched by ordinary
// backtracking; for a mirror pair (S, S') the matcher enumerates the
// candidate matchings C(S|D) of the representative *once* and instantiates
// both components from ordered pairs of node-disjoint entries of C(S|D) —
// this is sound because the pairing involution fixes every matched node
// pointwise, so C(S'|D) = C(S|D) exactly. Only the cross edges between S
// and S' still need verification per pair.
//
// SymISO-R is the ablation of Fig. 11: identical machinery with a random
// (connectivity-preserving) component order instead of the selectivity-
// driven one.
#ifndef METAPROX_MATCHING_SYMISO_H_
#define METAPROX_MATCHING_SYMISO_H_

#include <cstdint>

#include "matching/matcher.h"

namespace metaprox {

class SymISOMatcher : public Matcher {
 public:
  /// `random_order` selects the SymISO-R ablation; `seed` drives its RNG.
  explicit SymISOMatcher(bool random_order = false, uint64_t seed = 17)
      : random_order_(random_order), seed_(seed) {}

  MatchStats Match(const Graph& g, const Metagraph& m,
                   InstanceSink* sink) const override;

  const char* name() const override {
    return random_order_ ? "SymISO-R" : "SymISO";
  }

 private:
  bool random_order_;
  uint64_t seed_;
};

}  // namespace metaprox

#endif  // METAPROX_MATCHING_SYMISO_H_
