#include "matching/candidate_filter.h"

#include <array>

namespace metaprox {

uint64_t CandidateFilter::CountAllowed(MetaNodeId u) const {
  uint64_t count = 0;
  for (uint8_t bits : allow_) count += (bits >> u) & 1u;
  return count;
}

CandidateFilter BuildTypeDegreeFilter(const Graph& g, const Metagraph& m) {
  CandidateFilter filter(g.num_nodes());
  const int n = m.num_nodes();

  for (MetaNodeId u = 0; u < n; ++u) {
    // Typed-degree requirement of u: counts of metagraph neighbors per type.
    std::array<std::pair<TypeId, int>, Metagraph::kMaxNodes> req{};
    int num_req = 0;
    for (MetaNodeId w = 0; w < n; ++w) {
      if (!m.HasEdge(u, w)) continue;
      TypeId t = m.TypeOf(w);
      bool found = false;
      for (int i = 0; i < num_req; ++i) {
        if (req[i].first == t) {
          ++req[i].second;
          found = true;
          break;
        }
      }
      if (!found) req[num_req++] = {t, 1};
    }

    for (NodeId v : g.NodesOfType(m.TypeOf(u))) {
      bool ok = true;
      for (int i = 0; i < num_req; ++i) {
        if (static_cast<int>(g.NeighborsOfType(v, req[i].first).size()) <
            req[i].second) {
          ok = false;
          break;
        }
      }
      if (ok) filter.Set(v, u);
    }
  }
  return filter;
}

uint64_t RefineFilter(const Graph& g, const Metagraph& m,
                      CandidateFilter& filter, int rounds) {
  const int n = m.num_nodes();
  uint64_t total_removed = 0;
  for (int round = 0; rounds < 0 || round < rounds; ++round) {
    uint64_t removed = 0;
    for (MetaNodeId u = 0; u < n; ++u) {
      for (NodeId v : g.NodesOfType(m.TypeOf(u))) {
        if (!filter.Allows(v, u)) continue;
        bool ok = true;
        for (MetaNodeId w = 0; w < n && ok; ++w) {
          if (!m.HasEdge(u, w)) continue;
          bool has_support = false;
          for (NodeId nb : g.NeighborsOfType(v, m.TypeOf(w))) {
            if (filter.Allows(nb, w)) {
              has_support = true;
              break;
            }
          }
          ok = has_support;
        }
        if (!ok) {
          filter.Clear(v, u);
          ++removed;
        }
      }
    }
    total_removed += removed;
    if (removed == 0) break;
  }
  return total_removed;
}

}  // namespace metaprox
