#include "matching/delta_match.h"

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/macros.h"

namespace metaprox {
namespace {

/// Canonical unordered-pair key for a graph edge (same packing as the
/// index's PairKey, kept local: this map never leaves the process).
inline uint64_t EdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

/// Static extension order for a search rooted at metagraph edge {p, q}:
/// the remaining nodes in connected-expansion order (always a node with an
/// already-matched neighbor, smallest id first). Counts are independent of
/// the order, so a simple deterministic one suffices.
std::vector<MetaNodeId> ExtensionOrder(const Metagraph& m, MetaNodeId p,
                                       MetaNodeId q) {
  std::vector<MetaNodeId> order;
  order.reserve(static_cast<size_t>(m.num_nodes()) - 2);
  uint8_t matched = static_cast<uint8_t>((1u << p) | (1u << q));
  for (int step = 2; step < m.num_nodes(); ++step) {
    int pick = -1;
    for (int u = 0; u < m.num_nodes(); ++u) {
      if ((matched >> u) & 1u) continue;
      if (m.NeighborMask(u) & matched) {
        pick = u;
        break;
      }
    }
    MX_CHECK(pick >= 0);  // guaranteed by the connectivity precondition
    order.push_back(static_cast<MetaNodeId>(pick));
    matched |= static_cast<uint8_t>(1u << pick);
  }
  return order;
}

// The shared backtracking search (cf. BacktrackState in backtracking.cc),
// extended with a pre-assigned seed edge and the minimal-root prune: any
// branch mapping a metagraph edge onto a new edge ranked below the root
// is abandoned, so each new embedding is enumerated exactly once — from
// the lowest-ranked new edge it uses.
class DeltaState {
 public:
  DeltaState(const Graph& g, const Metagraph& m,
             const std::unordered_map<uint64_t, size_t>& rank,
             InstanceSink* sink)
      : g_(g), m_(m), rank_(rank), sink_(sink) {
    embedding_.fill(kInvalidNode);
  }

  // One rooted search with f(p) = x, f(q) = y (types already checked by
  // the caller). Returns false if the sink aborted.
  bool SearchRooted(std::span<const MetaNodeId> order, MetaNodeId p,
                    MetaNodeId q, NodeId x, NodeId y, size_t root_rank) {
    embedding_[p] = x;
    embedding_[q] = y;
    matched_mask_ = static_cast<uint8_t>((1u << p) | (1u << q));
    root_rank_ = root_rank;
    const bool keep_going = Search(order, 0);
    if (!keep_going) stats_.aborted = true;
    embedding_[p] = kInvalidNode;
    embedding_[q] = kInvalidNode;
    return keep_going;
  }

  MatchStats stats() const { return stats_; }

 private:
  bool Search(std::span<const MetaNodeId> order, size_t pos) {
    if (pos == order.size()) {
      ++stats_.embeddings;
      return sink_->OnEmbedding(
          {embedding_.data(), static_cast<size_t>(m_.num_nodes())});
    }
    const MetaNodeId u = order[pos];
    const TypeId ut = m_.TypeOf(u);
    const uint8_t matched_nbrs =
        static_cast<uint8_t>(m_.NeighborMask(u) & matched_mask_);

    // Candidate source: the typed adjacency slice of the matched neighbor
    // with the fewest type-ut neighbors. The seed guarantees a matched
    // neighbor exists at every position (connected expansion order).
    std::span<const NodeId> candidates;
    int pivot = -1;
    if (matched_nbrs) {
      size_t best = SIZE_MAX;
      for (int w = 0; w < m_.num_nodes(); ++w) {
        if (!((matched_nbrs >> w) & 1u)) continue;
        auto slice = g_.NeighborsOfType(embedding_[w], ut);
        if (slice.size() < best) {
          best = slice.size();
          candidates = slice;
          pivot = w;
        }
      }
    } else {
      candidates = g_.NodesOfType(ut);
    }

    for (NodeId c : candidates) {
      ++stats_.search_nodes;
      if (IsUsed(c)) continue;
      bool ok = true;
      for (int w = 0; w < m_.num_nodes() && ok; ++w) {
        if (!((matched_nbrs >> w) & 1u)) continue;
        // Edges to matched neighbors must exist (the pivot's does by
        // construction) and none may be a new edge below the root.
        if (w != pivot && !g_.HasEdge(c, embedding_[w])) {
          ok = false;
          break;
        }
        auto it = rank_.find(EdgeKey(c, embedding_[w]));
        if (it != rank_.end() && it->second < root_rank_) ok = false;
      }
      if (!ok) continue;
      embedding_[u] = c;
      matched_mask_ |= static_cast<uint8_t>(1u << u);
      const bool keep_going = Search(order, pos + 1);
      matched_mask_ &= static_cast<uint8_t>(~(1u << u));
      embedding_[u] = kInvalidNode;
      if (!keep_going) {
        stats_.aborted = true;
        return false;
      }
    }
    return true;
  }

  bool IsUsed(NodeId c) const {
    for (int i = 0; i < m_.num_nodes(); ++i) {
      if (((matched_mask_ >> i) & 1u) && embedding_[i] == c) return true;
    }
    return false;
  }

  const Graph& g_;
  const Metagraph& m_;
  const std::unordered_map<uint64_t, size_t>& rank_;
  InstanceSink* sink_;
  std::array<NodeId, Metagraph::kMaxNodes> embedding_{};
  uint8_t matched_mask_ = 0;
  size_t root_rank_ = 0;
  MatchStats stats_;
};

}  // namespace

MatchStats DeltaMatch(const Graph& g, const Metagraph& m,
                      std::span<const std::pair<NodeId, NodeId>> new_edges,
                      InstanceSink* sink) {
  // Connectivity (with >= 2 nodes, hence >= 1 edge) is what makes edge
  // rooting complete: every embedding touching an appended NODE must also
  // map some metagraph edge onto one of that node's (all new) edges.
  // Callers fall back to a full re-match for metagraphs outside this
  // precondition.
  MX_CHECK(m.num_nodes() >= 2 && m.IsConnected());
  if (new_edges.empty()) return {};

  std::unordered_map<uint64_t, size_t> rank;
  rank.reserve(new_edges.size());
  for (size_t i = 0; i < new_edges.size(); ++i) {
    MX_DCHECK(new_edges[i].first != new_edges[i].second);
    rank.emplace(EdgeKey(new_edges[i].first, new_edges[i].second), i);
  }
  MX_CHECK(rank.size() == new_edges.size());  // pairwise distinct

  const auto meta_edges = m.Edges();
  std::vector<std::vector<MetaNodeId>> orders(meta_edges.size());
  for (size_t j = 0; j < meta_edges.size(); ++j) {
    orders[j] = ExtensionOrder(m, meta_edges[j].first, meta_edges[j].second);
  }

  DeltaState state(g, m, rank, sink);
  for (size_t r = 0; r < new_edges.size(); ++r) {
    const auto [x, y] = new_edges[r];
    const TypeId tx = g.TypeOf(x);
    const TypeId ty = g.TypeOf(y);
    for (size_t j = 0; j < meta_edges.size(); ++j) {
      const auto [p, q] = meta_edges[j];
      // Both orientations when both type-check: f(p)=x,f(q)=y and
      // f(p)=y,f(q)=x are distinct mappings, so no double count — and
      // injectivity sends at most one metagraph edge onto {x, y}, so no
      // other (p, q) can reach the same embedding from this root.
      if (m.TypeOf(p) == tx && m.TypeOf(q) == ty) {
        if (!state.SearchRooted(orders[j], p, q, x, y, r)) {
          return state.stats();
        }
      }
      if (m.TypeOf(p) == ty && m.TypeOf(q) == tx) {
        if (!state.SearchRooted(orders[j], p, q, y, x, r)) {
          return state.stats();
        }
      }
    }
  }
  return state.stats();
}

}  // namespace metaprox
