// Per-metagraph-node candidate allowlists, the pruning vocabulary shared by
// the TurboISO- and BoostISO-like kernels (and SymISO's inner matching).
//
// Storage is one byte per graph node: bit u set means the graph node may
// match metagraph node u (metagraphs have at most 8 nodes).
#ifndef METAPROX_MATCHING_CANDIDATE_FILTER_H_
#define METAPROX_MATCHING_CANDIDATE_FILTER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "metagraph/metagraph.h"

namespace metaprox {

class CandidateFilter {
 public:
  CandidateFilter() = default;
  explicit CandidateFilter(size_t num_graph_nodes)
      : allow_(num_graph_nodes, 0) {}

  bool Allows(NodeId v, MetaNodeId u) const { return (allow_[v] >> u) & 1u; }
  void Set(NodeId v, MetaNodeId u) {
    allow_[v] |= static_cast<uint8_t>(1u << u);
  }
  void Clear(NodeId v, MetaNodeId u) {
    allow_[v] &= static_cast<uint8_t>(~(1u << u));
  }

  bool empty() const { return allow_.empty(); }

  /// Number of graph nodes currently allowed for metagraph node u.
  uint64_t CountAllowed(MetaNodeId u) const;

 private:
  std::vector<uint8_t> allow_;
};

/// Static filter: type match plus typed-degree requirements — a graph node
/// can match metagraph node u only if, for every type t, it has at least as
/// many type-t neighbors as u has in the metagraph.
CandidateFilter BuildTypeDegreeFilter(const Graph& g, const Metagraph& m);

/// Neighborhood refinement: removes v from u's list when some metagraph
/// neighbor u' of u has no allowed graph neighbor of v. `rounds < 0` runs to
/// a fixpoint. Returns the number of removals performed.
uint64_t RefineFilter(const Graph& g, const Metagraph& m,
                      CandidateFilter& filter, int rounds);

}  // namespace metaprox

#endif  // METAPROX_MATCHING_CANDIDATE_FILTER_H_
