// Matcher interface and registry for the subgraph-isomorphism kernels
// compared in Fig. 11: QuickSI-, TurboISO-, BoostISO-like baselines and the
// paper's SymISO (+ SymISO-R ablation).
//
// All kernels enumerate non-induced embeddings (Def. 2 instances choose
// their own edge set, so extra graph edges among matched nodes are
// permitted) and share the backtracking framework of Sect. IV-A; they differ
// in ordering and pruning exactly as the respective papers do.
#ifndef METAPROX_MATCHING_MATCHER_H_
#define METAPROX_MATCHING_MATCHER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "graph/graph.h"
#include "matching/instance_sink.h"
#include "metagraph/metagraph.h"

namespace metaprox {

enum class MatcherKind {
  kQuickSI,
  kTurboISO,
  kBoostISO,
  kSymISO,
  kSymISORandom,  // SymISO with a random component order (ablation)
};

const char* MatcherKindName(MatcherKind kind);

/// Counters reported by a matching run.
struct MatchStats {
  uint64_t embeddings = 0;    // embeddings delivered to the sink
  uint64_t search_nodes = 0;  // candidate extensions attempted
  bool aborted = false;       // sink requested early stop
};

/// A subgraph-matching kernel. Stateless w.r.t. the graph; safe to reuse
/// across calls.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Enumerates all embeddings of `m` in `g` into `sink`.
  virtual MatchStats Match(const Graph& g, const Metagraph& m,
                           InstanceSink* sink) const = 0;

  virtual const char* name() const = 0;
};

/// Factory. `seed` only affects randomized kernels (SymISO-R).
std::unique_ptr<Matcher> CreateMatcher(MatcherKind kind, uint64_t seed = 17);

}  // namespace metaprox

#endif  // METAPROX_MATCHING_MATCHER_H_
