// Ground truth for one semantic class of proximity: the set of positive
// node pairs, the derived per-query relevant sets, and the query nodes
// (Sect. V-A "Training and testing": a node is a query iff it has at least
// one same-class partner).
#ifndef METAPROX_EVAL_GROUND_TRUTH_H_
#define METAPROX_EVAL_GROUND_TRUTH_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/types.h"
#include "index/metagraph_vectors.h"  // PairKey

namespace metaprox {

class GroundTruth {
 public:
  explicit GroundTruth(std::string class_name)
      : class_name_(std::move(class_name)) {}

  const std::string& class_name() const { return class_name_; }

  void AddPositivePair(NodeId x, NodeId y);

  bool IsPositive(NodeId x, NodeId y) const {
    return positive_pairs_.contains(PairKey(x, y));
  }

  size_t num_positive_pairs() const { return positive_pairs_.size(); }

  /// Nodes with at least one positive partner, ascending.
  const std::vector<NodeId>& queries() const { return queries_; }

  /// The positive partners of `q` (empty set if none).
  const std::unordered_set<NodeId>& RelevantTo(NodeId q) const;

  /// Rebuilds queries() / RelevantTo() views; call after the last
  /// AddPositivePair.
  void Finalize();

 private:
  std::string class_name_;
  std::unordered_set<uint64_t> positive_pairs_;
  std::unordered_map<NodeId, std::unordered_set<NodeId>> relevant_;
  std::vector<NodeId> queries_;
  bool finalized_ = false;
};

}  // namespace metaprox

#endif  // METAPROX_EVAL_GROUND_TRUTH_H_
