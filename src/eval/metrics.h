// Ranking quality metrics used in Sect. V: NDCG@k and (M)AP@k with binary
// relevance against an ideal ranking that places all same-class nodes first.
#ifndef METAPROX_EVAL_METRICS_H_
#define METAPROX_EVAL_METRICS_H_

#include <span>
#include <unordered_set>

#include "graph/types.h"

namespace metaprox {

/// NDCG@k of `ranked` (best first) against binary relevance. `num_relevant`
/// is the total number of relevant nodes (for the ideal DCG); returns 0 when
/// there are none.
double NdcgAtK(std::span<const NodeId> ranked,
               const std::unordered_set<NodeId>& relevant,
               size_t num_relevant, size_t k);

/// Average precision at k; the normalizer is min(k, num_relevant), so a
/// perfect prefix scores 1.
double AveragePrecisionAtK(std::span<const NodeId> ranked,
                           const std::unordered_set<NodeId>& relevant,
                           size_t num_relevant, size_t k);

}  // namespace metaprox

#endif  // METAPROX_EVAL_METRICS_H_
