#include "eval/splits.h"

#include <algorithm>

#include "util/macros.h"

namespace metaprox {

QuerySplit SplitQueries(const GroundTruth& gt, double train_fraction,
                        util::Rng& rng) {
  std::vector<NodeId> all = gt.queries();
  rng.Shuffle(all);
  QuerySplit split;
  if (all.empty()) return split;
  size_t n_train = static_cast<size_t>(
      train_fraction * static_cast<double>(all.size()) + 0.5);
  n_train = std::clamp<size_t>(n_train, 1, all.size() - (all.size() > 1));
  split.train.assign(all.begin(), all.begin() + static_cast<int64_t>(n_train));
  split.test.assign(all.begin() + static_cast<int64_t>(n_train), all.end());
  return split;
}

std::vector<Example> SampleExamples(const GroundTruth& gt,
                                    std::span<const NodeId> train_queries,
                                    std::span<const NodeId> pool, size_t count,
                                    util::Rng& rng) {
  std::vector<Example> examples;
  if (train_queries.empty() || pool.size() < 3) return examples;
  examples.reserve(count);

  size_t attempts = 0;
  const size_t max_attempts = count * 50 + 1000;
  while (examples.size() < count && attempts < max_attempts) {
    ++attempts;
    NodeId q = train_queries[rng.UniformInt(train_queries.size())];
    const auto& relevant = gt.RelevantTo(q);
    if (relevant.empty()) continue;
    // Pick a uniform positive partner.
    size_t pick = static_cast<size_t>(rng.UniformInt(relevant.size()));
    auto it = relevant.begin();
    std::advance(it, static_cast<int64_t>(pick));
    NodeId x = *it;
    // Pick a non-positive y.
    NodeId y = pool[rng.UniformInt(pool.size())];
    if (y == q || y == x || gt.IsPositive(q, y)) continue;
    examples.push_back({q, x, y});
  }
  return examples;
}

}  // namespace metaprox
