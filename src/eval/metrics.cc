#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace metaprox {

double NdcgAtK(std::span<const NodeId> ranked,
               const std::unordered_set<NodeId>& relevant,
               size_t num_relevant, size_t k) {
  if (num_relevant == 0) return 0.0;
  const size_t depth = std::min(k, ranked.size());
  double dcg = 0.0;
  for (size_t i = 0; i < depth; ++i) {
    if (relevant.contains(ranked[i])) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  double ideal = 0.0;
  const size_t ideal_depth = std::min(k, num_relevant);
  for (size_t i = 0; i < ideal_depth; ++i) {
    ideal += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return ideal > 0.0 ? dcg / ideal : 0.0;
}

double AveragePrecisionAtK(std::span<const NodeId> ranked,
                           const std::unordered_set<NodeId>& relevant,
                           size_t num_relevant, size_t k) {
  if (num_relevant == 0) return 0.0;
  const size_t depth = std::min(k, ranked.size());
  double hits = 0.0;
  double sum_precision = 0.0;
  for (size_t i = 0; i < depth; ++i) {
    if (relevant.contains(ranked[i])) {
      hits += 1.0;
      sum_precision += hits / static_cast<double>(i + 1);
    }
  }
  const double norm = static_cast<double>(std::min(k, num_relevant));
  return norm > 0.0 ? sum_precision / norm : 0.0;
}

}  // namespace metaprox
