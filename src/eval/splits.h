// Query splitting and training-triplet sampling (Sect. V-A): queries are
// split 20/80 into train/test; training examples (q, x, y) pair a positive
// partner x of a training query q with a non-positive node y.
#ifndef METAPROX_EVAL_SPLITS_H_
#define METAPROX_EVAL_SPLITS_H_

#include <span>
#include <vector>

#include "eval/ground_truth.h"
#include "learning/trainer.h"
#include "util/rng.h"

namespace metaprox {

struct QuerySplit {
  std::vector<NodeId> train;
  std::vector<NodeId> test;
};

/// Randomly assigns `train_fraction` of the class's queries to the training
/// split (at least one query on each side when possible).
QuerySplit SplitQueries(const GroundTruth& gt, double train_fraction,
                        util::Rng& rng);

/// Samples `count` triplets (q, x, y): q ∈ train_queries, x positive for q,
/// y drawn from `pool` with (q, y) non-positive and y ∉ {q, x}.
std::vector<Example> SampleExamples(const GroundTruth& gt,
                                    std::span<const NodeId> train_queries,
                                    std::span<const NodeId> pool, size_t count,
                                    util::Rng& rng);

}  // namespace metaprox

#endif  // METAPROX_EVAL_SPLITS_H_
