// Test-time evaluation: runs a ranker over the test queries of a class and
// averages NDCG@k / MAP@k against the ideal ranking (Sect. V-A).
#ifndef METAPROX_EVAL_EVALUATE_H_
#define METAPROX_EVAL_EVALUATE_H_

#include <functional>
#include <span>
#include <vector>

#include "eval/ground_truth.h"

namespace metaprox {

/// A ranker returns the top nodes (best first) for a query.
using Ranker = std::function<std::vector<NodeId>(NodeId q)>;

struct EvalResult {
  double ndcg = 0.0;
  double map = 0.0;
  size_t num_queries = 0;
};

/// Mean NDCG@k and MAP@k of `ranker` over `test_queries`.
EvalResult EvaluateRanker(const GroundTruth& gt,
                          std::span<const NodeId> test_queries,
                          const Ranker& ranker, size_t k);

}  // namespace metaprox

#endif  // METAPROX_EVAL_EVALUATE_H_
