#include "eval/evaluate.h"

#include "eval/metrics.h"

namespace metaprox {

EvalResult EvaluateRanker(const GroundTruth& gt,
                          std::span<const NodeId> test_queries,
                          const Ranker& ranker, size_t k) {
  EvalResult result;
  for (NodeId q : test_queries) {
    const auto& relevant = gt.RelevantTo(q);
    if (relevant.empty()) continue;
    std::vector<NodeId> ranked = ranker(q);
    result.ndcg += NdcgAtK(ranked, relevant, relevant.size(), k);
    result.map += AveragePrecisionAtK(ranked, relevant, relevant.size(), k);
    ++result.num_queries;
  }
  if (result.num_queries > 0) {
    result.ndcg /= static_cast<double>(result.num_queries);
    result.map /= static_cast<double>(result.num_queries);
  }
  return result;
}

}  // namespace metaprox
