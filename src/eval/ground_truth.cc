#include "eval/ground_truth.h"

#include <algorithm>

#include "util/macros.h"

namespace metaprox {

void GroundTruth::AddPositivePair(NodeId x, NodeId y) {
  MX_CHECK(x != y);
  finalized_ = false;
  if (!positive_pairs_.insert(PairKey(x, y)).second) return;
  relevant_[x].insert(y);
  relevant_[y].insert(x);
}

const std::unordered_set<NodeId>& GroundTruth::RelevantTo(NodeId q) const {
  static const std::unordered_set<NodeId> kEmpty;
  auto it = relevant_.find(q);
  return it == relevant_.end() ? kEmpty : it->second;
}

void GroundTruth::Finalize() {
  queries_.clear();
  queries_.reserve(relevant_.size());
  for (const auto& [node, partners] : relevant_) {
    if (!partners.empty()) queries_.push_back(node);
  }
  std::sort(queries_.begin(), queries_.end());
  finalized_ = true;
}

}  // namespace metaprox
