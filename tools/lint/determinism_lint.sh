#!/usr/bin/env bash
# determinism_lint: greps the determinism-critical layers (src/core,
# src/index, src/matching) for constructs that break the byte-identity
# contract ("same input -> same committed bytes, for any thread or shard
# count", see docs/ARCHITECTURE.md "The determinism contract"):
#
#   rule 1  banned nondeterminism sources: rand/srand/random/drand48/
#           rand_r, time/clock/gettimeofday/system_clock. Anything
#           time- or RNG-seeded in these layers would leak into mined
#           sets, counts, or rankings.
#   rule 2  range-for over a std::unordered_{map,set}: iteration order is
#           implementation- and seed-dependent, so it must never feed
#           committed output. Every site needs an explicit
#           `lint:allow-unordered-iter` marker (same line or the two
#           lines above) arguing why order cannot escape — a sort
#           downstream, or a commutative merge.
#   rule 3  raw float formatting (%e/%f/%g): committed text must use the
#           pinned round-trip formats (%.9g float32 in the index writer,
#           %.17g binary64 in wire.cc/model_io.cc — the latter two live
#           outside the scanned layers). A scanned-layer site needs a
#           `lint:allow-float-format` marker naming the pinned format.
#
# `//` comments are stripped before rules run, so prose mentioning
# "time (" or "%g" does not trip them; markers are comments, so they are
# looked up in the ORIGINAL lines. docs/STATIC_ANALYSIS.md documents the
# rules and marker policy.
#
# Usage: determinism_lint.sh [repo-root]   (default: the script's ../../)
set -u

root="${1:-$(cd "$(dirname "$0")/../.." && pwd)}"
fail=0

dirs=""
for d in core index matching; do
  if [ ! -d "$root/src/$d" ]; then
    echo "determinism_lint: missing directory $root/src/$d" >&2
    exit 1
  fi
  dirs="$dirs $root/src/$d"
done

re_banned='(^|[^A-Za-z0-9_])(rand|srand|random|drand48|rand_r|time|clock|gettimeofday)[[:space:]]*\(|std::chrono::system_clock'
re_float='%[-+ #0-9.*]*l?[efgEFG]'
marker_iter='lint:allow-unordered-iter'
marker_float='lint:allow-float-format'

# ---- self-test: every rule regex must fire on a known-bad line and stay
# quiet on a near-miss, so a silently broken regex fails the lint itself.
selftest() {
  local re="$1" bad="$2" good="$3"
  if ! printf '%s\n' "$bad" | grep -qE "$re"; then
    echo "determinism_lint: SELF-TEST FAILED: regex did not match: $bad" >&2
    exit 1
  fi
  if printf '%s\n' "$good" | grep -qE "$re"; then
    echo "determinism_lint: SELF-TEST FAILED: regex wrongly matched: $good" >&2
    exit 1
  fi
}
selftest "$re_banned" 'int x = rand();'            'operand(x);'
selftest "$re_banned" 'seed = time(nullptr);'      'double runtime(int);'
selftest "$re_banned" 'auto t = std::chrono::system_clock::now();' \
                      'auto t = std::chrono::steady_clock::now();'
selftest "$re_float"  'snprintf(b, n, "%f", v);'   'snprintf(b, n, "%d", v);'
selftest "$re_float"  'snprintf(b, n, "%-12.6g", v);' 'printf("100%%");'

# The rule-2 range-extraction awk program (shared by its self-test and
# the scan below). Prints `line:name:text` for each range-for whose range
# expression names an unordered container.
awk_rule2='
  BEGIN { n = split(names, nm, " ") }
  {
    s = $0
    if (!match(s, /for[ \t]*\(/)) next
    i = RSTART + RLENGTH; depth = 1; hdr = ""
    while (i <= length(s) && depth > 0) {
      c = substr(s, i, 1)
      if (c == "(") depth++
      else if (c == ")") depth--
      if (depth > 0) hdr = hdr c
      i++
    }
    p = index(hdr, " : ")
    if (p == 0) next
    range = substr(hdr, p + 3)
    for (k = 1; k <= n; k++) {
      if (range ~ ("(^|[^A-Za-z0-9_])" nm[k] "([^A-Za-z0-9_]|$)")) {
        print NR ":" nm[k] ":" s
        break
      }
    }
  }'
if [ -z "$(printf 'for (auto& [k, v] : bad.the_map()) {\n' \
           | awk -v names="the_map " "$awk_rule2")" ]; then
  echo "determinism_lint: SELF-TEST FAILED: rule 2 missed a range-for" \
       "over an unordered container" >&2
  exit 1
fi
if [ -n "$(printf 'for (auto k : dirty) SortRow(the_map[k]);\n' \
           | awk -v names="the_map " "$awk_rule2")" ]; then
  echo "determinism_lint: SELF-TEST FAILED: rule 2 flagged a container" \
       "used only in the loop body" >&2
  exit 1
fi

# Strips // comments, preserving line count so grep -n numbers line up
# with the original file.
strip_comments() { sed 's%//.*%%' "$1"; }

# True when `lint:allow-...` appears on line $2 of file $1 or on one of
# the two lines above it (markers are comments, read from the original).
has_marker() {
  local file="$1" line="$2" marker="$3" from
  from=$((line - 2)); [ "$from" -lt 1 ] && from=1
  sed -n "${from},${line}p" "$file" | grep -q "$marker"
}

files=$(find $dirs -name '*.h' -o -name '*.cc' | sort)

# ---- rule 1: banned nondeterminism sources (no marker can allow these).
for f in $files; do
  while IFS=: read -r ln text; do
    [ -z "$ln" ] && continue
    echo "determinism_lint: $f:$ln: banned nondeterminism source:" \
         "${text# }" >&2
    fail=1
  done < <(strip_comments "$f" | grep -nE "$re_banned")
done

# ---- rule 2: range-for over unordered containers. Names are harvested
# from unordered_{map,set} declarations (members, locals, params, and
# accessors returning references) across the scanned layers, then every
# range-for whose RANGE expression mentions one of them must carry the
# marker. The awk pass extracts the balanced `for (...)` header and looks
# only at the part after the ` : ` separator, so a name in the loop BODY
# (e.g. `for (k : dirty) SortRow(pairs[k]);`) does not trip it.
# Limitation: a for-header wrapped across source lines is not seen —
# keep range-fors over unordered containers on one line.
names=$(cat $files \
  | sed -n 's/.*unordered_\(map\|set\)<.*>[&*]\{0,1\} *\([A-Za-z_][A-Za-z0-9_]*\).*/\2/p' \
  | sort -u)
if [ -z "$names" ]; then
  echo "determinism_lint: harvested no unordered container names —" \
       "declaration regex has gone stale" >&2
  exit 1
fi
names_joined=$(printf '%s ' $names)
for f in $files; do
  while IFS=: read -r ln name text; do
    [ -z "$ln" ] && continue
    if ! has_marker "$f" "$ln" "$marker_iter"; then
      echo "determinism_lint: $f:$ln: range-for over unordered" \
           "container '$name' without $marker_iter: $text" >&2
      fail=1
    fi
  done < <(strip_comments "$f" | awk -v names="$names_joined" "$awk_rule2")
done

# ---- rule 3: raw float formatting.
for f in $files; do
  while IFS=: read -r ln text; do
    [ -z "$ln" ] && continue
    if ! has_marker "$f" "$ln" "$marker_float"; then
      echo "determinism_lint: $f:$ln: float format without" \
           "$marker_float:" "${text# }" >&2
      fail=1
    fi
  done < <(strip_comments "$f" | grep -nE "$re_float")
done

if [ "$fail" -eq 0 ]; then
  nfiles=$(printf '%s\n' $files | wc -l)
  nnames=$(printf '%s\n' $names | wc -l)
  echo "determinism_lint: OK ($nfiles files, $nnames unordered names" \
       "tracked, 3 rules self-tested)"
fi
exit "$fail"
