// metaprox_server: long-lived multi-model query server over one saved
// offline phase.
//
// Usage:
//   metaprox_server [flags] <facebook|linkedin|citation> <num> <seed>
//                   <prefix> <class>[,<class>...]
//
// Regenerates the dataset, restores the offline phase saved by
// `mgps_cli offline` from <prefix>.{metagraphs,index}, obtains one model
// per listed class through the shared load-or-train-and-save path
// (examples/example_common.h; with --models-dir the artifacts are
// <dir>/<class>.model, so a model trained and saved by `mgps_cli
// --model=...` is loaded as-is instead of retrained), publishes them in a
// server::ModelRegistry (the FIRST class is the default model answering
// v1 `Q <node>` lines), and serves the wire protocol of src/server/wire.h
// on 127.0.0.1 until SIGINT/SIGTERM. Because saved models round-trip
// bit-for-bit and batched results are identical to per-query results, the
// server's responses per model are byte-identical to `mgps_cli --tsv
// --query-file` output over the same prefix and model file — which CI
// asserts for two classes at once.
//
// Flags (util::ParseCount strict parsing):
//   --port=P         listen port; 0 = OS-assigned (default 0)
//   --window-us=W    micro-batch accumulation window in microseconds
//                    (default 1000; 0 = rank immediately)
//   --max-batch=B    max queries ranked per BatchQuery call (default 64)
//   --threads=N      scoring threads for BatchQuery (0 = all cores;
//                    default 1)
//   --shards=S       index pair-table shards (offline option parity with
//                    mgps_cli; irrelevant after LoadOffline)
//   --k=K            default top-k for requests that omit k (default 10)
//   --max-k=K        per-request k ceiling; larger k is refused with an
//                    'E' reply (default 1048576)
//   --max-conns=C    connection cap; beyond it, accepts are refused with
//                    an 'E' reply (default 256)
//   --max-pipeline=N per-connection cap on queries awaiting responses;
//                    excess queries get an immediate E PIPELINE_LIMIT
//                    (default 16384)
//   --max-queue-bytes=B  per-connection response backlog bound; a client
//                    that stops reading while the backlog is past B is
//                    evicted with E SLOW_CONSUMER (default 33554432)
//   --max-qps=Q      per-connection token-bucket rate limit, queries/sec
//                    (fractional OK; 0 = off, the default); excess gets
//                    an immediate E RATE_LIMITED
//   --deadline-us=D  per-query queue deadline in microseconds; a query
//                    still unranked after D is answered E DEADLINE
//                    in its FIFO position (0 = off, the default)
//   --drain-ms=T     Stop()/signal drain budget: how long to keep
//                    flushing already-computed responses before closing
//                    sockets anyway (default 5000)
//   --models-dir=D   load/save per-class model artifacts as D/<class>.model
//                    (absent artifact: train once, save, then serve)
//   --mmap           map a binary aligned-layout index artifact read-only
//                    instead of parsing it: the server starts serving
//                    without materializing the rows, and concurrent server
//                    processes share one set of physical pages (text and
//                    compact artifacts fall back to an eager load)
//   --admin          enable the admin verbs: LOAD/RELOAD/UNLOAD/LIST/STAT
//                    (model hot-swapping) plus APPEND/REFRESH (streaming
//                    graph updates with incremental index refresh) and
//                    SWAPINDEX (hot-swap a precomputed index artifact);
//                    off by default
//   --port-file=F    write the bound port to F (atomically, via rename) —
//                    how scripts find an OS-assigned port
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/index_maintainer.h"
#include "example_common.h"
#include "server/index_registry.h"
#include "server/model_registry.h"
#include "server/query_server.h"
#include "util/parse.h"

using namespace metaprox;  // NOLINT

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  metaprox_server [--port=P] [--window-us=W] [--max-batch=B]\n"
      "                  [--threads=N] [--shards=S] [--k=K] [--max-k=K]\n"
      "                  [--max-conns=C] [--max-pipeline=N]\n"
      "                  [--max-queue-bytes=B] [--max-qps=Q]\n"
      "                  [--deadline-us=D] [--drain-ms=T]\n"
      "                  [--models-dir=D] [--mmap] [--admin] [--port-file=F]\n"
      "                  <facebook|linkedin|citation> <num> <seed>\n"
      "                  <prefix> <class>[,<class>...]\n"
      "the first class is the default model (v1 'Q <node>' lines);\n"
      "run `mgps_cli offline <kind> <num> <seed> <prefix>` first to build\n"
      "the index the server loads.\n");
  return 2;
}

bool WritePortFile(const std::string& path, uint16_t port) {
  // Write-then-rename so a polling script never reads a half-written file.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%u\n", port);
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::vector<std::string> SplitClasses(const std::string& list) {
  std::vector<std::string> classes;
  size_t begin = 0;
  while (begin <= list.size()) {
    const size_t comma = list.find(',', begin);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    classes.push_back(list.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return classes;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions server_options;
  unsigned num_threads = 1;
  size_t num_shards = 0;
  std::string port_file;
  std::string models_dir;
  bool use_mmap = false;
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    char* arg = argv[i];
    unsigned value = 0;
    if (std::strncmp(arg, "--port=", 7) == 0) {
      if (!util::ParseCount(arg + 7, &value) || value > 65535) {
        std::fprintf(stderr, "bad flag: %s (expected --port=0..65535)\n", arg);
        return Usage();
      }
      server_options.port = static_cast<uint16_t>(value);
    } else if (std::strncmp(arg, "--window-us=", 12) == 0) {
      if (!util::ParseCount(arg + 12, &value)) {
        std::fprintf(stderr, "bad flag: %s (expected --window-us=W)\n", arg);
        return Usage();
      }
      server_options.window_micros = value;
    } else if (std::strncmp(arg, "--max-batch=", 12) == 0) {
      if (!util::ParseCount(arg + 12, &value) || value == 0) {
        std::fprintf(stderr, "bad flag: %s (expected --max-batch=B>=1)\n",
                     arg);
        return Usage();
      }
      server_options.max_batch = value;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      if (!util::ParseCount(arg + 10, &value)) {
        std::fprintf(stderr, "bad flag: %s (expected --threads=N)\n", arg);
        return Usage();
      }
      num_threads = value;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      if (!util::ParseCount(arg + 9, &value)) {
        std::fprintf(stderr, "bad flag: %s (expected --shards=S)\n", arg);
        return Usage();
      }
      num_shards = value;
    } else if (std::strncmp(arg, "--k=", 4) == 0) {
      if (!util::ParseCount(arg + 4, &value) || value == 0) {
        std::fprintf(stderr, "bad flag: %s (expected --k=K>=1)\n", arg);
        return Usage();
      }
      server_options.default_k = value;
    } else if (std::strncmp(arg, "--max-k=", 8) == 0) {
      if (!util::ParseCount(arg + 8, &value) || value == 0) {
        std::fprintf(stderr, "bad flag: %s (expected --max-k=K>=1)\n", arg);
        return Usage();
      }
      server_options.max_k = value;
    } else if (std::strncmp(arg, "--max-conns=", 12) == 0) {
      if (!util::ParseCount(arg + 12, &value) || value == 0) {
        std::fprintf(stderr, "bad flag: %s (expected --max-conns=C>=1)\n",
                     arg);
        return Usage();
      }
      server_options.max_connections = value;
    } else if (std::strncmp(arg, "--max-pipeline=", 15) == 0) {
      if (!util::ParseCount(arg + 15, &value) || value == 0) {
        std::fprintf(stderr, "bad flag: %s (expected --max-pipeline=N>=1)\n",
                     arg);
        return Usage();
      }
      server_options.max_pipeline = value;
    } else if (std::strncmp(arg, "--max-queue-bytes=", 18) == 0) {
      if (!util::ParseCount(arg + 18, &value) || value == 0) {
        std::fprintf(stderr,
                     "bad flag: %s (expected --max-queue-bytes=B>=1)\n", arg);
        return Usage();
      }
      server_options.max_response_queue_bytes = value;
    } else if (std::strncmp(arg, "--max-qps=", 10) == 0) {
      char* end = nullptr;
      const double qps = std::strtod(arg + 10, &end);
      if (end == arg + 10 || *end != '\0' || qps < 0.0) {
        std::fprintf(stderr, "bad flag: %s (expected --max-qps=Q>=0)\n", arg);
        return Usage();
      }
      server_options.max_queries_per_second = qps;
    } else if (std::strncmp(arg, "--deadline-us=", 14) == 0) {
      if (!util::ParseCount(arg + 14, &value)) {
        std::fprintf(stderr, "bad flag: %s (expected --deadline-us=D)\n",
                     arg);
        return Usage();
      }
      server_options.request_deadline_micros = value;
    } else if (std::strncmp(arg, "--drain-ms=", 11) == 0) {
      if (!util::ParseCount(arg + 11, &value)) {
        std::fprintf(stderr, "bad flag: %s (expected --drain-ms=T)\n", arg);
        return Usage();
      }
      server_options.drain_timeout_millis = value;
    } else if (std::strncmp(arg, "--models-dir=", 13) == 0) {
      models_dir = arg + 13;
      if (models_dir.empty()) {
        std::fprintf(stderr, "--models-dir needs a path\n");
        return Usage();
      }
    } else if (std::strcmp(arg, "--mmap") == 0) {
      use_mmap = true;
    } else if (std::strcmp(arg, "--admin") == 0) {
      server_options.admin = true;
    } else if (std::strncmp(arg, "--port-file=", 12) == 0) {
      port_file = arg + 12;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 5) return Usage();
  const std::string kind = positional[0];
  const uint32_t num = static_cast<uint32_t>(std::atoi(positional[1]));
  const uint64_t seed = std::strtoull(positional[2], nullptr, 10);
  const std::string prefix = positional[3];
  const std::vector<std::string> classes = SplitClasses(positional[4]);

  // Block the shutdown signals BEFORE any thread exists: every thread the
  // server spawns inherits the mask, so SIGINT/SIGTERM are delivered only
  // to the sigwait below — no async handler, no racy flag.
  sigset_t shutdown_signals;
  sigemptyset(&shutdown_signals);
  sigaddset(&shutdown_signals, SIGINT);
  sigaddset(&shutdown_signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &shutdown_signals, nullptr);

  datagen::Dataset ds = examples::MakeDataset(kind, num, seed);
  std::fprintf(stderr, "dataset %s: %s\n", ds.name.c_str(),
               ds.graph.Summary().c_str());

  SearchEngine engine(ds.graph,
                      examples::MakeEngineOptions(ds, num_threads, num_shards));
  ArtifactOptions artifact_options;
  artifact_options.use_mmap = use_mmap;
  auto status = engine.LoadOffline(prefix, artifact_options);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed (run 'mgps_cli offline' first?): %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "restored %zu metagraphs from %s%s\n",
               engine.metagraphs().size(), prefix.c_str(),
               engine.index().is_mapped() ? " (index mmapped)" : "");

  // One registry slot per class, each obtained through the shared
  // load-or-train-and-save path — saved artifacts make restarts (and
  // every process after the first) training-free.
  server::ModelRegistry registry(engine.index().num_metagraphs());
  for (const std::string& class_name : classes) {
    if (!server::ModelRegistry::IsValidName(class_name)) {
      std::fprintf(stderr, "class name '%s' is not a valid model name\n",
                   class_name.c_str());
      return 1;
    }
    const GroundTruth* gt = ds.FindClass(class_name);
    if (gt == nullptr) {
      std::fprintf(stderr, "no such class: %s (available:",
                   class_name.c_str());
      for (const auto& c : ds.classes) {
        std::fprintf(stderr, " %s", c.class_name().c_str());
      }
      std::fprintf(stderr, ")\n");
      return 1;
    }
    const std::string model_path =
        models_dir.empty() ? "" : models_dir + "/" + class_name + ".model";
    auto model =
        examples::LoadOrTrainClassModel(engine, ds, *gt, seed, model_path);
    if (!model.ok()) {
      std::fprintf(stderr, "model '%s' failed: %s\n", class_name.c_str(),
                   model.status().ToString().c_str());
      return 1;
    }
    auto version = registry.Load(class_name, std::move(*model));
    if (!version.ok()) {
      std::fprintf(stderr, "cannot register model '%s': %s\n",
                   class_name.c_str(), version.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "serving model '%s' (v%llu)\n", class_name.c_str(),
                 static_cast<unsigned long long>(*version));
  }
  server_options.default_model = classes.front();
  server_options.num_threads = num_threads;

  // The registry is the serve-side publication point; the maintainer owns
  // the mutable index lineage behind the APPEND/REFRESH admin verbs (it
  // copies the graph into owned state, so it is built only when admin is
  // on — without it the engine's own snapshot is served as-is and the
  // index admin verbs answer E 22).
  std::unique_ptr<IndexMaintainer> maintainer;
  if (server_options.admin) {
    MaintainerOptions maintainer_options;
    maintainer_options.matcher = engine.options().matcher;
    maintainer_options.embedding_cap = engine.options().embedding_cap;
    maintainer_options.num_threads = num_threads;
    maintainer_options.num_shards = num_shards;
    maintainer = std::make_unique<IndexMaintainer>(engine, maintainer_options);
  }
  server::IndexRegistry index_registry(
      maintainer != nullptr ? maintainer->snapshot() : engine.Snapshot());

  server::QueryServer query_server(&index_registry, &registry, server_options,
                                   maintainer.get());
  status = query_server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf(
      "listening on 127.0.0.1:%u (%zu models, default '%s', window %llu us, "
      "max batch %zu%s)\n",
      query_server.port(), registry.size(),
      server_options.default_model.c_str(),
      static_cast<unsigned long long>(server_options.window_micros),
      server_options.max_batch, server_options.admin ? ", admin on" : "");
  std::fflush(stdout);
  if (!port_file.empty() && !WritePortFile(port_file, query_server.port())) {
    std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
    return 1;
  }

  int signal_number = 0;
  sigwait(&shutdown_signals, &signal_number);
  std::fprintf(stderr, "signal %d: shutting down\n", signal_number);
  query_server.Stop();

  const server::ServerStats stats = query_server.stats();
  std::fprintf(stderr,
               "served %llu queries in %llu batches "
               "(largest %llu, %llu connections, %llu protocol errors)\n",
               static_cast<unsigned long long>(stats.queries),
               static_cast<unsigned long long>(stats.batches),
               static_cast<unsigned long long>(stats.largest_batch),
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.protocol_errors));
  if (stats.slow_consumer_evictions + stats.pipeline_refused +
          stats.rate_limited + stats.deadline_expired >
      0) {
    std::fprintf(
        stderr,
        "limits engaged: %llu slow-consumer evictions, %llu pipeline "
        "refusals, %llu rate-limited, %llu deadline-expired\n",
        static_cast<unsigned long long>(stats.slow_consumer_evictions),
        static_cast<unsigned long long>(stats.pipeline_refused),
        static_cast<unsigned long long>(stats.rate_limited),
        static_cast<unsigned long long>(stats.deadline_expired));
  }
  if (stats.append_nodes + stats.append_edges + stats.index_refreshes +
          stats.index_swaps >
      0) {
    std::fprintf(
        stderr,
        "index maintenance: %llu nodes + %llu edges appended, "
        "%llu refreshes, %llu swaps (serving generation %llu)\n",
        static_cast<unsigned long long>(stats.append_nodes),
        static_cast<unsigned long long>(stats.append_edges),
        static_cast<unsigned long long>(stats.index_refreshes),
        static_cast<unsigned long long>(stats.index_swaps),
        static_cast<unsigned long long>(index_registry.Info().generation));
  }
  for (const server::ModelInfo& info : registry.List()) {
    std::fprintf(stderr, "  model '%s' v%llu: %llu queries served\n",
                 info.name.c_str(),
                 static_cast<unsigned long long>(info.version),
                 static_cast<unsigned long long>(info.serves));
  }
  return 0;
}
