// mgps_cli: end-to-end command-line tool exercising the whole public API,
// including persistence of the offline phase.
//
// Usage:
//   mgps_cli generate <facebook|linkedin|citation> <num> <seed> <graph.txt>
//   mgps_cli offline  <facebook|linkedin|citation> <num> <seed> <prefix>
//   mgps_cli query    <facebook|linkedin|citation> <num> <seed> <prefix>
//                     <class> <query-id> [k]
//
// `generate` writes the typed object graph as text. `offline` regenerates
// the same dataset, runs mine+match, and saves <prefix>.metagraphs and
// <prefix>.index. `query` restores the offline phase, trains the class
// model, and prints the top-k answers for one query node.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/engine.h"
#include "datagen/citation.h"
#include "datagen/facebook.h"
#include "datagen/linkedin.h"
#include "eval/splits.h"
#include "graph/graph_io.h"

using namespace metaprox;  // NOLINT

namespace {

datagen::Dataset MakeDataset(const std::string& kind, uint32_t num,
                             uint64_t seed) {
  if (kind == "facebook") {
    datagen::FacebookConfig cfg;
    cfg.num_users = num;
    return datagen::GenerateFacebook(cfg, seed);
  }
  if (kind == "linkedin") {
    datagen::LinkedInConfig cfg;
    cfg.num_users = num;
    return datagen::GenerateLinkedIn(cfg, seed);
  }
  if (kind == "citation") {
    datagen::CitationConfig cfg;
    cfg.num_papers = num;
    return datagen::GenerateCitation(cfg, seed);
  }
  std::fprintf(stderr, "unknown dataset kind: %s\n", kind.c_str());
  std::exit(2);
}

EngineOptions MakeOptions(const datagen::Dataset& ds) {
  EngineOptions options;
  options.miner.anchor_type = ds.user_type;
  options.miner.min_support = 4;
  options.miner.max_nodes = 4;
  return options;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  mgps_cli generate <kind> <num> <seed> <graph.txt>\n"
      "  mgps_cli offline  <kind> <num> <seed> <prefix>\n"
      "  mgps_cli query    <kind> <num> <seed> <prefix> <class> <id> [k]\n"
      "kinds: facebook linkedin citation\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 6) return Usage();
  const std::string command = argv[1];
  const std::string kind = argv[2];
  const uint32_t num = static_cast<uint32_t>(std::atoi(argv[3]));
  const uint64_t seed = std::strtoull(argv[4], nullptr, 10);
  const std::string path = argv[5];

  datagen::Dataset ds = MakeDataset(kind, num, seed);
  std::printf("dataset %s: %s\n", ds.name.c_str(),
              ds.graph.Summary().c_str());

  if (command == "generate") {
    auto status = WriteGraphToFile(ds.graph, path);
    if (!status.ok()) {
      std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote graph to %s\n", path.c_str());
    return 0;
  }

  if (command == "offline") {
    SearchEngine engine(ds.graph, MakeOptions(ds));
    engine.Mine();
    engine.MatchAll();
    std::printf("mined %zu metagraphs (%.1fs), matched (%.1fs)\n",
                engine.metagraphs().size(), engine.timings().mine_seconds,
                engine.timings().match_seconds);
    auto status = engine.SaveOffline(path);
    if (!status.ok()) {
      std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved offline phase to %s.{metagraphs,index}\n",
                path.c_str());
    return 0;
  }

  if (command == "query") {
    if (argc < 8) return Usage();
    const std::string class_name = argv[6];
    const NodeId query = static_cast<NodeId>(std::atoi(argv[7]));
    const size_t k = argc > 8 ? static_cast<size_t>(std::atoi(argv[8])) : 10;

    const GroundTruth* gt = ds.FindClass(class_name);
    if (gt == nullptr) {
      std::fprintf(stderr, "no such class: %s (available:", class_name.c_str());
      for (const auto& c : ds.classes) {
        std::fprintf(stderr, " %s", c.class_name().c_str());
      }
      std::fprintf(stderr, ")\n");
      return 1;
    }

    SearchEngine engine(ds.graph, MakeOptions(ds));
    auto status = engine.LoadOffline(path);
    if (!status.ok()) {
      std::fprintf(stderr, "load failed (run 'offline' first?): %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("restored %zu metagraphs from %s\n",
                engine.metagraphs().size(), path.c_str());

    util::Rng rng(seed + 1);
    QuerySplit split = SplitQueries(*gt, 0.2, rng);
    auto pool = ds.graph.NodesOfType(ds.user_type);
    std::vector<NodeId> pool_vec(pool.begin(), pool.end());
    auto examples = SampleExamples(*gt, split.train, pool_vec, 300, rng);
    TrainOptions train;
    train.max_iterations = 300;
    MgpModel model = engine.Train(examples, train);

    std::printf("top-%zu '%s' results for node #%u:\n", k,
                class_name.c_str(), query);
    for (const auto& [node, pi] : engine.Query(model, query, k)) {
      std::printf("  #%-6u pi = %.4f%s\n", node, pi,
                  gt->IsPositive(query, node) ? "   [ground truth]" : "");
    }
    return 0;
  }
  return Usage();
}
