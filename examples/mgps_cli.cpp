// mgps_cli: end-to-end command-line tool exercising the whole public API,
// including persistence of the offline phase.
//
// Usage:
//   mgps_cli [--threads=N] [--shards=S] generate <facebook|linkedin|citation>
//                                   <num> <seed> <graph.txt>
//   mgps_cli [--threads=N] [--shards=S] offline  <facebook|linkedin|citation>
//                                   <num> <seed> <prefix>
//   mgps_cli [--threads=N] [--shards=S] query    <facebook|linkedin|citation>
//                                   <num> <seed> <prefix> <class>
//                                   <query-id> [k]
//   mgps_cli [--threads=N] --query-file=F [--tsv] query
//                                   <facebook|linkedin|citation>
//                                   <num> <seed> <prefix> <class> [k]
//
// `generate` writes the typed object graph as text. `offline` regenerates
// the same dataset, runs mine+match (over N offline worker threads; 0 = all
// cores, default 1; the index's pair-slot table is split into S shards,
// 0 = auto), and saves <prefix>.metagraphs and <prefix>.index. `query`
// restores the offline phase, obtains the class model, and prints the
// top-k answers for one query node — or, with --query-file, ranks every
// node id listed in F (whitespace-separated) in one
// SearchEngine::BatchQuery call (batch results are identical to per-id
// queries; see core/query_batch.h). The saved index is byte-identical for
// every --threads and --shards value.
//
// Models are first-class artifacts: --model=PATH loads the saved model at
// PATH if present and otherwise trains once and saves it there (the
// shared load-or-train-and-save path of examples/example_common.h —
// metaprox_server consumes the same files); --save-model=PATH forces a
// retrain and (over)writes PATH. Saved weights round-trip bit-for-bit
// (%.17g), so a load serves exactly the bytes a fresh train would.
//
// --tsv switches result output to the machine-readable form
// "query<TAB>rank<TAB>node<TAB>score" (scores via server::FormatScore,
// %.17g — exact double round-trip) with all narration on stderr. The CI
// server smoke byte-diffs this against mgps_client --tsv output from a
// running metaprox_server over the same saved index.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "example_common.h"
#include "graph/graph_io.h"
#include "server/wire.h"  // server::FormatScore: shared exact score format
#include "util/parse.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"  // util::ResolveNumThreads

using namespace metaprox;  // NOLINT

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  mgps_cli [flags] generate <kind> <num> <seed> <graph.txt>\n"
      "  mgps_cli [flags] offline  <kind> <num> <seed> <prefix>\n"
      "  mgps_cli [flags] query    <kind> <num> <seed> <prefix>\n"
      "                            <class> <id> [k]\n"
      "  mgps_cli [flags] --query-file=F query <kind> <num> <seed>\n"
      "                            <prefix> <class> [k]\n"
      "kinds: facebook linkedin citation\n"
      "flags:\n"
      "  --threads=N      offline worker threads (mining + matching) and\n"
      "                   batch-query scoring threads (0 = all cores;\n"
      "                   default 1)\n"
      "  --shards=S       index pair-table shards (0 = auto; default 0);\n"
      "                   never changes the saved index bytes\n"
      "  --query-file=F   batch mode for 'query': rank every node id in F\n"
      "                   (whitespace-separated) in one batched call;\n"
      "                   results are identical to per-id queries\n"
      "  --model=PATH     load the class model from PATH; if absent, train\n"
      "                   once and save it there (metaprox_server loads\n"
      "                   the same artifacts)\n"
      "  --save-model=P   force retrain and (over)write the model to P\n"
      "  --binary[=L]     write artifacts (index + saved models) in the v2\n"
      "                   binary container instead of text; L picks the\n"
      "                   index layout: 'compact' (default; smallest) or\n"
      "                   'aligned' (mmap-able). Loads autodetect either\n"
      "                   format, so this only matters when writing\n"
      "  --mmap           'query': map a binary aligned index instead of\n"
      "                   parsing it (text/compact artifacts load eagerly)\n"
      "  --tsv            machine-readable results on stdout\n"
      "                   (query<TAB>rank<TAB>node<TAB>score, %%.17g\n"
      "                   scores), narration on stderr; byte-comparable\n"
      "                   with mgps_client --tsv\n");
  return 2;
}

// One ranked entry in --tsv form (server::FormatTsvRow is the single
// definition mgps_client shares).
void PrintTsvRow(NodeId query, size_t rank, NodeId node, double score) {
  const std::string row =
      server::FormatTsvRow(query, rank, node, server::FormatScore(score));
  std::fputs(row.c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip flags (anywhere on the line) before the positional arguments.
  unsigned num_threads = 1;
  size_t num_shards = 0;       // 0 = auto
  std::string query_file;      // non-empty = batch query mode
  std::string model_file;      // non-empty = load-or-train-and-save here
  std::string save_model;      // non-empty = force retrain and save here
  bool tsv = false;            // machine-readable results on stdout
  bool binary = false;         // write v2 binary artifacts
  BinaryLayout layout = BinaryLayout::kCompact;
  bool use_mmap = false;       // map binary index artifacts on load
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tsv") == 0) {
      tsv = true;
    } else if (std::strcmp(argv[i], "--mmap") == 0) {
      use_mmap = true;
    } else if (std::strcmp(argv[i], "--binary") == 0 ||
               std::strcmp(argv[i], "--binary=compact") == 0) {
      binary = true;
      layout = BinaryLayout::kCompact;
    } else if (std::strcmp(argv[i], "--binary=aligned") == 0) {
      binary = true;
      layout = BinaryLayout::kAligned;
    } else if (std::strncmp(argv[i], "--binary=", 9) == 0) {
      std::fprintf(stderr, "--binary layout must be compact or aligned\n");
      return Usage();
    } else if (std::strncmp(argv[i], "--query-file=", 13) == 0) {
      query_file = argv[i] + 13;
      if (query_file.empty()) {
        std::fprintf(stderr, "--query-file needs a path\n");
        return Usage();
      }
    } else if (std::strncmp(argv[i], "--model=", 8) == 0) {
      model_file = argv[i] + 8;
      if (model_file.empty()) {
        std::fprintf(stderr, "--model needs a path\n");
        return Usage();
      }
    } else if (std::strncmp(argv[i], "--save-model=", 13) == 0) {
      save_model = argv[i] + 13;
      if (save_model.empty()) {
        std::fprintf(stderr, "--save-model needs a path\n");
        return Usage();
      }
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      unsigned value = 0;
      if (!util::ParseCount(argv[i] + 10, &value)) {
        std::fprintf(stderr,
                     "--threads must be a non-negative integer "
                     "(0 = all cores)\n");
        return Usage();
      }
      num_threads = value;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      unsigned value = 0;
      if (!util::ParseCount(argv[i] + 9, &value)) {
        std::fprintf(stderr,
                     "--shards must be a non-negative integer (0 = auto)\n");
        return Usage();
      }
      num_shards = value;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 5) return Usage();
  const std::string command = positional[0];
  const std::string kind = positional[1];
  const uint32_t num = static_cast<uint32_t>(std::atoi(positional[2]));
  const uint64_t seed = std::strtoull(positional[3], nullptr, 10);
  const std::string path = positional[4];

  datagen::Dataset ds = examples::MakeDataset(kind, num, seed);
  // In --tsv mode stdout carries only result rows (so it byte-diffs
  // against mgps_client --tsv); narration moves to stderr.
  std::FILE* info = tsv ? stderr : stdout;
  std::fprintf(info, "dataset %s: %s\n", ds.name.c_str(),
               ds.graph.Summary().c_str());

  if (command == "generate") {
    auto status = WriteGraphToFile(ds.graph, path);
    if (!status.ok()) {
      std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote graph to %s\n", path.c_str());
    return 0;
  }

  if (command == "offline") {
    SearchEngine engine(
        ds.graph, examples::MakeEngineOptions(ds, num_threads, num_shards));
    engine.Mine();
    engine.MatchAll();
    std::printf("mined %zu metagraphs (%.1fs), matched (%.1fs, %u threads)\n",
                engine.metagraphs().size(), engine.timings().mine_seconds,
                engine.timings().match_seconds,
                num_threads == 0 ? static_cast<unsigned>(
                                       util::ResolveNumThreads(0))
                                 : num_threads);
    ArtifactOptions artifact_options;
    artifact_options.format = binary ? util::ArtifactFormat::kBinary
                                     : util::ArtifactFormat::kText;
    artifact_options.layout = layout;
    auto status = engine.SaveOffline(path, artifact_options);
    if (!status.ok()) {
      std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved offline phase to %s.{metagraphs,index}%s\n",
                path.c_str(),
                !binary ? ""
                : layout == BinaryLayout::kAligned
                    ? " (binary, aligned layout)"
                    : " (binary, compact layout)");
    return 0;
  }

  if (command == "query") {
    const bool batch_mode = !query_file.empty();
    if (positional.size() < (batch_mode ? 6u : 7u)) return Usage();
    const std::string class_name = positional[5];
    const size_t k_position = batch_mode ? 6 : 7;
    const size_t k = positional.size() > k_position
                         ? static_cast<size_t>(std::atoi(positional[k_position]))
                         : 10;

    std::vector<NodeId> batch;
    if (batch_mode) {
      std::ifstream in(query_file);
      if (!in) {
        std::fprintf(stderr, "cannot read query file %s\n",
                     query_file.c_str());
        return 1;
      }
      uint64_t id = 0;
      while (in >> id) {
        if (id >= ds.graph.num_nodes()) {
          std::fprintf(stderr, "query id %llu out of range (graph has %zu)\n",
                       static_cast<unsigned long long>(id),
                       ds.graph.num_nodes());
          return 1;
        }
        batch.push_back(static_cast<NodeId>(id));
      }
      // A malformed token stops extraction before EOF; silently ranking
      // only the prefix of the batch would look like success.
      if (!in.eof()) {
        std::fprintf(stderr, "query file %s: malformed node id after %zu ids\n",
                     query_file.c_str(), batch.size());
        return 1;
      }
      if (batch.empty()) {
        std::fprintf(stderr, "query file %s holds no node ids\n",
                     query_file.c_str());
        return 1;
      }
    }
    const NodeId query =
        batch_mode ? kInvalidNode
                   : static_cast<NodeId>(std::atoi(positional[6]));

    const GroundTruth* gt = ds.FindClass(class_name);
    if (gt == nullptr) {
      std::fprintf(stderr, "no such class: %s (available:", class_name.c_str());
      for (const auto& c : ds.classes) {
        std::fprintf(stderr, " %s", c.class_name().c_str());
      }
      std::fprintf(stderr, ")\n");
      return 1;
    }

    SearchEngine engine(
        ds.graph, examples::MakeEngineOptions(ds, num_threads, num_shards));
    ArtifactOptions artifact_options;
    artifact_options.use_mmap = use_mmap;
    auto status = engine.LoadOffline(path, artifact_options);
    if (!status.ok()) {
      std::fprintf(stderr, "load failed (run 'offline' first?): %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(info, "restored %zu metagraphs from %s%s\n",
                 engine.metagraphs().size(), path.c_str(),
                 engine.index().is_mapped() ? " (index mmapped)" : "");

    MgpModel model;
    if (!save_model.empty()) {
      // Forced retrain: --save-model refreshes the artifact even when a
      // stale one exists (e.g. after a new offline phase).
      model = examples::TrainClassModel(engine, ds, *gt, seed);
      auto saved = SaveModel(model, save_model,
                             binary ? util::ArtifactFormat::kBinary
                                    : util::ArtifactFormat::kText);
      if (!saved.ok()) {
        std::fprintf(stderr, "save model failed: %s\n",
                     saved.ToString().c_str());
        return 1;
      }
      std::fprintf(info, "trained '%s' model and saved it to %s\n",
                   class_name.c_str(), save_model.c_str());
    } else {
      auto obtained = examples::LoadOrTrainClassModel(
          engine, ds, *gt, seed, model_file,
          binary ? util::ArtifactFormat::kBinary
                 : util::ArtifactFormat::kText);
      if (!obtained.ok()) {
        std::fprintf(stderr, "model failed: %s\n",
                     obtained.status().ToString().c_str());
        return 1;
      }
      model = std::move(*obtained);
    }

    if (batch_mode) {
      util::Stopwatch timer;
      auto results = engine.BatchQuery(model, batch, k);
      const double seconds = timer.ElapsedSeconds();
      for (size_t i = 0; i < batch.size(); ++i) {
        if (tsv) {
          for (size_t r = 0; r < results[i].size(); ++r) {
            PrintTsvRow(batch[i], r + 1, results[i][r].first,
                        results[i][r].second);
          }
          continue;
        }
        std::printf("top-%zu '%s' results for node #%u:\n", k,
                    class_name.c_str(), batch[i]);
        for (const auto& [node, pi] : results[i]) {
          std::printf("  #%-6u pi = %.4f%s\n", node, pi,
                      gt->IsPositive(batch[i], node) ? "   [ground truth]"
                                                     : "");
        }
      }
      std::fprintf(info, "batched %zu queries in %.3fs (%.0f queries/s)\n",
                   batch.size(), seconds,
                   static_cast<double>(batch.size()) / seconds);
      return 0;
    }

    auto results = engine.Query(model, query, k);
    if (tsv) {
      for (size_t r = 0; r < results.size(); ++r) {
        PrintTsvRow(query, r + 1, results[r].first, results[r].second);
      }
      return 0;
    }
    std::printf("top-%zu '%s' results for node #%u:\n", k,
                class_name.c_str(), query);
    for (const auto& [node, pi] : results) {
      std::printf("  #%-6u pi = %.4f%s\n", node, pi,
                  gt->IsPositive(query, node) ? "   [ground truth]" : "");
    }
    return 0;
  }
  return Usage();
}
