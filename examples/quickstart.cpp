// Quickstart: the whole metaprox pipeline on the paper's Fig. 1 toy graph.
//
//   1. build a typed object graph,
//   2. mine its metagraphs,
//   3. match them and build the vector index (offline phase),
//   4. learn a semantic class of proximity from a few example triplets,
//   5. answer queries online.
//
// Run: ./quickstart
#include <cstdio>

#include "core/engine.h"
#include "graph/graph_builder.h"

using namespace metaprox;  // NOLINT

int main() {
  // ---- 1. The toy social graph of Fig. 1 -------------------------------
  GraphBuilder b;
  NodeId alice = b.AddNode("user", "Alice");
  NodeId bob = b.AddNode("user", "Bob");
  NodeId kate = b.AddNode("user", "Kate");
  NodeId jay = b.AddNode("user", "Jay");
  NodeId tom = b.AddNode("user", "Tom");

  NodeId clinton = b.AddNode("surname", "Clinton");
  NodeId green_st = b.AddNode("address", "123 Green St");
  NodeId white_st = b.AddNode("address", "456 White St");
  NodeId college_a = b.AddNode("school", "College A");
  NodeId college_b = b.AddNode("school", "College B");
  NodeId economics = b.AddNode("major", "Economics");
  NodeId physics = b.AddNode("major", "Physics");
  NodeId company_x = b.AddNode("employer", "Company X");
  NodeId music = b.AddNode("hobby", "Music");

  b.AddEdge(alice, clinton);
  b.AddEdge(bob, clinton);
  b.AddEdge(alice, green_st);
  b.AddEdge(bob, green_st);
  b.AddEdge(kate, white_st);
  b.AddEdge(jay, white_st);
  b.AddEdge(kate, college_a);
  b.AddEdge(jay, college_a);
  b.AddEdge(kate, economics);
  b.AddEdge(jay, economics);
  b.AddEdge(kate, company_x);
  b.AddEdge(alice, company_x);
  b.AddEdge(kate, music);
  b.AddEdge(alice, music);
  b.AddEdge(bob, college_b);
  b.AddEdge(tom, college_b);
  b.AddEdge(bob, physics);
  b.AddEdge(tom, physics);

  Graph g = b.Build();
  std::printf("graph: %s\n", g.Summary().c_str());

  // ---- 2+3. Offline phase: mine, match, index --------------------------
  EngineOptions options;
  options.miner.anchor_type = g.type_registry().Find("user");
  options.miner.min_support = 1;  // the toy graph is tiny
  options.miner.max_nodes = 4;
  options.transform = CountTransform::kRaw;
  SearchEngine engine(g, options);
  engine.Mine();
  engine.MatchAll();
  std::printf("mined %zu symmetric metagraphs with >=2 user nodes\n",
              engine.metagraphs().size());

  // ---- 4. Learn the "classmate" class from example triplets ------------
  // (q, x, y): x should rank above y for query q.
  std::vector<Example> examples = {
      {kate, jay, alice}, {kate, jay, bob}, {kate, jay, tom},
      {bob, tom, alice},  {bob, tom, kate}, {bob, tom, jay},
  };
  TrainOptions train;
  train.max_iterations = 600;
  MgpModel classmate = engine.Train(examples, train);

  // Show the learned characteristic metagraphs.
  std::printf("\nlearned classmate weights (top 5):\n");
  std::vector<std::pair<double, uint32_t>> ranked;
  for (uint32_t i = 0; i < classmate.weights.size(); ++i) {
    ranked.emplace_back(classmate.weights[i], i);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    std::printf("  %.3f  %s\n", ranked[i].first,
                engine.metagraphs()[ranked[i].second]
                    .graph.ToString(g.type_registry())
                    .c_str());
  }

  // ---- 5. Online phase: who are Kate's classmates? ----------------------
  std::printf("\nclassmate search for Kate:\n");
  for (const auto& [node, score] : engine.Query(classmate, kate, 3)) {
    std::printf("  %-6s pi = %.3f\n", g.NameOf(node).c_str(), score);
  }
  std::printf("classmate search for Bob:\n");
  for (const auto& [node, score] : engine.Query(classmate, bob, 3)) {
    std::printf("  %-6s pi = %.3f\n", g.NameOf(node).c_str(), score);
  }
  std::printf("\n(expected, per Fig. 1(b): Jay for Kate, Tom for Bob)\n");
  return 0;
}
