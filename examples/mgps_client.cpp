// mgps_client: load-generating client for metaprox_server.
//
// Usage:
//   mgps_client [--host=H] --port=P [--k=K] [--connections=C] [--tsv]
//               [--model=NAME] --query-file=F
//   mgps_client [--host=H] --port=P --admin=CMD
//
// Reads whitespace-separated node ids from F, splits them into C
// contiguous slices served by C concurrent connections (one thread each,
// fully pipelined: every query is sent before the first response is
// read), then prints the results IN INPUT ORDER:
//   --tsv:    query<TAB>rank<TAB>node<TAB>score — score text echoed
//             byte-for-byte from the wire, so the output byte-diffs
//             against `mgps_cli --tsv --query-file=F` over the same index
//             and model (the CI smoke check)
//   default:  human-readable blocks, throughput summary on stderr
//
// --model=NAME issues protocol-v2 `Q <model> <node> [k]` lines against
// the named registry model; without it the queries are v1 lines answered
// by the server's default model. --admin=CMD sends one raw admin line
// (e.g. "RELOAD family /path/family.model" or "LIST") and prints the
// reply — how scripts drive hot-swaps.
//
// Exits non-zero on any connect/protocol error or if any response answers
// a different node than asked.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "util/parse.h"
#include "util/stopwatch.h"

using namespace metaprox;  // NOLINT

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  mgps_client [--host=H] --port=P [--k=K] [--connections=C]\n"
      "              [--tsv] [--model=NAME] --query-file=F\n"
      "  mgps_client [--host=H] --port=P --admin=CMD\n"
      "flags:\n"
      "  --host=H         server address, numeric IPv4 (default 127.0.0.1)\n"
      "  --port=P         server port (required)\n"
      "  --k=K            top-k per query (0 = server default; default 0)\n"
      "  --connections=C  concurrent connections, one thread each\n"
      "                   (default 1)\n"
      "  --tsv            machine-readable output, byte-comparable with\n"
      "                   mgps_cli --tsv\n"
      "  --model=NAME     query the named registry model (protocol v2);\n"
      "                   default: the server's default model (v1 lines)\n"
      "  --admin=CMD      send one admin line (LOAD/RELOAD/UNLOAD/LIST/\n"
      "                   STAT/APPEND/REFRESH/SWAPINDEX, also STATS),\n"
      "                   print the reply, exit; a wire 'E' reply prints\n"
      "                   its code/message on stderr and exits 1\n"
      "  --query-file=F   whitespace-separated node ids to rank\n");
  return 2;
}

struct SliceResult {
  std::vector<server::RankResponse> responses;  // aligned with the slice
  std::string error;                            // non-empty = failed
};

// One connection's worth of work: pipeline the whole slice, then drain.
// Responses arrive in send order (per-connection FIFO), so responses[i]
// answers queries[begin + i]. A non-empty `model` switches to v2 lines.
void RunSlice(const std::string& host, uint16_t port, size_t k,
              const std::string& model, const std::vector<NodeId>& queries,
              size_t begin, size_t end, SliceResult* out) {
  auto client = server::QueryClient::Connect(host, port);
  if (!client.ok()) {
    out->error = "connect: " + client.status().ToString();
    return;
  }
  for (size_t i = begin; i < end; ++i) {
    auto status = model.empty() ? client->SendQuery(queries[i], k)
                                : client->SendQuery(model, queries[i], k);
    if (!status.ok()) {
      out->error = "send: " + status.ToString();
      return;
    }
  }
  out->responses.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    auto response = client->ReceiveResponse();
    if (!response.ok()) {
      out->error = "receive: " + response.status().ToString();
      return;
    }
    if (response->query != queries[i]) {
      out->error = "response order violated: asked " +
                   std::to_string(queries[i]) + ", got " +
                   std::to_string(response->query);
      return;
    }
    out->responses.push_back(std::move(*response));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  unsigned port = 0;
  unsigned k = 0;            // 0 = server default
  unsigned connections = 1;
  bool tsv = false;
  std::string query_file;
  std::string model;         // non-empty = protocol v2 queries
  std::string admin_cmd;     // non-empty = one admin round-trip, then exit
  for (int i = 1; i < argc; ++i) {
    char* arg = argv[i];
    if (std::strncmp(arg, "--host=", 7) == 0) {
      host = arg + 7;
    } else if (std::strncmp(arg, "--model=", 8) == 0) {
      model = arg + 8;
      if (!server::IsValidModelName(model)) {
        std::fprintf(stderr, "bad flag: %s (not a valid model name)\n", arg);
        return Usage();
      }
    } else if (std::strncmp(arg, "--admin=", 8) == 0) {
      admin_cmd = arg + 8;
      if (admin_cmd.empty()) {
        std::fprintf(stderr, "--admin needs a command\n");
        return Usage();
      }
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      if (!util::ParseCount(arg + 7, &port) || port == 0 || port > 65535) {
        std::fprintf(stderr, "bad flag: %s (expected --port=1..65535)\n", arg);
        return Usage();
      }
    } else if (std::strncmp(arg, "--k=", 4) == 0) {
      if (!util::ParseCount(arg + 4, &k)) {
        std::fprintf(stderr, "bad flag: %s (expected --k=K)\n", arg);
        return Usage();
      }
    } else if (std::strncmp(arg, "--connections=", 14) == 0) {
      if (!util::ParseCount(arg + 14, &connections) || connections == 0) {
        std::fprintf(stderr, "bad flag: %s (expected --connections=C>=1)\n",
                     arg);
        return Usage();
      }
    } else if (std::strcmp(arg, "--tsv") == 0) {
      tsv = true;
    } else if (std::strncmp(arg, "--query-file=", 13) == 0) {
      query_file = arg + 13;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage();
    }
  }
  if (port == 0) return Usage();

  // Admin mode: one connection, one command, one reply line.
  if (!admin_cmd.empty()) {
    auto client = server::QueryClient::Connect(host,
                                               static_cast<uint16_t>(port));
    if (!client.ok()) {
      std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
      return 1;
    }
    auto reply = client->Admin(admin_cmd);
    if (!reply.ok()) {
      std::fprintf(stderr, "admin failed: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
    if (!reply->ok()) {
      // A structured wire refusal: scripts branch on the exit code, the
      // stderr line carries the stable E code for log grepping.
      std::fprintf(stderr, "admin refused (E %d): %s\n", reply->error_code,
                   reply->message.c_str());
      return 1;
    }
    std::printf("%s\n", reply->raw.c_str());
    return 0;
  }

  if (query_file.empty()) return Usage();

  std::vector<NodeId> queries;
  {
    std::ifstream in(query_file);
    if (!in) {
      std::fprintf(stderr, "cannot read query file %s\n", query_file.c_str());
      return 1;
    }
    uint64_t id = 0;
    while (in >> id) {
      // The wire carries 32-bit node ids; silently wrapping a larger value
      // would query the wrong node instead of failing.
      if (id > std::numeric_limits<NodeId>::max()) {
        std::fprintf(stderr, "query id %llu does not fit a node id\n",
                     static_cast<unsigned long long>(id));
        return 1;
      }
      queries.push_back(static_cast<NodeId>(id));
    }
    if (!in.eof()) {
      std::fprintf(stderr, "query file %s: malformed node id after %zu ids\n",
                   query_file.c_str(), queries.size());
      return 1;
    }
    if (queries.empty()) {
      std::fprintf(stderr, "query file %s holds no node ids\n",
                   query_file.c_str());
      return 1;
    }
  }

  const size_t num_slices =
      std::min<size_t>(connections, queries.size());
  std::vector<SliceResult> slices(num_slices);
  std::vector<std::thread> threads;
  threads.reserve(num_slices);
  util::Stopwatch timer;
  for (size_t s = 0; s < num_slices; ++s) {
    const size_t begin = queries.size() * s / num_slices;
    const size_t end = queries.size() * (s + 1) / num_slices;
    threads.emplace_back(RunSlice, host, static_cast<uint16_t>(port), k,
                         std::cref(model), std::cref(queries), begin, end,
                         &slices[s]);
  }
  for (std::thread& thread : threads) thread.join();
  const double seconds = timer.ElapsedSeconds();

  for (size_t s = 0; s < num_slices; ++s) {
    if (!slices[s].error.empty()) {
      std::fprintf(stderr, "connection %zu failed: %s\n", s,
                   slices[s].error.c_str());
      return 1;
    }
  }

  // Print in input order: slices are contiguous, so walking them in order
  // reconstructs the query-file order whatever the arrival interleaving.
  for (const SliceResult& slice : slices) {
    for (const server::RankResponse& response : slice.responses) {
      if (tsv) {
        for (size_t r = 0; r < response.entries.size(); ++r) {
          // Echo the wire's score text: the server's bytes ARE the output.
          const std::string row =
              server::FormatTsvRow(response.query, r + 1,
                                   response.entries[r].node,
                                   response.entries[r].score_text);
          std::fputs(row.c_str(), stdout);
        }
        continue;
      }
      std::printf("top results for node #%u:\n", response.query);
      for (const auto& entry : response.entries) {
        std::printf("  #%-6u pi = %s\n", entry.node,
                    entry.score_text.c_str());
      }
    }
  }
  std::fprintf(stderr, "%zu queries over %zu connections in %.3fs (%.0f q/s)\n",
               queries.size(), num_slices, seconds,
               static_cast<double>(queries.size()) / seconds);
  return 0;
}
