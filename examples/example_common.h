// Helpers shared by the example binaries (mgps_cli, metaprox_server).
//
// Header-only on purpose: every examples/*.cpp is auto-globbed into its
// own binary by CMake, so a shared .cc would need build-system surgery.
//
// The dataset construction, engine options and per-class model
// training/persistence here are THE definitions of "the same index" and
// "the same model" that the server smoke check relies on: mgps_cli
// (offline + query) and metaprox_server both call these with the same
// (kind, num, seed, class) arguments — and share saved model artifacts
// through LoadOrTrainClassModel — so their models are identical and, by
// the batched determinism contract, their result bytes are too.
#ifndef METAPROX_EXAMPLES_EXAMPLE_COMMON_H_
#define METAPROX_EXAMPLES_EXAMPLE_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/citation.h"
#include "datagen/facebook.h"
#include "datagen/linkedin.h"
#include "eval/splits.h"
#include "learning/model_io.h"
#include "util/rng.h"

namespace metaprox::examples {

/// Regenerates one of the synthetic benchmark datasets. Exits(2) on an
/// unknown kind (CLI usage error).
inline datagen::Dataset MakeDataset(const std::string& kind, uint32_t num,
                                    uint64_t seed) {
  if (kind == "facebook") {
    datagen::FacebookConfig cfg;
    cfg.num_users = num;
    return datagen::GenerateFacebook(cfg, seed);
  }
  if (kind == "linkedin") {
    datagen::LinkedInConfig cfg;
    cfg.num_users = num;
    return datagen::GenerateLinkedIn(cfg, seed);
  }
  if (kind == "citation") {
    datagen::CitationConfig cfg;
    cfg.num_papers = num;
    return datagen::GenerateCitation(cfg, seed);
  }
  std::fprintf(stderr, "unknown dataset kind: %s\n", kind.c_str());
  std::exit(2);
}

/// The engine options every example binary uses for these datasets.
inline EngineOptions MakeEngineOptions(const datagen::Dataset& ds,
                                       unsigned num_threads,
                                       size_t num_shards) {
  EngineOptions options;
  options.miner.anchor_type = ds.user_type;
  options.miner.min_support = 4;
  options.miner.max_nodes = 4;
  options.num_threads = num_threads;
  options.num_shards = num_shards;
  return options;
}

/// Trains the per-class model exactly the way `mgps_cli query` always has:
/// split seeded from (dataset seed + 1), 20% test split, 300 sampled
/// examples, 300 training iterations. Deterministic in (dataset, class),
/// which is what lets a separately started server reproduce the CLI's
/// model bit for bit.
inline MgpModel TrainClassModel(SearchEngine& engine,
                                const datagen::Dataset& ds,
                                const GroundTruth& gt, uint64_t seed) {
  util::Rng rng(seed + 1);
  QuerySplit split = SplitQueries(gt, 0.2, rng);
  auto pool = ds.graph.NodesOfType(ds.user_type);
  std::vector<NodeId> pool_vec(pool.begin(), pool.end());
  auto examples = SampleExamples(gt, split.train, pool_vec, 300, rng);
  TrainOptions train;
  train.max_iterations = 300;
  return engine.Train(examples, train);
}

/// THE load-or-train-and-save path shared by mgps_cli and metaprox_server:
/// if `model_path` holds a saved model, load it (weight count checked
/// against the engine's index); if the file is absent, train exactly as
/// TrainClassModel always has and persist the result there. With an empty
/// `model_path`, plain training (no persistence).
///
/// Because SaveModel/LoadModel round-trip weights bit-for-bit (%.17g), a
/// CLI run that trains-and-saves and a server that later loads the
/// artifact hold the SAME model — the cross-binary byte-identity the
/// smoke checks rely on, now without retraining in every process.
inline util::StatusOr<MgpModel> LoadOrTrainClassModel(
    SearchEngine& engine, const datagen::Dataset& ds, const GroundTruth& gt,
    uint64_t seed, const std::string& model_path,
    util::ArtifactFormat save_format = util::ArtifactFormat::kText) {
  if (!model_path.empty()) {
    // Loads autodetect the on-disk format; save_format only shapes what a
    // train-and-save writes.
    auto loaded = LoadModel(model_path, engine.index().num_metagraphs());
    if (loaded.ok()) {
      std::fprintf(stderr, "loaded '%s' model from %s\n",
                   gt.class_name().c_str(), model_path.c_str());
      return loaded;
    }
    // NotFound = "artifact not built yet" -> train below. Anything else
    // (corrupt file, wrong index) must surface, not silently retrain.
    if (loaded.status().code() != util::StatusCode::kNotFound) {
      return loaded.status();
    }
  }
  MgpModel model = TrainClassModel(engine, ds, gt, seed);
  if (!model_path.empty()) {
    auto saved = SaveModel(model, model_path, save_format);
    if (!saved.ok()) return saved;
    std::fprintf(stderr, "trained '%s' model and saved it to %s\n",
                 gt.class_name().c_str(), model_path.c_str());
  }
  return model;
}

}  // namespace metaprox::examples

#endif  // METAPROX_EXAMPLES_EXAMPLE_COMMON_H_
