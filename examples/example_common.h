// Helpers shared by the example binaries (mgps_cli, metaprox_server).
//
// Header-only on purpose: every examples/*.cpp is auto-globbed into its
// own binary by CMake, so a shared .cc would need build-system surgery.
//
// The dataset construction, engine options and per-class model training
// here are THE definitions of "the same index" and "the same model" that
// the server smoke check relies on: mgps_cli (offline + query) and
// metaprox_server both call these with the same (kind, num, seed, class)
// arguments, so their models are identical and — by the batched
// determinism contract — their result bytes are too.
#ifndef METAPROX_EXAMPLES_EXAMPLE_COMMON_H_
#define METAPROX_EXAMPLES_EXAMPLE_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/citation.h"
#include "datagen/facebook.h"
#include "datagen/linkedin.h"
#include "eval/splits.h"
#include "util/rng.h"

namespace metaprox::examples {

/// Regenerates one of the synthetic benchmark datasets. Exits(2) on an
/// unknown kind (CLI usage error).
inline datagen::Dataset MakeDataset(const std::string& kind, uint32_t num,
                                    uint64_t seed) {
  if (kind == "facebook") {
    datagen::FacebookConfig cfg;
    cfg.num_users = num;
    return datagen::GenerateFacebook(cfg, seed);
  }
  if (kind == "linkedin") {
    datagen::LinkedInConfig cfg;
    cfg.num_users = num;
    return datagen::GenerateLinkedIn(cfg, seed);
  }
  if (kind == "citation") {
    datagen::CitationConfig cfg;
    cfg.num_papers = num;
    return datagen::GenerateCitation(cfg, seed);
  }
  std::fprintf(stderr, "unknown dataset kind: %s\n", kind.c_str());
  std::exit(2);
}

/// The engine options every example binary uses for these datasets.
inline EngineOptions MakeEngineOptions(const datagen::Dataset& ds,
                                       unsigned num_threads,
                                       size_t num_shards) {
  EngineOptions options;
  options.miner.anchor_type = ds.user_type;
  options.miner.min_support = 4;
  options.miner.max_nodes = 4;
  options.num_threads = num_threads;
  options.num_shards = num_shards;
  return options;
}

/// Trains the per-class model exactly the way `mgps_cli query` always has:
/// split seeded from (dataset seed + 1), 20% test split, 300 sampled
/// examples, 300 training iterations. Deterministic in (dataset, class),
/// which is what lets a separately started server reproduce the CLI's
/// model bit for bit.
inline MgpModel TrainClassModel(SearchEngine& engine,
                                const datagen::Dataset& ds,
                                const GroundTruth& gt, uint64_t seed) {
  util::Rng rng(seed + 1);
  QuerySplit split = SplitQueries(gt, 0.2, rng);
  auto pool = ds.graph.NodesOfType(ds.user_type);
  std::vector<NodeId> pool_vec(pool.begin(), pool.end());
  auto examples = SampleExamples(gt, split.train, pool_vec, 300, rng);
  TrainOptions train;
  train.max_iterations = 300;
  return engine.Train(examples, train);
}

}  // namespace metaprox::examples

#endif  // METAPROX_EXAMPLES_EXAMPLE_COMMON_H_
