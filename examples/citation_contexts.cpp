// Context-aware citation search (the paper's second motivating scenario):
// on a citation graph of papers, authors, venues and keywords, distinguish
// citations that address the *same core problem* from mere
// *same-community* (background) citations — two semantic classes of
// paper-paper proximity learned from examples.
//
// Run: ./citation_contexts [num_papers] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "datagen/citation.h"
#include "eval/evaluate.h"
#include "eval/splits.h"

using namespace metaprox;  // NOLINT

int main(int argc, char** argv) {
  const uint32_t num_papers =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 500;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  datagen::CitationConfig cfg;
  cfg.num_papers = num_papers;
  datagen::Dataset ds = datagen::GenerateCitation(cfg, seed);
  std::printf("citation graph: %s\n", ds.graph.Summary().c_str());

  EngineOptions options;
  options.miner.anchor_type = ds.user_type;  // anchor = paper
  options.miner.min_support = 4;
  options.miner.max_nodes = 4;
  SearchEngine engine(ds.graph, options);
  engine.Mine();
  engine.MatchAll();
  std::printf("%zu paper-pair metagraphs mined & indexed\n\n",
              engine.metagraphs().size());

  auto pool_span = ds.graph.NodesOfType(ds.user_type);
  std::vector<NodeId> pool(pool_span.begin(), pool_span.end());

  for (const GroundTruth& gt : ds.classes) {
    util::Rng rng(seed + 1);
    QuerySplit split = SplitQueries(gt, 0.2, rng);
    auto examples = SampleExamples(gt, split.train, pool, 300, rng);
    TrainOptions train;
    train.max_iterations = 300;
    MgpModel model = engine.Train(examples, train);

    Ranker ranker = [&](NodeId q) {
      auto scored = engine.Query(model, q, 10);
      std::vector<NodeId> out;
      for (auto& [node, s] : scored) out.push_back(node);
      return out;
    };
    EvalResult eval = EvaluateRanker(gt, split.test, ranker, 10);
    std::printf("context '%s': NDCG@10 = %.3f, MAP@10 = %.3f over %zu test "
                "queries\n",
                gt.class_name().c_str(), eval.ndcg, eval.map,
                eval.num_queries);

    // Interpretability: the top characteristic metagraphs per context.
    std::vector<std::pair<double, uint32_t>> ranked;
    for (uint32_t i = 0; i < model.weights.size(); ++i) {
      ranked.emplace_back(model.weights[i], i);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("  top characteristic metagraphs:\n");
    for (size_t i = 0; i < 3 && i < ranked.size(); ++i) {
      std::printf("    %.3f  %s\n", ranked[i].first,
                  engine.metagraphs()[ranked[i].second]
                      .graph.ToString(ds.graph.type_registry())
                      .c_str());
    }
  }
  std::printf(
      "\nexpected: 'same-problem' favors keyword-sharing structures while "
      "'same-community' favors author/venue-sharing structures.\n");
  return 0;
}
