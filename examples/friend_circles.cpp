// Circle-based friend suggestion (the paper's first motivating scenario):
// on a Facebook-like social network, suggest friends *by circle* — family
// members vs classmates — by learning one MGP model per semantic class and
// ranking with each.
//
// Run: ./friend_circles [num_users] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "datagen/facebook.h"
#include "eval/evaluate.h"
#include "eval/splits.h"

using namespace metaprox;  // NOLINT

int main(int argc, char** argv) {
  const uint32_t num_users =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 400;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  datagen::FacebookConfig cfg;
  cfg.num_users = num_users;
  datagen::Dataset ds = datagen::GenerateFacebook(cfg, seed);
  std::printf("social network: %s\n", ds.graph.Summary().c_str());

  EngineOptions options;
  options.miner.anchor_type = ds.user_type;
  options.miner.min_support = 4;
  options.miner.max_nodes = 4;
  SearchEngine engine(ds.graph, options);
  engine.Mine();
  engine.MatchAll();
  std::printf("offline phase done: %zu metagraphs mined & indexed "
              "(mine %.1fs, match %.1fs)\n\n",
              engine.metagraphs().size(), engine.timings().mine_seconds,
              engine.timings().match_seconds);

  auto pool_span = ds.graph.NodesOfType(ds.user_type);
  std::vector<NodeId> pool(pool_span.begin(), pool_span.end());

  // Learn one model per circle and report suggestion quality.
  std::vector<MgpModel> models;
  std::vector<const GroundTruth*> classes;
  for (const GroundTruth& gt : ds.classes) {
    util::Rng rng(seed);
    QuerySplit split = SplitQueries(gt, 0.2, rng);
    auto examples = SampleExamples(gt, split.train, pool, 300, rng);
    TrainOptions train;
    train.max_iterations = 300;
    MgpModel model = engine.Train(examples, train);

    Ranker ranker = [&](NodeId q) {
      auto scored = engine.Query(model, q, 10);
      std::vector<NodeId> out;
      for (auto& [node, s] : scored) out.push_back(node);
      return out;
    };
    EvalResult eval = EvaluateRanker(gt, split.test, ranker, 10);
    std::printf("circle '%s': %zu labeled pairs, NDCG@10 = %.3f, "
                "MAP@10 = %.3f over %zu test queries\n",
                gt.class_name().c_str(), gt.num_positive_pairs(), eval.ndcg,
                eval.map, eval.num_queries);
    models.push_back(std::move(model));
    classes.push_back(&gt);
  }

  // Demo: per-circle suggestions for one user who has both kinds of
  // relations.
  NodeId demo = kInvalidNode;
  for (NodeId q : classes[0]->queries()) {
    if (!classes[1]->RelevantTo(q).empty()) {
      demo = q;
      break;
    }
  }
  if (demo != kInvalidNode) {
    std::printf("\nper-circle suggestions for user #%u:\n", demo);
    for (size_t c = 0; c < models.size(); ++c) {
      std::printf("  circle '%s':", classes[c]->class_name().c_str());
      for (const auto& [node, score] : engine.Query(models[c], demo, 5)) {
        std::printf(" #%u(%.2f%s)", node, score,
                    classes[c]->IsPositive(demo, node) ? ",true" : "");
      }
      std::printf("\n");
    }
    std::printf("(\"true\" marks suggestions the ground truth confirms; "
                "note how the two circles surface different users)\n");
  }
  return 0;
}
