// Dual-stage training in practice: trains a LinkedIn-like "coworker" model
// twice — once matching every mined metagraph, once with Alg. 1's
// seed-then-candidates schedule — and reports the matching-time saving at
// (nearly) equal accuracy. A minimal end-to-end demonstration of the
// paper's 83%-cost-reduction result.
//
// Run: ./dual_stage_speedup [num_users] [num_candidates] [num_threads]
// (num_threads drives both the full and the dual-stage matching pass;
// 0 = all cores, default 1.)
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "datagen/linkedin.h"
#include "eval/evaluate.h"
#include "eval/splits.h"

using namespace metaprox;  // NOLINT

namespace {

double Evaluate(SearchEngine& engine, const GroundTruth& gt,
                std::span<const NodeId> test, const MgpModel& model) {
  Ranker ranker = [&](NodeId q) {
    auto scored = engine.Query(model, q, 10);
    std::vector<NodeId> out;
    for (auto& [node, s] : scored) out.push_back(node);
    return out;
  };
  return EvaluateRanker(gt, test, ranker, 10).ndcg;
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t num_users =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 600;
  const size_t num_candidates =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 30;
  const unsigned num_threads =
      argc > 3 ? static_cast<unsigned>(std::max(0, std::atoi(argv[3]))) : 1;

  datagen::LinkedInConfig cfg;
  cfg.num_users = num_users;
  datagen::Dataset ds = datagen::GenerateLinkedIn(cfg, 3);
  std::printf("professional network: %s\n", ds.graph.Summary().c_str());

  EngineOptions options;
  options.miner.anchor_type = ds.user_type;
  options.miner.min_support = 5;
  options.miner.max_nodes = 5;
  options.num_threads = num_threads;

  const GroundTruth* coworker = ds.FindClass("coworker");
  util::Rng rng(9);
  QuerySplit split = SplitQueries(*coworker, 0.2, rng);
  auto pool_span = ds.graph.NodesOfType(ds.user_type);
  std::vector<NodeId> pool(pool_span.begin(), pool_span.end());
  auto examples = SampleExamples(*coworker, split.train, pool, 400, rng);

  TrainOptions train;
  train.max_iterations = 300;

  // ---- full matching ----------------------------------------------------
  SearchEngine full(ds.graph, options);
  full.Mine();
  full.MatchAll();
  MgpModel full_model = full.Train(examples, train);
  double full_ndcg = Evaluate(full, *coworker, split.test, full_model);
  std::printf("\nfull matching:     %zu metagraphs matched in %.1fs, "
              "NDCG@10 = %.3f\n",
              full.metagraphs().size(), full.timings().match_seconds,
              full_ndcg);

  // ---- dual-stage --------------------------------------------------------
  SearchEngine dual(ds.graph, options);
  dual.Mine();
  DualStageOptions ds_options;
  ds_options.num_candidates = num_candidates;
  ds_options.train = train;
  DualStageResult result = dual.TrainDualStage(examples, ds_options);
  dual.FinalizeIndex();
  MgpModel dual_model{result.final_stage.weights};
  double dual_ndcg = Evaluate(dual, *coworker, split.test, dual_model);
  std::printf("dual-stage (K=%zu): %zu metagraphs matched in %.1fs, "
              "NDCG@10 = %.3f\n",
              num_candidates,
              result.seeds.size() + result.candidates.size(),
              dual.timings().match_seconds, dual_ndcg);

  std::printf("\nmatching-time saving: %.1f%%  |  NDCG change: %+.3f\n",
              100.0 * (1.0 - dual.timings().match_seconds /
                                 full.timings().match_seconds),
              dual_ndcg - full_ndcg);
  return 0;
}
