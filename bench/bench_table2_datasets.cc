// Reproduces Table II: description of the (synthetic) datasets — node,
// edge, type, metagraph and query counts for each graph and class.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

using namespace metaprox;        // NOLINT
using namespace metaprox::bench; // NOLINT

int main() {
  std::printf("== Table II: description of datasets ==\n");
  std::printf("(synthetic substitutes; see DESIGN.md for the mapping)\n\n");

  util::TablePrinter table({"dataset", "#Nodes", "#Edges", "#Types",
                            "#Metagraphs", "#Metapaths", "#Queries"});

  auto add_row = [&](const Bundle& b) {
    std::string queries;
    for (size_t c = 0; c < b.ds.classes.size(); ++c) {
      if (c) queries += ", ";
      queries += std::to_string(b.ds.classes[c].queries().size()) + " (" +
                 b.ds.classes[c].class_name() + ")";
    }
    table.AddRow({b.ds.name, std::to_string(b.ds.graph.num_nodes()),
                  std::to_string(b.ds.graph.num_edges()),
                  std::to_string(b.ds.graph.num_types()),
                  std::to_string(b.engine->metagraphs().size()),
                  std::to_string(PathIndices(*b.engine).size()), queries});
  };

  Bundle li = MakeLinkedIn();
  add_row(li);
  Bundle fb = MakeFacebook();
  add_row(fb);

  table.Print(std::cout);

  std::printf(
      "\npaper reference: LinkedIn 65925 nodes / 220812 edges / 4 types / "
      "164 metagraphs;\n                 Facebook 5025 nodes / 100356 edges "
      "/ 10 types / 954 metagraphs.\n");
  std::printf(
      "expected shape: few types => few metagraphs (LinkedIn); many types "
      "=> many metagraphs (Facebook); metapaths are a small fraction "
      "(paper: 2-3%%).\n");
  return 0;
}
