// Reproduces Fig. 9: correlation of structural similarity (SS, from the
// maximum common subgraph) and functional similarity (FS = 1 - |w_i - w_j|
// under the full optimal weights). The candidate heuristic's premise:
// average FS should increase across SS bins.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

using namespace metaprox;        // NOLINT
using namespace metaprox::bench; // NOLINT

namespace {

void RunClass(const Bundle& b, const GroundTruth& gt,
              StructuralSimilarityCache& ss_cache,
              util::TablePrinter& table) {
  // Average the learned weights over several independent splits: a single
  // gradient-ascent solution is near-binary (winner-take-all among
  // correlated metagraphs), while the *expected* weight reflects how
  // characteristic a metagraph is — the quantity FS is meant to compare.
  const int runs = FullScale() ? 5 : 3;
  const size_t num_examples = FullScale() ? 1000 : 400;
  std::vector<double> mean_weights;
  for (int run = 0; run < runs; ++run) {
    util::Rng rng(17 + 31 * run);
    QuerySplit split = SplitQueries(gt, 0.2, rng);
    auto examples =
        SampleExamples(gt, split.train, b.user_pool, num_examples, rng);
    TrainOptions options = DefaultTrainOptions();
    options.seed = 7 + run;
    TrainResult model = TrainMgp(b.engine->index(), examples, options);
    if (mean_weights.empty()) {
      mean_weights = model.weights;
    } else {
      for (size_t i = 0; i < mean_weights.size(); ++i) {
        mean_weights[i] += model.weights[i];
      }
    }
  }
  for (double& w : mean_weights) w /= runs;
  TrainResult model;
  model.weights = std::move(mean_weights);

  const auto& metagraphs = b.engine->metagraphs();
  const size_t m = metagraphs.size();

  // Sample metagraph pairs (all pairs when small, else random sample).
  const size_t max_pairs = FullScale() ? 60'000 : 20'000;
  double fs_sum[5] = {0};
  uint64_t fs_count[5] = {0};
  auto account = [&](uint32_t i, uint32_t j) {
    double ss = ss_cache.Get(metagraphs, i, j);
    double fs = FunctionalSimilarity(model.weights, i, j);
    int bin = std::min(4, static_cast<int>(ss * 5.0));
    fs_sum[bin] += fs;
    ++fs_count[bin];
  };
  const uint64_t total_pairs = static_cast<uint64_t>(m) * (m - 1) / 2;
  if (total_pairs <= max_pairs) {
    for (uint32_t i = 0; i < m; ++i) {
      for (uint32_t j = i + 1; j < m; ++j) account(i, j);
    }
  } else {
    util::Rng pair_rng(99);
    for (size_t s = 0; s < max_pairs; ++s) {
      uint32_t i = static_cast<uint32_t>(pair_rng.UniformInt(m));
      uint32_t j = static_cast<uint32_t>(pair_rng.UniformInt(m));
      if (i != j) account(std::min(i, j), std::max(i, j));
    }
  }

  static const char* kBins[5] = {"[0,0.2)", "[0.2,0.4)", "[0.4,0.6)",
                                 "[0.6,0.8)", "[0.8,1]"};
  for (int bin = 0; bin < 5; ++bin) {
    table.AddRow({gt.class_name(), kBins[bin],
                  fs_count[bin] ? util::FormatDouble(
                                      fs_sum[bin] / fs_count[bin], 4)
                                : "n/a",
                  std::to_string(fs_count[bin])});
  }
}

}  // namespace

int main() {
  std::printf("== Fig. 9: correlation of structural and functional "
              "similarity ==\n");
  std::printf("expected shape: mean FS rises with the SS bin.\n");

  {
    Bundle li = MakeLinkedIn(5, 600, 2500);
    li.engine->MatchAll();
    StructuralSimilarityCache cache;
    std::printf("\n-- %s --\n", li.ds.name.c_str());
    util::TablePrinter table({"class", "SS bin", "mean FS", "#pairs"});
    for (const GroundTruth& gt : li.ds.classes) {
      RunClass(li, gt, cache, table);
    }
    table.Print(std::cout);
  }
  {
    Bundle fb = MakeFacebook(4, 500, 1200);  // |M|^2 pairs: keep 4-node cap
    fb.engine->MatchAll();
    StructuralSimilarityCache cache;
    std::printf("\n-- %s (metagraphs capped at 4 nodes for the full "
                "pairwise SS computation) --\n",
                fb.ds.name.c_str());
    util::TablePrinter table({"class", "SS bin", "mean FS", "#pairs"});
    for (const GroundTruth& gt : fb.ds.classes) {
      RunClass(fb, gt, cache, table);
    }
    table.Print(std::cout);
  }
  return 0;
}
