// Reproduces Fig. 10: the candidate heuristic (CH, Eq. 7) against its
// reverse (RCH) in dual-stage training. If the H-induced order is
// meaningful, CH must dominate RCH at every candidate budget |K|.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

using namespace metaprox;        // NOLINT
using namespace metaprox::bench; // NOLINT

namespace {

void RunClass(const Bundle& b, SweepContext& ctx, const GroundTruth& gt,
              std::span<const size_t> ks, util::TablePrinter& table,
              int* ch_wins, int* cells) {
  util::Rng rng(53);
  QuerySplit split = SplitQueries(gt, 0.2, rng);
  const size_t num_examples = FullScale() ? 1000 : 400;
  auto examples =
      SampleExamples(gt, split.train, b.user_pool, num_examples, rng);

  std::vector<double> seed_scores = PerMetagraphPairwiseAccuracy(
      b.engine->index(), examples, ctx.seeds);
  auto ch = RankCandidates(b, ctx, seed_scores, /*reversed=*/false);
  auto rch = RankCandidates(b, ctx, seed_scores, /*reversed=*/true);

  for (size_t k : ks) {
    auto eval_for = [&](const std::vector<uint32_t>& ranked) {
      std::vector<uint32_t> active = ctx.seeds;
      for (size_t i = 0; i < std::min(k, ranked.size()); ++i) {
        active.push_back(ranked[i]);
      }
      return EvalActiveSet(b, ctx, gt, examples, split.test, active);
    };
    SweepPoint p_ch = eval_for(ch);
    SweepPoint p_rch = eval_for(rch);
    table.AddRow({gt.class_name(), std::to_string(k),
                  util::FormatDouble(p_ch.ndcg, 4),
                  util::FormatDouble(p_rch.ndcg, 4),
                  util::FormatDouble(p_ch.map, 4),
                  util::FormatDouble(p_rch.map, 4)});
    *cells += 2;
    *ch_wins += (p_ch.ndcg >= p_rch.ndcg) + (p_ch.map >= p_rch.map);
  }
}

void RunDataset(Bundle& b, std::span<const size_t> ks, int* ch_wins,
                int* cells) {
  SweepContext ctx = PrepareSweep(b);
  std::printf("\n-- %s --\n", b.ds.name.c_str());
  util::TablePrinter table({"class", "|K|", "CH NDCG", "RCH NDCG", "CH MAP",
                            "RCH MAP"});
  for (const GroundTruth& gt : b.ds.classes) {
    RunClass(b, ctx, gt, ks, table, ch_wins, cells);
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::printf("== Fig. 10: candidate heuristic (CH) vs reverse (RCH) ==\n");
  std::printf("expected shape: CH >= RCH at every |K|.\n");

  int ch_wins = 0, cells = 0;
  {
    Bundle li = MakeLinkedIn(5, 600, 2500);
    const std::vector<size_t> ks = {10, 20, 30, 40, 50};
    RunDataset(li, ks, &ch_wins, &cells);
  }
  {
    Bundle fb = MakeFacebook(5, 400, 1200);
    const std::vector<size_t> ks = {30, 60, 90, 120, 150};
    RunDataset(fb, ks, &ch_wins, &cells);
  }
  std::printf("\nCH wins or ties %d / %d cells.\n", ch_wins, cells);
  return 0;
}
