// Reproduces Table III: wall-clock cost of each subproblem without
// dual-stage training — mining, matching (all metagraphs), training with
// 1000 examples, and online testing per query. The paper's headline:
// matching dominates the offline phase by at least an order of magnitude.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace metaprox;        // NOLINT
using namespace metaprox::bench; // NOLINT

namespace {

void RunDataset(Bundle& b, util::TablePrinter& table) {
  const double mine_s = b.engine->timings().mine_seconds;

  util::Stopwatch sw;
  b.engine->MatchAll();
  const double match_s = sw.ElapsedSeconds();

  // Train on the first class with 1000 examples.
  const GroundTruth& gt = b.cls(0);
  util::Rng rng(7);
  QuerySplit split = SplitQueries(gt, 0.2, rng);
  auto examples = SampleExamples(gt, split.train, b.user_pool, 1000, rng);
  sw.Restart();
  TrainResult model =
      TrainMgp(b.engine->index(), examples, DefaultTrainOptions());
  const double train_s = sw.ElapsedSeconds();

  // Online testing: average per-query latency over the test split.
  size_t queries = 0;
  sw.Restart();
  for (NodeId q : split.test) {
    auto top = b.engine->Query(MgpModel{model.weights}, q, 10);
    ++queries;
    (void)top;
  }
  const double test_s_per_query =
      queries > 0 ? sw.ElapsedSeconds() / static_cast<double>(queries) : 0.0;

  table.AddRow({b.ds.name, util::FormatDouble(mine_s, 1),
                util::FormatDouble(match_s, 1),
                util::FormatDouble(train_s, 1),
                util::FormatDouble(test_s_per_query * 1e6, 1) + "e-6"});
  std::printf("  %s: matching/mining ratio = %.1fx\n", b.ds.name.c_str(),
              mine_s > 0 ? match_s / mine_s : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);  // --threads=N parallelizes the match phase
  std::printf("== Table III: time costs without dual-stage training "
              "(seconds) ==\n");
  std::printf("expected shape: matching >> mining, training; testing is "
              "micro-seconds per query.\n\n");

  util::TablePrinter table({"dataset", "Mining", "Matching",
                            "Training (1000 ex.)", "Testing (s/query)"});
  {
    Bundle li = MakeLinkedIn(5, 700, 2500);
    RunDataset(li, table);
  }
  {
    Bundle fb = MakeFacebook(5, 450, 1200);
    RunDataset(fb, table);
  }
  table.Print(std::cout);

  std::printf(
      "\npaper reference: LinkedIn mining 247.6s matching 9870.3s training "
      "11.6s testing 8.2e-5s;\n                 Facebook mining 213.2s "
      "matching 10021.6s training 142.8s testing 2.8e-4s.\n");
  return 0;
}
