// Reproduces Fig. 11: average matching time per metagraph, bucketed by
// metagraph size (3, 4, 5 nodes), for SymISO, SymISO-R, BoostISO, TurboISO
// and QuickSI. Paper's shape: SymISO fastest (52% faster than the best
// baseline on average, 45% faster than SymISO-R), with the margin widening
// as metagraphs grow.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "matching/matcher.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace metaprox;        // NOLINT
using namespace metaprox::bench; // NOLINT

namespace {

struct Cell {
  double seconds = 0.0;
  size_t count = 0;
};

void RunDataset(const Bundle& b, size_t per_size_cap,
                util::TablePrinter& table,
                std::map<std::string, double>* totals) {
  const std::vector<MatcherKind> kinds = {
      MatcherKind::kSymISO, MatcherKind::kSymISORandom,
      MatcherKind::kBoostISO, MatcherKind::kTurboISO, MatcherKind::kQuickSI};

  // Sample up to `per_size_cap` metagraphs per size bucket.
  std::map<int, std::vector<const MinedMetagraph*>> by_size;
  for (const auto& m : b.engine->metagraphs()) {
    auto& bucket = by_size[m.graph.num_nodes()];
    if (bucket.size() < per_size_cap) bucket.push_back(&m);
  }

  for (const auto& [size, bucket] : by_size) {
    for (MatcherKind kind : kinds) {
      auto matcher = CreateMatcher(kind);
      Cell cell;
      for (const MinedMetagraph* m : bucket) {
        // Best of two runs per metagraph to suppress scheduling noise.
        double best = 1e300;
        for (int rep = 0; rep < 2; ++rep) {
          CountingSink sink(/*cap=*/5'000'000);
          util::Stopwatch sw;
          matcher->Match(b.ds.graph, m->graph, &sink);
          best = std::min(best, sw.ElapsedSeconds());
        }
        cell.seconds += best;
        ++cell.count;
      }
      double avg_ms = cell.count ? 1e3 * cell.seconds / cell.count : 0.0;
      table.AddRow({b.ds.name, std::to_string(size),
                    std::to_string(cell.count), matcher->name(),
                    util::FormatDouble(avg_ms, 2)});
      (*totals)[matcher->name()] += cell.seconds;
    }
    std::fprintf(stderr, "  [%s size=%d done]\n", b.ds.name.c_str(), size);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);  // --threads=N parallelizes support counting
  std::printf("== Fig. 11: average matching time per metagraph (ms) ==\n");
  std::printf("expected shape: SymISO < BoostISO < TurboISO < QuickSI; "
              "SymISO-R slower than SymISO.\n\n");

  const size_t per_size_cap = FullScale() ? 200 : 40;
  util::TablePrinter table({"dataset", "|V_M|", "#metagraphs", "matcher",
                            "avg time (ms)"});
  std::map<std::string, double> totals;
  {
    Bundle li = MakeLinkedIn(5, 700, 2500);
    RunDataset(li, per_size_cap, table, &totals);
  }
  {
    Bundle fb = MakeFacebook(5, 450, 1200);
    RunDataset(fb, per_size_cap, table, &totals);
  }
  table.Print(std::cout);

  std::printf("\n-- aggregate matching time across both datasets --\n");
  for (const auto& [name, seconds] : totals) {
    std::printf("  %-9s %.2fs\n", name.c_str(), seconds);
  }
  double sym = totals["SymISO"];
  double best_baseline = std::min({totals["BoostISO"], totals["TurboISO"],
                                   totals["QuickSI"]});
  double sym_r = totals["SymISO-R"];
  if (sym > 0.0) {
    std::printf("\nSymISO vs best baseline: %s faster (paper: 52%%)\n",
                util::FormatPercent(1.0 - sym / best_baseline).c_str());
    std::printf("SymISO vs SymISO-R:      %s faster (paper: 45%%)\n",
                util::FormatPercent(1.0 - sym / sym_r).c_str());
  }
  return 0;
}
