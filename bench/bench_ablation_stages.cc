// Ablation of the staging strategy (Sect. III-C and its multi-stage
// extension): full matching vs dual-stage (one candidate batch) vs
// multi-stage (progressive batches with an accuracy stop criterion),
// comparing matched-metagraph counts, matching cost, and test accuracy.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "learning/multi_stage.h"
#include "util/table_printer.h"

using namespace metaprox;        // NOLINT
using namespace metaprox::bench; // NOLINT

namespace {

void RunClass(const Bundle& b, SweepContext& ctx, const GroundTruth& gt,
              util::TablePrinter& table) {
  util::Rng rng(71);
  QuerySplit split = SplitQueries(gt, 0.2, rng);
  const size_t num_examples = FullScale() ? 1000 : 400;
  auto examples =
      SampleExamples(gt, split.train, b.user_pool, num_examples, rng);

  auto add_row = [&](const char* strategy, const std::vector<uint32_t>& active,
                     double ndcg) {
    double seconds = 0.0;
    for (uint32_t i : active) seconds += ctx.per_metagraph_seconds[i];
    table.AddRow({gt.class_name(), strategy, std::to_string(active.size()),
                  util::FormatDouble(seconds, 2),
                  util::FormatDouble(ndcg, 4)});
  };

  // Full matching.
  std::vector<uint32_t> all(b.engine->metagraphs().size());
  for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
  SweepPoint full = EvalActiveSet(b, ctx, gt, examples, split.test, all);
  add_row("full", all, full.ndcg);

  // Dual-stage with a fixed |K|.
  const size_t k = b.engine->metagraphs().size() > 500 ? 120 : 40;
  std::vector<double> seed_scores = PerMetagraphPairwiseAccuracy(
      b.engine->index(), examples, ctx.seeds);
  auto ranked = RankCandidates(b, ctx, seed_scores, /*reversed=*/false);
  std::vector<uint32_t> dual = ctx.seeds;
  for (size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    dual.push_back(ranked[i]);
  }
  SweepPoint dual_pt = EvalActiveSet(b, ctx, gt, examples, split.test, dual);
  add_row("dual-stage", dual, dual_pt.ndcg);

  // Multi-stage: progressive batches with the accuracy stop criterion.
  // The index is fully committed already, so match_and_commit is a no-op;
  // the *accounted* cost is the per-metagraph time of what it selects.
  MultiStageOptions ms;
  ms.batch_size = k / 4;
  ms.max_stages = 6;
  ms.target_accuracy = 0.98;
  ms.min_improvement = 0.0005;
  ms.train = DefaultTrainOptions();
  MultiStageResult multi = TrainMultiStage(
      b.engine->metagraphs(),
      const_cast<MetagraphVectorIndex&>(b.engine->index()), examples, ms,
      [](std::span<const uint32_t>) {}, &ctx.ss_cache);
  std::vector<uint32_t> multi_active = multi.seeds;
  for (const auto& batch : multi.batches) {
    multi_active.insert(multi_active.end(), batch.begin(), batch.end());
  }
  Scores ms_scores = EvalWeights(*b.engine, gt, split.test,
                                 multi.final_stage.weights);
  add_row("multi-stage", multi_active, ms_scores.ndcg);
}

}  // namespace

int main() {
  std::printf("== Ablation: full vs dual-stage vs multi-stage training ==\n");
  std::printf("expected shape: staged strategies match a fraction of the "
              "metagraphs at near-full accuracy; multi-stage adapts the "
              "budget per class.\n\n");

  util::TablePrinter table({"class", "strategy", "#matched", "match (s)",
                            "NDCG@10"});
  {
    Bundle li = MakeLinkedIn(5, 600, 2500);
    SweepContext ctx = PrepareSweep(li);
    for (const GroundTruth& gt : li.ds.classes) RunClass(li, ctx, gt, table);
  }
  {
    Bundle fb = MakeFacebook(5, 400, 1200);
    SweepContext ctx = PrepareSweep(fb);
    for (const GroundTruth& gt : fb.ds.classes) RunClass(fb, ctx, gt, table);
  }
  table.Print(std::cout);
  return 0;
}
