// Reproduces Fig. 8: impact of dual-stage training. For each class, the
// number of candidate metagraphs |K| is swept from 0 (seeds only) to "all";
// accuracy (NDCG/MAP) and matching time are reported as the percentage
// increase between those endpoints. The paper's shape: accuracy approaches
// 100% with a small |K| while time stays far below 100% (83% overall
// matching-cost reduction).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

using namespace metaprox;        // NOLINT
using namespace metaprox::bench; // NOLINT

namespace {

void RunClass(const Bundle& b, SweepContext& ctx, const GroundTruth& gt,
              std::span<const size_t> ks, util::TablePrinter& table) {
  util::Rng rng(31);
  QuerySplit split = SplitQueries(gt, 0.2, rng);
  const size_t num_examples = FullScale() ? 1000 : 400;
  auto examples =
      SampleExamples(gt, split.train, b.user_pool, num_examples, rng);

  // Endpoints: seeds only (0%) and all metagraphs (100%).
  SweepPoint seed_pt =
      EvalActiveSet(b, ctx, gt, examples, split.test, ctx.seeds);
  std::vector<uint32_t> all(b.engine->metagraphs().size());
  for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
  SweepPoint all_pt = EvalActiveSet(b, ctx, gt, examples, split.test, all);

  // Per-seed usefulness scores drive the candidate heuristic.
  std::vector<double> seed_scores = PerMetagraphPairwiseAccuracy(
      b.engine->index(), examples, ctx.seeds);
  std::vector<uint32_t> ranked =
      RankCandidates(b, ctx, seed_scores, /*reversed=*/false);

  auto pct = [](double v, double lo, double hi) {
    if (hi <= lo) return 100.0;
    return 100.0 * std::clamp((v - lo) / (hi - lo), 0.0, 1.2);
  };

  for (size_t k : ks) {
    std::vector<uint32_t> active = ctx.seeds;
    for (size_t i = 0; i < std::min(k, ranked.size()); ++i) {
      active.push_back(ranked[i]);
    }
    SweepPoint pt = EvalActiveSet(b, ctx, gt, examples, split.test, active);
    table.AddRow({gt.class_name(), std::to_string(k),
                  util::FormatDouble(pct(pt.ndcg, seed_pt.ndcg, all_pt.ndcg),
                                     1) + "%",
                  util::FormatDouble(pct(pt.map, seed_pt.map, all_pt.map),
                                     1) + "%",
                  util::FormatDouble(
                      pct(pt.seconds, seed_pt.seconds, all_pt.seconds), 1) +
                      "%"});
  }
  table.AddRow({gt.class_name(), "all", "100.0%", "100.0%", "100.0%"});

  // Headline number: matching-time reduction at the largest swept |K|.
  size_t k_star = ks.empty() ? 0 : ks.back();
  std::vector<uint32_t> active = ctx.seeds;
  for (size_t i = 0; i < std::min(k_star, ranked.size()); ++i) {
    active.push_back(ranked[i]);
  }
  double spent = 0.0;
  for (uint32_t i : active) spent += ctx.per_metagraph_seconds[i];
  std::printf("  %s: overall matching-cost reduction at |K|=%zu: %s "
              "(paper: 83%% on average)\n",
              gt.class_name().c_str(), k_star,
              util::FormatPercent(1.0 - spent / ctx.total_seconds).c_str());
}

void RunDataset(Bundle& b, std::span<const size_t> ks) {
  SweepContext ctx = PrepareSweep(b);
  std::printf("\n-- %s (|M|=%zu, seeds=%zu) --\n", b.ds.name.c_str(),
              b.engine->metagraphs().size(), ctx.seeds.size());
  util::TablePrinter table({"class", "|K|", "NDCG incr.", "MAP incr.",
                            "time incr."});
  for (const GroundTruth& gt : b.ds.classes) {
    RunClass(b, ctx, gt, ks, table);
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::printf("== Fig. 8: impact of dual-stage training ==\n");
  std::printf("expected shape: accuracy rises much faster than time as |K| "
              "grows.\n");

  {
    Bundle li = MakeLinkedIn(5, 600, 2500);
    const std::vector<size_t> ks = {10, 20, 30, 40, 50};
    RunDataset(li, ks);
  }
  {
    Bundle fb = MakeFacebook(5, 400, 1200);
    const std::vector<size_t> ks = {30, 60, 90, 120, 150};
    RunDataset(fb, ks);
  }
  return 0;
}
