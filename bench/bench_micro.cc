// Dot-kernel microbenchmarks: the sparse-row x dense-weight kernels of
// core/score_kernels.h — scalar reference vs. the runtime-dispatched
// kernel (AVX2+FMA where the CPU has it) vs. the multi-weight kernel —
// swept over row lengths 4..4096 and both count transforms.
//
// Two numbers matter per configuration:
//   * ns/entry of single-weight scalar vs. dispatched (the SIMD payoff,
//     which is large for kRaw and bounded by the scalar log1p calls for
//     kLog1p — vectorizing log1p would break the bitwise contract);
//   * ns/entry/model of the multi-weight kernel as models grow (the
//     gather-once/score-many marginal cost; the point of the shared-window
//     batch is that this is far below one full single-weight walk).
//
// Every timed result is also CHECKED bitwise against the scalar reference
// — a kernel that got faster by changing bits fails the bench, not just a
// test. Plain binary on bench_common's --json plumbing (BENCH_micro.json
// in CI); no external benchmark framework.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/score_kernels.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace metaprox;           // NOLINT
using namespace metaprox::bench;    // NOLINT
using namespace metaprox::kernels;  // NOLINT

namespace {

constexpr size_t kNumWeights = 1024;
constexpr int kReps = 5;  // best-of reps: timing noise, not results

// Rows of one length, enough of them that a pass touches more data than
// L1 (the serving gather walks many distinct rows, not one hot row).
struct RowSet {
  std::vector<RowEntry> storage;
  std::vector<std::pair<size_t, size_t>> rows;  // (offset, len) into storage

  std::span<const RowEntry> row(size_t i) const {
    return std::span<const RowEntry>(storage.data() + rows[i].first,
                                     rows[i].second);
  }
};

RowSet MakeRows(size_t len, size_t total_entries, util::Rng& rng) {
  RowSet set;
  const size_t n_rows = std::max<size_t>(1, total_entries / len);
  set.storage.reserve(n_rows * len);
  for (size_t r = 0; r < n_rows; ++r) {
    set.rows.emplace_back(set.storage.size(), len);
    for (size_t e = 0; e < len; ++e) {
      set.storage.emplace_back(
          static_cast<uint32_t>(rng.UniformInt(kNumWeights)),
          static_cast<float>(rng.UniformDouble(0.0, 3.0e6)));
    }
  }
  return set;
}

// Best-of-kReps seconds for `fn`, which must fold its work into a value
// the caller reads (so nothing is optimized away).
template <typename Fn>
double TimeBest(const Fn& fn) {
  double best = -1.0;
  for (int rep = 0; rep < kReps; ++rep) {
    util::Stopwatch timer;
    fn();
    const double seconds = timer.ElapsedSeconds();
    if (best < 0.0 || seconds < best) best = seconds;
  }
  return best;
}

const char* TransformName(RowTransform t) {
  return t == RowTransform::kLog1p ? "log1p" : "raw";
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  std::printf("== score-kernel microbench: scalar vs %s vs multi-weight ==\n",
              KernelName(ActiveKernel()));
  std::printf("dispatched kernel: %s (METAPROX_FORCE_SCALAR_KERNELS=%s)\n\n",
              KernelName(ActiveKernel()),
              ActiveKernel() == KernelKind::kScalar ? "honored/implied"
                                                    : "unset");

  util::Rng rng(42);
  std::vector<double> weights(kNumWeights);
  for (double& w : weights) w = rng.UniformDouble(-2.0, 2.0);

  // Model sets for the multi-weight kernel.
  const std::vector<size_t> model_counts = {2, 4, 8};
  std::vector<std::vector<double>> model_storage;
  for (size_t m = 0; m < 8; ++m) {
    model_storage.emplace_back(kNumWeights);
    for (double& w : model_storage.back()) w = rng.UniformDouble(-2.0, 2.0);
  }

  const std::vector<size_t> row_lens = {4, 16, 64, 256, 1024, 4096};
  const size_t total_entries = FullScale() ? (1u << 22) : (1u << 18);

  util::TablePrinter table({"transform", "row len", "kernel", "models",
                            "ns/row", "ns/entry", "vs scalar"});
  JsonReport report("micro");
  report.BeginRecord()
      .Str("config", "dispatch")
      .Str("active_kernel", KernelName(ActiveKernel()));

  bool all_bitwise = true;
  double checksum = 0.0;  // consumed below so no timed loop is dead code

  for (RowTransform transform : {RowTransform::kRaw, RowTransform::kLog1p}) {
    for (size_t len : row_lens) {
      const RowSet rows = MakeRows(len, total_entries, rng);
      const size_t n_rows = rows.rows.size();
      const double entries =
          static_cast<double>(n_rows) * static_cast<double>(len);

      // Reference pass (also the bitwise baseline for everything below).
      std::vector<double> reference(n_rows);
      const double scalar_seconds = TimeBest([&] {
        for (size_t i = 0; i < n_rows; ++i) {
          reference[i] = RowDotScalar(rows.row(i), weights, transform);
        }
      });
      checksum += reference[n_rows / 2];

      const double dispatched_seconds = TimeBest([&] {
        for (size_t i = 0; i < n_rows; ++i) {
          const double dot = RowDot(rows.row(i), weights, transform);
          if (dot != reference[i]) all_bitwise = false;
          checksum += dot;
        }
      });

      const auto add_row = [&](const char* kernel, size_t models,
                               double seconds, double per_model_entries) {
        const double ns_row = seconds * 1e9 / static_cast<double>(n_rows);
        const double ns_entry = seconds * 1e9 / per_model_entries;
        const double speedup = scalar_seconds / seconds *
                               (per_model_entries / entries);
        table.AddRow({TransformName(transform), std::to_string(len), kernel,
                      std::to_string(models), util::FormatDouble(ns_row, 1),
                      util::FormatDouble(ns_entry, 2),
                      util::FormatDouble(speedup, 2) + "x"});
        report.BeginRecord()
            .Str("transform", TransformName(transform))
            .Num("row_len", static_cast<double>(len))
            .Str("kernel", kernel)
            .Num("models", static_cast<double>(models))
            .Num("ns_per_row", ns_row)
            .Num("ns_per_entry", ns_entry)
            .Num("speedup_vs_scalar_per_model", speedup);
      };
      add_row("scalar", 1, scalar_seconds, entries);
      add_row("dispatched", 1, dispatched_seconds, entries);

      // Multi-weight: one walk, N models. ns/entry here is PER MODEL — the
      // marginal cost the shared-window batch pays for an extra model.
      for (size_t n_models : model_counts) {
        std::vector<std::span<const double>> spans;
        for (size_t m = 0; m < n_models; ++m) {
          spans.push_back(model_storage[m]);
        }
        MultiWeightSet set;
        set.Assign(spans);
        std::vector<double> out(n_models);
        std::vector<double> lanes(set.lane_scratch_size());
        // Bitwise check once, outside the timed loop.
        for (size_t i = 0; i < n_rows; i += 97) {
          RowDotMulti(rows.row(i), set, transform, out.data(), lanes.data());
          for (size_t m = 0; m < n_models; ++m) {
            if (out[m] != RowDotScalar(rows.row(i), spans[m], transform)) {
              all_bitwise = false;
            }
          }
        }
        const double multi_seconds = TimeBest([&] {
          for (size_t i = 0; i < n_rows; ++i) {
            RowDotMulti(rows.row(i), set, transform, out.data(),
                        lanes.data());
            checksum += out[0];
          }
        });
        add_row("multi", n_models, multi_seconds,
                entries * static_cast<double>(n_models));
      }
    }
  }

  table.Print(std::cout);
  if (!report.WriteIfRequested()) return 1;
  std::printf("\n(checksum %.6g)\n", checksum);
  std::printf(
      "expected shape: dispatched beats scalar on raw rows (SIMD gathers); "
      "log1p narrows the gap (bitwise contract keeps libm log1p); multi's "
      "per-model ns/entry FALLS as models grow — the marginal model is one "
      "fma per entry, which is what the shared-window batch banks on.\n");

  if (!all_bitwise) {
    std::fprintf(stderr,
                 "FATAL: a kernel differed bitwise from the scalar "
                 "reference\n");
    return 1;
  }
  return 0;
}
