// Google-benchmark microbenchmarks for the library's hot kernels: graph
// primitives, canonicalization/symmetry analysis, matcher kernels, vector
// index lookups and the MGP proximity evaluation.
#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "datagen/facebook.h"
#include "index/metagraph_vectors.h"
#include "learning/proximity.h"
#include "matching/matcher.h"
#include "metagraph/automorphism.h"
#include "metagraph/canonical.h"
#include "metagraph/mcs.h"
#include "util/rng.h"

namespace {

using namespace metaprox;  // NOLINT

const Graph& SharedGraph() {
  static const Graph* g = [] {
    datagen::FacebookConfig cfg;
    cfg.num_users = 800;
    static datagen::Dataset ds = GenerateFacebook(cfg, 3);
    return &ds.graph;
  }();
  return *g;
}

Metagraph SampleMetagraph(int nodes) {
  // user-school-user / +degree / +major chain on the Facebook type ids
  // (user=0, school=4, degree=5, major=6).
  Metagraph m;
  MetaNodeId u1 = m.AddNode(0);
  MetaNodeId u2 = m.AddNode(0);
  MetaNodeId s = m.AddNode(4);
  m.AddEdge(u1, s);
  m.AddEdge(u2, s);
  if (nodes >= 4) {
    MetaNodeId d = m.AddNode(5);
    m.AddEdge(u1, d);
    m.AddEdge(u2, d);
  }
  if (nodes >= 5) {
    MetaNodeId j = m.AddNode(6);
    m.AddEdge(u1, j);
    m.AddEdge(u2, j);
  }
  return m;
}

void BM_GraphHasEdge(benchmark::State& state) {
  const Graph& g = SharedGraph();
  util::Rng rng(1);
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    benchmark::DoNotOptimize(g.HasEdge(u, v));
  }
}
BENCHMARK(BM_GraphHasEdge);

void BM_GraphTypedNeighborSlice(benchmark::State& state) {
  const Graph& g = SharedGraph();
  util::Rng rng(2);
  for (auto _ : state) {
    NodeId v = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    TypeId t = static_cast<TypeId>(rng.UniformInt(g.num_types()));
    benchmark::DoNotOptimize(g.NeighborsOfType(v, t).size());
  }
}
BENCHMARK(BM_GraphTypedNeighborSlice);

void BM_Canonicalize(benchmark::State& state) {
  Metagraph m = SampleMetagraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Canonicalize(m));
  }
}
BENCHMARK(BM_Canonicalize)->Arg(3)->Arg(4)->Arg(5);

void BM_AnalyzeSymmetry(benchmark::State& state) {
  Metagraph m = SampleMetagraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzeSymmetry(m));
  }
}
BENCHMARK(BM_AnalyzeSymmetry)->Arg(3)->Arg(5);

void BM_StructuralSimilarity(benchmark::State& state) {
  Metagraph a = SampleMetagraph(4);
  Metagraph b = SampleMetagraph(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(StructuralSimilarity(a, b));
  }
}
BENCHMARK(BM_StructuralSimilarity);

void BM_MatcherKernel(benchmark::State& state) {
  const Graph& g = SharedGraph();
  Metagraph m = SampleMetagraph(static_cast<int>(state.range(1)));
  auto matcher = CreateMatcher(static_cast<MatcherKind>(state.range(0)));
  uint64_t embeddings = 0;
  for (auto _ : state) {
    CountingSink sink;
    matcher->Match(g, m, &sink);
    embeddings = sink.count();
    benchmark::DoNotOptimize(embeddings);
  }
  state.counters["embeddings"] = static_cast<double>(embeddings);
  state.SetLabel(matcher->name());
}
BENCHMARK(BM_MatcherKernel)
    ->ArgsProduct({{static_cast<int64_t>(MatcherKind::kQuickSI),
                    static_cast<int64_t>(MatcherKind::kBoostISO),
                    static_cast<int64_t>(MatcherKind::kSymISO)},
                   {3, 4}})
    ->Unit(benchmark::kMillisecond);

struct IndexFixture {
  std::unique_ptr<MetagraphVectorIndex> index;
  std::vector<NodeId> users;
  std::vector<double> weights;
};

IndexFixture& SharedIndex() {
  static IndexFixture* f = [] {
    auto* fx = new IndexFixture();
    const Graph& g = SharedGraph();
    std::vector<Metagraph> metagraphs = {SampleMetagraph(3),
                                         SampleMetagraph(4),
                                         SampleMetagraph(5)};
    fx->index = std::make_unique<MetagraphVectorIndex>(
        metagraphs.size(), g.num_nodes(), CountTransform::kLog1p);
    auto matcher = CreateMatcher(MatcherKind::kSymISO);
    for (uint32_t i = 0; i < metagraphs.size(); ++i) {
      SymmetryInfo sym = AnalyzeSymmetry(metagraphs[i]);
      SymPairCountingSink sink(sym, 5'000'000);
      matcher->Match(g, metagraphs[i], &sink);
      fx->index->Commit(i, sink, sym.aut_size());
    }
    fx->index->Finalize();
    auto users = g.NodesOfType(0);
    fx->users.assign(users.begin(), users.end());
    fx->weights.assign(metagraphs.size(), 0.7);
    return fx;
  }();
  return *f;
}

void BM_IndexPairDot(benchmark::State& state) {
  IndexFixture& f = SharedIndex();
  util::Rng rng(5);
  for (auto _ : state) {
    NodeId x = f.users[rng.UniformInt(f.users.size())];
    NodeId y = f.users[rng.UniformInt(f.users.size())];
    benchmark::DoNotOptimize(f.index->PairDot(x, y, f.weights));
  }
}
BENCHMARK(BM_IndexPairDot);

void BM_MgpProximity(benchmark::State& state) {
  IndexFixture& f = SharedIndex();
  util::Rng rng(6);
  for (auto _ : state) {
    NodeId x = f.users[rng.UniformInt(f.users.size())];
    NodeId y = f.users[rng.UniformInt(f.users.size())];
    benchmark::DoNotOptimize(MgpProximity(*f.index, f.weights, x, y));
  }
}
BENCHMARK(BM_MgpProximity);

void BM_OnlineQueryTopK(benchmark::State& state) {
  IndexFixture& f = SharedIndex();
  util::Rng rng(7);
  for (auto _ : state) {
    NodeId q = f.users[rng.UniformInt(f.users.size())];
    benchmark::DoNotOptimize(
        RankByProximity(*f.index, f.weights, q, f.index->Candidates(q), 10));
  }
}
BENCHMARK(BM_OnlineQueryTopK);

}  // namespace

BENCHMARK_MAIN();
