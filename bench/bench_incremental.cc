// Incremental index refresh vs full rebuild under streaming graph
// updates (the IndexMaintainer path), across datasets and update rates.
//
// Setup per (dataset, rate): SliceByArrival splits the generated graph
// into a base plus `slices` arrival batches; the base is mined + matched
// once, then each batch is Append()ed and Refresh()ed — affected
// metagraphs refresh via delta-rooted enumeration over the new edges
// once their raw-count ledgers are warm (the first refresh full-matches
// them to capture the ledgers) — while a from-scratch rebuild (re-match
// EVERY metagraph over the same grown graph) is timed alongside as the
// baseline.
//
// Hard gates (exit 1), not just numbers:
//   * at EVERY refresh point the refreshed index must serialize to text
//     bytes IDENTICAL to the full rebuild's — the affected-set soundness
//     contract (unaffected metagraphs provably kept their counts);
//   * at the lowest update rate (most slices, smallest deltas) the total
//     delta-refresh time must beat the total rebuild time — incremental
//     maintenance must actually pay for itself where it claims to.
//
// Both the refresh re-match and the rebuild run single-threaded so the
// comparison is compute-fair; --threads only accelerates the one-time
// base offline build. --json=PATH writes BENCH_incremental.json in CI;
// METAPROX_BENCH_SCALE=full for paper-sized graphs.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/index_maintainer.h"
#include "datagen/arrival.h"
#include "util/stopwatch.h"

using namespace metaprox;         // NOLINT
using namespace metaprox::bench;  // NOLINT

namespace {

[[noreturn]] void Fatal(const std::string& message) {
  std::fprintf(stderr, "FATAL: %s\n", message.c_str());
  std::exit(1);
}

std::string SerializeText(const MetagraphVectorIndex& index) {
  std::ostringstream os;
  auto status = index.WriteTo(os);
  if (!status.ok()) Fatal("text serialization: " + status.ToString());
  return os.str();
}

struct Case {
  std::string name;
  datagen::Dataset ds;
};

std::vector<Case> MakeCases() {
  std::vector<Case> cases;
  {
    datagen::FacebookConfig cfg;
    cfg.num_users = FullScale() ? 1200 : 300;
    cases.push_back({"facebook", datagen::GenerateFacebook(cfg, 7)});
  }
  {
    datagen::LinkedInConfig cfg;
    cfg.num_users = FullScale() ? 2500 : 400;
    cases.push_back({"linkedin", datagen::GenerateLinkedIn(cfg, 7)});
  }
  {
    datagen::CitationConfig cfg;
    cfg.num_papers = FullScale() ? 1500 : 400;
    cases.push_back({"citation", datagen::GenerateCitation(cfg, 7)});
  }
  return cases;
}

/// Re-matches every metagraph over `graph` into a fresh index — what a
/// maintenance-free deployment would do on each update batch.
MetagraphVectorIndex FullRebuild(const Graph& graph,
                                 const std::vector<MinedMetagraph>& mined,
                                 const Matcher& matcher,
                                 CountTransform transform,
                                 uint64_t embedding_cap) {
  MetagraphVectorIndex index(mined.size(), graph.num_nodes(), transform,
                             /*num_shards=*/1);
  for (uint32_t i = 0; i < mined.size(); ++i) {
    SymPairCountingSink sink(mined[i].symmetry, embedding_cap);
    matcher.Match(graph, mined[i].graph, &sink);
    index.Commit(i, sink, mined[i].symmetry.aut_size());
  }
  index.Seal();
  index.Finalize();
  return index;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  std::printf("== incremental refresh vs full rebuild ==\n");
  JsonReport report("incremental");

  // Update rates: few slices = big deltas per refresh (high rate), many
  // slices = small deltas (low rate) — where incremental refresh must win.
  const std::vector<size_t> slice_counts = {2, 8};
  const size_t low_rate_slices = slice_counts.back();
  bool low_rate_gate_ok = true;

  for (Case& c : MakeCases()) {
    for (size_t slices : slice_counts) {
      datagen::ArrivalConfig arrival;
      arrival.num_slices = slices;
      arrival.base_fraction = 0.6;
      datagen::ArrivalTimeline timeline =
          datagen::SliceByArrival(c.ds.graph, c.ds.user_type, arrival);

      EngineOptions options;
      options.miner.anchor_type = c.ds.user_type;
      options.miner.min_support = 3;
      options.miner.max_nodes = 4;
      options.num_threads = BenchThreads();
      options.num_shards = BenchShards();
      SearchEngine engine(timeline.base, options);
      engine.Mine();
      engine.MatchAll();

      MaintainerOptions mopts;
      mopts.matcher = options.matcher;
      mopts.embedding_cap = options.embedding_cap;
      mopts.num_threads = 1;  // compute-fair vs the serial rebuild
      IndexMaintainer maintainer(engine, mopts);
      auto matcher = CreateMatcher(options.matcher);

      double refresh_total = 0.0;
      double rebuild_total = 0.0;
      for (size_t i = 0; i < timeline.slices.size(); ++i) {
        auto appended = maintainer.Append(timeline.slices[i]);
        if (!appended.ok()) Fatal("append: " + appended.ToString());
        RefreshStats rstats;
        auto snapshot = maintainer.Refresh(&rstats);
        if (!snapshot.ok()) {
          Fatal("refresh: " + snapshot.status().ToString());
        }
        refresh_total += rstats.total_seconds;

        util::Stopwatch rebuild_timer;
        MetagraphVectorIndex rebuilt = FullRebuild(
            (*snapshot)->graph(), engine.metagraphs(), *matcher,
            engine.index().transform(), options.embedding_cap);
        const double rebuild_seconds = rebuild_timer.ElapsedSeconds();
        rebuild_total += rebuild_seconds;

        // The correctness gate: the refreshed index and the from-scratch
        // rebuild must be indistinguishable on disk.
        if (SerializeText((*snapshot)->index()) != SerializeText(rebuilt)) {
          Fatal(c.name + " slices=" + std::to_string(slices) + " batch " +
                std::to_string(i) +
                ": refreshed index differs from full rebuild");
        }

        std::printf(
            "%-9s slices=%zu batch %zu: +%zu nodes +%zu edges, "
            "%zu/%zu affected (%zu delta), refresh %.1f ms vs rebuild "
            "%.1f ms (%.1fx)\n",
            c.name.c_str(), slices, i, rstats.appended_nodes,
            rstats.appended_edges, rstats.affected_metagraphs,
            engine.metagraphs().size(), rstats.delta_metagraphs,
            rstats.total_seconds * 1e3, rebuild_seconds * 1e3,
            rstats.total_seconds > 0.0
                ? rebuild_seconds / rstats.total_seconds
                : 0.0);
        report.BeginRecord()
            .Str("dataset", c.name)
            .Num("slices", static_cast<double>(slices))
            .Num("batch", static_cast<double>(i))
            .Num("appended_nodes",
                 static_cast<double>(rstats.appended_nodes))
            .Num("appended_edges",
                 static_cast<double>(rstats.appended_edges))
            .Num("affected_metagraphs",
                 static_cast<double>(rstats.affected_metagraphs))
            .Num("delta_metagraphs",
                 static_cast<double>(rstats.delta_metagraphs))
            .Num("num_metagraphs",
                 static_cast<double>(engine.metagraphs().size()))
            .Num("refresh_s", rstats.total_seconds)
            .Num("rematch_s", rstats.rematch_seconds)
            .Num("rebuild_s", rebuild_seconds);
      }
      std::printf("%-9s slices=%zu total: refresh %.1f ms, rebuild %.1f ms\n",
                  c.name.c_str(), slices, refresh_total * 1e3,
                  rebuild_total * 1e3);
      if (slices == low_rate_slices && refresh_total >= rebuild_total) {
        std::fprintf(stderr,
                     "GATE: %s at %zu slices: refresh total %.1f ms did "
                     "not beat rebuild total %.1f ms\n",
                     c.name.c_str(), slices, refresh_total * 1e3,
                     rebuild_total * 1e3);
        low_rate_gate_ok = false;
      }
    }
  }

  if (!low_rate_gate_ok) {
    Fatal("incremental refresh lost to full rebuild at the lowest "
          "update rate");
  }
  if (!report.WriteIfRequested()) return 1;
  std::printf("all refresh points byte-identical to full rebuilds; "
              "incremental wins at the lowest update rate\n");
  return 0;
}
