// Shared harness for the paper-reproduction benchmarks (Table II/III,
// Fig. 4 and Fig. 6-11). Each bench binary regenerates one table or figure;
// this header centralizes dataset construction, method training/evaluation
// and scale selection.
//
// Scale: the default ("small") finishes the whole bench suite in minutes on
// a laptop while preserving every qualitative shape the paper reports. Set
// METAPROX_BENCH_SCALE=full for paper-sized runs.
#ifndef METAPROX_BENCH_BENCH_COMMON_H_
#define METAPROX_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/simple.h"
#include "baselines/srw.h"
#include "core/engine.h"
#include "datagen/citation.h"
#include "datagen/facebook.h"
#include "datagen/linkedin.h"
#include "eval/evaluate.h"
#include "eval/splits.h"

namespace metaprox::bench {

/// True when METAPROX_BENCH_SCALE=full.
bool FullScale();

/// Offline worker threads (mining + matching) used by every bench engine
/// (EngineOptions::num_threads; 0 = hardware concurrency). Resolution
/// order: SetBenchThreads() / ParseBenchArgs(--threads=N) >
/// METAPROX_BENCH_THREADS env var > 1. The default stays serial so
/// per-metagraph timings remain comparable to the paper's single-threaded
/// evaluation environment.
unsigned BenchThreads();
void SetBenchThreads(unsigned num_threads);

/// Vector-index pair-table shards (EngineOptions::num_shards; 0 = auto).
/// Resolution order: SetBenchShards() / ParseBenchArgs(--shards=S) >
/// METAPROX_BENCH_SHARDS env var > 0 (auto). Shard count never changes
/// any bench result — only commit-phase lock contention.
unsigned BenchShards();
void SetBenchShards(unsigned num_shards);

/// Path for the machine-readable JSON report (`BENCH_<name>.json`
/// convention in CI). Resolution order: SetBenchJsonPath() /
/// ParseBenchArgs(--json=PATH) > METAPROX_BENCH_JSON env var > "" (write
/// nothing). See JsonReport.
const std::string& BenchJsonPath();
void SetBenchJsonPath(std::string path);

/// Parses the shared bench flags (`--threads=N`, `--shards=S`,
/// `--json=PATH`) from argv. Unknown arguments are left alone; malformed
/// known flags exit(2).
void ParseBenchArgs(int argc, char** argv);

/// Accumulates one bench binary's per-configuration results and writes
/// them as one JSON document, so CI can archive BENCH_*.json artifacts
/// and a perf trajectory accumulates across runs (the human tables print
/// regardless). Shape:
///
///   {"bench": "<name>", "scale": "small"|"full",
///    "records": [{"<key>": <num>|"<str>", ...}, ...]}
///
/// Usage:
///   JsonReport report("online_batch");
///   report.BeginRecord().Num("batch", 8).Num("speedup", 6.2);
///   ...
///   report.WriteIfRequested();   // no-op unless --json / env set
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name);

  /// Starts a new record; subsequent Num/Str calls land in it.
  JsonReport& BeginRecord();
  /// Adds a numeric field (full %.17g precision; non-finite -> null).
  JsonReport& Num(const std::string& key, double value);
  /// Adds a string field (JSON-escaped).
  JsonReport& Str(const std::string& key, const std::string& value);

  /// Writes the document to BenchJsonPath(). Returns false (with a
  /// message on stderr) only on IO failure; disabled == trivially true.
  bool WriteIfRequested() const;

 private:
  std::string bench_name_;
  // Field values are stored pre-serialized as JSON fragments.
  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

/// One benchmark dataset with its (mined, not yet matched) engine.
struct Bundle {
  datagen::Dataset ds;
  std::unique_ptr<SearchEngine> engine;
  std::vector<NodeId> user_pool;

  const GroundTruth& cls(size_t i) const { return ds.classes[i]; }
};

/// Facebook-like bundle. Defaults: small = 500 users, full = 1200.
Bundle MakeFacebook(int max_nodes = 5, uint32_t users_small = 500,
                    uint32_t users_full = 1200, uint64_t seed = 1);

/// LinkedIn-like bundle. Defaults: small = 800 users, full = 2500.
Bundle MakeLinkedIn(int max_nodes = 5, uint32_t users_small = 800,
                    uint32_t users_full = 2500, uint64_t seed = 1);

/// Mean NDCG@10 / MAP@10 of an MGP weight vector over test queries.
struct Scores {
  double ndcg = 0.0;
  double map = 0.0;
};
Scores EvalWeights(const SearchEngine& engine, const GroundTruth& gt,
                   std::span<const NodeId> test_queries,
                   const std::vector<double>& weights, size_t k = 10);

/// Trains and evaluates SRW on (a subsample of) the examples.
/// `max_queries` caps the number of distinct training queries used by SRW's
/// expensive differentiated power iteration.
Scores EvalSrw(const Graph& graph, TypeId user_type, const GroundTruth& gt,
               std::span<const Example> examples,
               std::span<const NodeId> test_queries, size_t max_queries,
               size_t k = 10);

/// The five accuracy methods of Fig. 6/7.
enum class Method { kMgp, kMpp, kMgpU, kMgpB, kSrw };
const char* MethodName(Method m);

/// Indices of path metagraphs (the MPP active set / dual-stage seeds).
std::vector<uint32_t> PathIndices(const SearchEngine& engine);

/// Standard training options used across benches.
TrainOptions DefaultTrainOptions();

// ---- dual-stage sweep machinery (Fig. 8 / Fig. 10) -----------------------
//
// To sweep many candidate-set sizes |K| without re-matching, the bundle is
// matched once with *per-metagraph* wall-clock timing; a configuration's
// matching cost is then the sum of its members' times, and its accuracy is
// obtained by training with the corresponding `active` set (equivalent to
// matching only that subset, since inactive metagraphs contribute nothing).

struct SweepContext {
  std::vector<double> per_metagraph_seconds;  // indexed by metagraph
  std::vector<uint32_t> seeds;                // metapath indices
  double seed_seconds = 0.0;                  // sum over seeds
  double total_seconds = 0.0;                 // sum over all metagraphs
  StructuralSimilarityCache ss_cache;
};

/// Matches every mined metagraph of `b` individually (timing each) and
/// finalizes the index.
SweepContext PrepareSweep(Bundle& b);

/// Trains on `active` and evaluates; `seconds` is the matching cost of the
/// active set under `ctx`.
struct SweepPoint {
  double ndcg = 0.0;
  double map = 0.0;
  double seconds = 0.0;
};
SweepPoint EvalActiveSet(const Bundle& b, const SweepContext& ctx,
                         const GroundTruth& gt,
                         std::span<const Example> examples,
                         std::span<const NodeId> test_queries,
                         const std::vector<uint32_t>& active);

/// Non-seed metagraphs ordered by descending candidate heuristic H
/// (Eq. 7) given trained seed weights; `reversed` yields the RCH ablation.
std::vector<uint32_t> RankCandidates(const Bundle& b, SweepContext& ctx,
                                     const std::vector<double>& seed_weights,
                                     bool reversed);

}  // namespace metaprox::bench

#endif  // METAPROX_BENCH_BENCH_COMMON_H_
