// Reference comparison against PathSim (Sun et al. [4]): the unsupervised
// single-metapath similarity that the paper's related-work section
// contrasts with. For each class we give PathSim its best possible
// metapath (selected on the training split) and compare with supervised
// MGP — quantifying what supervision over the full metagraph family adds.
#include <cstdio>
#include <iostream>

#include "baselines/pathsim.h"
#include "bench_common.h"
#include "util/table_printer.h"

using namespace metaprox;        // NOLINT
using namespace metaprox::bench; // NOLINT

namespace {

// All symmetric anchor-to-anchor metapaths of the dataset's schema, up to
// 5 nodes: user-X-user and user-X-user-X-user for every attribute type X
// plus the pure user-user paths.
std::vector<std::vector<TypeId>> CandidateMetapaths(const Graph& g,
                                                    TypeId anchor) {
  std::vector<std::vector<TypeId>> paths;
  for (TypeId t = 0; t < g.num_types(); ++t) {
    if (g.EdgeCountBetweenTypes(anchor, t) == 0) continue;
    if (t == anchor) {
      paths.push_back({anchor, anchor, anchor});
    } else {
      paths.push_back({anchor, t, anchor});
      paths.push_back({anchor, t, anchor, t, anchor});
    }
  }
  return paths;
}

void RunClass(const Bundle& b, const GroundTruth& gt,
              util::TablePrinter& table) {
  util::Rng rng(83);
  QuerySplit split = SplitQueries(gt, 0.2, rng);
  const size_t num_examples = FullScale() ? 1000 : 400;
  auto examples =
      SampleExamples(gt, split.train, b.user_pool, num_examples, rng);

  // PathSim: pick the metapath with the best training NDCG.
  auto metapaths = CandidateMetapaths(b.ds.graph, b.ds.user_type);
  double best_train = -1.0;
  std::unique_ptr<PathSim> best;
  std::string best_name;
  for (const auto& types : metapaths) {
    auto ps = std::make_unique<PathSim>(b.ds.graph, types);
    Ranker ranker = [&](NodeId q) {
      auto scored = ps->Rank(q, 10);
      std::vector<NodeId> out;
      for (auto& [node, s] : scored) out.push_back(node);
      return out;
    };
    double train_ndcg =
        EvaluateRanker(gt, split.train, ranker, 10).ndcg;
    if (train_ndcg > best_train) {
      best_train = train_ndcg;
      best = std::move(ps);
      std::string name;
      for (size_t i = 0; i < types.size(); ++i) {
        if (i) name += "-";
        name += b.ds.graph.type_registry().Name(types[i]);
      }
      best_name = name;
    }
  }
  Ranker pathsim_ranker = [&](NodeId q) {
    auto scored = best->Rank(q, 10);
    std::vector<NodeId> out;
    for (auto& [node, s] : scored) out.push_back(node);
    return out;
  };
  EvalResult ps_eval = EvaluateRanker(gt, split.test, pathsim_ranker, 10);

  // Supervised MGP over the full mined set.
  TrainResult model =
      TrainMgp(b.engine->index(), examples, DefaultTrainOptions());
  Scores mgp = EvalWeights(*b.engine, gt, split.test, model.weights);

  table.AddRow({gt.class_name(), "PathSim (" + best_name + ")",
                util::FormatDouble(ps_eval.ndcg, 4),
                util::FormatDouble(ps_eval.map, 4)});
  table.AddRow({gt.class_name(), "MGP (supervised)",
                util::FormatDouble(mgp.ndcg, 4),
                util::FormatDouble(mgp.map, 4)});
}

}  // namespace

int main() {
  std::printf("== Reference: PathSim (best single metapath) vs MGP ==\n");
  std::printf("expected shape: MGP matches or beats PathSim everywhere; the "
              "margin is largest on conjunctive classes a single metapath "
              "cannot express.\n\n");

  util::TablePrinter table({"class", "method", "NDCG@10", "MAP@10"});
  {
    Bundle li = MakeLinkedIn(5, 600, 2500);
    li.engine->MatchAll();
    for (const GroundTruth& gt : li.ds.classes) RunClass(li, gt, table);
  }
  {
    Bundle fb = MakeFacebook(5, 400, 1200);
    fb.engine->MatchAll();
    for (const GroundTruth& gt : fb.ds.classes) RunClass(fb, gt, table);
  }
  table.Print(std::cout);
  return 0;
}
