#include "bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "util/macros.h"
#include "util/parse.h"
#include "util/rng.h"

namespace metaprox::bench {

bool FullScale() {
  const char* scale = std::getenv("METAPROX_BENCH_SCALE");
  return scale != nullptr && std::strcmp(scale, "full") == 0;
}

namespace {
int g_bench_threads = -1;  // -1 = not set via flag/API
int g_bench_shards = -1;   // -1 = not set via flag/API

// Function-local static: no global-construction ordering to worry about.
struct JsonPathState {
  bool set = false;
  std::string path;
};
JsonPathState& BenchJsonState() {
  static JsonPathState state;
  return state;
}
}  // namespace

// Strict count parsing lives in util::ParseCount (util/parse.h), shared
// with mgps_cli; strtoul alone accepts "-1" (wrapping to ~4e9 worker
// threads) and trailing garbage.

unsigned BenchThreads() {
  if (g_bench_threads >= 0) return static_cast<unsigned>(g_bench_threads);
  if (const char* env = std::getenv("METAPROX_BENCH_THREADS")) {
    unsigned value = 0;
    if (!util::ParseCount(env, &value)) {
      std::fprintf(stderr,
                   "bad METAPROX_BENCH_THREADS value: %s (expected a "
                   "non-negative integer)\n",
                   env);
      std::exit(2);
    }
    return value;
  }
  return 1;
}

void SetBenchThreads(unsigned num_threads) {
  g_bench_threads = static_cast<int>(num_threads);
}

unsigned BenchShards() {
  if (g_bench_shards >= 0) return static_cast<unsigned>(g_bench_shards);
  if (const char* env = std::getenv("METAPROX_BENCH_SHARDS")) {
    unsigned value = 0;
    if (!util::ParseCount(env, &value)) {
      std::fprintf(stderr,
                   "bad METAPROX_BENCH_SHARDS value: %s (expected a "
                   "non-negative integer)\n",
                   env);
      std::exit(2);
    }
    return value;
  }
  return 0;  // auto
}

void SetBenchShards(unsigned num_shards) {
  g_bench_shards = static_cast<int>(num_shards);
}

const std::string& BenchJsonPath() {
  JsonPathState& state = BenchJsonState();
  if (!state.set) {
    if (const char* env = std::getenv("METAPROX_BENCH_JSON")) {
      SetBenchJsonPath(env);
    }
  }
  return state.path;
}

void SetBenchJsonPath(std::string path) {
  JsonPathState& state = BenchJsonState();
  state.set = true;
  state.path = std::move(path);
}

void ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      unsigned value = 0;
      if (!util::ParseCount(arg + 10, &value)) {
        std::fprintf(stderr, "bad flag: %s (expected --threads=N)\n", arg);
        std::exit(2);
      }
      SetBenchThreads(value);
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      unsigned value = 0;
      if (!util::ParseCount(arg + 9, &value)) {
        std::fprintf(stderr, "bad flag: %s (expected --shards=S)\n", arg);
        std::exit(2);
      }
      SetBenchShards(value);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      if (arg[7] == '\0') {
        std::fprintf(stderr, "bad flag: %s (expected --json=PATH)\n", arg);
        std::exit(2);
      }
      SetBenchJsonPath(arg + 7);
    }
  }
}

JsonReport::JsonReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

JsonReport& JsonReport::BeginRecord() {
  records_.emplace_back();
  return *this;
}

namespace {

std::string JsonQuote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

JsonReport& JsonReport::Num(const std::string& key, double value) {
  MX_CHECK_MSG(!records_.empty(), "call BeginRecord() before Num()");
  records_.back().emplace_back(key, JsonNumber(value));
  return *this;
}

JsonReport& JsonReport::Str(const std::string& key, const std::string& value) {
  MX_CHECK_MSG(!records_.empty(), "call BeginRecord() before Str()");
  records_.back().emplace_back(key, JsonQuote(value));
  return *this;
}

bool JsonReport::WriteIfRequested() const {
  const std::string& path = BenchJsonPath();
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write bench JSON to %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\"bench\": %s, \"scale\": \"%s\", \"records\": [",
               JsonQuote(bench_name_).c_str(), FullScale() ? "full" : "small");
  for (size_t r = 0; r < records_.size(); ++r) {
    std::fprintf(f, "%s\n  {", r == 0 ? "" : ",");
    for (size_t i = 0; i < records_[r].size(); ++i) {
      std::fprintf(f, "%s%s: %s", i == 0 ? "" : ", ",
                   JsonQuote(records_[r][i].first).c_str(),
                   records_[r][i].second.c_str());
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n]}\n");
  const bool write_ok = std::ferror(f) == 0;
  const bool ok = (std::fclose(f) == 0) && write_ok;
  if (!ok) {
    std::fprintf(stderr, "short write of bench JSON %s\n", path.c_str());
    return false;
  }
  std::printf("wrote bench JSON: %s\n", path.c_str());
  return true;
}

namespace {

Bundle FinishBundle(datagen::Dataset ds, int max_nodes) {
  Bundle b;
  b.ds = std::move(ds);
  EngineOptions options;
  options.miner.anchor_type = b.ds.user_type;
  options.miner.min_support = 5;
  options.miner.max_nodes = max_nodes;
  options.num_threads = BenchThreads();
  options.num_shards = BenchShards();
  b.engine = std::make_unique<SearchEngine>(b.ds.graph, options);
  b.engine->Mine();
  auto pool = b.ds.graph.NodesOfType(b.ds.user_type);
  b.user_pool.assign(pool.begin(), pool.end());
  return b;
}

}  // namespace

Bundle MakeFacebook(int max_nodes, uint32_t users_small, uint32_t users_full,
                    uint64_t seed) {
  datagen::FacebookConfig cfg;
  cfg.num_users = FullScale() ? users_full : users_small;
  return FinishBundle(datagen::GenerateFacebook(cfg, seed), max_nodes);
}

Bundle MakeLinkedIn(int max_nodes, uint32_t users_small, uint32_t users_full,
                    uint64_t seed) {
  datagen::LinkedInConfig cfg;
  cfg.num_users = FullScale() ? users_full : users_small;
  return FinishBundle(datagen::GenerateLinkedIn(cfg, seed), max_nodes);
}

Scores EvalWeights(const SearchEngine& engine, const GroundTruth& gt,
                   std::span<const NodeId> test_queries,
                   const std::vector<double>& weights, size_t k) {
  Ranker ranker = [&](NodeId q) {
    auto scored = engine.Query(MgpModel{weights}, q, k);
    std::vector<NodeId> out;
    out.reserve(scored.size());
    for (auto& [node, score] : scored) out.push_back(node);
    return out;
  };
  EvalResult r = EvaluateRanker(gt, test_queries, ranker, k);
  return {r.ndcg, r.map};
}

Scores EvalSrw(const Graph& graph, TypeId user_type, const GroundTruth& gt,
               std::span<const Example> examples,
               std::span<const NodeId> test_queries, size_t max_queries,
               size_t k) {
  // Subsample examples to at most `max_queries` distinct queries: SRW's
  // gradient costs a differentiated power iteration per distinct query.
  std::vector<Example> subset;
  std::unordered_map<NodeId, size_t> seen;
  for (const Example& e : examples) {
    auto it = seen.find(e.q);
    if (it == seen.end()) {
      if (seen.size() >= max_queries) continue;
      seen.emplace(e.q, 1);
    }
    subset.push_back(e);
  }

  SrwOptions options;
  options.train_iterations = 8;
  options.power_iterations = 10;
  SupervisedRandomWalk srw(graph, options);
  srw.Train(subset);

  Ranker ranker = [&](NodeId q) {
    auto scored = srw.Rank(q, user_type, k);
    std::vector<NodeId> out;
    out.reserve(scored.size());
    for (auto& [node, score] : scored) out.push_back(node);
    return out;
  };
  EvalResult r = EvaluateRanker(gt, test_queries, ranker, k);
  return {r.ndcg, r.map};
}

const char* MethodName(Method m) {
  switch (m) {
    case Method::kMgp:
      return "MGP";
    case Method::kMpp:
      return "MPP";
    case Method::kMgpU:
      return "MGP-U";
    case Method::kMgpB:
      return "MGP-B";
    case Method::kSrw:
      return "SRW";
  }
  return "?";
}

std::vector<uint32_t> PathIndices(const SearchEngine& engine) {
  std::vector<uint32_t> paths;
  const auto& metagraphs = engine.metagraphs();
  for (uint32_t i = 0; i < metagraphs.size(); ++i) {
    if (metagraphs[i].is_path) paths.push_back(i);
  }
  return paths;
}

SweepContext PrepareSweep(Bundle& b) {
  SweepContext ctx;
  const size_t m = b.engine->metagraphs().size();
  // One (possibly parallel) matching pass; the engine times every
  // metagraph's task individually, which is exactly the per-metagraph cost
  // model the sweep needs.
  std::vector<uint32_t> all(m);
  std::iota(all.begin(), all.end(), 0);
  b.engine->MatchSubset(all);
  ctx.per_metagraph_seconds.resize(m, 0.0);
  for (uint32_t i = 0; i < m; ++i) {
    ctx.per_metagraph_seconds[i] = b.engine->match_stats()[i].seconds;
    ctx.total_seconds += ctx.per_metagraph_seconds[i];
  }
  b.engine->FinalizeIndex();
  ctx.seeds = PathIndices(*b.engine);
  for (uint32_t s : ctx.seeds) {
    ctx.seed_seconds += ctx.per_metagraph_seconds[s];
  }
  return ctx;
}

SweepPoint EvalActiveSet(const Bundle& b, const SweepContext& ctx,
                         const GroundTruth& gt,
                         std::span<const Example> examples,
                         std::span<const NodeId> test_queries,
                         const std::vector<uint32_t>& active) {
  TrainOptions options = DefaultTrainOptions();
  options.active = active;
  TrainResult r = TrainMgp(b.engine->index(), examples, options);
  Scores s = EvalWeights(*b.engine, gt, test_queries, r.weights);
  SweepPoint point;
  point.ndcg = s.ndcg;
  point.map = s.map;
  for (uint32_t i : active) point.seconds += ctx.per_metagraph_seconds[i];
  return point;
}

std::vector<uint32_t> RankCandidates(const Bundle& b, SweepContext& ctx,
                                     const std::vector<double>& seed_weights,
                                     bool reversed) {
  std::vector<double> h = ComputeCandidateHeuristic(
      b.engine->metagraphs(), ctx.seeds, seed_weights, &ctx.ss_cache);
  std::vector<uint32_t> ranked;
  for (uint32_t j = 0; j < h.size(); ++j) {
    if (h[j] >= 0.0) ranked.push_back(j);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](uint32_t a, uint32_t c) { return h[a] > h[c]; });
  if (reversed) std::reverse(ranked.begin(), ranked.end());
  return ranked;
}

TrainOptions DefaultTrainOptions() {
  TrainOptions options;
  options.max_iterations = FullScale() ? 500 : 300;
  options.restarts = FullScale() ? 5 : 3;
  return options;
}

}  // namespace metaprox::bench
