// Ablation (design choice from Sect. II: "we can further transform these
// vectors, such as applying logarithm to the counts"): raw counts vs log1p
// transform in the metagraph vectors, measured by test accuracy per class.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

using namespace metaprox;        // NOLINT
using namespace metaprox::bench; // NOLINT

namespace {

struct Variant {
  const char* name;
  CountTransform transform;
};

void RunDataset(const datagen::Dataset& ds, util::TablePrinter& table) {
  const Variant variants[] = {{"raw", CountTransform::kRaw},
                              {"log1p", CountTransform::kLog1p}};
  for (const Variant& variant : variants) {
    EngineOptions options;
    options.miner.anchor_type = ds.user_type;
    options.miner.min_support = 5;
    options.miner.max_nodes = 4;
    options.transform = variant.transform;
    SearchEngine engine(ds.graph, options);
    engine.Mine();
    engine.MatchAll();

    auto pool_span = ds.graph.NodesOfType(ds.user_type);
    std::vector<NodeId> pool(pool_span.begin(), pool_span.end());
    for (const GroundTruth& gt : ds.classes) {
      util::Rng rng(61);
      QuerySplit split = SplitQueries(gt, 0.2, rng);
      auto examples = SampleExamples(gt, split.train, pool, 300, rng);
      TrainResult model =
          TrainMgp(engine.index(), examples, DefaultTrainOptions());
      Scores s = EvalWeights(engine, gt, split.test, model.weights);
      table.AddRow({ds.name, gt.class_name(), variant.name,
                    util::FormatDouble(s.ndcg, 4),
                    util::FormatDouble(s.map, 4)});
    }
  }
}

}  // namespace

int main() {
  std::printf("== Ablation: count transform in metagraph vectors ==\n\n");
  util::TablePrinter table({"dataset", "class", "transform", "NDCG@10",
                            "MAP@10"});
  {
    datagen::LinkedInConfig cfg;
    cfg.num_users = FullScale() ? 2000 : 600;
    auto ds = datagen::GenerateLinkedIn(cfg, 1);
    RunDataset(ds, table);
  }
  {
    datagen::FacebookConfig cfg;
    cfg.num_users = FullScale() ? 1000 : 400;
    auto ds = datagen::GenerateFacebook(cfg, 1);
    RunDataset(ds, table);
  }
  table.Print(std::cout);
  return 0;
}
