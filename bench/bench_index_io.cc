// Index artifact IO bench: file size and save/load wall clock of every
// persistence path over one matched offline index — v1 text, v2 binary
// compact (delta/varint + LZW), v2 binary aligned, and the memory-mapped
// load of the aligned artifact (with and without checksum verification).
//
// Hard gates (exit 1), not just numbers:
//   * the compact binary artifact must be >= 3x smaller than text,
//   * every load — eager or mapped, any format — must re-serialize to
//     text bytes IDENTICAL to the original index (lossless round trip),
//   * the mapped load must be faster than the eager text parse (the
//     zero-copy startup claim).
//
// Flags/env: --threads=N offline build threads, --json=PATH machine-
// readable report (BENCH_index_io.json in CI); METAPROX_BENCH_SCALE=full
// for a paper-sized graph.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "index/metagraph_vectors.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace metaprox;         // NOLINT
using namespace metaprox::bench;  // NOLINT

namespace {

[[noreturn]] void Fatal(const std::string& message) {
  std::fprintf(stderr, "FATAL: %s\n", message.c_str());
  std::exit(1);
}

double MedianSeconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct LoadTiming {
  double load_s = 0.0;        // LoadFromFile/MapFromFile alone
  double load_query_s = 0.0;  // load + one query-shaped index walk
};

// Times `load()` and, on the loaded index, one candidate walk + dots for
// a fixed node (the "time to first answer" a restarting server cares
// about). Medians over `rounds` runs.
template <typename LoadFn>
LoadTiming TimeLoads(const LoadFn& load, int rounds, NodeId probe,
                     const std::vector<double>& weights) {
  std::vector<double> load_samples, query_samples;
  for (int r = 0; r < rounds; ++r) {
    util::Stopwatch timer;
    auto index = load();
    if (!index.ok()) Fatal("load failed: " + index.status().ToString());
    load_samples.push_back(timer.ElapsedSeconds());
    double acc = index->NodeDot(probe, weights);
    for (NodeId c : index->Candidates(probe)) {
      acc += index->PairDot(probe, c, weights);
    }
    query_samples.push_back(timer.ElapsedSeconds());
    if (acc < 0.0) std::printf(" ");  // keep the walk observable
  }
  return {MedianSeconds(load_samples), MedianSeconds(query_samples)};
}

std::string SerializeText(const MetagraphVectorIndex& index) {
  std::ostringstream os;
  auto status = index.WriteTo(os);
  if (!status.ok()) Fatal("text serialization: " + status.ToString());
  return os.str();
}

std::string FmtMs(double seconds) {
  return util::FormatDouble(seconds * 1e3, 3);
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  SetBenchThreads(std::max(BenchThreads(), 1u));
  std::printf("== index artifact IO: text vs binary vs mmap ==\n");

  Bundle b = MakeFacebook(4, 500, 1200);
  b.engine->MatchAll();
  const MetagraphVectorIndex& index = b.engine->index();
  std::printf("index: %zu metagraphs, %zu nodes, %zu pair rows\n\n",
              index.num_metagraphs(), index.num_graph_nodes(),
              index.num_pairs());

  // The lossless-round-trip reference: whatever the load path, the loaded
  // index must reproduce these exact bytes.
  const std::string reference_text = SerializeText(index);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "metaprox_bench_index_io";
  std::filesystem::create_directories(dir);

  struct Artifact {
    const char* name;
    std::filesystem::path path;
    double write_s = 0.0;
    uintmax_t bytes = 0;
  };
  std::vector<Artifact> artifacts = {
      {"text", dir / "index_text", 0.0, 0},
      {"binary-compact", dir / "index_compact", 0.0, 0},
      {"binary-aligned", dir / "index_aligned", 0.0, 0},
  };
  for (Artifact& artifact : artifacts) {
    util::Stopwatch timer;
    std::ofstream out(artifact.path, std::ios::binary);
    util::Status written =
        std::string(artifact.name) == "text"
            ? index.WriteTo(out)
        : std::string(artifact.name) == "binary-compact"
            ? index.WriteBinaryTo(out, BinaryLayout::kCompact)
            : index.WriteBinaryTo(out, BinaryLayout::kAligned);
    out.close();
    if (!written.ok() || !out) {
      Fatal(std::string(artifact.name) + " write failed");
    }
    artifact.write_s = timer.ElapsedSeconds();
    artifact.bytes = std::filesystem::file_size(artifact.path);
  }

  const NodeId probe = b.user_pool.empty() ? 0 : b.user_pool.front();
  const std::vector<double> weights(index.num_metagraphs(), 1.0);
  const int kRounds = 7;

  // Eager loads of each artifact + the two mapped flavors of the aligned
  // artifact (CRC-verified, and the trusted fast path with verification
  // off — the latter touches no payload pages at map time).
  struct LoadRow {
    std::string name;
    double write_s;
    uintmax_t bytes;
    LoadTiming timing;
  };
  std::vector<LoadRow> rows;
  for (const Artifact& artifact : artifacts) {
    rows.push_back({artifact.name, artifact.write_s, artifact.bytes,
                    TimeLoads(
                        [&] {
                          return MetagraphVectorIndex::LoadFromFile(
                              artifact.path.string());
                        },
                        kRounds, probe, weights)});
  }
  IndexLoadOptions mmap_verified;
  mmap_verified.use_mmap = true;
  rows.push_back({"aligned-mmap", 0.0, artifacts[2].bytes,
                  TimeLoads(
                      [&] {
                        return MetagraphVectorIndex::LoadFromFile(
                            artifacts[2].path.string(), mmap_verified);
                      },
                      kRounds, probe, weights)});
  IndexLoadOptions mmap_trusted;
  mmap_trusted.use_mmap = true;
  mmap_trusted.verify_checksums = false;
  rows.push_back({"aligned-mmap-noverify", 0.0, artifacts[2].bytes,
                  TimeLoads(
                      [&] {
                        return MetagraphVectorIndex::LoadFromFile(
                            artifacts[2].path.string(), mmap_trusted);
                      },
                      kRounds, probe, weights)});

  // ---- lossless round trip, every path ------------------------------------
  for (const LoadRow& row : rows) {
    IndexLoadOptions options;
    options.use_mmap = row.name.rfind("aligned-mmap", 0) == 0;
    options.verify_checksums = row.name != "aligned-mmap-noverify";
    const std::filesystem::path& path = row.name == "text" ? artifacts[0].path
                                        : row.name == "binary-compact"
                                            ? artifacts[1].path
                                            : artifacts[2].path;
    auto loaded = MetagraphVectorIndex::LoadFromFile(path.string(), options);
    if (!loaded.ok()) Fatal(row.name + ": " + loaded.status().ToString());
    if (SerializeText(*loaded) != reference_text) {
      Fatal(row.name + ": loaded index re-serializes differently — the "
                       "round trip lost information");
    }
  }
  std::printf("all load paths re-serialize to identical text bytes\n\n");

  util::TablePrinter table({"artifact", "bytes", "write (ms)", "load (ms)",
                            "load+query (ms)"});
  for (const LoadRow& row : rows) {
    table.AddRow({row.name, std::to_string(row.bytes),
                  row.write_s > 0.0 ? FmtMs(row.write_s) : "-",
                  FmtMs(row.timing.load_s), FmtMs(row.timing.load_query_s)});
  }
  table.Print(std::cout);

  const double compression =
      static_cast<double>(artifacts[0].bytes) /
      static_cast<double>(artifacts[1].bytes);
  const double text_load_s = rows[0].timing.load_s;
  const double mmap_load_s = rows[3].timing.load_s;
  const double mmap_speedup = text_load_s / mmap_load_s;
  std::printf("\ncompact vs text size: %.2fx smaller\n", compression);
  std::printf("mmap vs eager text load: %.1fx faster (%.3f ms vs %.3f ms)\n",
              mmap_speedup, mmap_load_s * 1e3, text_load_s * 1e3);

  // ---- hard gates ----------------------------------------------------------
  if (compression < 3.0) {
    Fatal("compact artifact is only " + util::FormatDouble(compression, 2) +
          "x smaller than text (gate: >= 3x)");
  }
  if (mmap_load_s >= text_load_s) {
    Fatal("mapped load is not faster than the eager text parse");
  }

  JsonReport report("index_io");
  for (const LoadRow& row : rows) {
    report.BeginRecord()
        .Str("artifact", row.name)
        .Num("bytes", static_cast<double>(row.bytes))
        .Num("write_s", row.write_s)
        .Num("load_s", row.timing.load_s)
        .Num("load_query_s", row.timing.load_query_s);
  }
  report.BeginRecord()
      .Str("artifact", "summary")
      .Num("compact_vs_text_compression", compression)
      .Num("mmap_vs_text_load_speedup", mmap_speedup);
  if (!report.WriteIfRequested()) return 1;

  std::filesystem::remove_all(dir);
  std::printf("\nPASS\n");
  return 0;
}
