// Query-server throughput: end-to-end (TCP, wire protocol, micro-batching
// batcher) latency/throughput of server::QueryServer over the batched
// online phase, swept over the accumulation window / batch cap and the
// number of concurrent client connections, vs. the one-query-per-request
// configuration (max_batch = 1) on the same server stack — plus a mixed
// two-model workload (half the stream naming a second registry model via
// protocol-v2 lines) measuring what per-(model, k) batch grouping costs.
//
// What micro-batching amortizes end to end: every window of queries is
// split into per-(model, k) groups, each ranked by ONE
// SearchEngine::BatchQuery call, so touched node rows are gathered once
// per group instead of once per query, through the engine's reusable
// epoch-marked BatchScratch (O(touched) per call, not O(|V|)). A mixed
// window forms two groups — the coalescing stats (batches, per-model
// serves) land in the JSON report.
//
// Also verifies the server determinism contract on every configuration:
// every response must carry exactly the nodes and bitwise-identical
// scores of an offline engine.Query() for that node UNDER THE MODEL THE
// REQUEST NAMED (scores cross the wire as %.17g text, which round-trips
// the double bits).
//
// Flags/env: --threads/--shards apply to the engine (offline build AND
// the server's scoring pool); --json / METAPROX_BENCH_JSON write the
// machine-readable report; METAPROX_BENCH_SCALE=full for a longer stream.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/simple.h"
#include "bench_common.h"
#include "server/client.h"
#include "server/model_registry.h"
#include "server/query_server.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

using namespace metaprox;         // NOLINT
using namespace metaprox::bench;  // NOLINT

namespace {

constexpr size_t kTopK = 10;
constexpr int kReps = 2;  // best-of reps: timing noise, not results
constexpr const char* kDefaultModel = "uniform";
constexpr const char* kSecondModel = "evens";

struct Config {
  const char* label;
  size_t clients;
  size_t max_batch;
  uint64_t window_micros;
  /// Mixed workload: every odd stream index queries kSecondModel through
  /// a v2 `Q <model> <node> <k>` line (even indices stay v1 lines against
  /// the default model).
  bool mixed = false;
};

/// Whether stream index i of a mixed run goes to the second model.
bool UsesSecondModel(const Config& config, size_t i) {
  return config.mixed && i % 2 == 1;
}

// One client connection's slice of the stream, fully pipelined. Returns
// false (with a message) on any transport/protocol failure or on any
// response that differs from the offline reference of the model that
// request named.
bool RunClientSlice(uint16_t port, const Config& config,
                    const std::vector<NodeId>& stream, size_t begin,
                    size_t end,
                    const std::vector<QueryResult>& reference_default,
                    const std::vector<QueryResult>& reference_second,
                    std::string* error) {
  auto client = server::QueryClient::Connect("127.0.0.1", port);
  if (!client.ok()) {
    *error = client.status().ToString();
    return false;
  }
  for (size_t i = begin; i < end; ++i) {
    auto status = UsesSecondModel(config, i)
                      ? client->SendQuery(kSecondModel, stream[i], kTopK)
                      : client->SendQuery(stream[i], kTopK);
    if (!status.ok()) {
      *error = status.ToString();
      return false;
    }
  }
  for (size_t i = begin; i < end; ++i) {
    auto response = client->ReceiveResponse();
    if (!response.ok()) {
      *error = response.status().ToString();
      return false;
    }
    const QueryResult& expected = UsesSecondModel(config, i)
                                      ? reference_second[stream[i]]
                                      : reference_default[stream[i]];
    if (response->query != stream[i] ||
        response->entries.size() != expected.size()) {
      *error = "response shape differs from offline Query";
      return false;
    }
    for (size_t r = 0; r < expected.size(); ++r) {
      // Bitwise equality: %.17g round-trips the double exactly, so any
      // difference here is a real determinism break, not formatting.
      if (response->entries[r].node != expected[r].first ||
          response->entries[r].score != expected[r].second) {
        *error = "response differs from offline Query (rank " +
                 std::to_string(r) + " of node " +
                 std::to_string(stream[i]) + ")";
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  std::printf("== query server: micro-batching window x clients sweep ==\n");
  std::printf("hardware concurrency: %zu\n\n", util::ResolveNumThreads(0));

  Bundle b = MakeFacebook(5, 450, 1200);
  b.engine->MatchAll();
  const MgpModel model{UniformWeights(b.engine->index())};
  // A second model over the SAME index (odd metagraphs muted): the mixed
  // configuration serves both from one registry, which is the whole
  // multi-class point — no second engine, no second index.
  MgpModel second = model;
  for (size_t i = 1; i < second.weights.size(); i += 2) {
    second.weights[i] = 0.0;
  }

  // Query stream: the user pool cycled to a fixed length (service-style
  // repeat traffic), split contiguously across the client connections.
  const size_t num_queries = FullScale() ? 10000 : 2000;
  std::vector<NodeId> stream;
  stream.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    stream.push_back(b.user_pool[i % b.user_pool.size()]);
  }

  // Offline references, indexed by node id: what every server response
  // must equal bit for bit, per model.
  std::vector<QueryResult> reference_default(b.ds.graph.num_nodes());
  std::vector<QueryResult> reference_second(b.ds.graph.num_nodes());
  for (NodeId u : b.user_pool) {
    reference_default[u] = b.engine->Query(model, u, kTopK);
    reference_second[u] = b.engine->Query(second, u, kTopK);
  }

  const std::vector<Config> configs = {
      {"unbatched", 4, 1, 0},
      {"window 8", 4, 8, 1000},
      {"window 64", 4, 64, 2000},
      {"window 64, 8 conns", 8, 64, 2000},
      {"window 64, two models", 4, 64, 2000, /*mixed=*/true},
  };

  util::TablePrinter table({"config", "clients", "max batch", "window (us)",
                            "time (s)", "queries/s", "speedup", "batches"});
  JsonReport report("server_throughput");
  double unbatched_qps = 0.0;
  double best_batched_qps = 0.0;
  bool all_ok = true;
  for (const Config& config : configs) {
    double best_seconds = -1.0;
    uint64_t batches = 0;
    uint64_t serves_default = 0;
    uint64_t serves_second = 0;
    for (int rep = 0; rep < kReps && all_ok; ++rep) {
      // A fresh registry per rep keeps the per-model serve counters an
      // exact record of this run.
      server::ModelRegistry registry(model.weights.size());
      if (!registry.Load(kDefaultModel, model).ok() ||
          !registry.Load(kSecondModel, second).ok()) {
        std::fprintf(stderr, "registry load failed\n");
        return 1;
      }
      server::ServerOptions options;
      options.port = 0;
      options.max_batch = config.max_batch;
      options.window_micros = config.window_micros;
      options.default_k = kTopK;
      options.default_model = kDefaultModel;
      server::QueryServer server(b.engine.get(), &registry, options);
      auto status = server.Start();
      if (!status.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }

      std::vector<std::string> errors(config.clients);
      std::vector<char> ok(config.clients, 1);
      std::vector<std::thread> threads;
      threads.reserve(config.clients);
      util::Stopwatch timer;
      for (size_t c = 0; c < config.clients; ++c) {
        const size_t begin = stream.size() * c / config.clients;
        const size_t end = stream.size() * (c + 1) / config.clients;
        threads.emplace_back([&, c, begin, end] {
          ok[c] = RunClientSlice(server.port(), config, stream, begin, end,
                                 reference_default, reference_second,
                                 &errors[c])
                      ? 1
                      : 0;
        });
      }
      for (std::thread& thread : threads) thread.join();
      const double seconds = timer.ElapsedSeconds();
      batches = server.stats().batches;
      serves_default = registry.Get(kDefaultModel)->serves_count();
      serves_second = registry.Get(kSecondModel)->serves_count();
      server.Stop();

      for (size_t c = 0; c < config.clients; ++c) {
        if (!ok[c]) {
          std::fprintf(stderr, "FATAL [%s, client %zu]: %s\n", config.label,
                       c, errors[c].c_str());
          all_ok = false;
        }
      }
      if (best_seconds < 0.0 || seconds < best_seconds) {
        best_seconds = seconds;
      }
    }
    if (!all_ok) break;

    const double qps = static_cast<double>(stream.size()) / best_seconds;
    if (config.max_batch == 1) {
      unbatched_qps = qps;
    } else if (!config.mixed) {
      best_batched_qps = std::max(best_batched_qps, qps);
    }
    const double speedup = unbatched_qps > 0.0 ? qps / unbatched_qps : 1.0;
    table.AddRow({config.label, std::to_string(config.clients),
                  std::to_string(config.max_batch),
                  std::to_string(config.window_micros),
                  util::FormatDouble(best_seconds, 3),
                  util::FormatDouble(qps, 0),
                  util::FormatDouble(speedup, 2) + "x",
                  std::to_string(batches)});
    report.BeginRecord()
        .Str("config", config.label)
        .Num("clients", static_cast<double>(config.clients))
        .Num("max_batch", static_cast<double>(config.max_batch))
        .Num("window_micros", static_cast<double>(config.window_micros))
        .Num("mixed_models", config.mixed ? 1.0 : 0.0)
        .Num("seconds", best_seconds)
        .Num("queries_per_second", qps)
        .Num("speedup_vs_unbatched", speedup)
        .Num("batches", static_cast<double>(batches))
        .Num("serves_" + std::string(kDefaultModel),
             static_cast<double>(serves_default))
        .Num("serves_" + std::string(kSecondModel),
             static_cast<double>(serves_second))
        .Num("mean_group_size",
             batches > 0 ? static_cast<double>(serves_default +
                                               serves_second) /
                               static_cast<double>(batches)
                         : 0.0);
  }
  table.Print(std::cout);
  if (!report.WriteIfRequested()) return 1;

  std::printf(
      "\nexpected shape: micro-batching (max batch >= 8) clearly beats the "
      "unbatched row — a window is ranked by one BatchQuery call per "
      "(model, k) group, so node rows are gathered once per group instead "
      "of once per query. The two-model row splits each window into two "
      "groups (see serves_%s/serves_%s and mean_group_size in the JSON), "
      "the per-model price of multi-class serving on one index. Every "
      "response checked bitwise against offline Query() under its model.\n",
      kDefaultModel, kSecondModel);

  if (!all_ok) {
    std::fprintf(stderr,
                 "FATAL: server responses differ from offline Query\n");
    return 1;
  }
  if (best_batched_qps <= unbatched_qps) {
    std::fprintf(stderr,
                 "FATAL: micro-batching does not beat one-query-per-request "
                 "throughput (%.0f vs %.0f q/s)\n",
                 best_batched_qps, unbatched_qps);
    return 1;
  }
  return 0;
}
