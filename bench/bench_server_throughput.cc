// Query-server throughput: end-to-end (TCP, wire protocol, micro-batching
// batcher) throughput of server::QueryServer over the batched online
// phase, centered on MULTI-MODEL windows: streams striping 1, 2 and 4
// registry models are served twice — with the shared-window scheduler
// (one SearchEngine::BatchQueryMulti per k group: the window's row union
// gathered once, every row scored under all its models by the
// multi-weight kernels) and with the legacy per-(model, k) grouping (one
// BatchQuery per model) — plus the unbatched baseline (max_batch = 1).
//
// The bench HARD-FAILS unless the shared window beats per-model grouping
// at every mixed-model count: that superiority is this subsystem's reason
// to exist, so losing it is a regression, not a footnote. The
// gather-amortization counters (rows_gathered, rows_saved_vs_per_model,
// models_per_window) and a closed-loop per-model p50 latency probe land
// in the JSON report next to the throughput numbers.
//
// Also verifies the server determinism contract on every configuration:
// every response must carry exactly the nodes and bitwise-identical
// scores of an offline engine.Query() for that node UNDER THE MODEL THE
// REQUEST NAMED (scores cross the wire as %.17g text, which round-trips
// the double bits) — the shared-window and per-group schedules must be
// byte-indistinguishable to clients.
//
// Flags/env: --threads/--shards apply to the engine (offline build AND
// the server's scoring pool); --json / METAPROX_BENCH_JSON write the
// machine-readable report; METAPROX_BENCH_SCALE=full for a longer stream.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/simple.h"
#include "bench_common.h"
#include "server/client.h"
#include "server/model_registry.h"
#include "server/query_server.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

using namespace metaprox;         // NOLINT
using namespace metaprox::bench;  // NOLINT

namespace {

constexpr size_t kTopK = 10;
constexpr int kReps = 3;  // best-of reps: timing noise, not results
// Model 0 is the server default (v1 `Q <node>` lines); the rest arrive as
// protocol-v2 `Q <model> <node> <k>` lines.
const char* const kModelNames[] = {"uniform", "evens", "odds", "taper"};
constexpr size_t kMaxModels = 4;

struct Config {
  const char* label;
  size_t clients;
  size_t max_batch;
  uint64_t window_micros;
  /// Stream index i queries model i % num_models — every window mixes
  /// every model.
  size_t num_models;
  /// Shared-window scheduler (BatchQueryMulti per k group) vs. the legacy
  /// per-(model, k) grouping. Same responses either way; only the
  /// schedule — and the throughput — differs.
  bool shared;
};

size_t ModelOf(const Config& config, size_t i) {
  return i % config.num_models;
}

// One client connection's slice of the stream, fully pipelined. Returns
// false (with a message) on any transport/protocol failure or on any
// response that differs from the offline reference of the model that
// request named.
bool RunClientSlice(uint16_t port, const Config& config,
                    const std::vector<NodeId>& stream, size_t begin,
                    size_t end,
                    const std::vector<std::vector<QueryResult>>& references,
                    std::string* error) {
  auto client = server::QueryClient::Connect("127.0.0.1", port);
  if (!client.ok()) {
    *error = client.status().ToString();
    return false;
  }
  for (size_t i = begin; i < end; ++i) {
    const size_t m = ModelOf(config, i);
    auto status = m == 0
                      ? client->SendQuery(stream[i], kTopK)
                      : client->SendQuery(kModelNames[m], stream[i], kTopK);
    if (!status.ok()) {
      *error = status.ToString();
      return false;
    }
  }
  for (size_t i = begin; i < end; ++i) {
    auto response = client->ReceiveResponse();
    if (!response.ok()) {
      *error = response.status().ToString();
      return false;
    }
    const QueryResult& expected = references[ModelOf(config, i)][stream[i]];
    if (response->query != stream[i] ||
        response->entries.size() != expected.size()) {
      *error = "response shape differs from offline Query";
      return false;
    }
    for (size_t r = 0; r < expected.size(); ++r) {
      // Bitwise equality: %.17g round-trips the double exactly, so any
      // difference here is a real determinism break, not formatting.
      if (response->entries[r].node != expected[r].first ||
          response->entries[r].score != expected[r].second) {
        *error = "response differs from offline Query (rank " +
                 std::to_string(r) + " of node " +
                 std::to_string(stream[i]) + ")";
        return false;
      }
    }
  }
  return true;
}

// Closed-loop p50 round-trip latency per model: one connection, one query
// outstanding at a time (so each sample pays the full accumulation
// window — the latency a sparse client actually sees).
std::vector<double> ProbeP50Millis(uint16_t port, const Config& config,
                                   const std::vector<NodeId>& stream) {
  std::vector<double> p50(config.num_models, -1.0);
  auto client = server::QueryClient::Connect("127.0.0.1", port);
  if (!client.ok()) return p50;
  const size_t samples_per_model = 40;
  for (size_t m = 0; m < config.num_models; ++m) {
    std::vector<double> millis;
    millis.reserve(samples_per_model);
    for (size_t s = 0; s < samples_per_model; ++s) {
      const NodeId node = stream[(s * 17) % stream.size()];
      util::Stopwatch timer;
      auto status = m == 0 ? client->SendQuery(node, kTopK)
                           : client->SendQuery(kModelNames[m], node, kTopK);
      if (!status.ok()) return p50;
      auto response = client->ReceiveResponse();
      if (!response.ok()) return p50;
      millis.push_back(timer.ElapsedSeconds() * 1e3);
    }
    std::nth_element(millis.begin(), millis.begin() + millis.size() / 2,
                     millis.end());
    p50[m] = millis[millis.size() / 2];
  }
  return p50;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  std::printf(
      "== query server: shared-window vs per-model grouping, 1/2/4 models "
      "==\n");
  std::printf("hardware concurrency: %zu\n\n", util::ResolveNumThreads(0));

  Bundle b = MakeFacebook(5, 450, 1200);
  b.engine->MatchAll();
  // Four models over the SAME index — the multi-class point: one engine,
  // one finalized index, N weight vectors. uniform serves v1 lines;
  // evens/odds mute complementary halves (so ranking under the wrong
  // model would be caught); taper weights every metagraph differently.
  std::vector<MgpModel> models(kMaxModels);
  models[0].weights = UniformWeights(b.engine->index());
  const size_t n_weights = models[0].weights.size();
  for (size_t m = 1; m < kMaxModels; ++m) {
    models[m].weights.assign(n_weights, 0.0);
  }
  for (size_t i = 0; i < n_weights; ++i) {
    if (i % 2 == 0) models[1].weights[i] = 1.0;
    if (i % 2 == 1) models[2].weights[i] = 1.0;
    models[3].weights[i] = 1.0 / static_cast<double>(1 + i % 7);
  }

  // Query stream: the user pool cycled to a fixed length (service-style
  // repeat traffic), split contiguously across the client connections.
  const size_t num_queries = FullScale() ? 10000 : 2000;
  std::vector<NodeId> stream;
  stream.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    stream.push_back(b.user_pool[i % b.user_pool.size()]);
  }

  // Offline references, [model][node]: what every server response must
  // equal bit for bit.
  std::vector<std::vector<QueryResult>> references(kMaxModels);
  for (size_t m = 0; m < kMaxModels; ++m) {
    references[m].resize(b.ds.graph.num_nodes());
    for (NodeId u : b.user_pool) {
      references[m][u] = b.engine->Query(models[m], u, kTopK);
    }
  }

  const std::vector<Config> configs = {
      {"unbatched", 4, 1, 0, 1, true},
      {"1 model, shared", 4, 64, 2000, 1, true},
      {"2 models, per-group", 4, 64, 2000, 2, false},
      {"2 models, shared", 4, 64, 2000, 2, true},
      {"4 models, per-group", 4, 64, 2000, 4, false},
      {"4 models, shared", 4, 64, 2000, 4, true},
  };

  util::TablePrinter table({"config", "models", "sched", "time (s)",
                            "queries/s", "speedup", "rows saved",
                            "models/window"});
  JsonReport report("server_throughput");
  double unbatched_qps = 0.0;
  double batched_single_qps = 0.0;
  // qps by num_models for the shared-vs-per-group verdict.
  std::vector<double> shared_qps(kMaxModels + 1, 0.0);
  std::vector<double> per_group_qps(kMaxModels + 1, 0.0);
  bool all_ok = true;
  for (const Config& config : configs) {
    double best_seconds = -1.0;
    server::ServerStats stats;
    std::vector<uint64_t> serves(config.num_models, 0);
    std::vector<double> p50(config.num_models, -1.0);
    for (int rep = 0; rep < kReps && all_ok; ++rep) {
      // A fresh registry per rep keeps the per-model serve counters an
      // exact record of this run.
      server::ModelRegistry registry(n_weights);
      for (size_t m = 0; m < kMaxModels; ++m) {
        if (!registry.Load(kModelNames[m], models[m]).ok()) {
          std::fprintf(stderr, "registry load failed\n");
          return 1;
        }
      }
      server::ServerOptions options;
      options.port = 0;
      options.max_batch = config.max_batch;
      options.window_micros = config.window_micros;
      options.default_k = kTopK;
      options.default_model = kModelNames[0];
      options.shared_window_scoring = config.shared;
      server::QueryServer server(b.engine.get(), &registry, options);
      auto status = server.Start();
      if (!status.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }

      std::vector<std::string> errors(config.clients);
      std::vector<char> ok(config.clients, 1);
      std::vector<std::thread> threads;
      threads.reserve(config.clients);
      util::Stopwatch timer;
      for (size_t c = 0; c < config.clients; ++c) {
        const size_t begin = stream.size() * c / config.clients;
        const size_t end = stream.size() * (c + 1) / config.clients;
        threads.emplace_back([&, c, begin, end] {
          ok[c] = RunClientSlice(server.port(), config, stream, begin, end,
                                 references, &errors[c])
                      ? 1
                      : 0;
        });
      }
      for (std::thread& thread : threads) thread.join();
      const double seconds = timer.ElapsedSeconds();
      if (best_seconds < 0.0 || seconds < best_seconds) {
        best_seconds = seconds;
        stats = server.stats();
        for (size_t m = 0; m < config.num_models; ++m) {
          serves[m] = registry.Get(kModelNames[m])->serves_count();
        }
      }
      if (rep == kReps - 1) {
        // Latency probe on the still-running server, after the throughput
        // burst has drained.
        p50 = ProbeP50Millis(server.port(), config, stream);
      }
      server.Stop();

      for (size_t c = 0; c < config.clients; ++c) {
        if (!ok[c]) {
          std::fprintf(stderr, "FATAL [%s, client %zu]: %s\n", config.label,
                       c, errors[c].c_str());
          all_ok = false;
        }
      }
    }
    if (!all_ok) break;

    const double qps = static_cast<double>(stream.size()) / best_seconds;
    if (config.max_batch == 1) {
      unbatched_qps = qps;
    } else if (config.num_models == 1) {
      batched_single_qps = qps;
    } else if (config.shared) {
      shared_qps[config.num_models] = qps;
    } else {
      per_group_qps[config.num_models] = qps;
    }
    const double speedup = unbatched_qps > 0.0 ? qps / unbatched_qps : 1.0;
    const double models_per_window =
        stats.windows > 0 ? static_cast<double>(stats.window_model_groups) /
                                static_cast<double>(stats.windows)
                          : 0.0;
    table.AddRow({config.label, std::to_string(config.num_models),
                  config.shared ? "shared" : "per-group",
                  util::FormatDouble(best_seconds, 3),
                  util::FormatDouble(qps, 0),
                  util::FormatDouble(speedup, 2) + "x",
                  std::to_string(stats.rows_saved_vs_per_model),
                  util::FormatDouble(models_per_window, 2)});
    report.BeginRecord()
        .Str("config", config.label)
        .Num("clients", static_cast<double>(config.clients))
        .Num("max_batch", static_cast<double>(config.max_batch))
        .Num("window_micros", static_cast<double>(config.window_micros))
        .Num("num_models", static_cast<double>(config.num_models))
        .Num("shared_window", config.shared ? 1.0 : 0.0)
        .Num("seconds", best_seconds)
        .Num("queries_per_second", qps)
        .Num("speedup_vs_unbatched", speedup)
        .Num("batches", static_cast<double>(stats.batches))
        .Num("windows", static_cast<double>(stats.windows))
        .Num("rows_gathered", static_cast<double>(stats.rows_gathered))
        .Num("rows_saved_vs_per_model",
             static_cast<double>(stats.rows_saved_vs_per_model))
        .Num("models_per_window", models_per_window);
    for (size_t m = 0; m < config.num_models; ++m) {
      report.Num("serves_" + std::string(kModelNames[m]),
                 static_cast<double>(serves[m]));
      report.Num("p50_ms_" + std::string(kModelNames[m]), p50[m]);
    }
  }
  table.Print(std::cout);

  // The shared-vs-per-group verdict, in the JSON next to the raw numbers.
  for (size_t n : {size_t{2}, size_t{4}}) {
    if (per_group_qps[n] > 0.0 && shared_qps[n] > 0.0) {
      report.BeginRecord()
          .Str("config", "verdict")
          .Num("num_models", static_cast<double>(n))
          .Num("shared_speedup_vs_per_group",
               shared_qps[n] / per_group_qps[n]);
    }
  }
  if (!report.WriteIfRequested()) return 1;

  std::printf(
      "\nexpected shape: batching beats unbatched everywhere; at 2+ models "
      "the shared schedule beats per-model grouping (the window's row "
      "union is gathered once and scored under all models — rows saved "
      "and models/window say how much sharing each window found); p50_ms_* "
      "in the JSON is the closed-loop single-client latency per model. "
      "Every response is checked bitwise against offline Query() under "
      "its model, so the two schedules are provably byte-identical to "
      "clients.\n");

  if (!all_ok) {
    std::fprintf(stderr,
                 "FATAL: server responses differ from offline Query\n");
    return 1;
  }
  if (batched_single_qps <= unbatched_qps) {
    std::fprintf(stderr,
                 "FATAL: micro-batching does not beat one-query-per-request "
                 "throughput (%.0f vs %.0f q/s)\n",
                 batched_single_qps, unbatched_qps);
    return 1;
  }
  for (size_t n : {size_t{2}, size_t{4}}) {
    if (shared_qps[n] <= per_group_qps[n]) {
      std::fprintf(stderr,
                   "FATAL: shared-window scoring loses to per-model "
                   "grouping at %zu models (%.0f vs %.0f q/s)\n",
                   n, shared_qps[n], per_group_qps[n]);
      return 1;
    }
  }
  return 0;
}
