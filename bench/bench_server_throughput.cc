// Query-server throughput: end-to-end (TCP, wire protocol, micro-batching
// batcher) throughput of server::QueryServer over the batched online
// phase, centered on MULTI-MODEL windows: streams striping 1, 2 and 4
// registry models are served twice — with the shared-window scheduler
// (one SearchEngine::BatchQueryMulti per k group: the window's row union
// gathered once, every row scored under all its models by the
// multi-weight kernels) and with the legacy per-(model, k) grouping (one
// BatchQuery per model) — plus the unbatched baseline (max_batch = 1).
//
// The bench HARD-FAILS unless the shared window beats per-model grouping
// at every mixed-model count: that superiority is this subsystem's reason
// to exist, so losing it is a regression, not a footnote. The
// gather-amortization counters (rows_gathered, rows_saved_vs_per_model,
// models_per_window) and a closed-loop per-model p50 latency probe land
// in the JSON report next to the throughput numbers.
//
// Also verifies the server determinism contract on every configuration:
// every response must carry exactly the nodes and bitwise-identical
// scores of an offline engine.Query() for that node UNDER THE MODEL THE
// REQUEST NAMED (scores cross the wire as %.17g text, which round-trips
// the double bits) — the shared-window and per-group schedules must be
// byte-indistinguishable to clients.
//
// The C10K section (reactor-era): ONE epoll-driven driver thread holds
// 512+ pipelined nonblocking connections against the server's own epoll
// reactor, with deliberately stalled connections mixed in; every normal
// response is byte-diffed against the offline reference and per-query
// p50/p99 land in the JSON next to the slow-consumer eviction count.
// `--c10k-only` runs just this section (CI smoke wiring).
//
// Flags/env: --threads/--shards apply to the engine (offline build AND
// the server's scoring pool); --json / METAPROX_BENCH_JSON write the
// machine-readable report; METAPROX_BENCH_SCALE=full for a longer stream.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "server/reactor.h"
#include "server/wire.h"
#include "util/socket.h"

#include "baselines/simple.h"
#include "bench_common.h"
#include "server/client.h"
#include "server/index_registry.h"
#include "server/model_registry.h"
#include "server/query_server.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

using namespace metaprox;         // NOLINT
using namespace metaprox::bench;  // NOLINT

namespace {

constexpr size_t kTopK = 10;
constexpr int kReps = 3;  // best-of reps: timing noise, not results
// Model 0 is the server default (v1 `Q <node>` lines); the rest arrive as
// protocol-v2 `Q <model> <node> <k>` lines.
const char* const kModelNames[] = {"uniform", "evens", "odds", "taper"};
constexpr size_t kMaxModels = 4;

struct Config {
  const char* label;
  size_t clients;
  size_t max_batch;
  uint64_t window_micros;
  /// Stream index i queries model i % num_models — every window mixes
  /// every model.
  size_t num_models;
  /// Shared-window scheduler (BatchQueryMulti per k group) vs. the legacy
  /// per-(model, k) grouping. Same responses either way; only the
  /// schedule — and the throughput — differs.
  bool shared;
};

size_t ModelOf(const Config& config, size_t i) {
  return i % config.num_models;
}

// One client connection's slice of the stream, fully pipelined. Returns
// false (with a message) on any transport/protocol failure or on any
// response that differs from the offline reference of the model that
// request named.
bool RunClientSlice(uint16_t port, const Config& config,
                    const std::vector<NodeId>& stream, size_t begin,
                    size_t end,
                    const std::vector<std::vector<QueryResult>>& references,
                    std::string* error) {
  auto client = server::QueryClient::Connect("127.0.0.1", port);
  if (!client.ok()) {
    *error = client.status().ToString();
    return false;
  }
  for (size_t i = begin; i < end; ++i) {
    const size_t m = ModelOf(config, i);
    auto status = m == 0
                      ? client->SendQuery(stream[i], kTopK)
                      : client->SendQuery(kModelNames[m], stream[i], kTopK);
    if (!status.ok()) {
      *error = status.ToString();
      return false;
    }
  }
  for (size_t i = begin; i < end; ++i) {
    auto response = client->ReceiveResponse();
    if (!response.ok()) {
      *error = response.status().ToString();
      return false;
    }
    const QueryResult& expected = references[ModelOf(config, i)][stream[i]];
    if (response->query != stream[i] ||
        response->entries.size() != expected.size()) {
      *error = "response shape differs from offline Query";
      return false;
    }
    for (size_t r = 0; r < expected.size(); ++r) {
      // Bitwise equality: %.17g round-trips the double exactly, so any
      // difference here is a real determinism break, not formatting.
      if (response->entries[r].node != expected[r].first ||
          response->entries[r].score != expected[r].second) {
        *error = "response differs from offline Query (rank " +
                 std::to_string(r) + " of node " +
                 std::to_string(stream[i]) + ")";
        return false;
      }
    }
  }
  return true;
}

// Closed-loop p50 round-trip latency per model: one connection, one query
// outstanding at a time (so each sample pays the full accumulation
// window — the latency a sparse client actually sees).
std::vector<double> ProbeP50Millis(uint16_t port, const Config& config,
                                   const std::vector<NodeId>& stream) {
  std::vector<double> p50(config.num_models, -1.0);
  auto client = server::QueryClient::Connect("127.0.0.1", port);
  if (!client.ok()) return p50;
  const size_t samples_per_model = 40;
  for (size_t m = 0; m < config.num_models; ++m) {
    std::vector<double> millis;
    millis.reserve(samples_per_model);
    for (size_t s = 0; s < samples_per_model; ++s) {
      const NodeId node = stream[(s * 17) % stream.size()];
      util::Stopwatch timer;
      auto status = m == 0 ? client->SendQuery(node, kTopK)
                           : client->SendQuery(kModelNames[m], node, kTopK);
      if (!status.ok()) return p50;
      auto response = client->ReceiveResponse();
      if (!response.ok()) return p50;
      millis.push_back(timer.ElapsedSeconds() * 1e3);
    }
    std::nth_element(millis.begin(), millis.begin() + millis.size() / 2,
                     millis.end());
    p50[m] = millis[millis.size() / 2];
  }
  return p50;
}

// ---- C10K: one epoll driver, hundreds of pipelined connections ------------

// The process holds both ends of every connection (client fd + server fd
// + listener + two epoll instances), so the default 1024-fd rlimit is too
// tight for 512 connections. Raise the soft limit toward the hard one.
bool RaiseFdLimit(rlim_t want) {
  struct rlimit lim;
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return false;
  if (lim.rlim_cur >= want) return true;
  lim.rlim_cur = std::min(want, lim.rlim_max);
  return setrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur >= want;
}

struct C10kConn {
  util::Socket socket;
  util::LineBuffer input;
  std::string outbuf;  // request bytes not yet accepted by the socket
  size_t out_off = 0;
  // FIFO of queries on the wire: node + the instant its request line was
  // handed to the kernel-bound buffer (the latency clock).
  std::deque<std::pair<NodeId, std::chrono::steady_clock::time_point>>
      awaiting;
  size_t issued = 0;
  size_t done = 0;
  bool want_write = false;
  bool reg_read = true;
};

struct C10kResult {
  bool ok = false;
  std::string error;
  double seconds = 0.0;
  double p50_ms = -1.0;
  double p99_ms = -1.0;
  size_t responses = 0;
};

constexpr size_t kC10kDepth = 4;  // outstanding queries per connection

// Drives `num_conns` connections to `per_conn` verified responses each
// from a single thread multiplexed over server::EpollLoop — the same
// reactor substrate the server runs on, here playing the client side.
C10kResult RunC10kDriver(uint16_t port, size_t num_conns, size_t per_conn,
                         const std::vector<NodeId>& stream,
                         const std::vector<QueryResult>& reference) {
  C10kResult result;
  auto loop = server::EpollLoop::Create();
  if (!loop.ok()) {
    result.error = loop.status().ToString();
    return result;
  }

  // Per-connection deterministic query schedule, and the exact response
  // line (sans terminator) each query must come back as.
  auto node_of = [&](size_t conn, size_t i) {
    return stream[(conn * 31 + i * 7) % stream.size()];
  };

  std::vector<C10kConn> conns(num_conns);
  for (size_t c = 0; c < num_conns; ++c) {
    auto socket = util::ConnectTcp("127.0.0.1", port);
    if (!socket.ok()) {
      result.error = "connect " + std::to_string(c) + ": " +
                     socket.status().ToString();
      return result;
    }
    conns[c].socket = std::move(*socket);
    if (!util::SetNonBlocking(conns[c].socket).ok() ||
        !loop->Add(conns[c].socket.fd(), c, /*want_read=*/true,
                   /*want_write=*/false)
             .ok()) {
      result.error = "register " + std::to_string(c);
      return result;
    }
  }

  std::vector<double> latencies_ms;
  latencies_ms.reserve(num_conns * per_conn);
  size_t total_done = 0;
  std::string failure;

  auto flush = [&](size_t c) {
    C10kConn& conn = conns[c];
    while (conn.out_off < conn.outbuf.size()) {
      auto chunk = util::SendSome(
          conn.socket, std::string_view(conn.outbuf).substr(conn.out_off));
      if (!chunk.ok()) {
        failure = "send on conn " + std::to_string(c) + ": " +
                  chunk.status().ToString();
        return;
      }
      if (chunk->would_block) break;
      conn.out_off += chunk->bytes;
    }
    if (conn.out_off == conn.outbuf.size()) {
      conn.outbuf.clear();
      conn.out_off = 0;
    }
    const bool want_write = conn.out_off < conn.outbuf.size();
    if (want_write != conn.want_write) {
      conn.want_write = want_write;
      (void)loop->Mod(conn.socket.fd(), c, conn.reg_read, conn.want_write);
    }
  };

  auto top_up = [&](size_t c) {
    C10kConn& conn = conns[c];
    while (conn.issued < per_conn && conn.awaiting.size() < kC10kDepth) {
      const NodeId node = node_of(c, conn.issued);
      conn.outbuf += server::BuildQueryRequest(node, kTopK);
      conn.awaiting.emplace_back(node, std::chrono::steady_clock::now());
      ++conn.issued;
    }
    flush(c);
  };

  auto on_readable = [&](size_t c) {
    C10kConn& conn = conns[c];
    char buf[16 * 1024];
    while (failure.empty()) {
      auto chunk = util::RecvSome(conn.socket, buf, sizeof(buf));
      if (!chunk.ok()) {
        failure = "recv on conn " + std::to_string(c) + ": " +
                  chunk.status().ToString();
        return;
      }
      if (chunk->would_block) break;
      if (chunk->eof) {
        failure = "conn " + std::to_string(c) + " closed by server after " +
                  std::to_string(conn.done) + " responses";
        return;
      }
      conn.input.Append(std::string_view(buf, chunk->bytes));
      std::string line;
      while (conn.input.TakeLine(&line)) {
        if (conn.awaiting.empty()) {
          failure = "unsolicited response on conn " + std::to_string(c);
          return;
        }
        auto [node, sent_at] = conn.awaiting.front();
        conn.awaiting.pop_front();
        std::string expected =
            server::BuildQueryResponse(node, reference[node]);
        expected.pop_back();  // LineBuffer already stripped the '\n'
        if (line != expected) {
          failure = "conn " + std::to_string(c) +
                    ": response differs from offline Query for node " +
                    std::to_string(node);
          return;
        }
        latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - sent_at)
                .count());
        ++conn.done;
        ++total_done;
      }
      if (conn.input.overflowed()) {
        failure = "response line overflow on conn " + std::to_string(c);
        return;
      }
    }
    top_up(c);
  };

  const auto started = std::chrono::steady_clock::now();
  for (size_t c = 0; c < num_conns; ++c) {
    top_up(c);
    if (!failure.empty()) break;
  }
  std::vector<server::EpollLoop::Event> events;
  while (failure.empty() && total_done < num_conns * per_conn) {
    auto n = loop->Wait(/*timeout_millis=*/10000, &events);
    if (!n.ok()) {
      failure = n.status().ToString();
      break;
    }
    if (*n == 0) {
      failure = "driver stalled: " + std::to_string(total_done) + "/" +
                std::to_string(num_conns * per_conn) + " responses";
      break;
    }
    for (size_t e = 0; e < *n && failure.empty(); ++e) {
      const size_t c = static_cast<size_t>(events[e].tag);
      if (events[e].error) {
        failure = "socket error on conn " + std::to_string(c);
        break;
      }
      if (events[e].writable) flush(c);
      if (events[e].readable) on_readable(c);
    }
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - started)
                       .count();
  if (!failure.empty()) {
    result.error = failure;
    return result;
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = latencies_ms[latencies_ms.size() / 2];
  result.p99_ms = latencies_ms[latencies_ms.size() * 99 / 100];
  result.responses = total_done;
  result.ok = true;
  return result;
}

// The C10K section proper: one server, `num_conns` well-behaved pipelined
// connections driven by the epoll driver above, plus a couple of
// deliberately stalled connections (huge pipelined bursts, never read a
// byte) that must be evicted without the normal traffic noticing.
// Returns a process exit code.
int RunC10k(server::IndexRegistry& indexes, const MgpModel& default_model,
            const std::vector<NodeId>& stream,
            const std::vector<QueryResult>& reference, JsonReport& report) {
  const size_t num_conns = 512;
  const size_t per_conn = 16;
  const size_t num_stalled = 2;
  std::printf(
      "\n== C10K: %zu pipelined connections over one epoll driver, "
      "%zu stalled ==\n",
      num_conns, num_stalled);
  if (!RaiseFdLimit(4096)) {
    std::fprintf(stderr,
                 "warning: could not raise RLIMIT_NOFILE; the C10K section "
                 "may run out of file descriptors\n");
  }

  server::ModelRegistry registry(default_model.weights.size());
  if (!registry.Load(kModelNames[0], default_model).ok()) {
    std::fprintf(stderr, "registry load failed\n");
    return 1;
  }
  server::ServerOptions options;
  options.port = 0;
  options.max_batch = 256;
  options.window_micros = 1000;
  options.default_k = kTopK;
  options.default_model = kModelNames[0];
  options.max_connections = num_conns + num_stalled + 8;
  // Small enough that a genuinely stalled consumer is evicted during the
  // run; a draining client at depth 4 (~1KB of responses in flight) never
  // comes near it.
  options.max_response_queue_bytes = size_t{1} << 20;
  options.num_threads = BenchThreads();
  server::QueryServer server(&indexes, &registry, options);
  auto status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // The stalled connections: each fires one enormous pipelined burst of
  // large-k queries (far more response volume than kernel socket buffers
  // can absorb) and never reads. The send may die mid-burst once the
  // server evicts — that's the expected outcome, not an error.
  std::vector<util::Socket> stalled(num_stalled);
  std::vector<std::thread> stall_threads;
  for (size_t s = 0; s < num_stalled; ++s) {
    auto sock = util::ConnectTcp("127.0.0.1", server.port());
    if (!sock.ok()) {
      std::fprintf(stderr, "stalled connect failed: %s\n",
                   sock.status().ToString().c_str());
      return 1;
    }
    stalled[s] = std::move(*sock);
    stall_threads.emplace_back([&stalled, &stream, s] {
      std::string burst;
      for (int i = 0; i < 6000; ++i) {
        burst += server::BuildQueryRequest(stream[i % stream.size()], 120);
      }
      (void)util::SendAll(stalled[s], burst);
    });
  }

  C10kResult result =
      RunC10kDriver(server.port(), num_conns, per_conn, stream, reference);
  for (std::thread& thread : stall_threads) thread.join();
  const server::ServerStats stats = server.stats();
  server.Stop();

  if (!result.ok) {
    std::fprintf(stderr, "FATAL [c10k]: %s\n", result.error.c_str());
    return 1;
  }
  const double qps = static_cast<double>(result.responses) / result.seconds;
  std::printf(
      "%zu connections x %zu queries (depth %zu): %.3f s, %.0f q/s, "
      "p50 %.2f ms, p99 %.2f ms, %llu slow-consumer evictions\n",
      num_conns, per_conn, kC10kDepth, result.seconds, qps, result.p50_ms,
      result.p99_ms,
      static_cast<unsigned long long>(stats.slow_consumer_evictions));
  report.BeginRecord()
      .Str("config", "c10k")
      .Num("connections", static_cast<double>(num_conns))
      .Num("pipeline_depth", static_cast<double>(kC10kDepth))
      .Num("queries", static_cast<double>(result.responses))
      .Num("stalled_connections", static_cast<double>(num_stalled))
      .Num("seconds", result.seconds)
      .Num("queries_per_second", qps)
      .Num("p50_ms", result.p50_ms)
      .Num("p99_ms", result.p99_ms)
      .Num("slow_consumer_evictions",
           static_cast<double>(stats.slow_consumer_evictions));

  // Every normal response was byte-diffed inside the driver; what's left
  // to assert is that the misbehaving connections were actually evicted
  // (otherwise the stall scenario silently tested nothing).
  if (stats.slow_consumer_evictions == 0) {
    std::fprintf(stderr,
                 "FATAL [c10k]: stalled connections were never evicted — "
                 "the slow-consumer bound did not engage\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  bool c10k_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--c10k-only") == 0) c10k_only = true;
  }
  std::printf(
      "== query server: shared-window vs per-model grouping, 1/2/4 models "
      "==\n");
  std::printf("hardware concurrency: %zu\n\n", util::ResolveNumThreads(0));

  Bundle b = MakeFacebook(5, 450, 1200);
  b.engine->MatchAll();
  server::IndexRegistry indexes(b.engine->Snapshot());
  // Four models over the SAME index — the multi-class point: one engine,
  // one finalized index, N weight vectors. uniform serves v1 lines;
  // evens/odds mute complementary halves (so ranking under the wrong
  // model would be caught); taper weights every metagraph differently.
  std::vector<MgpModel> models(kMaxModels);
  models[0].weights = UniformWeights(b.engine->index());
  const size_t n_weights = models[0].weights.size();
  for (size_t m = 1; m < kMaxModels; ++m) {
    models[m].weights.assign(n_weights, 0.0);
  }
  for (size_t i = 0; i < n_weights; ++i) {
    if (i % 2 == 0) models[1].weights[i] = 1.0;
    if (i % 2 == 1) models[2].weights[i] = 1.0;
    models[3].weights[i] = 1.0 / static_cast<double>(1 + i % 7);
  }

  // Query stream: the user pool cycled to a fixed length (service-style
  // repeat traffic), split contiguously across the client connections.
  const size_t num_queries = FullScale() ? 10000 : 2000;
  std::vector<NodeId> stream;
  stream.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    stream.push_back(b.user_pool[i % b.user_pool.size()]);
  }

  // Offline references, [model][node]: what every server response must
  // equal bit for bit.
  std::vector<std::vector<QueryResult>> references(kMaxModels);
  for (size_t m = 0; m < kMaxModels; ++m) {
    references[m].resize(b.ds.graph.num_nodes());
    for (NodeId u : b.user_pool) {
      references[m][u] = b.engine->Query(models[m], u, kTopK);
    }
  }

  // --c10k-only empties the grouping matrix (the CI smoke job runs just
  // the C10K section; the full matrix runs in the bench job).
  const std::vector<Config> configs =
      c10k_only ? std::vector<Config>{}
                : std::vector<Config>{
                      {"unbatched", 4, 1, 0, 1, true},
                      {"1 model, shared", 4, 64, 2000, 1, true},
                      {"2 models, per-group", 4, 64, 2000, 2, false},
                      {"2 models, shared", 4, 64, 2000, 2, true},
                      {"4 models, per-group", 4, 64, 2000, 4, false},
                      {"4 models, shared", 4, 64, 2000, 4, true},
                  };

  util::TablePrinter table({"config", "models", "sched", "time (s)",
                            "queries/s", "speedup", "rows saved",
                            "models/window"});
  JsonReport report("server_throughput");
  double unbatched_qps = 0.0;
  double batched_single_qps = 0.0;
  // qps by num_models for the shared-vs-per-group verdict.
  std::vector<double> shared_qps(kMaxModels + 1, 0.0);
  std::vector<double> per_group_qps(kMaxModels + 1, 0.0);
  bool all_ok = true;
  for (const Config& config : configs) {
    double best_seconds = -1.0;
    server::ServerStats stats;
    std::vector<uint64_t> serves(config.num_models, 0);
    std::vector<double> p50(config.num_models, -1.0);
    for (int rep = 0; rep < kReps && all_ok; ++rep) {
      // A fresh registry per rep keeps the per-model serve counters an
      // exact record of this run.
      server::ModelRegistry registry(n_weights);
      for (size_t m = 0; m < kMaxModels; ++m) {
        if (!registry.Load(kModelNames[m], models[m]).ok()) {
          std::fprintf(stderr, "registry load failed\n");
          return 1;
        }
      }
      server::ServerOptions options;
      options.port = 0;
      options.max_batch = config.max_batch;
      options.window_micros = config.window_micros;
      options.default_k = kTopK;
      options.default_model = kModelNames[0];
      options.shared_window_scoring = config.shared;
      options.num_threads = BenchThreads();
      server::QueryServer server(&indexes, &registry, options);
      auto status = server.Start();
      if (!status.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }

      std::vector<std::string> errors(config.clients);
      std::vector<char> ok(config.clients, 1);
      std::vector<std::thread> threads;
      threads.reserve(config.clients);
      util::Stopwatch timer;
      for (size_t c = 0; c < config.clients; ++c) {
        const size_t begin = stream.size() * c / config.clients;
        const size_t end = stream.size() * (c + 1) / config.clients;
        threads.emplace_back([&, c, begin, end] {
          ok[c] = RunClientSlice(server.port(), config, stream, begin, end,
                                 references, &errors[c])
                      ? 1
                      : 0;
        });
      }
      for (std::thread& thread : threads) thread.join();
      const double seconds = timer.ElapsedSeconds();
      if (best_seconds < 0.0 || seconds < best_seconds) {
        best_seconds = seconds;
        stats = server.stats();
        for (size_t m = 0; m < config.num_models; ++m) {
          serves[m] = registry.Get(kModelNames[m])->serves_count();
        }
      }
      if (rep == kReps - 1) {
        // Latency probe on the still-running server, after the throughput
        // burst has drained.
        p50 = ProbeP50Millis(server.port(), config, stream);
      }
      server.Stop();

      for (size_t c = 0; c < config.clients; ++c) {
        if (!ok[c]) {
          std::fprintf(stderr, "FATAL [%s, client %zu]: %s\n", config.label,
                       c, errors[c].c_str());
          all_ok = false;
        }
      }
    }
    if (!all_ok) break;

    const double qps = static_cast<double>(stream.size()) / best_seconds;
    if (config.max_batch == 1) {
      unbatched_qps = qps;
    } else if (config.num_models == 1) {
      batched_single_qps = qps;
    } else if (config.shared) {
      shared_qps[config.num_models] = qps;
    } else {
      per_group_qps[config.num_models] = qps;
    }
    const double speedup = unbatched_qps > 0.0 ? qps / unbatched_qps : 1.0;
    const double models_per_window =
        stats.windows > 0 ? static_cast<double>(stats.window_model_groups) /
                                static_cast<double>(stats.windows)
                          : 0.0;
    table.AddRow({config.label, std::to_string(config.num_models),
                  config.shared ? "shared" : "per-group",
                  util::FormatDouble(best_seconds, 3),
                  util::FormatDouble(qps, 0),
                  util::FormatDouble(speedup, 2) + "x",
                  std::to_string(stats.rows_saved_vs_per_model),
                  util::FormatDouble(models_per_window, 2)});
    report.BeginRecord()
        .Str("config", config.label)
        .Num("clients", static_cast<double>(config.clients))
        .Num("max_batch", static_cast<double>(config.max_batch))
        .Num("window_micros", static_cast<double>(config.window_micros))
        .Num("num_models", static_cast<double>(config.num_models))
        .Num("shared_window", config.shared ? 1.0 : 0.0)
        .Num("seconds", best_seconds)
        .Num("queries_per_second", qps)
        .Num("speedup_vs_unbatched", speedup)
        .Num("batches", static_cast<double>(stats.batches))
        .Num("windows", static_cast<double>(stats.windows))
        .Num("rows_gathered", static_cast<double>(stats.rows_gathered))
        .Num("rows_saved_vs_per_model",
             static_cast<double>(stats.rows_saved_vs_per_model))
        .Num("models_per_window", models_per_window);
    for (size_t m = 0; m < config.num_models; ++m) {
      report.Num("serves_" + std::string(kModelNames[m]),
                 static_cast<double>(serves[m]));
      report.Num("p50_ms_" + std::string(kModelNames[m]), p50[m]);
    }
  }
  int exit_code = 0;
  if (!c10k_only) {
    table.Print(std::cout);

    // The shared-vs-per-group verdict, in the JSON next to the raw
    // numbers.
    for (size_t n : {size_t{2}, size_t{4}}) {
      if (per_group_qps[n] > 0.0 && shared_qps[n] > 0.0) {
        report.BeginRecord()
            .Str("config", "verdict")
            .Num("num_models", static_cast<double>(n))
            .Num("shared_speedup_vs_per_group",
                 shared_qps[n] / per_group_qps[n]);
      }
    }

    std::printf(
        "\nexpected shape: batching beats unbatched everywhere; at 2+ "
        "models the shared schedule beats per-model grouping (the "
        "window's row union is gathered once and scored under all models "
        "— rows saved and models/window say how much sharing each window "
        "found); p50_ms_* in the JSON is the closed-loop single-client "
        "latency per model. Every response is checked bitwise against "
        "offline Query() under its model, so the two schedules are "
        "provably byte-identical to clients.\n");

    if (!all_ok) {
      std::fprintf(stderr,
                   "FATAL: server responses differ from offline Query\n");
      exit_code = 1;
    } else if (batched_single_qps <= unbatched_qps) {
      std::fprintf(stderr,
                   "FATAL: micro-batching does not beat "
                   "one-query-per-request throughput (%.0f vs %.0f q/s)\n",
                   batched_single_qps, unbatched_qps);
      exit_code = 1;
    } else {
      for (size_t n : {size_t{2}, size_t{4}}) {
        if (shared_qps[n] <= per_group_qps[n]) {
          std::fprintf(stderr,
                       "FATAL: shared-window scoring loses to per-model "
                       "grouping at %zu models (%.0f vs %.0f q/s)\n",
                       n, shared_qps[n], per_group_qps[n]);
          exit_code = 1;
        }
      }
    }
  }

  // The C10K section reuses model 0 and its offline references; skip it
  // when the matrix already proved the responses wrong.
  if (all_ok) {
    exit_code = std::max(
        exit_code, RunC10k(indexes, models[0], stream, references[0], report));
  }

  if (!report.WriteIfRequested()) return 1;
  return exit_code;
}
