// Batched online phase: throughput of SearchEngine-style batched ranking
// (BatchRankByProximity) vs. the sequential per-query path, swept over
// batch size and worker threads on the synthetic Facebook benchmark graph.
//
// The batched path amortizes three per-query costs: duplicate queries are
// scored once, every touched node row's m_x . w is gathered once per batch,
// and pair rows are read through the candidate-slot postings instead of a
// hash probe per pair — plus the scoring fan-out over the thread pool.
//
// Also verifies the batched determinism contract on every configuration:
// whatever the batch size and thread count, every query's result must be
// identical (nodes, bitwise scores, order) to the sequential Query path.
//
// Flags/env: --threads/--shards apply to the offline build only (the
// online sweep sets its own thread counts); METAPROX_BENCH_SCALE=full for
// paper-sized graphs.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/simple.h"
#include "bench_common.h"
#include "core/query_batch.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

using namespace metaprox;         // NOLINT
using namespace metaprox::bench;  // NOLINT

namespace {

constexpr size_t kTopK = 10;
constexpr int kReps = 3;  // best-of reps: timing noise, not results

// Best-of-kReps seconds for one full pass over the query stream.
template <typename Fn>
double TimeBest(const Fn& fn) {
  double best = -1.0;
  for (int rep = 0; rep < kReps; ++rep) {
    util::Stopwatch timer;
    fn();
    const double seconds = timer.ElapsedSeconds();
    if (best < 0.0 || seconds < best) best = seconds;
  }
  return best;
}

bool Identical(const std::vector<QueryResult>& a,
               const std::vector<QueryResult>& b) {
  return a == b;  // exact: same nodes, bitwise-same scores, same order
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  std::printf("== batched online queries: batch size x threads sweep ==\n");
  std::printf("hardware concurrency: %zu\n\n", util::ResolveNumThreads(0));

  Bundle b = MakeFacebook(5, 450, 1200);
  b.engine->MatchAll();
  const MetagraphVectorIndex& index = b.engine->index();
  const std::vector<double> weights = UniformWeights(index);
  const MgpModel model{weights};

  // Query stream: the user pool cycled to a fixed length, so batches mix
  // repeat visitors (service-style traffic) once the stream wraps.
  const size_t num_queries = FullScale() ? 20000 : 4000;
  std::vector<NodeId> stream;
  stream.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    stream.push_back(b.user_pool[i % b.user_pool.size()]);
  }

  // Sequential baseline (and the reference results for the identity check).
  std::vector<QueryResult> reference(stream.size());
  const double sequential_seconds = TimeBest([&] {
    for (size_t i = 0; i < stream.size(); ++i) {
      reference[i] = b.engine->Query(model, stream[i], kTopK);
    }
  });
  std::printf("%zu queries, sequential Query(): %.3fs (%.0f q/s)\n\n",
              stream.size(), sequential_seconds,
              static_cast<double>(stream.size()) / sequential_seconds);

  const std::vector<size_t> batch_sizes = {1, 8, 64, 512};
  const std::vector<unsigned> thread_counts = {1, 4};

  util::TablePrinter table(
      {"batch", "threads", "time (s)", "queries/s", "speedup", "identical"});
  JsonReport report("online_batch");
  report.BeginRecord()
      .Str("config", "sequential")
      .Num("queries", static_cast<double>(stream.size()))
      .Num("seconds", sequential_seconds)
      .Num("queries_per_second",
           static_cast<double>(stream.size()) / sequential_seconds);
  bool all_identical = true;
  bool batched_wins_from_8 = true;
  for (size_t batch : batch_sizes) {
    double best_speedup = 0.0;
    for (unsigned threads : thread_counts) {
      util::ThreadPool pool(threads);
      util::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;
      std::vector<QueryResult> results(stream.size());
      const double seconds = TimeBest([&] {
        for (size_t begin = 0; begin < stream.size(); begin += batch) {
          const size_t end = std::min(stream.size(), begin + batch);
          auto chunk = BatchRankByProximity(
              index, weights,
              std::span<const NodeId>(stream.data() + begin, end - begin),
              kTopK, pool_ptr);
          std::move(chunk.begin(), chunk.end(), results.begin() + begin);
        }
      });
      const bool identical = Identical(results, reference);
      all_identical &= identical;
      const double speedup = sequential_seconds / seconds;
      best_speedup = std::max(best_speedup, speedup);
      table.AddRow({std::to_string(batch), std::to_string(threads),
                    util::FormatDouble(seconds, 3),
                    util::FormatDouble(
                        static_cast<double>(stream.size()) / seconds, 0),
                    util::FormatDouble(speedup, 2) + "x",
                    identical ? "yes" : "NO — BUG"});
      report.BeginRecord()
          .Str("config", "batched")
          .Num("batch", static_cast<double>(batch))
          .Num("threads", threads)
          .Num("seconds", seconds)
          .Num("queries_per_second",
               static_cast<double>(stream.size()) / seconds)
          .Num("speedup", speedup)
          .Num("identical", identical ? 1 : 0);
    }
    if (batch >= 8 && best_speedup <= 1.0) batched_wins_from_8 = false;
  }
  table.Print(std::cout);
  if (!report.WriteIfRequested()) return 1;

  std::printf(
      "\nexpected shape: speedup rises with batch size (more node-row "
      "reuse per batch) and with threads at large batches; batch 1 "
      "roughly matches sequential; the \"identical\" column must read "
      "yes everywhere.\n");

  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: batched results differ from sequential Query\n");
    return 1;
  }
  if (!batched_wins_from_8) {
    std::fprintf(stderr,
                 "FATAL: batched throughput does not beat sequential at "
                 "batch >= 8\n");
    return 1;
  }
  return 0;
}
