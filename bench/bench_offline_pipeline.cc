// Fully parallel offline pipeline: wall clock and speedup of every offline
// stage — mining (level-synchronous pattern growth), matching (one
// match-and-commit task per metagraph into the sharded index) and finalize
// (shard merge + candidate postings) — vs. the serial baseline on the
// synthetic Facebook benchmark graph, for 1/2/4/8 worker threads.
//
// A second sweep fixes the thread count and varies the index shard count,
// isolating commit-lock contention.
//
// Also verifies the determinism contract on every run: whatever the
// thread/shard count, the serialized index must be byte-identical to the
// serial build and the mined set must be identical to the serial miner's.
//
// Flags/env: --threads/--shards are ignored here (the sweeps set their own
// counts); METAPROX_BENCH_SCALE=full for paper-sized graphs.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

using namespace metaprox;         // NOLINT
using namespace metaprox::bench;  // NOLINT

namespace {

struct RunResult {
  double mine = 0.0;
  double match = 0.0;
  double finalize = 0.0;
  size_t num_metagraphs = 0;
  std::string serialized;
};

RunResult RunOffline(unsigned threads, unsigned shards) {
  SetBenchThreads(threads);
  SetBenchShards(shards);
  Bundle b = MakeFacebook(5, 450, 1200);  // Mine() runs inside MakeFacebook
  b.engine->MatchAll();

  RunResult r;
  r.mine = b.engine->timings().mine_seconds;
  r.match = b.engine->timings().match_seconds;
  r.finalize = b.engine->timings().finalize_seconds;
  r.num_metagraphs = b.engine->metagraphs().size();
  std::ostringstream serialized;
  auto status = b.engine->index().WriteTo(serialized);
  if (!status.ok()) {
    std::fprintf(stderr, "index serialization failed: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }
  r.serialized = serialized.str();
  return r;
}

std::string Fmt(double seconds) { return util::FormatDouble(seconds, 2); }

std::string Speedup(double serial, double now) {
  if (now <= 0.0) return "-";
  return util::FormatDouble(serial / now, 2) + "x";
}

}  // namespace

int main(int argc, char** argv) {
  // --threads/--shards are ignored (the sweeps set their own); --json and
  // METAPROX_BENCH_JSON select the machine-readable report.
  ParseBenchArgs(argc, argv);
  std::printf("== parallel offline pipeline: mine + match + finalize ==\n");
  std::printf("hardware concurrency: %zu\n\n", util::ResolveNumThreads(0));

  // ---- thread sweep (auto shards) -----------------------------------------
  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  util::TablePrinter threads_table(
      {"threads", "mine (s)", "match (s)", "finalize (s)", "total (s)",
       "speedup", "index identical"});
  JsonReport report("offline_pipeline");

  RunResult serial;
  for (unsigned threads : thread_counts) {
    RunResult r = RunOffline(threads, /*shards=*/0);
    bool identical = true;
    if (threads == 1) {
      serial = r;
    } else {
      identical = r.serialized == serial.serialized &&
                  r.num_metagraphs == serial.num_metagraphs;
    }
    const double total = r.mine + r.match + r.finalize;
    const double serial_total = serial.mine + serial.match + serial.finalize;
    threads_table.AddRow({std::to_string(threads), Fmt(r.mine), Fmt(r.match),
                          Fmt(r.finalize), Fmt(total),
                          Speedup(serial_total, total),
                          identical ? "yes" : "NO — BUG"});
    report.BeginRecord()
        .Str("sweep", "threads")
        .Num("threads", threads)
        .Num("mine_seconds", r.mine)
        .Num("match_seconds", r.match)
        .Num("finalize_seconds", r.finalize)
        .Num("total_seconds", total)
        .Num("speedup", total > 0.0 ? serial_total / total : 0.0)
        .Num("identical", identical ? 1 : 0);
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: offline phase with %u threads differs from "
                   "serial\n",
                   threads);
      return 1;
    }
  }
  threads_table.Print(std::cout);

  // ---- shard sweep at a fixed thread count --------------------------------
  const unsigned sweep_threads = 4;
  std::printf("\nshard sweep at %u threads (serial reference above):\n",
              sweep_threads);
  util::TablePrinter shards_table(
      {"shards", "match (s)", "match speedup", "index identical"});
  for (unsigned shards : {1u, 4u, 16u, 64u}) {
    RunResult r = RunOffline(sweep_threads, shards);
    const bool identical = r.serialized == serial.serialized;
    shards_table.AddRow({std::to_string(shards), Fmt(r.match),
                         Speedup(serial.match, r.match),
                         identical ? "yes" : "NO — BUG"});
    report.BeginRecord()
        .Str("sweep", "shards")
        .Num("threads", sweep_threads)
        .Num("shards", shards)
        .Num("match_seconds", r.match)
        .Num("match_speedup", r.match > 0.0 ? serial.match / r.match : 0.0)
        .Num("identical", identical ? 1 : 0);
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: index with %u shards differs from serial\n",
                   shards);
      return 1;
    }
  }
  shards_table.Print(std::cout);
  if (!report.WriteIfRequested()) return 1;

  std::printf(
      "\nexpected shape: total speedup monotone up to the core count; with "
      "1 shard the match column degrades (every commit contends on one "
      "lock), recovering as shards increase; the \"index identical\" "
      "column must read yes everywhere.\n");
  return 0;
}
