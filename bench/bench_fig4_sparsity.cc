// Reproduces Fig. 4: sparsity of the optimal characteristic weights.
// Trains the full MGP model per class and prints the weight distribution by
// rank position — the paper's long tail (few large weights, most near zero).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

using namespace metaprox;        // NOLINT
using namespace metaprox::bench; // NOLINT

namespace {

void RunDataset(Bundle& b, size_t num_examples) {
  b.engine->MatchAll();
  for (const GroundTruth& gt : b.ds.classes) {
    util::Rng rng(42);
    QuerySplit split = SplitQueries(gt, 0.2, rng);
    auto examples =
        SampleExamples(gt, split.train, b.user_pool, num_examples, rng);
    TrainResult result =
        TrainMgp(b.engine->index(), examples, DefaultTrainOptions());

    std::vector<double> w = result.weights;
    std::sort(w.begin(), w.end(), std::greater<double>());

    std::printf("\n-- %s / %s: weights by rank position --\n",
                b.ds.name.c_str(), gt.class_name().c_str());
    util::TablePrinter table({"rank", "weight"});
    size_t shown = 0;
    for (size_t rank = 1; rank <= w.size(); rank = rank < 10 ? rank + 1
                                            : rank < 100  ? rank + 15
                                                          : rank + 150) {
      table.AddRow({std::to_string(rank),
                    util::FormatDouble(w[rank - 1], 4)});
      ++shown;
    }
    table.Print(std::cout);

    size_t high = 0, low = 0;
    for (double v : w) {
      high += (v > 0.9);
      low += (v < 0.1);
    }
    std::printf("weights > 0.9: %zu / %zu (%s); weights < 0.1: %zu (%s)\n",
                high, w.size(),
                util::FormatPercent(double(high) / w.size()).c_str(), low,
                util::FormatPercent(double(low) / w.size()).c_str());
  }
}

}  // namespace

int main() {
  std::printf("== Fig. 4: sparsity of optimal characteristic weights ==\n");
  std::printf("expected shape: long tail — a small number of high weights, "
              "an overwhelming majority of near-zero weights.\n");

  const size_t num_examples = FullScale() ? 1000 : 400;
  {
    Bundle li = MakeLinkedIn(5, 600, 2500);
    RunDataset(li, num_examples);
  }
  {
    Bundle fb = MakeFacebook(5, 400, 1200);
    RunDataset(fb, num_examples);
  }
  return 0;
}
