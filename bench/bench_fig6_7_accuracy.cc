// Reproduces Fig. 6 (NDCG@10) and Fig. 7 (MAP@10): accuracy of MGP vs the
// four baselines (MPP, MGP-U, MGP-B, SRW) as the number of training
// examples grows, on all four semantic classes (college, coworker, family,
// classmate), averaged over random 20/80 train/test splits.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

using namespace metaprox;        // NOLINT
using namespace metaprox::bench; // NOLINT

namespace {

struct ClassTask {
  const Bundle* bundle;
  const GroundTruth* gt;
};

void RunClass(const ClassTask& task, std::span<const size_t> sizes,
              int repeats, util::TablePrinter& ndcg_table,
              util::TablePrinter& map_table) {
  const Bundle& b = *task.bundle;
  const GroundTruth& gt = *task.gt;

  const std::vector<Method> methods = {Method::kMgp, Method::kMpp,
                                       Method::kMgpU, Method::kMgpB,
                                       Method::kSrw};
  std::vector<uint32_t> paths = PathIndices(*b.engine);

  for (size_t num_examples : sizes) {
    // Accumulated scores per method.
    std::vector<Scores> sums(methods.size());
    for (int rep = 0; rep < repeats; ++rep) {
      util::Rng rng(1000 + 97 * rep);
      QuerySplit split = SplitQueries(gt, 0.2, rng);
      auto examples =
          SampleExamples(gt, split.train, b.user_pool, num_examples, rng);

      for (size_t mi = 0; mi < methods.size(); ++mi) {
        Scores s;
        switch (methods[mi]) {
          case Method::kMgp: {
            TrainResult r = TrainMgp(b.engine->index(), examples,
                                     DefaultTrainOptions());
            s = EvalWeights(*b.engine, gt, split.test, r.weights);
            break;
          }
          case Method::kMpp: {
            TrainOptions options = DefaultTrainOptions();
            options.active = paths;
            TrainResult r = TrainMgp(b.engine->index(), examples, options);
            s = EvalWeights(*b.engine, gt, split.test, r.weights);
            break;
          }
          case Method::kMgpU: {
            s = EvalWeights(*b.engine, gt, split.test,
                            UniformWeights(b.engine->index()));
            break;
          }
          case Method::kMgpB: {
            auto w = BestSingleMetagraphWeights(b.engine->index(), gt,
                                                split.train, 10);
            s = EvalWeights(*b.engine, gt, split.test, w);
            break;
          }
          case Method::kSrw: {
            s = EvalSrw(b.ds.graph, b.ds.user_type, gt, examples,
                        split.test, /*max_queries=*/FullScale() ? 40 : 20);
            break;
          }
        }
        sums[mi].ndcg += s.ndcg;
        sums[mi].map += s.map;
      }
    }
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      double n = sums[mi].ndcg / repeats;
      double m = sums[mi].map / repeats;
      ndcg_table.AddRow({gt.class_name(), std::to_string(num_examples),
                         MethodName(methods[mi]), util::FormatDouble(n, 4)});
      map_table.AddRow({gt.class_name(), std::to_string(num_examples),
                        MethodName(methods[mi]), util::FormatDouble(m, 4)});
    }
    std::fprintf(stderr, "  [%s |Omega|=%zu done]\n", gt.class_name().c_str(),
                 num_examples);
  }
}

}  // namespace

int main() {
  std::printf("== Fig. 6 / Fig. 7: accuracy of MGP vs baselines ==\n");
  std::printf("expected shape: MGP best everywhere and improving with more "
              "examples; MPP second tier; SRW flat; MGP-U/MGP-B low.\n\n");

  const std::vector<size_t> sizes =
      FullScale() ? std::vector<size_t>{10, 30, 100, 300, 1000}
                  : std::vector<size_t>{10, 100, 1000};
  const int repeats = FullScale() ? 10 : 2;

  Bundle li = MakeLinkedIn(5, 700, 2500);
  li.engine->MatchAll();
  Bundle fb = MakeFacebook(5, 450, 1200);
  fb.engine->MatchAll();

  util::TablePrinter ndcg({"class", "|Omega|", "method", "NDCG@10"});
  util::TablePrinter map({"class", "|Omega|", "method", "MAP@10"});

  for (const auto& b : {std::cref(li), std::cref(fb)}) {
    for (const GroundTruth& gt : b.get().ds.classes) {
      RunClass({&b.get(), &gt}, sizes, repeats, ndcg, map);
    }
  }

  std::printf("-- Fig. 6 (NDCG@10) --\n");
  ndcg.Print(std::cout);
  std::printf("\n-- Fig. 7 (MAP@10) --\n");
  map.Print(std::cout);

  std::printf(
      "\npaper reference (1000 examples, mean over classes): MGP beats the "
      "second best by 11%% NDCG and 16%% MAP.\n");
  return 0;
}
