// Parallel offline matching: match-phase wall clock and speedup of the
// ThreadPool fan-out (core/engine.cc) vs. the serial baseline on the
// synthetic Facebook benchmark graph, for 1/2/4/8 worker threads.
//
// Also verifies the determinism contract on every run: whatever the thread
// count, the serialized index must be byte-identical to the serial build
// (concurrent commits land in a sharded table whose canonical order is
// restored at Seal()/Finalize(); see index/metagraph_vectors.h). For the
// full mine+match+finalize breakdown and the shard sweep, see
// bench_offline_pipeline.
//
// Flags/env: --threads is ignored here (the sweep sets its own counts);
// METAPROX_BENCH_SCALE=full for paper-sized graphs.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

using namespace metaprox;        // NOLINT
using namespace metaprox::bench; // NOLINT

int main(int argc, char** argv) {
  // --threads is ignored (the sweep sets its own); --json and
  // METAPROX_BENCH_JSON select the machine-readable report.
  ParseBenchArgs(argc, argv);
  std::printf("== parallel offline matching: speedup vs. serial ==\n");
  std::printf("hardware concurrency: %zu\n\n",
              util::ResolveNumThreads(0));

  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  util::TablePrinter table(
      {"threads", "match (s)", "speedup", "embeddings", "saturated",
       "index identical"});
  JsonReport report("parallel_matching");

  std::string reference_serialization;
  double serial_seconds = 0.0;
  for (unsigned threads : thread_counts) {
    SetBenchThreads(threads);
    Bundle b = MakeFacebook(5, 450, 1200);
    b.engine->MatchAll();

    uint64_t embeddings = 0, saturated = 0;
    for (const MetagraphMatchStats& s : b.engine->match_stats()) {
      embeddings += s.embeddings;
      saturated += s.saturated;
    }

    std::ostringstream serialized;
    auto status = b.engine->index().WriteTo(serialized);
    if (!status.ok()) {
      std::fprintf(stderr, "index serialization failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    bool identical = true;
    if (threads == 1) {
      reference_serialization = serialized.str();
      serial_seconds = b.engine->timings().match_seconds;
    } else {
      identical = serialized.str() == reference_serialization;
    }

    const double seconds = b.engine->timings().match_seconds;
    table.AddRow({std::to_string(threads), util::FormatDouble(seconds, 2),
                  util::FormatDouble(serial_seconds / seconds, 2) + "x",
                  std::to_string(embeddings), std::to_string(saturated),
                  identical ? "yes" : "NO — BUG"});
    report.BeginRecord()
        .Num("threads", threads)
        .Num("match_seconds", seconds)
        .Num("speedup", seconds > 0.0 ? serial_seconds / seconds : 0.0)
        .Num("embeddings", static_cast<double>(embeddings))
        .Num("identical", identical ? 1 : 0);
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: index built with %u threads differs from serial\n",
                   threads);
      return 1;
    }
  }
  table.Print(std::cout);
  if (!report.WriteIfRequested()) return 1;

  std::printf(
      "\nexpected shape: monotone speedup up to the core count, flat "
      "beyond it; the \"index identical\" column must read yes "
      "everywhere.\n");
  return 0;
}
