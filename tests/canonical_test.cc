#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <unordered_set>

#include "metagraph/canonical.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace metaprox {
namespace {

// Relabels the nodes of `m` by permutation `perm` (new index of old node i).
Metagraph Relabel(const Metagraph& m, const std::array<int, 8>& perm) {
  std::array<TypeId, 8> types{};
  for (int i = 0; i < m.num_nodes(); ++i) {
    types[perm[i]] = m.TypeOf(static_cast<MetaNodeId>(i));
  }
  Metagraph out;
  for (int i = 0; i < m.num_nodes(); ++i) out.AddNode(types[i]);
  for (auto [a, b] : m.Edges()) {
    out.AddEdge(static_cast<MetaNodeId>(perm[a]),
                static_cast<MetaNodeId>(perm[b]));
  }
  return out;
}

TEST(Canonical, InvariantUnderRelabeling) {
  Metagraph m;
  MetaNodeId u1 = m.AddNode(0);
  MetaNodeId u2 = m.AddNode(0);
  MetaNodeId s = m.AddNode(1);
  MetaNodeId j = m.AddNode(2);
  m.AddEdge(u1, s);
  m.AddEdge(u2, s);
  m.AddEdge(u1, j);
  m.AddEdge(u2, j);

  CanonicalCode base = Canonicalize(m);
  std::array<int, 8> perm{};
  std::iota(perm.begin(), perm.begin() + 4, 0);
  do {
    EXPECT_EQ(Canonicalize(Relabel(m, perm)), base);
  } while (std::next_permutation(perm.begin(), perm.begin() + 4));
}

TEST(Canonical, DistinguishesNonIsomorphic) {
  // Path 0-1-0 vs path 0-0-1: same multiset of types, different structure.
  Metagraph a = MakePath({0, 1, 0});
  Metagraph b = MakePath({0, 0, 1});
  EXPECT_FALSE(Canonicalize(a) == Canonicalize(b));
  EXPECT_FALSE(AreIsomorphic(a, b));
}

TEST(Canonical, DistinguishesTypes) {
  Metagraph a = MakePath({0, 1});
  Metagraph b = MakePath({0, 2});
  EXPECT_FALSE(Canonicalize(a) == Canonicalize(b));
}

TEST(Canonical, DistinguishesEdgeCounts) {
  Metagraph tri;
  tri.AddNode(0);
  tri.AddNode(0);
  tri.AddNode(0);
  tri.AddEdge(0, 1);
  tri.AddEdge(1, 2);
  Metagraph cyc = tri;
  cyc.AddEdge(0, 2);
  EXPECT_FALSE(AreIsomorphic(tri, cyc));
}

TEST(Canonical, FromCanonicalCodeRoundTrips) {
  util::Rng rng(321);
  for (int trial = 0; trial < 100; ++trial) {
    Metagraph m = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(4)), 3, rng);
    CanonicalCode code = Canonicalize(m);
    Metagraph rebuilt = FromCanonicalCode(code);
    EXPECT_TRUE(AreIsomorphic(m, rebuilt));
    EXPECT_EQ(Canonicalize(rebuilt), code);
  }
}

TEST(CanonicalProperty, RandomRelabelingsAgree) {
  util::Rng rng(654);
  for (int trial = 0; trial < 200; ++trial) {
    int n = 2 + static_cast<int>(rng.UniformInt(4));
    Metagraph m = testing::MakeRandomMetagraph(n, 3, rng);
    CanonicalCode base = Canonicalize(m);

    std::array<int, 8> perm{};
    std::iota(perm.begin(), perm.begin() + n, 0);
    for (int i = n - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.UniformInt(i + 1)]);
    }
    EXPECT_EQ(Canonicalize(Relabel(m, perm)), base);
  }
}

TEST(CanonicalProperty, HashConsistentWithEquality) {
  util::Rng rng(777);
  CanonicalCodeHash hasher;
  for (int trial = 0; trial < 100; ++trial) {
    Metagraph m = testing::MakeRandomMetagraph(4, 3, rng);
    CanonicalCode a = Canonicalize(m);
    CanonicalCode b = Canonicalize(FromCanonicalCode(a));
    EXPECT_EQ(a, b);
    EXPECT_EQ(hasher(a), hasher(b));
  }
}

TEST(Canonical, CodesAreUsableAsSetKeys) {
  std::unordered_set<CanonicalCode, CanonicalCodeHash> seen;
  Metagraph a = MakePath({0, 1, 0});
  Metagraph b = MakePath({0, 1, 0});
  Metagraph c = MakePath({1, 0, 1});
  EXPECT_TRUE(seen.insert(Canonicalize(a)).second);
  EXPECT_FALSE(seen.insert(Canonicalize(b)).second);
  EXPECT_TRUE(seen.insert(Canonicalize(c)).second);
  EXPECT_EQ(seen.size(), 2u);
}

}  // namespace
}  // namespace metaprox
