#include <gtest/gtest.h>

#include "index/metagraph_vectors.h"
#include "learning/proximity.h"
#include "matching/matcher.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace metaprox {
namespace {

// Builds a raw-count index over the toy graph with all six co-attribute
// metapaths.
struct ToyIndex {
  testing::ToyGraph toy;
  std::unique_ptr<MetagraphVectorIndex> index;
  size_t num_metagraphs;
};

ToyIndex MakeToyIndex() {
  ToyIndex t{testing::MakeToyGraph(), nullptr, 0};
  std::vector<Metagraph> metagraphs = {
      MakePath({t.toy.user, t.toy.surname, t.toy.user}),
      MakePath({t.toy.user, t.toy.address, t.toy.user}),
      MakePath({t.toy.user, t.toy.school, t.toy.user}),
      MakePath({t.toy.user, t.toy.major, t.toy.user}),
      MakePath({t.toy.user, t.toy.employer, t.toy.user}),
      MakePath({t.toy.user, t.toy.hobby, t.toy.user})};
  t.num_metagraphs = metagraphs.size();
  t.index = std::make_unique<MetagraphVectorIndex>(
      metagraphs.size(), t.toy.graph.num_nodes(), CountTransform::kRaw);
  auto matcher = CreateMatcher(MatcherKind::kSymISO);
  for (uint32_t i = 0; i < metagraphs.size(); ++i) {
    SymmetryInfo sym = AnalyzeSymmetry(metagraphs[i]);
    SymPairCountingSink sink(sym, UINT64_MAX);
    matcher->Match(t.toy.graph, metagraphs[i], &sink);
    t.index->Commit(i, sink, sym.aut_size());
  }
  t.index->Finalize();
  return t;
}

TEST(MgpProperties, SymmetryTheorem1) {
  ToyIndex t = MakeToyIndex();
  util::Rng rng(3);
  std::vector<double> w(t.num_metagraphs);
  for (int trial = 0; trial < 20; ++trial) {
    for (double& v : w) v = rng.UniformDouble();
    for (NodeId x : {t.toy.alice, t.toy.bob, t.toy.kate}) {
      for (NodeId y : {t.toy.jay, t.toy.tom, t.toy.bob}) {
        EXPECT_DOUBLE_EQ(MgpProximity(*t.index, w, x, y),
                         MgpProximity(*t.index, w, y, x));
      }
    }
  }
}

TEST(MgpProperties, SelfMaximumTheorem1) {
  ToyIndex t = MakeToyIndex();
  util::Rng rng(4);
  std::vector<double> w(t.num_metagraphs);
  for (int trial = 0; trial < 20; ++trial) {
    for (double& v : w) v = rng.UniformDouble();
    for (NodeId x : {t.toy.alice, t.toy.bob, t.toy.kate, t.toy.jay}) {
      EXPECT_DOUBLE_EQ(MgpProximity(*t.index, w, x, x), 1.0);
      for (NodeId y : {t.toy.alice, t.toy.bob, t.toy.kate, t.toy.jay}) {
        double pi = MgpProximity(*t.index, w, x, y);
        EXPECT_GE(pi, 0.0);
        EXPECT_LE(pi, 1.0);
      }
    }
  }
}

TEST(MgpProperties, ScaleInvarianceTheorem1) {
  ToyIndex t = MakeToyIndex();
  util::Rng rng(5);
  std::vector<double> w(t.num_metagraphs), w2(t.num_metagraphs);
  for (int trial = 0; trial < 20; ++trial) {
    double c = rng.UniformDouble(0.1, 10.0);
    for (size_t i = 0; i < w.size(); ++i) {
      w[i] = rng.UniformDouble();
      w2[i] = c * w[i];
    }
    for (NodeId x : {t.toy.alice, t.toy.kate}) {
      for (NodeId y : {t.toy.bob, t.toy.jay}) {
        EXPECT_NEAR(MgpProximity(*t.index, w, x, y),
                    MgpProximity(*t.index, w2, x, y), 1e-12);
      }
    }
  }
}

TEST(Mgp, ClassmateWeightsFavorJayOverAlice) {
  ToyIndex t = MakeToyIndex();
  // "Classmate" weights: school + major.
  std::vector<double> w(t.num_metagraphs, 0.0);
  w[2] = 0.9;  // school
  w[3] = 0.9;  // major
  double kate_jay = MgpProximity(*t.index, w, t.toy.kate, t.toy.jay);
  double kate_alice = MgpProximity(*t.index, w, t.toy.kate, t.toy.alice);
  EXPECT_GT(kate_jay, kate_alice);
  EXPECT_GT(kate_jay, 0.9);  // shares all classmate attributes

  // Fig. 1(b): Bob's classmate is Tom.
  double bob_tom = MgpProximity(*t.index, w, t.toy.bob, t.toy.tom);
  double bob_alice = MgpProximity(*t.index, w, t.toy.bob, t.toy.alice);
  EXPECT_GT(bob_tom, bob_alice);
}

TEST(Mgp, FamilyWeightsFavorAliceForBob) {
  ToyIndex t = MakeToyIndex();
  std::vector<double> w(t.num_metagraphs, 0.0);
  w[0] = 0.8;  // surname
  w[1] = 0.8;  // address
  double bob_alice = MgpProximity(*t.index, w, t.toy.bob, t.toy.alice);
  double bob_tom = MgpProximity(*t.index, w, t.toy.bob, t.toy.tom);
  EXPECT_GT(bob_alice, bob_tom);
}

TEST(Mgp, ZeroWeightsGiveZeroProximity) {
  ToyIndex t = MakeToyIndex();
  std::vector<double> w(t.num_metagraphs, 0.0);
  EXPECT_DOUBLE_EQ(MgpProximity(*t.index, w, t.toy.kate, t.toy.jay), 0.0);
}

TEST(RankByProximity, OrdersAndTruncates) {
  ToyIndex t = MakeToyIndex();
  std::vector<double> w(t.num_metagraphs, 1.0);
  auto ranked = RankByProximity(*t.index, w, t.toy.kate,
                                t.index->Candidates(t.toy.kate), 10);
  ASSERT_FALSE(ranked.empty());
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].second, ranked[i].second);
  }
  // Kate's closest under "close friend" weights should be Alice
  // (employer + hobby) or Jay (address+school+major). With uniform weights
  // Jay shares 3 metapaths, Alice 2.
  EXPECT_EQ(ranked[0].first, t.toy.jay);

  auto top1 = RankByProximity(*t.index, w, t.toy.kate,
                              t.index->Candidates(t.toy.kate), 1);
  EXPECT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].first, ranked[0].first);
}

TEST(RankByProximity, ExcludesQueryNode) {
  ToyIndex t = MakeToyIndex();
  std::vector<double> w(t.num_metagraphs, 1.0);
  std::vector<NodeId> cands = {t.toy.kate, t.toy.jay};
  auto ranked = RankByProximity(*t.index, w, t.toy.kate, cands, 10);
  for (const auto& [node, score] : ranked) EXPECT_NE(node, t.toy.kate);
}

}  // namespace
}  // namespace metaprox
