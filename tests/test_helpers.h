// Shared fixtures for metaprox tests: the paper's Fig. 1 toy social graph,
// a random typed-graph generator, and a brute-force reference matcher used
// to cross-validate every matching kernel.
#ifndef METAPROX_TESTS_TEST_HELPERS_H_
#define METAPROX_TESTS_TEST_HELPERS_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "index/metagraph_vectors.h"
#include "metagraph/metagraph.h"
#include "util/rng.h"

namespace metaprox::testing {

/// The toy graph of Fig. 1: five users plus their attribute values.
/// Node name -> id access through the returned struct.
struct ToyGraph {
  Graph graph;
  // Users.
  NodeId alice, bob, kate, jay, tom;
  // Attributes.
  NodeId clinton, green_st, white_st, college_a, college_b;
  NodeId economics, physics, company_x, music;
  TypeId user, surname, address, school, major, employer, hobby;
};

inline ToyGraph MakeToyGraph() {
  ToyGraph t;
  GraphBuilder b;
  t.user = b.InternType("user");
  t.surname = b.InternType("surname");
  t.address = b.InternType("address");
  t.school = b.InternType("school");
  t.major = b.InternType("major");
  t.employer = b.InternType("employer");
  t.hobby = b.InternType("hobby");

  t.alice = b.AddNode(t.user, "Alice");
  t.bob = b.AddNode(t.user, "Bob");
  t.kate = b.AddNode(t.user, "Kate");
  t.jay = b.AddNode(t.user, "Jay");
  t.tom = b.AddNode(t.user, "Tom");

  t.clinton = b.AddNode(t.surname, "Clinton");
  t.green_st = b.AddNode(t.address, "123 Green St");
  t.white_st = b.AddNode(t.address, "456 White St");
  t.college_a = b.AddNode(t.school, "College A");
  t.college_b = b.AddNode(t.school, "College B");
  t.economics = b.AddNode(t.major, "Economics");
  t.physics = b.AddNode(t.major, "Physics");
  t.company_x = b.AddNode(t.employer, "Company X");
  t.music = b.AddNode(t.hobby, "Music");

  // Fig. 1(a) edges (as described by Fig. 1(b)'s explanations):
  // Alice & Bob: same surname (Clinton) and same address (Green St).
  b.AddEdge(t.alice, t.clinton);
  b.AddEdge(t.bob, t.clinton);
  b.AddEdge(t.alice, t.green_st);
  b.AddEdge(t.bob, t.green_st);
  // Kate & Jay: same address (White St), same school (College A) and
  // same major (Economics).
  b.AddEdge(t.kate, t.white_st);
  b.AddEdge(t.jay, t.white_st);
  b.AddEdge(t.kate, t.college_a);
  b.AddEdge(t.jay, t.college_a);
  b.AddEdge(t.kate, t.economics);
  b.AddEdge(t.jay, t.economics);
  // Kate & Alice: same employer (Company X) and same hobby (Music).
  b.AddEdge(t.kate, t.company_x);
  b.AddEdge(t.alice, t.company_x);
  b.AddEdge(t.kate, t.music);
  b.AddEdge(t.alice, t.music);
  // Bob & Tom: same school (College B) and same major (Physics).
  b.AddEdge(t.bob, t.college_b);
  b.AddEdge(t.tom, t.college_b);
  b.AddEdge(t.bob, t.physics);
  b.AddEdge(t.tom, t.physics);

  t.graph = b.Build();
  return t;
}

/// Random typed graph: `n` nodes across `num_types` types, `avg_degree`
/// expected degree, fully deterministic in `seed`.
inline Graph MakeRandomGraph(size_t n, size_t num_types, double avg_degree,
                             uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder b;
  for (size_t t = 0; t < num_types; ++t) {
    // Built with += rather than operator+: the temporary-concat form trips
    // GCC 12's -Wrestrict false positive (PR 105329) under -O2, which the
    // -Werror CI configuration would promote.
    std::string type_name = "t";
    type_name += std::to_string(t);
    b.InternType(type_name);
  }
  for (size_t i = 0; i < n; ++i) {
    b.AddNode(static_cast<TypeId>(rng.UniformInt(num_types)));
  }
  const uint64_t edges = static_cast<uint64_t>(avg_degree * n / 2.0);
  for (uint64_t e = 0; e < edges; ++e) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u != v) b.AddEdge(u, v);
  }
  return b.Build();
}

/// Random connected metagraph over the types present in `num_types`.
inline Metagraph MakeRandomMetagraph(int nodes, size_t num_types,
                                     util::Rng& rng) {
  Metagraph m;
  for (int i = 0; i < nodes; ++i) {
    m.AddNode(static_cast<TypeId>(rng.UniformInt(num_types)));
    if (i > 0) {
      // Attach to a random earlier node to keep it connected.
      m.AddEdge(static_cast<MetaNodeId>(rng.UniformInt(i)),
                static_cast<MetaNodeId>(i));
    }
  }
  // A few extra edges.
  int extra = static_cast<int>(rng.UniformInt(nodes));
  for (int e = 0; e < extra; ++e) {
    MetaNodeId a = static_cast<MetaNodeId>(rng.UniformInt(nodes));
    MetaNodeId b = static_cast<MetaNodeId>(rng.UniformInt(nodes));
    if (a != b) m.AddEdge(a, b);
  }
  return m;
}

/// Brute-force embedding counter: tries every injective assignment.
/// Exponential; only for cross-validation on tiny graphs.
inline uint64_t BruteForceCountEmbeddings(const Graph& g, const Metagraph& m) {
  const int k = m.num_nodes();
  std::vector<NodeId> assign(k, kInvalidNode);
  uint64_t count = 0;
  auto rec = [&](auto&& self, int pos) -> void {
    if (pos == k) {
      ++count;
      return;
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.TypeOf(v) != m.TypeOf(static_cast<MetaNodeId>(pos))) continue;
      bool used = false;
      for (int i = 0; i < pos; ++i) used |= (assign[i] == v);
      if (used) continue;
      bool ok = true;
      for (int i = 0; i < pos && ok; ++i) {
        if (m.HasEdge(static_cast<MetaNodeId>(i),
                      static_cast<MetaNodeId>(pos))) {
          ok = g.HasEdge(assign[i], v);
        }
      }
      if (!ok) continue;
      assign[pos] = v;
      self(self, pos + 1);
      assign[pos] = kInvalidNode;
    }
  };
  rec(rec, 0);
  return count;
}

// ---- index serialization round trips ---------------------------------------
//
// Index-behavior tests parameterize over these modes so every semantic
// assertion (counts, dots, candidates, ...) is enforced not just on a
// directly built index but on one restored through each persistence
// format — the cheap way to prove the formats are lossless for ALL the
// properties the suite checks, not only the ones a dedicated round-trip
// test happens to compare.

enum class IndexRoundTrip {
  kDirect,         // no serialization: the baseline the others must match
  kText,           // v1 text (WriteTo / ReadFrom)
  kBinaryCompact,  // v2 binary, delta/varint-packed rows (ReadBinaryFrom)
  kBinaryAligned,  // v2 binary, raw aligned rows, loaded eagerly
  kMapped,         // v2 binary aligned, memory-mapped (MapFromFile)
};

inline const char* IndexRoundTripName(IndexRoundTrip mode) {
  switch (mode) {
    case IndexRoundTrip::kDirect: return "Direct";
    case IndexRoundTrip::kText: return "Text";
    case IndexRoundTrip::kBinaryCompact: return "BinaryCompact";
    case IndexRoundTrip::kBinaryAligned: return "BinaryAligned";
    case IndexRoundTrip::kMapped: return "Mapped";
  }
  return "Unknown";
}

/// A fresh path under the test temp dir, unique within and across
/// concurrently running test binaries.
inline std::string UniqueTempPath(const std::string& stem) {
  static std::atomic<uint64_t> counter{0};
  return ::testing::TempDir() + "/" + stem + "_" + std::to_string(getpid()) +
         "_" + std::to_string(counter.fetch_add(1));
}

/// Sends `index` through the given serialization round trip and returns
/// the restored index (`kDirect` returns it untouched). Serialization
/// failures are reported as test failures and yield the original index so
/// the calling test can still proceed.
inline MetagraphVectorIndex ApplyRoundTrip(MetagraphVectorIndex&& index,
                                           IndexRoundTrip mode) {
  auto take = [&index](util::StatusOr<MetagraphVectorIndex> loaded)
      -> MetagraphVectorIndex {
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    if (!loaded.ok()) return std::move(index);
    return std::move(*loaded);
  };
  switch (mode) {
    case IndexRoundTrip::kDirect:
      return std::move(index);
    case IndexRoundTrip::kText: {
      std::ostringstream os;
      util::Status written = index.WriteTo(os);
      EXPECT_TRUE(written.ok()) << written.ToString();
      std::istringstream is(os.str());
      return take(MetagraphVectorIndex::ReadFrom(is));
    }
    case IndexRoundTrip::kBinaryCompact:
    case IndexRoundTrip::kBinaryAligned: {
      const BinaryLayout layout = mode == IndexRoundTrip::kBinaryCompact
                                      ? BinaryLayout::kCompact
                                      : BinaryLayout::kAligned;
      std::ostringstream os(std::ios::binary);
      util::Status written = index.WriteBinaryTo(os, layout);
      EXPECT_TRUE(written.ok()) << written.ToString();
      const std::string bytes = os.str();
      return take(MetagraphVectorIndex::ReadBinaryFrom(std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size())));
    }
    case IndexRoundTrip::kMapped: {
      const std::string path = UniqueTempPath("mapped_index");
      {
        std::ofstream out(path, std::ios::binary);
        EXPECT_TRUE(out.good()) << "cannot open " << path;
        util::Status written =
            index.WriteBinaryTo(out, BinaryLayout::kAligned);
        EXPECT_TRUE(written.ok()) << written.ToString();
      }
      return take(MetagraphVectorIndex::MapFromFile(path));
    }
  }
  return std::move(index);
}

}  // namespace metaprox::testing

#endif  // METAPROX_TESTS_TEST_HELPERS_H_
