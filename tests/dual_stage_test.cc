#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "learning/dual_stage.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

// Engine over the toy graph with all metagraphs mined at support 1.
std::unique_ptr<SearchEngine> MakeToyEngine(const testing::ToyGraph& toy) {
  EngineOptions options;
  options.miner.anchor_type = toy.user;
  options.miner.min_support = 1;
  options.miner.max_nodes = 4;
  options.transform = CountTransform::kRaw;
  auto engine = std::make_unique<SearchEngine>(toy.graph, options);
  engine->Mine();
  return engine;
}

std::vector<Example> ClassmateExamples(const testing::ToyGraph& toy) {
  return {
      {toy.kate, toy.jay, toy.alice}, {toy.kate, toy.jay, toy.bob},
      {toy.kate, toy.jay, toy.tom},   {toy.bob, toy.tom, toy.alice},
      {toy.bob, toy.tom, toy.kate},   {toy.bob, toy.tom, toy.jay},
  };
}

TEST(DualStage, SeedsAreExactlyMetapaths) {
  auto toy = testing::MakeToyGraph();
  auto engine = MakeToyEngine(toy);
  auto examples = ClassmateExamples(toy);

  DualStageOptions options;
  options.num_candidates = 3;
  DualStageResult result = engine->TrainDualStage(examples, options);

  const auto& metagraphs = engine->metagraphs();
  std::vector<uint32_t> expected_seeds;
  for (uint32_t i = 0; i < metagraphs.size(); ++i) {
    if (metagraphs[i].is_path) expected_seeds.push_back(i);
  }
  EXPECT_EQ(result.seeds, expected_seeds);
  EXPECT_FALSE(result.seeds.empty());
}

TEST(DualStage, CandidatesAreNonSeedsSortedByHeuristic) {
  auto toy = testing::MakeToyGraph();
  auto engine = MakeToyEngine(toy);
  auto examples = ClassmateExamples(toy);

  DualStageOptions options;
  options.num_candidates = 2;
  DualStageResult result = engine->TrainDualStage(examples, options);

  EXPECT_LE(result.candidates.size(), 2u);
  for (uint32_t c : result.candidates) {
    EXPECT_FALSE(engine->metagraphs()[c].is_path);
    EXPECT_GE(result.heuristic_scores[c], 0.0);
  }
  // Selected candidates have the highest H among non-seeds.
  double min_selected = 1e300;
  for (uint32_t c : result.candidates) {
    min_selected = std::min(min_selected, result.heuristic_scores[c]);
  }
  for (uint32_t j = 0; j < result.heuristic_scores.size(); ++j) {
    if (result.heuristic_scores[j] < 0.0) continue;  // seed
    if (std::find(result.candidates.begin(), result.candidates.end(), j) !=
        result.candidates.end()) {
      continue;
    }
    EXPECT_LE(result.heuristic_scores[j], min_selected + 1e-12);
  }
}

TEST(DualStage, ReverseHeuristicPicksWorst) {
  auto toy = testing::MakeToyGraph();
  auto engine_ch = MakeToyEngine(toy);
  auto engine_rch = MakeToyEngine(toy);
  auto examples = ClassmateExamples(toy);

  DualStageOptions ch;
  ch.num_candidates = 2;
  DualStageOptions rch = ch;
  rch.reverse_heuristic = true;

  DualStageResult r_ch = engine_ch->TrainDualStage(examples, ch);
  DualStageResult r_rch = engine_rch->TrainDualStage(examples, rch);
  // With enough non-seeds, the two selections should differ.
  if (r_ch.heuristic_scores.size() > r_ch.seeds.size() + 2) {
    EXPECT_NE(r_ch.candidates, r_rch.candidates);
  }
}

TEST(DualStage, OnlyNeededMetagraphsAreMatched) {
  auto toy = testing::MakeToyGraph();
  auto engine = MakeToyEngine(toy);
  auto examples = ClassmateExamples(toy);

  DualStageOptions options;
  options.num_candidates = 1;
  DualStageResult result = engine->TrainDualStage(examples, options);

  size_t committed = 0;
  for (uint32_t i = 0; i < engine->metagraphs().size(); ++i) {
    committed += engine->index().IsCommitted(i);
  }
  EXPECT_EQ(committed, result.seeds.size() + result.candidates.size());
  EXPECT_LT(committed, engine->metagraphs().size());
}

TEST(DualStage, FinalWeightsRestrictedToSeedsAndCandidates) {
  auto toy = testing::MakeToyGraph();
  auto engine = MakeToyEngine(toy);
  auto examples = ClassmateExamples(toy);

  DualStageOptions options;
  options.num_candidates = 2;
  DualStageResult result = engine->TrainDualStage(examples, options);

  std::vector<bool> allowed(engine->metagraphs().size(), false);
  for (uint32_t s : result.seeds) allowed[s] = true;
  for (uint32_t c : result.candidates) allowed[c] = true;
  for (uint32_t i = 0; i < result.final_stage.weights.size(); ++i) {
    if (!allowed[i]) {
      EXPECT_DOUBLE_EQ(result.final_stage.weights[i], 0.0);
    }
  }
}

TEST(FunctionalSimilarityTest, Formula) {
  std::vector<double> w = {0.9, 0.1, 0.9};
  EXPECT_DOUBLE_EQ(FunctionalSimilarity(w, 0, 2), 1.0);
  EXPECT_NEAR(FunctionalSimilarity(w, 0, 1), 0.2, 1e-12);
}

TEST(SsCache, MemoizesSymmetrically) {
  auto toy = testing::MakeToyGraph();
  auto engine = MakeToyEngine(toy);
  const auto& metagraphs = engine->metagraphs();
  if (metagraphs.size() < 2) GTEST_SKIP();
  StructuralSimilarityCache cache;
  double a = cache.Get(metagraphs, 0, 1);
  double b = cache.Get(metagraphs, 1, 0);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0);
}

}  // namespace
}  // namespace metaprox
