#include <gtest/gtest.h>

#include "metagraph/automorphism.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace metaprox {
namespace {

// M1 from Fig. 2: two users joined through a shared school and major.
Metagraph MakeM1() {
  Metagraph m;
  MetaNodeId u1 = m.AddNode(0);  // user
  MetaNodeId u2 = m.AddNode(0);  // user
  MetaNodeId s = m.AddNode(1);   // school
  MetaNodeId j = m.AddNode(2);   // major
  m.AddEdge(u1, s);
  m.AddEdge(u2, s);
  m.AddEdge(u1, j);
  m.AddEdge(u2, j);
  return m;
}

// M5 from Fig. 5: 6 nodes, users u0,u2,u4 (u2 center), school, majors.
// Layout per the paper: u0-u1(major), u0-u2(user), u2-u3(school),
// u4-u3, u4-u5(major), u4-u2. Symmetric pairs: (u0,u4), (u1,u5).
Metagraph MakeM5() {
  Metagraph m;
  MetaNodeId u1 = m.AddNode(0);     // user (left)
  MetaNodeId mj1 = m.AddNode(2);    // major (left)
  MetaNodeId u3 = m.AddNode(0);     // user (center)
  MetaNodeId sc = m.AddNode(1);     // school
  MetaNodeId u5 = m.AddNode(0);     // user (right)
  MetaNodeId mj2 = m.AddNode(2);    // major (right)
  m.AddEdge(u1, mj1);
  m.AddEdge(u1, u3);
  m.AddEdge(u1, sc);
  m.AddEdge(u5, mj2);
  m.AddEdge(u5, u3);
  m.AddEdge(u5, sc);
  return m;
}

TEST(Automorphism, PathUserSchoolUser) {
  Metagraph m = MakePath({0, 1, 0});
  SymmetryInfo info = AnalyzeSymmetry(m);
  EXPECT_EQ(info.aut_size(), 2u);  // identity + endpoint swap
  EXPECT_TRUE(info.is_symmetric);
  ASSERT_EQ(info.symmetric_pairs.size(), 1u);
  EXPECT_EQ(info.symmetric_pairs[0], std::make_pair(MetaNodeId{0},
                                                    MetaNodeId{2}));
  EXPECT_TRUE(info.IsSymmetricPair(0, 2));
  EXPECT_TRUE(info.IsSymmetricPair(2, 0));
  EXPECT_FALSE(info.IsSymmetricPair(0, 1));
  EXPECT_TRUE(info.IsSymmetricNode(0));
  EXPECT_FALSE(info.IsSymmetricNode(1));
}

TEST(Automorphism, AsymmetricPath) {
  Metagraph m = MakePath({0, 1, 2});
  SymmetryInfo info = AnalyzeSymmetry(m);
  EXPECT_EQ(info.aut_size(), 1u);
  EXPECT_FALSE(info.is_symmetric);
  EXPECT_TRUE(info.symmetric_pairs.empty());
  EXPECT_EQ(info.num_orbits, 3);
}

TEST(Automorphism, M1HasUserSwap) {
  SymmetryInfo info = AnalyzeSymmetry(MakeM1());
  EXPECT_EQ(info.aut_size(), 2u);
  EXPECT_TRUE(info.IsSymmetricPair(0, 1));
  EXPECT_EQ(info.num_orbits, 3);  // {u1,u2}, {school}, {major}
}

TEST(Automorphism, SameTypeTriangle) {
  Metagraph m;
  m.AddNode(0);
  m.AddNode(0);
  m.AddNode(0);
  m.AddEdge(0, 1);
  m.AddEdge(1, 2);
  m.AddEdge(0, 2);
  SymmetryInfo info = AnalyzeSymmetry(m);
  EXPECT_EQ(info.aut_size(), 6u);  // S3
  // All three transpositions are involutions.
  EXPECT_EQ(info.symmetric_pairs.size(), 3u);
  EXPECT_EQ(info.num_orbits, 1);
}

TEST(Automorphism, M5PairsAndOrbits) {
  SymmetryInfo info = AnalyzeSymmetry(MakeM5());
  EXPECT_TRUE(info.is_symmetric);
  EXPECT_TRUE(info.IsSymmetricPair(0, 4));  // left/right user
  EXPECT_TRUE(info.IsSymmetricPair(1, 5));  // left/right major
  EXPECT_FALSE(info.IsSymmetricNode(2));    // center user fixed
  EXPECT_FALSE(info.IsSymmetricNode(3));    // school fixed
  EXPECT_EQ(info.aut_size(), 2u);
}

TEST(Automorphism, StarOfSameTypedLeaves) {
  Metagraph m;
  MetaNodeId center = m.AddNode(1);
  for (int i = 0; i < 3; ++i) m.AddEdge(center, m.AddNode(0));
  SymmetryInfo info = AnalyzeSymmetry(m);
  EXPECT_EQ(info.aut_size(), 6u);  // permute 3 leaves
  EXPECT_EQ(info.symmetric_pairs.size(), 3u);
  EXPECT_EQ(info.num_orbits, 2);
}

TEST(Automorphism, TypePreservationRequired) {
  // Path 0-1-2 with distinct leaf types has no swap even though the
  // structure is mirror-symmetric.
  Metagraph m = MakePath({1, 0, 2});
  SymmetryInfo info = AnalyzeSymmetry(m);
  EXPECT_EQ(info.aut_size(), 1u);
}

TEST(Automorphism, IsAutomorphismChecksEdges) {
  Metagraph m = MakePath({0, 0, 0});  // path of 3 same-type nodes
  MetaPermutation ident{0, 1, 2};
  MetaPermutation swap_ends{2, 1, 0};
  MetaPermutation rotate{1, 2, 0};
  EXPECT_TRUE(IsAutomorphism(m, ident));
  EXPECT_TRUE(IsAutomorphism(m, swap_ends));
  EXPECT_FALSE(IsAutomorphism(m, rotate));
}

TEST(AutomorphismProperty, GroupClosureUnderComposition) {
  util::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    Metagraph m = testing::MakeRandomMetagraph(
        2 + static_cast<int>(rng.UniformInt(4)), 2, rng);
    SymmetryInfo info = AnalyzeSymmetry(m);
    const int n = m.num_nodes();
    // Composition of any two automorphisms is an automorphism.
    for (size_t i = 0; i < info.automorphisms.size(); ++i) {
      for (size_t j = 0; j < info.automorphisms.size(); ++j) {
        MetaPermutation comp{};
        for (int v = 0; v < n; ++v) {
          comp[v] = info.automorphisms[i][info.automorphisms[j][v]];
        }
        EXPECT_TRUE(IsAutomorphism(m, comp));
      }
    }
    // Group size divides n! and includes identity.
    bool has_identity = false;
    for (const auto& p : info.automorphisms) {
      bool ident = true;
      for (int v = 0; v < n; ++v) ident &= (p[v] == v);
      has_identity |= ident;
    }
    EXPECT_TRUE(has_identity);
  }
}

}  // namespace
}  // namespace metaprox
