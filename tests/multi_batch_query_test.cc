// The shared-window multi-model batch's determinism contract:
// BatchRankByProximityMulti / SearchEngine::BatchQueryMulti must return,
// for every entry i, results IDENTICAL — same nodes, same (bitwise)
// scores, same tie-break order — to Query() under queries[i]'s own model,
// and therefore to per-model BatchRankByProximity, for every window size,
// model mix (including duplicates of a node across models), pool size and
// kernel. Also covers the gather-amortization stats and concurrent windows
// on distinct scratches (the TSan concurrency label).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/query_batch.h"
#include "datagen/facebook.h"
#include "eval/splits.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

struct Pipeline {
  datagen::Dataset ds;
  std::unique_ptr<SearchEngine> engine;
  // models[0] is trained; the rest are synthetic mixes that disagree with
  // it (so a query ranked under the wrong model would be caught).
  std::vector<MgpModel> models;
  std::vector<NodeId> users;
};

const Pipeline& SharedPipeline() {
  static const Pipeline* pipeline = [] {
    auto* p = new Pipeline();
    datagen::FacebookConfig cfg;
    cfg.num_users = 220;
    p->ds = datagen::GenerateFacebook(cfg, 47);

    EngineOptions options;
    options.miner.anchor_type = p->ds.user_type;
    options.miner.min_support = 3;
    options.miner.max_nodes = 4;
    options.num_threads = 4;  // BatchQueryMulti must use the pooled path
    p->engine = std::make_unique<SearchEngine>(p->ds.graph, options);
    p->engine->Mine();
    p->engine->MatchAll();

    const GroundTruth* family = p->ds.FindClass("family");
    MX_CHECK(family != nullptr);
    util::Rng rng(9);
    QuerySplit split = SplitQueries(*family, 0.2, rng);
    auto pool = p->ds.graph.NodesOfType(p->ds.user_type);
    std::vector<NodeId> pool_vec(pool.begin(), pool.end());
    auto examples = SampleExamples(*family, split.train, pool_vec, 150, rng);
    TrainOptions train;
    train.max_iterations = 200;
    p->models.push_back(p->engine->Train(examples, train));

    const size_t n = p->engine->index().num_metagraphs();
    MgpModel uniform, evens, odds, taper;
    uniform.weights.assign(n, 1.0);
    evens.weights.assign(n, 0.0);
    odds.weights.assign(n, 0.0);
    taper.weights.assign(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      if (i % 2 == 0) evens.weights[i] = 1.0;
      if (i % 2 == 1) odds.weights[i] = 1.0;
      taper.weights[i] = 1.0 / static_cast<double>(1 + i % 7);
    }
    p->models.push_back(std::move(uniform));
    p->models.push_back(std::move(evens));
    p->models.push_back(std::move(odds));
    p->models.push_back(std::move(taper));

    p->users.assign(pool.begin(), pool.end());
    return p;
  }();
  return *pipeline;
}

// First n_models spans, as BatchRankByProximityMulti consumes them.
std::vector<std::span<const double>> WeightSpans(size_t n_models) {
  const Pipeline& p = SharedPipeline();
  MX_CHECK(n_models <= p.models.size());
  std::vector<std::span<const double>> spans;
  spans.reserve(n_models);
  for (size_t m = 0; m < n_models; ++m) spans.push_back(p.models[m].weights);
  return spans;
}

// A window of `n` queries cycling the user pool, striping models round
// robin over `n_models` so every window mixes every model.
struct Window {
  std::vector<NodeId> queries;
  std::vector<uint32_t> model_of;
};

Window WindowOf(size_t n, size_t n_models) {
  const Pipeline& p = SharedPipeline();
  Window w;
  for (size_t i = 0; i < n; ++i) {
    w.queries.push_back(p.users[i % p.users.size()]);
    w.model_of.push_back(static_cast<uint32_t>(i % n_models));
  }
  return w;
}

// Exact equality against the per-query path under each query's OWN model.
void ExpectIdenticalToQuery(const Window& w, size_t k,
                            const std::vector<QueryResult>& multi) {
  const Pipeline& p = SharedPipeline();
  ASSERT_EQ(multi.size(), w.queries.size());
  for (size_t i = 0; i < w.queries.size(); ++i) {
    const QueryResult sequential =
        p.engine->Query(p.models[w.model_of[i]], w.queries[i], k);
    ASSERT_EQ(multi[i].size(), sequential.size())
        << "query #" << i << " (node " << w.queries[i] << ", model "
        << w.model_of[i] << ")";
    for (size_t r = 0; r < sequential.size(); ++r) {
      EXPECT_EQ(multi[i][r].first, sequential[r].first)
          << "query #" << i << " rank " << r;
      EXPECT_EQ(multi[i][r].second, sequential[r].second)
          << "query #" << i << " rank " << r;
    }
  }
}

TEST(MultiBatchQuery, MixedWindowsIdenticalToQueryAcrossSizesModelsThreads) {
  const Pipeline& p = SharedPipeline();
  util::ThreadPool one_thread(1);
  util::ThreadPool four_threads(4);
  const std::vector<std::pair<const char*, util::ThreadPool*>> pools = {
      {"no pool", nullptr}, {"1 thread", &one_thread},
      {"4 threads", &four_threads}};
  for (size_t window : {size_t{1}, size_t{7}, size_t{64}}) {
    for (size_t n_models : {size_t{1}, size_t{2}, size_t{5}}) {
      const Window w = WindowOf(window, n_models);
      const auto spans = WeightSpans(n_models);
      for (const auto& [name, pool] : pools) {
        SCOPED_TRACE(::testing::Message() << "window " << window << ", "
                                          << n_models << " models, " << name);
        auto multi = BatchRankByProximityMulti(
            p.engine->index(), spans, w.queries, w.model_of, /*k=*/10, pool);
        ExpectIdenticalToQuery(w, 10, multi);
      }
    }
  }
}

TEST(MultiBatchQuery, MatchesPerModelBatchRankByProximity) {
  const Pipeline& p = SharedPipeline();
  const size_t n_models = 5;
  const Window w = WindowOf(40, n_models);
  auto multi = BatchRankByProximityMulti(p.engine->index(),
                                         WeightSpans(n_models), w.queries,
                                         w.model_of, /*k=*/10);
  // Re-rank each model's slice through the single-model batch: the two
  // schedules must agree bitwise, result for result.
  for (uint32_t m = 0; m < n_models; ++m) {
    std::vector<NodeId> slice;
    std::vector<size_t> positions;
    for (size_t i = 0; i < w.queries.size(); ++i) {
      if (w.model_of[i] == m) {
        slice.push_back(w.queries[i]);
        positions.push_back(i);
      }
    }
    auto single = BatchRankByProximity(p.engine->index(),
                                       p.models[m].weights, slice, /*k=*/10);
    for (size_t j = 0; j < slice.size(); ++j) {
      EXPECT_EQ(multi[positions[j]], single[j])
          << "model " << m << ", slice entry " << j;
    }
  }
}

TEST(MultiBatchQuery, DuplicateNodesAcrossModelsScoreUnderTheirOwnModel) {
  const Pipeline& p = SharedPipeline();
  // The SAME node queried under several models in one window (the serving
  // case this path exists for), plus exact (node, model) duplicates that
  // must share one result.
  Window w;
  const NodeId a = p.users[3];
  const NodeId b = p.users[8];
  w.queries = {a, a, a, b, a, b};
  w.model_of = {0, 2, 0, 1, 4, 1};
  auto multi = BatchRankByProximityMulti(p.engine->index(), WeightSpans(5),
                                         w.queries, w.model_of, /*k=*/10);
  ExpectIdenticalToQuery(w, 10, multi);
  EXPECT_EQ(multi[0], multi[2]);  // (a, model 0) duplicated
  EXPECT_EQ(multi[3], multi[5]);  // (b, model 1) duplicated
}

TEST(MultiBatchQuery, EngineBatchQueryMultiReusesScratchAcrossMixedCalls) {
  Pipeline& p = const_cast<Pipeline&>(SharedPipeline());
  // Alternate multi windows of different widths with plain BatchQuery on
  // the same engine: the shared scratch must expire cleanly between
  // layouts (wrong expiry would surface as stale dots, i.e. wrong scores).
  for (size_t n_models : {size_t{5}, size_t{1}, size_t{3}}) {
    const Window w = WindowOf(30, n_models);
    auto multi = p.engine->BatchQueryMulti(WeightSpans(n_models), w.queries,
                                           w.model_of, 10);
    ExpectIdenticalToQuery(w, 10, multi);
    const std::vector<NodeId> queries = w.queries;
    auto single = p.engine->BatchQuery(p.models[0], queries, 10);
    for (size_t i = 0; i < queries.size(); ++i) {
      const QueryResult expected = p.engine->Query(p.models[0], queries[i], 10);
      EXPECT_EQ(single[i], expected) << "single-model call after multi, #" << i;
    }
  }
}

TEST(MultiBatchQuery, StatsAccountForSharedGather) {
  Pipeline& p = const_cast<Pipeline&>(SharedPipeline());
  const Window w = WindowOf(64, 4);
  BatchMultiStats stats;
  auto multi = p.engine->BatchQueryMulti(WeightSpans(4), w.queries,
                                         w.model_of, 10, &stats);
  ExpectIdenticalToQuery(w, 10, multi);
  EXPECT_GT(stats.rows_gathered, 0u);
  // The union gather can never touch more rows than four per-model gathers
  // would, and with the user pool striped round robin the models' candidate
  // sets overlap heavily — the shared window must actually save.
  EXPECT_GT(stats.rows_per_model, stats.rows_gathered);
  // Queries of one window are mutual candidates here, so some pair rows
  // must have been precomputed once for all models.
  EXPECT_GT(stats.shared_pair_rows, 0u);

  // One model: the union IS the per-model gather; nothing to save.
  const Window w1 = WindowOf(16, 1);
  BatchMultiStats stats1;
  (void)p.engine->BatchQueryMulti(WeightSpans(1), w1.queries, w1.model_of, 10,
                                  &stats1);
  EXPECT_EQ(stats1.rows_per_model, stats1.rows_gathered);
}

TEST(MultiBatchQuery, EmptyWindowReturnsEmpty) {
  Pipeline& p = const_cast<Pipeline&>(SharedPipeline());
  BatchMultiStats stats;
  stats.rows_gathered = 99;  // must be reset even on the empty path
  EXPECT_TRUE(
      p.engine->BatchQueryMulti(WeightSpans(2), {}, {}, 10, &stats).empty());
  EXPECT_EQ(stats.rows_gathered, 0u);
}

// Concurrent windows on DISTINCT scratches and pools (the documented
// contract: a scratch belongs to one caller at a time, but nothing else is
// shared mutably). Run under TSan via the concurrency label.
TEST(MultiBatchQuery, ConcurrentWindowsOnDistinctScratches) {
  const Pipeline& p = SharedPipeline();
  constexpr size_t kThreads = 4;
  std::vector<std::vector<QueryResult>> results(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const size_t n_models = 1 + t % 5;
      const Window w = WindowOf(24 + t, n_models);
      const auto spans = WeightSpans(n_models);
      util::ThreadPool pool(2);
      BatchScratch scratch;
      for (int round = 0; round < 3; ++round) {
        results[t] = BatchRankByProximityMulti(p.engine->index(), spans,
                                               w.queries, w.model_of,
                                               /*k=*/10, &pool, &scratch);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    const size_t n_models = 1 + t % 5;
    const Window w = WindowOf(24 + t, n_models);
    SCOPED_TRACE(::testing::Message() << "thread " << t);
    ExpectIdenticalToQuery(w, 10, results[t]);
  }
}

}  // namespace
}  // namespace metaprox
