// Test battery for the v2 binary artifact stack (util/binary_io.h,
// util/lzw.h, util/container.h, the index's WriteBinaryTo/ReadBinaryFrom/
// MapFromFile and the model's binary format):
//
//   * unit tests of the primitives at their boundary values (varints at
//     0, 2^31-1, 2^31, 2^63-1, UINT64_MAX; CRC-32 known vectors; LZW
//     across a dictionary reset),
//   * cross-format property tests — text, binary-compact, binary-aligned
//     and memory-mapped loads of the same index must agree BITWISE on
//     every dot product and candidate set,
//   * a corruption battery: every artifact byte is flipped and every
//     truncation length tried, and each load must either fail with a
//     structured Status or succeed with results identical to the
//     reference — never crash, hang, or silently answer wrong (CI runs
//     this under ASan+UBSan, so "never crash" includes "never reads out
//     of bounds"),
//   * golden-file tests pinning the exact encoded bytes (regeneration:
//     see tests/golden/README.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "index/metagraph_vectors.h"
#include "learning/model_io.h"
#include "matching/matcher.h"
#include "test_helpers.h"
#include "util/binary_io.h"
#include "util/container.h"
#include "util/lzw.h"
#include "util/rng.h"

namespace metaprox {
namespace {

std::span<const uint8_t> AsBytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// ---- varints ---------------------------------------------------------------

TEST(Varint, RoundTripsBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (uint64_t{1} << 31) - 1,
                             uint64_t{1} << 31,
                             (uint64_t{1} << 32) - 1,
                             uint64_t{1} << 32,
                             (uint64_t{1} << 63) - 1,
                             uint64_t{1} << 63,
                             UINT64_MAX};
  for (uint64_t v : values) {
    std::string buf;
    util::AppendVarint(&buf, v);
    size_t pos = 0;
    uint64_t out = 0;
    ASSERT_TRUE(util::ReadVarint(AsBytes(buf), &pos, &out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size()) << v;
  }
  // Encoded lengths at the 7-bit group boundaries.
  auto encoded_len = [](uint64_t v) {
    std::string buf;
    util::AppendVarint(&buf, v);
    return buf.size();
  };
  EXPECT_EQ(encoded_len(0), 1u);
  EXPECT_EQ(encoded_len(127), 1u);
  EXPECT_EQ(encoded_len(128), 2u);
  EXPECT_EQ(encoded_len((uint64_t{1} << 63) - 1), 9u);
  EXPECT_EQ(encoded_len(UINT64_MAX), 10u);

  // A concatenated stream decodes value by value.
  std::string stream;
  for (uint64_t v : values) util::AppendVarint(&stream, v);
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(util::ReadVarint(AsBytes(stream), &pos, &out));
    EXPECT_EQ(out, v);
  }
  EXPECT_EQ(pos, stream.size());
}

TEST(Varint, RejectsEveryTruncation) {
  std::string buf;
  util::AppendVarint(&buf, UINT64_MAX);
  ASSERT_EQ(buf.size(), 10u);
  for (size_t len = 0; len < buf.size(); ++len) {
    size_t pos = 0;
    uint64_t out = 0;
    EXPECT_FALSE(
        util::ReadVarint(AsBytes(buf).subspan(0, len), &pos, &out))
        << "prefix of length " << len << " decoded";
  }
}

TEST(Varint, RejectsOverlongAndOverflowingEncodings) {
  size_t pos = 0;
  uint64_t out = 0;
  // Eleven continuation bytes: longer than any encoding AppendVarint emits.
  std::string overlong(11, '\x80');
  overlong.push_back('\x01');
  pos = 0;
  EXPECT_FALSE(util::ReadVarint(AsBytes(overlong), &pos, &out));
  // Ten bytes whose 10th carries bits beyond 2^64 (UINT64_MAX's encoding
  // ends in 0x01; 0x03 would need a 65th bit).
  std::string overflow(9, '\xff');
  overflow.push_back('\x03');
  pos = 0;
  EXPECT_FALSE(util::ReadVarint(AsBytes(overflow), &pos, &out));
}

// ---- CRC-32 ----------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // The IEEE 802.3 check value ("123456789" -> 0xCBF43926, cf. zlib).
  EXPECT_EQ(util::Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(util::Crc32(std::string("")), 0u);
  EXPECT_NE(util::Crc32(std::string("a")), util::Crc32(std::string("b")));
}

// ---- LZW -------------------------------------------------------------------

TEST(Lzw, RoundTripsVariedPayloads) {
  std::vector<std::string> payloads;
  payloads.emplace_back("");
  payloads.emplace_back("a");
  payloads.emplace_back(100000, 'x');  // maximally repetitive
  {
    std::string all_bytes;
    for (int r = 0; r < 16; ++r) {
      for (int b = 0; b < 256; ++b) all_bytes.push_back(static_cast<char>(b));
    }
    payloads.push_back(std::move(all_bytes));
  }
  {
    // Incompressible random bytes (compressed form is larger; the codec
    // must still round-trip it).
    util::Rng rng(11);
    std::string random_bytes;
    for (int i = 0; i < 50000; ++i) {
      random_bytes.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    payloads.push_back(std::move(random_bytes));
  }
  {
    // Long enough that the 2^16-entry dictionary RESETS mid-stream (each
    // emitted code consumes at least one input byte, so ~400KB of
    // low-entropy-but-varied content crosses the window at least once);
    // encoder and decoder must reset in lockstep.
    util::Rng rng(12);
    std::string long_mixed;
    while (long_mixed.size() < 400000) {
      long_mixed.append(std::string(rng.UniformInt(20) + 1,
                                    static_cast<char>(rng.Next() & 0x0f)));
    }
    payloads.push_back(std::move(long_mixed));
  }
  for (const std::string& payload : payloads) {
    const std::string packed = util::LzwCompress(payload);
    auto unpacked = util::LzwDecompress(packed, payload.size());
    ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
    EXPECT_TRUE(*unpacked == payload)
        << "round trip lost " << payload.size() << " bytes";
  }
}

TEST(Lzw, DeclaredSizeMismatchIsAnError) {
  const std::string payload(1000, 'q');
  const std::string packed = util::LzwCompress(payload);
  EXPECT_TRUE(util::LzwDecompress(packed, payload.size()).ok());
  EXPECT_FALSE(util::LzwDecompress(packed, payload.size() - 1).ok());
  EXPECT_FALSE(util::LzwDecompress(packed, payload.size() + 1).ok());
  EXPECT_FALSE(util::LzwDecompress(packed, 0).ok());
}

TEST(Lzw, GarbageInputNeverCrashes) {
  util::Rng rng(13);
  for (int round = 0; round < 300; ++round) {
    std::string garbage;
    const size_t len = rng.UniformInt(64);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    for (size_t declared : {size_t{0}, size_t{1}, len, size_t{1000}}) {
      auto result = util::LzwDecompress(garbage, declared);
      // Either a structured error or exactly the declared size — and a
      // huge declared size must not preallocate the claimed bytes.
      if (result.ok()) {
        EXPECT_EQ(result->size(), declared);
      }
    }
    auto huge = util::LzwDecompress(garbage, size_t{1} << 60);
    EXPECT_FALSE(huge.ok());
  }
}

// ---- container -------------------------------------------------------------

std::string WriteContainer(uint32_t kind, bool compressible_payload = true) {
  util::ContainerWriter writer(kind);
  // Section 1: compressible, asked to compress -> stored LZW.
  writer.AddSection(1, std::string(4096, 'z'), 0, compressible_payload);
  // Section 2: marked packed, stored raw.
  writer.AddSection(2, "packed-bytes", util::kSectionPacked);
  // Section 3: empty payload.
  writer.AddSection(3, "");
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(writer.WriteTo(os).ok());
  return os.str();
}

TEST(Container, RoundTripsSectionsAndFlags) {
  const std::string bytes = WriteContainer(util::kIndexArtifact);
  auto reader =
      util::ContainerReader::Parse(AsBytes(bytes), util::kIndexArtifact,
                                   /*verify_checksums=*/true);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  ASSERT_TRUE(reader->Has(1));
  ASSERT_TRUE(reader->Has(2));
  ASSERT_TRUE(reader->Has(3));
  EXPECT_FALSE(reader->Has(4));
  EXPECT_TRUE(reader->Flags(1) & util::kSectionLzw);  // 4KB of 'z' shrinks
  EXPECT_EQ(reader->Flags(2), util::kSectionPacked);

  auto s1 = reader->Section(1);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->bytes.size(), 4096u);
  auto s2 = reader->Section(2);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(std::string(s2->bytes.begin(), s2->bytes.end()), "packed-bytes");
  auto s3 = reader->Section(3);
  ASSERT_TRUE(s3.ok());
  EXPECT_TRUE(s3->bytes.empty());
  EXPECT_FALSE(reader->Section(4).ok());
}

TEST(Container, IncompressibleSectionStaysRaw) {
  util::Rng rng(14);
  std::string noise;
  for (int i = 0; i < 4096; ++i) {
    noise.push_back(static_cast<char>(rng.Next() & 0xff));
  }
  util::ContainerWriter writer(util::kModelArtifact);
  writer.AddSection(1, noise, 0, /*try_compress=*/true);
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(writer.WriteTo(os).ok());
  const std::string bytes = os.str();
  auto reader = util::ContainerReader::Parse(AsBytes(bytes),
                                             util::kModelArtifact, true);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->Flags(1) & util::kSectionLzw, 0u);
  auto section = reader->Section(1);
  ASSERT_TRUE(section.ok());
  EXPECT_EQ(std::string(section->bytes.begin(), section->bytes.end()), noise);
}

TEST(Container, OutputIsByteDeterministic) {
  EXPECT_EQ(WriteContainer(util::kIndexArtifact),
            WriteContainer(util::kIndexArtifact));
}

TEST(Container, RejectsStructuralCorruption) {
  const std::string good = WriteContainer(util::kIndexArtifact);
  auto parse = [](const std::string& bytes, uint32_t kind) {
    return util::ContainerReader::Parse(AsBytes(bytes), kind, true);
  };
  ASSERT_TRUE(parse(good, util::kIndexArtifact).ok());

  // Wrong expected kind (an index artifact fed to the model loader).
  EXPECT_FALSE(parse(good, util::kModelArtifact).ok());

  // Header field corruption, one field at a time (offsets per the spec in
  // util/container.h): magic, kind, version, section_count, table_crc,
  // total_size.
  for (size_t offset : {size_t{0}, size_t{8}, size_t{12}, size_t{16},
                        size_t{20}, size_t{24}}) {
    std::string bad = good;
    bad[offset] ^= 0x01;
    EXPECT_FALSE(parse(bad, util::kIndexArtifact).ok())
        << "header byte " << offset;
  }

  // A flipped section-table byte must trip the table CRC.
  {
    std::string bad = good;
    bad[32] ^= 0x01;  // first table entry's id
    EXPECT_FALSE(parse(bad, util::kIndexArtifact).ok());
  }

  // Too short / too long both violate total_size.
  EXPECT_FALSE(parse(good.substr(0, good.size() - 1),
                     util::kIndexArtifact).ok());
  EXPECT_FALSE(parse(good + 'x', util::kIndexArtifact).ok());
  EXPECT_FALSE(parse(std::string(), util::kIndexArtifact).ok());
  EXPECT_FALSE(parse(std::string("short"), util::kIndexArtifact).ok());
}

TEST(Container, PayloadCorruptionCaughtByChecksums) {
  const std::string good = WriteContainer(util::kIndexArtifact);
  // Flip a byte inside a payload (section 2 is stored raw, so its bytes
  // appear verbatim in the file). Alignment PADDING is deliberately not
  // checksummed — the corruption battery covers that distinction — but a
  // payload flip must be caught.
  const size_t payload_pos = good.find("packed-bytes");
  ASSERT_NE(payload_pos, std::string::npos);
  std::string bad = good;
  bad[payload_pos] ^= 0xff;
  EXPECT_FALSE(util::ContainerReader::Parse(AsBytes(bad),
                                            util::kIndexArtifact, true)
                   .ok());
  // The same corruption passes structural parsing when checksum
  // verification is off — the documented trusted-file fast path.
  auto lax = util::ContainerReader::Parse(AsBytes(bad), util::kIndexArtifact,
                                          /*verify_checksums=*/false);
  EXPECT_TRUE(lax.ok());
}

TEST(Container, MagicDetection) {
  const std::string good = WriteContainer(util::kIndexArtifact);
  EXPECT_TRUE(util::StartsWithContainerMagic(good));
  EXPECT_FALSE(util::StartsWithContainerMagic(std::string("metaprox-index")));
  EXPECT_FALSE(util::StartsWithContainerMagic(std::string()));

  const std::string path = testing::UniqueTempPath("container_magic");
  { std::ofstream(path, std::ios::binary) << good; }
  auto is_container = util::PathIsContainer(path);
  ASSERT_TRUE(is_container.ok());
  EXPECT_TRUE(*is_container);
  { std::ofstream(path) << "metaprox-index v1\n"; }
  is_container = util::PathIsContainer(path);
  ASSERT_TRUE(is_container.ok());
  EXPECT_FALSE(*is_container);
  EXPECT_EQ(util::PathIsContainer(path + ".does-not-exist").status().code(),
            util::StatusCode::kNotFound);
}

// ---- index: cross-format bitwise agreement ---------------------------------

// The canonical small index every format/corruption test uses: toy graph,
// three metagraphs (the third left uncommitted), log1p transform.
MetagraphVectorIndex BuildReferenceIndex(const testing::ToyGraph& toy) {
  std::vector<Metagraph> metagraphs = {
      MakePath({toy.user, toy.school, toy.user}),
      MakePath({toy.user, toy.address, toy.user}),
      MakePath({toy.user, toy.employer, toy.user})};
  MetagraphVectorIndex index(metagraphs.size(), toy.graph.num_nodes(),
                             CountTransform::kLog1p);
  auto matcher = CreateMatcher(MatcherKind::kSymISO);
  for (uint32_t i = 0; i + 1 < metagraphs.size(); ++i) {
    SymmetryInfo sym = AnalyzeSymmetry(metagraphs[i]);
    SymPairCountingSink sink(sym, UINT64_MAX);
    matcher->Match(toy.graph, metagraphs[i], &sink);
    index.Commit(i, sink, sym.aut_size());
  }
  index.Finalize();
  return index;
}

std::string BinaryBytes(const MetagraphVectorIndex& index,
                        BinaryLayout layout) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(index.WriteBinaryTo(os, layout).ok());
  return os.str();
}

// Full observable behavior of an index, flattened for exact comparison:
// dimensions, commit flags, every dot product under a fixed weight vector,
// and every (sorted) candidate list.
std::vector<double> IndexSignature(const MetagraphVectorIndex& index) {
  std::vector<double> sig;
  sig.push_back(static_cast<double>(index.num_metagraphs()));
  sig.push_back(static_cast<double>(index.num_graph_nodes()));
  sig.push_back(static_cast<double>(index.num_pairs()));
  std::vector<double> w(index.num_metagraphs());
  for (size_t i = 0; i < w.size(); ++i) w[i] = 0.25 + 0.5 * i;
  for (uint32_t m = 0; m < index.num_metagraphs(); ++m) {
    sig.push_back(index.IsCommitted(m) ? 1.0 : 0.0);
  }
  const NodeId n = static_cast<NodeId>(index.num_graph_nodes());
  for (NodeId x = 0; x < n; ++x) {
    sig.push_back(index.NodeDot(x, w));
    for (NodeId y = x + 1; y < n; ++y) sig.push_back(index.PairDot(x, y, w));
    auto cands = index.Candidates(x);
    std::vector<NodeId> sorted(cands.begin(), cands.end());
    std::sort(sorted.begin(), sorted.end());
    sig.push_back(static_cast<double>(sorted.size()));
    for (NodeId c : sorted) sig.push_back(static_cast<double>(c));
  }
  return sig;
}

TEST(IndexBinaryFormat, AllFormatsAgreeBitwise) {
  auto toy = testing::MakeToyGraph();
  MetagraphVectorIndex reference = BuildReferenceIndex(toy);
  const std::vector<double> expected = IndexSignature(reference);

  for (auto mode : {testing::IndexRoundTrip::kText,
                    testing::IndexRoundTrip::kBinaryCompact,
                    testing::IndexRoundTrip::kBinaryAligned,
                    testing::IndexRoundTrip::kMapped}) {
    MetagraphVectorIndex loaded =
        testing::ApplyRoundTrip(BuildReferenceIndex(toy), mode);
    // operator== on doubles: the formats are exact, so the agreement must
    // be bitwise, not approximate.
    EXPECT_EQ(IndexSignature(loaded), expected)
        << testing::IndexRoundTripName(mode);
  }
}

TEST(IndexBinaryFormat, RandomGraphFormatsAgree) {
  Graph graph = testing::MakeRandomGraph(80, 4, 3.0, 7);
  util::Rng rng(21);
  std::vector<Metagraph> metagraphs;
  for (int i = 0; i < 5; ++i) {
    metagraphs.push_back(testing::MakeRandomMetagraph(3, 4, rng));
  }
  auto build = [&] {
    MetagraphVectorIndex index(metagraphs.size(), graph.num_nodes(),
                               CountTransform::kLog1p);
    auto matcher = CreateMatcher(MatcherKind::kSymISO);
    for (uint32_t i = 0; i < metagraphs.size(); ++i) {
      SymmetryInfo sym = AnalyzeSymmetry(metagraphs[i]);
      SymPairCountingSink sink(sym, UINT64_MAX);
      matcher->Match(graph, metagraphs[i], &sink);
      index.Commit(i, sink, sym.aut_size());
    }
    index.Finalize();
    return index;
  };
  const std::vector<double> expected = IndexSignature(build());
  for (auto mode : {testing::IndexRoundTrip::kText,
                    testing::IndexRoundTrip::kBinaryCompact,
                    testing::IndexRoundTrip::kBinaryAligned,
                    testing::IndexRoundTrip::kMapped}) {
    EXPECT_EQ(IndexSignature(testing::ApplyRoundTrip(build(), mode)), expected)
        << testing::IndexRoundTripName(mode);
  }
}

TEST(IndexBinaryFormat, EmptyIndexRoundTrips) {
  // Zero metagraphs over a few nodes: every section is present but empty.
  for (auto mode : {testing::IndexRoundTrip::kText,
                    testing::IndexRoundTrip::kBinaryCompact,
                    testing::IndexRoundTrip::kBinaryAligned,
                    testing::IndexRoundTrip::kMapped}) {
    MetagraphVectorIndex empty(0, 4, CountTransform::kRaw);
    empty.Finalize();
    MetagraphVectorIndex loaded =
        testing::ApplyRoundTrip(std::move(empty), mode);
    EXPECT_EQ(loaded.num_metagraphs(), 0u);
    EXPECT_EQ(loaded.num_graph_nodes(), 4u);
    EXPECT_EQ(loaded.num_pairs(), 0u);
    EXPECT_TRUE(loaded.Candidates(0).empty());
  }
}

TEST(IndexBinaryFormat, MmapRequiresAlignedLayout) {
  auto toy = testing::MakeToyGraph();
  MetagraphVectorIndex index = BuildReferenceIndex(toy);

  const std::string compact_path = testing::UniqueTempPath("compact_index");
  { std::ofstream(compact_path, std::ios::binary)
        << BinaryBytes(index, BinaryLayout::kCompact); }
  const std::string aligned_path = testing::UniqueTempPath("aligned_index");
  { std::ofstream(aligned_path, std::ios::binary)
        << BinaryBytes(index, BinaryLayout::kAligned); }

  // Mapping a compact artifact is refused outright...
  auto refused = MetagraphVectorIndex::MapFromFile(compact_path);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), util::StatusCode::kFailedPrecondition);

  // ...but LoadFromFile falls back to the eager path, and only an aligned
  // artifact actually ends up mapped.
  IndexLoadOptions want_mmap;
  want_mmap.use_mmap = true;
  auto compact = MetagraphVectorIndex::LoadFromFile(compact_path, want_mmap);
  ASSERT_TRUE(compact.ok()) << compact.status().ToString();
  EXPECT_FALSE(compact->is_mapped());
  auto aligned = MetagraphVectorIndex::LoadFromFile(aligned_path, want_mmap);
  ASSERT_TRUE(aligned.ok()) << aligned.status().ToString();
  EXPECT_TRUE(aligned->is_mapped());
  EXPECT_EQ(IndexSignature(*aligned), IndexSignature(index));

  // The trusted-file fast path (no checksum or entry validation) still
  // serves correct data from an intact artifact.
  IndexLoadOptions trusted;
  trusted.use_mmap = true;
  trusted.verify_checksums = false;
  auto fast = MetagraphVectorIndex::LoadFromFile(aligned_path, trusted);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(IndexSignature(*fast), IndexSignature(index));
}

// ---- model binary format ---------------------------------------------------

MgpModel NastyModel() {
  // Weights chosen to break any decimal round trip that is not exact:
  // signed zero, a non-terminating binary fraction, subnormals, extremes.
  return MgpModel{{0.0, -0.0, 1.0 / 3.0, -2.5, 1e-300, 5e-324,
                   1.7976931348623157e308, 3.141592653589793}};
}

std::string ModelBinaryBytes(const MgpModel& model) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(WriteMgpModelBinary(model, os).ok());
  return os.str();
}

void ExpectBitEqual(const std::vector<double>& a,
                    const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a[i]), std::bit_cast<uint64_t>(b[i]))
        << "weight " << i;
  }
}

TEST(ModelBinaryFormat, RoundTripsWeightsBitwise) {
  const MgpModel model = NastyModel();
  const std::string bytes = ModelBinaryBytes(model);
  auto loaded = ReadMgpModelBinary(AsBytes(bytes), model.weights.size());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitEqual(loaded->weights, model.weights);

  // Wrong expected weight count is a structured mismatch error.
  EXPECT_FALSE(ReadMgpModelBinary(AsBytes(bytes), 3).ok());
}

TEST(ModelBinaryFormat, SaveLoadAutodetectsBothFormats) {
  const MgpModel model = NastyModel();
  const std::string text_path = testing::UniqueTempPath("model_text");
  const std::string bin_path = testing::UniqueTempPath("model_bin");
  ASSERT_TRUE(SaveModel(model, text_path, util::ArtifactFormat::kText).ok());
  ASSERT_TRUE(SaveModel(model, bin_path, util::ArtifactFormat::kBinary).ok());

  for (const std::string& path : {text_path, bin_path}) {
    auto loaded = LoadModel(path, model.weights.size());
    ASSERT_TRUE(loaded.ok()) << path << ": " << loaded.status().ToString();
    ExpectBitEqual(loaded->weights, model.weights);
  }
  EXPECT_EQ(LoadModel(bin_path + ".missing").status().code(),
            util::StatusCode::kNotFound);
}

// ---- corruption battery ----------------------------------------------------
//
// Contract: a corrupt or truncated artifact must produce a structured
// Status — or, for bytes no content rides on (alignment padding), load
// with results IDENTICAL to the pristine artifact. Crashing, hanging, or
// silently answering differently all fail the battery; ASan/UBSan in CI
// additionally veto any out-of-bounds read on these hostile inputs.

void ExpectLoadRobust(const std::string& bytes,
                      const std::vector<double>& reference,
                      const std::string& what) {
  auto loaded = MetagraphVectorIndex::ReadBinaryFrom(AsBytes(bytes));
  if (loaded.ok()) {
    EXPECT_EQ(IndexSignature(*loaded), reference) << what;
  }
}

TEST(CorruptionBattery, IndexTruncationAlwaysFails) {
  auto toy = testing::MakeToyGraph();
  MetagraphVectorIndex index = BuildReferenceIndex(toy);
  for (BinaryLayout layout : {BinaryLayout::kCompact, BinaryLayout::kAligned}) {
    const std::string bytes = BinaryBytes(index, layout);
    // The header's total_size makes EVERY truncation (and any appended
    // tail) structurally detectable, so these must all fail, not merely
    // not-crash.
    for (size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_FALSE(
          MetagraphVectorIndex::ReadBinaryFrom(
              AsBytes(bytes).subspan(0, len)).ok())
          << "length " << len;
    }
    EXPECT_FALSE(MetagraphVectorIndex::ReadBinaryFrom(
                     AsBytes(bytes + '\0')).ok());
  }
}

TEST(CorruptionBattery, IndexByteFlipsNeverCrashOrLie) {
  auto toy = testing::MakeToyGraph();
  MetagraphVectorIndex index = BuildReferenceIndex(toy);
  const std::vector<double> reference = IndexSignature(index);
  for (BinaryLayout layout : {BinaryLayout::kCompact, BinaryLayout::kAligned}) {
    const std::string bytes = BinaryBytes(index, layout);
    for (size_t i = 0; i < bytes.size(); ++i) {
      for (char mask : {char(0x01), char(0xff)}) {
        std::string bad = bytes;
        bad[i] ^= mask;
        ExpectLoadRobust(bad, reference,
                         "byte " + std::to_string(i) + " ^ " +
                             std::to_string(int(mask)));
      }
    }
  }
}

TEST(CorruptionBattery, MappedLoadSurvivesCorruptFiles) {
  auto toy = testing::MakeToyGraph();
  MetagraphVectorIndex index = BuildReferenceIndex(toy);
  const std::vector<double> reference = IndexSignature(index);
  const std::string bytes = BinaryBytes(index, BinaryLayout::kAligned);
  const std::string path = testing::UniqueTempPath("corrupt_mapped");

  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] ^= 0xff;
    { std::ofstream(path, std::ios::binary) << bad; }
    auto mapped = MetagraphVectorIndex::MapFromFile(path);
    if (mapped.ok()) {
      EXPECT_EQ(IndexSignature(*mapped), reference) << "byte " << i;
    }
  }
  // Truncations through the mapped path (every 7th length keeps the file
  // churn reasonable; ReadBinaryFrom above already covers every length).
  for (size_t len = 0; len < bytes.size(); len += 7) {
    { std::ofstream(path, std::ios::binary) << bytes.substr(0, len); }
    EXPECT_FALSE(MetagraphVectorIndex::MapFromFile(path).ok())
        << "length " << len;
  }
}

TEST(CorruptionBattery, ModelArtifactBattery) {
  const MgpModel model = NastyModel();
  const std::string bytes = ModelBinaryBytes(model);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        ReadMgpModelBinary(AsBytes(bytes).subspan(0, len)).ok())
        << "length " << len;
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] ^= 0xff;
    auto loaded = ReadMgpModelBinary(AsBytes(bad));
    if (loaded.ok()) ExpectBitEqual(loaded->weights, model.weights);
  }
}

TEST(CorruptionBattery, TextIndexGarbageIsStructuredError) {
  // The autodetecting loader must route non-container bytes to the text
  // parser and fail cleanly there, whatever the garbage looks like.
  const std::string path = testing::UniqueTempPath("garbage_index");
  for (const std::string& garbage :
       {std::string("not an index"), std::string("metaprox-index v1\n-3\n"),
        std::string("metaprox-index v1\n4 999999999999 0\n"),
        std::string(64, '\0')}) {
    { std::ofstream(path, std::ios::binary) << garbage; }
    EXPECT_FALSE(MetagraphVectorIndex::LoadFromFile(path).ok());
  }
}

// ---- golden files ----------------------------------------------------------
//
// Pins the exact encoded bytes of the canonical toy artifacts. A failure
// here means the on-disk format changed: if that is intentional, bump the
// container version and regenerate per tests/golden/README.md
// (METAPROX_REGEN_GOLDEN=1 ./binary_format_test).

std::string GoldenDir() { return std::string(METAPROX_TEST_DATA_DIR) + "/golden"; }

util::StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void CheckGolden(const std::string& name, const std::string& fresh) {
  const std::string path = GoldenDir() + "/" + name;
  if (std::getenv("METAPROX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot regenerate " << path;
    out << fresh;
    return;
  }
  auto pinned = ReadFileBytes(path);
  ASSERT_TRUE(pinned.ok())
      << pinned.status().ToString()
      << " — regenerate with METAPROX_REGEN_GOLDEN=1 (see tests/golden/"
         "README.md)";
  if (*pinned == fresh) return;
  size_t first_diff = 0;
  while (first_diff < pinned->size() && first_diff < fresh.size() &&
         (*pinned)[first_diff] == fresh[first_diff]) {
    ++first_diff;
  }
  FAIL() << name << ": freshly encoded bytes diverge from the pinned golden "
         << "file (sizes " << fresh.size() << " vs " << pinned->size()
         << ", first difference at byte " << first_diff
         << "). The on-disk format changed — if intentional, bump the "
         << "container version and regenerate (tests/golden/README.md).";
}

TEST(GoldenFiles, IndexArtifactsAreBitExact) {
  auto toy = testing::MakeToyGraph();
  MetagraphVectorIndex index = BuildReferenceIndex(toy);
  CheckGolden("toy_index_compact.mxc",
              BinaryBytes(index, BinaryLayout::kCompact));
  CheckGolden("toy_index_aligned.mxc",
              BinaryBytes(index, BinaryLayout::kAligned));

  // Decode-compat leg: the pinned files must also still LOAD to the same
  // observable index (both eagerly and mapped), independent of whether a
  // fresh encode happens to match them.
  if (std::getenv("METAPROX_REGEN_GOLDEN") != nullptr) return;
  const std::vector<double> reference = IndexSignature(index);
  for (const char* name : {"toy_index_compact.mxc", "toy_index_aligned.mxc"}) {
    auto bytes = ReadFileBytes(GoldenDir() + "/" + name);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    auto loaded = MetagraphVectorIndex::ReadBinaryFrom(AsBytes(*bytes));
    ASSERT_TRUE(loaded.ok()) << name << ": " << loaded.status().ToString();
    EXPECT_EQ(IndexSignature(*loaded), reference) << name;
  }
  auto mapped =
      MetagraphVectorIndex::MapFromFile(GoldenDir() + "/toy_index_aligned.mxc");
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(IndexSignature(*mapped), reference);
}

TEST(GoldenFiles, ModelArtifactIsBitExact) {
  const MgpModel model = NastyModel();
  CheckGolden("nasty_model.mxc", ModelBinaryBytes(model));
  if (std::getenv("METAPROX_REGEN_GOLDEN") != nullptr) return;
  auto bytes = ReadFileBytes(GoldenDir() + "/nasty_model.mxc");
  ASSERT_TRUE(bytes.ok());
  auto loaded = ReadMgpModelBinary(AsBytes(*bytes), model.weights.size());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectBitEqual(loaded->weights, model.weights);
}

}  // namespace
}  // namespace metaprox
