#!/usr/bin/env bash
# docs_links_check: keeps docs/SERVING.md's error-code table and
# src/server/wire.h's ErrorCode enum from drifting apart.
#
#   forward: every `| <num> | `k<Name>` |` row in SERVING.md must have a
#            matching `k<Name> = <num>` enumerator in wire.h
#   reverse: every ErrorCode enumerator in wire.h must appear (name and
#            number) in SERVING.md
#
# Usage: docs_links_check.sh [repo-root]   (default: the script's ../)
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
serving="$root/docs/SERVING.md"
wire="$root/src/server/wire.h"
fail=0

for f in "$serving" "$wire"; do
  if [ ! -f "$f" ]; then
    echo "docs_links_check: missing $f" >&2
    exit 1
  fi
done

# SERVING.md table rows: "| 18 | `kSlowConsumer` | ... |"
doc_rows=$(sed -n 's/^| *\([0-9][0-9]*\) *| *`\(k[A-Za-z]*\)`.*/\1 \2/p' \
  "$serving" | sort -u)
if [ -z "$doc_rows" ]; then
  echo "docs_links_check: no error-code table rows found in $serving" >&2
  exit 1
fi

# wire.h enumerators: "kSlowConsumer = 18,"
enum_rows=$(sed -n 's/^ *\(k[A-Za-z]*\) *= *\([0-9][0-9]*\),.*/\2 \1/p' \
  "$wire" | sort -u)
if [ -z "$enum_rows" ]; then
  echo "docs_links_check: no ErrorCode enumerators found in $wire" >&2
  exit 1
fi

while read -r num name; do
  if ! printf '%s\n' "$enum_rows" | grep -qx "$num $name"; then
    echo "docs_links_check: SERVING.md documents '$name' as code $num," \
         "but wire.h has no such enumerator" >&2
    fail=1
  fi
done <<EOF
$doc_rows
EOF

while read -r num name; do
  if ! printf '%s\n' "$doc_rows" | grep -qx "$num $name"; then
    echo "docs_links_check: wire.h defines '$name = $num' but SERVING.md's" \
         "error table does not document it" >&2
    fail=1
  fi
done <<EOF
$enum_rows
EOF

if [ "$fail" -eq 0 ]; then
  count=$(printf '%s\n' "$doc_rows" | wc -l)
  echo "docs_links_check: OK ($count error codes in sync)"
fi
exit "$fail"
