#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.h"
#include "datagen/facebook.h"
#include "matching/matcher.h"
#include "mining/mined_set_io.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

TEST(MinedSetIo, RoundTrip) {
  auto toy = testing::MakeToyGraph();
  MinerOptions options;
  options.anchor_type = toy.user;
  options.min_support = 1;
  options.max_nodes = 4;
  auto mined = MineMetagraphs(toy.graph, options);
  ASSERT_FALSE(mined.empty());

  std::ostringstream os;
  ASSERT_TRUE(WriteMinedMetagraphs(mined, os).ok());
  std::istringstream is(os.str());
  auto loaded = ReadMinedMetagraphs(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->size(), mined.size());
  for (size_t i = 0; i < mined.size(); ++i) {
    EXPECT_TRUE((*loaded)[i].graph == mined[i].graph);
    EXPECT_EQ((*loaded)[i].support, mined[i].support);
    EXPECT_EQ((*loaded)[i].is_path, mined[i].is_path);
    EXPECT_EQ((*loaded)[i].symmetry.symmetric_pairs,
              mined[i].symmetry.symmetric_pairs);
    EXPECT_EQ((*loaded)[i].symmetry.aut_size(), mined[i].symmetry.aut_size());
  }
}

TEST(MinedSetIo, RejectsGarbage) {
  std::istringstream is("not a metagraph file\n");
  EXPECT_FALSE(ReadMinedMetagraphs(is).ok());
  std::istringstream is2("metaprox-metagraphs v1\n1\n99 0 0\n");
  EXPECT_FALSE(ReadMinedMetagraphs(is2).ok());
}

TEST(IndexIo, RoundTripPreservesDots) {
  auto toy = testing::MakeToyGraph();
  std::vector<Metagraph> metagraphs = {
      MakePath({toy.user, toy.school, toy.user}),
      MakePath({toy.user, toy.address, toy.user}),
      MakePath({toy.user, toy.employer, toy.user})};
  MetagraphVectorIndex index(metagraphs.size(), toy.graph.num_nodes(),
                             CountTransform::kLog1p);
  auto matcher = CreateMatcher(MatcherKind::kSymISO);
  for (uint32_t i = 0; i < 2; ++i) {  // leave metagraph 2 uncommitted
    SymmetryInfo sym = AnalyzeSymmetry(metagraphs[i]);
    SymPairCountingSink sink(sym, UINT64_MAX);
    matcher->Match(toy.graph, metagraphs[i], &sink);
    index.Commit(i, sink, sym.aut_size());
  }
  index.Finalize();

  std::ostringstream os;
  ASSERT_TRUE(index.WriteTo(os).ok());
  std::istringstream is(os.str());
  auto loaded = MetagraphVectorIndex::ReadFrom(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_metagraphs(), index.num_metagraphs());
  EXPECT_EQ(loaded->num_pairs(), index.num_pairs());
  EXPECT_TRUE(loaded->IsCommitted(0));
  EXPECT_TRUE(loaded->IsCommitted(1));
  EXPECT_FALSE(loaded->IsCommitted(2));

  std::vector<double> w = {0.5, 0.9, 0.3};
  for (NodeId x : {toy.kate, toy.alice, toy.bob}) {
    EXPECT_NEAR(loaded->NodeDot(x, w), index.NodeDot(x, w), 1e-9);
    for (NodeId y : {toy.jay, toy.tom}) {
      EXPECT_NEAR(loaded->PairDot(x, y, w), index.PairDot(x, y, w), 1e-9);
    }
  }
  // Candidate postings rebuilt identically (as sets).
  for (NodeId x : {toy.kate, toy.bob}) {
    auto a = loaded->Candidates(x);
    auto b = index.Candidates(x);
    std::vector<NodeId> va(a.begin(), a.end()), vb(b.begin(), b.end());
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    EXPECT_EQ(va, vb);
  }
}

TEST(IndexIo, RejectsBadHeader) {
  std::istringstream is("wrong\n");
  EXPECT_FALSE(MetagraphVectorIndex::ReadFrom(is).ok());
}

TEST(EngineOffline, SaveLoadRoundTrip) {
  datagen::FacebookConfig cfg;
  cfg.num_users = 150;
  auto ds = datagen::GenerateFacebook(cfg, 5);

  EngineOptions options;
  options.miner.anchor_type = ds.user_type;
  options.miner.min_support = 3;
  options.miner.max_nodes = 4;
  SearchEngine engine(ds.graph, options);
  engine.Mine();
  engine.MatchAll();

  const std::string prefix = ::testing::TempDir() + "/offline_phase";
  ASSERT_TRUE(engine.SaveOffline(prefix).ok());

  SearchEngine restored(ds.graph, options);
  ASSERT_TRUE(restored.LoadOffline(prefix).ok());
  ASSERT_EQ(restored.metagraphs().size(), engine.metagraphs().size());

  // Queries against the restored engine match the original.
  std::vector<double> w(engine.metagraphs().size(), 1.0);
  MgpModel model{w};
  auto users = ds.graph.NodesOfType(ds.user_type);
  int compared = 0;
  for (size_t i = 0; i < users.size() && compared < 20; i += 7, ++compared) {
    auto a = engine.Query(model, users[i], 5);
    auto b = restored.Query(model, users[i], 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].first, b[j].first);
      EXPECT_NEAR(a[j].second, b[j].second, 1e-9);
    }
  }
}

TEST(EngineOffline, LoadMissingFilesFails) {
  datagen::FacebookConfig cfg;
  cfg.num_users = 80;
  auto ds = datagen::GenerateFacebook(cfg, 6);
  EngineOptions options;
  options.miner.anchor_type = ds.user_type;
  SearchEngine engine(ds.graph, options);
  EXPECT_FALSE(engine.LoadOffline("/nonexistent/prefix").ok());
}

}  // namespace
}  // namespace metaprox
