#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/engine.h"
#include "datagen/facebook.h"
#include "matching/matcher.h"
#include "mining/mined_set_io.h"
#include "test_helpers.h"

namespace metaprox {
namespace {

TEST(MinedSetIo, RoundTrip) {
  auto toy = testing::MakeToyGraph();
  MinerOptions options;
  options.anchor_type = toy.user;
  options.min_support = 1;
  options.max_nodes = 4;
  auto mined = MineMetagraphs(toy.graph, options);
  ASSERT_FALSE(mined.empty());

  std::ostringstream os;
  ASSERT_TRUE(WriteMinedMetagraphs(mined, os).ok());
  std::istringstream is(os.str());
  auto loaded = ReadMinedMetagraphs(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->size(), mined.size());
  for (size_t i = 0; i < mined.size(); ++i) {
    EXPECT_TRUE((*loaded)[i].graph == mined[i].graph);
    EXPECT_EQ((*loaded)[i].support, mined[i].support);
    EXPECT_EQ((*loaded)[i].is_path, mined[i].is_path);
    EXPECT_EQ((*loaded)[i].symmetry.symmetric_pairs,
              mined[i].symmetry.symmetric_pairs);
    EXPECT_EQ((*loaded)[i].symmetry.aut_size(), mined[i].symmetry.aut_size());
  }
}

TEST(MinedSetIo, RejectsGarbage) {
  std::istringstream is("not a metagraph file\n");
  EXPECT_FALSE(ReadMinedMetagraphs(is).ok());
  std::istringstream is2("metaprox-metagraphs v1\n1\n99 0 0\n");
  EXPECT_FALSE(ReadMinedMetagraphs(is2).ok());
}

// ---- index round trips, one per persistence format -------------------------
//
// Both formats are exact: text prints float counts with 9 significant
// digits (lossless for binary32) and binary stores the raw bits, so a
// restored index must agree with the original BITWISE — hence EXPECT_EQ
// on the dots, not EXPECT_NEAR.
class IndexIoTest : public ::testing::TestWithParam<testing::IndexRoundTrip> {};

INSTANTIATE_TEST_SUITE_P(
    Formats, IndexIoTest,
    ::testing::Values(testing::IndexRoundTrip::kText,
                      testing::IndexRoundTrip::kBinaryCompact,
                      testing::IndexRoundTrip::kBinaryAligned,
                      testing::IndexRoundTrip::kMapped),
    [](const ::testing::TestParamInfo<testing::IndexRoundTrip>& info) {
      return testing::IndexRoundTripName(info.param);
    });

TEST_P(IndexIoTest, RoundTripPreservesDots) {
  auto toy = testing::MakeToyGraph();
  std::vector<Metagraph> metagraphs = {
      MakePath({toy.user, toy.school, toy.user}),
      MakePath({toy.user, toy.address, toy.user}),
      MakePath({toy.user, toy.employer, toy.user})};
  auto build = [&] {
    MetagraphVectorIndex index(metagraphs.size(), toy.graph.num_nodes(),
                               CountTransform::kLog1p);
    auto matcher = CreateMatcher(MatcherKind::kSymISO);
    for (uint32_t i = 0; i < 2; ++i) {  // leave metagraph 2 uncommitted
      SymmetryInfo sym = AnalyzeSymmetry(metagraphs[i]);
      SymPairCountingSink sink(sym, UINT64_MAX);
      matcher->Match(toy.graph, metagraphs[i], &sink);
      index.Commit(i, sink, sym.aut_size());
    }
    index.Finalize();
    return index;
  };
  MetagraphVectorIndex index = build();
  MetagraphVectorIndex loaded = testing::ApplyRoundTrip(build(), GetParam());

  EXPECT_EQ(loaded.num_metagraphs(), index.num_metagraphs());
  EXPECT_EQ(loaded.num_graph_nodes(), index.num_graph_nodes());
  EXPECT_EQ(loaded.num_pairs(), index.num_pairs());
  EXPECT_TRUE(loaded.finalized());
  EXPECT_TRUE(loaded.IsCommitted(0));
  EXPECT_TRUE(loaded.IsCommitted(1));
  EXPECT_FALSE(loaded.IsCommitted(2));
  EXPECT_EQ(loaded.is_mapped(), GetParam() == testing::IndexRoundTrip::kMapped);

  std::vector<double> w = {0.5, 0.9, 0.3};
  for (NodeId x = 0; x < toy.graph.num_nodes(); ++x) {
    EXPECT_EQ(loaded.NodeDot(x, w), index.NodeDot(x, w)) << "node " << x;
    for (NodeId y = 0; y < toy.graph.num_nodes(); ++y) {
      EXPECT_EQ(loaded.PairDot(x, y, w), index.PairDot(x, y, w))
          << "pair (" << x << ", " << y << ")";
    }
  }
  // Candidate postings rebuilt identically (as sets).
  for (NodeId x = 0; x < toy.graph.num_nodes(); ++x) {
    auto a = loaded.Candidates(x);
    auto b = index.Candidates(x);
    std::vector<NodeId> va(a.begin(), a.end()), vb(b.begin(), b.end());
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    EXPECT_EQ(va, vb);
  }
}

TEST(IndexIo, RejectsBadHeader) {
  std::istringstream is("wrong\n");
  EXPECT_FALSE(MetagraphVectorIndex::ReadFrom(is).ok());
}

// ---- engine save/load, one per (format, layout, load mode) -----------------

struct SaveLoadParam {
  const char* name;
  util::ArtifactFormat format;
  BinaryLayout layout;
  bool use_mmap;     // IndexLoadOptions.use_mmap on restore
  bool expect_mmap;  // restored.index().is_mapped()
};

class EngineOfflineTest : public ::testing::TestWithParam<SaveLoadParam> {};

INSTANTIATE_TEST_SUITE_P(
    Formats, EngineOfflineTest,
    ::testing::Values(
        SaveLoadParam{"Text", util::ArtifactFormat::kText,
                      BinaryLayout::kCompact, false, false},
        SaveLoadParam{"BinaryCompact", util::ArtifactFormat::kBinary,
                      BinaryLayout::kCompact, false, false},
        SaveLoadParam{"BinaryAligned", util::ArtifactFormat::kBinary,
                      BinaryLayout::kAligned, false, false},
        SaveLoadParam{"BinaryAlignedMmap", util::ArtifactFormat::kBinary,
                      BinaryLayout::kAligned, true, true},
        // --mmap on a compact artifact falls back to the eager load.
        SaveLoadParam{"BinaryCompactMmapFallback", util::ArtifactFormat::kBinary,
                      BinaryLayout::kCompact, true, false},
        // --mmap on a text artifact likewise.
        SaveLoadParam{"TextMmapFallback", util::ArtifactFormat::kText,
                      BinaryLayout::kCompact, true, false}),
    [](const ::testing::TestParamInfo<SaveLoadParam>& info) {
      return info.param.name;
    });

TEST_P(EngineOfflineTest, SaveLoadRoundTrip) {
  const SaveLoadParam& param = GetParam();
  datagen::FacebookConfig cfg;
  cfg.num_users = 150;
  auto ds = datagen::GenerateFacebook(cfg, 5);

  EngineOptions options;
  options.miner.anchor_type = ds.user_type;
  options.miner.min_support = 3;
  options.miner.max_nodes = 4;
  SearchEngine engine(ds.graph, options);
  engine.Mine();
  engine.MatchAll();

  const std::string prefix = testing::UniqueTempPath("offline_phase");
  ArtifactOptions artifact_options;
  artifact_options.format = param.format;
  artifact_options.layout = param.layout;
  ASSERT_TRUE(engine.SaveOffline(prefix, artifact_options).ok());

  SearchEngine restored(ds.graph, options);
  artifact_options.use_mmap = param.use_mmap;
  ASSERT_TRUE(restored.LoadOffline(prefix, artifact_options).ok());
  ASSERT_EQ(restored.metagraphs().size(), engine.metagraphs().size());
  EXPECT_EQ(restored.index().is_mapped(), param.expect_mmap);

  // Queries against the restored engine match the original EXACTLY: both
  // formats round-trip the stored counts bit for bit and the scoring path
  // is shared, so node order, scores and tie-breaks must all agree.
  std::vector<double> w(engine.metagraphs().size(), 1.0);
  MgpModel model{w};
  auto users = ds.graph.NodesOfType(ds.user_type);
  int compared = 0;
  for (size_t i = 0; i < users.size() && compared < 20; i += 7, ++compared) {
    auto a = engine.Query(model, users[i], 5);
    auto b = restored.Query(model, users[i], 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].first, b[j].first);
      EXPECT_EQ(a[j].second, b[j].second);
    }
  }
}

TEST(EngineOffline, LoadMissingFilesFails) {
  datagen::FacebookConfig cfg;
  cfg.num_users = 80;
  auto ds = datagen::GenerateFacebook(cfg, 6);
  EngineOptions options;
  options.miner.anchor_type = ds.user_type;
  SearchEngine engine(ds.graph, options);
  EXPECT_FALSE(engine.LoadOffline("/nonexistent/prefix").ok());
}

}  // namespace
}  // namespace metaprox
